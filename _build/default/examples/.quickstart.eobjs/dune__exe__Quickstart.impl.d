examples/quickstart.ml: Check_dtmc Dtmc Format List Model_repair Pctl Pctl_parser Printf Ratfun
