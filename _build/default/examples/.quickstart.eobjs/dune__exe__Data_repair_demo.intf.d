examples/data_repair_demo.mli:
