examples/intrusion_response.ml: Array Check_dtmc Check_mdp Float Format Mdp Option Pctl_parser Reward_repair Rule_parser Trace_logic
