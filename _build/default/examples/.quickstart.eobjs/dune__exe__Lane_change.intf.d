examples/lane_change.mli:
