examples/data_repair_demo.ml: Check_dtmc Data_repair Dtmc Format List Mle Pctl Pctl_parser Ratfun Trace
