examples/intrusion_response.mli:
