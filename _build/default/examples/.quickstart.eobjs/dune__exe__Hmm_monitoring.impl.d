examples/hmm_monitoring.ml: Baum_welch Format Fun Hmm List Prng
