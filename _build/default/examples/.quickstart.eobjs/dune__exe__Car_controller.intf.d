examples/car_controller.mli:
