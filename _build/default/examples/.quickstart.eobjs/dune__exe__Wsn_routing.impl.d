examples/wsn_routing.ml: Array Check_dtmc Data_repair Dtmc Float Format List Model_repair Option Prng Ratio Wsn
