examples/lane_change.ml: Check_dtmc Float Format Idtmc List Mle Model_repair Option Pctl Pctl_parser Prng Ratfun Robust Smc Trace
