examples/wsn_routing.mli:
