examples/quickstart.mli:
