examples/car_controller.ml: Array Car Format Irl List Mdp Prng Reward_repair Trace Trace_logic Value
