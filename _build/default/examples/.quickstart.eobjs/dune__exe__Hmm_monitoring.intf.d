examples/hmm_monitoring.mli:
