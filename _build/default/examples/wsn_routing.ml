(* The §V-A wireless-sensor-network case study, end to end:

   1. build the 3×3 query-routing chain;
   2. check R{attempts} <= X [F delivered] for X = 100, 40, 19;
   3. Model Repair for X = 40 (feasible) and X = 19 (infeasible);
   4. Data Repair for X = 19 by dropping failure observations.

   Run with: dune exec examples/wsn_routing.exe *)

let section title = Format.printf "@\n=== %s ===@\n" title

let () =
  let p = Wsn.default_params in
  let chain = Wsn.chain p in

  section "The model";
  Format.printf
    "3x3 grid; query injected at n33 (state %d) must reach n11 (state 0).@\n"
    (Dtmc.init_state chain);
  Format.printf "ignore probabilities: field/station %.3f, other %.3f@\n"
    p.Wsn.ignore_field_station p.Wsn.ignore_other;
  Format.printf "expected forwarding attempts: %.2f@\n" (Wsn.expected_attempts p);

  section "E1: R{attempts} <= 100 [F delivered]";
  let v = Check_dtmc.check_verbose chain (Wsn.property 100) in
  Format.printf "holds: %b (value %.2f)@\n" v.Check_dtmc.holds
    (Option.value ~default:Float.nan v.Check_dtmc.value);

  section "E2: Model Repair for X = 40";
  (match Model_repair.repair chain (Wsn.property 40) (Wsn.repair_spec p) with
   | Model_repair.Repaired r ->
     Format.printf "feasible: lower the ignore probabilities by@\n";
     List.iter
       (fun (name, v) ->
          Format.printf "  %s = %.4f  (%s nodes)@\n" name v
            (if name = "p" then "field/station" else "other"))
       r.Model_repair.assignment;
     Format.printf "expected attempts after repair: %.2f (verified: %b)@\n"
       r.Model_repair.achieved_value r.Model_repair.verified
   | Model_repair.Already_satisfied _ -> Format.printf "already satisfied?@\n"
   | Model_repair.Infeasible _ -> Format.printf "unexpectedly infeasible@\n");

  section "E3: Model Repair for X = 19";
  (match Model_repair.repair chain (Wsn.property 19) (Wsn.repair_spec p) with
   | Model_repair.Infeasible { min_violation } ->
     Format.printf
       "infeasible, as in the paper: even maximal corrections leave the@\n\
        expected attempts %.2f above the bound.@\n"
       min_violation
   | _ -> Format.printf "unexpected outcome@\n");

  section "E4: Data Repair for X = 19";
  let rng = Prng.create 42 in
  let groups = Wsn.observation_groups rng p ~count:3000 in
  List.iter
    (fun (g, traces) -> Format.printf "  %-20s %5d observations@\n" g (List.length traces))
    groups;
  let rewards = Array.init 9 (fun s -> if s = 0 then Ratio.zero else Ratio.one) in
  match
    Data_repair.repair ~n:9 ~init:8
      ~labels:[ ("delivered", [ 0 ]) ]
      ~rewards ~starts:6 (Wsn.property 19)
      (Data_repair.spec ~pinned:[ "success" ] groups)
  with
  | Data_repair.Repaired r ->
    Format.printf "feasible: drop fractions@\n";
    List.iter
      (fun (g, v) -> Format.printf "  drop(%-20s) = %.4f@\n" g v)
      r.Data_repair.drop_fractions;
    Format.printf
      "model re-learned from the repaired data has expected attempts %.2f@\n\
       (~%.0f observations dropped; verified: %b)@\n"
      r.Data_repair.achieved_value r.Data_repair.dropped_traces
      r.Data_repair.verified
  | Data_repair.Already_satisfied _ -> Format.printf "already satisfied?@\n"
  | Data_repair.Infeasible _ -> Format.printf "unexpectedly infeasible@\n"
