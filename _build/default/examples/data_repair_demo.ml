(* Data Repair as machine teaching (§IV-B): a dataset is corrupted by a
   batch of faulty sensor readings; the model learned from it violates a
   safety property; Data Repair identifies the smallest drop fractions per
   data group that make the re-learned model safe — and correctly keeps the
   trustworthy group intact.

   Run with: dune exec examples/data_repair_demo.exe *)

let section title = Format.printf "@\n=== %s ===@\n" title

(* A door controller: state 0 decides, state 1 = door opens (goal),
   state 2 = door stays shut (violation of liveness). *)
let property = Pctl_parser.parse "P>=0.9 [ F opened ]"

let make_traces ~opened ~shut =
  List.init opened (fun _ -> Trace.of_states [ 0; 1 ])
  @ List.init shut (fun _ -> Trace.of_states [ 0; 2 ])

let learn groups =
  Mle.learn_dtmc ~n:3 ~init:0
    ~labels:[ ("opened", [ 1 ]); ("shut", [ 2 ]) ]
    (List.concat_map snd groups)

let () =
  section "The data";
  (* A clean lab dataset and a corrupted field batch: a stuck sensor in the
     field batch reports "shut" far too often. *)
  let groups =
    [ ("lab_batch", make_traces ~opened:95 ~shut:5);
      ("field_batch", make_traces ~opened:20 ~shut:80);
    ]
  in
  List.iter
    (fun (g, traces) -> Format.printf "  %-12s %4d traces@\n" g (List.length traces))
    groups;

  section "Learning from everything";
  let model = learn groups in
  let v = Check_dtmc.check_verbose model property in
  Format.printf "learned P(open) = %.3f; %s --> %s@\n" (Dtmc.prob model 0 1)
    (Pctl.to_string property)
    (if v.Check_dtmc.holds then "HOLDS" else "VIOLATED");

  section "Data Repair (lab batch pinned as trusted)";
  match
    Data_repair.repair ~n:3 ~init:0
      ~labels:[ ("opened", [ 1 ]); ("shut", [ 2 ]) ]
      property
      (Data_repair.spec ~pinned:[ "lab_batch" ] groups)
  with
  | Data_repair.Repaired r ->
    List.iter
      (fun (g, frac) -> Format.printf "  drop(%-12s) = %.4f@\n" g frac)
      r.Data_repair.drop_fractions;
    Format.printf "re-learned P(open) = %.3f (achieved %.3f, verified %b)@\n"
      (Dtmc.prob r.Data_repair.dtmc 0 1)
      r.Data_repair.achieved_value r.Data_repair.verified;
    Format.printf
      "~%.0f traces dropped — all from the corrupted field batch.@\n"
      r.Data_repair.dropped_traces;
    Format.printf "closed-form constraint f(x) = %s@\n"
      (Ratfun.to_string r.Data_repair.symbolic_constraint)
  | Data_repair.Already_satisfied _ ->
    Format.printf "nothing to repair@\n"
  | Data_repair.Infeasible { min_violation } ->
    Format.printf "infeasible (violation %.4f)@\n" min_violation
