(* §VII extension: trusted learning for models with hidden state.

   A machine's health (hidden: ok / degraded / failed) is observed only
   through noisy sensor codes. Plain Baum–Welch happily explains nominal
   telemetry with visits to the "failed" state; the constrained E-step
   conditions learning on the trajectory rule "never in the failed state",
   yielding a model whose explanations respect the domain knowledge that
   the logged runs all completed successfully.

   Run with: dune exec examples/hmm_monitoring.exe *)

let section title = Format.printf "@\n=== %s ===@\n" title

let truth =
  (* 3 hidden states (0 ok, 1 degraded, 2 failed), 3 sensor codes *)
  Hmm.make
    ~initial:[| 0.9; 0.1; 0.0 |]
    ~transition:
      [| [| 0.90; 0.09; 0.01 |]; [| 0.20; 0.70; 0.10 |]; [| 0.0; 0.0; 1.0 |] |]
    ~emission:
      [| [| 0.85; 0.10; 0.05 |]; [| 0.20; 0.65; 0.15 |]; [| 0.05; 0.15; 0.80 |] |]
    ()

let start () =
  (* uninformed starting point for EM *)
  Hmm.make
    ~initial:[| 0.34; 0.33; 0.33 |]
    ~transition:
      [| [| 0.4; 0.3; 0.3 |]; [| 0.3; 0.4; 0.3 |]; [| 0.3; 0.3; 0.4 |] |]
    ~emission:
      [| [| 0.5; 0.3; 0.2 |]; [| 0.2; 0.5; 0.3 |]; [| 0.2; 0.3; 0.5 |] |]
    ()

let count_failed_explanations model seqs =
  List.fold_left
    (fun acc obs ->
       let path = Hmm.viterbi model obs in
       if List.mem 2 path then acc + 1 else acc)
    0 seqs

let () =
  let rng = Prng.create 77 in
  (* nominal telemetry: runs whose true hidden path avoided "failed" *)
  let seqs =
    List.filter_map
      (fun _ ->
         let hidden, obs = Hmm.simulate rng truth ~len:25 in
         if List.mem 2 hidden then None else Some obs)
      (List.init 120 Fun.id)
  in
  Format.printf "training on %d nominal sequences (all avoided the failed state)@\n"
    (List.length seqs);

  section "Plain Baum-Welch";
  let plain, progress = Baum_welch.learn ~iterations:60 (start ()) seqs in
  Format.printf "EM iterations: %d@\n" progress.Baum_welch.iterations;
  Format.printf "Viterbi paths visiting 'failed': %d / %d@\n"
    (count_failed_explanations plain seqs)
    (List.length seqs);
  Format.printf "learned P(0 -> 2) = %.4f, P(1 -> 2) = %.4f@\n"
    (Hmm.transition plain 0 2) (Hmm.transition plain 1 2);

  section "Constrained EM (rule: never in the failed state)";
  let constrained, progress =
    Baum_welch.learn_constrained ~iterations:60 ~forbidden:(fun s -> s = 2)
      (start ()) seqs
  in
  Format.printf "EM iterations: %d@\n" progress.Baum_welch.iterations;
  Format.printf "Viterbi paths visiting 'failed': %d / %d@\n"
    (count_failed_explanations constrained seqs)
    (List.length seqs);
  Format.printf "learned P(0 -> 2) = %.6f, P(1 -> 2) = %.6f@\n"
    (Hmm.transition constrained 0 2) (Hmm.transition constrained 1 2);

  section "Held-out sanity";
  let held_out = List.init 20 (fun _ -> snd (Hmm.simulate rng truth ~len:25)) in
  let total model =
    List.fold_left (fun acc s -> acc +. Hmm.log_likelihood model s) 0.0 held_out
  in
  Format.printf "held-out loglik: plain %.1f, constrained %.1f@\n" (total plain)
    (total constrained);
  Format.printf
    "the constrained model trades a little likelihood for guaranteed \
     rule-consistent explanations.@\n"
