(* Quickstart: build a small Markov chain, check a PCTL property, and repair
   the model when the property fails.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* A 3-state chain: from [start] we reach [goal] with probability 0.3 and
     [fail] with probability 0.7; both are absorbing. *)
  let chain =
    Dtmc.make ~n:3 ~init:0
      ~transitions:[ (0, 1, 0.3); (0, 2, 0.7); (1, 1, 1.0); (2, 2, 1.0) ]
      ~labels:[ ("goal", [ 1 ]); ("fail", [ 2 ]) ]
      ()
  in
  Format.printf "Model:@\n%a@\n" Dtmc.pp chain;

  (* Parse a PCTL property: "the goal is eventually reached with
     probability at least one half". *)
  let phi = Pctl_parser.parse "P>=0.5 [ F goal ]" in
  let verdict = Check_dtmc.check_verbose chain phi in
  Format.printf "%s  -->  %s (value %s)@\n@\n" (Pctl.to_string phi)
    (if verdict.Check_dtmc.holds then "HOLDS" else "VIOLATED")
    (match verdict.Check_dtmc.value with
     | Some v -> Printf.sprintf "%.3f" v
     | None -> "-");

  (* Model Repair: perturb the branch probability (one variable [v] added
     to the goal edge and removed from the fail edge, keeping the row
     stochastic), minimising v². *)
  let spec =
    {
      Model_repair.variables = [ ("v", 0.0, 0.6) ];
      deltas = [ (0, 1, Ratfun.var "v"); (0, 2, Ratfun.neg (Ratfun.var "v")) ];
    }
  in
  match Model_repair.repair chain phi spec with
  | Model_repair.Repaired r ->
    Format.printf "Model Repair succeeded:@\n";
    List.iter
      (fun (name, v) -> Format.printf "  %s = %.4f@\n" name v)
      r.Model_repair.assignment;
    Format.printf "  cost            = %.6f@\n" r.Model_repair.cost;
    Format.printf "  achieved value  = %.4f@\n" r.Model_repair.achieved_value;
    Format.printf "  re-verified     = %b@\n" r.Model_repair.verified;
    Format.printf "  symbolic f(v)   = %s@\n"
      (Ratfun.to_string r.Model_repair.symbolic_constraint);
    Format.printf "Repaired model:@\n%a" Dtmc.pp r.Model_repair.dtmc
  | Model_repair.Already_satisfied _ ->
    Format.printf "Nothing to do: the property already holds.@\n"
  | Model_repair.Infeasible { min_violation } ->
    Format.printf "Repair infeasible (best violation %.4f).@\n" min_violation
