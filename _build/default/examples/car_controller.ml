(* The §V-B obstacle-avoidance case study, end to end:

   1. build the 11-state car MDP (Fig. 1);
   2. learn a reward from the expert demonstration with MaxEnt IRL;
   3. show that the induced optimal policy is unsafe (drives into the van);
   4. Reward Repair: minimally change θ so that Q(S1, left) > Q(S1, fwd);
   5. alternative route: Prop. 4's posterior-regularisation projection.

   Run with: dune exec examples/car_controller.exe *)

let section title = Format.printf "@\n=== %s ===@\n" title

let print_policy m pi =
  Array.iteri
    (fun s a -> if Mdp.find_action m s a <> None then Format.printf "(S%d,%s) " s a)
    pi;
  Format.printf "@\n"

let ascii_diagram =
  "  left lane : S5 -> S6 -> S7 -> S8 -> S9\n\
  \               ^\\   ^\\    ^\\   \\v    \\v  (left/right lane changes)\n\
  \  right lane: S0 -> S1 -> [S2] -> S3 -> S4*\n\
  \  [S2] = van (collision, unsafe)   S4* = target sink   S10 = off-road\n"

let () =
  let m = Car.mdp () in
  section "The model (Fig. 1)";
  Format.printf "%s" ascii_diagram;
  Format.printf "expert demonstration: %a@\n" Trace.pp (Car.expert_trace ());

  section "MaxEnt IRL on the expert demonstration";
  let theta = Irl.learn m (Car.expert_traces 5) in
  Format.printf "learned theta = (%.3f, %.3f, %.3f)  [lane, dist-to-unsafe, target]@\n"
    theta.(0) theta.(1) theta.(2);
  let m_learned = Irl.apply_reward m theta in
  let pi, _ = Value.optimal_policy ~gamma:0.9 m_learned in
  Format.printf "optimal policy under the learned reward:@\n  ";
  print_policy m pi;
  Format.printf "S1 action: %s -> %s@\n" pi.(1)
    (if pi.(1) = "fwd" then "drives into the van (UNSAFE, as in the paper)"
     else "safe");
  Format.printf "rollout reaches an unsafe state: %b@\n"
    (Car.policy_visits_unsafe m_learned pi);

  section "Reward Repair: min ||dtheta|| s.t. Q(S1,left) > Q(S1,fwd)";
  (match
     Reward_repair.repair_q ~gamma:0.9 m ~theta
       ~constraints:[ Car.unsafe_q_constraint ]
   with
   | Reward_repair.Repaired r ->
     let t = r.Reward_repair.theta in
     Format.printf "repaired theta = (%.3f, %.3f, %.3f), ||dtheta||^2 = %.4f@\n"
       t.(0) t.(1) t.(2) r.Reward_repair.cost;
     Format.printf "optimal policy under the repaired reward:@\n  ";
     print_policy m r.Reward_repair.policy;
     let m' = Irl.apply_reward m t in
     Format.printf "rollout reaches an unsafe state: %b@\n"
       (Car.policy_visits_unsafe m' r.Reward_repair.policy);
     Format.printf "satisfies the LTLf rule %s: %b@\n"
       (Trace_logic.to_string Car.safety_rule)
       (Reward_repair.policy_satisfies m r.Reward_repair.policy
          ~rules:[ Car.safety_rule ] ~horizon:20)
   | Reward_repair.Already_satisfied ->
     Format.printf "the learned policy was already safe@\n"
   | Reward_repair.Infeasible _ -> Format.printf "repair infeasible@\n");

  section "Alternative: Prop. 4 projection (posterior regularisation)";
  let rng = Prng.create 7 in
  let trajs =
    Reward_repair.sample_trajectories rng m ~theta ~horizon:8 ~count:300
  in
  let labels = Mdp.has_label m in
  let violating tr = not (Trace_logic.eval ~labels tr Car.safety_rule) in
  let frac l =
    float_of_int (List.length (List.filter violating l))
    /. float_of_int (List.length l)
  in
  Format.printf "sampled %d trajectories from the MaxEnt policy; %.0f%% violate \
                 the safety rule@\n"
    (List.length trajs)
    (100.0 *. frac trajs);
  let weighted =
    Reward_repair.projection_weights m ~theta
      ~rules:[ (Car.safety_rule, 10.0) ]
      trajs
  in
  let viol_mass =
    List.fold_left
      (fun acc (tr, w) -> if violating tr then acc +. w else acc)
      0.0 weighted
  in
  Format.printf "after projection (lambda = 10): violating mass = %.5f@\n" viol_mass;
  let theta' =
    Reward_repair.repair_by_projection m ~theta
      ~rules:[ (Car.safety_rule, 10.0) ]
      trajs
  in
  Format.printf "theta re-estimated from Q: (%.3f, %.3f, %.3f)@\n" theta'.(0)
    theta'.(1) theta'.(2);
  Format.printf "distance-to-unsafe weight: %.3f -> %.3f (raised, as the paper's \
                 repaired reward does)@\n"
    theta.(1) theta'.(1)
