(* Cyber-security — the paper's other mission-critical domain (§I, §VII).

   An intrusion-response controller is an MDP: the system drifts through
   attack stages (probing -> foothold -> escalation -> compromised) while
   the defender chooses between cheap monitoring and expensive responses.
   We ask for a liveness/safety mix:

     - safety:  P <= 0.05 [ F compromised ]   (for every defender policy?
       no — for the chosen one), and
     - the cheapest response policy that achieves it.

   The example exercises: MDP model checking (Pmin/Pmax), optimal
   scheduler extraction for expected cost, policy rules, and the induced
   chain's exact check.

   Run with: dune exec examples/intrusion_response.exe *)

let section title = Format.printf "@\n=== %s ===@\n" title

(* States: 0 normal, 1 probing, 2 foothold, 3 escalated, 4 compromised
   (absorbing), 5 contained (absorbing). *)
let mdp () =
  Mdp.make ~n:6 ~init:0
    ~actions:
      [ (* normal operation: attacks begin regardless; defender watches *)
        (0, "monitor", [ (0, 0.90); (1, 0.10) ]);
        (* probing: keep monitoring (cheap) or patch (pushes back) *)
        (1, "monitor", [ (1, 0.55); (2, 0.40); (0, 0.05) ]);
        (1, "patch", [ (0, 0.85); (1, 0.15) ]);
        (* foothold: isolate (expensive, very effective) or patch *)
        (2, "patch", [ (1, 0.45); (2, 0.30); (3, 0.25) ]);
        (2, "isolate", [ (5, 0.90); (2, 0.10) ]);
        (* escalated: isolate or lose the box *)
        (3, "isolate", [ (5, 0.70); (4, 0.30) ]);
        (3, "monitor", [ (4, 0.80); (3, 0.20) ]);
        (4, "stay", [ (4, 1.0) ]);
        (5, "stay", [ (5, 1.0) ]);
      ]
    ~action_rewards:
      [ (* response costs *)
        ((0, "monitor"), 1.0); ((1, "monitor"), 1.0); ((3, "monitor"), 1.0);
        ((1, "patch"), 5.0); ((2, "patch"), 5.0);
        ((2, "isolate"), 20.0); ((3, "isolate"), 20.0);
      ]
    ~labels:[ ("compromised", [ 4 ]); ("contained", [ 5 ]) ]
    ()

let () =
  let m = mdp () in
  section "Adversarial bounds over all defender policies";
  let worst =
    Check_mdp.path_probability Check_mdp.Max m (Eventually (Prop "compromised"))
  in
  let best =
    Check_mdp.path_probability Check_mdp.Min m (Eventually (Prop "compromised"))
  in
  Format.printf "P(compromised): best policy %.4f, worst policy %.4f@\n" best worst;
  Format.printf "P<=0.05 [ F compromised ] holds for every policy: %b@\n"
    (Check_mdp.check m (Pctl_parser.parse "P<=0.05 [ F compromised ]"));

  section "Cheapest policy reaching containment";
  let pi =
    Check_mdp.optimal_reachability_policy Check_mdp.Min m (Prop "contained")
  in
  Array.iteri
    (fun s a -> if s < 4 then Format.printf "  state %d -> %s@\n" s a)
    pi;
  let cost =
    Check_mdp.reachability_reward_from_init Check_mdp.Min m (Prop "contained")
  in
  Format.printf "expected response cost: %.2f@\n" cost;

  section "Checking the chosen policy's induced chain";
  let chain = Mdp.induced_dtmc m pi in
  let v =
    Check_dtmc.check_verbose chain
      (Pctl_parser.parse "P<=0.05 [ F compromised ]")
  in
  Format.printf "under the cheapest policy, P(compromised) = %.4f --> %s@\n"
    (Option.value ~default:Float.nan v.Check_dtmc.value)
    (if v.Check_dtmc.holds then "ACCEPTABLE" else "TOO RISKY");

  (* If too risky, trade money for safety: evaluate the always-respond
     policy. *)
  if not v.Check_dtmc.holds then begin
    let aggressive = [| "monitor"; "patch"; "isolate"; "isolate"; "stay"; "stay" |] in
    let chain = Mdp.induced_dtmc m aggressive in
    let v2 =
      Check_dtmc.check_verbose chain
        (Pctl_parser.parse "P<=0.05 [ F compromised ]")
    in
    Format.printf "aggressive policy: P(compromised) = %.4f --> %s@\n"
      (Option.value ~default:Float.nan v2.Check_dtmc.value)
      (if v2.Check_dtmc.holds then "ACCEPTABLE" else "TOO RISKY")
  end;

  section "Trajectory rule check on rollouts";
  let rule =
    Rule_parser.parse "G (compromised => false)" (* i.e. never compromised *)
  in
  let safe_policy = [| "monitor"; "patch"; "isolate"; "isolate"; "stay"; "stay" |] in
  Format.printf "rule %s on every branch of the aggressive policy (20 steps): %b@\n"
    (Trace_logic.to_string rule)
    (Reward_repair.policy_satisfies m safe_policy ~rules:[ rule ] ~horizon:20)
