(* Tests for Idtmc and Robust (interval DTMCs, robust verification). *)

(* Branch with uncertain split: 0 -> goal in [0.2, 0.4], fail gets the
   rest. *)
let uncertain () =
  Idtmc.make ~n:3 ~init:0
    ~transitions:
      [ (0, 1, 0.2, 0.4); (0, 2, 0.6, 0.8);
        (1, 1, 1.0, 1.0); (2, 2, 1.0, 1.0);
      ]
    ~labels:[ ("goal", [ 1 ]); ("fail", [ 2 ]) ]
    ()

let test_construction () =
  let d = uncertain () in
  Alcotest.(check int) "n" 3 (Idtmc.num_states d);
  Alcotest.(check int) "edges" 2 (List.length (Idtmc.edges d 0));
  let expect_invalid msg f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s: expected Invalid_argument" msg
  in
  expect_invalid "lo > hi" (fun () ->
      Idtmc.make ~n:1 ~init:0 ~transitions:[ (0, 0, 0.9, 0.5) ] ());
  expect_invalid "hi > 1" (fun () ->
      Idtmc.make ~n:1 ~init:0 ~transitions:[ (0, 0, 0.5, 1.5) ] ());
  expect_invalid "infeasible row (lo sum > 1)" (fun () ->
      Idtmc.make ~n:2 ~init:0
        ~transitions:[ (0, 0, 0.7, 0.8); (0, 1, 0.6, 0.9); (1, 1, 1.0, 1.0) ]
        ());
  expect_invalid "infeasible row (hi sum < 1)" (fun () ->
      Idtmc.make ~n:2 ~init:0
        ~transitions:[ (0, 0, 0.1, 0.3); (0, 1, 0.1, 0.3); (1, 1, 1.0, 1.0) ]
        ());
  expect_invalid "duplicate edge" (fun () ->
      Idtmc.make ~n:1 ~init:0
        ~transitions:[ (0, 0, 0.4, 0.6); (0, 0, 0.4, 0.6) ]
        ())

let test_member_midpoint () =
  let d = uncertain () in
  let inside =
    Dtmc.make ~n:3 ~init:0
      ~transitions:[ (0, 1, 0.3); (0, 2, 0.7); (1, 1, 1.0); (2, 2, 1.0) ]
      ()
  in
  Alcotest.(check bool) "member" true (Idtmc.member d inside);
  let outside =
    Dtmc.make ~n:3 ~init:0
      ~transitions:[ (0, 1, 0.5); (0, 2, 0.5); (1, 1, 1.0); (2, 2, 1.0) ]
      ()
  in
  Alcotest.(check bool) "not member" false (Idtmc.member d outside);
  let mid = Idtmc.midpoint d in
  Alcotest.(check (float 1e-12)) "midpoint" 0.3 (Dtmc.prob mid 0 1);
  Alcotest.(check bool) "midpoint is member" true (Idtmc.member d mid)

let test_of_dtmc () =
  let base =
    Dtmc.make ~n:2 ~init:0
      ~transitions:[ (0, 1, 0.9); (0, 0, 0.1); (1, 1, 1.0) ]
      ~labels:[ ("goal", [ 1 ]) ]
      ()
  in
  let d = Idtmc.of_dtmc ~radius:0.05 base in
  (match List.find_opt (fun (t, _, _) -> t = 1) (Idtmc.edges d 0) with
   | Some (_, lo, hi) ->
     Alcotest.(check (float 1e-12)) "lo" 0.85 lo;
     Alcotest.(check (float 1e-12)) "hi" 0.95 hi
   | None -> Alcotest.fail "edge lost");
  Alcotest.(check bool) "contains original" true (Idtmc.member d base)

let test_resolve_row () =
  let edges = [ (0, 0.2, 0.4); (1, 0.6, 0.8) ] in
  let x = [| 1.0; 0.0 |] in
  (* optimistic for x: pour max into target 0 *)
  let p = Robust.resolve_row Robust.Optimistic edges x in
  Alcotest.(check (float 1e-12)) "optimistic to 0" 0.4 (List.assoc 0 p);
  Alcotest.(check (float 1e-12)) "rest to 1" 0.6 (List.assoc 1 p);
  let p = Robust.resolve_row Robust.Pessimistic edges x in
  Alcotest.(check (float 1e-12)) "pessimistic to 0" 0.2 (List.assoc 0 p);
  Alcotest.(check (float 1e-12)) "rest to 1" 0.8 (List.assoc 1 p);
  (* distributions always sum to 1 *)
  List.iter
    (fun sem ->
       let p = Robust.resolve_row sem edges x in
       Alcotest.(check (float 1e-12)) "stochastic" 1.0
         (List.fold_left (fun acc (_, q) -> acc +. q) 0.0 p))
    [ Robust.Pessimistic; Robust.Optimistic ]

let test_reachability_bounds () =
  let d = uncertain () in
  let worst = Robust.reachability Robust.Pessimistic d ~target:[ 1 ] in
  let best = Robust.reachability Robust.Optimistic d ~target:[ 1 ] in
  Alcotest.(check (float 1e-9)) "worst = lo" 0.2 worst.(0);
  Alcotest.(check (float 1e-9)) "best = hi" 0.4 best.(0);
  (* the midpoint chain's exact value lies between *)
  let mid =
    Check_dtmc.path_probabilities (Idtmc.midpoint d) (Eventually (Prop "goal"))
  in
  Alcotest.(check bool) "midpoint bracketed" true
    (worst.(0) <= mid.(0) && mid.(0) <= best.(0))

let test_robust_check () =
  let d = uncertain () in
  Alcotest.(check bool) "P>=0.15 robustly" true
    (Robust.check d (Pctl_parser.parse "P>=0.15 [ F goal ]"));
  Alcotest.(check bool) "P>=0.3 not robust (worst is 0.2)" false
    (Robust.check d (Pctl_parser.parse "P>=0.3 [ F goal ]"));
  Alcotest.(check bool) "P<=0.45 robustly" true
    (Robust.check d (Pctl_parser.parse "P<=0.45 [ F goal ]"));
  Alcotest.(check bool) "P<=0.35 not robust (best is 0.4)" false
    (Robust.check d (Pctl_parser.parse "P<=0.35 [ F goal ]"));
  match Robust.check d (Pctl_parser.parse "P>=0.1 [ X goal ]") with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "non-F path formula should be rejected"

let test_robust_reward () =
  (* geometric with uncertain success probability in [0.25, 0.5]:
     E[attempts] ranges over [2, 4]. *)
  let d =
    Idtmc.make ~n:2 ~init:0
      ~transitions:[ (0, 0, 0.5, 0.75); (0, 1, 0.25, 0.5); (1, 1, 1.0, 1.0) ]
      ~labels:[ ("goal", [ 1 ]) ]
      ~rewards:[| 1.0; 0.0 |]
      ()
  in
  let worst = Robust.expected_reward Robust.Pessimistic d ~target:[ 1 ] in
  let best = Robust.expected_reward Robust.Optimistic d ~target:[ 1 ] in
  Alcotest.(check (float 1e-6)) "max cost 4" 4.0 worst.(0);
  Alcotest.(check (float 1e-6)) "min cost 2" 2.0 best.(0);
  Alcotest.(check bool) "R<=4 robust" true
    (Robust.check d (Pctl_parser.parse "R<=4 [ F goal ]"));
  Alcotest.(check bool) "R<=3 not robust" false
    (Robust.check d (Pctl_parser.parse "R<=3 [ F goal ]"));
  (* value iteration converges from below: stay off the exact boundary *)
  Alcotest.(check bool) "R>=1.99 robust" true
    (Robust.check d (Pctl_parser.parse "R>=1.99 [ F goal ]"));
  Alcotest.(check bool) "R>=2.5 not robust" false
    (Robust.check d (Pctl_parser.parse "R>=2.5 [ F goal ]"));
  (* target avoidable forever -> infinite worst-case cost *)
  let trap =
    Idtmc.make ~n:2 ~init:0
      ~transitions:[ (0, 0, 0.5, 1.0); (0, 1, 0.0, 0.5); (1, 1, 1.0, 1.0) ]
      ~rewards:[| 1.0; 0.0 |]
      ()
  in
  let worst = Robust.expected_reward Robust.Pessimistic trap ~target:[ 1 ] in
  Alcotest.(check bool) "divergent" true (worst.(0) = Float.infinity)

(* ---------------- Interval MDPs ---------------- *)

(* choice between a precise action and an uncertain one:
   "sure" reaches goal with exactly 0.5; "gamble" in [0.3, 0.8]. *)
let imdp_choice () =
  Imdp.make ~n:3 ~init:0
    ~actions:
      [ (0, "sure", [ (1, 0.5, 0.5); (2, 0.5, 0.5) ]);
        (0, "gamble", [ (1, 0.3, 0.8); (2, 0.2, 0.7) ]);
        (1, "stay", [ (1, 1.0, 1.0) ]);
        (2, "stay", [ (2, 1.0, 1.0) ]);
      ]
    ~labels:[ ("goal", [ 1 ]) ]
    ()

let test_imdp_construction () =
  let m = imdp_choice () in
  Alcotest.(check int) "n" 3 (Imdp.num_states m);
  Alcotest.(check int) "actions" 2 (List.length (Imdp.actions_of m 0));
  let expect_invalid msg f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s: expected Invalid_argument" msg
  in
  expect_invalid "no actions" (fun () ->
      Imdp.make ~n:2 ~init:0 ~actions:[ (0, "a", [ (0, 1.0, 1.0) ]) ] ());
  expect_invalid "infeasible row" (fun () ->
      Imdp.make ~n:1 ~init:0 ~actions:[ (0, "a", [ (0, 0.1, 0.3) ]) ] ());
  expect_invalid "duplicate action" (fun () ->
      Imdp.make ~n:1 ~init:0
        ~actions:[ (0, "a", [ (0, 1.0, 1.0) ]); (0, "a", [ (0, 1.0, 1.0) ]) ]
        ());
  (* of_mdp lifting *)
  let base =
    Mdp.make ~n:2 ~init:0
      ~actions:[ (0, "go", [ (1, 0.9); (0, 0.1) ]); (1, "stay", [ (1, 1.0) ]) ]
      ()
  in
  let lifted = Imdp.of_mdp ~radius:0.05 base in
  (match List.assoc_opt "go" (Imdp.actions_of lifted 0) with
   | Some edges ->
     let _, lo, hi = List.find (fun (d, _, _) -> d = 1) edges in
     Alcotest.(check (float 1e-12)) "lo" 0.85 lo;
     Alcotest.(check (float 1e-12)) "hi" 0.95 hi
   | None -> Alcotest.fail "action lost")

let test_robust_mdp_reachability () =
  let m = imdp_choice () in
  (* best controller, worst nature: gamble's worst case is 0.3 < sure's
     0.5, so the robust controller plays sure -> 0.5 *)
  let v =
    Robust_mdp.reachability ~controller:Check_mdp.Max
      ~nature:Robust.Pessimistic m ~target:[ 1 ]
  in
  Alcotest.(check (float 1e-9)) "maximin" 0.5 v.(0);
  let pi =
    Robust_mdp.robust_policy ~controller:Check_mdp.Max
      ~nature:Robust.Pessimistic m ~target:[ 1 ]
  in
  Alcotest.(check string) "robust policy plays sure" "sure" pi.(0);
  (* best controller, friendly nature: gamble can reach 0.8 *)
  let v =
    Robust_mdp.reachability ~controller:Check_mdp.Max ~nature:Robust.Optimistic
      m ~target:[ 1 ]
  in
  Alcotest.(check (float 1e-9)) "maximax" 0.8 v.(0);
  let pi =
    Robust_mdp.robust_policy ~controller:Check_mdp.Max ~nature:Robust.Optimistic
      m ~target:[ 1 ]
  in
  Alcotest.(check string) "optimistic policy gambles" "gamble" pi.(0);
  (* worst controller, worst nature: gamble down to 0.3 *)
  let v =
    Robust_mdp.reachability ~controller:Check_mdp.Min
      ~nature:Robust.Pessimistic m ~target:[ 1 ]
  in
  Alcotest.(check (float 1e-9)) "minimin" 0.3 v.(0)

let test_robust_mdp_check () =
  let m = imdp_choice () in
  (* P>=b: min controller + pessimistic nature = 0.3 *)
  Alcotest.(check bool) "P>=0.25 robust" true
    (Robust_mdp.check m (Pctl_parser.parse "P>=0.25 [ F goal ]"));
  Alcotest.(check bool) "P>=0.4 not robust" false
    (Robust_mdp.check m (Pctl_parser.parse "P>=0.4 [ F goal ]"));
  (* P<=b: max controller + optimistic nature = 0.8 *)
  Alcotest.(check bool) "P<=0.85 robust" true
    (Robust_mdp.check m (Pctl_parser.parse "P<=0.85 [ F goal ]"));
  Alcotest.(check bool) "P<=0.7 not robust" false
    (Robust_mdp.check m (Pctl_parser.parse "P<=0.7 [ F goal ]"));
  match Robust_mdp.check m (Pctl_parser.parse "P>=0.1 [ X goal ]") with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "non-F path formula rejected"

let test_robust_mdp_degenerate_agrees_with_mdp () =
  (* zero-radius intervals: robust MDP analysis equals standard MDP
     checking *)
  let m =
    Mdp.make ~n:3 ~init:0
      ~actions:
        [ (0, "safe", [ (1, 1.0) ]);
          (0, "risky", [ (2, 0.8); (1, 0.2) ]);
          (1, "stay", [ (1, 1.0) ]);
          (2, "stay", [ (2, 1.0) ]);
        ]
      ~labels:[ ("good", [ 2 ]) ]
      ()
  in
  let lifted = Imdp.of_mdp ~radius:0.0 m in
  let robust =
    (Robust_mdp.reachability ~controller:Check_mdp.Max
       ~nature:Robust.Pessimistic lifted ~target:[ 2 ]).(0)
  in
  let exact = Check_mdp.path_probability Check_mdp.Max m (Eventually (Prop "good")) in
  Alcotest.(check (float 1e-9)) "agrees" exact robust

(* property: the robust bounds bracket every sampled member chain *)
let props =
  [ QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"robust bounds bracket members" ~count:100
         ~print:(fun t -> Printf.sprintf "t=%.3f" t)
         QCheck2.Gen.(float_range 0.0 1.0)
         (fun t ->
            let d = uncertain () in
            (* a member chain: goal prob = 0.2 + 0.2 t *)
            let p = 0.2 +. (0.2 *. t) in
            let member =
              Dtmc.make ~n:3 ~init:0
                ~transitions:
                  [ (0, 1, p); (0, 2, 1.0 -. p); (1, 1, 1.0); (2, 2, 1.0) ]
                ~labels:[ ("goal", [ 1 ]) ]
                ()
            in
            let exact = Check_dtmc.path_probability member (Eventually (Prop "goal")) in
            let worst = (Robust.reachability Robust.Pessimistic d ~target:[ 1 ]).(0) in
            let best = (Robust.reachability Robust.Optimistic d ~target:[ 1 ]).(0) in
            Idtmc.member d member
            && worst -. 1e-9 <= exact
            && exact <= best +. 1e-9));
  ]

let () =
  Alcotest.run "interval"
    [ ( "idtmc",
        [ Alcotest.test_case "construction" `Quick test_construction;
          Alcotest.test_case "member/midpoint" `Quick test_member_midpoint;
          Alcotest.test_case "of_dtmc" `Quick test_of_dtmc;
        ] );
      ( "robust",
        [ Alcotest.test_case "resolve_row" `Quick test_resolve_row;
          Alcotest.test_case "reachability bounds" `Quick test_reachability_bounds;
          Alcotest.test_case "check" `Quick test_robust_check;
          Alcotest.test_case "rewards" `Quick test_robust_reward;
        ] );
      ( "imdp",
        [ Alcotest.test_case "construction" `Quick test_imdp_construction;
          Alcotest.test_case "reachability" `Quick test_robust_mdp_reachability;
          Alcotest.test_case "check" `Quick test_robust_mdp_check;
          Alcotest.test_case "degenerate = MDP" `Quick
            test_robust_mdp_degenerate_agrees_with_mdp;
        ] );
      ("properties", props);
    ]
