(* Tests for Linalg, Prng and Stats. *)

module V = Linalg.Vec
module M = Linalg.Mat

let vec = Alcotest.(array (float 1e-9))

let test_vec_ops () =
  Alcotest.check vec "add" [| 4.0; 6.0 |] (V.add [| 1.0; 2.0 |] [| 3.0; 4.0 |]);
  Alcotest.check vec "sub" [| -2.0; -2.0 |] (V.sub [| 1.0; 2.0 |] [| 3.0; 4.0 |]);
  Alcotest.check vec "scale" [| 2.0; 4.0 |] (V.scale 2.0 [| 1.0; 2.0 |]);
  Alcotest.check vec "axpy" [| 5.0; 8.0 |] (V.axpy 2.0 [| 1.0; 2.0 |] [| 3.0; 4.0 |]);
  Alcotest.(check (float 1e-9)) "dot" 11.0 (V.dot [| 1.0; 2.0 |] [| 3.0; 4.0 |]);
  Alcotest.(check (float 1e-9)) "norm2" 5.0 (V.norm2 [| 3.0; 4.0 |]);
  Alcotest.(check (float 1e-9)) "norm_inf" 4.0 (V.norm_inf [| 3.0; -4.0 |]);
  Alcotest.(check (float 1e-9)) "dist_inf" 2.0 (V.dist_inf [| 1.0; 5.0 |] [| 3.0; 4.0 |]);
  Alcotest.check_raises "mismatch" (Invalid_argument "Linalg.Vec: dimension mismatch")
    (fun () -> ignore (V.add [| 1.0 |] [| 1.0; 2.0 |]))

let test_mat_ops () =
  let a = M.of_rows [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  let b = M.of_rows [| [| 0.0; 1.0 |]; [| 1.0; 0.0 |] |] in
  let c = M.mul a b in
  Alcotest.(check (float 1e-9)) "mul 00" 2.0 (M.get c 0 0);
  Alcotest.(check (float 1e-9)) "mul 01" 1.0 (M.get c 0 1);
  Alcotest.(check (float 1e-9)) "mul 10" 4.0 (M.get c 1 0);
  Alcotest.check vec "mul_vec" [| 5.0; 11.0 |] (M.mul_vec a [| 1.0; 2.0 |]);
  let t = M.transpose a in
  Alcotest.(check (float 1e-9)) "transpose" 3.0 (M.get t 0 1);
  let i = M.identity 2 in
  Alcotest.(check (float 1e-9)) "identity" 1.0 (M.get i 1 1);
  Alcotest.check vec "row" [| 3.0; 4.0 |] (M.row a 1)

let test_lu_solve () =
  let a = M.of_rows [| [| 2.0; 1.0 |]; [| 1.0; 3.0 |] |] in
  let x = Linalg.lu_solve a [| 5.0; 10.0 |] in
  Alcotest.check vec "2x2" [| 1.0; 3.0 |] x;
  (* needs pivoting: zero on the diagonal *)
  let a = M.of_rows [| [| 0.0; 1.0 |]; [| 1.0; 0.0 |] |] in
  Alcotest.check vec "pivot" [| 2.0; 1.0 |] (Linalg.lu_solve a [| 1.0; 2.0 |]);
  let sing = M.of_rows [| [| 1.0; 2.0 |]; [| 2.0; 4.0 |] |] in
  Alcotest.check_raises "singular" Linalg.Singular (fun () ->
      ignore (Linalg.lu_solve sing [| 1.0; 1.0 |]))

let test_lu_solve_3x3 () =
  let a =
    M.of_rows [| [| 4.0; -2.0; 1.0 |]; [| -2.0; 4.0; -2.0 |]; [| 1.0; -2.0; 4.0 |] |]
  in
  let x_true = [| 1.0; -2.0; 3.0 |] in
  let b = M.mul_vec a x_true in
  Alcotest.check vec "3x3 roundtrip" x_true (Linalg.lu_solve a b)

let test_gauss_seidel () =
  (* Diagonally dominant: converges. *)
  let a = M.of_rows [| [| 4.0; 1.0 |]; [| 1.0; 3.0 |] |] in
  let x_true = [| 0.5; -1.5 |] in
  let b = M.mul_vec a x_true in
  let x = Linalg.gauss_seidel a b [| 0.0; 0.0 |] in
  Alcotest.(check (float 1e-8)) "gs x0" x_true.(0) x.(0);
  Alcotest.(check (float 1e-8)) "gs x1" x_true.(1) x.(1)

let test_lstsq () =
  (* Fit y = 2x + 1 through exact points: residual zero. *)
  let a = M.of_rows [| [| 1.0; 1.0 |]; [| 2.0; 1.0 |]; [| 3.0; 1.0 |] |] in
  let b = [| 3.0; 5.0; 7.0 |] in
  let x = Linalg.lstsq a b in
  Alcotest.(check (float 1e-9)) "slope" 2.0 x.(0);
  Alcotest.(check (float 1e-9)) "intercept" 1.0 x.(1)

let test_inverse () =
  let a = M.of_rows [| [| 4.0; 7.0 |]; [| 2.0; 6.0 |] |] in
  let inv = Linalg.inverse a in
  let prod = M.mul a inv in
  Alcotest.(check (float 1e-9)) "a*inv=I 00" 1.0 (M.get prod 0 0);
  Alcotest.(check (float 1e-9)) "a*inv=I 01" 0.0 (M.get prod 0 1);
  Alcotest.(check (float 1e-9)) "a*inv=I 11" 1.0 (M.get prod 1 1)

(* ---------------- Prng ---------------- *)

let test_prng_determinism () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check (float 0.0)) "same stream" (Prng.float a) (Prng.float b)
  done;
  let c = Prng.create 43 in
  Alcotest.(check bool) "different seed differs" true
    (Prng.float (Prng.create 42) <> Prng.float c)

let test_prng_ranges () =
  let t = Prng.create 7 in
  for _ = 1 to 1000 do
    let f = Prng.float t in
    Alcotest.(check bool) "float in [0,1)" true (f >= 0.0 && f < 1.0);
    let i = Prng.int t 10 in
    Alcotest.(check bool) "int in [0,10)" true (i >= 0 && i < 10);
    let u = Prng.uniform t 2.0 5.0 in
    Alcotest.(check bool) "uniform range" true (u >= 2.0 && u < 5.0)
  done;
  Alcotest.check_raises "bad bound" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int t 0))

let test_prng_categorical () =
  let t = Prng.create 11 in
  let counts = Array.make 3 0 in
  let weights = [| 1.0; 2.0; 7.0 |] in
  let n = 20_000 in
  for _ = 1 to n do
    let i = Prng.categorical t weights in
    counts.(i) <- counts.(i) + 1
  done;
  let frac i = float_of_int counts.(i) /. float_of_int n in
  Alcotest.(check (float 0.02)) "w0" 0.1 (frac 0);
  Alcotest.(check (float 0.02)) "w1" 0.2 (frac 1);
  Alcotest.(check (float 0.02)) "w2" 0.7 (frac 2);
  Alcotest.check_raises "all zero"
    (Invalid_argument "Prng.categorical: zero total weight") (fun () ->
        ignore (Prng.categorical t [| 0.0; 0.0 |]))

let test_prng_gaussian () =
  let t = Prng.create 5 in
  let xs = Array.init 20_000 (fun _ -> Prng.gaussian t) in
  Alcotest.(check (float 0.05)) "mean ~ 0" 0.0 (Stats.mean xs);
  Alcotest.(check (float 0.05)) "stddev ~ 1" 1.0 (Stats.stddev xs)

let test_prng_split () =
  let parent = Prng.create 9 in
  let child = Prng.split parent in
  (* child and parent produce different streams *)
  let a = Array.init 10 (fun _ -> Prng.float parent) in
  let b = Array.init 10 (fun _ -> Prng.float child) in
  Alcotest.(check bool) "independent" true (a <> b)

(* ---------------- Stats ---------------- *)

let test_stats_basic () =
  Alcotest.(check (float 1e-9)) "mean" 2.0 (Stats.mean [| 1.0; 2.0; 3.0 |]);
  Alcotest.(check (float 1e-9)) "variance" 1.0 (Stats.variance [| 1.0; 2.0; 3.0 |]);
  Alcotest.(check (float 1e-9)) "stddev singleton" 0.0 (Stats.stddev [| 5.0 |]);
  Alcotest.(check (float 1e-9)) "median" 2.0 (Stats.quantile 0.5 [| 3.0; 1.0; 2.0 |]);
  Alcotest.(check (float 1e-9)) "q0" 1.0 (Stats.quantile 0.0 [| 3.0; 1.0; 2.0 |]);
  Alcotest.(check (float 1e-9)) "q1" 3.0 (Stats.quantile 1.0 [| 3.0; 1.0; 2.0 |]);
  Alcotest.(check (float 1e-9)) "interp" 1.5 (Stats.quantile 0.25 [| 1.0; 2.0; 3.0 |])

let test_stats_histogram () =
  let h = Stats.histogram ~bins:2 [| 0.0; 0.1; 0.9; 1.0 |] in
  Alcotest.(check int) "bins" 2 (Array.length h);
  Alcotest.(check int) "bin0" 2 (snd h.(0));
  Alcotest.(check int) "bin1" 2 (snd h.(1))

let test_stats_divergences () =
  let p = [| 0.5; 0.5 |] and q = [| 0.5; 0.5 |] in
  Alcotest.(check (float 1e-12)) "kl self" 0.0 (Stats.kl_divergence p q);
  Alcotest.(check (float 1e-12)) "tv self" 0.0 (Stats.total_variation p q);
  let q2 = [| 0.9; 0.1 |] in
  Alcotest.(check bool) "kl positive" true (Stats.kl_divergence p q2 > 0.0);
  Alcotest.(check (float 1e-12)) "tv" 0.4 (Stats.total_variation p q2);
  Alcotest.(check bool) "kl inf" true
    (Stats.kl_divergence [| 1.0; 1.0 |] [| 1.0; 0.0 |] = Float.infinity)

(* ---------------- Properties ---------------- *)

let qtest name ?(count = 100) ~print gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count ~print gen f)

let gen_system =
  (* Well-conditioned random systems: diagonally dominant n x n. *)
  let open QCheck2.Gen in
  let* n = int_range 1 6 in
  let* entries = array_size (return (n * n)) (float_bound_inclusive 1.0) in
  let* x = array_size (return n) (float_bound_inclusive 10.0) in
  let a =
    M.init n n (fun i j ->
        let v = entries.((i * n) + j) in
        if i = j then v +. float_of_int n +. 1.0 else v)
  in
  return (a, x)

let props =
  [ qtest "lu solves what mul produced"
      ~print:(fun (_, x) -> Printf.sprintf "x dim %d" (Array.length x))
      gen_system
      (fun (a, x) ->
         let b = M.mul_vec a x in
         let x' = Linalg.lu_solve a b in
         V.dist_inf x x' < 1e-6);
    qtest "gauss_seidel agrees with lu"
      ~print:(fun (_, x) -> Printf.sprintf "x dim %d" (Array.length x))
      gen_system
      (fun (a, x) ->
         let b = M.mul_vec a x in
         let gs = Linalg.gauss_seidel a b (Array.make (Array.length x) 0.0) in
         let lu = Linalg.lu_solve a b in
         V.dist_inf gs lu < 1e-6);
  ]

let () =
  Alcotest.run "linalg"
    [ ( "vec/mat",
        [ Alcotest.test_case "vec ops" `Quick test_vec_ops;
          Alcotest.test_case "mat ops" `Quick test_mat_ops;
        ] );
      ( "solvers",
        [ Alcotest.test_case "lu 2x2" `Quick test_lu_solve;
          Alcotest.test_case "lu 3x3" `Quick test_lu_solve_3x3;
          Alcotest.test_case "gauss-seidel" `Quick test_gauss_seidel;
          Alcotest.test_case "lstsq" `Quick test_lstsq;
          Alcotest.test_case "inverse" `Quick test_inverse;
        ] );
      ( "prng",
        [ Alcotest.test_case "determinism" `Quick test_prng_determinism;
          Alcotest.test_case "ranges" `Quick test_prng_ranges;
          Alcotest.test_case "categorical" `Quick test_prng_categorical;
          Alcotest.test_case "gaussian" `Quick test_prng_gaussian;
          Alcotest.test_case "split" `Quick test_prng_split;
        ] );
      ( "stats",
        [ Alcotest.test_case "basic" `Quick test_stats_basic;
          Alcotest.test_case "histogram" `Quick test_stats_histogram;
          Alcotest.test_case "divergences" `Quick test_stats_divergences;
        ] );
      ("properties", props);
    ]
