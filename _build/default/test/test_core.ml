(* Tests for Model_repair, Data_repair, Reward_repair and Pipeline on small
   synthetic models (the full §V case studies are exercised in
   test_casestudies.ml). *)

module MR = Model_repair
module DR = Data_repair
module RR = Reward_repair

let parse = Pctl_parser.parse

(* 0 -> goal(1) 0.3 | fail(2) 0.7, absorbing. *)
let branch () =
  Dtmc.make ~n:3 ~init:0
    ~transitions:[ (0, 1, 0.3); (0, 2, 0.7); (1, 1, 1.0); (2, 2, 1.0) ]
    ~labels:[ ("goal", [ 1 ]); ("fail", [ 2 ]) ]
    ()

(* delta: +v on 0->1, -v on 0->2 *)
let branch_spec ?(hi = 0.5) () =
  {
    MR.variables = [ ("v", 0.0, hi) ];
    deltas =
      [ (0, 1, Ratfun.var "v"); (0, 2, Ratfun.neg (Ratfun.var "v")) ];
  }

let test_model_repair_feasible () =
  let d = branch () in
  (* Need P(F goal) >= 0.5: v must rise from 0.3 to 0.5, so v* = 0.2. *)
  match MR.repair d (parse "P>=0.5 [ F goal ]") (branch_spec ()) with
  | MR.Repaired r ->
    Alcotest.(check (float 1e-3)) "v*" 0.2 (List.assoc "v" r.MR.assignment);
    Alcotest.(check (float 1e-3)) "achieved" 0.5 r.MR.achieved_value;
    Alcotest.(check (float 1e-3)) "cost = v*^2" 0.04 r.MR.cost;
    Alcotest.(check bool) "verified" true r.MR.verified;
    Alcotest.(check (float 1e-3)) "model edge updated" 0.5 (Dtmc.prob r.MR.dtmc 0 1)
  | MR.Already_satisfied _ -> Alcotest.fail "not already satisfied"
  | MR.Infeasible _ -> Alcotest.fail "should be feasible"

let test_model_repair_already () =
  let d = branch () in
  match MR.repair d (parse "P>=0.25 [ F goal ]") (branch_spec ()) with
  | MR.Already_satisfied (Some v) -> Alcotest.(check (float 1e-9)) "value" 0.3 v
  | _ -> Alcotest.fail "expected Already_satisfied"

let test_model_repair_infeasible () =
  let d = branch () in
  (* v <= 0.1 cannot lift 0.3 to 0.6. *)
  match MR.repair d (parse "P>=0.6 [ F goal ]") (branch_spec ~hi:0.1 ()) with
  | MR.Infeasible { min_violation } ->
    Alcotest.(check bool) "violation ~ 0.2" true
      (min_violation > 0.1 && min_violation < 0.3)
  | _ -> Alcotest.fail "expected Infeasible"

let test_model_repair_validation () =
  let d = branch () in
  let expect_invalid msg f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s: expected Invalid_argument" msg
  in
  expect_invalid "unknown edge" (fun () ->
      MR.repair d (parse "P>=0.5 [ F goal ]")
        {
          MR.variables = [ ("v", 0.0, 1.0) ];
          deltas = [ (1, 2, Ratfun.var "v") ];
        });
  expect_invalid "undeclared variable" (fun () ->
      MR.repair d (parse "P>=0.5 [ F goal ]")
        {
          MR.variables = [ ("v", 0.0, 1.0) ];
          deltas = [ (0, 1, Ratfun.var "w"); (0, 2, Ratfun.neg (Ratfun.var "w")) ];
        });
  expect_invalid "unbalanced row" (fun () ->
      MR.repair d (parse "P>=0.5 [ F goal ]")
        {
          MR.variables = [ ("v", 0.0, 1.0) ];
          deltas = [ (0, 1, Ratfun.var "v") ];
        });
  expect_invalid "duplicate variables" (fun () ->
      MR.repair d (parse "P>=0.5 [ F goal ]")
        {
          MR.variables = [ ("v", 0.0, 1.0); ("v", 0.0, 1.0) ];
          deltas = [ (0, 1, Ratfun.var "v"); (0, 2, Ratfun.neg (Ratfun.var "v")) ];
        })

let test_model_repair_unsupported_property () =
  let d = branch () in
  match
    MR.repair d
      (parse "P>=0.5 [ F (P>=1 [ G goal ]) ]")
      (branch_spec ())
  with
  | exception Pquery.Unsupported _ -> ()
  | _ -> Alcotest.fail "expected Unsupported"

let test_model_repair_reward_property () =
  (* geometric chain: E[steps to goal] = 1/p, p = 0.2 -> 5 attempts.
     Repair to R <= 3: p must become >= 1/3. *)
  let d =
    Dtmc.make ~n:2 ~init:0
      ~transitions:[ (0, 0, 0.8); (0, 1, 0.2); (1, 1, 1.0) ]
      ~labels:[ ("goal", [ 1 ]) ]
      ~rewards:[| 1.0; 0.0 |]
      ()
  in
  let spec =
    {
      MR.variables = [ ("v", 0.0, 0.5) ];
      deltas =
        [ (0, 1, Ratfun.var "v"); (0, 0, Ratfun.neg (Ratfun.var "v")) ];
    }
  in
  match MR.repair d (parse "R<=3 [ F goal ]") spec with
  | MR.Repaired r ->
    Alcotest.(check (float 1e-3)) "v* = 1/3 - 0.2" (1.0 /. 3.0 -. 0.2)
      (List.assoc "v" r.MR.assignment);
    Alcotest.(check bool) "verified" true r.MR.verified
  | _ -> Alcotest.fail "expected Repaired"

(* ---------------- Data repair ---------------- *)

let biased_traces ~good ~bad =
  List.init good (fun _ -> Trace.of_states [ 0; 1 ])
  @ List.init bad (fun _ -> Trace.of_states [ 0; 2 ])

let test_data_repair_feasible () =
  (* 30% of traces reach goal; require P(F goal) >= 0.5 by dropping some of
     the bad group. Need (1-x)*70 <= 30 -> x >= 4/7. *)
  let groups =
    [ ("good", biased_traces ~good:30 ~bad:0);
      ("bad", biased_traces ~good:0 ~bad:70);
    ]
  in
  let sp = DR.spec ~pinned:[ "good" ] groups in
  match
    DR.repair ~n:3 ~init:0
      ~labels:[ ("goal", [ 1 ]) ]
      (parse "P>=0.5 [ F goal ]")
      sp
  with
  | DR.Repaired r ->
    Alcotest.(check (float 5e-3)) "drop(bad)" (4.0 /. 7.0)
      (List.assoc "bad" r.DR.drop_fractions);
    Alcotest.(check (float 1e-9)) "drop(good) pinned" 0.0
      (List.assoc "good" r.DR.drop_fractions);
    Alcotest.(check bool) "verified" true r.DR.verified;
    Alcotest.(check bool) "dropped ~ 40 traces" true
      (r.DR.dropped_traces > 38.0 && r.DR.dropped_traces < 43.0)
  | DR.Already_satisfied _ -> Alcotest.fail "not already satisfied"
  | DR.Infeasible _ -> Alcotest.fail "should be feasible"

let test_data_repair_already () =
  let groups = [ ("all", biased_traces ~good:80 ~bad:20) ] in
  match
    DR.repair ~n:3 ~init:0
      ~labels:[ ("goal", [ 1 ]) ]
      (parse "P>=0.5 [ F goal ]")
      (DR.spec groups)
  with
  | DR.Already_satisfied (Some v) -> Alcotest.(check (float 1e-9)) "value" 0.8 v
  | _ -> Alcotest.fail "expected Already_satisfied"

let test_data_repair_infeasible () =
  (* Everything pinned: nothing can be dropped. *)
  let groups =
    [ ("good", biased_traces ~good:30 ~bad:0);
      ("bad", biased_traces ~good:0 ~bad:70);
    ]
  in
  let sp = DR.spec ~pinned:[ "good"; "bad" ] groups in
  match
    DR.repair ~n:3 ~init:0
      ~labels:[ ("goal", [ 1 ]) ]
      (parse "P>=0.5 [ F goal ]")
      sp
  with
  | DR.Infeasible _ -> ()
  | _ -> Alcotest.fail "expected Infeasible"

let test_data_repair_spec_validation () =
  (match DR.spec ~max_drop:1.5 [ ("g", []) ] with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "bad max_drop accepted");
  match DR.spec ~pinned:[ "nope" ] [ ("g", []) ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unknown pinned group accepted"

(* ---------------- MDP model repair ---------------- *)

(* Two actions in state 0; both must satisfy P>=b for universal semantics. *)
let mdp_for_repair () =
  Mdp.make ~n:3 ~init:0
    ~actions:
      [ (0, "a", [ (1, 0.3); (2, 0.7) ]);
        (0, "b", [ (1, 0.4); (2, 0.6) ]);
        (1, "stay", [ (1, 1.0) ]);
        (2, "stay", [ (2, 1.0) ]);
      ]
    ~labels:[ ("goal", [ 1 ]) ]
    ()

let mdp_spec hi =
  {
    Mdp_repair.variables = [ ("v", 0.0, hi) ];
    deltas =
      [ (0, "a", 1, Ratfun.var "v");
        (0, "a", 2, Ratfun.neg (Ratfun.var "v"));
        (0, "b", 1, Ratfun.var "v");
        (0, "b", 2, Ratfun.neg (Ratfun.var "v"));
      ];
  }

let test_mdp_repair_feasible () =
  let m = mdp_for_repair () in
  (* P>=0.5 under universal semantics: the worse action ("a", 0.3) binds,
     so v* = 0.2 lifts both to >= 0.5. *)
  match Mdp_repair.repair m (parse "P>=0.5 [ F goal ]") (mdp_spec 0.5) with
  | Mdp_repair.Repaired r ->
    Alcotest.(check (float 2e-3)) "v*" 0.2 (List.assoc "v" r.Mdp_repair.assignment);
    Alcotest.(check int) "2 policies enumerated" 2 r.Mdp_repair.constraints_checked;
    Alcotest.(check bool) "verified" true r.Mdp_repair.verified;
    (* both actions repaired *)
    (match Mdp.find_action r.Mdp_repair.mdp 0 "a" with
     | Some a ->
       Alcotest.(check (float 2e-3)) "a lifted" 0.5 (List.assoc 1 a.Mdp.dist)
     | None -> Alcotest.fail "action lost")
  | _ -> Alcotest.fail "expected Repaired"

let test_mdp_repair_other_outcomes () =
  let m = mdp_for_repair () in
  (match Mdp_repair.repair m (parse "P>=0.25 [ F goal ]") (mdp_spec 0.5) with
   | Mdp_repair.Already_satisfied -> ()
   | _ -> Alcotest.fail "expected Already_satisfied");
  (match Mdp_repair.repair m (parse "P>=0.9 [ F goal ]") (mdp_spec 0.1) with
   | Mdp_repair.Infeasible { min_violation } ->
     Alcotest.(check bool) "violation" true (min_violation > 0.0)
   | _ -> Alcotest.fail "expected Infeasible");
  (* validation *)
  let expect_invalid msg f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s: expected Invalid_argument" msg
  in
  expect_invalid "unknown action" (fun () ->
      Mdp_repair.repair m (parse "P>=0.5 [ F goal ]")
        {
          Mdp_repair.variables = [ ("v", 0.0, 0.5) ];
          deltas = [ (0, "jump", 1, Ratfun.var "v") ];
        });
  expect_invalid "unknown edge" (fun () ->
      Mdp_repair.repair m (parse "P>=0.5 [ F goal ]")
        {
          Mdp_repair.variables = [ ("v", 0.0, 0.5) ];
          deltas = [ (1, "stay", 2, Ratfun.var "v") ];
        });
  expect_invalid "policy cap" (fun () ->
      Mdp_repair.repair ~policy_cap:1 m (parse "P>=0.5 [ F goal ]") (mdp_spec 0.5))

let test_enumerate_policies () =
  let m = mdp_for_repair () in
  let pis = Mdp_repair.enumerate_policies m in
  (* two actions in state 0, one everywhere else *)
  Alcotest.(check int) "count" 2 (List.length pis);
  List.iter
    (fun pi ->
       Alcotest.(check bool) "valid" true (Mdp.validate_policy m pi = Ok ()))
    pis

(* ---------------- Reward repair ---------------- *)

(* Two-path MDP with features: risky path passes a bad state. *)
let rr_mdp () =
  Mdp.make ~n:5 ~init:0
    ~actions:
      [ (0, "risky", [ (1, 1.0) ]);
        (0, "safe", [ (2, 1.0) ]);
        (1, "go", [ (3, 1.0) ]);
        (2, "go", [ (3, 1.0) ]);
        (3, "go", [ (4, 1.0) ]);
        (4, "stay", [ (4, 1.0) ]);
      ]
    ~labels:[ ("bad", [ 1 ]); ("goal", [ 4 ]) ]
    ~features:
      [| [| 0.0; 1.0; 0.0 |] (* s0 *);
         [| 1.0; 0.0; 0.0 |] (* s1: bad *);
         [| 0.0; 0.5; 0.0 |] (* s2: slightly less comfortable *);
         [| 0.0; 1.0; 0.0 |];
         [| 0.0; 0.0; 1.0 |] (* goal *);
      |]
    ()

let test_reward_repair_q () =
  let m = rr_mdp () in
  (* theta makes the bad state attractive: feature0 weight positive *)
  let theta = [| 0.5; 0.1; 1.0 |] in
  let q0 = Value.q_values ~gamma:0.9 (Irl.apply_reward m theta) in
  Alcotest.(check bool) "initially risky preferred" true
    (List.assoc "risky" q0.(0) > List.assoc "safe" q0.(0));
  let c = { RR.state = 0; better = "safe"; worse = "risky"; margin = 1e-4 } in
  match RR.repair_q ~gamma:0.9 m ~theta ~constraints:[ c ] with
  | RR.Repaired r ->
    Alcotest.(check bool) "verified" true r.RR.verified;
    Alcotest.(check string) "policy flips to safe" "safe" r.RR.policy.(0);
    Alcotest.(check bool) "cost positive" true (r.RR.cost > 0.0);
    let gap = List.assoc c r.RR.q_gaps in
    Alcotest.(check bool) "gap >= margin" true (gap >= c.RR.margin -. 1e-9)
  | RR.Already_satisfied -> Alcotest.fail "constraint was violated initially"
  | RR.Infeasible _ -> Alcotest.fail "should be feasible"

let test_reward_repair_already () =
  let m = rr_mdp () in
  let theta = [| -1.0; 0.5; 1.0 |] in
  let c = { RR.state = 0; better = "safe"; worse = "risky"; margin = 1e-4 } in
  match RR.repair_q ~gamma:0.9 m ~theta ~constraints:[ c ] with
  | RR.Already_satisfied -> ()
  | _ -> Alcotest.fail "expected Already_satisfied"

let test_reward_repair_validation () =
  let m = rr_mdp () in
  let expect_invalid msg f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s: expected Invalid_argument" msg
  in
  expect_invalid "bad state" (fun () ->
      RR.repair_q m ~theta:[| 0.0; 0.0; 0.0 |]
        ~constraints:[ { RR.state = 99; better = "a"; worse = "b"; margin = 0.0 } ]);
  expect_invalid "bad action" (fun () ->
      RR.repair_q m ~theta:[| 0.0; 0.0; 0.0 |]
        ~constraints:[ { RR.state = 0; better = "jump"; worse = "risky"; margin = 0.0 } ]);
  expect_invalid "theta dim" (fun () ->
      RR.repair_q m ~theta:[| 0.0 |]
        ~constraints:[ { RR.state = 0; better = "safe"; worse = "risky"; margin = 0.0 } ]);
  expect_invalid "no constraints" (fun () ->
      RR.repair_q m ~theta:[| 0.0; 0.0; 0.0 |] ~constraints:[])

let test_projection_weights () =
  let m = rr_mdp () in
  let theta = [| 0.5; 0.1; 1.0 |] in
  let risky = Trace.make [ (0, "risky"); (1, "go"); (3, "go") ] 4 in
  let safe = Trace.make [ (0, "safe"); (2, "go"); (3, "go") ] 4 in
  let rule = Trace_logic.never (Trace_logic.Atom (Trace_logic.Label "bad")) in
  (* without rules: risky has higher MaxEnt weight (feature0 rewarded) *)
  let w0 = RR.projection_weights m ~theta ~rules:[] [ risky; safe ] in
  Alcotest.(check bool) "risky heavier without rule" true
    (List.assq risky w0 > List.assq safe w0);
  (* with a strong rule, risky mass vanishes: Prop. 4's limit *)
  let w = RR.projection_weights m ~theta ~rules:[ (rule, 50.0) ] [ risky; safe ] in
  Alcotest.(check bool) "risky mass ~ 0" true (List.assq risky w < 1e-6);
  Alcotest.(check (float 1e-6)) "mass normalised" 1.0
    (List.fold_left (fun acc (_, w) -> acc +. w) 0.0 w);
  (* lambda = 0 leaves the distribution untouched *)
  let wfree = RR.projection_weights m ~theta ~rules:[ (rule, 0.0) ] [ risky; safe ] in
  Alcotest.(check (float 1e-9)) "lambda 0 no-op"
    (List.assq risky w0) (List.assq risky wfree);
  (* satisfying trajectories keep their relative mass *)
  Alcotest.(check bool) "errors" true
    (match RR.projection_weights m ~theta ~rules:[ (rule, -1.0) ] [ risky ] with
     | exception Invalid_argument _ -> true
     | _ -> false)

let test_projection_repair_flips_reward () =
  let m = rr_mdp () in
  let theta = [| 0.8; 0.1; 1.0 |] in
  let rng = Prng.create 3 in
  let trajs = RR.sample_trajectories rng m ~theta ~horizon:4 ~count:300 in
  let rule = Trace_logic.never (Trace_logic.Atom (Trace_logic.Label "bad")) in
  let theta' = RR.repair_by_projection m ~theta ~rules:[ (rule, 20.0) ] trajs in
  (* the repaired reward must no longer favour the bad-state feature *)
  Alcotest.(check bool) "bad-state weight reduced" true (theta'.(0) < theta.(0));
  let q = Value.q_values ~gamma:0.9 (Irl.apply_reward m theta') in
  Alcotest.(check bool) "safe preferred after projection repair" true
    (List.assoc "safe" q.(0) >= List.assoc "risky" q.(0))

let test_policy_satisfies () =
  let m = rr_mdp () in
  let rule = Trace_logic.never (Trace_logic.Atom (Trace_logic.Label "bad")) in
  Alcotest.(check bool) "safe policy ok" true
    (RR.policy_satisfies m [| "safe"; "go"; "go"; "go"; "stay" |] ~rules:[ rule ]
       ~horizon:10);
  Alcotest.(check bool) "risky policy violates" false
    (RR.policy_satisfies m [| "risky"; "go"; "go"; "go"; "stay" |] ~rules:[ rule ]
       ~horizon:10)

(* ---------------- Pipeline ---------------- *)

let test_pipeline_original_ok () =
  let groups = [ ("all", biased_traces ~good:80 ~bad:20) ] in
  let report =
    Pipeline.run ~n:3 ~init:0
      ~labels:[ ("goal", [ 1 ]) ]
      ~groups
      (parse "P>=0.5 [ F goal ]")
  in
  (match report.Pipeline.outcome with
   | Pipeline.Original_ok (Some v) -> Alcotest.(check (float 1e-9)) "v" 0.8 v
   | _ -> Alcotest.fail "expected Original_ok");
  (* report is printable *)
  Alcotest.(check bool) "printable" true
    (String.length (Format.asprintf "%a" Pipeline.pp_report report) > 0)

let test_pipeline_model_repair_stage () =
  let groups =
    [ ("good", biased_traces ~good:30 ~bad:0);
      ("bad", biased_traces ~good:0 ~bad:70);
    ]
  in
  let model_spec =
    {
      MR.variables = [ ("v", 0.0, 0.5) ];
      deltas = [ (0, 1, Ratfun.var "v"); (0, 2, Ratfun.neg (Ratfun.var "v")) ];
    }
  in
  let report =
    Pipeline.run ~n:3 ~init:0
      ~labels:[ ("goal", [ 1 ]) ]
      ~model_spec ~groups
      (parse "P>=0.5 [ F goal ]")
  in
  match report.Pipeline.outcome with
  | Pipeline.Model_repaired r ->
    Alcotest.(check bool) "verified" true r.MR.verified
  | _ -> Alcotest.fail "expected Model_repaired"

let test_pipeline_data_repair_stage () =
  (* model repair too constrained -> falls through to data repair *)
  let groups =
    [ ("good", biased_traces ~good:30 ~bad:0);
      ("bad", biased_traces ~good:0 ~bad:70);
    ]
  in
  let model_spec =
    {
      MR.variables = [ ("v", 0.0, 0.01) ];
      deltas = [ (0, 1, Ratfun.var "v"); (0, 2, Ratfun.neg (Ratfun.var "v")) ];
    }
  in
  let data_spec = DR.spec ~pinned:[ "good" ] groups in
  let report =
    Pipeline.run ~n:3 ~init:0
      ~labels:[ ("goal", [ 1 ]) ]
      ~model_spec ~data_spec ~groups
      (parse "P>=0.5 [ F goal ]")
  in
  match report.Pipeline.outcome with
  | Pipeline.Data_repaired r -> Alcotest.(check bool) "verified" true r.DR.verified
  | _ -> Alcotest.fail "expected Data_repaired"

let test_pipeline_unrepairable () =
  let groups =
    [ ("good", biased_traces ~good:30 ~bad:0);
      ("bad", biased_traces ~good:0 ~bad:70);
    ]
  in
  let model_spec =
    {
      MR.variables = [ ("v", 0.0, 0.01) ];
      deltas = [ (0, 1, Ratfun.var "v"); (0, 2, Ratfun.neg (Ratfun.var "v")) ];
    }
  in
  let data_spec = DR.spec ~pinned:[ "good"; "bad" ] groups in
  let report =
    Pipeline.run ~n:3 ~init:0
      ~labels:[ ("goal", [ 1 ]) ]
      ~model_spec ~data_spec ~groups
      (parse "P>=0.5 [ F goal ]")
  in
  match report.Pipeline.outcome with
  | Pipeline.Unrepairable { model_repair_violation; data_repair_violation } ->
    Alcotest.(check bool) "model violation recorded" true
      (model_repair_violation <> None);
    Alcotest.(check bool) "data violation recorded" true
      (data_repair_violation <> None)
  | _ -> Alcotest.fail "expected Unrepairable"

let () =
  Alcotest.run "core"
    [ ( "model repair",
        [ Alcotest.test_case "feasible" `Quick test_model_repair_feasible;
          Alcotest.test_case "already satisfied" `Quick test_model_repair_already;
          Alcotest.test_case "infeasible" `Quick test_model_repair_infeasible;
          Alcotest.test_case "validation" `Quick test_model_repair_validation;
          Alcotest.test_case "unsupported property" `Quick
            test_model_repair_unsupported_property;
          Alcotest.test_case "reward property" `Quick test_model_repair_reward_property;
        ] );
      ( "data repair",
        [ Alcotest.test_case "feasible" `Quick test_data_repair_feasible;
          Alcotest.test_case "already satisfied" `Quick test_data_repair_already;
          Alcotest.test_case "infeasible" `Quick test_data_repair_infeasible;
          Alcotest.test_case "spec validation" `Quick test_data_repair_spec_validation;
        ] );
      ( "mdp model repair",
        [ Alcotest.test_case "feasible" `Quick test_mdp_repair_feasible;
          Alcotest.test_case "other outcomes" `Quick test_mdp_repair_other_outcomes;
          Alcotest.test_case "policy enumeration" `Quick test_enumerate_policies;
        ] );
      ( "reward repair",
        [ Alcotest.test_case "q-constraint repair" `Quick test_reward_repair_q;
          Alcotest.test_case "already satisfied" `Quick test_reward_repair_already;
          Alcotest.test_case "validation" `Quick test_reward_repair_validation;
          Alcotest.test_case "projection weights (Prop. 4)" `Quick test_projection_weights;
          Alcotest.test_case "projection repair" `Quick test_projection_repair_flips_reward;
          Alcotest.test_case "policy_satisfies" `Quick test_policy_satisfies;
        ] );
      ( "pipeline",
        [ Alcotest.test_case "original ok" `Quick test_pipeline_original_ok;
          Alcotest.test_case "model repair stage" `Quick test_pipeline_model_repair_stage;
          Alcotest.test_case "data repair stage" `Quick test_pipeline_data_repair_stage;
          Alcotest.test_case "unrepairable" `Quick test_pipeline_unrepairable;
        ] );
    ]
