(* Tests for Mle and Irl. *)

module Q = Ratio

let test_transition_counts () =
  let traces = [ Trace.of_states [ 0; 1; 2 ]; Trace.of_states [ 0; 1; 1 ] ] in
  let c = Mle.transition_counts ~n:3 traces in
  Alcotest.(check (float 0.0)) "0->1" 2.0 c.(0).(1);
  Alcotest.(check (float 0.0)) "1->2" 1.0 c.(1).(2);
  Alcotest.(check (float 0.0)) "1->1" 1.0 c.(1).(1);
  Alcotest.(check (float 0.0)) "none" 0.0 c.(2).(0);
  Alcotest.check_raises "out of range" (Invalid_argument "Mle: state 9 out of range [0,3)")
    (fun () -> ignore (Mle.transition_counts ~n:3 [ Trace.of_states [ 0; 9 ] ]))

let test_learn_dtmc () =
  (* 3 of 4 transitions from 0 go to 1 *)
  let traces =
    [ Trace.of_states [ 0; 1 ]; Trace.of_states [ 0; 1 ];
      Trace.of_states [ 0; 1 ]; Trace.of_states [ 0; 2 ];
    ]
  in
  let d = Mle.learn_dtmc ~n:3 ~init:0 ~labels:[ ("goal", [ 1 ]) ] traces in
  Alcotest.(check (float 1e-12)) "p01" 0.75 (Dtmc.prob d 0 1);
  Alcotest.(check (float 1e-12)) "p02" 0.25 (Dtmc.prob d 0 2);
  (* unobserved sources become absorbing *)
  Alcotest.(check (float 1e-12)) "absorbing 1" 1.0 (Dtmc.prob d 1 1);
  Alcotest.(check bool) "labels kept" true (Dtmc.has_label d 1 "goal")

let test_learn_dtmc_smoothing () =
  let traces = [ Trace.of_states [ 0; 1 ]; Trace.of_states [ 0; 1 ] ] in
  let d =
    Mle.learn_dtmc ~n:3 ~init:0 ~smoothing:1.0
      ~support:[ (0, 1); (0, 2) ] traces
  in
  (* counts: 0->1: 2+1, 0->2: 0+1 *)
  Alcotest.(check (float 1e-12)) "smoothed p01" 0.75 (Dtmc.prob d 0 1);
  Alcotest.(check (float 1e-12)) "smoothed p02" 0.25 (Dtmc.prob d 0 2);
  Alcotest.check_raises "negative smoothing"
    (Invalid_argument "Mle.learn_dtmc: negative smoothing") (fun () ->
        ignore (Mle.learn_dtmc ~n:2 ~init:0 ~smoothing:(-1.0) traces))

let test_learn_mdp_dists () =
  let m =
    Mdp.make ~n:3 ~init:0
      ~actions:
        [ (0, "go", [ (1, 0.5); (2, 0.5) ]);
          (1, "stay", [ (1, 1.0) ]);
          (2, "stay", [ (2, 1.0) ]);
        ]
      ()
  in
  let traces =
    [ Trace.make [ (0, "go") ] 1;
      Trace.make [ (0, "go") ] 1;
      Trace.make [ (0, "go") ] 1;
      Trace.make [ (0, "go") ] 2;
    ]
  in
  let m' = Mle.learn_mdp_dists m traces in
  (match Mdp.find_action m' 0 "go" with
   | Some a ->
     Alcotest.(check (float 1e-12)) "p(1|0,go)" 0.75 (List.assoc 1 a.Mdp.dist);
     Alcotest.(check (float 1e-12)) "p(2|0,go)" 0.25 (List.assoc 2 a.Mdp.dist)
   | None -> Alcotest.fail "action lost");
  (* unobserved action distributions unchanged *)
  (match Mdp.find_action m' 1 "stay" with
   | Some a -> Alcotest.(check (float 1e-12)) "unchanged" 1.0 (List.assoc 1 a.Mdp.dist)
   | None -> Alcotest.fail "action lost")

let test_parametric_mle () =
  (* Two trace groups from state 0: group "x" goes to 1, group "y" goes
     to 2. P(0->1) = (1-x)·2 / ((1-x)·2 + (1-y)·1). *)
  let groups =
    [ ("x", [ Trace.of_states [ 0; 1 ]; Trace.of_states [ 0; 1 ] ]);
      ("y", [ Trace.of_states [ 0; 2 ] ]);
    ]
  in
  let pd = Mle.parametric_mle ~n:3 ~init:0 ~groups () in
  Alcotest.(check (list string)) "params" [ "x"; "y" ] (Pdtmc.params pd);
  (* evaluate at x=0, y=0: counts 2 vs 1 *)
  let at vx vy =
    let env v = if v = "x" then vx else vy in
    List.assoc 1
      (List.map (fun (d, f) -> (d, Q.to_float (Ratfun.eval env f))) (Pdtmc.succ pd 0))
  in
  Alcotest.(check (float 1e-12)) "x=y=0" (2.0 /. 3.0) (at Q.zero Q.zero);
  (* dropping half of group x: (1·2)/(1·2 + 2·1)·... keep = 1-x = 1/2:
     (0.5·2)/(0.5·2+1·1) = 0.5 *)
  Alcotest.(check (float 1e-12)) "x=1/2" 0.5 (at Q.half Q.zero);
  (* dropping all of group y leaves only 0->1 *)
  Alcotest.(check (float 1e-12)) "y=1" 1.0 (at Q.zero Q.one);
  Alcotest.check_raises "duplicate groups"
    (Invalid_argument "Mle.parametric_mle: duplicate group names") (fun () ->
        ignore (Mle.parametric_mle ~n:2 ~init:0 ~groups:[ ("g", []); ("g", []) ] ()))

(* ---------------- IRL ---------------- *)

(* Two-path MDP: 0 --up--> 1(feature [1;0]) --> 3; 0 --down--> 2([0;1]) --> 3.
   Expert always goes up, so θ must weight feature 0 higher. *)
let irl_mdp () =
  Mdp.make ~n:4 ~init:0
    ~actions:
      [ (0, "up", [ (1, 1.0) ]);
        (0, "down", [ (2, 1.0) ]);
        (1, "go", [ (3, 1.0) ]);
        (2, "go", [ (3, 1.0) ]);
        (3, "stay", [ (3, 1.0) ]);
      ]
    ~features:[| [| 0.0; 0.0 |]; [| 1.0; 0.0 |]; [| 0.0; 1.0 |]; [| 0.0; 0.0 |] |]
    ()

let expert_traces () =
  [ Trace.make [ (0, "up"); (1, "go") ] 3; Trace.make [ (0, "up"); (1, "go") ] 3 ]

let test_irl_learn () =
  let m = irl_mdp () in
  let theta = Irl.learn m (expert_traces ()) in
  Alcotest.(check bool) "prefers feature 0" true (theta.(0) > theta.(1));
  Alcotest.(check bool) "norm bounded" true
    (sqrt ((theta.(0) ** 2.0) +. (theta.(1) ** 2.0)) <= 1.0 +. 1e-9);
  (* induced optimal policy follows the expert *)
  let m' = Irl.apply_reward m theta in
  let pi, _ = Value.optimal_policy ~gamma:0.9 m' in
  Alcotest.(check string) "optimal goes up" "up" pi.(0)

let test_irl_weighted () =
  let m = irl_mdp () in
  (* Weight the "down" trajectory heavily: learned reward must flip. *)
  let weighted =
    [ (Trace.make [ (0, "up"); (1, "go") ] 3, 0.05);
      (Trace.make [ (0, "down"); (2, "go") ] 3, 0.95);
    ]
  in
  let theta = Irl.learn_weighted m weighted in
  Alcotest.(check bool) "prefers feature 1" true (theta.(1) > theta.(0))

let test_irl_helpers () =
  let m = irl_mdp () in
  let emp =
    Irl.empirical_feature_expectations m
      [ (Trace.make [ (0, "up"); (1, "go") ] 3, 1.0) ]
  in
  Alcotest.(check (float 1e-12)) "f0" 1.0 emp.(0);
  Alcotest.(check (float 1e-12)) "f1" 0.0 emp.(1);
  let r = Irl.reward_vector m [| 2.0; -1.0 |] in
  Alcotest.(check (float 1e-12)) "reward s1" 2.0 r.(1);
  Alcotest.(check (float 1e-12)) "reward s2" (-1.0) r.(2);
  let policy = Irl.soft_policy m ~theta:[| 1.0; 0.0 |] ~horizon:3 in
  let p_up = List.assoc "up" policy.(0) in
  let p_down = List.assoc "down" policy.(0) in
  Alcotest.(check bool) "soft policy prefers up" true (p_up > p_down);
  Alcotest.(check (float 1e-9)) "policy normalised" 1.0 (p_up +. p_down);
  let freq = Irl.expected_state_frequencies m ~policy ~horizon:3 in
  Alcotest.(check bool) "mass flows to 1 over 2" true (freq.(1) > freq.(2));
  (* MDP without features is rejected *)
  let bare = Mdp.make ~n:1 ~init:0 ~actions:[ (0, "s", [ (0, 1.0) ]) ] () in
  Alcotest.check_raises "no features" (Invalid_argument "Irl: MDP has no state features")
    (fun () -> ignore (Irl.learn bare []))

(* property: MLE recovers the generating chain from enough samples *)
let props =
  [ QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"mle consistency" ~count:20
         ~print:(fun (p, seed) -> Printf.sprintf "p=%g seed=%d" p seed)
         QCheck2.Gen.(pair (float_range 0.2 0.8) (int_range 0 10_000))
         (fun (p, seed) ->
            let truth =
              Dtmc.make ~n:3 ~init:0
                ~transitions:
                  [ (0, 1, p); (0, 2, 1.0 -. p); (1, 0, 1.0); (2, 2, 1.0) ]
                ()
            in
            let rng = Prng.create seed in
            let traces =
              List.init 600 (fun _ ->
                  Trace.of_states (Dtmc.simulate rng truth ~max_steps:6 ()))
            in
            let learned = Mle.learn_dtmc ~n:3 ~init:0 traces in
            Float.abs (Dtmc.prob learned 0 1 -. p) < 0.08));
  ]

let () =
  Alcotest.run "learn"
    [ ( "mle",
        [ Alcotest.test_case "counts" `Quick test_transition_counts;
          Alcotest.test_case "learn dtmc" `Quick test_learn_dtmc;
          Alcotest.test_case "smoothing" `Quick test_learn_dtmc_smoothing;
          Alcotest.test_case "learn mdp" `Quick test_learn_mdp_dists;
          Alcotest.test_case "parametric" `Quick test_parametric_mle;
        ] );
      ( "irl",
        [ Alcotest.test_case "learn" `Quick test_irl_learn;
          Alcotest.test_case "weighted" `Quick test_irl_weighted;
          Alcotest.test_case "helpers" `Quick test_irl_helpers;
        ] );
      ("properties", props);
    ]
