(* Tests for Pdtmc and Elimination — the parametric model-checking engine. *)

module R = Ratfun
module P = Poly
module Q = Ratio

let rp = R.var "p"
let rq = R.var "q"
let rone = R.one

let check_rf msg expected actual =
  if not (R.equal expected actual) then
    Alcotest.failf "%s: expected %s, got %s" msg (R.to_string expected)
      (R.to_string actual)

(* Geometric chain: 0 -> 1 with prob p, stays with 1-p; 1 absorbing. *)
let geometric () =
  Pdtmc.make ~n:2 ~init:0
    ~transitions:[ (0, 1, rp); (0, 0, R.sub rone rp); (1, 1, rone) ]
    ~labels:[ ("goal", [ 1 ]) ]
    ~rewards:[| rone; R.zero |]
    ()

let test_pdtmc_construction () =
  let d = geometric () in
  Alcotest.(check int) "n" 2 (Pdtmc.num_states d);
  Alcotest.(check (list string)) "params" [ "p" ] (Pdtmc.params d);
  Alcotest.(check (list int)) "label" [ 1 ] (Pdtmc.states_with_label d "goal");
  Alcotest.(check (list int)) "pred" [ 0; 1 ] (Pdtmc.pred d 1);
  check_rf "reward" rone (Pdtmc.reward d 0);
  (* symbolic row-sum validation *)
  (match
     Pdtmc.make ~n:2 ~init:0
       ~transitions:[ (0, 1, rp); (0, 0, rp); (1, 1, rone) ]
       ()
   with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "expected row-sum rejection");
  (match
     Pdtmc.make ~n:1 ~init:0 ~transitions:[ (0, 0, rone); (0, 0, R.zero) ] ()
   with
   | exception Invalid_argument _ -> Alcotest.fail "zero edges are dropped"
   | _ -> ())

let test_pdtmc_instantiate () =
  let d = geometric () in
  let env v = if v = "p" then Q.of_ints 1 4 else Q.zero in
  let c = Pdtmc.instantiate d env in
  Alcotest.(check (float 1e-12)) "prob" 0.25 (Dtmc.prob c 0 1);
  Alcotest.(check (float 1e-12)) "complement" 0.75 (Dtmc.prob c 0 0);
  Alcotest.(check bool) "labels survive" true (Dtmc.has_label c 1 "goal");
  (* out-of-range instantiation rejected *)
  (match Pdtmc.instantiate d (fun _ -> Q.of_int 2) with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "expected rejection of p=2")

let test_of_dtmc_roundtrip () =
  let c =
    Dtmc.make ~n:3 ~init:0
      ~transitions:[ (0, 1, 0.3); (0, 2, 0.7); (1, 1, 1.0); (2, 2, 1.0) ]
      ~labels:[ ("goal", [ 1 ]) ]
      ()
  in
  let d = Pdtmc.of_dtmc c in
  Alcotest.(check (list string)) "no params" [] (Pdtmc.params d);
  let f = Elimination.reachability_probability d ~target:[ 1 ] in
  (match R.to_const_opt f with
   | Some v -> Alcotest.(check (float 1e-12)) "constant 0.3" 0.3 (Q.to_float v)
   | None -> Alcotest.fail "expected a constant")

let test_elim_geometric () =
  let d = geometric () in
  (* Pr(F goal) = p / (1 - (1-p)) = 1 *)
  check_rf "prob is 1" rone (Elimination.reachability_probability d ~target:[ 1 ]);
  (* E[steps] = 1/p *)
  check_rf "expected reward 1/p" (R.inv rp)
    (Elimination.expected_reward d ~target:[ 1 ])

let test_elim_branch () =
  let d =
    Pdtmc.make ~n:3 ~init:0
      ~transitions:
        [ (0, 1, rp); (0, 2, R.sub rone rp); (1, 1, rone); (2, 2, rone) ]
      ()
  in
  check_rf "Pr(F s1) = p" rp (Elimination.reachability_probability d ~target:[ 1 ]);
  check_rf "Pr(F s2) = 1-p" (R.sub rone rp)
    (Elimination.reachability_probability d ~target:[ 2 ]);
  check_rf "Pr(F {1,2}) = 1" rone
    (Elimination.reachability_probability d ~target:[ 1; 2 ])

let test_elim_two_param () =
  (* 0 -p-> 1, 0 -(1-p)-> 2(sink); 1 -q-> 3(goal), 1 -(1-q)-> 0.
     Pr(F goal) = pq / (1 - p(1-q)). *)
  let d =
    Pdtmc.make ~n:4 ~init:0
      ~transitions:
        [ (0, 1, rp);
          (0, 2, R.sub rone rp);
          (1, 3, rq);
          (1, 0, R.sub rone rq);
          (2, 2, rone);
          (3, 3, rone);
        ]
      ()
  in
  let f = Elimination.reachability_probability d ~target:[ 3 ] in
  let expected =
    R.div (R.mul rp rq) (R.sub rone (R.mul rp (R.sub rone rq)))
  in
  check_rf "two-parameter closed form" expected f

let test_elim_unreachable_and_trivial () =
  let d =
    Pdtmc.make ~n:3 ~init:0
      ~transitions:[ (0, 0, rone); (1, 2, rone); (2, 2, rone) ]
      ()
  in
  check_rf "unreachable target" R.zero
    (Elimination.reachability_probability d ~target:[ 2 ]);
  check_rf "init in target" rone
    (Elimination.reachability_probability d ~target:[ 0 ]);
  (match Elimination.expected_reward d ~target:[ 2 ] with
   | exception Elimination.Not_almost_sure 0 -> ()
   | exception e -> raise e
   | _ -> Alcotest.fail "expected Not_almost_sure");
  (match Elimination.reachability_probability d ~target:[] with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "empty target rejected")

let test_elim_orders_agree () =
  let d =
    Pdtmc.make ~n:5 ~init:0
      ~transitions:
        [ (0, 1, rp); (0, 2, R.sub rone rp);
          (1, 3, rq); (1, 2, R.sub rone rq);
          (2, 0, R.const Q.half); (2, 4, R.const Q.half);
          (3, 3, rone); (4, 4, rone);
        ]
      ()
  in
  let f1 = Elimination.reachability_probability ~order:Min_degree d ~target:[ 3 ] in
  let f2 = Elimination.reachability_probability ~order:Ascending d ~target:[ 3 ] in
  let f3 = Elimination.reachability_probability ~order:Descending d ~target:[ 3 ] in
  check_rf "min-degree vs ascending" f1 f2;
  check_rf "min-degree vs descending" f1 f3;
  Alcotest.(check int) "eliminated count" 2
    (Elimination.eliminated_states d ~target:[ 3 ])

let test_elim_reward_compound () =
  (* 0 (r=2) -> 1 w.p. p else stay; 1 (r=3) -> 2 w.p. q else stay; 2 target.
     E = 2/p + 3/q. *)
  let d =
    Pdtmc.make ~n:3 ~init:0
      ~transitions:
        [ (0, 1, rp); (0, 0, R.sub rone rp);
          (1, 2, rq); (1, 1, R.sub rone rq);
          (2, 2, rone);
        ]
      ~rewards:[| R.of_int 2; R.of_int 3; R.zero |]
      ()
  in
  let e = Elimination.expected_reward d ~target:[ 2 ] in
  let expected = R.add (R.div (R.of_int 2) rp) (R.div (R.of_int 3) rq) in
  check_rf "2/p + 3/q" expected e

(* Cross-validation property: symbolic result evaluated at random valuations
   agrees with the numeric model checker on the instantiated chain. *)

let gen_param_chain =
  (* A 6-state parametric chain with params p, q placed on two rows. *)
  let open QCheck2.Gen in
  let* pv = int_range 5 95 in
  let* qv = int_range 5 95 in
  return (Q.of_ints pv 100, Q.of_ints qv 100)

let walk_pdtmc () =
  Pdtmc.make ~n:6 ~init:0
    ~transitions:
      [ (0, 1, rp); (0, 5, R.sub rone rp);
        (1, 2, rq); (1, 0, R.sub rone rq);
        (2, 3, rp); (2, 1, R.sub rone rp);
        (3, 4, R.const Q.half); (3, 2, R.const Q.half);
        (4, 4, rone); (5, 5, rone);
      ]
    ~labels:[ ("goal", [ 4 ]) ]
    ~rewards:[| rone; rone; rone; rone; R.zero; R.zero |]
    ()

let props =
  [ QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"symbolic = numeric (probability)" ~count:60
         ~print:(fun (a, b) -> Printf.sprintf "p=%s q=%s" (Q.to_string a) (Q.to_string b))
         gen_param_chain
         (fun (pv, qv) ->
            let d = walk_pdtmc () in
            let f = Elimination.reachability_probability d ~target:[ 4 ] in
            let env v = if v = "p" then pv else qv in
            let symbolic = Q.to_float (R.eval env f) in
            let numeric =
              Check_dtmc.path_probability (Pdtmc.instantiate d env)
                (Eventually (Prop "goal"))
            in
            Float.abs (symbolic -. numeric) < 1e-9));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"symbolic = numeric (expected reward)" ~count:60
         ~print:(fun (a, b) -> Printf.sprintf "p=%s q=%s" (Q.to_string a) (Q.to_string b))
         gen_param_chain
         (fun (pv, qv) ->
            let d = walk_pdtmc () in
            let f = Elimination.expected_reward d ~target:[ 4; 5 ] in
            let env v = if v = "p" then pv else qv in
            let symbolic = Q.to_float (R.eval env f) in
            let numeric =
              (* relabel the instantiated chain so the numeric checker can
                 name the absorbed set *)
              let c = Pdtmc.instantiate d env in
              let c2 =
                Dtmc.make ~n:6 ~init:0
                  ~transitions:(Dtmc.raw_transitions c)
                  ~labels:[ ("absorbed", [ 4; 5 ]) ]
                  ~rewards:(Dtmc.rewards c) ()
              in
              Check_dtmc.reachability_reward_from_init c2 (Prop "absorbed")
            in
            Float.abs (symbolic -. numeric) < 1e-7));
  ]

let () =
  Alcotest.run "parametric"
    [ ( "pdtmc",
        [ Alcotest.test_case "construction" `Quick test_pdtmc_construction;
          Alcotest.test_case "instantiate" `Quick test_pdtmc_instantiate;
          Alcotest.test_case "of_dtmc" `Quick test_of_dtmc_roundtrip;
        ] );
      ( "elimination",
        [ Alcotest.test_case "geometric" `Quick test_elim_geometric;
          Alcotest.test_case "branch" `Quick test_elim_branch;
          Alcotest.test_case "two params" `Quick test_elim_two_param;
          Alcotest.test_case "unreachable/trivial" `Quick test_elim_unreachable_and_trivial;
          Alcotest.test_case "orders agree" `Quick test_elim_orders_agree;
          Alcotest.test_case "compound reward" `Quick test_elim_reward_compound;
        ] );
      ("properties", props);
    ]
