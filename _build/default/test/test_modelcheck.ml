(* Tests for Graph_analysis, Check_dtmc, Check_mdp. *)

let parse = Pctl_parser.parse

(* Branching chain: 0 -> goal(1) 0.3 | fail(2) 0.7, both absorbing. *)
let branch () =
  Dtmc.make ~n:3 ~init:0
    ~transitions:[ (0, 1, 0.3); (0, 2, 0.7); (1, 1, 1.0); (2, 2, 1.0) ]
    ~labels:[ ("goal", [ 1 ]); ("fail", [ 2 ]) ]
    ()

(* Biased random walk on 0..4: absorbing at 0 ("ruin") and 4 ("win"),
   p(up) = 0.6. Known: Pr(win | start 2) = (1-(q/p)^2)/(1-(q/p)^4). *)
let walk () =
  let p = 0.6 and q = 0.4 in
  Dtmc.make ~n:5 ~init:2
    ~transitions:
      [ (0, 0, 1.0); (4, 4, 1.0);
        (1, 2, p); (1, 0, q);
        (2, 3, p); (2, 1, q);
        (3, 4, p); (3, 2, q);
      ]
    ~labels:[ ("win", [ 4 ]); ("ruin", [ 0 ]) ]
    ~rewards:[| 0.0; 1.0; 1.0; 1.0; 0.0 |]
    ()

(* Geometric chain: 0 stays with 0.5, reaches goal 1 with 0.5. *)
let geometric () =
  Dtmc.make ~n:2 ~init:0
    ~transitions:[ (0, 0, 0.5); (0, 1, 0.5); (1, 1, 1.0) ]
    ~labels:[ ("goal", [ 1 ]) ]
    ~rewards:[| 1.0; 0.0 |]
    ()

let test_graph_prob0_prob1 () =
  let d = branch () in
  let phi2 = [| false; true; false |] in
  let phi1 = [| true; true; true |] in
  let s0 = Graph_analysis.prob0 ~dtmc:d ~phi1 ~phi2 in
  Alcotest.(check (array bool)) "prob0" [| false; false; true |] s0;
  let s1 = Graph_analysis.prob1 ~dtmc:d ~phi1 ~phi2 in
  Alcotest.(check (array bool)) "prob1" [| false; true; false |] s1;
  let fwd = Graph_analysis.forward_reachable d in
  Alcotest.(check (array bool)) "forward" [| true; true; true |] fwd

let test_dtmc_until () =
  let d = branch () in
  Alcotest.(check (float 1e-9)) "F goal" 0.3
    (Check_dtmc.path_probability d (Eventually (Prop "goal")));
  Alcotest.(check (float 1e-9)) "F fail" 0.7
    (Check_dtmc.path_probability d (Eventually (Prop "fail")));
  Alcotest.(check bool) "P>=0.25" true (Check_dtmc.check d (parse "P>=0.25 [ F goal ]"));
  Alcotest.(check bool) "P>=0.35" false (Check_dtmc.check d (parse "P>=0.35 [ F goal ]"));
  Alcotest.(check bool) "P<=0.75 fail" true
    (Check_dtmc.check d (parse "P<=0.75 [ F fail ]"))

let test_dtmc_walk_analytic () =
  let d = walk () in
  let r = 0.4 /. 0.6 in
  let expected = (1.0 -. (r ** 2.0)) /. (1.0 -. (r ** 4.0)) in
  Alcotest.(check (float 1e-9)) "gambler's ruin" expected
    (Check_dtmc.path_probability d (Eventually (Prop "win")));
  (* per-state vector *)
  let ps = Check_dtmc.path_probabilities d (Eventually (Prop "win")) in
  Alcotest.(check (float 1e-9)) "state 0" 0.0 ps.(0);
  Alcotest.(check (float 1e-9)) "state 4" 1.0 ps.(4);
  let e1 = (1.0 -. r) /. (1.0 -. (r ** 4.0)) in
  Alcotest.(check (float 1e-9)) "state 1" e1 ps.(1)

let test_dtmc_next_bounded () =
  let d = geometric () in
  Alcotest.(check (float 1e-9)) "X goal" 0.5
    (Check_dtmc.path_probability d (Next (Prop "goal")));
  Alcotest.(check (float 1e-9)) "F<=3 goal" (1.0 -. (0.5 ** 3.0))
    (Check_dtmc.path_probability d (Bounded_eventually (Prop "goal", 3)));
  Alcotest.(check (float 1e-9)) "F<=0 goal" 0.0
    (Check_dtmc.path_probability d (Bounded_eventually (Prop "goal", 0)));
  Alcotest.(check (float 1e-9)) "bounded until"
    (1.0 -. (0.5 ** 2.0))
    (Check_dtmc.path_probability d (Bounded_until (True, Prop "goal", 2)))

let test_dtmc_globally () =
  let d = branch () in
  (* G !fail: survive forever without failing = reach goal = 0.3 *)
  Alcotest.(check (float 1e-9)) "G !fail" 0.3
    (Check_dtmc.path_probability d (Globally (Not (Prop "fail"))));
  Alcotest.(check (float 1e-9)) "G<=1 !fail" 0.3
    (Check_dtmc.path_probability d (Bounded_globally (Not (Prop "fail"), 1)));
  Alcotest.(check bool) "check G" true
    (Check_dtmc.check d (parse "P>=0.25 [ G !fail ]"))

let test_dtmc_reward () =
  let d = geometric () in
  (* expected visits to state 0 before absorbing = 2, reward 1 each *)
  Alcotest.(check (float 1e-9)) "geometric reward" 2.0
    (Check_dtmc.reachability_reward_from_init d (Prop "goal"));
  Alcotest.(check bool) "R<=2" true (Check_dtmc.check d (parse "R<=2 [ F goal ]"));
  Alcotest.(check bool) "R<2" false (Check_dtmc.check d (parse "R<2 [ F goal ]"));
  (* unreachable target -> infinite expected reward *)
  let d2 = branch () in
  let r = Check_dtmc.reachability_reward d2 (Prop "goal") in
  Alcotest.(check bool) "inf from fail" true (r.(2) = Float.infinity);
  Alcotest.(check bool) "inf from init (prob < 1)" true (r.(0) = Float.infinity);
  Alcotest.(check (float 1e-9)) "zero at target" 0.0 r.(1);
  (* symmetric walk expected absorption time: from state 2 of 0..4 walk with
     p=q=1/2 it is i*(N-i) = 4; build it here *)
  let sym =
    Dtmc.make ~n:5 ~init:2
      ~transitions:
        [ (0, 0, 1.0); (4, 4, 1.0);
          (1, 2, 0.5); (1, 0, 0.5);
          (2, 3, 0.5); (2, 1, 0.5);
          (3, 4, 0.5); (3, 2, 0.5);
        ]
      ~labels:[ ("absorbed", [ 0; 4 ]) ]
      ~rewards:[| 0.0; 1.0; 1.0; 1.0; 0.0 |]
      ()
  in
  Alcotest.(check (float 1e-9)) "symmetric walk steps" 4.0
    (Check_dtmc.reachability_reward_from_init sym (Prop "absorbed"))

let test_dtmc_nested () =
  let d = branch () in
  (* States satisfying P>=1 [ G goal ]: only state 1. Probability of
     eventually reaching such a state = 0.3. *)
  let f = parse "P>=0.25 [ F (P>=1 [ G goal ]) ]" in
  Alcotest.(check bool) "nested" true (Check_dtmc.check d f);
  let v = Check_dtmc.check_verbose d f in
  Alcotest.(check bool) "verbose holds" true v.Check_dtmc.holds;
  (match v.Check_dtmc.value with
   | Some p -> Alcotest.(check (float 1e-9)) "verbose value" 0.3 p
   | None -> Alcotest.fail "expected value");
  (* propositional verdict has no value *)
  let v2 = Check_dtmc.check_verbose d (parse "true") in
  Alcotest.(check bool) "no value" true (v2.Check_dtmc.value = None)

(* ---------------- MDP ---------------- *)

let mdp_choice () =
  (* 0: "safe" -> 1 (bad) surely; "risky" -> 2 (good) 0.8 / 1 (bad) 0.2 *)
  Mdp.make ~n:3 ~init:0
    ~actions:
      [ (0, "safe", [ (1, 1.0) ]);
        (0, "risky", [ (2, 0.8); (1, 0.2) ]);
        (1, "stay", [ (1, 1.0) ]);
        (2, "stay", [ (2, 1.0) ]);
      ]
    ~labels:[ ("good", [ 2 ]); ("bad", [ 1 ]) ]
    ()

let test_mdp_prob () =
  let m = mdp_choice () in
  Alcotest.(check (float 1e-9)) "Pmax F good" 0.8
    (Check_mdp.path_probability Check_mdp.Max m (Eventually (Prop "good")));
  Alcotest.(check (float 1e-9)) "Pmin F good" 0.0
    (Check_mdp.path_probability Check_mdp.Min m (Eventually (Prop "good")));
  (* universal semantics *)
  Alcotest.(check bool) "P>=0.5 fails (min=0)" false
    (Check_mdp.check m (parse "P>=0.5 [ F good ]"));
  Alcotest.(check bool) "P<=0.9 holds (max=0.8)" true
    (Check_mdp.check m (parse "P<=0.9 [ F good ]"));
  Alcotest.(check bool) "P<=0.5 fails (max=0.8)" false
    (Check_mdp.check m (parse "P<=0.5 [ F good ]"));
  Alcotest.(check (float 1e-9)) "Pmax X good" 0.8
    (Check_mdp.path_probability Check_mdp.Max m (Next (Prop "good")));
  Alcotest.(check (float 1e-9)) "Pmax F<=1 good" 0.8
    (Check_mdp.path_probability Check_mdp.Max m (Bounded_eventually (Prop "good", 1)));
  Alcotest.(check (float 1e-9)) "Pmin G !good" 0.2
    (Check_mdp.path_probability Check_mdp.Min m (Globally (Not (Prop "good"))))

let mdp_cost () =
  (* Reach goal 2 from 0: "direct" costs 10, "detour" 0 -> 1 -> 2 costs 2+2. *)
  Mdp.make ~n:3 ~init:0
    ~actions:
      [ (0, "direct", [ (2, 1.0) ]);
        (0, "detour", [ (1, 1.0) ]);
        (1, "go", [ (2, 1.0) ]);
        (2, "stay", [ (2, 1.0) ]);
      ]
    ~action_rewards:[ ((0, "direct"), 10.0); ((0, "detour"), 2.0); ((1, "go"), 2.0) ]
    ~labels:[ ("goal", [ 2 ]) ]
    ()

let test_mdp_reward () =
  let m = mdp_cost () in
  Alcotest.(check (float 1e-6)) "Rmin" 4.0
    (Check_mdp.reachability_reward_from_init Check_mdp.Min m (Prop "goal"));
  Alcotest.(check (float 1e-6)) "Rmax" 10.0
    (Check_mdp.reachability_reward_from_init Check_mdp.Max m (Prop "goal"));
  Alcotest.(check bool) "R<=10" true (Check_mdp.check m (parse "R<=10 [ F goal ]"));
  Alcotest.(check bool) "R<=9" false (Check_mdp.check m (parse "R<=9 [ F goal ]"));
  Alcotest.(check bool) "R>=4" true (Check_mdp.check m (parse "R>=4 [ F goal ]"));
  Alcotest.(check bool) "R>=5" false (Check_mdp.check m (parse "R>=5 [ F goal ]"));
  let pi = Check_mdp.optimal_reachability_policy Check_mdp.Min m (Prop "goal") in
  Alcotest.(check string) "min policy takes detour" "detour" pi.(0);
  let pi = Check_mdp.optimal_reachability_policy Check_mdp.Max m (Prop "goal") in
  Alcotest.(check string) "max policy goes direct" "direct" pi.(0);
  let v = Check_mdp.check_verbose m (parse "R<=10 [ F goal ]") in
  (match v.Check_mdp.value with
   | Some r -> Alcotest.(check (float 1e-6)) "verbose Rmax" 10.0 r
   | None -> Alcotest.fail "expected value")

let test_mdp_divergence () =
  (* A state that can never reach the goal makes Rmax infinite. *)
  let m =
    Mdp.make ~n:3 ~init:0
      ~actions:
        [ (0, "to_trap", [ (1, 1.0) ]);
          (0, "to_goal", [ (2, 1.0) ]);
          (1, "stay", [ (1, 1.0) ]);
          (2, "stay", [ (2, 1.0) ]);
        ]
      ~action_rewards:[ ((0, "to_goal"), 1.0); ((1, "stay"), 1.0) ]
      ~labels:[ ("goal", [ 2 ]) ]
      ()
  in
  let rmax = Check_mdp.reachability_reward_from_init ~max_iter:200_000 Check_mdp.Max m (Prop "goal") in
  Alcotest.(check bool) "Rmax diverges" true (rmax = Float.infinity);
  Alcotest.(check (float 1e-6)) "Rmin fine" 1.0
    (Check_mdp.reachability_reward_from_init Check_mdp.Min m (Prop "goal"))

(* ---------------- Agreement properties ---------------- *)

let qtest name ?(count = 30) ~print gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count ~print gen f)

let gen_absorbing_dtmc =
  (* Random chains over n states where state n-1 is an absorbing "goal" and
     every state has some path forward; used to compare checker vs
     simulation. *)
  let open QCheck2.Gen in
  let* n = int_range 3 7 in
  let* seed = int_range 0 1_000_000 in
  let rng = Prng.create seed in
  let transitions = ref [ (n - 1, n - 1, 1.0) ] in
  for s = 0 to n - 2 do
    (* two successors: one random, one strictly greater (ensures progress) *)
    let fwd = s + 1 + Prng.int rng (n - s - 1) in
    let other = Prng.int rng n in
    let p = 0.3 +. (0.4 *. Prng.float rng) in
    if other = fwd then transitions := (s, fwd, 1.0) :: !transitions
    else transitions := (s, fwd, p) :: (s, other, 1.0 -. p) :: !transitions
  done;
  return
    (Dtmc.make ~n ~init:0 ~transitions:!transitions
       ~labels:[ ("goal", [ n - 1 ]) ]
       ())

let props =
  [ qtest "checker agrees with simulation"
      ~print:(fun d -> Format.asprintf "%a" Dtmc.pp d)
      gen_absorbing_dtmc
      (fun d ->
         let exact = Check_dtmc.path_probability d (Eventually (Prop "goal")) in
         let rng = Prng.create 123 in
         let n = 4000 in
         let hits = ref 0 in
         for _ = 1 to n do
           let path = Dtmc.simulate rng d ~max_steps:500 () in
           let final = List.nth path (List.length path - 1) in
           if Dtmc.has_label d final "goal" then incr hits
         done;
         let freq = float_of_int !hits /. float_of_int n in
         Float.abs (freq -. exact) < 0.05);
    qtest "single-action MDP agrees with DTMC checker"
      ~print:(fun d -> Format.asprintf "%a" Dtmc.pp d)
      gen_absorbing_dtmc
      (fun d ->
         let n = Dtmc.num_states d in
         let actions =
           List.concat
             (List.init n (fun s ->
                  [ (s, "only", Dtmc.succ d s) ]))
         in
         let m =
           Mdp.make ~n ~init:0 ~actions ~labels:[ ("goal", [ n - 1 ]) ] ()
         in
         let pd = Check_dtmc.path_probability d (Eventually (Prop "goal")) in
         let pmin = Check_mdp.path_probability Check_mdp.Min m (Eventually (Prop "goal")) in
         let pmax = Check_mdp.path_probability Check_mdp.Max m (Eventually (Prop "goal")) in
         Float.abs (pd -. pmin) < 1e-6 && Float.abs (pd -. pmax) < 1e-6);
    qtest "bounded until converges to unbounded"
      ~print:(fun d -> Format.asprintf "%a" Dtmc.pp d)
      gen_absorbing_dtmc
      (fun d ->
         let unbounded = Check_dtmc.path_probability d (Eventually (Prop "goal")) in
         let bounded =
           Check_dtmc.path_probability d (Bounded_eventually (Prop "goal", 2000))
         in
         Float.abs (unbounded -. bounded) < 1e-6);
  ]

let () =
  Alcotest.run "modelcheck"
    [ ( "graph",
        [ Alcotest.test_case "prob0/prob1" `Quick test_graph_prob0_prob1 ] );
      ( "dtmc",
        [ Alcotest.test_case "until" `Quick test_dtmc_until;
          Alcotest.test_case "gambler analytic" `Quick test_dtmc_walk_analytic;
          Alcotest.test_case "next/bounded" `Quick test_dtmc_next_bounded;
          Alcotest.test_case "globally" `Quick test_dtmc_globally;
          Alcotest.test_case "rewards" `Quick test_dtmc_reward;
          Alcotest.test_case "nested/verbose" `Quick test_dtmc_nested;
        ] );
      ( "mdp",
        [ Alcotest.test_case "probabilities" `Quick test_mdp_prob;
          Alcotest.test_case "rewards" `Quick test_mdp_reward;
          Alcotest.test_case "divergence" `Quick test_mdp_divergence;
        ] );
      ("properties", props);
    ]
