(* Direct tests for Pquery: symbolic PCTL queries over parametric chains,
   cross-validated against the numeric engine at random valuations. *)

module R = Ratfun
module Q = Ratio

let rp = R.var "p"

(* 0 --p--> 1(goal), 0 --(1-p)--> 2(mid), 2 --1/2--> 1, 2 --1/2--> 3(fail);
   1 and 3 absorbing. *)
let chain () =
  Pdtmc.make ~n:4 ~init:0
    ~transitions:
      [ (0, 1, rp);
        (0, 2, R.sub R.one rp);
        (2, 1, R.const Q.half);
        (2, 3, R.const Q.half);
        (1, 1, R.one);
        (3, 3, R.one);
      ]
    ~labels:[ ("goal", [ 1 ]); ("mid", [ 2 ]); ("fail", [ 3 ]) ]
    ()

let check_rf msg expected actual =
  if not (R.equal expected actual) then
    Alcotest.failf "%s: expected %s, got %s" msg (R.to_string expected)
      (R.to_string actual)

let test_propositional_sat () =
  let d = chain () in
  let sat = Pquery.propositional_sat d (Pctl_parser.parse "goal | fail") in
  Alcotest.(check (array bool)) "sat" [| false; true; false; true |] sat;
  let sat = Pquery.propositional_sat d (Pctl_parser.parse "!mid & !goal") in
  Alcotest.(check (array bool)) "neg" [| true; false; false; true |] sat;
  match Pquery.propositional_sat d (Pctl_parser.parse "P>=1 [ X goal ]") with
  | exception Pquery.Unsupported _ -> ()
  | _ -> Alcotest.fail "nested P rejected"

let test_symbolic_operators () =
  let d = chain () in
  (* Next: Pr(X goal) = p *)
  check_rf "X goal" rp (Pquery.path_probability d (Next (Prop "goal")));
  (* Eventually: p + (1-p)/2 = (1+p)/2 *)
  check_rf "F goal"
    (R.div (R.add R.one rp) (R.of_int 2))
    (Pquery.path_probability d (Eventually (Prop "goal")));
  (* Until with restriction: (!fail) U goal = same here *)
  check_rf "U goal"
    (R.div (R.add R.one rp) (R.of_int 2))
    (Pquery.path_probability d (Until (Not (Prop "fail"), Prop "goal")));
  (* Until restricted away from mid: only the direct edge counts *)
  check_rf "restricted U" rp
    (Pquery.path_probability d (Until (Not (Prop "mid"), Prop "goal")));
  (* Globally: G !goal = 1 - F goal = (1-p)/2 *)
  check_rf "G !goal"
    (R.div (R.sub R.one rp) (R.of_int 2))
    (Pquery.path_probability d (Globally (Not (Prop "goal"))));
  (* Bounded eventually within 1 step sees only the direct edge *)
  check_rf "F<=1" rp
    (Pquery.path_probability d (Bounded_eventually (Prop "goal", 1)));
  (* ... within 2 steps, the full mass *)
  check_rf "F<=2"
    (R.div (R.add R.one rp) (R.of_int 2))
    (Pquery.path_probability d (Bounded_eventually (Prop "goal", 2)));
  (* bounded globally *)
  check_rf "G<=1 !goal" (R.sub R.one rp)
    (Pquery.path_probability d (Bounded_globally (Not (Prop "goal"), 1)))

let test_of_formula_and_violation () =
  let d = chain () in
  let q = Pquery.of_formula d (Pctl_parser.parse "P>=0.9 [ F goal ]") in
  (* violation at p: 0.9 - (1+p)/2; feasible iff p >= 0.8 *)
  Alcotest.(check (float 1e-12)) "violated at p=0.5" (0.9 -. 0.75)
    (Pquery.constraint_violation q (fun _ -> 0.5));
  Alcotest.(check bool) "satisfied at p=0.9" true
    (Pquery.constraint_violation q (fun _ -> 0.9) <= 0.0);
  Alcotest.(check bool) "margin shifts boundary" true
    (Pquery.constraint_violation ~margin:0.2 q (fun _ -> 0.9) > 0.0);
  (* compiled eval agrees with exact eval *)
  Alcotest.(check (float 1e-12)) "eval agrees"
    (Q.to_float (R.eval (fun _ -> Q.of_ints 1 3) q.Pquery.value))
    (q.Pquery.eval (fun _ -> 1.0 /. 3.0));
  (* non-P/R top level rejected *)
  (match Pquery.of_formula d (Pctl_parser.parse "goal") with
   | exception Pquery.Unsupported _ -> ()
   | _ -> Alcotest.fail "expected Unsupported")

(* cross-validation: every symbolic operator agrees with the numeric
   checker at random p *)
let props =
  let operators =
    [ ("X", Pctl.Next (Pctl.Prop "goal"));
      ("F", Pctl.Eventually (Pctl.Prop "goal"));
      ("U", Pctl.Until (Pctl.Not (Pctl.Prop "fail"), Pctl.Prop "goal"));
      ("F<=2", Pctl.Bounded_eventually (Pctl.Prop "goal", 2));
      ("U<=3", Pctl.Bounded_until (Pctl.True, Pctl.Prop "goal", 3));
      ("G", Pctl.Globally (Pctl.Not (Pctl.Prop "fail")));
      ("G<=2", Pctl.Bounded_globally (Pctl.Not (Pctl.Prop "fail"), 2));
    ]
  in
  List.map
    (fun (name, psi) ->
       QCheck_alcotest.to_alcotest
         (QCheck2.Test.make
            ~name:(Printf.sprintf "symbolic %s = numeric" name)
            ~count:40
            ~print:(fun i -> Printf.sprintf "p=%d/100" i)
            QCheck2.Gen.(int_range 1 99)
            (fun i ->
               let d = chain () in
               let f = Pquery.path_probability d psi in
               let pv = Q.of_ints i 100 in
               let symbolic = Q.to_float (R.eval (fun _ -> pv) f) in
               let numeric =
                 Check_dtmc.path_probability
                   (Pdtmc.instantiate d (fun _ -> pv))
                   psi
               in
               Float.abs (symbolic -. numeric) < 1e-9)))
    operators

let () =
  Alcotest.run "pquery"
    [ ( "unit",
        [ Alcotest.test_case "propositional sat" `Quick test_propositional_sat;
          Alcotest.test_case "symbolic operators" `Quick test_symbolic_operators;
          Alcotest.test_case "of_formula/violation" `Quick test_of_formula_and_violation;
        ] );
      ("cross-validation", props);
    ]
