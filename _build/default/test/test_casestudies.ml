(* End-to-end tests of the §V case studies (experiments E1–E6, F1). *)

(* ---------------- WSN (§V-A) ---------------- *)

let test_wsn_structure () =
  let p = Wsn.default_params in
  let d = Wsn.chain p in
  Alcotest.(check int) "9 states" 9 (Dtmc.num_states d);
  Alcotest.(check int) "init is far corner" 8 (Dtmc.init_state d);
  Alcotest.(check int) "station is 0" 0 (Wsn.node_id p 1 1);
  Alcotest.(check bool) "delivered label" true (Dtmc.has_label d 0 "delivered");
  Alcotest.(check bool) "delivered absorbing" true (Dtmc.is_absorbing d 0);
  Alcotest.(check (float 1e-12)) "attempt reward" 1.0 (Dtmc.reward d 8);
  Alcotest.(check (float 1e-12)) "no reward at station" 0.0 (Dtmc.reward d 0);
  Alcotest.(check bool) "field/station classes" true
    (Wsn.is_field_station_row p 1 && Wsn.is_field_station_row p 3
     && not (Wsn.is_field_station_row p 2));
  (* far corner: two forwarding targets plus the retry self-loop *)
  Alcotest.(check int) "corner out-degree" 3 (List.length (Dtmc.succ d 8));
  (match Wsn.node_id p 0 1 with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "bad coords accepted")

let test_wsn_e1_satisfied () =
  (* E1: R{attempts} <= 100 [F delivered] holds without repair. *)
  let p = Wsn.default_params in
  let e = Wsn.expected_attempts p in
  Alcotest.(check bool) "E in (40, 100]" true (e > 40.0 && e <= 100.0);
  Alcotest.(check bool) "property holds" true
    (Check_dtmc.check (Wsn.chain p) (Wsn.property 100));
  match Model_repair.repair (Wsn.chain p) (Wsn.property 100) (Wsn.repair_spec p) with
  | Model_repair.Already_satisfied (Some v) ->
    Alcotest.(check (float 1e-6)) "reported value" e v
  | _ -> Alcotest.fail "expected Already_satisfied"

let test_wsn_e2_model_repair () =
  (* E2: X = 40 requires repair and admits it; corrections are small and
     positive (paper: p = 0.045, q = 0.081). *)
  let p = Wsn.default_params in
  match Model_repair.repair (Wsn.chain p) (Wsn.property 40) (Wsn.repair_spec p) with
  | Model_repair.Repaired r ->
    let pv = List.assoc "p" r.Model_repair.assignment in
    let qv = List.assoc "q" r.Model_repair.assignment in
    Alcotest.(check bool) "p small positive" true (pv > 0.0 && pv < 0.1);
    Alcotest.(check bool) "q small positive" true (qv > 0.0 && qv < 0.1);
    Alcotest.(check bool) "achieved <= 40" true
      (r.Model_repair.achieved_value <= 40.0 +. 1e-6);
    Alcotest.(check bool) "verified" true r.Model_repair.verified;
    (* repaired chain has strictly fewer expected attempts *)
    let e' =
      Check_dtmc.reachability_reward_from_init r.Model_repair.dtmc
        (Prop "delivered")
    in
    Alcotest.(check bool) "improved" true (e' < Wsn.expected_attempts p)
  | _ -> Alcotest.fail "expected Repaired"

let test_wsn_e3_infeasible () =
  (* E3: X = 19 is out of reach within the correction bounds. *)
  let p = Wsn.default_params in
  match Model_repair.repair (Wsn.chain p) (Wsn.property 19) (Wsn.repair_spec p) with
  | Model_repair.Infeasible { min_violation } ->
    Alcotest.(check bool) "positive violation" true (min_violation > 1.0)
  | _ -> Alcotest.fail "expected Infeasible"

let test_wsn_e4_data_repair () =
  (* E4: dropping failure observations lets the re-learned model meet
     X = 19 (paper §V-A.2). Reduced observation count for test speed. *)
  let p = Wsn.default_params in
  let rng = Prng.create 42 in
  let groups = Wsn.observation_groups rng p ~count:1500 in
  List.iter
    (fun (g, traces) ->
       Alcotest.(check bool) (g ^ " non-empty") true (traces <> []))
    groups;
  let rewards = Array.init 9 (fun s -> if s = 0 then Ratio.zero else Ratio.one) in
  let sp = Data_repair.spec ~pinned:[ "success" ] groups in
  match
    Data_repair.repair ~n:9 ~init:8
      ~labels:[ ("delivered", [ 0 ]) ]
      ~rewards ~starts:4 (Wsn.property 19) sp
  with
  | Data_repair.Repaired r ->
    Alcotest.(check (float 1e-9)) "success pinned" 0.0
      (List.assoc "success" r.Data_repair.drop_fractions);
    Alcotest.(check bool) "failure drops positive" true
      (List.assoc "fail_field_station" r.Data_repair.drop_fractions > 0.0
       && List.assoc "fail_other" r.Data_repair.drop_fractions > 0.0);
    Alcotest.(check bool) "achieved <= 19" true
      (r.Data_repair.achieved_value <= 19.0 +. 1e-6);
    Alcotest.(check bool) "verified" true r.Data_repair.verified
  | Data_repair.Already_satisfied _ -> Alcotest.fail "not already satisfied"
  | Data_repair.Infeasible _ -> Alcotest.fail "should be feasible"

let test_wsn_learning_recovers_chain () =
  (* MLE on full routing traces recovers the chain's success probabilities. *)
  let p = Wsn.default_params in
  let d = Wsn.chain p in
  let rng = Prng.create 5 in
  let traces =
    List.init 800 (fun _ ->
        Trace.of_states (Dtmc.simulate rng d ~max_steps:400 ()))
  in
  let learned =
    Mle.learn_dtmc ~n:9 ~init:8 ~labels:[ ("delivered", [ 0 ]) ] traces
  in
  (* compare a couple of edges *)
  Alcotest.(check bool) "self-loop close" true
    (Float.abs (Dtmc.prob learned 8 8 -. Dtmc.prob d 8 8) < 0.05);
  Alcotest.(check bool) "fwd close" true
    (Float.abs (Dtmc.prob learned 8 7 -. Dtmc.prob d 8 7) < 0.05)

(* ---------------- Car (§V-B) ---------------- *)

let test_car_f1_structure () =
  (* F1: the Fig. 1 MDP structure. *)
  let m = Car.mdp () in
  Alcotest.(check int) "11 states" 11 (Mdp.num_states m);
  Alcotest.(check int) "starts at S0" 0 (Mdp.init_state m);
  Alcotest.(check (list int)) "unsafe = {S2, S10}" [ 2; 10 ]
    (Mdp.states_with_label m "unsafe");
  Alcotest.(check (list int)) "target = {S4}" [ 4 ] (Mdp.states_with_label m "target");
  (* driveable states have 3 actions, sinks have 1 *)
  List.iter
    (fun s ->
       let expected = if s = 4 || s = 10 then 1 else 3 in
       Alcotest.(check int)
         (Printf.sprintf "actions of S%d" s)
         expected
         (List.length (Mdp.actions_of m s)))
    (List.init 11 Fun.id);
  (* geometry spot-checks from Fig. 1 *)
  let goes s a d =
    match Mdp.find_action m s a with
    | Some act -> List.assoc_opt d act.Mdp.dist = Some 1.0
    | None -> false
  in
  Alcotest.(check bool) "S1 fwd hits van" true (goes 1 "fwd" 2);
  Alcotest.(check bool) "S1 left to S6" true (goes 1 "left" 6);
  Alcotest.(check bool) "S8 right to S3" true (goes 8 "right" 3);
  Alcotest.(check bool) "S9 fwd off-road" true (goes 9 "fwd" 10);
  Alcotest.(check bool) "S9 right to S4" true (goes 9 "right" 4);
  Alcotest.(check bool) "S3 fwd to target" true (goes 3 "fwd" 4);
  Alcotest.(check bool) "right-lane right goes off-road" true (goes 0 "right" 10);
  Alcotest.(check bool) "left-lane left goes off-road" true (goes 5 "left" 10);
  Alcotest.(check int) "3 features" 3 (Mdp.feature_dim m);
  (* the expert trace is consistent with the dynamics *)
  Alcotest.(check bool) "expert trace possible" true
    (Float.is_finite (Trace.log_probability m (Car.expert_trace ())));
  Alcotest.(check bool) "expert is safe" true
    (Trace_logic.eval ~labels:(Mdp.has_label m) (Car.expert_trace ())
       Car.safety_rule)

let test_car_e5_irl_unsafe_policy () =
  (* E5a: MaxEnt IRL on the expert demo yields a reward whose optimal
     policy is unsafe at S1 (drives into the van) — §V-B's failure mode. *)
  let m = Car.mdp () in
  let theta = Irl.learn m (Car.expert_traces 5) in
  let m' = Irl.apply_reward m theta in
  let pi, _ = Value.optimal_policy ~gamma:0.9 m' in
  Alcotest.(check string) "unsafe action at S1" "fwd" pi.(1);
  Alcotest.(check bool) "rollout hits unsafe" true
    (Car.policy_visits_unsafe m' pi)

let test_car_e5_reward_repair () =
  (* E5b: min ||Δθ|| s.t. Q(S1, left) > Q(S1, fwd) makes the optimal
     policy safe. *)
  let m = Car.mdp () in
  let theta = Irl.learn m (Car.expert_traces 5) in
  match
    Reward_repair.repair_q ~gamma:0.9 m ~theta
      ~constraints:[ Car.unsafe_q_constraint ]
  with
  | Reward_repair.Repaired r ->
    Alcotest.(check bool) "verified" true r.Reward_repair.verified;
    Alcotest.(check string) "S1 now goes left" "left" r.Reward_repair.policy.(1);
    let m' = Irl.apply_reward m r.Reward_repair.theta in
    Alcotest.(check bool) "rollout safe" false
      (Car.policy_visits_unsafe m' r.Reward_repair.policy);
    Alcotest.(check bool) "rollout satisfies the LTLf rule" true
      (Reward_repair.policy_satisfies m r.Reward_repair.policy
         ~rules:[ Car.safety_rule ] ~horizon:20);
    (* minimal-change: the repair moved θ, but not wildly *)
    Alcotest.(check bool) "cost bounded" true
      (r.Reward_repair.cost > 0.0 && r.Reward_repair.cost < 1.0)
  | Reward_repair.Already_satisfied -> Alcotest.fail "policy was already safe?"
  | Reward_repair.Infeasible _ -> Alcotest.fail "repair should be feasible"

let test_car_e6_projection () =
  (* E6: Prop. 4's projection — violating trajectories lose (almost) all
     probability mass, satisfying ones keep their relative weights. *)
  let m = Car.mdp () in
  let theta = Irl.learn m (Car.expert_traces 5) in
  let rng = Prng.create 7 in
  let trajs =
    Reward_repair.sample_trajectories rng m ~theta ~horizon:8 ~count:150
  in
  let labels = Mdp.has_label m in
  let violating tr = not (Trace_logic.eval ~labels tr Car.safety_rule) in
  Alcotest.(check bool) "sampler produces some violations" true
    (List.exists violating trajs);
  let weighted =
    Reward_repair.projection_weights m ~theta
      ~rules:[ (Car.safety_rule, 10.0) ]
      trajs
  in
  let viol_mass =
    List.fold_left
      (fun acc (tr, w) -> if violating tr then acc +. w else acc)
      0.0 weighted
  in
  Alcotest.(check bool) "violating mass < 1%" true (viol_mass < 0.01);
  (* satisfying trajectories keep their relative proportions (Prop. 4) *)
  let base = Reward_repair.projection_weights m ~theta ~rules:[] trajs in
  let sat_pairs =
    List.filter_map
      (fun (tr, w) ->
         if violating tr then None else Some (w, List.assq tr base))
      weighted
  in
  (match sat_pairs with
   | (w1, b1) :: (w2, b2) :: _ when b2 > 0.0 && w2 > 0.0 ->
     Alcotest.(check (float 1e-6)) "ratios preserved" (b1 /. b2) (w1 /. w2)
   | _ -> ());
  (* repaired θ weighs the distance feature more *)
  let theta' =
    Reward_repair.repair_by_projection m ~theta
      ~rules:[ (Car.safety_rule, 10.0) ]
      trajs
  in
  Alcotest.(check bool) "distance weight increased" true (theta'.(1) > theta.(1))

let () =
  Alcotest.run "casestudies"
    [ ( "wsn",
        [ Alcotest.test_case "structure" `Quick test_wsn_structure;
          Alcotest.test_case "E1: satisfied" `Quick test_wsn_e1_satisfied;
          Alcotest.test_case "E2: model repair" `Quick test_wsn_e2_model_repair;
          Alcotest.test_case "E3: infeasible" `Quick test_wsn_e3_infeasible;
          Alcotest.test_case "E4: data repair" `Slow test_wsn_e4_data_repair;
          Alcotest.test_case "learning recovers chain" `Quick
            test_wsn_learning_recovers_chain;
        ] );
      ( "car",
        [ Alcotest.test_case "F1: structure" `Quick test_car_f1_structure;
          Alcotest.test_case "E5: IRL yields unsafe policy" `Quick
            test_car_e5_irl_unsafe_policy;
          Alcotest.test_case "E5: reward repair" `Quick test_car_e5_reward_repair;
          Alcotest.test_case "E6: projection (Prop. 4)" `Quick test_car_e6_projection;
        ] );
    ]
