(* Tests for Dtmc, Mdp, Value and Trace. *)

let simple_dtmc () =
  (* 0 -> 1 (0.3) | 2 (0.7); 1, 2 absorbing. *)
  Dtmc.make ~n:3 ~init:0
    ~transitions:[ (0, 1, 0.3); (0, 2, 0.7); (1, 1, 1.0); (2, 2, 1.0) ]
    ~labels:[ ("goal", [ 1 ]); ("fail", [ 2 ]) ]
    ~rewards:[| 1.0; 0.0; 0.0 |]
    ()

let test_dtmc_construction () =
  let d = simple_dtmc () in
  Alcotest.(check int) "n" 3 (Dtmc.num_states d);
  Alcotest.(check int) "init" 0 (Dtmc.init_state d);
  Alcotest.(check (float 1e-12)) "prob 0->1" 0.3 (Dtmc.prob d 0 1);
  Alcotest.(check (float 1e-12)) "prob 0->0" 0.0 (Dtmc.prob d 0 0);
  Alcotest.(check (list int)) "pred 1" [ 0; 1 ] (Dtmc.pred d 1);
  Alcotest.(check (list string)) "labels" [ "fail"; "goal" ] (Dtmc.labels d);
  Alcotest.(check bool) "has_label" true (Dtmc.has_label d 1 "goal");
  Alcotest.(check bool) "no label" false (Dtmc.has_label d 0 "goal");
  Alcotest.(check (list int)) "states_with_label" [ 2 ]
    (Dtmc.states_with_label d "fail");
  Alcotest.(check (list int)) "unknown label" []
    (Dtmc.states_with_label d "nope");
  Alcotest.(check bool) "absorbing 1" true (Dtmc.is_absorbing d 1);
  Alcotest.(check bool) "not absorbing 0" false (Dtmc.is_absorbing d 0);
  Alcotest.(check (float 1e-12)) "reward" 1.0 (Dtmc.reward d 0)

let test_dtmc_validation () =
  let expect_invalid msg f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s: expected Invalid_argument" msg
  in
  expect_invalid "row sums" (fun () ->
      Dtmc.make ~n:2 ~init:0 ~transitions:[ (0, 1, 0.5); (1, 1, 1.0) ] ());
  expect_invalid "negative prob" (fun () ->
      Dtmc.make ~n:2 ~init:0
        ~transitions:[ (0, 1, 1.5); (0, 0, -0.5); (1, 1, 1.0) ]
        ());
  expect_invalid "bad target" (fun () ->
      Dtmc.make ~n:2 ~init:0 ~transitions:[ (0, 5, 1.0); (1, 1, 1.0) ] ());
  expect_invalid "bad init" (fun () ->
      Dtmc.make ~n:2 ~init:9 ~transitions:[ (0, 0, 1.0); (1, 1, 1.0) ] ());
  expect_invalid "bad reward length" (fun () ->
      Dtmc.make ~n:2 ~init:0
        ~transitions:[ (0, 0, 1.0); (1, 1, 1.0) ]
        ~rewards:[| 1.0 |] ());
  (* duplicate edges are merged *)
  let d =
    Dtmc.make ~n:2 ~init:0
      ~transitions:[ (0, 1, 0.5); (0, 1, 0.5); (1, 1, 1.0) ]
      ()
  in
  Alcotest.(check (float 1e-12)) "merged" 1.0 (Dtmc.prob d 0 1)

let test_dtmc_matrix_roundtrip () =
  let d = simple_dtmc () in
  let m = Dtmc.transition_matrix d in
  Alcotest.(check (float 1e-12)) "m01" 0.3 (Linalg.Mat.get m 0 1);
  Alcotest.(check (float 1e-12)) "m22" 1.0 (Linalg.Mat.get m 2 2);
  let d2 = Dtmc.make ~n:3 ~init:0 ~transitions:(Dtmc.raw_transitions d) () in
  Alcotest.(check (float 1e-12)) "raw roundtrip" 0.7 (Dtmc.prob d2 0 2)

let test_dtmc_simulate () =
  let d = simple_dtmc () in
  let rng = Prng.create 1 in
  let n = 10_000 and hits = ref 0 in
  for _ = 1 to n do
    let path = Dtmc.simulate rng d ~max_steps:10 () in
    match List.rev path with
    | last :: _ -> if last = 1 then incr hits
    | [] -> Alcotest.fail "empty path"
  done;
  Alcotest.(check (float 0.02)) "goal frequency matches prob" 0.3
    (float_of_int !hits /. float_of_int n);
  (* stop predicate halts immediately at init *)
  let p = Dtmc.simulate rng d ~max_steps:10 ~stop:(fun s -> s = 0) () in
  Alcotest.(check (list int)) "stop at init" [ 0 ] p

(* ---------------- MDP ---------------- *)

let two_action_mdp () =
  (* 0: safe -> 1 surely (reward 0); risky -> 2 (0.8 reward 10 via state) or
     1 (0.2). States 1 (bad, r=0), 2 (good, r=10) absorbing. *)
  Mdp.make ~n:3 ~init:0
    ~actions:
      [ (0, "safe", [ (1, 1.0) ]);
        (0, "risky", [ (2, 0.8); (1, 0.2) ]);
        (1, "stay", [ (1, 1.0) ]);
        (2, "stay", [ (2, 1.0) ]);
      ]
    ~labels:[ ("good", [ 2 ]); ("bad", [ 1 ]) ]
    ~state_rewards:[| 0.0; 0.0; 10.0 |]
    ~features:[| [| 1.0; 0.0 |]; [| 0.0; 0.0 |]; [| 0.0; 1.0 |] |]
    ()

let test_mdp_construction () =
  let m = two_action_mdp () in
  Alcotest.(check int) "n" 3 (Mdp.num_states m);
  Alcotest.(check (list string)) "actions of 0" [ "risky"; "safe" ]
    (Mdp.action_names m 0);
  Alcotest.(check int) "total actions" 4 (Mdp.num_actions_total m);
  Alcotest.(check bool) "find" true (Mdp.find_action m 0 "risky" <> None);
  Alcotest.(check bool) "find missing" true (Mdp.find_action m 0 "jump" = None);
  Alcotest.(check int) "feature dim" 2 (Mdp.feature_dim m);
  Alcotest.(check (array (float 0.0))) "features" [| 0.0; 1.0 |] (Mdp.features_of m 2);
  let expect_invalid msg f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s: expected Invalid_argument" msg
  in
  expect_invalid "no actions" (fun () ->
      Mdp.make ~n:2 ~init:0 ~actions:[ (0, "a", [ (0, 1.0) ]) ] ());
  expect_invalid "dup action" (fun () ->
      Mdp.make ~n:1 ~init:0
        ~actions:[ (0, "a", [ (0, 1.0) ]); (0, "a", [ (0, 1.0) ]) ]
        ())

let test_mdp_policy () =
  let m = two_action_mdp () in
  let pi = [| "risky"; "stay"; "stay" |] in
  Alcotest.(check bool) "valid" true (Mdp.validate_policy m pi = Ok ());
  Alcotest.(check bool) "invalid" true
    (Mdp.validate_policy m [| "jump"; "stay"; "stay" |] <> Ok ());
  let d = Mdp.induced_dtmc m pi in
  Alcotest.(check (float 1e-12)) "induced 0->2" 0.8 (Dtmc.prob d 0 2);
  Alcotest.(check (float 1e-12)) "induced reward" 10.0 (Dtmc.reward d 2);
  Alcotest.(check bool) "labels preserved" true (Dtmc.has_label d 2 "good");
  let u = Mdp.uniform_random_dtmc m in
  Alcotest.(check (float 1e-12)) "uniform mix" (0.5 +. (0.5 *. 0.2))
    (Dtmc.prob u 0 1)

let test_value_iteration () =
  let m = two_action_mdp () in
  let v = Value.value_iteration ~gamma:0.9 m in
  (* risky: 0.8 * 0.9 * V(2); V(2) = 10/(1-0.9) = 100 -> q_risky = 72,
     q_safe = 0.9 * V(1) = 0. *)
  Alcotest.(check (float 1e-6)) "V(2)" 100.0 v.(2);
  Alcotest.(check (float 1e-6)) "V(1)" 0.0 v.(1);
  Alcotest.(check (float 1e-6)) "V(0)" 72.0 v.(0);
  let q = Value.q_from_values ~gamma:0.9 m v in
  Alcotest.(check (float 1e-6)) "q risky" 72.0 (List.assoc "risky" q.(0));
  Alcotest.(check (float 1e-6)) "q safe" 0.0 (List.assoc "safe" q.(0));
  let pi = Value.greedy_policy m q in
  Alcotest.(check string) "greedy" "risky" pi.(0);
  let pi2, v2 = Value.optimal_policy ~gamma:0.9 m in
  Alcotest.(check string) "optimal_policy agrees" "risky" pi2.(0);
  Alcotest.(check (float 1e-6)) "values agree" v.(0) v2.(0);
  (* evaluating the safe policy *)
  let vsafe = Value.policy_evaluation ~gamma:0.9 m [| "safe"; "stay"; "stay" |] in
  Alcotest.(check (float 1e-6)) "safe value" 0.0 vsafe.(0);
  Alcotest.check_raises "bad gamma" (Invalid_argument "Value: gamma 0 outside (0, 1]")
    (fun () -> ignore (Value.value_iteration ~gamma:0.0 m))

let test_policy_iteration () =
  let m = two_action_mdp () in
  let pi, v, rounds = Value.policy_iteration ~gamma:0.9 m in
  Alcotest.(check string) "agrees with value iteration" "risky" pi.(0);
  Alcotest.(check (float 1e-6)) "value" 72.0 v.(0);
  Alcotest.(check bool) "few rounds" true (rounds >= 0 && rounds <= 5)

let test_mdp_simulate () =
  let m = two_action_mdp () in
  let rng = Prng.create 3 in
  let pi = [| "risky"; "stay"; "stay" |] in
  let n = 5000 and good = ref 0 in
  for _ = 1 to n do
    let _, final = Mdp.simulate rng m pi ~max_steps:50 () in
    if final = 2 then incr good
  done;
  Alcotest.(check (float 0.03)) "risky success rate" 0.8
    (float_of_int !good /. float_of_int n);
  let steps, final = Mdp.simulate rng m pi ~max_steps:50 () in
  Alcotest.(check bool) "one transition then absorb" true
    (List.length steps = 1 && (final = 1 || final = 2))

(* ---------------- Trace ---------------- *)

let test_trace () =
  let t = Trace.make [ (0, "a"); (1, "b") ] 2 in
  Alcotest.(check int) "length" 2 (Trace.length t);
  Alcotest.(check (list int)) "states" [ 0; 1; 2 ] (Trace.states t);
  Alcotest.(check bool) "visits" true (Trace.visits_state t 1);
  Alcotest.(check bool) "not visits" false (Trace.visits_state t 7);
  Alcotest.(check bool) "action" true (Trace.visits_action t "b");
  Alcotest.(check (option int)) "nth_state" (Some 2) (Trace.nth_state t 2);
  Alcotest.(check (option string)) "nth_action" (Some "a") (Trace.nth_action t 0);
  Alcotest.(check (option string)) "nth_action out" None (Trace.nth_action t 5);
  let t2 = Trace.of_states [ 4; 5; 6 ] in
  Alcotest.(check (list int)) "of_states" [ 4; 5; 6 ] (Trace.states t2);
  Alcotest.check_raises "empty" (Invalid_argument "Trace.of_states: empty path")
    (fun () -> ignore (Trace.of_states []))

let test_trace_log_probability () =
  let m = two_action_mdp () in
  let t = Trace.make [ (0, "risky") ] 2 in
  Alcotest.(check (float 1e-9)) "log 0.8" (log 0.8) (Trace.log_probability m t);
  let t_bad = Trace.make [ (0, "jump") ] 2 in
  Alcotest.(check (float 0.0)) "impossible action" Float.neg_infinity
    (Trace.log_probability m t_bad);
  let t_zero = Trace.make [ (0, "safe") ] 2 in
  Alcotest.(check (float 0.0)) "impossible transition" Float.neg_infinity
    (Trace.log_probability m t_zero)

(* ---------------- Properties ---------------- *)

let qtest name ?(count = 50) ~print gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count ~print gen f)

let gen_random_dtmc =
  (* Random chain on n states: each state gets 1-3 successors. *)
  let open QCheck2.Gen in
  let* n = int_range 2 8 in
  let* seeds = array_size (return n) (int_range 0 1_000_000) in
  let transitions =
    List.concat
      (List.init n (fun s ->
           let rng = Prng.create seeds.(s) in
           let k = 1 + Prng.int rng 3 in
           let targets = List.init k (fun _ -> Prng.int rng n) in
           let targets = List.sort_uniq Int.compare targets in
           let w = 1.0 /. float_of_int (List.length targets) in
           List.map (fun d -> (s, d, w)) targets))
  in
  return (Dtmc.make ~n ~init:0 ~transitions ())

let gen_random_mdp =
  (* Random MDPs: n states, 1-3 actions each, random rewards; absorbing
     last state so total reward stays finite even near gamma = 1. *)
  let open QCheck2.Gen in
  let* n = int_range 2 6 in
  let* seed = int_range 0 1_000_000 in
  let rng = Prng.create seed in
  let actions =
    List.concat
      (List.init n (fun s ->
           let k = 1 + Prng.int rng 3 in
           List.init k (fun a ->
               let t1 = Prng.int rng n and t2 = Prng.int rng n in
               let p = 0.25 +. (0.5 *. Prng.float rng) in
               let dist = if t1 = t2 then [ (t1, 1.0) ] else [ (t1, p); (t2, 1.0 -. p) ] in
               (s, Printf.sprintf "a%d" a, dist))))
  in
  let rewards = Array.init n (fun _ -> Prng.uniform rng (-1.0) 1.0) in
  return (Mdp.make ~n ~init:0 ~actions ~state_rewards:rewards ())

let props =
  [ qtest "policy iteration = value iteration"
      ~print:(fun m -> Format.asprintf "%a" Mdp.pp m)
      gen_random_mdp
      (fun m ->
         let pi_vi, v_vi = Value.optimal_policy ~gamma:0.9 m in
         let pi_pi, v_pi, _ = Value.policy_iteration ~gamma:0.9 m in
         let same_value =
           Array.for_all2 (fun a b -> Float.abs (a -. b) < 1e-6) v_vi v_pi
         in
         (* policies may differ on ties, but values must agree *)
         ignore pi_vi; ignore pi_pi;
         same_value);
    qtest "dtmc rows are stochastic" ~print:(fun d -> Format.asprintf "%a" Dtmc.pp d)
      gen_random_dtmc
      (fun d ->
         let ok = ref true in
         for s = 0 to Dtmc.num_states d - 1 do
           let total = List.fold_left (fun acc (_, p) -> acc +. p) 0.0 (Dtmc.succ d s) in
           if Float.abs (total -. 1.0) > 1e-9 then ok := false
         done;
         !ok);
    qtest "pred is inverse of succ" ~print:(fun d -> Format.asprintf "%a" Dtmc.pp d)
      gen_random_dtmc
      (fun d ->
         let n = Dtmc.num_states d in
         let ok = ref true in
         for s = 0 to n - 1 do
           List.iter
             (fun (t, _) -> if not (List.mem s (Dtmc.pred d t)) then ok := false)
             (Dtmc.succ d s)
         done;
         !ok);
    qtest "simulate only follows edges" ~print:(fun d -> Format.asprintf "%a" Dtmc.pp d)
      gen_random_dtmc
      (fun d ->
         let rng = Prng.create 99 in
         let path = Dtmc.simulate rng d ~max_steps:20 () in
         let rec ok = function
           | a :: (b :: _ as rest) -> Dtmc.prob d a b > 0.0 && ok rest
           | _ -> true
         in
         ok path);
  ]

let () =
  Alcotest.run "mdp"
    [ ( "dtmc",
        [ Alcotest.test_case "construction" `Quick test_dtmc_construction;
          Alcotest.test_case "validation" `Quick test_dtmc_validation;
          Alcotest.test_case "matrix roundtrip" `Quick test_dtmc_matrix_roundtrip;
          Alcotest.test_case "simulate" `Quick test_dtmc_simulate;
        ] );
      ( "mdp",
        [ Alcotest.test_case "construction" `Quick test_mdp_construction;
          Alcotest.test_case "policy/induced" `Quick test_mdp_policy;
          Alcotest.test_case "value iteration" `Quick test_value_iteration;
          Alcotest.test_case "policy iteration" `Quick test_policy_iteration;
          Alcotest.test_case "simulate" `Quick test_mdp_simulate;
        ] );
      ( "trace",
        [ Alcotest.test_case "basics" `Quick test_trace;
          Alcotest.test_case "log probability" `Quick test_trace_log_probability;
        ] );
      ("properties", props);
    ]
