(* Tests for Poly and Ratfun. *)

module Q = Ratio
module P = Poly
module R = Ratfun

let x = P.var "x"
let y = P.var "y"
let qi = Q.of_int

let check_p msg expected actual =
  Alcotest.(check string) msg expected (P.to_string actual)

let check_r msg expected actual =
  Alcotest.(check string) msg expected (R.to_string actual)

(* ---------------- Poly unit tests ---------------- *)

let test_poly_basics () =
  check_p "zero" "0" P.zero;
  check_p "one" "1" P.one;
  check_p "var" "x" x;
  check_p "x+x" "2*x" P.(x + x);
  check_p "x-x" "0" P.(x - x);
  check_p "x*y" "x*y" P.(x * y);
  check_p "(x+1)^2" "x^2 + 2*x + 1" (P.pow P.(x + one) 2);
  check_p "const fold" "3" P.(of_int 1 + of_int 2);
  check_p "scale" "3/2*x" (P.scale (Q.of_ints 3 2) x);
  check_p "neg" "-x + 1" P.(neg (x - one))

let test_poly_queries () =
  Alcotest.(check int) "degree x^2y" 3 (P.degree P.(x * x * y));
  Alcotest.(check int) "degree zero" (-1) (P.degree P.zero);
  Alcotest.(check int) "degree const" 0 (P.degree P.one);
  Alcotest.(check int) "degree_in x" 2 (P.degree_in "x" P.(x * x * y));
  Alcotest.(check int) "degree_in z" 0 (P.degree_in "z" P.(x * x * y));
  Alcotest.(check (list string)) "vars" [ "x"; "y" ] (P.vars P.(x * y + x));
  Alcotest.(check int) "num_terms" 3 (P.num_terms (P.pow P.(x + one) 2));
  Alcotest.(check bool) "is_const" true (P.is_const (P.of_int 5));
  Alcotest.(check bool) "not const" false (P.is_const x);
  Alcotest.(check (option string)) "to_const_opt" (Some "5")
    (Option.map Q.to_string (P.to_const_opt (P.of_int 5)));
  Alcotest.(check (option string)) "to_const zero" (Some "0")
    (Option.map Q.to_string (P.to_const_opt P.zero));
  Alcotest.(check (option string)) "to_const none" None
    (Option.map Q.to_string (P.to_const_opt x))

let test_poly_eval () =
  let p = P.(x * x + (of_int 2 * x * y) + one) in
  let env = function "x" -> qi 3 | "y" -> qi (-1) | _ -> Q.zero in
  Alcotest.(check string) "eval" "4" (Q.to_string (P.eval env p));
  let fenv = function "x" -> 3.0 | "y" -> -1.0 | _ -> 0.0 in
  Alcotest.(check (float 1e-9)) "eval_float" 4.0 (P.eval_float fenv p)

let test_poly_subst () =
  let p = P.(x * x + y) in
  check_p "x := y+1" "y^2 + 3*y + 1" (P.subst "x" P.(y + one) p);
  check_p "x := 0" "y" (P.subst "x" P.zero p);
  check_p "z := 1 no-op" "x^2 + y" (P.subst "z" P.one p)

let test_poly_derivative () =
  let p = P.(x * x * y + (of_int 3 * x) + one) in
  check_p "d/dx" "2*x*y + 3" (P.derivative "x" p);
  check_p "d/dy" "x^2" (P.derivative "y" p);
  check_p "d/dz" "0" (P.derivative "z" p)

let test_poly_univariate () =
  let p = P.(x * x - one) in
  (match P.to_univariate_opt p with
   | Some (v, coeffs) ->
     Alcotest.(check string) "var" "x" v;
     Alcotest.(check (list string)) "coeffs" [ "-1"; "0"; "1" ]
       (Array.to_list (Array.map Q.to_string coeffs))
   | None -> Alcotest.fail "expected univariate");
  Alcotest.(check bool) "multivariate" true
    (P.to_univariate_opt P.(x * y) = None);
  check_p "of_univariate roundtrip" "x^2 - 1"
    (P.of_univariate "x" [| qi (-1); Q.zero; qi 1 |])

(* ---------------- Ratfun unit tests ---------------- *)

let rx = R.var "x"
let ry = R.var "y"

let test_ratfun_basics () =
  check_r "zero" "0" R.zero;
  check_r "const den folded" "2*x" (R.make P.(x + x) P.one);
  check_r "inverse" "(1) / (x)" (R.inv rx);
  check_r "x/x" "1" R.(rx / rx);
  check_r "(x^2-1)/(x-1) cancels" "x + 1"
    (R.make P.(x * x - one) P.(x - one));
  Alcotest.check_raises "zero den" Division_by_zero (fun () ->
      ignore (R.make P.one P.zero))

let test_ratfun_arith () =
  (* 1/x + 1/y = (x+y)/(xy) *)
  let s = R.(inv rx + inv ry) in
  Alcotest.(check bool) "sum equal" true
    (R.equal s (R.make P.(x + y) P.(x * y)));
  (* (x/(x+1)) * ((x+1)/x) = 1 *)
  let a = R.make x P.(x + one) and b = R.make P.(x + one) x in
  Alcotest.(check bool) "product one" true (R.equal R.one R.(a * b));
  check_r "sub self" "0" R.(a - a);
  Alcotest.(check bool) "pow" true
    (R.equal (R.pow a 2) R.(a * a));
  Alcotest.(check bool) "pow neg" true
    (R.equal (R.pow a (-1)) (R.inv a))

let test_ratfun_eval () =
  let f = R.make P.(x + one) P.(x - one) in
  let env v = if v = "x" then qi 3 else Q.zero in
  Alcotest.(check string) "eval" "2" (Q.to_string (R.eval env f));
  Alcotest.check_raises "pole" Division_by_zero (fun () ->
      ignore (R.eval (fun _ -> Q.one) f));
  let fenv v = if v = "x" then 3.0 else 0.0 in
  Alcotest.(check (float 1e-9)) "eval_float" 2.0 (R.eval_float fenv f);
  Alcotest.(check bool) "float pole is inf" true
    (Float.is_integer (R.eval_float (fun _ -> 1.0) f) = false
     || Float.abs (R.eval_float (fun _ -> 1.0) f) = Float.infinity)

let test_ratfun_subst () =
  (* f(x) = 1/(1-x); f(x := 1/(1+u)) = (1+u)/u *)
  let f = R.make P.one P.(one - x) in
  let r = R.make P.one P.(one + var "u") in
  let g = R.subst "x" r f in
  Alcotest.(check bool) "subst" true
    (R.equal g (R.make P.(one + var "u") (P.var "u")));
  (* substituting an absent variable is a no-op *)
  Alcotest.(check bool) "no-op" true (R.equal f (R.subst "z" r f))

let test_ratfun_derivative () =
  (* d/dx (1/x) = -1/x^2 *)
  let d = R.derivative "x" (R.inv rx) in
  Alcotest.(check bool) "quotient rule" true
    (R.equal d (R.make (P.of_int (-1)) P.(x * x)))

(* ---------------- Properties ---------------- *)

let gen_poly =
  (* Random small polynomials in x and y. *)
  let open QCheck2.Gen in
  let* terms = list_size (int_range 0 5) (triple (int_range (-4) 4) (int_range 0 3) (int_range 0 2)) in
  return
    (List.fold_left
       (fun acc (c, ex, ey) ->
          P.add acc
            (P.scale (qi c) (P.mul (P.pow x ex) (P.pow y ey))))
       P.zero terms)

let gen_ratfun =
  let open QCheck2.Gen in
  let* n = gen_poly in
  let* d = gen_poly in
  return (if P.is_zero d then R.of_poly n else R.make n d)

let prp = P.to_string
let prr = R.to_string

let qtest name ?(count = 200) ~print gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count ~print gen f)

let props =
  [ qtest "poly ring: distributivity"
      ~print:(fun (a, b, c) -> Printf.sprintf "(%s | %s | %s)" (prp a) (prp b) (prp c))
      QCheck2.Gen.(triple gen_poly gen_poly gen_poly)
      (fun (a, b, c) -> P.equal P.(a * (b + c)) P.((a * b) + (a * c)));
    qtest "poly eval homomorphism"
      ~print:(fun (a, b) -> Printf.sprintf "(%s | %s)" (prp a) (prp b))
      QCheck2.Gen.(pair gen_poly gen_poly)
      (fun (a, b) ->
         let env = function "x" -> Q.of_ints 2 3 | _ -> Q.of_ints (-1) 2 in
         Q.equal (P.eval env (P.mul a b)) (Q.mul (P.eval env a) (P.eval env b))
         && Q.equal (P.eval env (P.add a b)) (Q.add (P.eval env a) (P.eval env b)));
    qtest "poly derivative is linear"
      ~print:(fun (a, b) -> Printf.sprintf "(%s | %s)" (prp a) (prp b))
      QCheck2.Gen.(pair gen_poly gen_poly)
      (fun (a, b) ->
         P.equal
           (P.derivative "x" (P.add a b))
           (P.add (P.derivative "x" a) (P.derivative "x" b)));
    qtest "poly Leibniz rule"
      ~print:(fun (a, b) -> Printf.sprintf "(%s | %s)" (prp a) (prp b))
      QCheck2.Gen.(pair gen_poly gen_poly)
      (fun (a, b) ->
         P.equal
           (P.derivative "x" (P.mul a b))
           (P.add (P.mul (P.derivative "x" a) b) (P.mul a (P.derivative "x" b))));
    qtest "poly subst eval commute" ~print:prp gen_poly
      (fun p ->
         (* eval(subst x:=y+1 p) at y=2 equals eval p at x=3, y=2 *)
         let s = P.subst "x" P.(y + one) p in
         let env_y = function "y" -> qi 2 | _ -> Q.zero in
         let env_xy = function "x" -> qi 3 | "y" -> qi 2 | _ -> Q.zero in
         Q.equal (P.eval env_y s) (P.eval env_xy p));
    qtest "ratfun field: a * inv a = 1" ~print:prr gen_ratfun
      (fun a ->
         QCheck2.assume (not (R.is_zero a));
         R.equal R.one R.(a * R.inv a));
    qtest "ratfun add commutes"
      ~print:(fun (a, b) -> Printf.sprintf "(%s | %s)" (prr a) (prr b))
      QCheck2.Gen.(pair gen_ratfun gen_ratfun)
      (fun (a, b) -> R.equal R.(a + b) R.(b + a));
    qtest "ratfun eval homomorphism"
      ~print:(fun (a, b) -> Printf.sprintf "(%s | %s)" (prr a) (prr b))
      QCheck2.Gen.(pair gen_ratfun gen_ratfun)
      (fun (a, b) ->
         let env = function "x" -> Q.of_ints 3 7 | _ -> Q.of_ints 5 11 in
         try
           Q.equal (R.eval env (R.mul a b)) (Q.mul (R.eval env a) (R.eval env b))
         with Division_by_zero -> QCheck2.assume_fail ());
    qtest "ratfun normal form: eval agrees with raw quotient"
      ~print:(fun (a, b) -> Printf.sprintf "(%s | %s)" (prp a) (prp b))
      QCheck2.Gen.(pair gen_poly gen_poly)
      (fun (n, d) ->
         QCheck2.assume (not (P.is_zero d));
         let f = R.make n d in
         let env = function "x" -> Q.of_ints 1 3 | _ -> Q.of_ints 2 5 in
         let dv = P.eval env d in
         QCheck2.assume (not (Q.is_zero dv));
         try Q.equal (R.eval env f) (Q.div (P.eval env n) dv)
         with Division_by_zero -> QCheck2.assume_fail ());
  ]

let () =
  Alcotest.run "poly"
    [ ( "poly",
        [ Alcotest.test_case "basics" `Quick test_poly_basics;
          Alcotest.test_case "queries" `Quick test_poly_queries;
          Alcotest.test_case "eval" `Quick test_poly_eval;
          Alcotest.test_case "subst" `Quick test_poly_subst;
          Alcotest.test_case "derivative" `Quick test_poly_derivative;
          Alcotest.test_case "univariate" `Quick test_poly_univariate;
        ] );
      ( "ratfun",
        [ Alcotest.test_case "basics" `Quick test_ratfun_basics;
          Alcotest.test_case "arith" `Quick test_ratfun_arith;
          Alcotest.test_case "eval" `Quick test_ratfun_eval;
          Alcotest.test_case "subst" `Quick test_ratfun_subst;
          Alcotest.test_case "derivative" `Quick test_ratfun_derivative;
        ] );
      ("properties", props);
    ]
