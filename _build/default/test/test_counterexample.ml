(* Tests for Counterexample (most-probable paths, smallest witnesses) and
   Local_repair (§VII localized changes). *)

let branch () =
  Dtmc.make ~n:3 ~init:0
    ~transitions:[ (0, 1, 0.3); (0, 2, 0.7); (1, 1, 1.0); (2, 2, 1.0) ]
    ~labels:[ ("goal", [ 1 ]); ("fail", [ 2 ]) ]
    ()

(* two routes of different probability into the target plus a retry loop *)
let routes () =
  Dtmc.make ~n:4 ~init:0
    ~transitions:
      [ (0, 3, 0.5); (0, 1, 0.3); (0, 0, 0.2);
        (1, 3, 1.0);
        (3, 3, 1.0); (2, 2, 1.0);
      ]
    ~labels:[ ("goal", [ 3 ]) ]
    ()

let test_most_probable_paths () =
  let d = routes () in
  let paths = Counterexample.most_probable_paths d ~target:(fun s -> s = 3) ~k:3 in
  Alcotest.(check int) "3 paths" 3 (List.length paths);
  (match paths with
   | (p1, q1) :: (p2, q2) :: (p3, q3) :: _ ->
     Alcotest.(check (list int)) "direct first" [ 0; 3 ] p1;
     Alcotest.(check (float 1e-12)) "q1" 0.5 q1;
     Alcotest.(check (list int)) "via 1 second" [ 0; 1; 3 ] p2;
     Alcotest.(check (float 1e-12)) "q2" 0.3 q2;
     (* third: one retry loop then direct: 0.2 * 0.5 *)
     Alcotest.(check (list int)) "retry third" [ 0; 0; 3 ] p3;
     Alcotest.(check (float 1e-12)) "q3" 0.1 q3
   | _ -> Alcotest.fail "expected three paths");
  (* probabilities are non-increasing *)
  let rec sorted = function
    | (_, a) :: ((_, b) :: _ as rest) -> a >= b && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "ordered" true
    (sorted (Counterexample.most_probable_paths d ~target:(fun s -> s = 3) ~k:10));
  Alcotest.(check int) "k=0" 0
    (List.length (Counterexample.most_probable_paths d ~target:(fun s -> s = 3) ~k:0));
  (* unreachable target: no paths *)
  Alcotest.(check int) "unreachable" 0
    (List.length
       (Counterexample.most_probable_paths ~max_len:20 d
          ~target:(fun s -> s = 2) ~k:5))

let test_smallest_counterexample () =
  let d = branch () in
  (* P <= 0.2 [F goal] is violated (true prob 0.3) *)
  (match
     Counterexample.smallest_counterexample d
       (Pctl_parser.parse "P<=0.2 [ F goal ]")
   with
   | Some w ->
     Alcotest.(check bool) "mass exceeds bound" true
       (w.Counterexample.total_mass > 0.2);
     Alcotest.(check int) "single path suffices" 1
       (List.length w.Counterexample.paths);
     Alcotest.(check (float 1e-12)) "bound recorded" 0.2 w.Counterexample.bound
   | None -> Alcotest.fail "expected a witness");
  (* the property holds: no counterexample *)
  Alcotest.(check bool) "holds -> None" true
    (Counterexample.smallest_counterexample d
       (Pctl_parser.parse "P<=0.4 [ F goal ]")
     = None);
  (* wrong formula shape *)
  (match
     Counterexample.smallest_counterexample d
       (Pctl_parser.parse "P>=0.5 [ F goal ]")
   with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "lower bounds rejected")

let test_smallest_counterexample_accumulates () =
  let d = routes () in
  (* Pr(F goal) = 1; a bound of 0.85 needs several paths *)
  match
    Counterexample.smallest_counterexample d
      (Pctl_parser.parse "P<=0.85 [ F goal ]")
  with
  | Some w ->
    Alcotest.(check bool) "needs >= 3 paths" true
      (List.length w.Counterexample.paths >= 3);
    Alcotest.(check bool) "mass > 0.85" true (w.Counterexample.total_mass > 0.85);
    (* mass equals the sum of its parts *)
    let s = List.fold_left (fun acc (_, p) -> acc +. p) 0.0 w.Counterexample.paths in
    Alcotest.(check (float 1e-12)) "mass consistent" s w.Counterexample.total_mass
  | None -> Alcotest.fail "expected a witness"

(* ---------------- Local repair ---------------- *)

let spec hi =
  {
    Model_repair.variables = [ ("v", 0.0, hi) ];
    deltas = [ (0, 1, Ratfun.var "v"); (0, 2, Ratfun.neg (Ratfun.var "v")) ];
  }

let test_local_repair_feasible () =
  let d = branch () in
  match Local_repair.repair d (Pctl_parser.parse "P>=0.5 [ F goal ]") (spec 0.6) with
  | Local_repair.Repaired r ->
    Alcotest.(check (float 1e-4)) "v* = 0.2" 0.2 (List.assoc "v" r.Model_repair.assignment);
    Alcotest.(check bool) "verified" true r.Model_repair.verified;
    Alcotest.(check (float 1e-3)) "achieved" 0.5 r.Model_repair.achieved_value
  | _ -> Alcotest.fail "expected Repaired"

let test_local_repair_matches_nlp () =
  (* on the WSN E2 problem the local solver finds a repair of comparable
     cost to the NLP *)
  let p = Wsn.default_params in
  let chain = Wsn.chain p in
  let sp = Wsn.repair_spec p in
  match
    ( Local_repair.repair chain (Wsn.property 40) sp,
      Model_repair.repair chain (Wsn.property 40) sp )
  with
  | Local_repair.Repaired local, Model_repair.Repaired nlp ->
    Alcotest.(check bool) "local verified" true local.Model_repair.verified;
    Alcotest.(check bool) "cost within 2x of NLP" true
      (local.Model_repair.cost <= 2.0 *. nlp.Model_repair.cost +. 1e-9)
  | _ -> Alcotest.fail "both solvers should succeed"

let test_local_repair_infeasible_and_validation () =
  let d = branch () in
  (match Local_repair.repair d (Pctl_parser.parse "P>=0.9 [ F goal ]") (spec 0.1) with
   | Local_repair.Infeasible { residual_violation } ->
     Alcotest.(check bool) "violation positive" true (residual_violation > 0.0)
   | _ -> Alcotest.fail "expected Infeasible");
  (match Local_repair.repair d (Pctl_parser.parse "P>=0.25 [ F goal ]") (spec 0.6) with
   | Local_repair.Already_satisfied (Some v) ->
     Alcotest.(check (float 1e-9)) "value" 0.3 v
   | _ -> Alcotest.fail "expected Already_satisfied");
  let bad_spec =
    {
      Model_repair.variables = [ ("v", 0.1, 0.6) ];
      deltas = [ (0, 1, Ratfun.var "v"); (0, 2, Ratfun.neg (Ratfun.var "v")) ];
    }
  in
  match Local_repair.repair d (Pctl_parser.parse "P>=0.5 [ F goal ]") bad_spec with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "nonzero lower bound rejected"

let () =
  Alcotest.run "counterexample"
    [ ( "paths",
        [ Alcotest.test_case "most probable" `Quick test_most_probable_paths;
          Alcotest.test_case "smallest witness" `Quick test_smallest_counterexample;
          Alcotest.test_case "accumulation" `Quick test_smallest_counterexample_accumulates;
        ] );
      ( "local repair",
        [ Alcotest.test_case "feasible" `Quick test_local_repair_feasible;
          Alcotest.test_case "matches NLP on E2" `Quick test_local_repair_matches_nlp;
          Alcotest.test_case "infeasible/validation" `Quick
            test_local_repair_infeasible_and_validation;
        ] );
    ]
