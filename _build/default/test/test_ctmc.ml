(* Tests for Ctmc: embedded/uniformised reductions, transient analysis,
   time-bounded reachability against closed forms, simulation. *)

(* 0 --λ--> 1 (absorbing): P(reach 1 by t) = 1 - e^{-λt}. *)
let two_state lambda =
  Ctmc.make ~n:2 ~init:0 ~rates:[ (0, 1, lambda) ]
    ~labels:[ ("done", [ 1 ]) ]
    ()

(* 0 --a--> 1 --b--> 2 (absorbing), plus 1 --c--> 0. *)
let three_state ~a ~b ~c =
  Ctmc.make ~n:3 ~init:0
    ~rates:[ (0, 1, a); (1, 2, b); (1, 0, c) ]
    ~labels:[ ("end", [ 2 ]) ]
    ()

let test_construction () =
  let t = two_state 2.0 in
  Alcotest.(check int) "n" 2 (Ctmc.num_states t);
  Alcotest.(check (float 1e-12)) "exit rate" 2.0 (Ctmc.exit_rate t 0);
  Alcotest.(check (float 1e-12)) "rate" 2.0 (Ctmc.rate t 0 1);
  Alcotest.(check (float 1e-12)) "absent rate" 0.0 (Ctmc.rate t 1 0);
  Alcotest.(check bool) "absorbing" true (Ctmc.is_absorbing t 1);
  Alcotest.(check bool) "not absorbing" false (Ctmc.is_absorbing t 0);
  Alcotest.(check (list int)) "labels" [ 1 ] (Ctmc.states_with_label t "done");
  let expect_invalid msg f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s: expected Invalid_argument" msg
  in
  expect_invalid "self rate" (fun () ->
      Ctmc.make ~n:1 ~init:0 ~rates:[ (0, 0, 1.0) ] ());
  expect_invalid "zero rate" (fun () ->
      Ctmc.make ~n:2 ~init:0 ~rates:[ (0, 1, 0.0) ] ());
  expect_invalid "duplicate" (fun () ->
      Ctmc.make ~n:2 ~init:0 ~rates:[ (0, 1, 1.0); (0, 1, 2.0) ] ())

let test_embedded () =
  let t = three_state ~a:1.0 ~b:3.0 ~c:1.0 in
  let d = Ctmc.embedded t in
  Alcotest.(check (float 1e-12)) "jump prob 1->2" 0.75 (Dtmc.prob d 1 2);
  Alcotest.(check (float 1e-12)) "jump prob 1->0" 0.25 (Dtmc.prob d 1 0);
  Alcotest.(check (float 1e-12)) "deterministic jump" 1.0 (Dtmc.prob d 0 1);
  Alcotest.(check bool) "absorbing self-loop" true (Dtmc.is_absorbing d 2);
  (* eventual reachability of the CTMC = reachability of the jump chain *)
  Alcotest.(check (float 1e-9)) "embedded reachability" 1.0
    (Check_dtmc.path_probability d (Eventually (Prop "end")))

let test_uniformized () =
  let t = three_state ~a:1.0 ~b:3.0 ~c:1.0 in
  let q, d = Ctmc.uniformized t in
  Alcotest.(check bool) "q >= max exit" true (q >= 4.0);
  (* uniformised rows are stochastic by construction (Dtmc.make validates) *)
  Alcotest.(check (float 1e-12)) "move prob" (1.0 /. q) (Dtmc.prob d 0 1);
  Alcotest.(check (float 1e-12)) "self prob" (1.0 -. (1.0 /. q)) (Dtmc.prob d 0 0);
  (match Ctmc.uniformized ~rate:2.0 t with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "rate below max exit rejected");
  let q2, _ = Ctmc.uniformized ~rate:10.0 t in
  Alcotest.(check (float 1e-12)) "explicit rate" 10.0 q2

let test_exponential_closed_form () =
  let lambda = 2.0 in
  let t = two_state lambda in
  List.iter
    (fun time ->
       let expected = 1.0 -. exp (-.lambda *. time) in
       Alcotest.(check (float 1e-9))
         (Printf.sprintf "1 - e^-λt at t=%g" time)
         expected
         (Ctmc.time_bounded_reachability t ~target:[ 1 ] ~time))
    [ 0.0; 0.1; 0.5; 1.0; 3.0 ];
  (* init in target *)
  Alcotest.(check (float 0.0)) "trivial" 1.0
    (Ctmc.time_bounded_reachability t ~target:[ 0 ] ~time:0.5)

let test_transient_distribution () =
  let lambda = 1.5 in
  let t = two_state lambda in
  let dist = Ctmc.transient_distribution t ~time:0.7 in
  Alcotest.(check (float 1e-9)) "mass sums to 1" 1.0
    (Array.fold_left ( +. ) 0.0 dist);
  Alcotest.(check (float 1e-9)) "state 0" (exp (-.lambda *. 0.7)) dist.(0);
  Alcotest.(check (float 1e-9)) "state 1" (1.0 -. exp (-.lambda *. 0.7)) dist.(1);
  (* time 0: all mass at the initial state *)
  let dist0 = Ctmc.transient_distribution t ~time:0.0 in
  Alcotest.(check (float 1e-12)) "t=0" 1.0 dist0.(0);
  (* long-run: everything absorbed *)
  let dinf = Ctmc.transient_distribution t ~time:50.0 in
  Alcotest.(check (float 1e-6)) "t=inf" 1.0 dinf.(1)

let test_simulation_agrees () =
  let lambda = 2.0 in
  let t = two_state lambda in
  let rng = Prng.create 7 in
  let horizon = 0.6 in
  let n = 20_000 in
  let hits = ref 0 in
  let mean_sojourn = ref 0.0 in
  for _ = 1 to n do
    let path = Ctmc.simulate rng t ~max_time:horizon in
    (match path with
     | (0, s) :: _ -> mean_sojourn := !mean_sojourn +. Float.min s horizon
     | _ -> Alcotest.fail "path must start at 0");
    if List.exists (fun (s, _) -> s = 1) path then incr hits
  done;
  let expected = 1.0 -. exp (-.lambda *. horizon) in
  Alcotest.(check (float 0.02)) "empirical reach prob" expected
    (float_of_int !hits /. float_of_int n);
  (* E[min(Exp(λ), horizon)] = (1 - e^{-λh})/λ *)
  Alcotest.(check (float 0.02)) "mean truncated sojourn"
    ((1.0 -. exp (-.lambda *. horizon)) /. lambda)
    (!mean_sojourn /. float_of_int n)

(* property: uniformisation-based reachability is monotone in time and
   bracketed by 0 and the embedded chain's eventual reachability *)
let props =
  [ QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"time-bounded reachability is monotone" ~count:40
         ~print:(fun (a, b, c) -> Printf.sprintf "a=%g b=%g c=%g" a b c)
         QCheck2.Gen.(
           triple (float_range 0.2 3.0) (float_range 0.2 3.0) (float_range 0.2 3.0))
         (fun (a, b, c) ->
            let t = three_state ~a ~b ~c in
            let p at = Ctmc.time_bounded_reachability t ~target:[ 2 ] ~time:at in
            let p1 = p 0.5 and p2 = p 1.0 and p3 = p 2.0 in
            0.0 <= p1 && p1 <= p2 +. 1e-9 && p2 <= p3 +. 1e-9 && p3 <= 1.0));
  ]

let () =
  Alcotest.run "ctmc"
    [ ( "structure",
        [ Alcotest.test_case "construction" `Quick test_construction;
          Alcotest.test_case "embedded chain" `Quick test_embedded;
          Alcotest.test_case "uniformisation" `Quick test_uniformized;
        ] );
      ( "analysis",
        [ Alcotest.test_case "exponential closed form" `Quick
            test_exponential_closed_form;
          Alcotest.test_case "transient distribution" `Quick
            test_transient_distribution;
          Alcotest.test_case "simulation agrees" `Quick test_simulation_agrees;
        ] );
      ("properties", props);
    ]
