(* Tests for Bisimulation (Prop. 1 epsilon-bisimilarity + quotienting). *)

let branch p =
  Dtmc.make ~n:3 ~init:0
    ~transitions:[ (0, 1, p); (0, 2, 1.0 -. p); (1, 1, 1.0); (2, 2, 1.0) ]
    ~labels:[ ("goal", [ 1 ]) ]
    ()

let test_epsilon_bound () =
  let a = branch 0.3 and b = branch 0.35 in
  Alcotest.(check (float 1e-12)) "bound" 0.05 (Bisimulation.epsilon_bound a b);
  Alcotest.(check (float 1e-12)) "self" 0.0 (Bisimulation.epsilon_bound a a);
  Alcotest.(check bool) "eps ok" true (Bisimulation.epsilon_bisimilar ~epsilon:0.06 a b);
  Alcotest.(check bool) "eps too small" false
    (Bisimulation.epsilon_bisimilar ~epsilon:0.04 a b);
  (* different structure -> infinity *)
  let c =
    Dtmc.make ~n:3 ~init:0
      ~transitions:[ (0, 1, 1.0); (1, 1, 1.0); (2, 2, 1.0) ]
      ()
  in
  Alcotest.(check bool) "structure mismatch" true
    (Bisimulation.epsilon_bound a c = Float.infinity);
  let d2 = Dtmc.make ~n:2 ~init:0 ~transitions:[ (0, 0, 1.0); (1, 1, 1.0) ] () in
  Alcotest.(check bool) "size mismatch" true
    (Bisimulation.epsilon_bound a d2 = Float.infinity)

let test_prop1_model_repair () =
  (* Prop. 1: the repaired model is epsilon-bisimilar with epsilon = max |Z|. *)
  let d = branch 0.3 in
  let spec =
    {
      Model_repair.variables = [ ("v", 0.0, 0.6) ];
      deltas = [ (0, 1, Ratfun.var "v"); (0, 2, Ratfun.neg (Ratfun.var "v")) ];
    }
  in
  match Model_repair.repair d (Pctl_parser.parse "P>=0.5 [ F goal ]") spec with
  | Model_repair.Repaired r ->
    let v = List.assoc "v" r.Model_repair.assignment in
    Alcotest.(check (float 1e-9)) "epsilon = max |Z| = v*" v
      r.Model_repair.epsilon_bisimilarity;
    Alcotest.(check bool) "epsilon-bisimilar" true
      (Bisimulation.epsilon_bisimilar ~epsilon:(v +. 1e-9) d r.Model_repair.dtmc)
  | _ -> Alcotest.fail "expected Repaired"

(* Symmetric chain with duplicate states: 1 and 2 are bisimilar (same label,
   same behaviour), so the quotient has fewer states. *)
let symmetric () =
  Dtmc.make ~n:4 ~init:0
    ~transitions:
      [ (0, 1, 0.5); (0, 2, 0.5);
        (1, 3, 1.0); (2, 3, 1.0);
        (3, 3, 1.0);
      ]
    ~labels:[ ("mid", [ 1; 2 ]); ("end", [ 3 ]) ]
    ()

let test_quotient () =
  let d = symmetric () in
  let q, part = Bisimulation.quotient d in
  Alcotest.(check int) "3 classes" 3 (Bisimulation.num_blocks part);
  Alcotest.(check int) "quotient states" 3 (Dtmc.num_states q);
  Alcotest.(check int) "1 and 2 merged" part.(1) part.(2);
  Alcotest.(check bool) "0 separate" true (part.(0) <> part.(1));
  (* the quotient satisfies the same property with the same value *)
  let phi = Pctl.Eventually (Pctl.Prop "end") in
  Alcotest.(check (float 1e-12)) "same probability"
    (Check_dtmc.path_probability d phi)
    (Check_dtmc.path_probability q phi);
  (* merged transition mass: block(0) -> block(1) with probability 1 *)
  Alcotest.(check (float 1e-12)) "merged mass" 1.0
    (Dtmc.prob q part.(0) part.(1))

let test_quotient_distinguishes () =
  (* same labels but different dynamics -> not merged *)
  let d =
    Dtmc.make ~n:4 ~init:0
      ~transitions:
        [ (0, 1, 0.5); (0, 2, 0.5);
          (1, 3, 1.0);
          (2, 3, 0.5); (2, 2, 0.5);
          (3, 3, 1.0);
        ]
      ~labels:[ ("mid", [ 1; 2 ]) ]
      ()
  in
  let _, part = Bisimulation.quotient d in
  Alcotest.(check bool) "1 and 2 distinct" true (part.(1) <> part.(2));
  (* different rewards also distinguish *)
  let d2 =
    Dtmc.make ~n:3 ~init:0
      ~transitions:[ (0, 1, 0.5); (0, 2, 0.5); (1, 1, 1.0); (2, 2, 1.0) ]
      ~rewards:[| 0.0; 1.0; 2.0 |]
      ()
  in
  let _, part2 = Bisimulation.quotient d2 in
  Alcotest.(check bool) "rewards distinguish" true (part2.(1) <> part2.(2))

(* property: quotienting preserves reachability probabilities on random
   absorbing chains *)
let gen_chain =
  let open QCheck2.Gen in
  let* n = int_range 3 8 in
  let* seed = int_range 0 100_000 in
  let rng = Prng.create seed in
  let transitions = ref [ (n - 1, n - 1, 1.0) ] in
  for s = 0 to n - 2 do
    let fwd = s + 1 + Prng.int rng (n - s - 1) in
    let other = Prng.int rng n in
    let p = 0.25 *. float_of_int (1 + Prng.int rng 3) in
    if other = fwd then transitions := (s, fwd, 1.0) :: !transitions
    else transitions := (s, fwd, p) :: (s, other, 1.0 -. p) :: !transitions
  done;
  return (Dtmc.make ~n ~init:0 ~transitions:!transitions
            ~labels:[ ("goal", [ n - 1 ]) ] ())

let props =
  [ QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"quotient preserves reachability" ~count:60
         ~print:(fun d -> Format.asprintf "%a" Dtmc.pp d)
         gen_chain
         (fun d ->
            let q, _ = Bisimulation.quotient d in
            let phi = Pctl.Eventually (Pctl.Prop "goal") in
            Float.abs
              (Check_dtmc.path_probability d phi
               -. Check_dtmc.path_probability q phi)
            < 1e-9
            && Dtmc.num_states q <= Dtmc.num_states d));
  ]

let () =
  Alcotest.run "bisimulation"
    [ ( "epsilon",
        [ Alcotest.test_case "bound" `Quick test_epsilon_bound;
          Alcotest.test_case "Prop. 1 via model repair" `Quick test_prop1_model_repair;
        ] );
      ( "quotient",
        [ Alcotest.test_case "merges bisimilar" `Quick test_quotient;
          Alcotest.test_case "distinguishes" `Quick test_quotient_distinguishes;
        ] );
      ("properties", props);
    ]
