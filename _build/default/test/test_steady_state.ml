(* Tests for Steady_state (BSCCs, stationary distributions, long-run
   probabilities) and the Experiments reproduction driver. *)

(* Ergodic 2-state chain with known stationary distribution:
   pi_0 = b/(a+b), pi_1 = a/(a+b) for flip rates a, b. *)
let flip a b =
  Dtmc.make ~n:2 ~init:0
    ~transitions:[ (0, 1, a); (0, 0, 1.0 -. a); (1, 0, b); (1, 1, 1.0 -. b) ]
    ~labels:[ ("up", [ 0 ]) ]
    ()

(* Transient start, two absorbing BSCCs. *)
let split () =
  Dtmc.make ~n:4 ~init:0
    ~transitions:
      [ (0, 1, 0.25); (0, 2, 0.75);
        (1, 1, 1.0);
        (2, 3, 1.0); (3, 2, 1.0) (* period-2 BSCC {2,3} *);
      ]
    ~labels:[ ("left", [ 1 ]); ("cycle", [ 2; 3 ]) ]
    ()

let test_bsccs () =
  let d = split () in
  let comps = Steady_state.bsccs d in
  Alcotest.(check int) "two BSCCs" 2 (List.length comps);
  Alcotest.(check bool) "{1} is a BSCC" true (List.mem [ 1 ] comps);
  Alcotest.(check bool) "{2,3} is a BSCC" true (List.mem [ 2; 3 ] comps);
  (* ergodic chain: the whole space is one BSCC *)
  let e = flip 0.3 0.6 in
  Alcotest.(check (list (list int))) "single BSCC" [ [ 0; 1 ] ]
    (Steady_state.bsccs e)

let test_stationary () =
  let a = 0.3 and b = 0.6 in
  let d = flip a b in
  let pi = Steady_state.stationary_of_irreducible d [ 0; 1 ] in
  Alcotest.(check (float 1e-9)) "pi_0" (b /. (a +. b)) pi.(0);
  Alcotest.(check (float 1e-9)) "pi_1" (a /. (a +. b)) pi.(1);
  (* periodic component still has a stationary distribution *)
  let s = split () in
  let pi = Steady_state.stationary_of_irreducible s [ 2; 3 ] in
  Alcotest.(check (float 1e-9)) "period-2 half" 0.5 pi.(2);
  Alcotest.(check (float 1e-9)) "period-2 half" 0.5 pi.(3);
  (* non-closed set rejected *)
  match Steady_state.stationary_of_irreducible s [ 0; 1 ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "open component accepted"

let test_long_run () =
  let d = split () in
  let dist = Steady_state.long_run_distribution d in
  Alcotest.(check (float 1e-9)) "left mass" 0.25 dist.(1);
  Alcotest.(check (float 1e-9)) "cycle mass (2)" 0.375 dist.(2);
  Alcotest.(check (float 1e-9)) "cycle mass (3)" 0.375 dist.(3);
  Alcotest.(check (float 1e-9)) "transient state" 0.0 dist.(0);
  Alcotest.(check (float 1e-9)) "total" 1.0 (Array.fold_left ( +. ) 0.0 dist);
  Alcotest.(check (float 1e-9)) "S[cycle]" 0.75
    (Steady_state.long_run_probability d (Pctl_parser.parse "cycle"));
  Alcotest.(check (float 1e-9)) "S[left | cycle]" 1.0
    (Steady_state.long_run_probability d (Pctl_parser.parse "left | cycle"));
  (* ergodic case agrees with the stationary distribution *)
  let e = flip 0.3 0.6 in
  Alcotest.(check (float 1e-9)) "S[up]" (0.6 /. 0.9)
    (Steady_state.long_run_probability e (Pctl_parser.parse "up"))

let test_long_run_vs_simulation () =
  let d = flip 0.2 0.5 in
  let rng = Prng.create 17 in
  (* empirical fraction of time in state 0 over a long run *)
  let steps = 200_000 in
  let count = ref 0 in
  let s = ref 0 in
  for _ = 1 to steps do
    if !s = 0 then incr count;
    let row = Array.of_list (Dtmc.succ d !s) in
    let i = Prng.categorical rng (Array.map snd row) in
    s := fst row.(i)
  done;
  let expected = Steady_state.long_run_probability d (Pctl_parser.parse "up") in
  Alcotest.(check (float 0.01)) "simulation agrees" expected
    (float_of_int !count /. float_of_int steps)

(* ---------------- Experiments driver sanity ---------------- *)

let test_experiment_rows () =
  (* quick structural experiments only (the expensive ones are covered by
     test_casestudies) *)
  let f1 = Experiments.f1 () in
  Alcotest.(check string) "id" "F1" f1.Experiments.id;
  Alcotest.(check bool) "ok" true f1.Experiments.ok;
  let e1 = Experiments.e1 () in
  Alcotest.(check bool) "e1 ok" true e1.Experiments.ok;
  let e3 = Experiments.e3 () in
  Alcotest.(check bool) "e3 ok" true e3.Experiments.ok;
  (* the table renders *)
  let s = Format.asprintf "%a" Experiments.print_rows [ f1; e1; e3 ] in
  Alcotest.(check bool) "renders" true (String.length s > 100)

let () =
  Alcotest.run "steady_state"
    [ ( "structure",
        [ Alcotest.test_case "bsccs" `Quick test_bsccs;
          Alcotest.test_case "stationary" `Quick test_stationary;
        ] );
      ( "long run",
        [ Alcotest.test_case "distribution" `Quick test_long_run;
          Alcotest.test_case "vs simulation" `Quick test_long_run_vs_simulation;
        ] );
      ( "experiments driver",
        [ Alcotest.test_case "rows" `Quick test_experiment_rows ] );
    ]
