(* Unit and property tests for Ratio. *)

module Q = Ratio
module B = Bigint

let q = Q.of_decimal_string
let check_q msg expected actual =
  Alcotest.(check string) msg expected (Q.to_string actual)

let test_construction () =
  check_q "normalised" "2/3" (Q.of_ints 4 6);
  check_q "neg den" "-2/3" (Q.of_ints 4 (-6));
  check_q "both neg" "2/3" (Q.of_ints (-4) (-6));
  check_q "zero" "0" (Q.of_ints 0 17);
  check_q "integer" "5" (Q.of_ints 10 2);
  Alcotest.check_raises "zero den" Division_by_zero (fun () ->
      ignore (Q.of_ints 1 0))

let test_decimal_parse () =
  check_q "3.25" "13/4" (q "3.25");
  check_q "-0.045" "-9/200" (q "-0.045");
  check_q "plain int" "7" (q "7");
  check_q "fraction" "1/3" (q "1/3");
  check_q "neg fraction" "-2/7" (q "-2/7");
  check_q "-0.5" "-1/2" (q "-0.5");
  check_q "0.0" "0" (q "0.0");
  Alcotest.check_raises "bad" (Invalid_argument "Ratio.of_decimal_string: \"a.b\"")
    (fun () -> ignore (q "a.b"))

let test_arith () =
  check_q "add" "5/6" Q.(of_ints 1 2 + of_ints 1 3);
  check_q "sub" "1/6" Q.(of_ints 1 2 - of_ints 1 3);
  check_q "mul" "1/6" Q.(of_ints 1 2 * of_ints 1 3);
  check_q "div" "3/2" Q.(of_ints 1 2 / of_ints 1 3);
  check_q "inv" "-3/2" (Q.inv (Q.of_ints (-2) 3));
  check_q "pow pos" "8/27" (Q.pow (Q.of_ints 2 3) 3);
  check_q "pow neg" "27/8" (Q.pow (Q.of_ints 2 3) (-3));
  check_q "pow zero" "1" (Q.pow (Q.of_ints 2 3) 0);
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (Q.div Q.one Q.zero))

let test_compare () =
  Alcotest.(check bool) "1/3 < 1/2" true Q.(of_ints 1 3 < of_ints 1 2);
  Alcotest.(check bool) "-1/2 < 1/3" true Q.(of_ints (-1) 2 < of_ints 1 3);
  Alcotest.(check bool) "eq" true (Q.equal (Q.of_ints 2 4) Q.half);
  check_q "min" "1/3" (Q.min (Q.of_ints 1 3) Q.half);
  check_q "max" "1/2" (Q.max (Q.of_ints 1 3) Q.half)

let test_floor_ceil () =
  Alcotest.(check string) "floor 7/2" "3" (B.to_string (Q.floor (Q.of_ints 7 2)));
  Alcotest.(check string) "ceil 7/2" "4" (B.to_string (Q.ceil (Q.of_ints 7 2)));
  Alcotest.(check string) "floor -7/2" "-4" (B.to_string (Q.floor (Q.of_ints (-7) 2)));
  Alcotest.(check string) "ceil -7/2" "-3" (B.to_string (Q.ceil (Q.of_ints (-7) 2)));
  Alcotest.(check string) "floor int" "5" (B.to_string (Q.floor (Q.of_int 5)))

let test_of_float () =
  check_q "0.5" "1/2" (Q.of_float 0.5);
  check_q "0.25" "1/4" (Q.of_float 0.25);
  check_q "-1.5" "-3/2" (Q.of_float (-1.5));
  check_q "3.0" "3" (Q.of_float 3.0);
  check_q "0.0" "0" (Q.of_float 0.0);
  Alcotest.(check (float 0.0)) "exact roundtrip" 0.1 (Q.to_float (Q.of_float 0.1));
  Alcotest.check_raises "nan" (Invalid_argument "Ratio.of_float: not finite")
    (fun () -> ignore (Q.of_float Float.nan))

let test_to_float () =
  Alcotest.(check (float 1e-12)) "1/3" (1.0 /. 3.0) (Q.to_float (Q.of_ints 1 3));
  Alcotest.(check (float 1e-12)) "neg" (-0.045) (Q.to_float (q "-0.045"))

(* Properties *)

let gen_ratio =
  let open QCheck2.Gen in
  let* n = int_range (-1_000_000) 1_000_000 in
  let* d = int_range 1 1_000_000 in
  return (Q.of_ints n d)

let pr = Q.to_string
let pr2 (a, b) = Printf.sprintf "(%s, %s)" (pr a) (pr b)
let pr3 (a, b, c) = Printf.sprintf "(%s, %s, %s)" (pr a) (pr b) (pr c)

let qtest name ?(count = 300) ~print gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count ~print gen f)

let props =
  [ qtest "field add inverse" ~print:pr gen_ratio
      (fun a -> Q.is_zero Q.(a + neg a));
    qtest "field mul inverse" ~print:pr gen_ratio
      (fun a ->
         QCheck2.assume (not (Q.is_zero a));
         Q.equal Q.one Q.(a * inv a));
    qtest "distributivity" ~print:pr3 QCheck2.Gen.(triple gen_ratio gen_ratio gen_ratio)
      (fun (a, b, c) -> Q.equal Q.(a * (b + c)) Q.((a * b) + (a * c)));
    qtest "add commutes" ~print:pr2 QCheck2.Gen.(pair gen_ratio gen_ratio)
      (fun (a, b) -> Q.equal Q.(a + b) Q.(b + a));
    qtest "normalised invariant" ~print:pr2 QCheck2.Gen.(pair gen_ratio gen_ratio)
      (fun (a, b) ->
         let c = Q.add a b in
         B.sign (Q.den c) > 0 && B.is_one (B.gcd (Q.num c) (Q.den c)));
    qtest "compare consistent with floats" ~print:pr2
      QCheck2.Gen.(pair gen_ratio gen_ratio)
      (fun (a, b) ->
         let fc = Stdlib.compare (Q.to_float a) (Q.to_float b) in
         (* floats can collapse close rationals to equality; only require
            agreement when the floats differ *)
         fc = 0 || Q.compare a b = fc);
    qtest "of_float exact" ~print:string_of_float
      QCheck2.Gen.(float_bound_inclusive 1000.0)
      (fun f -> Q.to_float (Q.of_float f) = f);
    qtest "string roundtrip" ~print:pr gen_ratio
      (fun a -> Q.equal a (Q.of_decimal_string (Q.to_string a)));
    qtest "floor <= x < floor+1" ~print:pr gen_ratio
      (fun a ->
         let fl = Q.of_bigint (Q.floor a) in
         Q.(fl <= a) && Q.(a < fl + one));
  ]

let () =
  Alcotest.run "ratio"
    [ ( "unit",
        [ Alcotest.test_case "construction" `Quick test_construction;
          Alcotest.test_case "decimal parse" `Quick test_decimal_parse;
          Alcotest.test_case "arith" `Quick test_arith;
          Alcotest.test_case "compare" `Quick test_compare;
          Alcotest.test_case "floor/ceil" `Quick test_floor_ceil;
          Alcotest.test_case "of_float" `Quick test_of_float;
          Alcotest.test_case "to_float" `Quick test_to_float;
        ] );
      ("properties", props);
    ]
