(* Tests for Hmm and Baum_welch, including the constrained E-step (§VII). *)

(* Two hidden states, two symbols; state 0 mostly emits 0, state 1 mostly
   emits 1. *)
let toy () =
  Hmm.make
    ~initial:[| 0.6; 0.4 |]
    ~transition:[| [| 0.7; 0.3 |]; [| 0.4; 0.6 |] |]
    ~emission:[| [| 0.9; 0.1 |]; [| 0.2; 0.8 |] |]
    ()

(* Reference P(obs): unscaled forward recursion (exact for short
   sequences). *)
let brute_likelihood h obs =
  let k = Hmm.num_states h in
  match obs with
  | [] -> 1.0
  | o0 :: rest ->
    let cur =
      ref (List.init k (fun s -> Hmm.initial h s *. Hmm.emission h s o0))
    in
    List.iter
      (fun o ->
         let prev = !cur in
         cur :=
           List.init k (fun s ->
               let reach =
                 List.fold_left
                   (fun sum (s', p') -> sum +. (p' *. Hmm.transition h s' s))
                   0.0
                   (List.mapi (fun i p -> (i, p)) prev)
               in
               reach *. Hmm.emission h s o))
      rest;
    List.fold_left ( +. ) 0.0 !cur

let test_validation () =
  let expect_invalid msg f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s: expected Invalid_argument" msg
  in
  expect_invalid "bad initial sum" (fun () ->
      Hmm.make ~initial:[| 0.5; 0.2 |]
        ~transition:[| [| 1.0; 0.0 |]; [| 0.0; 1.0 |] |]
        ~emission:[| [| 1.0 |]; [| 1.0 |] |] ());
  expect_invalid "negative prob" (fun () ->
      Hmm.make ~initial:[| 1.5; -0.5 |]
        ~transition:[| [| 1.0; 0.0 |]; [| 0.0; 1.0 |] |]
        ~emission:[| [| 1.0 |]; [| 1.0 |] |] ());
  expect_invalid "ragged transition" (fun () ->
      Hmm.make ~initial:[| 1.0 |] ~transition:[| [| 0.5; 0.5 |] |]
        ~emission:[| [| 1.0 |] |] ());
  let h = toy () in
  Alcotest.(check int) "k" 2 (Hmm.num_states h);
  Alcotest.(check int) "m" 2 (Hmm.num_symbols h);
  Alcotest.(check (float 1e-12)) "access" 0.7 (Hmm.transition h 0 0)

let test_likelihood_brute_force () =
  let h = toy () in
  List.iter
    (fun obs ->
       let exact = log (brute_likelihood h obs) in
       Alcotest.(check (float 1e-9))
         (Printf.sprintf "loglik %s"
            (String.concat "" (List.map string_of_int obs)))
         exact (Hmm.log_likelihood h obs))
    [ [ 0 ]; [ 1 ]; [ 0; 1 ]; [ 0; 0; 1; 1 ]; [ 1; 0; 1; 0; 0 ] ];
  Alcotest.check_raises "empty" (Invalid_argument "Hmm: empty observation sequence")
    (fun () -> ignore (Hmm.log_likelihood h []));
  Alcotest.check_raises "bad symbol"
    (Invalid_argument "Hmm: observation symbol 7 out of range") (fun () ->
        ignore (Hmm.log_likelihood h [ 7 ]))

let test_forward_backward () =
  let h = toy () in
  let gammas, ll = Hmm.forward_backward h [ 0; 1; 1 ] in
  Alcotest.(check (float 1e-9)) "consistent loglik" (Hmm.log_likelihood h [ 0; 1; 1 ]) ll;
  Array.iter
    (fun row ->
       Alcotest.(check (float 1e-9)) "gamma row sums to 1" 1.0
         (Array.fold_left ( +. ) 0.0 row))
    gammas;
  (* observing 0 makes hidden state 0 more likely at that position *)
  Alcotest.(check bool) "posterior leans correctly" true
    (gammas.(0).(0) > 0.5 && gammas.(1).(1) > 0.5)

let test_viterbi () =
  let h = toy () in
  let path = Hmm.viterbi h [ 0; 0; 1; 1 ] in
  Alcotest.(check (list int)) "viterbi" [ 0; 0; 1; 1 ] path;
  let path = Hmm.viterbi h [ 0 ] in
  Alcotest.(check (list int)) "single" [ 0 ] path

let test_simulate_statistics () =
  let h = toy () in
  let rng = Prng.create 9 in
  let count0 = ref 0 and total = ref 0 in
  for _ = 1 to 2000 do
    let hidden, obs = Hmm.simulate rng h ~len:10 in
    Alcotest.(check int) "lengths" (List.length hidden) (List.length obs);
    List.iter2
      (fun s o ->
         incr total;
         if s = 0 && o = 0 then incr count0)
      hidden obs
  done;
  (* stationary-ish sanity: state-0/symbol-0 pairs are common *)
  Alcotest.(check bool) "emission statistics plausible" true
    (float_of_int !count0 /. float_of_int !total > 0.3)

let test_baum_welch_improves () =
  let truth = toy () in
  let rng = Prng.create 21 in
  let seqs = List.init 40 (fun _ -> snd (Hmm.simulate rng truth ~len:30)) in
  (* a deliberately wrong starting point *)
  let start =
    Hmm.make
      ~initial:[| 0.5; 0.5 |]
      ~transition:[| [| 0.5; 0.5 |]; [| 0.5; 0.5 |] |]
      ~emission:[| [| 0.6; 0.4 |]; [| 0.4; 0.6 |] |]
      ()
  in
  let learned, progress = Baum_welch.learn ~iterations:50 start seqs in
  (* monotone log-likelihood *)
  let rec monotone = function
    | a :: (b :: _ as rest) -> a <= b +. 1e-9 && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "loglik monotone" true (monotone progress.Baum_welch.log_likelihoods);
  Alcotest.(check bool) "iterated" true (progress.Baum_welch.iterations > 1);
  let ll_start =
    List.fold_left (fun acc s -> acc +. Hmm.log_likelihood start s) 0.0 seqs
  in
  let ll_end =
    List.fold_left (fun acc s -> acc +. Hmm.log_likelihood learned s) 0.0 seqs
  in
  Alcotest.(check bool) "improved" true (ll_end > ll_start +. 1.0);
  (* learned emissions separate the symbols like the truth does (up to
     state relabelling) *)
  let e00 = Hmm.emission learned 0 0 and e10 = Hmm.emission learned 1 0 in
  Alcotest.(check bool) "emissions separated" true (Float.abs (e00 -. e10) > 0.3)

let test_constrained_estep () =
  let h = toy () in
  (* conditioning on never visiting hidden state 1 zeroes its posterior *)
  let gammas, ll = Hmm.posterior_masked h ~forbidden:(fun s -> s = 1) [ 0; 0; 1 ] in
  Array.iter
    (fun row -> Alcotest.(check (float 1e-12)) "state 1 masked" 0.0 row.(1))
    gammas;
  (* constrained event is less likely than the unconstrained one *)
  Alcotest.(check bool) "volume shrinks" true (ll < Hmm.log_likelihood h [ 0; 0; 1 ]);
  (* the constrained likelihood equals P(obs, path avoids state 1):
     brute force over allowed paths (only all-zeros path remains) *)
  let expected =
    0.6 *. 0.9 *. 0.7 *. 0.9 *. 0.7 *. 0.1
  in
  Alcotest.(check (float 1e-9)) "exact masked likelihood" (log expected) ll;
  (* no allowed explanation -> error (state 0 forbidden, but observing
     requires some state; forbid both) *)
  match Hmm.posterior_masked h ~forbidden:(fun _ -> true) [ 0 ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let test_constrained_em () =
  let truth = toy () in
  let rng = Prng.create 33 in
  let seqs = List.init 30 (fun _ -> snd (Hmm.simulate rng truth ~len:20)) in
  let start =
    Hmm.make
      ~initial:[| 0.5; 0.5 |]
      ~transition:[| [| 0.5; 0.5 |]; [| 0.5; 0.5 |] |]
      ~emission:[| [| 0.7; 0.3 |]; [| 0.3; 0.7 |] |]
      ()
  in
  let constrained, _ =
    Baum_welch.learn_constrained ~iterations:30 ~forbidden:(fun s -> s = 1)
      start seqs
  in
  (* the re-estimated model starves the forbidden state *)
  Alcotest.(check bool) "pi(1) ~ 0" true (Hmm.initial constrained 1 < 1e-3);
  Alcotest.(check bool) "A(0,1) ~ 0" true (Hmm.transition constrained 0 1 < 1e-3);
  (* and its Viterbi explanations avoid it *)
  let path = Hmm.viterbi constrained (snd (Hmm.simulate rng truth ~len:15)) in
  Alcotest.(check bool) "viterbi avoids forbidden" true
    (List.for_all (fun s -> s = 0) path)

let () =
  Alcotest.run "hmm"
    [ ( "model",
        [ Alcotest.test_case "validation" `Quick test_validation;
          Alcotest.test_case "likelihood vs brute force" `Quick
            test_likelihood_brute_force;
          Alcotest.test_case "forward-backward" `Quick test_forward_backward;
          Alcotest.test_case "viterbi" `Quick test_viterbi;
          Alcotest.test_case "simulate" `Quick test_simulate_statistics;
        ] );
      ( "em",
        [ Alcotest.test_case "baum-welch improves" `Quick test_baum_welch_improves;
          Alcotest.test_case "constrained E-step" `Quick test_constrained_estep;
          Alcotest.test_case "constrained EM" `Quick test_constrained_em;
        ] );
    ]
