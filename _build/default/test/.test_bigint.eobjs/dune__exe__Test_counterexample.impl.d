test/test_counterexample.ml: Alcotest Counterexample Dtmc List Local_repair Model_repair Pctl_parser Ratfun Wsn
