test/test_casestudies.mli:
