test/test_ratio.mli:
