test/test_learn.ml: Alcotest Array Dtmc Float Irl List Mdp Mle Pdtmc Printf Prng QCheck2 QCheck_alcotest Ratfun Ratio Trace Value
