test/test_parametric.mli:
