test/test_smc.ml: Alcotest Check_dtmc Dtmc Float Format Pctl Pctl_parser Prng QCheck2 QCheck_alcotest Smc
