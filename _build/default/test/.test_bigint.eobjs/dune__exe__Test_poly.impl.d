test/test_poly.ml: Alcotest Array Float List Option Poly Printf QCheck2 QCheck_alcotest Ratfun Ratio
