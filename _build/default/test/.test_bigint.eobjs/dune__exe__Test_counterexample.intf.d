test/test_counterexample.mli:
