test/test_modelcheck.mli:
