test/test_smc.mli:
