test/test_casestudies.ml: Alcotest Array Car Check_dtmc Data_repair Dtmc Float Fun Irl List Mdp Mle Model_repair Printf Prng Ratio Reward_repair Trace Trace_logic Value Wsn
