test/test_linalg.ml: Alcotest Array Float Linalg Printf Prng QCheck2 QCheck_alcotest Stats
