test/test_hmm.mli:
