test/test_io.ml: Alcotest Car Dtmc Dtmc_io Filename List Mdp Mdp_io Printf Ratfun Ratio Spec_io Sys Trace Trace_io
