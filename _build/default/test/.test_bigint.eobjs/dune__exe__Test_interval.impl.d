test/test_interval.ml: Alcotest Array Check_dtmc Check_mdp Dtmc Float Idtmc Imdp List Mdp Pctl_parser Printf QCheck2 QCheck_alcotest Robust Robust_mdp
