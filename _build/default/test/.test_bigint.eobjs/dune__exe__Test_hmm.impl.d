test/test_hmm.ml: Alcotest Array Baum_welch Float Hmm List Printf Prng String
