test/test_ctmc.ml: Alcotest Array Check_dtmc Ctmc Dtmc Float List Printf Prng QCheck2 QCheck_alcotest
