test/test_ctmc.mli:
