test/test_optimize.ml: Alcotest Array Float Fun Gradient List Nelder_mead Nlp Printf QCheck2 QCheck_alcotest Scalar
