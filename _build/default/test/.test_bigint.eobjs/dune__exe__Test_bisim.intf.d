test/test_bisim.mli:
