test/test_modelcheck.ml: Alcotest Array Check_dtmc Check_mdp Dtmc Float Format Graph_analysis List Mdp Pctl_parser Prng QCheck2 QCheck_alcotest
