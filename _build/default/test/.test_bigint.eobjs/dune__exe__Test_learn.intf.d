test/test_learn.mli:
