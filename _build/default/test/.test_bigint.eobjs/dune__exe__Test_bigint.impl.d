test/test_bigint.ml: Alcotest Bigint List Option Printf QCheck2 QCheck_alcotest
