test/test_steady_state.ml: Alcotest Array Dtmc Experiments Format List Pctl_parser Prng Steady_state String
