test/test_logic.ml: Alcotest Format List Pctl Pctl_parser Printf QCheck2 QCheck_alcotest Rule_parser Trace Trace_logic
