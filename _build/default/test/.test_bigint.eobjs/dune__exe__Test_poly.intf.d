test/test_poly.mli:
