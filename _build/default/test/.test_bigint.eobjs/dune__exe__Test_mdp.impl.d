test/test_mdp.ml: Alcotest Array Dtmc Float Format Int Linalg List Mdp Printf Prng QCheck2 QCheck_alcotest Trace Value
