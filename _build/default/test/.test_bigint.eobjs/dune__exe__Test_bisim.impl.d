test/test_bisim.ml: Alcotest Array Bisimulation Check_dtmc Dtmc Float Format List Model_repair Pctl Pctl_parser Prng QCheck2 QCheck_alcotest Ratfun
