test/test_mdp.mli:
