test/test_pquery.mli:
