test/test_ratio.ml: Alcotest Bigint Float Printf QCheck2 QCheck_alcotest Ratio Stdlib
