test/test_pquery.ml: Alcotest Check_dtmc Float List Pctl Pctl_parser Pdtmc Pquery Printf QCheck2 QCheck_alcotest Ratfun Ratio
