test/test_steady_state.mli:
