test/test_parametric.ml: Alcotest Check_dtmc Dtmc Elimination Float Pdtmc Poly Printf QCheck2 QCheck_alcotest Ratfun Ratio
