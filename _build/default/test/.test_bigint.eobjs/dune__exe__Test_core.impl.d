test/test_core.ml: Alcotest Array Data_repair Dtmc Format Irl List Mdp Mdp_repair Model_repair Pctl_parser Pipeline Pquery Prng Ratfun Reward_repair String Trace Trace_logic Value
