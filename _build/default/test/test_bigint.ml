(* Unit and property tests for Tml_bigint.Bigint. *)

module B = Bigint

let b = B.of_string
let check_b msg expected actual =
  Alcotest.(check string) msg expected (B.to_string actual)

(* -------------------------------------------------------------- *)
(* Unit tests                                                      *)
(* -------------------------------------------------------------- *)

let test_constants () =
  check_b "zero" "0" B.zero;
  check_b "one" "1" B.one;
  check_b "minus_one" "-1" B.minus_one;
  Alcotest.(check bool) "is_zero" true (B.is_zero B.zero);
  Alcotest.(check bool) "is_one" true (B.is_one B.one);
  Alcotest.(check bool) "one not zero" false (B.is_zero B.one)

let test_of_int_extremes () =
  check_b "max_int" (string_of_int max_int) (B.of_int max_int);
  check_b "min_int" (string_of_int min_int) (B.of_int min_int);
  Alcotest.(check (option int)) "roundtrip max" (Some max_int)
    (B.to_int_opt (B.of_int max_int));
  Alcotest.(check (option int)) "roundtrip min" (Some min_int)
    (B.to_int_opt (B.of_int min_int));
  Alcotest.(check (option int)) "too big" None
    (B.to_int_opt (B.mul (B.of_int max_int) (B.of_int 4)))

let test_string_roundtrip () =
  let cases =
    [ "0"; "1"; "-1"; "42"; "-42"; "1000000000"; "999999999999999999999999";
      "-123456789012345678901234567890"; "2147483648"; "4611686018427387904" ]
  in
  List.iter (fun s -> check_b s s (b s)) cases;
  check_b "underscores" "1234567" (b "1_234_567");
  check_b "plus sign" "17" (b "+17");
  Alcotest.(check (option string)) "garbage" None
    (Option.map B.to_string (B.of_string_opt "12x4"));
  Alcotest.(check (option string)) "empty" None
    (Option.map B.to_string (B.of_string_opt ""))

let test_add_sub () =
  check_b "carry chain" "10000000000000000000000"
    (B.add (b "9999999999999999999999") B.one);
  check_b "borrow chain" "9999999999999999999999"
    (B.sub (b "10000000000000000000000") B.one);
  check_b "mixed signs" "-5" (B.add (b "-10") (b "5"));
  check_b "a - a" "0" (B.sub (b "123456789123456789") (b "123456789123456789"))

let test_mul () =
  check_b "square" "15241578753238836750495351562536198787501905199875019052100"
    (B.mul (b "123456789012345678901234567890") (b "123456789012345678901234567890"));
  check_b "sign" "-6" (B.mul (b "2") (b "-3"));
  check_b "by zero" "0" (B.mul (b "-3") B.zero);
  check_b "mul_int" "999999999000000000"
    (B.mul_int (b "999999999") 1_000_000_000)

let test_divmod () =
  let q, r = B.divmod (b "1000000000000000000000") (b "7") in
  check_b "q" "142857142857142857142" q;
  check_b "r" "6" r;
  (* Truncation-toward-zero convention, like Stdlib. *)
  let q, r = B.divmod (b "-7") (b "2") in
  check_b "neg q" "-3" q;
  check_b "neg r" "-1" r;
  let q, r = B.ediv_rem (b "-7") (b "2") in
  check_b "euclid q" "-4" q;
  check_b "euclid r" "1" r;
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (B.divmod B.one B.zero))

let test_divmod_multi_limb () =
  (* Exercises Algorithm D with multi-limb divisors. *)
  let a = b "340282366920938463463374607431768211456" (* 2^128 *) in
  let d = b "18446744073709551617" (* 2^64 + 1 *) in
  let q, r = B.divmod a d in
  check_b "q128" "18446744073709551615" q;
  check_b "r128" "1" r;
  Alcotest.(check bool) "identity" true B.(equal a (add (mul q d) r))

let test_gcd_lcm () =
  check_b "gcd" "12" (B.gcd (b "48") (b "36"));
  check_b "gcd neg" "12" (B.gcd (b "-48") (b "36"));
  check_b "gcd zero" "5" (B.gcd B.zero (b "5"));
  check_b "gcd both zero" "0" (B.gcd B.zero B.zero);
  check_b "lcm" "144" (B.lcm (b "48") (b "36"));
  check_b "big gcd" "998244353"
    (B.gcd (B.mul (b "998244353") (b "1000000007"))
       (B.mul (b "998244353") (b "1000000009")))

let test_pow () =
  check_b "2^100" "1267650600228229401496703205376" (B.pow B.two 100);
  check_b "x^0" "1" (B.pow (b "999") 0);
  check_b "(-2)^3" "-8" (B.pow (b "-2") 3);
  Alcotest.check_raises "neg exp" (Invalid_argument "Bigint.pow: negative exponent")
    (fun () -> ignore (B.pow B.two (-1)))

let test_shifts () =
  check_b "shl" "1267650600228229401496703205376" (B.shift_left B.one 100);
  check_b "shr" "1" (B.shift_right (B.shift_left B.one 100) 100);
  check_b "shr to zero" "0" (B.shift_right (b "12345") 64);
  check_b "shl neg" "-4" (B.shift_left (b "-1") 2)

let test_compare () =
  Alcotest.(check int) "lt" (-1) (B.compare (b "-5") (b "3"));
  Alcotest.(check int) "gt" 1 (B.compare (b "30000000000000000000") (b "3"));
  Alcotest.(check int) "eq" 0 (B.compare (b "42") (b "42"));
  Alcotest.(check int) "neg order" (-1) (B.compare (b "-10") (b "-5"));
  Alcotest.(check int) "sign" (-1) (B.sign (b "-9"));
  Alcotest.(check int) "num_bits 0" 0 (B.num_bits B.zero);
  Alcotest.(check int) "num_bits 1" 1 (B.num_bits B.one);
  Alcotest.(check int) "num_bits 2^100" 101 (B.num_bits (B.shift_left B.one 100))

let test_to_float () =
  Alcotest.(check (float 1e-6)) "small" 42.0 (B.to_float (b "42"));
  Alcotest.(check (float 1e6)) "2^62" 4.611686018427387904e18
    (B.to_float (B.shift_left B.one 62));
  Alcotest.(check (float 1e-6)) "neg" (-17.0) (B.to_float (b "-17"))

(* -------------------------------------------------------------- *)
(* Property tests                                                  *)
(* -------------------------------------------------------------- *)

let gen_bigint =
  (* Build numbers of up to ~8 limbs with FULL-RANGE limbs in base 2^31.
     Folding with a sub-2^30 multiplier would almost never produce a top
     limb >= 2^30, which is exactly the "already normalised divisor" branch
     of Algorithm D — a truncated-quotient bug hid there once. *)
  let open QCheck2.Gen in
  let* parts = list_size (int_range 1 8) (int_range 0 ((1 lsl 31) - 1)) in
  let* negate = bool in
  let base = B.of_int (1 lsl 31) in
  let v =
    List.fold_left
      (fun acc p -> B.add (B.mul acc base) (B.of_int p))
      B.zero parts
  in
  return (if negate then B.neg v else v)

let qtest name ?(count = 300) ~print gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count ~print gen f)

let pr2 (a, b) = Printf.sprintf "(%s, %s)" (B.to_string a) (B.to_string b)
let pr3 (a, b, c) =
  Printf.sprintf "(%s, %s, %s)" (B.to_string a) (B.to_string b) (B.to_string c)

let props =
  [ qtest "add commutes" ~print:pr2 QCheck2.Gen.(pair gen_bigint gen_bigint)
      (fun (a, c) -> B.equal (B.add a c) (B.add c a));
    qtest "add associates"
      ~print:pr3 QCheck2.Gen.(triple gen_bigint gen_bigint gen_bigint)
      (fun (a, c, d) ->
         B.equal (B.add a (B.add c d)) (B.add (B.add a c) d));
    qtest "mul commutes" ~print:pr2 QCheck2.Gen.(pair gen_bigint gen_bigint)
      (fun (a, c) -> B.equal (B.mul a c) (B.mul c a));
    qtest "mul associates"
      ~print:pr3 QCheck2.Gen.(triple gen_bigint gen_bigint gen_bigint)
      (fun (a, c, d) ->
         B.equal (B.mul a (B.mul c d)) (B.mul (B.mul a c) d));
    qtest "distributivity"
      ~print:pr3 QCheck2.Gen.(triple gen_bigint gen_bigint gen_bigint)
      (fun (a, c, d) ->
         B.equal (B.mul a (B.add c d)) (B.add (B.mul a c) (B.mul a d)));
    qtest "sub inverse" ~print:pr2 QCheck2.Gen.(pair gen_bigint gen_bigint)
      (fun (a, c) -> B.equal (B.add (B.sub a c) c) a);
    qtest "neg involutive" ~print:B.to_string gen_bigint (fun a -> B.equal (B.neg (B.neg a)) a);
    qtest "divmod identity" ~print:pr2 QCheck2.Gen.(pair gen_bigint gen_bigint)
      (fun (a, d) ->
         QCheck2.assume (not (B.is_zero d));
         let q, r = B.divmod a d in
         B.equal a (B.add (B.mul q d) r)
         && B.compare (B.abs r) (B.abs d) < 0
         && (B.is_zero r || B.sign r = B.sign a));
    qtest "ediv_rem identity" ~print:pr2 QCheck2.Gen.(pair gen_bigint gen_bigint)
      (fun (a, d) ->
         QCheck2.assume (not (B.is_zero d));
         let q, r = B.ediv_rem a d in
         B.equal a (B.add (B.mul q d) r)
         && B.sign r >= 0
         && B.compare r (B.abs d) < 0);
    qtest "string roundtrip" ~print:B.to_string gen_bigint
      (fun a -> B.equal a (B.of_string (B.to_string a)));
    qtest "gcd divides" ~print:pr2 QCheck2.Gen.(pair gen_bigint gen_bigint)
      (fun (a, c) ->
         QCheck2.assume (not (B.is_zero a) || not (B.is_zero c));
         let g = B.gcd a c in
         B.is_zero (B.rem a g) && B.is_zero (B.rem c g));
    qtest "gcd linearity" ~print:pr2 QCheck2.Gen.(pair gen_bigint gen_bigint)
      (fun (a, c) ->
         QCheck2.assume (not (B.is_zero c));
         B.equal (B.gcd a c) (B.gcd c (B.rem a c)));
    qtest "compare antisym" ~print:pr2 QCheck2.Gen.(pair gen_bigint gen_bigint)
      (fun (a, c) -> B.compare a c = -B.compare c a);
    qtest "shift mul agree" ~print:(fun (a, k) -> Printf.sprintf "(%s, %d)" (B.to_string a) k)
      QCheck2.Gen.(pair gen_bigint (int_range 0 80))
      (fun (a, k) -> B.equal (B.shift_left a k) (B.mul a (B.pow B.two k)));
    qtest "int agreement"
      ~print:(fun (x, y) -> Printf.sprintf "(%d, %d)" x y)
      QCheck2.Gen.(pair (int_range (-100000) 100000) (int_range (-100000) 100000))
      (fun (x, y) ->
         B.equal (B.add (B.of_int x) (B.of_int y)) (B.of_int (x + y))
         && B.equal (B.mul (B.of_int x) (B.of_int y)) (B.of_int (x * y))
         && (y = 0
             || (B.equal (B.div (B.of_int x) (B.of_int y)) (B.of_int (x / y))
                 && B.equal (B.rem (B.of_int x) (B.of_int y)) (B.of_int (x mod y)))));
  ]

let () =
  Alcotest.run "bigint"
    [ ( "unit",
        [ Alcotest.test_case "constants" `Quick test_constants;
          Alcotest.test_case "of_int extremes" `Quick test_of_int_extremes;
          Alcotest.test_case "string roundtrip" `Quick test_string_roundtrip;
          Alcotest.test_case "add/sub" `Quick test_add_sub;
          Alcotest.test_case "mul" `Quick test_mul;
          Alcotest.test_case "divmod" `Quick test_divmod;
          Alcotest.test_case "divmod multi-limb" `Quick test_divmod_multi_limb;
          Alcotest.test_case "gcd/lcm" `Quick test_gcd_lcm;
          Alcotest.test_case "pow" `Quick test_pow;
          Alcotest.test_case "shifts" `Quick test_shifts;
          Alcotest.test_case "compare" `Quick test_compare;
          Alcotest.test_case "to_float" `Quick test_to_float;
        ] );
      ("properties", props);
    ]
