(* Tests for Pctl, Pctl_parser and Trace_logic. *)

open Pctl

let formula =
  Alcotest.testable (fun fmt f -> Format.pp_print_string fmt (Pctl.to_string f))
    ( = )

let parse = Pctl_parser.parse

let test_parse_atoms () =
  Alcotest.check formula "true" True (parse "true");
  Alcotest.check formula "false" False (parse "false");
  Alcotest.check formula "prop" (Prop "safe") (parse "safe");
  Alcotest.check formula "not" (Not (Prop "safe")) (parse "!safe");
  Alcotest.check formula "parens" (Prop "a") (parse "((a))")

let test_parse_boolean () =
  Alcotest.check formula "and" (And (Prop "a", Prop "b")) (parse "a & b");
  Alcotest.check formula "or" (Or (Prop "a", Prop "b")) (parse "a | b");
  Alcotest.check formula "implies" (Implies (Prop "a", Prop "b")) (parse "a => b");
  (* precedence: ! > & > | > => *)
  Alcotest.check formula "prec 1"
    (Or (And (Prop "a", Prop "b"), Prop "c"))
    (parse "a & b | c");
  Alcotest.check formula "prec 2"
    (Implies (Or (Prop "a", Prop "b"), Prop "c"))
    (parse "a | b => c");
  Alcotest.check formula "not binds tight"
    (And (Not (Prop "a"), Prop "b"))
    (parse "!a & b");
  (* => is right-associative *)
  Alcotest.check formula "implies assoc"
    (Implies (Prop "a", Implies (Prop "b", Prop "c")))
    (parse "a => b => c")

let test_parse_prob () =
  Alcotest.check formula "lane change (paper §I)"
    (Prob (Gt, 0.99, Eventually (Or (Prop "changedLane", Prop "reducedSpeed"))))
    (parse "P>0.99 [ F changedLane | reducedSpeed ]");
  Alcotest.check formula "next" (Prob (Ge, 0.5, Next (Prop "a"))) (parse "P>=0.5 [ X a ]");
  Alcotest.check formula "until"
    (Prob (Lt, 0.05, Until (Prop "a", Prop "b")))
    (parse "P<0.05 [ a U b ]");
  Alcotest.check formula "bounded until"
    (Prob (Lt, 0.05, Bounded_until (Not (Prop "safe"), Prop "crash", 10)))
    (parse "P<0.05 [ !safe U<=10 crash ]");
  Alcotest.check formula "bounded eventually"
    (Prob (Ge, 0.9, Bounded_eventually (Prop "goal", 7)))
    (parse "P>=0.9 [ F<=7 goal ]");
  Alcotest.check formula "globally"
    (Prob (Ge, 0.99, Globally (Prop "safe")))
    (parse "P>=0.99 [ G safe ]");
  Alcotest.check formula "bounded globally"
    (Prob (Ge, 0.99, Bounded_globally (Prop "safe", 3)))
    (parse "P>=0.99 [ G<=3 safe ]")

let test_parse_reward () =
  (* The WSN property: R{attempts} <= 40 [ F delivered ] *)
  Alcotest.check formula "reward"
    (Reward (Le, 40.0, Prop "delivered"))
    (parse "R<=40 [ F delivered ]");
  Alcotest.check formula "reward strict"
    (Reward (Lt, 19.0, Prop "delivered"))
    (parse "R<19 [ F delivered ]")

let test_parse_errors () =
  let fails s =
    match Pctl_parser.parse_opt s with
    | None -> ()
    | Some f -> Alcotest.failf "%S should not parse, got %s" s (Pctl.to_string f)
  in
  fails "";
  fails "P>0.99";
  fails "P>1.5 [ F a ]";
  fails "P>0.5 [ a ]";
  fails "R<=40 [ G a ]";
  fails "a &";
  fails "a b";
  fails "P>0.5 [ F<=2.5 a ]";
  fails "@@";
  fails "(a"

let test_roundtrip () =
  let cases =
    [ "P>0.99 [ F changedLane | reducedSpeed ]";
      "R<=40 [ F delivered ]";
      "a & b | !c => d";
      "P<0.05 [ !safe U<=10 crash ]";
      "P>=0.9 [ G safe ]";
    ]
  in
  List.iter
    (fun s ->
       let f = parse s in
       Alcotest.check formula
         (Printf.sprintf "roundtrip %s" s)
         f
         (parse (Pctl.to_string f)))
    cases

let test_helpers () =
  Alcotest.(check bool) "ge" true (compare_with Ge 0.5 0.5);
  Alcotest.(check bool) "gt" false (compare_with Gt 0.5 0.5);
  Alcotest.(check bool) "lt" true (compare_with Lt 0.4 0.5);
  Alcotest.(check bool) "le" false (compare_with Le 0.6 0.5);
  Alcotest.(check bool) "negate" true (negate_cmp Ge = Lt && negate_cmp Lt = Ge);
  Alcotest.(check bool) "flip" true (flip_cmp Ge = Le && flip_cmp Gt = Lt);
  Alcotest.(check (list string)) "atomic props" [ "a"; "b"; "c" ]
    (atomic_props (parse "P>0.5 [ a U b ] & c & a"));
  Alcotest.(check bool) "probabilistic" true (is_probabilistic (parse "P>0.5 [ X a ]"));
  Alcotest.(check bool) "not probabilistic" false (is_probabilistic (parse "a & b"))

(* ---------------- Trace_logic ---------------- *)

module TL = Trace_logic

let no_labels _ _ = false

(* car-style trace: (0,fwd)(1,left)(6,fwd) final 7 *)
let tr = Trace.make [ (0, "fwd"); (1, "left"); (6, "fwd") ] 7

let test_tl_atoms () =
  Alcotest.(check bool) "state at 0" true
    (TL.eval ~labels:no_labels tr (TL.Atom (TL.State_is 0)));
  Alcotest.(check bool) "state not" false
    (TL.eval ~labels:no_labels tr (TL.Atom (TL.State_is 1)));
  Alcotest.(check bool) "action at 0" true
    (TL.eval ~labels:no_labels tr (TL.Atom (TL.Action_is "fwd")));
  Alcotest.(check bool) "step" true
    (TL.eval_at ~labels:no_labels tr 1 (TL.Atom (TL.Step (1, "left"))));
  (* final position: actions are false *)
  Alcotest.(check bool) "no action at final" false
    (TL.eval_at ~labels:no_labels tr 3 (TL.Atom (TL.Action_is "fwd")));
  let labels s name = name = "left_lane" && s >= 5 && s <= 9 in
  Alcotest.(check bool) "label" true
    (TL.eval_at ~labels tr 2 (TL.Atom (TL.Label "left_lane")));
  Alcotest.(check bool) "label false" false
    (TL.eval_at ~labels tr 0 (TL.Atom (TL.Label "left_lane")))

let test_tl_temporal () =
  Alcotest.(check bool) "eventually 7" true
    (TL.eval ~labels:no_labels tr (TL.Eventually (TL.Atom (TL.State_is 7))));
  Alcotest.(check bool) "eventually 9" false
    (TL.eval ~labels:no_labels tr (TL.Eventually (TL.Atom (TL.State_is 9))));
  Alcotest.(check bool) "never 2 holds" true
    (TL.eval ~labels:no_labels tr (TL.avoids_state 2));
  Alcotest.(check bool) "never 6 fails" false
    (TL.eval ~labels:no_labels tr (TL.avoids_state 6));
  Alcotest.(check bool) "avoids_states" true
    (TL.eval ~labels:no_labels tr (TL.avoids_states [ 2; 10 ]));
  Alcotest.(check bool) "next" true
    (TL.eval ~labels:no_labels tr (TL.Next (TL.Atom (TL.State_is 1))));
  (* strong next at the final position is false *)
  Alcotest.(check bool) "next at end" false
    (TL.eval_at ~labels:no_labels tr 3 (TL.Next TL.True));
  Alcotest.(check bool) "until" true
    (TL.eval ~labels:no_labels tr
       (TL.Until (TL.Not (TL.Atom (TL.State_is 7)), TL.Atom (TL.State_is 6))));
  Alcotest.(check bool) "until needs witness" false
    (TL.eval ~labels:no_labels tr
       (TL.Until (TL.True, TL.Atom (TL.State_is 9))));
  Alcotest.(check bool) "takes_action_in sat" true
    (TL.eval ~labels:no_labels tr (TL.takes_action_in 1 "left"));
  Alcotest.(check bool) "takes_action_in viol" false
    (TL.eval ~labels:no_labels tr (TL.takes_action_in 1 "fwd"))

let test_tl_indicator_violations () =
  Alcotest.(check (float 0.0)) "indicator sat" 1.0
    (TL.indicator ~labels:no_labels tr (TL.avoids_state 2));
  Alcotest.(check (float 0.0)) "indicator viol" 0.0
    (TL.indicator ~labels:no_labels tr (TL.avoids_state 6));
  (* Always(state<>6) fails at positions 0,1,2 (suffixes containing 6) *)
  Alcotest.(check int) "violation count" 3
    (TL.violation_count ~labels:no_labels tr (TL.avoids_state 6));
  Alcotest.(check int) "no violations" 0
    (TL.violation_count ~labels:no_labels tr TL.True);
  Alcotest.check_raises "out of range"
    (Invalid_argument "Trace_logic: position 9 out of range") (fun () ->
        ignore (TL.eval_at ~labels:no_labels tr 9 TL.True))

let test_tl_print () =
  Alcotest.(check string) "print" "G !state=2"
    (TL.to_string (TL.avoids_state 2));
  Alcotest.(check string) "print implies"
    "G (state=1 => action=left)"
    (TL.to_string (TL.takes_action_in 1 "left"))

(* ---------------- Rule_parser ---------------- *)

let rule = Alcotest.testable (fun fmt f -> Format.pp_print_string fmt (TL.to_string f)) ( = )

let test_rule_parser_atoms () =
  Alcotest.check rule "true" TL.True (Rule_parser.parse "true");
  Alcotest.check rule "state" (TL.Atom (TL.State_is 2)) (Rule_parser.parse "state=2");
  Alcotest.check rule "action" (TL.Atom (TL.Action_is "left"))
    (Rule_parser.parse "action=left");
  Alcotest.check rule "label" (TL.Atom (TL.Label "unsafe")) (Rule_parser.parse "unsafe");
  Alcotest.check rule "step" (TL.Atom (TL.Step (1, "fwd")))
    (Rule_parser.parse "(state=1,action=fwd)");
  Alcotest.check rule "step with spaces" (TL.Atom (TL.Step (1, "fwd")))
    (Rule_parser.parse "( state=1, action=fwd )");
  (* a parenthesised plain atom is grouping, not a step *)
  Alcotest.check rule "grouped state atom" (TL.Atom (TL.State_is 1))
    (Rule_parser.parse "(state=1)")

let test_rule_parser_temporal () =
  Alcotest.check rule "never unsafe"
    (TL.Always (TL.Not (TL.Atom (TL.Label "unsafe"))))
    (Rule_parser.parse "G !unsafe");
  Alcotest.check rule "paper safety rule (printed form)"
    (TL.avoids_states [ 2; 10 ])
    (Rule_parser.parse "G !(state=2 | state=10)");
  Alcotest.check rule "implication"
    (TL.Always (TL.Implies (TL.Atom (TL.State_is 1), TL.Atom (TL.Action_is "left"))))
    (Rule_parser.parse "G (state=1 => action=left)");
  Alcotest.check rule "until"
    (TL.Until (TL.Atom (TL.Label "left_lane"), TL.Atom (TL.Label "target")))
    (Rule_parser.parse "left_lane U target");
  Alcotest.check rule "next" (TL.Next TL.True) (Rule_parser.parse "X true")

let test_rule_parser_errors () =
  List.iter
    (fun s ->
       match Rule_parser.parse_opt s with
       | None -> ()
       | Some f -> Alcotest.failf "%S should not parse, got %s" s (TL.to_string f))
    [ ""; "state="; "state=x"; "action="; "G"; "a &"; "@"; "(a";
      "(state=1, 2)" ]

let gen_rule =
  let open QCheck2.Gen in
  let atom =
    oneof
      [ return TL.True;
        return TL.False;
        map (fun i -> TL.Atom (TL.State_is i)) (int_range 0 9);
        map (fun i -> TL.Atom (TL.Action_is (Printf.sprintf "a%d" i))) (int_range 0 3);
        map (fun i -> TL.Atom (TL.Label (Printf.sprintf "l%d" i))) (int_range 0 3);
        map2 (fun s a -> TL.Atom (TL.Step (s, Printf.sprintf "a%d" a)))
          (int_range 0 9) (int_range 0 3);
      ]
  in
  let rec go depth =
    if depth = 0 then atom
    else
      let sub = go (depth - 1) in
      oneof
        [ atom;
          map (fun f -> TL.Not f) sub;
          map2 (fun a b -> TL.And (a, b)) sub sub;
          map2 (fun a b -> TL.Or (a, b)) sub sub;
          map2 (fun a b -> TL.Implies (a, b)) sub sub;
          map (fun f -> TL.Next f) sub;
          map (fun f -> TL.Always f) sub;
          map (fun f -> TL.Eventually f) sub;
          map2 (fun a b -> TL.Until (a, b)) sub sub;
        ]
  in
  go 3

(* Properties: parser inverse of printer on random formulas. *)

let gen_formula =
  let open QCheck2.Gen in
  let atom =
    oneof
      [ return True;
        return False;
        map (fun i -> Prop (Printf.sprintf "p%d" i)) (int_range 0 4);
      ]
  in
  let rec go depth =
    if depth = 0 then atom
    else
      let sub = go (depth - 1) in
      oneof
        [ atom;
          map (fun f -> Not f) sub;
          map2 (fun a b -> And (a, b)) sub sub;
          map2 (fun a b -> Or (a, b)) sub sub;
          map2 (fun a b -> Implies (a, b)) sub sub;
          map2
            (fun b f -> Prob (Ge, b, Eventually f))
            (float_bound_inclusive 1.0) sub;
          map2
            (fun b (f, g) -> Prob (Lt, b, Until (f, g)))
            (float_bound_inclusive 1.0) (pair sub sub);
          map (fun f -> Reward (Le, 40.0, f)) sub;
        ]
  in
  go 3

let props =
  [ QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"print/parse roundtrip" ~count:300
         ~print:Pctl.to_string gen_formula (fun f ->
             Pctl_parser.parse (Pctl.to_string f) = f));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"rule print/parse roundtrip" ~count:300
         ~print:TL.to_string gen_rule (fun f ->
             Rule_parser.parse (TL.to_string f) = f));
  ]

let () =
  Alcotest.run "logic"
    [ ( "parser",
        [ Alcotest.test_case "atoms" `Quick test_parse_atoms;
          Alcotest.test_case "boolean" `Quick test_parse_boolean;
          Alcotest.test_case "prob" `Quick test_parse_prob;
          Alcotest.test_case "reward" `Quick test_parse_reward;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "roundtrip" `Quick test_roundtrip;
          Alcotest.test_case "helpers" `Quick test_helpers;
        ] );
      ( "trace logic",
        [ Alcotest.test_case "atoms" `Quick test_tl_atoms;
          Alcotest.test_case "temporal" `Quick test_tl_temporal;
          Alcotest.test_case "indicator/violations" `Quick test_tl_indicator_violations;
          Alcotest.test_case "printing" `Quick test_tl_print;
        ] );
      ( "rule parser",
        [ Alcotest.test_case "atoms" `Quick test_rule_parser_atoms;
          Alcotest.test_case "temporal" `Quick test_rule_parser_temporal;
          Alcotest.test_case "errors" `Quick test_rule_parser_errors;
        ] );
      ("properties", props);
    ]
