(** Rational functions: quotients of multivariate polynomials over ℚ.

    This is the value domain of parametric model checking — the reachability
    probability (or expected reward) of a parametric Markov chain is a
    rational function of the chain's parameters (Daws 2004; Hahn et al.
    2010), and it is what PRISM's parametric engine emits.

    Values are kept in a normal form: the denominator's leading coefficient
    is 1, constant denominators are folded into the numerator, and common
    univariate factors are cancelled by a polynomial GCD. Full multivariate
    GCD is deliberately not implemented (the repair problems in the paper use
    1–3 parameters, where the univariate and content reductions suffice);
    equality is decided by cross-multiplication and is exact regardless. *)

type t

(** {1 Construction} *)

val zero : t
val one : t
val const : Ratio.t -> t
val of_int : int -> t
val of_poly : Poly.t -> t
val var : string -> t

val make : Poly.t -> Poly.t -> t
(** [make num den]. @raise Division_by_zero when [den] is the zero
    polynomial. *)

(** {1 Access} *)

val num : t -> Poly.t
val den : t -> Poly.t
val is_zero : t -> bool
val is_const : t -> bool
val to_const_opt : t -> Ratio.t option
val vars : t -> string list

(** {1 Algebra} *)

val neg : t -> t
val inv : t -> t
(** @raise Division_by_zero on zero. *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
(** @raise Division_by_zero when dividing by zero. *)

val pow : t -> int -> t

val ( + ) : t -> t -> t
val ( - ) : t -> t -> t
val ( * ) : t -> t -> t
val ( / ) : t -> t -> t

(** {1 Equality} *)

val equal : t -> t -> bool
(** Semantic equality, by cross-multiplication. *)

(** {1 Evaluation, substitution, calculus} *)

val eval : (string -> Ratio.t) -> t -> Ratio.t
(** @raise Division_by_zero when the denominator vanishes at the point. *)

val eval_float : (string -> float) -> t -> float
(** IEEE semantics: a vanishing denominator yields [inf]/[nan] rather than
    raising, which is what the penalty-based optimizer wants. *)

val compile : t -> (string -> float) -> float
(** Precompiled float evaluation (see {!Poly.compile}); same IEEE semantics
    as {!eval_float} but orders of magnitude faster in inner loops. *)

val subst : string -> t -> t -> t
(** [subst x r f] substitutes the rational function [r] for variable [x]. *)

val derivative : string -> t -> t
(** Quotient rule. *)

(** {1 Printing} *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
