(* Sparse multivariate polynomials over Ratio.

   A monomial is a map variable -> exponent (exponents strictly positive);
   a polynomial maps monomials to non-zero coefficients. Both invariants are
   maintained by the smart constructors below. *)

module Q = Ratio
module Vmap = Map.Make (String)

module Mono = struct
  type t = int Vmap.t

  let unit : t = Vmap.empty
  let is_unit (m : t) = Vmap.is_empty m
  let compare (a : t) (b : t) = Vmap.compare Int.compare a b
  let mul (a : t) (b : t) : t =
    Vmap.union (fun _ e1 e2 -> Some (e1 + e2)) a b

  let degree (m : t) = Vmap.fold (fun _ e acc -> e + acc) m 0
  let degree_in x (m : t) = match Vmap.find_opt x m with Some e -> e | None -> 0

  let to_string (m : t) =
    if is_unit m then "1"
    else
      Vmap.bindings m
      |> List.map (fun (v, e) -> if e = 1 then v else Printf.sprintf "%s^%d" v e)
      |> String.concat "*"
end

module Mmap = Map.Make (Mono)

type t = Q.t Mmap.t

let zero : t = Mmap.empty

let const c : t = if Q.is_zero c then zero else Mmap.singleton Mono.unit c
let one = const Q.one
let of_int i = const (Q.of_int i)
let var x : t = Mmap.singleton (Vmap.singleton x 1) Q.one

let is_zero (p : t) = Mmap.is_empty p

let add_term (m : Mono.t) (c : Q.t) (p : t) : t =
  if Q.is_zero c then p
  else
    Mmap.update m
      (function
        | None -> Some c
        | Some c0 ->
          let s = Q.add c0 c in
          if Q.is_zero s then None else Some s)
      p

let add (a : t) (b : t) : t = Mmap.fold add_term b a

let neg (p : t) : t = Mmap.map Q.neg p
let sub a b = add a (neg b)

let scale k (p : t) : t =
  if Q.is_zero k then zero else Mmap.map (Q.mul k) p

let mul (a : t) (b : t) : t =
  Mmap.fold
    (fun ma ca acc ->
       Mmap.fold
         (fun mb cb acc -> add_term (Mono.mul ma mb) (Q.mul ca cb) acc)
         b acc)
    a zero

let pow p e =
  if e < 0 then invalid_arg "Poly.pow: negative exponent";
  let rec go acc b e =
    if e = 0 then acc
    else go (if e land 1 = 1 then mul acc b else acc) (mul b b) (e lsr 1)
  in
  go one p e

let ( + ) = add
let ( - ) = sub
let ( * ) = mul

let is_const (p : t) =
  Mmap.for_all (fun m _ -> Mono.is_unit m) p

let to_const_opt (p : t) =
  if is_zero p then Some Q.zero
  else if Mmap.cardinal p = 1 then
    match Mmap.min_binding_opt p with
    | Some (m, c) when Mono.is_unit m -> Some c
    | _ -> None
  else None

let coeff_of_const (p : t) =
  match Mmap.find_opt Mono.unit p with Some c -> c | None -> Q.zero

let equal (a : t) (b : t) = Mmap.equal Q.equal a b
let compare (a : t) (b : t) = Mmap.compare Q.compare a b

let degree (p : t) =
  if is_zero p then -1
  else Mmap.fold (fun m _ acc -> Stdlib.max (Mono.degree m) acc) p 0

let degree_in x (p : t) =
  Mmap.fold (fun m _ acc -> Stdlib.max (Mono.degree_in x m) acc) p 0

let vars (p : t) =
  let module Sset = Set.Make (String) in
  Mmap.fold
    (fun m _ acc -> Vmap.fold (fun v _ acc -> Sset.add v acc) m acc)
    p Sset.empty
  |> Sset.elements

let num_terms = Mmap.cardinal

let eval env (p : t) =
  Mmap.fold
    (fun m c acc ->
       let term =
         Vmap.fold (fun v e acc -> Q.mul acc (Q.pow (env v) e)) m c
       in
       Q.add acc term)
    p Q.zero

let eval_float env (p : t) =
  Mmap.fold
    (fun m c acc ->
       let term =
         Vmap.fold
           (fun v e acc -> acc *. (Float.pow (env v) (float_of_int e)))
           m (Q.to_float c)
       in
       acc +. term)
    p 0.0

(* Compilation strategy: resolve variables to indices once, record each
   term as (float coeff, packed var-index/exponent pairs), and at
   evaluation time precompute one power table per variable up to its
   maximal exponent — a term is then a few table lookups, independent of
   its degree. *)
let compile (p : t) =
  let var_names = Array.of_list (vars p) in
  let nvars = Array.length var_names in
  let var_index v =
    let rec go i = if var_names.(i) = v then i else go (Stdlib.( + ) i 1) in
    go 0
  in
  let max_exp = Array.make nvars 0 in
  let terms =
    Mmap.bindings p
    |> List.map (fun (m, c) ->
        let packed =
          Vmap.bindings m
          |> List.map (fun (v, e) ->
              let i = var_index v in
              max_exp.(i) <- Stdlib.max max_exp.(i) e;
              (i, e))
          |> Array.of_list
        in
        (Q.to_float c, packed))
    |> Array.of_list
  in
  let tables = Array.init nvars (fun i -> Array.make (Stdlib.( + ) max_exp.(i) 1) 1.0) in
  (* Flatten into parallel arrays for a cache-friendly inner loop:
     coeffs.(t) and, per term, a [len; i1; e1; i2; e2; ...] slice of
     [layout]. *)
  let nterms = Array.length terms in
  let coeffs = Array.map fst terms in
  let layout =
    let open Stdlib in
    let buf = ref [] in
    Array.iter
      (fun (_, packed) ->
         buf := Array.length packed :: !buf;
         Array.iter (fun (i, e) -> buf := e :: i :: !buf) packed)
      terms;
    Array.of_list (List.rev !buf)
  in
  fun env ->
    let open Stdlib in
    for i = 0 to nvars - 1 do
      let x = env var_names.(i) in
      let tbl = tables.(i) in
      for e = 1 to Array.length tbl - 1 do
        tbl.(e) <- tbl.(e - 1) *. x
      done
    done;
    let acc = ref 0.0 in
    let pos = ref 0 in
    for t = 0 to nterms - 1 do
      let len = layout.(!pos) in
      incr pos;
      let term = ref (Array.unsafe_get coeffs t) in
      for _ = 1 to len do
        let i = layout.(!pos) and e = layout.(!pos + 1) in
        pos := !pos + 2;
        term := !term *. Array.unsafe_get (Array.unsafe_get tables i) e
      done;
      acc := !acc +. !term
    done;
    !acc

let subst x p (q : t) : t =
  Mmap.fold
    (fun m c acc ->
       match Vmap.find_opt x m with
       | None -> add_term m c acc
       | Some e ->
         let rest = Vmap.remove x m in
         let base : t = Mmap.singleton rest c in
         add acc (mul base (pow p e)))
    q zero

let derivative x (p : t) : t =
  Mmap.fold
    (fun m c acc ->
       match Vmap.find_opt x m with
       | None -> acc
       | Some e ->
         let m' =
           if e = 1 then Vmap.remove x m else Vmap.add x (Stdlib.( - ) e 1) m
         in
         add_term m' (Q.mul c (Q.of_int e)) acc)
    p zero

let to_univariate_opt (p : t) =
  match vars p with
  | [] -> Some ("", [| coeff_of_const p |])
  | [ x ] ->
    let d = degree_in x p in
    let coeffs = Array.make (Stdlib.( + ) d 1) Q.zero in
    Mmap.iter (fun m c -> coeffs.(Mono.degree_in x m) <- c) p;
    Some (x, coeffs)
  | _ -> None

let of_univariate x coeffs =
  let acc = ref zero in
  Array.iteri
    (fun e c ->
       if not (Q.is_zero c) then
         acc :=
           add_term
             (if e = 0 then Mono.unit else Vmap.singleton x e)
             c !acc)
    coeffs;
  !acc

let to_string (p : t) =
  if is_zero p then "0"
  else begin
    let term_str first m c =
      let mono = Mono.to_string m in
      let coeff_part =
        if Mono.is_unit m then Q.to_string (Q.abs c)
        else if Q.equal (Q.abs c) Q.one then mono
        else Q.to_string (Q.abs c) ^ "*" ^ mono
      in
      if first then (if Stdlib.( < ) (Q.sign c) 0 then "-" ^ coeff_part else coeff_part)
      else if Stdlib.( < ) (Q.sign c) 0 then " - " ^ coeff_part
      else " + " ^ coeff_part
    in
    let buf = Buffer.create 64 in
    let first = ref true in
    (* Print higher-degree terms first for readability. *)
    let terms =
      Mmap.bindings p
      |> List.sort (fun (m1, _) (m2, _) ->
          match Stdlib.compare (Mono.degree m2) (Mono.degree m1) with
          | 0 -> Mono.compare m1 m2
          | c -> c)
    in
    List.iter
      (fun (m, c) ->
         Buffer.add_string buf (term_str !first m c);
         first := false)
      terms;
    Buffer.contents buf
  end

let pp fmt p = Format.pp_print_string fmt (to_string p)
