(** Sparse multivariate polynomials over exact rationals.

    Variables are named by strings. A polynomial is a finite map from
    monomials (variable -> positive exponent) to non-zero rational
    coefficients. This is the coefficient domain produced by parametric
    model checking: transition probabilities of a parametric Markov chain
    are polynomials (and, after state elimination, ratios of them). *)

type t

(** {1 Construction} *)

val zero : t
val one : t
val const : Ratio.t -> t
val of_int : int -> t
val var : string -> t

(** {1 Algebra} *)

val neg : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val scale : Ratio.t -> t -> t
val pow : t -> int -> t
(** @raise Invalid_argument on a negative exponent. *)

val ( + ) : t -> t -> t
val ( - ) : t -> t -> t
val ( * ) : t -> t -> t

(** {1 Queries} *)

val is_zero : t -> bool
val is_const : t -> bool
val to_const_opt : t -> Ratio.t option
val equal : t -> t -> bool
val compare : t -> t -> int

val degree : t -> int
(** Total degree; [degree zero = -1] by convention. *)

val degree_in : string -> t -> int
val vars : t -> string list
(** Sorted, without duplicates. *)

val num_terms : t -> int

val coeff_of_const : t -> Ratio.t
(** The constant term (zero if absent). *)

(** {1 Evaluation and substitution} *)

val eval : (string -> Ratio.t) -> t -> Ratio.t
val eval_float : (string -> float) -> t -> float

(** [compile p] precomputes float coefficients and the monomial structure
    once; the returned closure evaluates in a few flops per term. Use this
    when the same polynomial is evaluated many times (e.g. inside an
    optimisation loop) — exact coefficients can be arbitrarily large
    rationals, making {!eval_float} pay a bignum-to-float conversion on
    every call. *)
val compile : t -> (string -> float) -> float
val subst : string -> t -> t -> t
(** [subst x p q] replaces every occurrence of variable [x] in [q] by [p]. *)

val derivative : string -> t -> t

(** {1 Univariate view} *)

val to_univariate_opt : t -> (string * Ratio.t array) option
(** When the polynomial mentions at most one variable, returns that variable
    and dense coefficients [c0; c1; ...] (constant polynomials report the
    variable [""]). *)

val of_univariate : string -> Ratio.t array -> t

(** {1 Printing} *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
