lib/polynomial/poly.mli: Format Ratio
