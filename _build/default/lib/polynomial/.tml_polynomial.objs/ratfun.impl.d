lib/polynomial/ratfun.ml: Array Format Poly Printf Ratio Set Stdlib String
