lib/polynomial/ratfun.mli: Format Poly Ratio
