lib/polynomial/poly.ml: Array Buffer Float Format Int List Map Printf Ratio Set Stdlib String
