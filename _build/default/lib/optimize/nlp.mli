(** Constrained non-linear programming by penalty / augmented-Lagrangian
    methods with deterministic multistart.

    This is the library's substitute for the paper's AMPL + local solver
    step (Eqs. 4–6): minimise a smooth cost subject to inequality
    constraints [g_i(x) <= 0] and box bounds. The repair NLPs are tiny
    (1–3 variables, rational-function constraints), so a derivative-free
    inner solver plus multistart finds the same local optima a commercial
    solver reports — and, crucially, it can also {e report infeasibility},
    which is how the paper's "Model Repair gives infeasible solution" case
    (X = 19) is detected. *)

type problem = {
  dim : int;
  objective : float array -> float;
  inequalities : (string * (float array -> float)) list;
      (** named constraints, satisfied when [g x <= 0] *)
  lower : float array;
  upper : float array;
}

val problem :
  dim:int ->
  objective:(float array -> float) ->
  ?inequalities:(string * (float array -> float)) list ->
  ?lower:float array ->
  ?upper:float array ->
  unit ->
  problem
(** Bounds default to [±1e3]. @raise Invalid_argument on dimension
    mismatches or [dim <= 0]. *)

type solution = {
  x : float array;
  objective_value : float;
  max_violation : float;  (** max over constraints of [max 0 (g x)] *)
  violated : (string * float) list;  (** constraints with violation > tol *)
}

type outcome =
  | Feasible of solution
  | Infeasible of solution
      (** the least-violating point found; its [max_violation] is the
          infeasibility certificate (best-effort, from multistart) *)

type method_ = Penalty | Augmented_lagrangian

val solve :
  ?method_:method_ ->
  ?starts:int ->
  ?seed:int ->
  ?feas_tol:float ->
  ?max_iter:int ->
  problem ->
  outcome
(** Multistart (default 12 starts, seed 0, feasibility tolerance 1e-7).
    Among feasible local optima the best objective wins. *)

val max_violation : problem -> float array -> float
val is_feasible : ?feas_tol:float -> problem -> float array -> bool
