lib/optimize/gradient.ml: Array Float
