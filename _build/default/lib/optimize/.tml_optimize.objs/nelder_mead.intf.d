lib/optimize/nelder_mead.mli:
