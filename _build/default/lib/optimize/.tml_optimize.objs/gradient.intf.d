lib/optimize/gradient.mli:
