lib/optimize/nlp.mli:
