lib/optimize/scalar.ml: Float
