lib/optimize/nlp.ml: Array Float List Nelder_mead Option Printf Prng
