lib/optimize/scalar.mli:
