lib/optimize/nelder_mead.ml: Array Float Fun
