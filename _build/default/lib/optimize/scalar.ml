let invphi = (sqrt 5.0 -. 1.0) /. 2.0

let golden_section ?(tol = 1e-10) ?(max_iter = 200) f lo hi =
  if lo > hi then invalid_arg "Scalar.golden_section: lo > hi";
  let a = ref lo and c = ref hi in
  let b = ref (!c -. (invphi *. (!c -. !a))) in
  let d = ref (!a +. (invphi *. (!c -. !a))) in
  let fb = ref (f !b) and fd = ref (f !d) in
  let k = ref 0 in
  while !k < max_iter && !c -. !a > tol do
    if !fb < !fd then begin
      c := !d;
      d := !b;
      fd := !fb;
      b := !c -. (invphi *. (!c -. !a));
      fb := f !b
    end
    else begin
      a := !b;
      b := !d;
      fb := !fd;
      d := !a +. (invphi *. (!c -. !a));
      fd := f !d
    end;
    incr k
  done;
  (!a +. !c) /. 2.0

let bisect ?(tol = 1e-12) ?(max_iter = 200) f lo hi =
  let flo = f lo and fhi = f hi in
  if flo = 0.0 then lo
  else if fhi = 0.0 then hi
  else begin
    if (flo > 0.0) = (fhi > 0.0) then
      invalid_arg "Scalar.bisect: f(lo) and f(hi) have the same sign";
    let a = ref lo and b = ref hi and fa = ref flo in
    let k = ref 0 in
    while !k < max_iter && !b -. !a > tol do
      let m = (!a +. !b) /. 2.0 in
      let fm = f m in
      if fm = 0.0 then begin
        a := m;
        b := m
      end
      else if (fm > 0.0) = (!fa > 0.0) then begin
        a := m;
        fa := fm
      end
      else b := m;
      incr k
    done;
    (!a +. !b) /. 2.0
  end

let minimize_scan ?(points = 64) f lo hi =
  if lo > hi then invalid_arg "Scalar.minimize_scan: lo > hi";
  if points < 2 then invalid_arg "Scalar.minimize_scan: need at least 2 points";
  let best_i = ref 0 and best_v = ref infinity in
  for i = 0 to points - 1 do
    let x = lo +. ((hi -. lo) *. float_of_int i /. float_of_int (points - 1)) in
    let v = f x in
    if v < !best_v then begin
      best_v := v;
      best_i := i
    end
  done;
  let cell = (hi -. lo) /. float_of_int (points - 1) in
  let x = lo +. (cell *. float_of_int !best_i) in
  let a = Float.max lo (x -. cell) and b = Float.min hi (x +. cell) in
  golden_section f a b
