(** Numeric-gradient descent with backtracking line search and box
    projection. Used where the objective is smooth (e.g. the IRL likelihood
    surface); the repair NLPs prefer {!Nlp}'s derivative-free path. *)

val numeric_gradient : ?h:float -> (float array -> float) -> float array -> float array
(** Central differences. *)

type result = {
  x : float array;
  f : float;
  iterations : int;
  converged : bool;
}

val minimize :
  ?max_iter:int ->
  ?tol:float ->
  ?lower:float array ->
  ?upper:float array ->
  (float array -> float) ->
  float array ->
  result
(** Projected gradient descent from [x0]. The box is unbounded when
    [lower]/[upper] are omitted. *)

val maximize :
  ?max_iter:int ->
  ?tol:float ->
  ?lower:float array ->
  ?upper:float array ->
  (float array -> float) ->
  float array ->
  result
