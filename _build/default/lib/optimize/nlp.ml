type problem = {
  dim : int;
  objective : float array -> float;
  inequalities : (string * (float array -> float)) list;
  lower : float array;
  upper : float array;
}

let problem ~dim ~objective ?(inequalities = []) ?lower ?upper () =
  if dim <= 0 then invalid_arg "Nlp.problem: dim must be positive";
  let lower = Option.value ~default:(Array.make dim (-1e3)) lower in
  let upper = Option.value ~default:(Array.make dim 1e3) upper in
  if Array.length lower <> dim || Array.length upper <> dim then
    invalid_arg "Nlp.problem: bound arrays must have length dim";
  Array.iteri
    (fun i lo ->
       if lo > upper.(i) then
         invalid_arg (Printf.sprintf "Nlp.problem: empty box in dimension %d" i))
    lower;
  { dim; objective; inequalities; lower; upper }

type solution = {
  x : float array;
  objective_value : float;
  max_violation : float;
  violated : (string * float) list;
}

type outcome = Feasible of solution | Infeasible of solution

type method_ = Penalty | Augmented_lagrangian

let clamp p x =
  Array.mapi (fun i v -> Float.min p.upper.(i) (Float.max p.lower.(i) v)) x

let violations p x =
  List.map (fun (name, g) -> (name, Float.max 0.0 (g x))) p.inequalities

let max_violation p x =
  List.fold_left (fun acc (_, v) -> Float.max acc v) 0.0 (violations p x)

let is_feasible ?(feas_tol = 1e-7) p x = max_violation p x <= feas_tol

let guard v = if Float.is_nan v then infinity else v

(* One penalty pass: escalate μ, warm-starting each round. *)
let solve_penalty ~max_iter p x0 =
  let x = ref (clamp p x0) in
  let mus = [ 1.0; 10.0; 100.0; 1e3; 1e4; 1e5; 1e6; 1e7; 1e8 ] in
  List.iter
    (fun mu ->
       let f y =
         let y = clamp p y in
         let base = guard (p.objective y) in
         let pen =
           List.fold_left
             (fun acc (_, g) ->
                let v = Float.max 0.0 (guard (g y)) in
                acc +. (v *. v))
             0.0 p.inequalities
         in
         base +. (mu *. pen)
       in
       let r = Nelder_mead.minimize ~max_iter f !x in
       x := clamp p r.Nelder_mead.x)
    mus;
  !x

(* Augmented Lagrangian with multiplier updates. *)
let solve_auglag ~max_iter p x0 =
  let k = List.length p.inequalities in
  let lambda = Array.make k 0.0 in
  let mu = ref 10.0 in
  let x = ref (clamp p x0) in
  for _ = 1 to 8 do
    let f y =
      let y = clamp p y in
      let base = guard (p.objective y) in
      let pen = ref 0.0 in
      List.iteri
        (fun i (_, g) ->
           let gv = guard (g y) in
           (* max(0, λ + μ g)² − λ² over 2μ (Rockafellar) *)
           let t = Float.max 0.0 (lambda.(i) +. (!mu *. gv)) in
           pen := !pen +. (((t *. t) -. (lambda.(i) *. lambda.(i))) /. (2.0 *. !mu)))
        p.inequalities;
      base +. !pen
    in
    let r = Nelder_mead.minimize ~max_iter f !x in
    x := clamp p r.Nelder_mead.x;
    List.iteri
      (fun i (_, g) ->
         lambda.(i) <- Float.max 0.0 (lambda.(i) +. (!mu *. guard (g !x))))
      p.inequalities;
    mu := !mu *. 4.0
  done;
  !x

let start_points ~starts ~seed p =
  let rng = Prng.create seed in
  List.init starts (fun i ->
      if i = 0 then
        (* centre of the box, a good deterministic first start *)
        Array.init p.dim (fun j -> (p.lower.(j) +. p.upper.(j)) /. 2.0)
      else
        Array.init p.dim (fun j -> Prng.uniform rng p.lower.(j) p.upper.(j)))

let mk_solution ~feas_tol p x =
  let vs = violations p x in
  {
    x;
    objective_value = p.objective x;
    max_violation = List.fold_left (fun acc (_, v) -> Float.max acc v) 0.0 vs;
    violated = List.filter (fun (_, v) -> v > feas_tol) vs;
  }

let solve ?(method_ = Penalty) ?(starts = 12) ?(seed = 0) ?(feas_tol = 1e-7)
    ?(max_iter = 4000) p =
  let run =
    match method_ with
    | Penalty -> solve_penalty ~max_iter p
    | Augmented_lagrangian -> solve_auglag ~max_iter p
  in
  let candidates = List.map run (start_points ~starts ~seed p) in
  let solutions = List.map (mk_solution ~feas_tol p) candidates in
  let feasible = List.filter (fun s -> s.max_violation <= feas_tol) solutions in
  match feasible with
  | [] ->
    let best =
      List.fold_left
        (fun acc s -> if s.max_violation < acc.max_violation then s else acc)
        (List.hd solutions) (List.tl solutions)
    in
    Infeasible best
  | s :: rest ->
    let best =
      List.fold_left
        (fun acc s ->
           if s.objective_value < acc.objective_value then s else acc)
        s rest
    in
    Feasible best
