(** One-dimensional optimisation and root finding. *)

val golden_section :
  ?tol:float -> ?max_iter:int -> (float -> float) -> float -> float -> float
(** [golden_section f lo hi] minimises a unimodal [f] on [\[lo, hi\]];
    returns the minimiser. @raise Invalid_argument when [lo > hi]. *)

val bisect :
  ?tol:float -> ?max_iter:int -> (float -> float) -> float -> float -> float
(** [bisect f lo hi] finds a root of [f] given [f lo] and [f hi] of opposite
    sign. @raise Invalid_argument when the signs agree. *)

val minimize_scan :
  ?points:int -> (float -> float) -> float -> float -> float
(** Coarse grid scan followed by golden-section refinement around the best
    cell — robust for non-unimodal 1-D objectives. *)
