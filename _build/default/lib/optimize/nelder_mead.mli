(** Derivative-free simplex minimisation (Nelder–Mead 1965), the inner
    solver of the constrained-repair NLPs. Robust to the mild
    non-smoothness introduced by penalty terms. *)

type result = {
  x : float array;
  f : float;
  iterations : int;
  converged : bool;
}

val minimize :
  ?max_iter:int ->
  ?tol:float ->
  ?initial_step:float ->
  (float array -> float) ->
  float array ->
  result
(** [minimize f x0] from the given start point; the initial simplex places
    one vertex at [x0] and perturbs each coordinate by [initial_step]
    (default 0.1, scaled up for large coordinates).
    @raise Invalid_argument on an empty start point. *)
