type result = {
  x : float array;
  f : float;
  iterations : int;
  converged : bool;
}

(* Standard coefficients: reflection 1, expansion 2, contraction 1/2,
   shrink 1/2. *)
let alpha = 1.0
let gamma = 2.0
let rho = 0.5
let sigma = 0.5

let minimize ?(max_iter = 5000) ?(tol = 1e-12) ?(initial_step = 0.1) f x0 =
  let n = Array.length x0 in
  if n = 0 then invalid_arg "Nelder_mead.minimize: empty start point";
  (* n+1 vertices *)
  let vertex i =
    if i = 0 then Array.copy x0
    else begin
      let v = Array.copy x0 in
      let j = i - 1 in
      let step =
        if Float.abs v.(j) > 1.0 then initial_step *. Float.abs v.(j)
        else initial_step
      in
      v.(j) <- v.(j) +. step;
      v
    end
  in
  let simplex = Array.init (n + 1) vertex in
  let values = Array.map f simplex in
  let order () =
    let idx = Array.init (n + 1) Fun.id in
    Array.sort (fun i j -> Float.compare values.(i) values.(j)) idx;
    let s2 = Array.map (fun i -> simplex.(i)) idx in
    let v2 = Array.map (fun i -> values.(i)) idx in
    Array.blit s2 0 simplex 0 (n + 1);
    Array.blit v2 0 values 0 (n + 1)
  in
  let centroid () =
    (* of all but the worst vertex *)
    let c = Array.make n 0.0 in
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        c.(j) <- c.(j) +. (simplex.(i).(j) /. float_of_int n)
      done
    done;
    c
  in
  let combine c w coeff =
    Array.init n (fun j -> c.(j) +. (coeff *. (c.(j) -. w.(j))))
  in
  let iter = ref 0 in
  let converged = ref false in
  order ();
  while (not !converged) && !iter < max_iter do
    let spread = Float.abs (values.(n) -. values.(0)) in
    let size =
      let acc = ref 0.0 in
      for j = 0 to n - 1 do
        acc := Float.max !acc (Float.abs (simplex.(n).(j) -. simplex.(0).(j)))
      done;
      !acc
    in
    if spread < tol && size < sqrt tol then converged := true
    else begin
      let c = centroid () in
      let worst = simplex.(n) in
      let xr = combine c worst alpha in
      let fr = f xr in
      if fr < values.(0) then begin
        (* try expansion *)
        let xe = combine c worst gamma in
        let fe = f xe in
        if fe < fr then begin
          simplex.(n) <- xe;
          values.(n) <- fe
        end
        else begin
          simplex.(n) <- xr;
          values.(n) <- fr
        end
      end
      else if fr < values.(n - 1) then begin
        simplex.(n) <- xr;
        values.(n) <- fr
      end
      else begin
        (* contraction (outside if fr better than worst, else inside) *)
        let xc =
          if fr < values.(n) then combine c worst (alpha *. rho)
          else combine c worst (-.rho)
        in
        let fc = f xc in
        if fc < Float.min fr values.(n) then begin
          simplex.(n) <- xc;
          values.(n) <- fc
        end
        else begin
          (* shrink toward the best vertex *)
          for i = 1 to n do
            simplex.(i) <-
              Array.init n (fun j ->
                  simplex.(0).(j) +. (sigma *. (simplex.(i).(j) -. simplex.(0).(j))));
            values.(i) <- f simplex.(i)
          done
        end
      end;
      order ();
      incr iter
    end
  done;
  { x = Array.copy simplex.(0); f = values.(0); iterations = !iter; converged = !converged }
