(** Arbitrary-precision signed integers.

    Implemented as sign-magnitude with little-endian limbs in base [2^31]
    (safe on 63-bit native ints). Division uses Knuth's Algorithm D.

    This module exists because the sealed build environment has no [zarith];
    exact integer arithmetic is required by {!Tml_rational} and, through it,
    by the parametric model-checking engine. *)

type t

(** {1 Constants and conversions} *)

val zero : t
val one : t
val two : t
val minus_one : t

val of_int : int -> t

val to_int_opt : t -> int option
(** [to_int_opt n] is [Some i] when [n] fits in a native [int]. *)

val to_int_exn : t -> int
(** @raise Failure when the value does not fit in a native [int]. *)

val of_string : string -> t
(** Parses an optionally-signed decimal literal. Underscores are allowed as
    digit separators. @raise Invalid_argument on malformed input. *)

val of_string_opt : string -> t option
val to_string : t -> string

val to_float : t -> float
(** Nearest float (may overflow to infinity). *)

(** {1 Queries} *)

val sign : t -> int
(** [-1], [0] or [1]. *)

val is_zero : t -> bool
val is_one : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val num_bits : t -> int
(** Bits in the magnitude; [num_bits zero = 0]. *)

(** {1 Arithmetic} *)

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val succ : t -> t
val pred : t -> t

val divmod : t -> t -> t * t
(** [divmod a b] is [(q, r)] with [a = q*b + r], truncation toward zero and
    [sign r = sign a] (the convention of [Stdlib.( / )]).
    @raise Division_by_zero when [b] is zero. *)

val div : t -> t -> t
val rem : t -> t -> t

val ediv_rem : t -> t -> t * t
(** Euclidean division: remainder is always non-negative. *)

val gcd : t -> t -> t
(** Non-negative greatest common divisor; [gcd zero zero = zero]. *)

val lcm : t -> t -> t

val pow : t -> int -> t
(** [pow b e] for [e >= 0]. @raise Invalid_argument on negative exponent. *)

val shift_left : t -> int -> t
val shift_right : t -> int -> t
(** Arithmetic shift on the magnitude (floor for negatives is not needed by
    clients; this truncates the magnitude toward zero). *)

val mul_int : t -> int -> t
val add_int : t -> int -> t

(** {1 Operators and printing} *)

val ( + ) : t -> t -> t
val ( - ) : t -> t -> t
val ( * ) : t -> t -> t
val ( / ) : t -> t -> t
val ( ~- ) : t -> t

val pp : Format.formatter -> t -> unit
