type params = {
  n : int;
  ignore_field_station : float;
  ignore_other : float;
}

(* Calibrated so that E[attempts] ≈ 47 for the 3×3 grid: R<=100 holds,
   R<=40 is repairable by lowering ignore probabilities within [0, 0.1],
   and R<=19 is not (the best reachable value is ≈ 21.4). *)
let default_params =
  { n = 3; ignore_field_station = 0.895; ignore_other = 0.94 }

let validate p =
  if p.n < 2 then invalid_arg "Wsn: grid side must be >= 2";
  let ok g = g >= 0.0 && g < 1.0 in
  if not (ok p.ignore_field_station && ok p.ignore_other) then
    invalid_arg "Wsn: ignore probabilities must lie in [0, 1)"

let node_id p row col =
  if row < 1 || row > p.n || col < 1 || col > p.n then
    invalid_arg (Printf.sprintf "Wsn.node_id: (%d,%d) outside %dx%d" row col p.n p.n);
  ((row - 1) * p.n) + (col - 1)

let is_field_station_row p row = row = 1 || row = p.n

let coords p id = ((id / p.n) + 1, (id mod p.n) + 1)

let ignore_prob p id =
  let row, _ = coords p id in
  if is_field_station_row p row then p.ignore_field_station else p.ignore_other

(* Neighbours one step closer to the station corner (1,1). *)
let targets p id =
  let row, col = coords p id in
  let up = if row > 1 then [ node_id p (row - 1) col ] else [] in
  let left = if col > 1 then [ node_id p row (col - 1) ] else [] in
  up @ left

let delivered_state = 0 (* node_id p 1 1 *)

let transitions p =
  validate p;
  let states = p.n * p.n in
  List.concat
    (List.init states (fun id ->
         if id = delivered_state then [ (id, id, 1.0) ]
         else begin
           let ts = targets p id in
           let w = 1.0 /. float_of_int (List.length ts) in
           let moves =
             List.map (fun t -> (id, t, w *. (1.0 -. ignore_prob p t))) ts
           in
           let stay =
             List.fold_left (fun acc t -> acc +. (w *. ignore_prob p t)) 0.0 ts
           in
           if stay > 0.0 then (id, id, stay) :: moves else moves
         end))

let chain p =
  let states = p.n * p.n in
  let rewards =
    Array.init states (fun id -> if id = delivered_state then 0.0 else 1.0)
  in
  Dtmc.make ~n:states
    ~init:(node_id p p.n p.n)
    ~transitions:(transitions p)
    ~labels:[ ("delivered", [ delivered_state ]) ]
    ~rewards ()

let expected_attempts p =
  Check_dtmc.reachability_reward_from_init (chain p) (Prop "delivered")

let property x = Pctl.Reward (Pctl.Le, float_of_int x, Pctl.Prop "delivered")

let class_var p id =
  let row, _ = coords p id in
  if is_field_station_row p row then "p" else "q"

let repair_spec ?(bound = 0.1) p =
  validate p;
  if bound <= 0.0 then invalid_arg "Wsn.repair_spec: bound must be positive";
  let deltas =
    List.concat
      (List.init (p.n * p.n) (fun id ->
           if id = delivered_state then []
           else begin
             let ts = targets p id in
             let w = Ratio.of_ints 1 (List.length ts) in
             let per_target =
               List.map
                 (fun t ->
                    (* success probability w·(1-g(t)) gains w·v_class(t) *)
                    (id, t, Ratfun.mul (Ratfun.const w) (Ratfun.var (class_var p t))))
                 ts
             in
             let self_delta =
               List.fold_left
                 (fun acc (_, _, f) -> Ratfun.sub acc f)
                 Ratfun.zero per_target
             in
             (id, id, self_delta) :: per_target
           end))
  in
  {
    Model_repair.variables = [ ("p", 0.0, bound); ("q", 0.0, bound) ];
    deltas;
  }

let observation_groups rng p ~count =
  validate p;
  let states = p.n * p.n in
  let success = ref [] and fail_fs = ref [] and fail_other = ref [] in
  for _ = 1 to count do
    (* uniform random non-delivered position *)
    let id = 1 + Prng.int rng (states - 1) in
    let ts = targets p id in
    let t = List.nth ts (Prng.int rng (List.length ts)) in
    let g = ignore_prob p t in
    if Prng.float rng < g then begin
      (* ignored: message stays *)
      let tr = Trace.of_states [ id; id ] in
      let row, _ = coords p t in
      if is_field_station_row p row then fail_fs := tr :: !fail_fs
      else fail_other := tr :: !fail_other
    end
    else success := Trace.of_states [ id; t ] :: !success
  done;
  [ ("success", !success);
    ("fail_field_station", !fail_fs);
    ("fail_other", !fail_other);
  ]
