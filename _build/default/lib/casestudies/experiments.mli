(** Reproduction driver for the paper's evaluation (§V) — one entry per
    experiment in DESIGN.md's index. The same code backs the CLI's
    [experiments] command and the benchmark harness, so EXPERIMENTS.md rows
    are regenerated from a single source of truth. *)

type row = {
  id : string;  (** E1 .. E6, F1 *)
  description : string;
  paper : string;  (** what the paper reports *)
  measured : string;  (** what this implementation measures *)
  ok : bool;  (** whether the qualitative shape criterion holds *)
}

val e1 : unit -> row
(** §V-A.1 "Model satisfies property": R ≤ 100 holds without repair. *)

val e2 : unit -> row
(** §V-A.1 "Model Repair gives feasible solution": X = 40. *)

val e3 : unit -> row
(** §V-A.1 "Model Repair gives infeasible solution": X = 19. *)

val e4 : ?observations:int -> ?seed:int -> unit -> row
(** §V-A.2 Data Repair: X = 19 via drop fractions (default 3000
    observations, seed 42). *)

val e5 : unit -> row
(** §V-B Reward Repair: IRL → unsafe optimal policy → repaired θ → safe
    policy. *)

val e6 : ?trajectories:int -> ?seed:int -> unit -> row
(** Prop. 4 projection: violating-trajectory mass → 0, satisfying ratios
    preserved. *)

val f1 : unit -> row
(** Fig. 1 structural reproduction of the car MDP. *)

val all : ?quick:bool -> unit -> row list
(** Every experiment; [quick] shrinks E4/E6 workloads. *)

val print_rows : Format.formatter -> row list -> unit
(** Render as an aligned paper-vs-measured table. *)
