(** §V-B case study: obstacle avoidance controller (Fig. 1).

    Eleven states. S0–S4 form the right lane (S4 = target sink, reached
    after safely overtaking), S5–S9 the left lane, S2 is the van (collision,
    unsafe), S10 is off-road / failed-to-return (unsafe sink). Actions:
    ["fwd"] (action 0), ["left"] (action 1, S_i → S_{i+5}) and ["right"]
    (action 2, S_j → S_{j−5}); all transitions deterministic.

    Features (paper's φ1–φ3): lane indicator, normalised distance to the
    nearest unsafe state, and target indicator. The expert demonstration
    overtakes via the left lane:
    (S0,fwd)(S1,left)(S6,fwd)(S7,fwd)(S8,right)(S3,fwd) → S4. *)

val collision_state : int
(** S2, the van. *)

val offroad_state : int
(** S10. *)

val target_state : int
(** S4. *)

val mdp : unit -> Mdp.t
(** Labels: ["unsafe"] = {S2, S10}, ["target"] = {S4}, ["left_lane"] =
    {S5..S9}, ["right_lane"] = {S0..S4}. *)

val expert_trace : unit -> Trace.t
(** The paper's expert policy rollout. *)

val expert_traces : int -> Trace.t list
(** [expert_traces k] repeats the demonstration [k] times (IRL input). *)

val safety_rule : Trace_logic.t
(** "Never visit S2 or S10". *)

val unsafe_q_constraint : Reward_repair.q_constraint
(** The §V-B repair constraint [Q(S1, left) > Q(S1, fwd)] (avoid driving
    into the van). *)

val paper_learned_theta : float array
(** θ = (0.38, 0.32, 0.18) as reported by the paper for MaxEnt IRL on the
    expert demonstration — used as a reference point in benches. *)

val policy_visits_unsafe : Mdp.t -> Mdp.policy -> bool
(** Whether the deterministic rollout of the policy from S0 reaches an
    unsafe state within 25 steps. *)
