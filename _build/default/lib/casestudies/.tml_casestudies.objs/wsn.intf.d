lib/casestudies/wsn.mli: Dtmc Model_repair Pctl Prng Trace
