lib/casestudies/car.ml: Array Fun List Mdp Reward_repair Trace Trace_logic
