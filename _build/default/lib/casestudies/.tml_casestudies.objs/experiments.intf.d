lib/casestudies/experiments.mli: Format
