lib/casestudies/wsn.ml: Array Check_dtmc Dtmc List Model_repair Pctl Printf Prng Ratfun Ratio Trace
