lib/casestudies/car.mli: Mdp Reward_repair Trace Trace_logic
