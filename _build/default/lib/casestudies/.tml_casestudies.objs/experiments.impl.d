lib/casestudies/experiments.ml: Array Car Check_dtmc Data_repair Float Format Fun Irl List Mdp Model_repair Option Printf Prng Ratio Reward_repair String Trace Trace_logic Value Wsn
