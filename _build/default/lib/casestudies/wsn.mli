(** §V-A case study: query-routing controller in a wireless sensor network.

    An n×n grid of nodes; a query injected at the far field corner [n_nn]
    must reach the station corner [n_11] by peer-to-peer forwarding. Each
    forwarding attempt targets a neighbour one step closer to the station
    (chosen uniformly when two are available); the receiving node {e ignores}
    the message with a node-class-dependent probability, in which case the
    holder retries. The model tracks the message's location — the
    "message-location chain" induced by the paper's composed node MDPs —
    with reward 1 per attempt, so
    [R{attempts} ≤ X \[F delivered\]] is the paper's property.

    Node classes mirror the paper's repair parameterisation: {e field/station
    nodes} (first and last grid rows — the paper's controllable class with
    correction [p]) and {e other nodes} (correction [q]). *)

type params = {
  n : int;  (** grid side, ≥ 2 *)
  ignore_field_station : float;  (** ignore probability, first/last rows *)
  ignore_other : float;  (** ignore probability, middle rows *)
}

val default_params : params
(** n = 3 with ignore probabilities calibrated so the §V-A experiments
    reproduce: [R ≤ 100] holds, [R ≤ 40] needs (and admits) Model Repair
    within the correction bounds, [R ≤ 19] is infeasible. *)

val node_id : params -> int -> int -> int
(** [node_id p row col] with 1-based coordinates, row-major. *)

val is_field_station_row : params -> int -> bool
(** Whether a 1-based row index belongs to the field/station class. *)

val chain : params -> Dtmc.t
(** The message-location chain. State [node_id p 1 1] is labelled
    ["delivered"] (absorbing); every other state has reward 1 (one
    forwarding attempt per step). The initial state is the far corner. *)

val expected_attempts : params -> float
(** Expected number of attempts to deliver — the checked value of
    [R \[F delivered\]]. *)

val property : int -> Pctl.state_formula
(** [property x] = [R <= x \[F delivered\]]. *)

val repair_spec : ?bound:float -> params -> Model_repair.spec
(** The §V-A.1 parameterisation: correction variable [p] lowers the ignore
    probability of field/station nodes, [q] of other nodes, both within
    [\[0, bound\]] (default 0.1). Success edges gain [w·v], the matching
    self-loop loses it, keeping rows stochastic. *)

val observation_groups :
  Prng.t -> params -> count:int -> (string * Trace.t list) list
(** Single-transition observation traces (the §V-A.2 "data traces of message
    forwarding / query dropping"), sampled by the true two-stage process
    (uniform position, uniform neighbour target, Bernoulli ignore) and
    partitioned into the §V-A.2 groups: ["success"] (forward succeeded),
    ["fail_field_station"] (ignored by a field/station node) and
    ["fail_other"]. Dropping failure observations raises the learned
    per-attempt success probabilities, which is what makes the [R ≤ 19]
    property reachable by Data Repair when Model Repair is not enough. *)
