let collision_state = 2
let offroad_state = 10
let target_state = 4

(* Grid geometry: right lane = row 0, columns 0..4 (S0..S4);
   left lane = row 1, columns 0..4 (S5..S9); S10 off-road. *)
let position s = if s <= 4 then (0, s) else (1, s - 5)

let manhattan (r1, c1) (r2, c2) = abs (r1 - r2) + abs (c1 - c2)

(* φ2: normalised distance to the nearest unsafe state (the van S2; the
   off-road state has distance 0 to itself). *)
let distance_feature s =
  if s = offroad_state then 0.0
  else
    float_of_int (manhattan (position s) (position collision_state)) /. 3.0

let features s =
  let lane = if s = offroad_state then 0.0 else if s <= 4 then 1.0 else 0.0 in
  let target = if s = target_state then 1.0 else 0.0 in
  [| lane; distance_feature s; target |]

let mdp () =
  let fwd s =
    if s <= 3 then s + 1 (* S1 fwd hits the van at S2; S3 fwd reaches S4 *)
    else if s <= 8 then s + 1
    else offroad_state (* S9: failed to return to the right lane *)
  in
  let actions =
    List.concat_map
      (fun s ->
         if s = target_state || s = offroad_state then
           [ (s, "stay", [ (s, 1.0) ]) ]
         else if s <= 4 then
           (* right lane: fwd, left (to s+5), right (off-road) *)
           [ (s, "fwd", [ (fwd s, 1.0) ]);
             (s, "left", [ (s + 5, 1.0) ]);
             (s, "right", [ (offroad_state, 1.0) ]);
           ]
         else
           (* left lane: fwd, right (back to s-5), left (off-road) *)
           [ (s, "fwd", [ (fwd s, 1.0) ]);
             (s, "right", [ (s - 5, 1.0) ]);
             (s, "left", [ (offroad_state, 1.0) ]);
           ])
      (List.init 11 Fun.id)
  in
  Mdp.make ~n:11 ~init:0 ~actions
    ~labels:
      [ ("unsafe", [ collision_state; offroad_state ]);
        ("target", [ target_state ]);
        ("right_lane", [ 0; 1; 2; 3; 4 ]);
        ("left_lane", [ 5; 6; 7; 8; 9 ]);
      ]
    ~features:(Array.init 11 features)
    ()

let expert_trace () =
  Trace.make
    [ (0, "fwd"); (1, "left"); (6, "fwd"); (7, "fwd"); (8, "right"); (3, "fwd") ]
    4

let expert_traces k = List.init k (fun _ -> expert_trace ())

let safety_rule = Trace_logic.avoids_states [ collision_state; offroad_state ]

let unsafe_q_constraint =
  { Reward_repair.state = 1; better = "left"; worse = "fwd"; margin = 1e-4 }

let paper_learned_theta = [| 0.38; 0.32; 0.18 |]

let policy_visits_unsafe m policy =
  let rec go s steps =
    if s = collision_state || s = offroad_state then true
    else if steps > 25 then false
    else
      match Mdp.find_action m s policy.(s) with
      | None -> false
      | Some a -> (
          match a.Mdp.dist with
          | [ (d, _) ] -> if d = s then false else go d (steps + 1)
          | dist ->
            List.exists (fun (d, p) -> p > 0.0 && go d (steps + 1)) dist)
  in
  go (Mdp.init_state m) 0
