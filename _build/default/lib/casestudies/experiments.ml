type row = {
  id : string;
  description : string;
  paper : string;
  measured : string;
  ok : bool;
}

let e1 () =
  let p = Wsn.default_params in
  let v = Check_dtmc.check_verbose (Wsn.chain p) (Wsn.property 100) in
  let value = Option.value ~default:Float.nan v.Check_dtmc.value in
  {
    id = "E1";
    description = "WSN: R{attempts} <= 100 [F delivered] without repair";
    paper = "holds (PRISM: initial MDP satisfies the property)";
    measured = Printf.sprintf "holds = %b, E[attempts] = %.2f" v.Check_dtmc.holds value;
    ok = v.Check_dtmc.holds && value <= 100.0;
  }

let e2 () =
  let p = Wsn.default_params in
  match Model_repair.repair (Wsn.chain p) (Wsn.property 40) (Wsn.repair_spec p) with
  | Model_repair.Repaired r ->
    let pv = List.assoc "p" r.Model_repair.assignment in
    let qv = List.assoc "q" r.Model_repair.assignment in
    {
      id = "E2";
      description = "WSN: Model Repair for X = 40 (lower ignore probabilities)";
      paper = "feasible: p = 0.045, q = 0.081";
      measured =
        Printf.sprintf "feasible: p = %.4f, q = %.4f, E' = %.2f, verified = %b"
          pv qv r.Model_repair.achieved_value r.Model_repair.verified;
      ok =
        pv > 0.0 && qv > 0.0 && pv < 0.1 && qv < 0.1 && qv >= pv
        && r.Model_repair.verified;
    }
  | Model_repair.Already_satisfied _ ->
    { id = "E2"; description = "WSN Model Repair X=40"; paper = "feasible";
      measured = "already satisfied (unexpected)"; ok = false }
  | Model_repair.Infeasible _ ->
    { id = "E2"; description = "WSN Model Repair X=40"; paper = "feasible";
      measured = "infeasible (unexpected)"; ok = false }

let e3 () =
  let p = Wsn.default_params in
  match Model_repair.repair (Wsn.chain p) (Wsn.property 19) (Wsn.repair_spec p) with
  | Model_repair.Infeasible { min_violation } ->
    {
      id = "E3";
      description = "WSN: Model Repair for X = 19";
      paper = "infeasible (parametric model checking + AMPL report no solution)";
      measured =
        Printf.sprintf "infeasible, best residual %.2f attempts above the bound"
          min_violation;
      ok = min_violation > 0.0;
    }
  | _ ->
    { id = "E3"; description = "WSN Model Repair X=19"; paper = "infeasible";
      measured = "feasible (unexpected)"; ok = false }

let e4 ?(observations = 3000) ?(seed = 42) () =
  let p = Wsn.default_params in
  let rng = Prng.create seed in
  let groups = Wsn.observation_groups rng p ~count:observations in
  let rewards = Array.init 9 (fun s -> if s = 0 then Ratio.zero else Ratio.one) in
  match
    Data_repair.repair ~n:9 ~init:8
      ~labels:[ ("delivered", [ 0 ]) ]
      ~rewards ~starts:6 (Wsn.property 19)
      (Data_repair.spec ~pinned:[ "success" ] groups)
  with
  | Data_repair.Repaired r ->
    let d g = List.assoc g r.Data_repair.drop_fractions in
    {
      id = "E4";
      description = "WSN: Data Repair for X = 19 (drop failure observations)";
      paper = "feasible: p = 0.0133, q = 0.0257, r = 0.0287 (small drops)";
      measured =
        Printf.sprintf
          "feasible: drop(success) = %.3f, drop(fail_fs) = %.3f, \
           drop(fail_other) = %.3f, E' = %.2f, verified = %b"
          (d "success") (d "fail_field_station") (d "fail_other")
          r.Data_repair.achieved_value r.Data_repair.verified;
      ok =
        d "success" = 0.0
        && d "fail_field_station" > 0.0
        && d "fail_other" > 0.0
        && r.Data_repair.verified;
    }
  | _ ->
    { id = "E4"; description = "WSN Data Repair X=19"; paper = "feasible";
      measured = "no repair found (unexpected)"; ok = false }

let e5 () =
  let m = Car.mdp () in
  let theta = Irl.learn m (Car.expert_traces 5) in
  let m0 = Irl.apply_reward m theta in
  let pi0, _ = Value.optimal_policy ~gamma:0.9 m0 in
  let unsafe_before = pi0.(1) = "fwd" && Car.policy_visits_unsafe m0 pi0 in
  match
    Reward_repair.repair_q ~gamma:0.9 m ~theta
      ~constraints:[ Car.unsafe_q_constraint ]
  with
  | Reward_repair.Repaired r ->
    let m' = Irl.apply_reward m r.Reward_repair.theta in
    let safe_after =
      r.Reward_repair.policy.(1) = "left"
      && not (Car.policy_visits_unsafe m' r.Reward_repair.policy)
    in
    {
      id = "E5";
      description = "Car: Reward Repair (min ||dtheta|| s.t. Q(S1,left) > Q(S1,fwd))";
      paper =
        "learned theta = (0.38, 0.32, 0.18) gives unsafe policy (S1 -> fwd \
         hits van); repaired reward's optimal policy avoids unsafe states";
      measured =
        Printf.sprintf
          "theta = (%.2f, %.2f, %.2f) unsafe-before = %b; repaired theta = \
           (%.2f, %.2f, %.2f), S1 -> %s, safe-after = %b"
          theta.(0) theta.(1) theta.(2) unsafe_before
          r.Reward_repair.theta.(0) r.Reward_repair.theta.(1)
          r.Reward_repair.theta.(2) r.Reward_repair.policy.(1) safe_after;
      ok = unsafe_before && safe_after && r.Reward_repair.verified;
    }
  | _ ->
    { id = "E5"; description = "Car Reward Repair"; paper = "feasible";
      measured = "no repair found (unexpected)"; ok = false }

let e6 ?(trajectories = 300) ?(seed = 7) () =
  let m = Car.mdp () in
  let theta = Irl.learn m (Car.expert_traces 5) in
  let rng = Prng.create seed in
  let trajs =
    Reward_repair.sample_trajectories rng m ~theta ~horizon:8 ~count:trajectories
  in
  let labels = Mdp.has_label m in
  let violating tr = not (Trace_logic.eval ~labels tr Car.safety_rule) in
  let mass weighted =
    List.fold_left
      (fun acc (tr, w) -> if violating tr then acc +. w else acc)
      0.0 weighted
  in
  let before = mass (Reward_repair.projection_weights m ~theta ~rules:[] trajs) in
  let after =
    mass
      (Reward_repair.projection_weights m ~theta
         ~rules:[ (Car.safety_rule, 10.0) ]
         trajs)
  in
  let theta' =
    Reward_repair.repair_by_projection m ~theta
      ~rules:[ (Car.safety_rule, 10.0) ]
      trajs
  in
  {
    id = "E6";
    description = "Car: Prop. 4 projection Q(U) ∝ P(U)·exp(-λ(1-φ(U)))";
    paper =
      "violating paths get probability 0 for large λ; satisfying paths keep \
       their mass";
    measured =
      Printf.sprintf
        "violating mass %.3f -> %.5f (λ = 10); re-estimated distance weight \
         %.3f -> %.3f"
        before after theta.(1) theta'.(1);
    ok = before > 0.1 && after < 0.01 && theta'.(1) > theta.(1);
  }

let f1 () =
  let m = Car.mdp () in
  let goes s a d =
    match Mdp.find_action m s a with
    | Some act -> List.assoc_opt d act.Mdp.dist = Some 1.0
    | None -> false
  in
  let checks =
    [ Mdp.num_states m = 11;
      Mdp.states_with_label m "unsafe" = [ 2; 10 ];
      Mdp.states_with_label m "target" = [ 4 ];
      goes 1 "fwd" 2;
      goes 1 "left" 6;
      goes 8 "right" 3;
      goes 9 "fwd" 10;
      goes 9 "right" 4;
      List.length (Mdp.actions_of m 0) = 3;
      List.length (Mdp.actions_of m 4) = 1;
      Float.is_finite (Trace.log_probability m (Car.expert_trace ()));
    ]
  in
  let passed = List.length (List.filter Fun.id checks) in
  {
    id = "F1";
    description = "Car MDP structure (Fig. 1: 11 states, 3 actions, sinks)";
    paper = "states S0-S10, actions 0/1/2, S2 & S10 unsafe, S4 target sink";
    measured = Printf.sprintf "%d/%d structural checks pass" passed (List.length checks);
    ok = passed = List.length checks;
  }

let all ?(quick = false) () =
  let observations = if quick then 1200 else 3000 in
  let trajectories = if quick then 120 else 300 in
  [ e1 (); e2 (); e3 (); e4 ~observations (); e5 (); e6 ~trajectories (); f1 () ]

let print_rows fmt rows =
  Format.fprintf fmt "%-4s %-4s %s@\n" "id" "ok" "experiment";
  Format.fprintf fmt "---- ---- %s@\n" (String.make 66 '-');
  List.iter
    (fun r ->
       Format.fprintf fmt "%-4s %-4s %s@\n" r.id
         (if r.ok then "PASS" else "FAIL")
         r.description;
       Format.fprintf fmt "          paper:    %s@\n" r.paper;
       Format.fprintf fmt "          measured: %s@\n" r.measured)
    rows
