type t = {
  k : int;
  m : int;
  pi : float array;
  a : float array array; (* k x k *)
  b : float array array; (* k x m *)
}

let normalise_row what row =
  let total = Array.fold_left ( +. ) 0.0 row in
  Array.iter
    (fun p -> if p < 0.0 then invalid_arg (Printf.sprintf "Hmm: negative %s" what))
    row;
  if Float.abs (total -. 1.0) > 1e-9 then
    invalid_arg (Printf.sprintf "Hmm: %s row sums to %g" what total);
  Array.map (fun p -> p /. total) row

let make ~initial ~transition ~emission () =
  let k = Array.length initial in
  if k = 0 then invalid_arg "Hmm: need at least one hidden state";
  if Array.length transition <> k then invalid_arg "Hmm: transition height";
  let m =
    if Array.length emission <> k then invalid_arg "Hmm: emission height"
    else if k > 0 then Array.length emission.(0)
    else 0
  in
  if m = 0 then invalid_arg "Hmm: need at least one observation symbol";
  Array.iter
    (fun row -> if Array.length row <> k then invalid_arg "Hmm: transition width")
    transition;
  Array.iter
    (fun row -> if Array.length row <> m then invalid_arg "Hmm: emission width")
    emission;
  {
    k;
    m;
    pi = normalise_row "initial" initial;
    a = Array.map (normalise_row "transition") transition;
    b = Array.map (normalise_row "emission") emission;
  }

let num_states t = t.k
let num_symbols t = t.m
let initial t i = t.pi.(i)
let transition t i j = t.a.(i).(j)
let emission t i o = t.b.(i).(o)

let simulate rng t ~len =
  if len <= 0 then invalid_arg "Hmm.simulate: non-positive length";
  let rec go state n hidden obs =
    if n = 0 then (List.rev hidden, List.rev obs)
    else begin
      let o = Prng.categorical rng t.b.(state) in
      let next = Prng.categorical rng t.a.(state) in
      go next (n - 1) (state :: hidden) (o :: obs)
    end
  in
  let s0 = Prng.categorical rng t.pi in
  go s0 len [] []

let check_obs t obs =
  if obs = [] then invalid_arg "Hmm: empty observation sequence";
  List.iter
    (fun o ->
       if o < 0 || o >= t.m then
         invalid_arg (Printf.sprintf "Hmm: observation symbol %d out of range" o))
    obs

(* Scaled forward-backward with an optional mask on hidden states.
   Returns (alphas, betas, scales, loglik). *)
let forward_backward_masked t ~allowed obs =
  check_obs t obs;
  let obs = Array.of_list obs in
  let len = Array.length obs in
  let alpha = Array.make_matrix len t.k 0.0 in
  let beta = Array.make_matrix len t.k 0.0 in
  let scale = Array.make len 0.0 in
  (* forward *)
  for i = 0 to t.k - 1 do
    if allowed i then alpha.(0).(i) <- t.pi.(i) *. t.b.(i).(obs.(0))
  done;
  let s0 = Array.fold_left ( +. ) 0.0 alpha.(0) in
  if s0 <= 0.0 then
    invalid_arg "Hmm: no allowed hidden path explains the sequence";
  scale.(0) <- s0;
  for i = 0 to t.k - 1 do
    alpha.(0).(i) <- alpha.(0).(i) /. s0
  done;
  for u = 1 to len - 1 do
    for j = 0 to t.k - 1 do
      if allowed j then begin
        let acc = ref 0.0 in
        for i = 0 to t.k - 1 do
          acc := !acc +. (alpha.(u - 1).(i) *. t.a.(i).(j))
        done;
        alpha.(u).(j) <- !acc *. t.b.(j).(obs.(u))
      end
    done;
    let s = Array.fold_left ( +. ) 0.0 alpha.(u) in
    if s <= 0.0 then
      invalid_arg "Hmm: no allowed hidden path explains the sequence";
    scale.(u) <- s;
    for j = 0 to t.k - 1 do
      alpha.(u).(j) <- alpha.(u).(j) /. s
    done
  done;
  (* backward *)
  for i = 0 to t.k - 1 do
    beta.(len - 1).(i) <- (if allowed i then 1.0 else 0.0)
  done;
  for u = len - 2 downto 0 do
    for i = 0 to t.k - 1 do
      if allowed i then begin
        let acc = ref 0.0 in
        for j = 0 to t.k - 1 do
          if allowed j then
            acc :=
              !acc +. (t.a.(i).(j) *. t.b.(j).(obs.(u + 1)) *. beta.(u + 1).(j))
        done;
        beta.(u).(i) <- !acc /. scale.(u + 1)
      end
    done
  done;
  let loglik = Array.fold_left (fun acc s -> acc +. log s) 0.0 scale in
  (alpha, beta, scale, loglik, obs)

let all_allowed _ = true

let log_likelihood t obs =
  let _, _, _, ll, _ = forward_backward_masked t ~allowed:all_allowed obs in
  ll

let gammas_of (alpha, beta, _scale, _ll, _obs) t len =
  Array.init len (fun u ->
      let row = Array.init t.k (fun i -> alpha.(u).(i) *. beta.(u).(i)) in
      let total = Array.fold_left ( +. ) 0.0 row in
      if total > 0.0 then Array.map (fun v -> v /. total) row else row)

let forward_backward t obs =
  let ((_, _, _, ll, o) as fb) = forward_backward_masked t ~allowed:all_allowed obs in
  (gammas_of fb t (Array.length o), ll)

let posterior_masked t ~forbidden obs =
  let allowed i = not (forbidden i) in
  let ((_, _, _, ll, o) as fb) = forward_backward_masked t ~allowed obs in
  (gammas_of fb t (Array.length o), ll)

type stats = {
  gamma : float array array;
  xi_sum : float array array;
  loglik : float;
}

let expected_statistics ?(forbidden = fun _ -> false) t obs =
  let allowed i = not (forbidden i) in
  let ((alpha, beta, scale, loglik, o) as fb) =
    forward_backward_masked t ~allowed obs
  in
  let len = Array.length o in
  let gamma = gammas_of fb t len in
  let xi_sum = Array.make_matrix t.k t.k 0.0 in
  for u = 0 to len - 2 do
    let total = ref 0.0 in
    let cell = Array.make_matrix t.k t.k 0.0 in
    for i = 0 to t.k - 1 do
      if allowed i then
        for j = 0 to t.k - 1 do
          if allowed j then begin
            let v =
              alpha.(u).(i) *. t.a.(i).(j) *. t.b.(j).(o.(u + 1))
              *. beta.(u + 1).(j) /. scale.(u + 1)
            in
            cell.(i).(j) <- v;
            total := !total +. v
          end
        done
    done;
    if !total > 0.0 then
      for i = 0 to t.k - 1 do
        for j = 0 to t.k - 1 do
          xi_sum.(i).(j) <- xi_sum.(i).(j) +. (cell.(i).(j) /. !total)
        done
      done
  done;
  { gamma; xi_sum; loglik }

let viterbi t obs =
  check_obs t obs;
  let obs = Array.of_list obs in
  let len = Array.length obs in
  let delta = Array.make_matrix len t.k Float.neg_infinity in
  let back = Array.make_matrix len t.k 0 in
  let logz x = if x <= 0.0 then Float.neg_infinity else log x in
  for i = 0 to t.k - 1 do
    delta.(0).(i) <- logz t.pi.(i) +. logz t.b.(i).(obs.(0))
  done;
  for u = 1 to len - 1 do
    for j = 0 to t.k - 1 do
      let best = ref Float.neg_infinity and arg = ref 0 in
      for i = 0 to t.k - 1 do
        let v = delta.(u - 1).(i) +. logz t.a.(i).(j) in
        if v > !best then begin
          best := v;
          arg := i
        end
      done;
      delta.(u).(j) <- !best +. logz t.b.(j).(obs.(u));
      back.(u).(j) <- !arg
    done
  done;
  let last = ref 0 in
  for i = 1 to t.k - 1 do
    if delta.(len - 1).(i) > delta.(len - 1).(!last) then last := i
  done;
  let path = Array.make len 0 in
  path.(len - 1) <- !last;
  for u = len - 2 downto 0 do
    path.(u) <- back.(u + 1).(path.(u + 1))
  done;
  Array.to_list path

let pp fmt t =
  Format.fprintf fmt "HMM(%d hidden states, %d symbols)@\n" t.k t.m;
  Format.fprintf fmt "  pi = [%s]@\n"
    (String.concat "; " (Array.to_list (Array.map (Printf.sprintf "%.3f") t.pi)));
  Array.iteri
    (fun i row ->
       Format.fprintf fmt "  A[%d] = [%s]@\n" i
         (String.concat "; " (Array.to_list (Array.map (Printf.sprintf "%.3f") row))))
    t.a;
  Array.iteri
    (fun i row ->
       Format.fprintf fmt "  B[%d] = [%s]@\n" i
         (String.concat "; " (Array.to_list (Array.map (Printf.sprintf "%.3f") row))))
    t.b
