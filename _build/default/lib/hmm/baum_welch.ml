type progress = {
  iterations : int;
  log_likelihoods : float list;
}

let m_step ~pseudo_count k m sequences stats_list =
  let pi_acc = Array.make k pseudo_count in
  let a_acc = Array.make_matrix k k pseudo_count in
  let b_acc = Array.make_matrix k m pseudo_count in
  List.iter2
    (fun obs (stats : Hmm.stats) ->
       let obs = Array.of_list obs in
       Array.iteri
         (fun i g -> pi_acc.(i) <- pi_acc.(i) +. g)
         stats.Hmm.gamma.(0);
       for i = 0 to k - 1 do
         for j = 0 to k - 1 do
           a_acc.(i).(j) <- a_acc.(i).(j) +. stats.Hmm.xi_sum.(i).(j)
         done
       done;
       Array.iteri
         (fun u row ->
            Array.iteri
              (fun i g -> b_acc.(i).(obs.(u)) <- b_acc.(i).(obs.(u)) +. g)
              row)
         stats.Hmm.gamma)
    sequences stats_list;
  let normalise row =
    let total = Array.fold_left ( +. ) 0.0 row in
    Array.map (fun v -> v /. total) row
  in
  Hmm.make ~initial:(normalise pi_acc)
    ~transition:(Array.map normalise a_acc)
    ~emission:(Array.map normalise b_acc)
    ()

let run ?(iterations = 100) ?(tol = 1e-6) ?(pseudo_count = 1e-6) ~forbidden
    model sequences =
  if sequences = [] then invalid_arg "Baum_welch: no training sequences";
  let k = Hmm.num_states model and m = Hmm.num_symbols model in
  let rec go it model lls =
    let stats_list =
      List.map (Hmm.expected_statistics ~forbidden model) sequences
    in
    let ll =
      List.fold_left (fun acc (s : Hmm.stats) -> acc +. s.Hmm.loglik) 0.0 stats_list
    in
    let improved =
      match lls with prev :: _ -> ll -. prev > tol | [] -> true
    in
    if it >= iterations || not improved then
      (model, { iterations = it; log_likelihoods = List.rev (ll :: lls) })
    else begin
      let model' = m_step ~pseudo_count k m sequences stats_list in
      go (it + 1) model' (ll :: lls)
    end
  in
  go 0 model []

let learn ?iterations ?tol ?pseudo_count model sequences =
  run ?iterations ?tol ?pseudo_count ~forbidden:(fun _ -> false) model sequences

let learn_constrained ?iterations ?tol ?pseudo_count ~forbidden model sequences =
  run ?iterations ?tol ?pseudo_count ~forbidden model sequences
