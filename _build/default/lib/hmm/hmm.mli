(** Discrete hidden Markov models.

    The paper's §VII points out that for models with hidden state (HMMs,
    DBNs) the TML constraints move into the E-step of EM — this module and
    {!Baum_welch} implement that programme for HMMs: scaled
    forward–backward inference, Viterbi decoding, maximum-likelihood EM,
    and a constrained E-step that conditions the posterior on hidden
    trajectories staying outside a forbidden set. *)

type t

val make :
  initial:float array ->
  transition:float array array ->
  emission:float array array ->
  unit ->
  t
(** [make ~initial ~transition ~emission ()] with [k] hidden states and [m]
    observation symbols: [initial] has length [k], [transition] is [k×k],
    [emission] is [k×m]; all rows must sum to 1 (within 1e-9, re-normalised).
    @raise Invalid_argument on malformed input. *)

val num_states : t -> int
val num_symbols : t -> int
val initial : t -> int -> float
val transition : t -> int -> int -> float
val emission : t -> int -> int -> float

val simulate : Prng.t -> t -> len:int -> int list * int list
(** [(hidden, observations)], both of length [len]. *)

val log_likelihood : t -> int list -> float
(** Scaled-forward log-probability of an observation sequence.
    @raise Invalid_argument on an empty sequence or an out-of-range
    symbol. *)

val forward_backward : t -> int list -> float array array * float
(** [gammas, loglik]: [gammas.(t).(i) = P(hidden_t = i | observations)]. *)

val viterbi : t -> int list -> int list
(** Most likely hidden trajectory. *)

val posterior_masked :
  t -> forbidden:(int -> bool) -> int list -> float array array * float
(** Forward–backward over hidden paths that avoid [forbidden] states —
    the constrained E-step: [gammas] are posteriors conditioned on the
    trajectory-level constraint "never visit a forbidden state", and the
    returned log-likelihood is that of the constrained event.
    @raise Invalid_argument when no allowed path explains the sequence. *)

type stats = {
  gamma : float array array;  (** per-position state posteriors *)
  xi_sum : float array array;  (** expected transition counts, k×k *)
  loglik : float;
}

val expected_statistics : ?forbidden:(int -> bool) -> t -> int list -> stats
(** The E-step sufficient statistics for one sequence; with [forbidden],
    posteriors are conditioned on avoiding those hidden states (the
    constrained E-step of §VII). *)

val pp : Format.formatter -> t -> unit
