lib/hmm/hmm.mli: Format Prng
