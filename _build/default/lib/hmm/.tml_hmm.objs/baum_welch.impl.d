lib/hmm/baum_welch.ml: Array Hmm List
