lib/hmm/hmm.ml: Array Float Format List Printf Prng String
