lib/hmm/baum_welch.mli: Hmm
