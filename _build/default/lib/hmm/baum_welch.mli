(** Baum–Welch EM for HMMs, plain and constrained.

    {!learn} is standard maximum-likelihood EM. {!learn_constrained}
    implements the paper's §VII suggestion: the E-step posterior is
    conditioned on hidden trajectories avoiding a forbidden state set, so
    the M-step re-estimates parameters from constraint-respecting paths
    only — driving transition mass away from forbidden states while still
    explaining the observations. *)

type progress = {
  iterations : int;
  log_likelihoods : float list;  (** per EM iteration, oldest first *)
}

val learn :
  ?iterations:int ->
  ?tol:float ->
  ?pseudo_count:float ->
  Hmm.t ->
  int list list ->
  Hmm.t * progress
(** EM from the given starting model over observation sequences.
    [pseudo_count] (default 1e-6) smooths the M-step so no probability
    collapses to exactly 0. Log-likelihood is non-decreasing per iteration
    (a property the test suite checks).
    @raise Invalid_argument on empty input. *)

val learn_constrained :
  ?iterations:int ->
  ?tol:float ->
  ?pseudo_count:float ->
  forbidden:(int -> bool) ->
  Hmm.t ->
  int list list ->
  Hmm.t * progress
(** As {!learn}, with the constrained E-step. The starting model must give
    every sequence at least one allowed explanation.
    @raise Invalid_argument otherwise. *)
