lib/parametric/pdtmc.mli: Dtmc Format Ratfun Ratio
