lib/parametric/pquery.mli: Pctl Pdtmc Ratfun
