lib/parametric/elimination.mli: Pdtmc Ratfun
