lib/parametric/pquery.ml: Array Elimination List Pctl Pdtmc Ratfun
