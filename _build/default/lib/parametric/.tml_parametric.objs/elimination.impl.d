lib/parametric/elimination.ml: Array Fun Int List Map Option Pdtmc Printf Queue Ratfun Set
