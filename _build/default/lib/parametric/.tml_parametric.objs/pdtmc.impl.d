lib/parametric/pdtmc.ml: Array Dtmc Format Int List Map Option Printf Ratfun Ratio Set String
