(** Small descriptive-statistics helpers used by benchmarks and tests. *)

val mean : float array -> float
(** @raise Invalid_argument on empty input. *)

val variance : float array -> float
(** Unbiased (n-1) sample variance; 0 for singletons.
    @raise Invalid_argument on empty input. *)

val stddev : float array -> float

val quantile : float -> float array -> float
(** [quantile q xs] for [0 <= q <= 1], linear interpolation on sorted data.
    @raise Invalid_argument on empty input or q outside [0,1]. *)

val histogram : bins:int -> float array -> (float * int) array
(** Equal-width bins over the data range; returns (bin lower edge, count).
    @raise Invalid_argument when [bins <= 0] or input is empty. *)

val kl_divergence : float array -> float array -> float
(** [kl_divergence p q] = Σ p_i log(p_i/q_i); distributions must have equal
    length; zero entries of [p] contribute 0; a zero entry of [q] with
    non-zero [p] yields [infinity]. Inputs are normalised internally.
    @raise Invalid_argument on length mismatch or empty/negative input. *)

val total_variation : float array -> float array -> float
(** Half the L1 distance between normalised distributions. *)
