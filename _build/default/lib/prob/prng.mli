(** Deterministic, seedable pseudo-random numbers (SplitMix64).

    All stochastic components of the library (trace generation, simulation,
    multistart optimisation) draw from this module so that every experiment
    is reproducible from a seed. *)

type t

val create : int -> t
(** [create seed] — a fresh generator. Equal seeds give equal streams. *)

val split : t -> t
(** An independent generator derived from (and advancing) the parent. *)

val copy : t -> t

(** {1 Draws} *)

val bits64 : t -> int64
val float : t -> float
(** Uniform in [[0, 1)]. *)

val uniform : t -> float -> float -> float
(** Uniform in [[lo, hi)]. *)

val int : t -> int -> int
(** [int t n] uniform in [[0, n)]. @raise Invalid_argument when [n <= 0]. *)

val bool : t -> bool

val gaussian : t -> float
(** Standard normal (Box–Muller). *)

val categorical : t -> float array -> int
(** Index drawn proportionally to the given non-negative weights.
    @raise Invalid_argument if the weights are all zero or any is
    negative. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates. *)
