(* SplitMix64 (Steele, Lea, Flood 2014): tiny state, good quality,
   trivially splittable — ideal for reproducible simulations. *)

type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix (Int64.of_int seed) }

let bits64 t =
  t.state <- Int64.add t.state golden;
  mix t.state

let split t = { state = bits64 t }
let copy t = { state = t.state }

let float t =
  (* 53 high-quality bits -> [0,1). *)
  let bits = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let uniform t lo hi = lo +. ((hi -. lo) *. float t)

let int t n =
  if n <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* rejection-free for our purposes: modulo bias is negligible for n << 2^64 *)
  let v = Int64.rem (Int64.shift_right_logical (bits64 t) 1) (Int64.of_int n) in
  Int64.to_int v

let bool t = Int64.logand (bits64 t) 1L = 1L

let gaussian t =
  let rec draw () =
    let u = float t in
    if u <= 1e-300 then draw () else u
  in
  let u1 = draw () and u2 = float t in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let categorical t weights =
  let total =
    Array.fold_left
      (fun acc w ->
         if w < 0.0 then invalid_arg "Prng.categorical: negative weight";
         acc +. w)
      0.0 weights
  in
  if total <= 0.0 then invalid_arg "Prng.categorical: zero total weight";
  let target = float t *. total in
  let n = Array.length weights in
  let rec go i acc =
    if i = n - 1 then i
    else begin
      let acc = acc +. weights.(i) in
      if target < acc then i else go (i + 1) acc
    end
  in
  go 0 0.0

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
