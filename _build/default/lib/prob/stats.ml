let check_nonempty name xs =
  if Array.length xs = 0 then invalid_arg (name ^ ": empty input")

let mean xs =
  check_nonempty "Stats.mean" xs;
  Array.fold_left ( +. ) 0.0 xs /. float_of_int (Array.length xs)

let variance xs =
  check_nonempty "Stats.variance" xs;
  let n = Array.length xs in
  if n = 1 then 0.0
  else begin
    let m = mean xs in
    let s = Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs in
    s /. float_of_int (n - 1)
  end

let stddev xs = sqrt (variance xs)

let quantile q xs =
  check_nonempty "Stats.quantile" xs;
  if q < 0.0 || q > 1.0 then invalid_arg "Stats.quantile: q outside [0,1]";
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  let n = Array.length sorted in
  let pos = q *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor pos) in
  let hi = int_of_float (Float.ceil pos) in
  if lo = hi then sorted.(lo)
  else begin
    let w = pos -. float_of_int lo in
    ((1.0 -. w) *. sorted.(lo)) +. (w *. sorted.(hi))
  end

let histogram ~bins xs =
  check_nonempty "Stats.histogram" xs;
  if bins <= 0 then invalid_arg "Stats.histogram: bins must be positive";
  let lo = Array.fold_left Float.min xs.(0) xs in
  let hi = Array.fold_left Float.max xs.(0) xs in
  let width = if hi = lo then 1.0 else (hi -. lo) /. float_of_int bins in
  let counts = Array.make bins 0 in
  Array.iter
    (fun x ->
       let b = int_of_float ((x -. lo) /. width) in
       let b = if b >= bins then bins - 1 else b in
       counts.(b) <- counts.(b) + 1)
    xs;
  Array.mapi (fun i c -> (lo +. (float_of_int i *. width), c)) counts

let normalise name xs =
  check_nonempty name xs;
  let total =
    Array.fold_left
      (fun acc x ->
         if x < 0.0 then invalid_arg (name ^ ": negative entry");
         acc +. x)
      0.0 xs
  in
  if total <= 0.0 then invalid_arg (name ^ ": zero mass");
  Array.map (fun x -> x /. total) xs

let kl_divergence p q =
  if Array.length p <> Array.length q then
    invalid_arg "Stats.kl_divergence: length mismatch";
  let p = normalise "Stats.kl_divergence" p in
  let q = normalise "Stats.kl_divergence" q in
  let acc = ref 0.0 in
  Array.iteri
    (fun i pi ->
       if pi > 0.0 then
         if q.(i) <= 0.0 then acc := Float.infinity
         else acc := !acc +. (pi *. log (pi /. q.(i))))
    p;
  !acc

let total_variation p q =
  if Array.length p <> Array.length q then
    invalid_arg "Stats.total_variation: length mismatch";
  let p = normalise "Stats.total_variation" p in
  let q = normalise "Stats.total_variation" q in
  let acc = ref 0.0 in
  Array.iteri (fun i pi -> acc := !acc +. Float.abs (pi -. q.(i))) p;
  0.5 *. !acc
