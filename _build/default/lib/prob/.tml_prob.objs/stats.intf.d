lib/prob/stats.mli:
