lib/prob/prng.ml: Array Float Int64
