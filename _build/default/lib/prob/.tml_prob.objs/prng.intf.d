lib/prob/prng.mli:
