lib/prob/stats.ml: Array Float
