(** A textual format for MDPs, mirroring {!Dtmc_io}:

    {v
    mdp
    states 3
    init 0
    0 go -> 1 : 0.8
    0 go -> 2 : 0.2
    0 wait -> 0 : 1.0
    1 stay -> 1 : 1.0
    2 stay -> 2 : 1.0
    label goal = 1
    reward 1 = 5.0
    action-reward 0 go = -1.0
    feature 0 = 1.0 0.5
    feature 1 = 0.0 1.0
    feature 2 = 0.0 0.0
    v}

    Transition lines for the same (state, action) pair accumulate into one
    distribution. [feature] lines, if present, must cover every state with
    equal arity. *)

exception Parse_error of string

val parse : string -> Mdp.t
val of_file : string -> Mdp.t
val to_string : Mdp.t -> string
(** [parse (to_string m)] reconstructs [m]. *)
