(** Textual format for trace datasets, optionally partitioned into named
    groups (the unit Data Repair drops by).

    {v
    # a comment
    group clean
    0 1 2
    0,go 1,stop 2          # state,action pairs; the last token is the
                           # final state
    group field
    0 2
    v}

    Lines before any [group] directive land in the default group [""].
    A bare state sequence is an action-less path; mixing the two styles on
    one line is allowed (missing actions default to [""]). *)

exception Parse_error of string

val parse : string -> (string * Trace.t list) list
(** Groups in order of first appearance; each group's traces in file
    order. @raise Parse_error on malformed lines. *)

val of_file : string -> (string * Trace.t list) list

val to_string : (string * Trace.t list) list -> string
(** [parse (to_string groups)] reconstructs the groups. *)
