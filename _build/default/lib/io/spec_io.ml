exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

let parse_variable s =
  match String.split_on_char ':' s with
  | [ name; lo; hi ] -> (
      match (float_of_string_opt lo, float_of_string_opt hi) with
      | Some lo, Some hi when name <> "" -> (name, lo, hi)
      | _ -> fail "bad variable spec %S (want NAME:LO:HI)" s)
  | _ -> fail "bad variable spec %S (want NAME:LO:HI)" s

(* A signed linear combination: [+|-] term { (+|-) term } where
   term := [FLOAT *] IDENT | FLOAT. *)
let parse_linear expr =
  let n = String.length expr in
  let pos = ref 0 in
  let peek () = if !pos < n then Some expr.[!pos] else None in
  let skip_ws () =
    while !pos < n && (expr.[!pos] = ' ' || expr.[!pos] = '\t') do incr pos done
  in
  let read_while pred =
    let start = !pos in
    while !pos < n && pred expr.[!pos] do incr pos done;
    String.sub expr start (!pos - start)
  in
  let is_digit c = (c >= '0' && c <= '9') || c = '.' in
  let is_ident c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
    || c = '_'
  in
  let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' in
  let term sign =
    skip_ws ();
    match peek () with
    | Some c when is_digit c ->
      let lit = read_while is_digit in
      let coef =
        match float_of_string_opt lit with
        | Some f -> f
        | None -> fail "bad coefficient %S in %S" lit expr
      in
      skip_ws ();
      let base =
        match peek () with
        | Some '*' ->
          incr pos;
          skip_ws ();
          (match peek () with
           | Some c when is_ident_start c -> Ratfun.var (read_while is_ident)
           | _ -> fail "expected a variable after '*' in %S" expr)
        | _ -> Ratfun.one
      in
      Ratfun.mul (Ratfun.const (Ratio.of_float (sign *. coef))) base
    | Some c when is_ident_start c ->
      let v = Ratfun.var (read_while is_ident) in
      if sign < 0.0 then Ratfun.neg v else v
    | _ -> fail "expected a term in %S" expr
  in
  let rec rest acc =
    skip_ws ();
    match peek () with
    | None -> acc
    | Some '+' ->
      incr pos;
      rest (Ratfun.add acc (term 1.0))
    | Some '-' ->
      incr pos;
      rest (Ratfun.add acc (term (-1.0)))
    | Some c -> fail "unexpected character %C in %S" c expr
  in
  skip_ws ();
  let first =
    match peek () with
    | Some '+' -> incr pos; term 1.0
    | Some '-' -> incr pos; term (-1.0)
    | _ -> term 1.0
  in
  rest first

let parse_delta s =
  match String.split_on_char ',' s with
  | [ src; dst; expr ] -> (
      match (int_of_string_opt (String.trim src), int_of_string_opt (String.trim dst)) with
      | Some src, Some dst -> (src, dst, parse_linear expr)
      | _ -> fail "bad delta %S (want SRC,DST,EXPR)" s)
  | _ -> fail "bad delta %S (want SRC,DST,EXPR)" s
