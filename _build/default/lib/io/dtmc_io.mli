(** A small textual format for DTMCs, so models can be checked and repaired
    from the command line.

    {v
    dtmc
    states 3
    init 0
    0 -> 1 : 0.3
    0 -> 2 : 0.7
    1 -> 1 : 1.0
    2 -> 2 : 1.0
    label goal = 1
    label fail = 2
    reward 0 = 1.0
    v}

    Blank lines and [#]-comments are ignored. [label] lines may list several
    states separated by spaces or commas; [reward] sets a state reward
    (default 0). *)

exception Parse_error of string

val parse : string -> Dtmc.t
(** @raise Parse_error on malformed input (including the underlying
    validation errors of {!Dtmc.make}, re-raised with line context). *)

val of_file : string -> Dtmc.t
(** @raise Parse_error as {!parse}; @raise Sys_error on IO failure. *)

val to_string : Dtmc.t -> string
(** Render in the same format; [parse (to_string d)] reconstructs [d]. *)
