(** Command-line syntax for Model-Repair specifications. *)

exception Parse_error of string

val parse_variable : string -> string * float * float
(** ["v:0:0.5"] — name, lower bound, upper bound.
    @raise Parse_error on malformed input. *)

val parse_delta : string -> int * int * Ratfun.t
(** ["0,1,+v"], ["0,2,-v"], ["3,4,0.5*v"], ["1,1,-v-0.5*w"] — an edge
    perturbation: source, target, and a signed linear combination of
    variables. @raise Parse_error on malformed input. *)
