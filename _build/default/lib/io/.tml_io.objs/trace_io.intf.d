lib/io/trace_io.mli: Trace
