lib/io/mdp_io.mli: Mdp
