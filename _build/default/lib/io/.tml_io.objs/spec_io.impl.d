lib/io/spec_io.ml: Printf Ratfun Ratio String
