lib/io/mdp_io.ml: Array Buffer List Mdp Option Printf String
