lib/io/trace_io.ml: Buffer List Printf String Trace
