lib/io/dtmc_io.ml: Array Buffer Dtmc List Printf String
