lib/io/spec_io.mli: Ratfun
