lib/io/dtmc_io.mli: Dtmc
