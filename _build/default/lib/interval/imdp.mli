(** Interval MDPs: controller nondeterminism (actions) {e and} uncertainty
    intervals on every action's distribution — the full convex-MDP model of
    Puggelli et al. (CAV'13) that the paper's related work builds on.

    Verification resolves the two kinds of nondeterminism with opposite
    polarities: the controller optimises its objective while nature
    adversarially resolves the intervals (or cooperatively, under
    optimistic semantics). *)

type t

val make :
  n:int ->
  init:int ->
  actions:(int * string * (int * float * float) list) list ->
  ?labels:(string * int list) list ->
  ?rewards:float array ->
  unit ->
  t
(** [actions] lists [(state, action, [(target, lo, hi); ...])]; every state
    needs at least one action; each interval row must be feasible
    ([Σ lo <= 1 <= Σ hi]). @raise Invalid_argument on malformed input. *)

val of_mdp : radius:float -> Mdp.t -> t
(** Inflate every action distribution of a concrete MDP by ±[radius]. *)

val num_states : t -> int
val init_state : t -> int
val actions_of : t -> int -> (string * (int * float * float) list) list
val reward : t -> int -> float
val states_with_label : t -> string -> int list
val has_label : t -> int -> string -> bool
