let nature_value ~nature edges x =
  let p = Robust.resolve_row nature edges x in
  List.fold_left (fun acc (d, q) -> acc +. (q *. x.(d))) 0.0 p

let controller_fold (quant : Check_mdp.quant) =
  match quant with
  | Check_mdp.Max -> (Float.max, Float.neg_infinity)
  | Check_mdp.Min -> (Float.min, Float.infinity)

let reachability ?(max_iter = 100_000) ?(tol = 1e-12) ~controller ~nature imdp
    ~target =
  let n = Imdp.num_states imdp in
  let is_target = Array.make n false in
  List.iter (fun s -> is_target.(s) <- true) target;
  let fold, worst = controller_fold controller in
  let x = Array.init n (fun s -> if is_target.(s) then 1.0 else 0.0) in
  let rec iterate k =
    if k >= max_iter then ()
    else begin
      let delta = ref 0.0 in
      for s = 0 to n - 1 do
        if not is_target.(s) then begin
          let best =
            List.fold_left
              (fun acc (_, edges) -> fold acc (nature_value ~nature edges x))
              worst (Imdp.actions_of imdp s)
          in
          delta := Float.max !delta (Float.abs (best -. x.(s)));
          x.(s) <- best
        end
      done;
      if !delta >= tol then iterate (k + 1)
    end
  in
  iterate 0;
  x

let robust_policy ?max_iter ?tol ~controller ~nature imdp ~target =
  let x = reachability ?max_iter ?tol ~controller ~nature imdp ~target in
  Array.init (Imdp.num_states imdp) (fun s ->
      match Imdp.actions_of imdp s with
      | [] -> assert false (* Imdp.make guarantees at least one action *)
      | (first, first_edges) :: rest ->
        let better a b =
          match controller with
          | Check_mdp.Max -> a > b
          | Check_mdp.Min -> a < b
        in
        let best_name, _ =
          List.fold_left
            (fun (bn, bv) (name, edges) ->
               let v = nature_value ~nature edges x in
               if better v bv then (name, v) else (bn, bv))
            (first, nature_value ~nature first_edges x)
            rest
        in
        best_name)

let target_of_prop imdp (f : Pctl.state_formula) =
  let rec sat s = function
    | Pctl.True -> true
    | Pctl.False -> false
    | Pctl.Prop p -> Imdp.has_label imdp s p
    | Pctl.Not g -> not (sat s g)
    | Pctl.And (a, b) -> sat s a && sat s b
    | Pctl.Or (a, b) -> sat s a || sat s b
    | Pctl.Implies (a, b) -> (not (sat s a)) || sat s b
    | Pctl.Prob _ | Pctl.Reward _ ->
      invalid_arg "Robust_mdp.check: nested P/R operators are not supported"
  in
  List.filter (fun s -> sat s f) (List.init (Imdp.num_states imdp) Fun.id)

let check imdp (phi : Pctl.state_formula) =
  match phi with
  | Prob (cmp, bound, Eventually f) ->
    let target = target_of_prop imdp f in
    let controller, nature =
      match cmp with
      | Pctl.Ge | Pctl.Gt -> (Check_mdp.Min, Robust.Pessimistic)
      | Pctl.Le | Pctl.Lt -> (Check_mdp.Max, Robust.Optimistic)
    in
    let p = (reachability ~controller ~nature imdp ~target).(Imdp.init_state imdp) in
    Pctl.compare_with cmp p bound
  | _ ->
    invalid_arg "Robust_mdp.check: only P~b[F prop] formulas are supported"
