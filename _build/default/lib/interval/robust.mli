(** Robust verification of interval DTMCs.

    At every state, "nature" resolves the probability intervals to a
    distribution in the row's transportation polytope; {!Pessimistic}
    semantics lets nature work against the property, {!Optimistic} with it.
    The inner optimisation (maximise/minimise [Σ p·x] over the polytope)
    is solved exactly by the classic greedy order-statistics argument, so
    the whole analysis is a value iteration — the polynomial-time algorithm
    of the convex-MDP verification line (Puggelli et al.). *)

type semantics = Pessimistic | Optimistic

val resolve_row :
  semantics -> (int * float * float) list -> float array -> (int * float) list
(** [resolve_row sem edges x] — nature's distribution over the given
    interval edges that minimises (pessimistic) or maximises (optimistic)
    [Σ p·x.(target)]. Exposed for tests. *)

val reachability :
  ?max_iter:int -> ?tol:float -> semantics -> Idtmc.t -> target:int list -> float array
(** Worst-case (or best-case) probability of eventually reaching the
    target set, per state. *)

val expected_reward :
  ?max_iter:int -> ?tol:float -> semantics -> Idtmc.t -> target:int list -> float array
(** Worst/best-case expected accumulated state reward until reaching the
    target; [infinity] where the target can be avoided with positive
    probability forever under the chosen semantics. *)

val check : Idtmc.t -> Pctl.state_formula -> bool
(** Robust PCTL checking at the initial state for top-level [P]/[R] with
    reachability ([F]) path formulas: [>=]/[>] bounds are checked against
    the pessimistic value, [<=]/[<] against the optimistic one, so a [true]
    answer holds for {e every} chain in the interval family.
    @raise Invalid_argument on other formula shapes. *)
