type semantics = Pessimistic | Optimistic

(* Nature's inner optimisation: choose p in the row polytope
   { lo <= p <= hi, Σ p = 1 } extremising Σ p·x(target). Greedy: start all
   edges at their lower bounds, then pour the remaining mass into targets
   in value order (best-first to maximise, worst-first to minimise). *)
let resolve_extremal ~maximise edges x =
  let base = List.fold_left (fun acc (_, lo, _) -> acc +. lo) 0.0 edges in
  let remaining = ref (1.0 -. base) in
  let order =
    List.sort
      (fun (d1, _, _) (d2, _, _) ->
         let c = Float.compare x.(d1) x.(d2) in
         if maximise then -c else c)
      edges
  in
  List.map
    (fun (d, lo, hi) ->
       let extra = Float.min (hi -. lo) (Float.max 0.0 !remaining) in
       remaining := !remaining -. extra;
       (d, lo +. extra))
    order
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let resolve_row sem edges x =
  resolve_extremal ~maximise:(sem = Optimistic) edges x

(* Value iteration for reachability probabilities. Pessimistic = nature
   minimises the probability (worst case for "the target is reached"). *)
let reachability ?(max_iter = 100_000) ?(tol = 1e-12) sem idtmc ~target =
  let n = Idtmc.num_states idtmc in
  let is_target = Array.make n false in
  List.iter (fun s -> is_target.(s) <- true) target;
  let maximise = sem = Optimistic in
  let x = Array.init n (fun s -> if is_target.(s) then 1.0 else 0.0) in
  let rec iterate k =
    if k >= max_iter then ()
    else begin
      let delta = ref 0.0 in
      for s = 0 to n - 1 do
        if not is_target.(s) then begin
          let p = resolve_extremal ~maximise (Idtmc.edges idtmc s) x in
          let v = List.fold_left (fun acc (d, q) -> acc +. (q *. x.(d))) 0.0 p in
          delta := Float.max !delta (Float.abs (v -. x.(s)));
          x.(s) <- v
        end
      done;
      if !delta >= tol then iterate (k + 1)
    end
  in
  iterate 0;
  x

(* Expected accumulated reward until the target. Pessimistic = nature
   maximises the cost (worst case for "the cost stays low"); finiteness
   requires reaching the target almost surely under that same nature, which
   is detected through the corresponding reachability probabilities. *)
let expected_reward ?(max_iter = 100_000) ?(tol = 1e-9) sem idtmc ~target =
  let n = Idtmc.num_states idtmc in
  let is_target = Array.make n false in
  List.iter (fun s -> is_target.(s) <- true) target;
  (* cost-maximising nature also minimises reach probability, and vice
     versa *)
  let reach_sem = sem in
  let reach = reachability reach_sem idtmc ~target in
  let finite = Array.init n (fun s -> reach.(s) > 1.0 -. 1e-9) in
  let maximise_cost = sem = Pessimistic in
  let x = Array.make n 0.0 in
  let rec iterate k =
    if k >= max_iter then ()
    else begin
      let delta = ref 0.0 in
      for s = 0 to n - 1 do
        if finite.(s) && not is_target.(s) then begin
          let p = resolve_extremal ~maximise:maximise_cost (Idtmc.edges idtmc s) x in
          let v =
            Idtmc.reward idtmc s
            +. List.fold_left
                 (fun acc (d, q) ->
                    acc +. (q *. (if Float.is_finite x.(d) then x.(d) else 0.0)))
                 0.0 p
          in
          delta := Float.max !delta (Float.abs (v -. x.(s)));
          x.(s) <- v
        end
      done;
      if !delta >= tol then iterate (k + 1)
    end
  in
  iterate 0;
  Array.init n (fun s ->
      if is_target.(s) then 0.0
      else if finite.(s) then x.(s)
      else Float.infinity)

let target_of_prop idtmc (f : Pctl.state_formula) =
  let rec sat s = function
    | Pctl.True -> true
    | Pctl.False -> false
    | Pctl.Prop p -> Idtmc.has_label idtmc s p
    | Pctl.Not g -> not (sat s g)
    | Pctl.And (a, b) -> sat s a && sat s b
    | Pctl.Or (a, b) -> sat s a || sat s b
    | Pctl.Implies (a, b) -> (not (sat s a)) || sat s b
    | Pctl.Prob _ | Pctl.Reward _ ->
      invalid_arg "Robust.check: nested P/R operators are not supported"
  in
  List.filter
    (fun s -> sat s f)
    (List.init (Idtmc.num_states idtmc) Fun.id)

let check idtmc (phi : Pctl.state_formula) =
  match phi with
  | Prob (cmp, bound, Eventually f) ->
    let target = target_of_prop idtmc f in
    let sem =
      match cmp with
      | Pctl.Ge | Pctl.Gt -> Pessimistic
      | Pctl.Le | Pctl.Lt -> Optimistic
    in
    let p = (reachability sem idtmc ~target).(Idtmc.init_state idtmc) in
    Pctl.compare_with cmp p bound
  | Reward (cmp, bound, f) ->
    let target = target_of_prop idtmc f in
    let sem =
      match cmp with
      | Pctl.Le | Pctl.Lt -> Pessimistic (* worst case = maximal cost *)
      | Pctl.Ge | Pctl.Gt -> Optimistic
    in
    let r = (expected_reward sem idtmc ~target).(Idtmc.init_state idtmc) in
    Pctl.compare_with cmp r bound
  | _ ->
    invalid_arg
      "Robust.check: only P~b[F prop] and R~r[F prop] formulas are supported"
