module Smap = Map.Make (String)

type t = {
  n : int;
  init : int;
  acts : (string * (int * float * float) list) list array;
  label_map : int list Smap.t;
  rewards : float array;
}

let check_state n what s =
  if s < 0 || s >= n then
    invalid_arg (Printf.sprintf "Imdp: %s state %d out of range [0,%d)" what s n)

let validate_row ~state ~aname row =
  let lo_sum = List.fold_left (fun acc (_, lo, _) -> acc +. lo) 0.0 row in
  let hi_sum = List.fold_left (fun acc (_, _, hi) -> acc +. hi) 0.0 row in
  List.iter
    (fun (_, lo, hi) ->
       if not (0.0 <= lo && lo <= hi && hi <= 1.0) then
         invalid_arg
           (Printf.sprintf "Imdp: bad interval [%g, %g] in %d/%s" lo hi state aname))
    row;
  if lo_sum > 1.0 +. 1e-9 || hi_sum < 1.0 -. 1e-9 then
    invalid_arg
      (Printf.sprintf "Imdp: infeasible distribution for %d/%s (lo %g, hi %g)"
         state aname lo_sum hi_sum)

let make ~n ~init ~actions ?(labels = []) ?rewards () =
  if n <= 0 then invalid_arg "Imdp: need at least one state";
  check_state n "initial" init;
  let acts = Array.make n [] in
  List.iter
    (fun (s, aname, row) ->
       check_state n "action source" s;
       List.iter (fun (d, _, _) -> check_state n "target" d) row;
       if List.mem_assoc aname acts.(s) then
         invalid_arg (Printf.sprintf "Imdp: duplicate action %s in state %d" aname s);
       validate_row ~state:s ~aname row;
       acts.(s) <- (aname, row) :: acts.(s))
    actions;
  Array.iteri
    (fun s l ->
       if l = [] then invalid_arg (Printf.sprintf "Imdp: state %d has no actions" s))
    acts;
  let acts = Array.map List.rev acts in
  let label_map =
    List.fold_left
      (fun acc (name, states) ->
         List.iter (check_state n ("label " ^ name)) states;
         let prev = Option.value ~default:[] (Smap.find_opt name acc) in
         Smap.add name (List.sort_uniq Int.compare (states @ prev)) acc)
      Smap.empty labels
  in
  let rewards =
    match rewards with
    | None -> Array.make n 0.0
    | Some r ->
      if Array.length r <> n then invalid_arg "Imdp: reward array wrong length";
      Array.copy r
  in
  { n; init; acts; label_map; rewards }

let of_mdp ~radius mdp =
  if radius < 0.0 then invalid_arg "Imdp.of_mdp: negative radius";
  let n = Mdp.num_states mdp in
  let actions =
    List.concat
      (List.init n (fun s ->
           List.map
             (fun (a : Mdp.action) ->
                ( s,
                  a.Mdp.name,
                  List.map
                    (fun (d, p) ->
                       (d, Float.max 0.0 (p -. radius), Float.min 1.0 (p +. radius)))
                    a.Mdp.dist ))
             (Mdp.actions_of mdp s)))
  in
  let labels =
    List.map (fun l -> (l, Mdp.states_with_label mdp l)) (Mdp.labels mdp)
  in
  let rewards = Array.init n (Mdp.state_reward mdp) in
  make ~n ~init:(Mdp.init_state mdp) ~actions ~labels ~rewards ()

let num_states t = t.n
let init_state t = t.init
let actions_of t s = check_state t.n "query" s; t.acts.(s)
let reward t s = check_state t.n "query" s; t.rewards.(s)

let states_with_label t name =
  Option.value ~default:[] (Smap.find_opt name t.label_map)

let has_label t s name = List.mem s (states_with_label t name)
