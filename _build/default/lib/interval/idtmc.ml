module Smap = Map.Make (String)

type t = {
  n : int;
  init : int;
  rows : (int * float * float) array array; (* (target, lo, hi) *)
  label_map : int list Smap.t;
  rewards : float array;
}

let check_state n what s =
  if s < 0 || s >= n then
    invalid_arg (Printf.sprintf "Idtmc: %s state %d out of range [0,%d)" what s n)

let make ~n ~init ~transitions ?(labels = []) ?rewards () =
  if n <= 0 then invalid_arg "Idtmc: need at least one state";
  check_state n "initial" init;
  let tbl = Array.make n [] in
  List.iter
    (fun (src, dst, lo, hi) ->
       check_state n "source" src;
       check_state n "target" dst;
       if not (0.0 <= lo && lo <= hi && hi <= 1.0) then
         invalid_arg
           (Printf.sprintf "Idtmc: bad interval [%g, %g] on %d->%d" lo hi src dst);
       if List.exists (fun (d, _, _) -> d = dst) tbl.(src) then
         invalid_arg (Printf.sprintf "Idtmc: duplicate edge %d->%d" src dst);
       if hi > 0.0 then tbl.(src) <- (dst, lo, hi) :: tbl.(src))
    transitions;
  let rows =
    Array.mapi
      (fun s entries ->
         let lo_sum = List.fold_left (fun acc (_, lo, _) -> acc +. lo) 0.0 entries in
         let hi_sum = List.fold_left (fun acc (_, _, hi) -> acc +. hi) 0.0 entries in
         if lo_sum > 1.0 +. 1e-9 || hi_sum < 1.0 -. 1e-9 then
           invalid_arg
             (Printf.sprintf
                "Idtmc: row %d infeasible (lo sum %g, hi sum %g)" s lo_sum hi_sum);
         Array.of_list
           (List.sort (fun (a, _, _) (b, _, _) -> Int.compare a b) entries))
      tbl
  in
  Array.iteri
    (fun s row ->
       if Array.length row = 0 then
         invalid_arg (Printf.sprintf "Idtmc: state %d has no outgoing edges" s))
    rows;
  let label_map =
    List.fold_left
      (fun acc (name, states) ->
         List.iter (check_state n ("label " ^ name)) states;
         let prev = Option.value ~default:[] (Smap.find_opt name acc) in
         Smap.add name (List.sort_uniq Int.compare (states @ prev)) acc)
      Smap.empty labels
  in
  let rewards =
    match rewards with
    | None -> Array.make n 0.0
    | Some r ->
      if Array.length r <> n then invalid_arg "Idtmc: reward array wrong length";
      Array.copy r
  in
  { n; init; rows; label_map; rewards }

let of_dtmc ~radius dtmc =
  if radius < 0.0 then invalid_arg "Idtmc.of_dtmc: negative radius";
  let n = Dtmc.num_states dtmc in
  let transitions =
    List.concat
      (List.init n (fun s ->
           List.map
             (fun (d, p) ->
                (s, d, Float.max 0.0 (p -. radius), Float.min 1.0 (p +. radius)))
             (Dtmc.succ dtmc s)))
  in
  let labels =
    List.map (fun l -> (l, Dtmc.states_with_label dtmc l)) (Dtmc.labels dtmc)
  in
  make ~n ~init:(Dtmc.init_state dtmc) ~transitions ~labels
    ~rewards:(Dtmc.rewards dtmc) ()

let num_states t = t.n
let init_state t = t.init
let edges t s = check_state t.n "query" s; Array.to_list t.rows.(s)
let reward t s = check_state t.n "query" s; t.rewards.(s)

let states_with_label t name =
  Option.value ~default:[] (Smap.find_opt name t.label_map)

let has_label t s name = List.mem s (states_with_label t name)

let member t dtmc =
  Dtmc.num_states dtmc = t.n
  && Dtmc.init_state dtmc = t.init
  &&
  let ok = ref true in
  for s = 0 to t.n - 1 do
    let concrete = Dtmc.succ dtmc s in
    (* every concrete edge inside its interval, and no extra edges *)
    List.iter
      (fun (d, p) ->
         match Array.find_opt (fun (d', _, _) -> d' = d) t.rows.(s) with
         | Some (_, lo, hi) -> if p < lo -. 1e-12 || p > hi +. 1e-12 then ok := false
         | None -> ok := false)
      concrete;
    Array.iter
      (fun (d, lo, _) ->
         if lo > 1e-12 && not (List.mem_assoc d concrete) then ok := false)
      t.rows.(s)
  done;
  !ok

let midpoint t =
  let transitions =
    List.concat
      (List.init t.n (fun s ->
           let mids =
             Array.to_list
               (Array.map (fun (d, lo, hi) -> (d, (lo +. hi) /. 2.0)) t.rows.(s))
           in
           let total = List.fold_left (fun acc (_, p) -> acc +. p) 0.0 mids in
           List.filter_map
             (fun (d, p) ->
                let p = p /. total in
                if p > 0.0 then Some (s, d, p) else None)
             mids))
  in
  let labels = Smap.bindings t.label_map in
  Dtmc.make ~n:t.n ~init:t.init ~transitions ~labels ~rewards:t.rewards ()
