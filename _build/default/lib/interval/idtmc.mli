(** Interval DTMCs: transition probabilities known only up to intervals.

    This is the uncertainty model of the convex-MDP verification line the
    paper builds on (Puggelli et al., CAV'13; Sen et al., TACAS'06): each
    edge carries a probability interval [\[lo, hi\]], and "nature"
    adversarially (or cooperatively) resolves the uncertainty. A learned
    model with confidence intervals on its estimates is exactly such an
    object, so robust checking tells you whether a property holds for
    {e every} chain consistent with the data. *)

type t

val make :
  n:int ->
  init:int ->
  transitions:(int * int * float * float) list ->
  ?labels:(string * int list) list ->
  ?rewards:float array ->
  unit ->
  t
(** [transitions] lists [(src, dst, lo, hi)]. Row feasibility requires
    [Σ lo <= 1 <= Σ hi] and [0 <= lo <= hi <= 1] per edge.
    @raise Invalid_argument on malformed input. *)

val of_dtmc : radius:float -> Dtmc.t -> t
(** Inflate every edge of a concrete chain by ±[radius] (clipped to
    [\[0,1\]]) — e.g. a learning-error ball around an MLE estimate. *)

val num_states : t -> int
val init_state : t -> int
val edges : t -> int -> (int * float * float) list
val reward : t -> int -> float
val states_with_label : t -> string -> int list
val has_label : t -> int -> string -> bool

val member : t -> Dtmc.t -> bool
(** Whether a concrete chain resolves this interval chain (same structure,
    every probability inside its interval). *)

val midpoint : t -> Dtmc.t
(** The concrete chain using interval midpoints, re-normalised. *)
