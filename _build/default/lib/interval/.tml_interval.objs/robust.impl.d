lib/interval/robust.ml: Array Float Fun Idtmc Int List Pctl
