lib/interval/imdp.mli: Mdp
