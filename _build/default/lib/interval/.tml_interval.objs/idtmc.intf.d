lib/interval/idtmc.mli: Dtmc
