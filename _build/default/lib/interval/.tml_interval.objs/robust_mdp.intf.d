lib/interval/robust_mdp.mli: Check_mdp Imdp Pctl Robust
