lib/interval/imdp.ml: Array Float Int List Map Mdp Option Printf String
