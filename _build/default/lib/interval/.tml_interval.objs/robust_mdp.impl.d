lib/interval/robust_mdp.ml: Array Check_mdp Float Fun Imdp List Pctl Robust
