lib/interval/idtmc.ml: Array Dtmc Float Int List Map Option Printf String
