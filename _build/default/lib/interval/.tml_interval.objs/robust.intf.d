lib/interval/robust.mli: Idtmc Pctl
