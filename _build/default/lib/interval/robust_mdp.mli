(** Robust verification of interval MDPs: the controller optimises, nature
    resolves the intervals with the chosen polarity. The inner nature
    problem is the same greedy order-statistics LP as {!Robust}; the outer
    problem is a max/min over actions — together a polynomial-time value
    iteration (Puggelli et al., CAV'13). *)

val reachability :
  ?max_iter:int ->
  ?tol:float ->
  controller:Check_mdp.quant ->
  nature:Robust.semantics ->
  Imdp.t ->
  target:int list ->
  float array
(** Per-state probability of eventually reaching the target when the
    controller maximises/minimises and nature is pessimistic (minimises
    the same quantity) or optimistic. [controller:Max, nature:Pessimistic]
    is the classic "best controller against worst-case uncertainty". *)

val robust_policy :
  ?max_iter:int ->
  ?tol:float ->
  controller:Check_mdp.quant ->
  nature:Robust.semantics ->
  Imdp.t ->
  target:int list ->
  string array
(** The controller policy attaining the {!reachability} value (greedy in
    the converged value function). *)

val check : Imdp.t -> Pctl.state_formula -> bool
(** Robust PCTL for [P ~ b \[F prop\]]: [>=]/[>] bounds quantify
    universally over nature and existentially over the controller is NOT
    what universal semantics wants — following PRISM's convention for
    MDPs, [>=]/[>] requires even the {e minimising} controller under
    {e pessimistic} nature to meet the bound, and [<=]/[<] requires the
    {e maximising} controller under {e optimistic} nature to stay below
    it; a [true] verdict therefore holds for every policy and every
    interval resolution.
    @raise Invalid_argument on other formula shapes. *)
