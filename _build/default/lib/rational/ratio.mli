(** Exact rational numbers over {!Bigint}.

    Values are kept normalised: the denominator is positive and
    [gcd num den = 1]. Used throughout the parametric model-checking engine,
    where exactness (not floats) is what keeps state elimination sound. *)

type t

val zero : t
val one : t
val minus_one : t
val half : t

(** {1 Construction} *)

val make : Bigint.t -> Bigint.t -> t
(** [make num den]. @raise Division_by_zero when [den] is zero. *)

val of_bigint : Bigint.t -> t
val of_int : int -> t

val of_ints : int -> int -> t
(** [of_ints num den]. @raise Division_by_zero when [den = 0]. *)

val of_float : float -> t
(** Exact dyadic rational equal to the given float.
    @raise Invalid_argument on NaN or infinities. *)

val of_decimal_string : string -> t
(** Parses ["3.25"], ["-0.045"], ["7"], ["1/3"], ["-2/7"].
    @raise Invalid_argument on malformed input. *)

(** {1 Access} *)

val num : t -> Bigint.t
val den : t -> Bigint.t
val sign : t -> int
val is_zero : t -> bool
val is_integer : t -> bool

(** {1 Arithmetic} *)

val neg : t -> t
val abs : t -> t
val inv : t -> t
(** @raise Division_by_zero on zero. *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
(** @raise Division_by_zero when the divisor is zero. *)

val pow : t -> int -> t
(** Integer power; negative exponents invert. @raise Division_by_zero when
    raising zero to a negative power. *)

val min : t -> t -> t
val max : t -> t -> t

(** {1 Comparison} *)

val equal : t -> t -> bool
val compare : t -> t -> int
val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val ( >= ) : t -> t -> bool

(** {1 Operators} *)

val ( + ) : t -> t -> t
val ( - ) : t -> t -> t
val ( * ) : t -> t -> t
val ( / ) : t -> t -> t
val ( ~- ) : t -> t

(** {1 Conversion and printing} *)

val to_float : t -> float
val to_string : t -> string
val pp : Format.formatter -> t -> unit
val hash : t -> int

val floor : t -> Bigint.t
val ceil : t -> Bigint.t
