(* Normalised rationals: den > 0, gcd(num, den) = 1, zero is 0/1. *)

module B = Bigint

type t = { num : B.t; den : B.t }

let normalize num den =
  if B.is_zero den then raise Division_by_zero;
  if B.is_zero num then { num = B.zero; den = B.one }
  else begin
    let num, den = if B.sign den < 0 then (B.neg num, B.neg den) else (num, den) in
    let g = B.gcd num den in
    if B.is_one g then { num; den }
    else { num = B.div num g; den = B.div den g }
  end

let make num den = normalize num den
let of_bigint n = { num = n; den = B.one }
let of_int i = of_bigint (B.of_int i)
let of_ints n d = normalize (B.of_int n) (B.of_int d)

let zero = of_int 0
let one = of_int 1
let minus_one = of_int (-1)
let half = of_ints 1 2

let num t = t.num
let den t = t.den
let sign t = B.sign t.num
let is_zero t = B.is_zero t.num
let is_integer t = B.is_one t.den

let neg t = { t with num = B.neg t.num }
let abs t = { t with num = B.abs t.num }

let inv t =
  if is_zero t then raise Division_by_zero
  else if B.sign t.num > 0 then { num = t.den; den = t.num }
  else { num = B.neg t.den; den = B.neg t.num }

let add a b =
  normalize
    (B.add (B.mul a.num b.den) (B.mul b.num a.den))
    (B.mul a.den b.den)

let sub a b = add a (neg b)
let mul a b = normalize (B.mul a.num b.num) (B.mul a.den b.den)
let div a b = mul a (inv b)

let pow t e =
  if e >= 0 then { num = B.pow t.num e; den = B.pow t.den e }
  else inv { num = B.pow t.num (-e); den = B.pow t.den (-e) }

let equal a b = B.equal a.num b.num && B.equal a.den b.den

let compare a b = B.compare (B.mul a.num b.den) (B.mul b.num a.den)

let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let ( < ) a b = compare a b < 0
let ( <= ) a b = compare a b <= 0
let ( > ) a b = compare a b > 0
let ( >= ) a b = compare a b >= 0

let ( + ) = add
let ( - ) = sub
let ( * ) = mul
let ( / ) = div
let ( ~- ) = neg

let to_float t = B.to_float t.num /. B.to_float t.den

let to_string t =
  if is_integer t then B.to_string t.num
  else B.to_string t.num ^ "/" ^ B.to_string t.den

let pp fmt t = Format.pp_print_string fmt (to_string t)

let hash t = Stdlib.( + ) (B.hash t.num) (Stdlib.( * ) 31 (B.hash t.den))

let floor t =
  let q, r = B.divmod t.num t.den in
  if Stdlib.( < ) (B.sign r) 0 then B.pred q else q

let ceil t =
  let q, r = B.divmod t.num t.den in
  if Stdlib.( > ) (B.sign r) 0 then B.succ q else q

let of_float f =
  if Float.is_nan f || Float.is_integer f && Float.abs f = Float.infinity then
    invalid_arg "Ratio.of_float: not finite";
  if not (Float.is_finite f) then invalid_arg "Ratio.of_float: not finite";
  if f = 0.0 then zero
  else begin
    let m, e = Float.frexp f in
    (* f = m * 2^e with 0.5 <= |m| < 1; m * 2^53 is an exact integer. *)
    let mant = Int64.to_int (Int64.of_float (Float.ldexp m 53)) in
    let e = Stdlib.( - ) e 53 in
    let n = B.of_int mant in
    if Stdlib.( >= ) e 0 then of_bigint (B.shift_left n e)
    else make n (B.shift_left B.one (Stdlib.( ~- ) e))
  end

let of_decimal_string s =
  let fail () = invalid_arg (Printf.sprintf "Ratio.of_decimal_string: %S" s) in
  match String.index_opt s '/' with
  | Some i ->
    let n = String.sub s 0 i
    and d = String.sub s Stdlib.(i + 1) Stdlib.(String.length s - i - 1) in
    (match (B.of_string_opt n, B.of_string_opt d) with
     | Some n, Some d when not (B.is_zero d) -> make n d
     | _ -> fail ())
  | None ->
    (match String.index_opt s '.' with
     | None -> (match B.of_string_opt s with Some n -> of_bigint n | None -> fail ())
     | Some i ->
       let int_part = String.sub s 0 i
       and frac = String.sub s Stdlib.(i + 1) Stdlib.(String.length s - i - 1) in
       if String.length frac = 0 then fail ();
       let sign_neg = Stdlib.( > ) (String.length int_part) 0 && int_part.[0] = '-' in
       let int_part = if int_part = "" || int_part = "-" || int_part = "+" then "0" else int_part in
       (match (B.of_string_opt int_part, B.of_string_opt frac) with
        | Some ip, Some fp when Stdlib.( >= ) (B.sign fp) 0 ->
          let scale = B.pow (B.of_int 10) (String.length frac) in
          let mag = B.add (B.mul (B.abs ip) scale) fp in
          let mag = if sign_neg || Stdlib.( < ) (B.sign ip) 0 then B.neg mag else mag in
          make mag scale
        | _ -> fail ()))
