(** Continuous-time Markov chains — the paper's §VII "other types of
    dynamic models can also be handled by our approach".

    A CTMC is given by transition {e rates}; analysis goes through two
    classic reductions to DTMCs, both provided here:
    - the {e embedded} jump chain (for probabilities of event orderings —
      repairable with the ordinary Model Repair machinery), and
    - the {e uniformised} chain with Poisson time-weighting (for transient
      distributions and time-bounded reachability). *)

type t

val make :
  n:int ->
  init:int ->
  rates:(int * int * float) list ->
  ?labels:(string * int list) list ->
  unit ->
  t
(** [rates] lists [(src, dst, rate)] with [rate > 0] and [src <> dst];
    states with no outgoing rate are absorbing.
    @raise Invalid_argument on malformed input. *)

val num_states : t -> int
val init_state : t -> int
val exit_rate : t -> int -> float
val rate : t -> int -> int -> float
val is_absorbing : t -> int -> bool
val states_with_label : t -> string -> int list

val embedded : t -> Dtmc.t
(** The jump chain: [P(s -> d) = rate(s,d) / exit_rate(s)]; absorbing
    states become self-loops. Labels carry over. *)

val uniformized : ?rate:float -> t -> float * Dtmc.t
(** [(q, chain)]: the uniformised DTMC at uniformisation rate [q]
    (default: 1.05 × the maximal exit rate). Transient behaviour of the
    CTMC at time [t] equals the chain's behaviour after a
    Poisson([q·t])-distributed number of steps. *)

val transient_distribution : ?epsilon:float -> t -> time:float -> float array
(** State distribution at the given time, by uniformisation with Poisson
    term truncation at total mass error [epsilon] (default 1e-12). *)

val time_bounded_reachability :
  ?epsilon:float -> t -> target:int list -> time:float -> float
(** [Pr(reach the target within the given time)] from the initial state —
    the CSL formula [P [ F<=t target ]] — computed on the chain with the
    target made absorbing. *)

val simulate :
  Prng.t -> t -> max_time:float -> (int * float) list
(** A sampled timed path [(state, sojourn) list]; the final sojourn is
    truncated at [max_time] (or infinite residence in an absorbing
    state). *)
