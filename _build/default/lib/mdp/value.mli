(** Dynamic programming over MDPs: value iteration, Q-values, greedy policy
    extraction, and policy evaluation.

    The per-step reward of taking action [a] in state [s] is
    [Mdp.state_reward s + a.reward]. *)

type q_table = (string * float) list array
(** [q.(s)] lists [(action_name, Q(s, action))]. *)

val value_iteration :
  ?max_iter:int -> ?tol:float -> gamma:float -> Mdp.t -> float array
(** Optimal discounted state values. [gamma] must lie in (0, 1] — with 1 the
    iteration is only guaranteed to converge on MDPs whose proper policies
    reach absorbing states.
    @raise Invalid_argument on a gamma outside (0, 1]. *)

val q_from_values : gamma:float -> Mdp.t -> float array -> q_table

val q_values :
  ?max_iter:int -> ?tol:float -> gamma:float -> Mdp.t -> q_table
(** Convenience: value iteration followed by {!q_from_values}. *)

val greedy_policy : Mdp.t -> q_table -> Mdp.policy
(** Ties broken toward the lexicographically first action name (actions are
    stored name-sorted, making the result deterministic). *)

val optimal_policy :
  ?max_iter:int -> ?tol:float -> gamma:float -> Mdp.t -> Mdp.policy * float array

val policy_evaluation :
  ?max_iter:int -> ?tol:float -> gamma:float -> Mdp.t -> Mdp.policy -> float array
(** Value of a fixed policy. *)

val policy_iteration :
  ?max_iter:int -> ?tol:float -> gamma:float -> Mdp.t -> Mdp.policy * float array * int
(** Howard's policy iteration: evaluate, then greedy-improve, until the
    policy is stable. Returns (policy, values, improvement rounds);
    produces the same optimum as {!optimal_policy} (property-tested) and
    usually in far fewer sweeps on small MDPs. *)
