module Smap = Map.Make (String)

type action = {
  name : string;
  dist : (int * float) list;
  reward : float;
}

type t = {
  n : int;
  init : int;
  acts : action array array; (* acts.(s) = available actions, name-sorted *)
  label_map : int list Smap.t;
  state_labels : string list array;
  state_rewards : float array;
  features : float array array; (* n x k; k = 0 when absent *)
}

let check_state n what s =
  if s < 0 || s >= n then
    invalid_arg (Printf.sprintf "Mdp: %s state %d out of range [0,%d)" what s n)

let normalise_dist ~n ~state ~aname dist =
  let merged = Hashtbl.create 8 in
  List.iter
    (fun (d, p) ->
       check_state n (Printf.sprintf "target of %d/%s" state aname) d;
       if p < 0.0 then
         invalid_arg
           (Printf.sprintf "Mdp: negative probability %g in %d/%s" p state aname);
       if p > 0.0 then begin
         let cur = Option.value ~default:0.0 (Hashtbl.find_opt merged d) in
         Hashtbl.replace merged d (cur +. p)
       end)
    dist;
  let row =
    Hashtbl.fold (fun d p acc -> (d, p) :: acc) merged []
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  in
  let total = List.fold_left (fun acc (_, p) -> acc +. p) 0.0 row in
  if Float.abs (total -. 1.0) > 1e-9 then
    invalid_arg
      (Printf.sprintf "Mdp: distribution of %d/%s sums to %.12g" state aname total);
  List.map (fun (d, p) -> (d, p /. total)) row

let make ~n ~init ~actions ?(action_rewards = []) ?(labels = [])
    ?state_rewards ?features () =
  if n <= 0 then invalid_arg "Mdp: need at least one state";
  check_state n "initial" init;
  let reward_of s a =
    Option.value ~default:0.0 (List.assoc_opt (s, a) action_rewards)
  in
  let per_state = Array.make n [] in
  List.iter
    (fun (s, aname, dist) ->
       check_state n "action source" s;
       if List.exists (fun a -> a.name = aname) per_state.(s) then
         invalid_arg (Printf.sprintf "Mdp: duplicate action %s in state %d" aname s);
       let dist = normalise_dist ~n ~state:s ~aname dist in
       per_state.(s) <-
         { name = aname; dist; reward = reward_of s aname } :: per_state.(s))
    actions;
  Array.iteri
    (fun s acts ->
       if acts = [] then
         invalid_arg (Printf.sprintf "Mdp: state %d has no actions" s))
    per_state;
  let acts =
    Array.map
      (fun l ->
         Array.of_list (List.sort (fun a b -> String.compare a.name b.name) l))
      per_state
  in
  let label_map =
    List.fold_left
      (fun acc (name, states) ->
         List.iter (check_state n ("label " ^ name)) states;
         let prev = Option.value ~default:[] (Smap.find_opt name acc) in
         Smap.add name (List.sort_uniq Int.compare (states @ prev)) acc)
      Smap.empty labels
  in
  let state_labels = Array.make n [] in
  Smap.iter
    (fun name states ->
       List.iter (fun s -> state_labels.(s) <- name :: state_labels.(s)) states)
    label_map;
  let state_rewards =
    match state_rewards with
    | None -> Array.make n 0.0
    | Some r ->
      if Array.length r <> n then
        invalid_arg "Mdp: state reward array has wrong length";
      Array.copy r
  in
  let features =
    match features with
    | None -> Array.make n [||]
    | Some f ->
      if Array.length f <> n then invalid_arg "Mdp: feature matrix wrong height";
      let k = if n = 0 then 0 else Array.length f.(0) in
      Array.iter
        (fun row ->
           if Array.length row <> k then invalid_arg "Mdp: ragged feature matrix")
        f;
      Array.map Array.copy f
  in
  { n; init; acts; label_map; state_labels; state_rewards; features }

let num_states t = t.n
let init_state t = t.init

let actions_of t s =
  check_state t.n "query" s;
  Array.to_list t.acts.(s)

let action_names t s = List.map (fun a -> a.name) (actions_of t s)

let find_action t s name =
  check_state t.n "query" s;
  Array.find_opt (fun a -> a.name = name) t.acts.(s)

let num_actions_total t =
  Array.fold_left (fun acc a -> acc + Array.length a) 0 t.acts

let labels t = List.map fst (Smap.bindings t.label_map)
let has_label t s name = List.mem name t.state_labels.(s)

let states_with_label t name =
  Option.value ~default:[] (Smap.find_opt name t.label_map)

let state_reward t s = check_state t.n "query" s; t.state_rewards.(s)

let feature_dim t =
  if t.n = 0 then 0 else Array.length t.features.(0)

let features_of t s = check_state t.n "query" s; Array.copy t.features.(s)

let with_state_rewards t r =
  if Array.length r <> t.n then invalid_arg "Mdp.with_state_rewards: wrong length";
  { t with state_rewards = Array.copy r }

type policy = string array

let validate_policy t pi =
  if Array.length pi <> t.n then
    Error
      (Printf.sprintf "policy has length %d, expected %d" (Array.length pi) t.n)
  else begin
    let bad = ref None in
    Array.iteri
      (fun s aname ->
         if !bad = None && find_action t s aname = None then
           bad := Some (s, aname))
      pi;
    match !bad with
    | None -> Ok ()
    | Some (s, aname) ->
      Error (Printf.sprintf "state %d has no action named %S" s aname)
  end

let chosen t pi s =
  match find_action t s pi.(s) with
  | Some a -> a
  | None ->
    invalid_arg
      (Printf.sprintf "Mdp: policy names missing action %S in state %d" pi.(s) s)

let labels_assoc t =
  Smap.bindings t.label_map

let induced_dtmc t pi =
  (match validate_policy t pi with
   | Ok () -> ()
   | Error msg -> invalid_arg ("Mdp.induced_dtmc: " ^ msg));
  let transitions =
    List.concat
      (List.init t.n (fun s ->
           let a = chosen t pi s in
           List.map (fun (d, p) -> (s, d, p)) a.dist))
  in
  let rewards =
    Array.init t.n (fun s -> t.state_rewards.(s) +. (chosen t pi s).reward)
  in
  Dtmc.make ~n:t.n ~init:t.init ~transitions ~labels:(labels_assoc t) ~rewards ()

let uniform_random_dtmc t =
  let transitions =
    List.concat
      (List.init t.n (fun s ->
           let acts = t.acts.(s) in
           let w = 1.0 /. float_of_int (Array.length acts) in
           Array.to_list acts
           |> List.concat_map (fun a ->
               List.map (fun (d, p) -> (s, d, w *. p)) a.dist)))
  in
  Dtmc.make ~n:t.n ~init:t.init ~transitions ~labels:(labels_assoc t)
    ~rewards:t.state_rewards ()

let simulate rng t pi ~max_steps ?(stop = fun _ -> false) () =
  let self_loop a s =
    match a.dist with [ (d, p) ] -> d = s && p > 1.0 -. 1e-12 | _ -> false
  in
  let rec go s steps acc =
    if steps >= max_steps || stop s then (List.rev acc, s)
    else begin
      let a = chosen t pi s in
      if self_loop a s then (List.rev acc, s)
      else begin
        let arr = Array.of_list a.dist in
        let i = Prng.categorical rng (Array.map snd arr) in
        go (fst arr.(i)) (steps + 1) ((s, a.name) :: acc)
      end
    end
  in
  go t.init 0 []

let pp fmt t =
  Format.fprintf fmt "MDP(%d states, init %d)@\n" t.n t.init;
  Array.iteri
    (fun s acts ->
       Array.iter
         (fun a ->
            Format.fprintf fmt "  %d/%s:" s a.name;
            List.iter (fun (d, p) -> Format.fprintf fmt " ->%d:%g" d p) a.dist;
            if a.reward <> 0.0 then Format.fprintf fmt "  r=%g" a.reward;
            Format.fprintf fmt "@\n")
         acts)
    t.acts
