lib/mdp/bisimulation.mli: Dtmc
