lib/mdp/ctmc.ml: Array Dtmc Float Int List Map Option Printf Prng String
