lib/mdp/trace.ml: Float Format List Mdp Option
