lib/mdp/value.ml: Array Float List Mdp Printf
