lib/mdp/mdp.mli: Dtmc Format Prng
