lib/mdp/trace.mli: Format Mdp
