lib/mdp/mdp.ml: Array Dtmc Float Format Hashtbl Int List Map Option Printf Prng String
