lib/mdp/value.mli: Mdp
