lib/mdp/dtmc.ml: Array Float Format Hashtbl Int Linalg List Map Option Printf Prng String
