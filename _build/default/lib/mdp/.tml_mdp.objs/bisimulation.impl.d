lib/mdp/bisimulation.ml: Array Dtmc Float Hashtbl Int List Option Stdlib
