lib/mdp/ctmc.mli: Dtmc Prng
