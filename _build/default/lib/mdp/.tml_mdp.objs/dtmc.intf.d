lib/mdp/dtmc.mli: Format Linalg Prng
