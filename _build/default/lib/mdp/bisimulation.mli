(** Probabilistic bisimulation for DTMCs.

    Two uses in this library:

    - {b Proposition 1} of the paper: a repaired chain [M_Z] (same structure,
      perturbed probabilities) is ε-bisimilar to the original [M], where ε is
      bounded by the largest entry of the perturbation matrix [Z].
      {!epsilon_bound} computes the tightest such ε for two same-structure
      chains, and {!epsilon_bisimilar} checks a given tolerance.

    - Exact (strong) probabilistic bisimulation minimisation
      (Larsen–Skou / Kanellakis–Smolka partition refinement): states are
      equivalent iff they carry the same labels and give equal probability
      to every equivalence class. {!quotient} builds the minimised chain —
      useful before expensive parametric elimination. *)

val epsilon_bound : Dtmc.t -> Dtmc.t -> float
(** The largest absolute difference between corresponding transition
    probabilities (∞ when the two chains have different state counts or
    edge structure). For a Model-Repair output this equals
    [max_ij |Z(i,j)|], the ε of Proposition 1. *)

val epsilon_bisimilar : epsilon:float -> Dtmc.t -> Dtmc.t -> bool
(** [epsilon_bound a b <= epsilon] (and same structure). *)

type partition = int array
(** [partition.(s)] is the block id of state [s]; blocks are numbered
    [0 .. num_blocks - 1]. *)

val bisimulation_classes : Dtmc.t -> partition
(** Coarsest strong probabilistic bisimulation respecting the labelling
    {e and} state rewards. *)

val num_blocks : partition -> int

val quotient : Dtmc.t -> Dtmc.t * partition
(** The quotient chain (one state per class, transition probability =
    summed probability into the class) together with the partition.
    Satisfies the same PCTL formulas as the original. *)
