(** Discrete-time Markov chains with labelled states and rewards.

    States are integers [0 .. num_states - 1]. Rows of the transition matrix
    must sum to 1 (within a small tolerance, re-normalised on construction).
    Labels are the atomic propositions PCTL formulas refer to. *)

type t

val make :
  n:int ->
  init:int ->
  transitions:(int * int * float) list ->
  ?labels:(string * int list) list ->
  ?rewards:float array ->
  unit ->
  t
(** [make ~n ~init ~transitions ()] builds a chain with [n] states.
    [transitions] lists [(src, dst, prob)] triples; duplicate [(src, dst)]
    pairs are summed. Every state must have outgoing probability 1 (within
    [1e-9], after which the row is re-normalised exactly). [rewards] are
    per-state rewards, defaulting to all zeros.
    @raise Invalid_argument on malformed input (bad indices, negative
    probabilities, rows not summing to 1, reward array of wrong length). *)

val num_states : t -> int
val init_state : t -> int

val succ : t -> int -> (int * float) list
(** Outgoing edges [(target, prob)], probabilities strictly positive. *)

val prob : t -> int -> int -> float
(** Transition probability (0 when there is no edge). *)

val pred : t -> int -> int list
(** States with an edge into the given state. *)

val reward : t -> int -> float
val rewards : t -> float array

val labels : t -> string list
(** All label names, sorted. *)

val has_label : t -> int -> string -> bool

val states_with_label : t -> string -> int list
(** Empty when the label is unknown — PCTL treats unknown propositions as
    false everywhere. *)

val is_absorbing : t -> int -> bool
(** True when the state's only transition is the self-loop with
    probability 1. *)

val transition_matrix : t -> Linalg.Mat.t

val raw_transitions : t -> (int * int * float) list
(** All edges as [(src, dst, prob)] triples, suitable for feeding back into
    {!make} or {!with_transitions} after perturbation. *)

val with_rewards : t -> float array -> t
val with_transitions : t -> (int * int * float) list -> t
(** Rebuild with the same labels/rewards but new transitions. *)

val simulate :
  Prng.t -> t -> max_steps:int -> ?stop:(int -> bool) -> unit -> int list
(** One sampled path from the initial state: list of visited states,
    beginning with [init_state]. Stops after [max_steps] transitions or upon
    entering a state satisfying [stop]. *)

val pp : Format.formatter -> t -> unit
