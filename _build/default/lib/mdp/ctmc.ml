module Smap = Map.Make (String)

type t = {
  n : int;
  init : int;
  rows : (int * float) array array; (* rows.(s) = outgoing (target, rate) *)
  exit : float array;
  label_map : int list Smap.t;
}

let check_state n what s =
  if s < 0 || s >= n then
    invalid_arg (Printf.sprintf "Ctmc: %s state %d out of range [0,%d)" what s n)

let make ~n ~init ~rates ?(labels = []) () =
  if n <= 0 then invalid_arg "Ctmc: need at least one state";
  check_state n "initial" init;
  let tbl = Array.make n [] in
  List.iter
    (fun (src, dst, r) ->
       check_state n "source" src;
       check_state n "target" dst;
       if src = dst then
         invalid_arg (Printf.sprintf "Ctmc: self-rate on state %d" src);
       if r <= 0.0 then
         invalid_arg (Printf.sprintf "Ctmc: non-positive rate %g on %d->%d" r src dst);
       if List.mem_assoc dst tbl.(src) then
         invalid_arg (Printf.sprintf "Ctmc: duplicate rate %d->%d" src dst);
       tbl.(src) <- (dst, r) :: tbl.(src))
    rates;
  let rows =
    Array.map
      (fun l ->
         Array.of_list (List.sort (fun (a, _) (b, _) -> Int.compare a b) l))
      tbl
  in
  let exit =
    Array.map (Array.fold_left (fun acc (_, r) -> acc +. r) 0.0) rows
  in
  let label_map =
    List.fold_left
      (fun acc (name, states) ->
         List.iter (check_state n ("label " ^ name)) states;
         let prev = Option.value ~default:[] (Smap.find_opt name acc) in
         Smap.add name (List.sort_uniq Int.compare (states @ prev)) acc)
      Smap.empty labels
  in
  { n; init; rows; exit; label_map }

let num_states t = t.n
let init_state t = t.init
let exit_rate t s = check_state t.n "query" s; t.exit.(s)

let rate t s d =
  check_state t.n "query" s;
  check_state t.n "query" d;
  match Array.find_opt (fun (d', _) -> d' = d) t.rows.(s) with
  | Some (_, r) -> r
  | None -> 0.0

let is_absorbing t s = exit_rate t s = 0.0

let states_with_label t name =
  Option.value ~default:[] (Smap.find_opt name t.label_map)

let labels_assoc t = Smap.bindings t.label_map

let embedded t =
  let transitions =
    List.concat
      (List.init t.n (fun s ->
           if t.exit.(s) = 0.0 then [ (s, s, 1.0) ]
           else
             Array.to_list
               (Array.map (fun (d, r) -> (s, d, r /. t.exit.(s))) t.rows.(s))))
  in
  Dtmc.make ~n:t.n ~init:t.init ~transitions ~labels:(labels_assoc t) ()

let uniformized ?rate:q t =
  let max_exit = Array.fold_left Float.max 0.0 t.exit in
  let q =
    match q with
    | Some q ->
      if q < max_exit then
        invalid_arg
          (Printf.sprintf
             "Ctmc.uniformized: rate %g below the maximal exit rate %g" q max_exit);
      q
    | None -> if max_exit = 0.0 then 1.0 else 1.05 *. max_exit
  in
  let transitions =
    List.concat
      (List.init t.n (fun s ->
           let self = 1.0 -. (t.exit.(s) /. q) in
           let moves =
             Array.to_list (Array.map (fun (d, r) -> (s, d, r /. q)) t.rows.(s))
           in
           if self > 0.0 then (s, s, self) :: moves else moves))
  in
  (q, Dtmc.make ~n:t.n ~init:t.init ~transitions ~labels:(labels_assoc t) ())

let transient_distribution ?(epsilon = 1e-12) t ~time =
  if time < 0.0 then invalid_arg "Ctmc.transient_distribution: negative time";
  let q, chain = uniformized t in
  let lambda = q *. time in
  (* iterate the uniformised chain, accumulating Poisson(lambda) weights *)
  let dist = Array.make t.n 0.0 in
  let cur = Array.make t.n 0.0 in
  cur.(t.init) <- 1.0;
  let poisson = ref (exp (-.lambda)) in
  let accumulated = ref 0.0 in
  let k = ref 0 in
  (* guard: for large lambda, exp(-lambda) underflows; iterate far enough
     that the remaining mass is < epsilon using the running sum *)
  let max_k = int_of_float (lambda +. (10.0 *. sqrt (lambda +. 10.0)) +. 50.0) in
  while !accumulated < 1.0 -. epsilon && !k <= max_k do
    Array.iteri (fun s p -> dist.(s) <- dist.(s) +. (!poisson *. p)) cur;
    accumulated := !accumulated +. !poisson;
    (* advance chain one step *)
    let next = Array.make t.n 0.0 in
    Array.iteri
      (fun s p ->
         if p > 0.0 then
           List.iter
             (fun (d, pr) -> next.(d) <- next.(d) +. (p *. pr))
             (Dtmc.succ chain s))
      cur;
    Array.blit next 0 cur 0 t.n;
    incr k;
    poisson := !poisson *. lambda /. float_of_int !k
  done;
  (* renormalise away the truncated tail *)
  let total = Array.fold_left ( +. ) 0.0 dist in
  if total > 0.0 then Array.map (fun p -> p /. total) dist else dist

let time_bounded_reachability ?epsilon t ~target ~time =
  List.iter (check_state t.n "target") target;
  if target = [] then invalid_arg "Ctmc.time_bounded_reachability: empty target";
  let is_target = Array.make t.n false in
  List.iter (fun s -> is_target.(s) <- true) target;
  if is_target.(t.init) then 1.0
  else begin
    (* make the target absorbing, then ask for its transient mass *)
    let rates =
      List.concat
        (List.init t.n (fun s ->
             if is_target.(s) then []
             else Array.to_list (Array.map (fun (d, r) -> (s, d, r)) t.rows.(s))))
    in
    let absorbed = make ~n:t.n ~init:t.init ~rates () in
    let dist = transient_distribution ?epsilon absorbed ~time in
    Array.fold_left ( +. ) 0.0
      (Array.mapi (fun s p -> if is_target.(s) then p else 0.0) dist)
  end

let simulate rng t ~max_time =
  if max_time <= 0.0 then invalid_arg "Ctmc.simulate: non-positive horizon";
  let rec go s elapsed acc =
    if is_absorbing t s then List.rev ((s, Float.infinity) :: acc)
    else begin
      let rate = t.exit.(s) in
      let sojourn = -.log (1.0 -. Prng.float rng) /. rate in
      if elapsed +. sojourn >= max_time then
        List.rev ((s, max_time -. elapsed) :: acc)
      else begin
        let row = t.rows.(s) in
        let i = Prng.categorical rng (Array.map snd row) in
        go (fst row.(i)) (elapsed +. sojourn) ((s, sojourn) :: acc)
      end
    end
  in
  go t.init 0.0 []
