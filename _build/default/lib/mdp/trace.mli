(** Finite state/action trajectories — the data that models are learned
    from, and the objects the paper's trajectory rules (§IV-C) judge. *)

type step = { state : int; action : string }

type t = { steps : step list; final : int }
(** A trajectory [(s_0, a_0) (s_1, a_1) ... (s_{k-1}, a_{k-1}) s_k]. *)

val make : (int * string) list -> int -> t
val of_states : int list -> t
(** A pure state path (every action named [""]).
    @raise Invalid_argument on an empty list. *)

val length : t -> int
(** Number of transitions. *)

val states : t -> int list
(** All visited states in order, including the final one. *)

val state_actions : t -> (int * string) list
val visits_state : t -> int -> bool
val visits_action : t -> string -> bool
val nth_state : t -> int -> int option
val nth_action : t -> int -> string option

val log_probability : Mdp.t -> t -> float
(** Σ log P(s' | s, a) over the trajectory; [neg_infinity] when a step is
    impossible in the given MDP. *)

val pp : Format.formatter -> t -> unit
