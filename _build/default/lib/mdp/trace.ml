type step = { state : int; action : string }
type t = { steps : step list; final : int }

let make pairs final =
  { steps = List.map (fun (state, action) -> { state; action }) pairs; final }

let of_states = function
  | [] -> invalid_arg "Trace.of_states: empty path"
  | states ->
    let rec go acc = function
      | [ last ] -> { steps = List.rev acc; final = last }
      | s :: rest -> go ({ state = s; action = "" } :: acc) rest
      | [] -> assert false
    in
    go [] states

let length t = List.length t.steps
let states t = List.map (fun s -> s.state) t.steps @ [ t.final ]
let state_actions t = List.map (fun s -> (s.state, s.action)) t.steps
let visits_state t s = List.mem s (states t)
let visits_action t a = List.exists (fun st -> st.action = a) t.steps
let nth_state t i = List.nth_opt (states t) i
let nth_action t i = Option.map (fun s -> s.action) (List.nth_opt t.steps i)

let log_probability m t =
  let rec go acc = function
    | [] -> acc
    | [ last ] -> step_prob acc last.state last.action t.final
    | a :: (b :: _ as rest) -> go (step_prob acc a.state a.action b.state) rest
  and step_prob acc s a d =
    match Mdp.find_action m s a with
    | None -> Float.neg_infinity
    | Some act ->
      (match List.assoc_opt d act.Mdp.dist with
       | Some p when p > 0.0 -> acc +. log p
       | _ -> Float.neg_infinity)
  in
  go 0.0 t.steps

let pp fmt t =
  List.iter
    (fun s ->
       if s.action = "" then Format.fprintf fmt "%d " s.state
       else Format.fprintf fmt "(%d,%s) " s.state s.action)
    t.steps;
  Format.fprintf fmt "%d" t.final
