(** Markov decision processes with labelled states, state features and
    rewards, in the style of the paper's tuple (S, A, R, P, L).

    States are integers [0 .. num_states - 1]. Each state has one or more
    named actions, each with a probability distribution over successor
    states. Rewards can live on states and on (state, action) pairs.
    States may additionally carry a feature vector — the paper's [f_s] —
    used by inverse reinforcement learning (reward = θᵀ f). *)

type t

type action = {
  name : string;
  dist : (int * float) list; (** (target, prob), probabilities sum to 1 *)
  reward : float; (** action reward, added to the state reward *)
}

val make :
  n:int ->
  init:int ->
  actions:(int * string * (int * float) list) list ->
  ?action_rewards:((int * string) * float) list ->
  ?labels:(string * int list) list ->
  ?state_rewards:float array ->
  ?features:float array array ->
  unit ->
  t
(** [actions] lists [(state, action_name, distribution)]. Every state needs
    at least one action; action names must be unique per state; each
    distribution must sum to 1 (within [1e-9]).
    [features] is an [n × k] matrix of per-state feature vectors.
    @raise Invalid_argument on malformed input. *)

(** {1 Structure} *)

val num_states : t -> int
val init_state : t -> int
val actions_of : t -> int -> action list
val action_names : t -> int -> string list
val find_action : t -> int -> string -> action option
val num_actions_total : t -> int

val labels : t -> string list
val has_label : t -> int -> string -> bool
val states_with_label : t -> string -> int list

val state_reward : t -> int -> float
val feature_dim : t -> int
val features_of : t -> int -> float array
(** Zero-length array when the MDP was built without features. *)

val with_state_rewards : t -> float array -> t
(** Replace per-state rewards (used by reward repair / IRL). *)

(** {1 Policies} *)

type policy = string array
(** [policy.(s)] is the action name chosen in state [s] (deterministic
    memoryless policies, as in the paper's case studies). *)

val validate_policy : t -> policy -> (unit, string) result

val induced_dtmc : t -> policy -> Dtmc.t
(** The Markov chain obtained by fixing the policy. State rewards of the
    chain are [state_reward s + action_reward (s, policy s)].
    @raise Invalid_argument if the policy names a missing action. *)

val uniform_random_dtmc : t -> Dtmc.t
(** The chain that picks among available actions uniformly at random
    (the "unresolved" behaviour used when learning from undirected traces). *)

(** {1 Simulation} *)

val simulate :
  Prng.t ->
  t ->
  policy ->
  max_steps:int ->
  ?stop:(int -> bool) ->
  unit ->
  (int * string) list * int
(** Sampled trajectory [(state, action) list, final_state] under the policy
    from the initial state. Stops at [max_steps], at a [stop] state, or in a
    state whose chosen action self-loops with probability 1. *)

val pp : Format.formatter -> t -> unit
