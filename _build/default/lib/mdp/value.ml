type q_table = (string * float) list array

let check_gamma gamma =
  if gamma <= 0.0 || gamma > 1.0 then
    invalid_arg (Printf.sprintf "Value: gamma %g outside (0, 1]" gamma)

let q_of_action ~gamma m v s (a : Mdp.action) =
  let future =
    List.fold_left (fun acc (d, p) -> acc +. (p *. v.(d))) 0.0 a.Mdp.dist
  in
  Mdp.state_reward m s +. a.Mdp.reward +. (gamma *. future)

let value_iteration ?(max_iter = 100_000) ?(tol = 1e-10) ~gamma m =
  check_gamma gamma;
  let n = Mdp.num_states m in
  let v = Array.make n 0.0 in
  let rec iterate k =
    if k >= max_iter then ()
    else begin
      let delta = ref 0.0 in
      for s = 0 to n - 1 do
        let best =
          List.fold_left
            (fun acc a -> Float.max acc (q_of_action ~gamma m v s a))
            Float.neg_infinity (Mdp.actions_of m s)
        in
        delta := Float.max !delta (Float.abs (best -. v.(s)));
        v.(s) <- best
      done;
      if !delta >= tol then iterate (k + 1)
    end
  in
  iterate 0;
  v

let q_from_values ~gamma m v =
  check_gamma gamma;
  Array.init (Mdp.num_states m) (fun s ->
      List.map
        (fun (a : Mdp.action) -> (a.Mdp.name, q_of_action ~gamma m v s a))
        (Mdp.actions_of m s))

let q_values ?max_iter ?tol ~gamma m =
  q_from_values ~gamma m (value_iteration ?max_iter ?tol ~gamma m)

let greedy_policy m q =
  Array.init (Mdp.num_states m) (fun s ->
      match q.(s) with
      | [] -> invalid_arg "Value.greedy_policy: state without actions"
      | (first, fq) :: rest ->
        let best, _ =
          List.fold_left
            (fun (bn, bq) (n, v) -> if v > bq then (n, v) else (bn, bq))
            (first, fq) rest
        in
        best)

let optimal_policy ?max_iter ?tol ~gamma m =
  let v = value_iteration ?max_iter ?tol ~gamma m in
  (greedy_policy m (q_from_values ~gamma m v), v)

let rec policy_iteration_from ?max_iter ?tol ~gamma m pi rounds =
  let v = policy_evaluation ?max_iter ?tol ~gamma m pi in
  let pi' = greedy_policy m (q_from_values ~gamma m v) in
  if pi' = pi then (pi, v, rounds)
  else policy_iteration_from ?max_iter ?tol ~gamma m pi' (rounds + 1)

and policy_iteration ?max_iter ?tol ~gamma m =
  check_gamma gamma;
  (* start from the name-first policy (deterministic) *)
  let pi0 =
    Array.init (Mdp.num_states m) (fun s ->
        match Mdp.actions_of m s with
        | a :: _ -> a.Mdp.name
        | [] -> invalid_arg "Value.policy_iteration: state without actions")
  in
  policy_iteration_from ?max_iter ?tol ~gamma m pi0 0

and policy_evaluation ?(max_iter = 100_000) ?(tol = 1e-10) ~gamma m pi =
  check_gamma gamma;
  (match Mdp.validate_policy m pi with
   | Ok () -> ()
   | Error msg -> invalid_arg ("Value.policy_evaluation: " ^ msg));
  let n = Mdp.num_states m in
  let v = Array.make n 0.0 in
  let rec iterate k =
    if k >= max_iter then ()
    else begin
      let delta = ref 0.0 in
      for s = 0 to n - 1 do
        match Mdp.find_action m s pi.(s) with
        | None -> assert false
        | Some a ->
          let nv = q_of_action ~gamma m v s a in
          delta := Float.max !delta (Float.abs (nv -. v.(s)));
          v.(s) <- nv
      done;
      if !delta >= tol then iterate (k + 1)
    end
  in
  iterate 0;
  v
