module Smap = Map.Make (String)

type t = {
  n : int;
  init : int;
  rows : (int * float) array array; (* rows.(s) = outgoing (target, prob) *)
  preds : int list array;
  label_map : int list Smap.t; (* label -> sorted states *)
  state_labels : string list array;
  rewards : float array;
}

let check_state n what s =
  if s < 0 || s >= n then
    invalid_arg (Printf.sprintf "Dtmc: %s state %d out of range [0,%d)" what s n)

let build_rows ~n transitions =
  let tbl = Array.make n [] in
  List.iter
    (fun (src, dst, p) ->
       check_state n "source" src;
       check_state n "target" dst;
       if p < 0.0 then
         invalid_arg (Printf.sprintf "Dtmc: negative probability %g on %d->%d" p src dst);
       if p > 0.0 then tbl.(src) <- (dst, p) :: tbl.(src))
    transitions;
  Array.mapi
    (fun s entries ->
       (* merge duplicate targets *)
       let merged = Hashtbl.create 8 in
       List.iter
         (fun (d, p) ->
            let cur = Option.value ~default:0.0 (Hashtbl.find_opt merged d) in
            Hashtbl.replace merged d (cur +. p))
         entries;
       let row =
         Hashtbl.fold (fun d p acc -> (d, p) :: acc) merged []
         |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
       in
       let total = List.fold_left (fun acc (_, p) -> acc +. p) 0.0 row in
       if Float.abs (total -. 1.0) > 1e-9 then
         invalid_arg
           (Printf.sprintf "Dtmc: row %d sums to %.12g, expected 1" s total);
       (* renormalise exactly so downstream numeric code sees clean rows *)
       Array.of_list (List.map (fun (d, p) -> (d, p /. total)) row))
    tbl

let make ~n ~init ~transitions ?(labels = []) ?rewards () =
  if n <= 0 then invalid_arg "Dtmc: need at least one state";
  check_state n "initial" init;
  let rows = build_rows ~n transitions in
  let preds = Array.make n [] in
  Array.iteri
    (fun s row -> Array.iter (fun (d, _) -> preds.(d) <- s :: preds.(d)) row)
    rows;
  let preds = Array.map (fun l -> List.sort_uniq Int.compare l) preds in
  let label_map =
    List.fold_left
      (fun acc (name, states) ->
         List.iter (check_state n ("label " ^ name)) states;
         let prev = Option.value ~default:[] (Smap.find_opt name acc) in
         Smap.add name (List.sort_uniq Int.compare (states @ prev)) acc)
      Smap.empty labels
  in
  let state_labels = Array.make n [] in
  Smap.iter
    (fun name states ->
       List.iter (fun s -> state_labels.(s) <- name :: state_labels.(s)) states)
    label_map;
  let rewards =
    match rewards with
    | None -> Array.make n 0.0
    | Some r ->
      if Array.length r <> n then
        invalid_arg
          (Printf.sprintf "Dtmc: reward array has length %d, expected %d"
             (Array.length r) n);
      Array.copy r
  in
  { n; init; rows; preds; label_map; state_labels; rewards }

let num_states t = t.n
let init_state t = t.init
let succ t s = check_state t.n "query" s; Array.to_list t.rows.(s)

let prob t s d =
  check_state t.n "query" s;
  check_state t.n "query" d;
  match Array.find_opt (fun (d', _) -> d' = d) t.rows.(s) with
  | Some (_, p) -> p
  | None -> 0.0

let pred t s = check_state t.n "query" s; t.preds.(s)
let reward t s = check_state t.n "query" s; t.rewards.(s)
let rewards t = Array.copy t.rewards
let labels t = List.map fst (Smap.bindings t.label_map)
let has_label t s name = List.mem name t.state_labels.(s)

let states_with_label t name =
  Option.value ~default:[] (Smap.find_opt name t.label_map)

let is_absorbing t s =
  match t.rows.(s) with
  | [| (d, p) |] -> d = s && Float.abs (p -. 1.0) < 1e-12
  | _ -> false

let transition_matrix t =
  let m = Linalg.Mat.make t.n t.n 0.0 in
  Array.iteri
    (fun s row -> Array.iter (fun (d, p) -> Linalg.Mat.set m s d p) row)
    t.rows;
  m

let raw_transitions t =
  Array.to_list
    (Array.mapi
       (fun s row -> Array.to_list (Array.map (fun (d, p) -> (s, d, p)) row))
       t.rows)
  |> List.concat

let with_rewards t r =
  if Array.length r <> t.n then invalid_arg "Dtmc.with_rewards: wrong length";
  { t with rewards = Array.copy r }

let with_transitions t transitions =
  let rows = build_rows ~n:t.n transitions in
  let preds = Array.make t.n [] in
  Array.iteri
    (fun s row -> Array.iter (fun (d, _) -> preds.(d) <- s :: preds.(d)) row)
    rows;
  { t with rows; preds = Array.map (List.sort_uniq Int.compare) preds }

let simulate rng t ~max_steps ?(stop = fun _ -> false) () =
  let rec go s steps acc =
    if steps >= max_steps || stop s || is_absorbing t s then List.rev (s :: acc)
    else begin
      let row = t.rows.(s) in
      let weights = Array.map snd row in
      let i = Prng.categorical rng weights in
      go (fst row.(i)) (steps + 1) (s :: acc)
    end
  in
  go t.init 0 []

let pp fmt t =
  Format.fprintf fmt "DTMC(%d states, init %d)@\n" t.n t.init;
  Array.iteri
    (fun s row ->
       Format.fprintf fmt "  %d:" s;
       Array.iter (fun (d, p) -> Format.fprintf fmt " ->%d:%g" d p) row;
       let ls = t.state_labels.(s) in
       if ls <> [] then Format.fprintf fmt "  {%s}" (String.concat "," ls);
       if t.rewards.(s) <> 0.0 then Format.fprintf fmt "  r=%g" t.rewards.(s);
       Format.fprintf fmt "@\n")
    t.rows
