let epsilon_bound a b =
  let n = Dtmc.num_states a in
  if Dtmc.num_states b <> n then Float.infinity
  else begin
    let worst = ref 0.0 in
    (try
       for s = 0 to n - 1 do
         let ra = Dtmc.succ a s and rb = Dtmc.succ b s in
         if List.map fst ra <> List.map fst rb then raise Exit;
         List.iter2
           (fun (_, pa) (_, pb) ->
              worst := Float.max !worst (Float.abs (pa -. pb)))
           ra rb
       done;
       !worst
     with Exit -> Float.infinity)
  end

let epsilon_bisimilar ~epsilon a b = epsilon_bound a b <= epsilon

type partition = int array

let num_blocks (p : partition) =
  Array.fold_left (fun acc b -> Stdlib.max acc (b + 1)) 0 p

(* Partition refinement: start from (labels, reward)-equality, then split
   blocks whose members give different probability vectors over current
   blocks, until stable.  O(iterations * n * edges) — fine at our sizes. *)
let bisimulation_classes d =
  let n = Dtmc.num_states d in
  let signature_init s =
    (List.sort compare
       (List.filter (fun l -> Dtmc.has_label d s l) (Dtmc.labels d)),
     Dtmc.reward d s)
  in
  let block = Array.make n 0 in
  (* initial blocks by (labels, reward) *)
  let tbl = Hashtbl.create 16 in
  let next = ref 0 in
  for s = 0 to n - 1 do
    let key = signature_init s in
    match Hashtbl.find_opt tbl key with
    | Some b -> block.(s) <- b
    | None ->
      Hashtbl.add tbl key !next;
      block.(s) <- !next;
      incr next
  done;
  let changed = ref true in
  while !changed do
    changed := false;
    (* refine: signature of s = (current block, sorted probability mass per
       successor block) *)
    let sig_tbl = Hashtbl.create 16 in
    let next = ref 0 in
    let new_block = Array.make n 0 in
    for s = 0 to n - 1 do
      let mass = Hashtbl.create 4 in
      List.iter
        (fun (t, p) ->
           let b = block.(t) in
           Hashtbl.replace mass b
             (Option.value ~default:0.0 (Hashtbl.find_opt mass b) +. p))
        (Dtmc.succ d s);
      let profile =
        Hashtbl.fold (fun b p acc -> (b, p) :: acc) mass []
        |> List.sort compare
        (* round to kill float noise from summation order *)
        |> List.map (fun (b, p) -> (b, Float.round (p *. 1e12)))
      in
      let key = (block.(s), profile) in
      match Hashtbl.find_opt sig_tbl key with
      | Some b -> new_block.(s) <- b
      | None ->
        Hashtbl.add sig_tbl key !next;
        new_block.(s) <- !next;
        incr next
    done;
    if new_block <> block then begin
      Array.blit new_block 0 block 0 n;
      changed := true
    end
  done;
  (* renumber blocks densely in order of first occurrence *)
  let remap = Hashtbl.create 16 in
  let next = ref 0 in
  Array.map
    (fun b ->
       match Hashtbl.find_opt remap b with
       | Some b' -> b'
       | None ->
         Hashtbl.add remap b !next;
         let b' = !next in
         incr next;
         b')
    block

let quotient d =
  let part = bisimulation_classes d in
  let k = num_blocks part in
  let n = Dtmc.num_states d in
  (* representative state per block (first occurrence) *)
  let rep = Array.make k (-1) in
  for s = n - 1 downto 0 do
    rep.(part.(s)) <- s
  done;
  let transitions =
    List.concat
      (List.init k (fun b ->
           let s = rep.(b) in
           let mass = Hashtbl.create 4 in
           List.iter
             (fun (t, p) ->
                let bt = part.(t) in
                Hashtbl.replace mass bt
                  (Option.value ~default:0.0 (Hashtbl.find_opt mass bt) +. p))
             (Dtmc.succ d s);
           Hashtbl.fold (fun bt p acc -> (b, bt, p) :: acc) mass []))
  in
  let labels =
    List.map
      (fun l ->
         ( l,
           Dtmc.states_with_label d l
           |> List.map (fun s -> part.(s))
           |> List.sort_uniq Int.compare ))
      (Dtmc.labels d)
  in
  let rewards = Array.init k (fun b -> Dtmc.reward d rep.(b)) in
  let q =
    Dtmc.make ~n:k
      ~init:(part.(Dtmc.init_state d))
      ~transitions ~labels ~rewards ()
  in
  (q, part)
