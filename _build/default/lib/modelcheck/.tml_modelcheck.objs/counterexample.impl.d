lib/modelcheck/counterexample.ml: Array Check_dtmc Dtmc List Pctl
