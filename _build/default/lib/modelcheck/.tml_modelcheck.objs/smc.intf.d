lib/modelcheck/smc.mli: Dtmc Pctl Prng
