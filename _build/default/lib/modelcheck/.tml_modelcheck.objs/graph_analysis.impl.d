lib/modelcheck/graph_analysis.ml: Array Dtmc List Queue
