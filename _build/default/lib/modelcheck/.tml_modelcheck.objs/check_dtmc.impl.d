lib/modelcheck/check_dtmc.ml: Array Dtmc Float Graph_analysis Linalg List Pctl
