lib/modelcheck/steady_state.mli: Dtmc Pctl
