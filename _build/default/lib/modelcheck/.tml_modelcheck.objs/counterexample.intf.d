lib/modelcheck/counterexample.mli: Dtmc Pctl
