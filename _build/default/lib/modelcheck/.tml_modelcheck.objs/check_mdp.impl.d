lib/modelcheck/check_mdp.ml: Array Float List Mdp Pctl
