lib/modelcheck/check_mdp.mli: Mdp Pctl
