lib/modelcheck/steady_state.ml: Array Check_dtmc Dtmc Hashtbl Int Linalg List Pctl
