lib/modelcheck/graph_analysis.mli: Dtmc
