lib/modelcheck/smc.ml: Array Dtmc Pctl
