lib/modelcheck/check_dtmc.mli: Dtmc Pctl
