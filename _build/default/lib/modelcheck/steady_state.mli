(** Long-run (steady-state) analysis of DTMCs.

    For an irreducible chain the stationary distribution π solves
    [π P = π, Σ π = 1]; for general chains the long-run distribution is
    computed per bottom strongly-connected component (BSCC), weighted by
    the probability of absorption into each BSCC from the initial state.
    This backs PRISM-style [S ~ b \[φ\]] steady-state queries. *)

val bsccs : Dtmc.t -> int list list
(** Bottom strongly-connected components (Tarjan + bottom filter), each
    sorted, in discovery order. *)

val stationary_of_irreducible : Dtmc.t -> int list -> float array
(** The stationary distribution of a single BSCC (entries indexed by the
    full state space; zero outside the component).
    @raise Invalid_argument when the given states do not form a closed
    component. *)

val long_run_distribution : Dtmc.t -> float array
(** Long-run fraction of time in each state from the initial state:
    [Σ_B Pr(absorb into B) · π_B]. *)

val long_run_probability : Dtmc.t -> Pctl.state_formula -> float
(** Long-run probability of being in a [φ]-state (propositional [φ]) —
    the value of [S \[φ\]]. @raise Pquery-style [Invalid_argument] on
    probabilistic subformulas. *)
