(** Graph precomputations for probabilistic model checking
    (the prob0 / prob1 analyses of Baier–Katoen, ch. 10). *)

val backward_reachable :
  n:int -> pred:(int -> int list) -> ?allowed:bool array -> bool array -> bool array
(** [backward_reachable ~n ~pred from] marks every state from which some
    [from]-state is reachable going forward (computed by BFS over
    predecessors). With [allowed], intermediate states outside [allowed] are
    not traversed — a [from]-state is always marked, but paths may only pass
    through allowed states. *)

val prob0 :
  dtmc:Dtmc.t -> phi1:bool array -> phi2:bool array -> bool array
(** States where [Pr(φ1 U φ2) = 0]: those that cannot reach a [φ2]-state via
    [φ1]-states. *)

val prob1 :
  dtmc:Dtmc.t -> phi1:bool array -> phi2:bool array -> bool array
(** States where [Pr(φ1 U φ2) = 1]. *)

val forward_reachable : Dtmc.t -> bool array
(** States reachable from the initial state. *)
