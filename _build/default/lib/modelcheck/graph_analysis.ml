let backward_reachable ~n ~pred ?allowed from =
  if Array.length from <> n then
    invalid_arg "Graph_analysis.backward_reachable: bad dimension";
  let mark = Array.make n false in
  let queue = Queue.create () in
  Array.iteri
    (fun s b ->
       if b then begin
         mark.(s) <- true;
         Queue.add s queue
       end)
    from;
  let allowed_state s =
    match allowed with None -> true | Some a -> a.(s)
  in
  while not (Queue.is_empty queue) do
    let s = Queue.pop queue in
    List.iter
      (fun p ->
         if (not mark.(p)) && allowed_state p then begin
           mark.(p) <- true;
           Queue.add p queue
         end)
      (pred s)
  done;
  mark

let prob0 ~dtmc ~phi1 ~phi2 =
  let n = Dtmc.num_states dtmc in
  (* can_reach = states with Pr(φ1 U φ2) > 0: reach φ2 via φ1-states *)
  let allowed = Array.init n (fun s -> phi1.(s) && not phi2.(s)) in
  let can_reach =
    backward_reachable ~n ~pred:(Dtmc.pred dtmc) ~allowed phi2
  in
  Array.init n (fun s -> not can_reach.(s))

let prob1 ~dtmc ~phi1 ~phi2 =
  let n = Dtmc.num_states dtmc in
  let s0 = prob0 ~dtmc ~phi1 ~phi2 in
  (* A state fails to have probability 1 iff it can reach a prob0 state
     while staying inside φ1 ∧ ¬φ2. *)
  let allowed = Array.init n (fun s -> phi1.(s) && not phi2.(s)) in
  let bad = backward_reachable ~n ~pred:(Dtmc.pred dtmc) ~allowed s0 in
  Array.init n (fun s -> not bad.(s))

let forward_reachable dtmc =
  let n = Dtmc.num_states dtmc in
  let mark = Array.make n false in
  let queue = Queue.create () in
  mark.(Dtmc.init_state dtmc) <- true;
  Queue.add (Dtmc.init_state dtmc) queue;
  while not (Queue.is_empty queue) do
    let s = Queue.pop queue in
    List.iter
      (fun (d, _) ->
         if not mark.(d) then begin
           mark.(d) <- true;
           Queue.add d queue
         end)
      (Dtmc.succ dtmc s)
  done;
  mark
