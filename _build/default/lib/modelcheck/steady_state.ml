(* Tarjan's SCC algorithm, then keep components with no outgoing edges. *)
let sccs dtmc =
  let n = Dtmc.num_states dtmc in
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = ref [] in
  let counter = ref 0 in
  let components = ref [] in
  let rec strongconnect v =
    index.(v) <- !counter;
    lowlink.(v) <- !counter;
    incr counter;
    stack := v :: !stack;
    on_stack.(v) <- true;
    List.iter
      (fun (w, _) ->
         if index.(w) = -1 then begin
           strongconnect w;
           lowlink.(v) <- min lowlink.(v) lowlink.(w)
         end
         else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w))
      (Dtmc.succ dtmc v);
    if lowlink.(v) = index.(v) then begin
      let rec pop acc =
        match !stack with
        | w :: rest ->
          stack := rest;
          on_stack.(w) <- false;
          if w = v then w :: acc else pop (w :: acc)
        | [] -> acc
      in
      components := List.sort Int.compare (pop []) :: !components
    end
  in
  for v = 0 to n - 1 do
    if index.(v) = -1 then strongconnect v
  done;
  List.rev !components

let bsccs dtmc =
  let components = sccs dtmc in
  List.filter
    (fun comp ->
       List.for_all
         (fun s ->
            List.for_all (fun (t, _) -> List.mem t comp) (Dtmc.succ dtmc s))
         comp)
    components

let stationary_of_irreducible dtmc comp =
  let closed =
    List.for_all
      (fun s -> List.for_all (fun (t, _) -> List.mem t comp) (Dtmc.succ dtmc s))
      comp
  in
  if not closed then
    invalid_arg "Steady_state: the given states are not a closed component";
  let k = List.length comp in
  let arr = Array.of_list comp in
  let index = Hashtbl.create k in
  Array.iteri (fun i s -> Hashtbl.add index s i) arr;
  (* Solve (P^T - I) π = 0 with Σ π = 1: replace the last equation by the
     normalisation row. *)
  let a = Linalg.Mat.make k k 0.0 in
  for j = 0 to k - 1 do
    (* column j: contributions into state arr.(j) *)
    List.iter
      (fun (t, p) ->
         match Hashtbl.find_opt index t with
         | Some ti -> Linalg.Mat.set a ti j (Linalg.Mat.get a ti j +. p)
         | None -> assert false (* closedness checked above *))
      (Dtmc.succ dtmc arr.(j));
    Linalg.Mat.set a j j (Linalg.Mat.get a j j -. 1.0)
  done;
  (* overwrite the last row with 1s *)
  for j = 0 to k - 1 do
    Linalg.Mat.set a (k - 1) j 1.0
  done;
  let b = Array.init k (fun i -> if i = k - 1 then 1.0 else 0.0) in
  (* The matrix built column-wise above is (P^T - I) acting on π as a
     column vector: entry (i, j) must be P(j -> i) - δ. Rebuild correctly:
     we filled a.(ti).(j) += P(arr.(j) -> arr.(ti)) which is exactly
     (P^T).(ti).(j). Good. *)
  let pi = Linalg.lu_solve a b in
  let full = Array.make (Dtmc.num_states dtmc) 0.0 in
  Array.iteri (fun i s -> full.(s) <- pi.(i)) arr;
  full

let long_run_distribution dtmc =
  let n = Dtmc.num_states dtmc in
  let components = bsccs dtmc in
  let result = Array.make n 0.0 in
  List.iter
    (fun comp ->
       let mask = Array.make n false in
       List.iter (fun s -> mask.(s) <- true) comp;
       let probs = Check_dtmc.reach_probabilities dtmc mask in
       let weight = probs.(Dtmc.init_state dtmc) in
       if weight > 0.0 then begin
         let pi = stationary_of_irreducible dtmc comp in
         Array.iteri (fun s p -> result.(s) <- result.(s) +. (weight *. p)) pi
       end)
    components;
  result

let long_run_probability dtmc phi =
  let n = Dtmc.num_states dtmc in
  let rec sat s (f : Pctl.state_formula) =
    match f with
    | True -> true
    | False -> false
    | Prop p -> Dtmc.has_label dtmc s p
    | Not g -> not (sat s g)
    | And (a, b) -> sat s a && sat s b
    | Or (a, b) -> sat s a || sat s b
    | Implies (a, b) -> (not (sat s a)) || sat s b
    | Prob _ | Reward _ ->
      invalid_arg "Steady_state: nested P/R operators are not supported"
  in
  let dist = long_run_distribution dtmc in
  let acc = ref 0.0 in
  for s = 0 to n - 1 do
    if sat s phi then acc := !acc +. dist.(s)
  done;
  !acc
