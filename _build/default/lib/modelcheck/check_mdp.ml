type quant = Min | Max

let opt = function Min -> Float.min | Max -> Float.max
let worst = function Min -> Float.infinity | Max -> Float.neg_infinity

let action_value x (a : Mdp.action) =
  List.fold_left (fun acc (t, p) -> acc +. (p *. x.(t))) 0.0 a.Mdp.dist

(* Least-fixed-point value iteration for until probabilities. *)
let until_probabilities ?(max_iter = 100_000) ?(tol = 1e-12) quant m phi1 phi2 =
  let n = Mdp.num_states m in
  let x = Array.init n (fun s -> if phi2.(s) then 1.0 else 0.0) in
  let rec iterate k =
    if k >= max_iter then ()
    else begin
      let delta = ref 0.0 in
      for s = 0 to n - 1 do
        if (not phi2.(s)) && phi1.(s) then begin
          let best =
            List.fold_left
              (fun acc a -> opt quant acc (action_value x a))
              (worst quant) (Mdp.actions_of m s)
          in
          delta := Float.max !delta (Float.abs (best -. x.(s)));
          x.(s) <- best
        end
      done;
      if !delta >= tol then iterate (k + 1)
    end
  in
  iterate 0;
  x

let bounded_until_probabilities quant m phi1 phi2 h =
  let n = Mdp.num_states m in
  let x = ref (Array.init n (fun s -> if phi2.(s) then 1.0 else 0.0)) in
  for _ = 1 to h do
    x :=
      Array.init n (fun s ->
          if phi2.(s) then 1.0
          else if not phi1.(s) then 0.0
          else
            List.fold_left
              (fun acc a -> opt quant acc (action_value !x a))
              (worst quant) (Mdp.actions_of m s))
  done;
  !x

let next_probabilities quant m phi =
  let n = Mdp.num_states m in
  let ind = Array.init n (fun s -> if phi.(s) then 1.0 else 0.0) in
  Array.init n (fun s ->
      List.fold_left
        (fun acc a -> opt quant acc (action_value ind a))
        (worst quant) (Mdp.actions_of m s))

let all_true n = Array.make n true

(* Expected total reward until reaching the target.

   Finiteness is decided by graph/probability analysis first: with
   non-negative rewards, Rmax(s) is finite iff every scheduler reaches the
   target almost surely from s (Pmin(F target) = 1), and Rmin(s) is finite
   iff some scheduler does (Pmax(F target) = 1). Value iteration then runs
   on the finite region only; for Min, actions that leave the finite region
   are excluded (they would have infinite value). *)
let reward_values ?(max_iter = 100_000) ?(tol = 1e-9) quant m target =
  let n = Mdp.num_states m in
  let phi1 = Array.make n true in
  let reach_quant = match quant with Max -> Min | Min -> Max in
  let reach = until_probabilities ~tol:1e-12 reach_quant m phi1 target in
  let finite = Array.init n (fun s -> reach.(s) > 1.0 -. 1e-9) in
  let x = Array.make n 0.0 in
  let usable_actions s =
    let acts = Mdp.actions_of m s in
    match quant with
    | Max -> acts
    | Min ->
      List.filter
        (fun (a : Mdp.action) ->
           List.for_all (fun (t, _) -> finite.(t)) a.Mdp.dist)
        acts
  in
  let rec iterate k =
    if k >= max_iter then ()
    else begin
      let delta = ref 0.0 in
      for s = 0 to n - 1 do
        if finite.(s) && not target.(s) then begin
          let best =
            List.fold_left
              (fun acc a ->
                 opt quant acc
                   (Mdp.state_reward m s +. a.Mdp.reward +. action_value x a))
              (worst quant) (usable_actions s)
          in
          delta := Float.max !delta (Float.abs (best -. x.(s)));
          x.(s) <- best
        end
      done;
      if !delta >= tol then iterate (k + 1)
    end
  in
  iterate 0;
  Array.init n (fun s ->
      if target.(s) then 0.0
      else if finite.(s) then x.(s)
      else Float.infinity)

let rec path_probabilities ?max_iter ?tol quant m psi =
  let n = Mdp.num_states m in
  match (psi : Pctl.path_formula) with
  | Next f -> next_probabilities quant m (sat m f)
  | Until (f1, f2) ->
    until_probabilities ?max_iter ?tol quant m (sat m f1) (sat m f2)
  | Bounded_until (f1, f2, h) ->
    bounded_until_probabilities quant m (sat m f1) (sat m f2) h
  | Eventually f ->
    until_probabilities ?max_iter ?tol quant m (all_true n) (sat m f)
  | Bounded_eventually (f, h) ->
    bounded_until_probabilities quant m (all_true n) (sat m f) h
  | Globally f ->
    (* opt Pr(G φ) = 1 - opposite-opt Pr(F ¬φ) *)
    let other = match quant with Min -> Max | Max -> Min in
    let notf = Array.map not (sat m f) in
    Array.map
      (fun p -> 1.0 -. p)
      (until_probabilities ?max_iter ?tol other m (all_true n) notf)
  | Bounded_globally (f, h) ->
    let other = match quant with Min -> Max | Max -> Min in
    let notf = Array.map not (sat m f) in
    Array.map (fun p -> 1.0 -. p)
      (bounded_until_probabilities other m (all_true n) notf h)

and reachability_reward ?max_iter ?tol quant m f =
  reward_values ?max_iter ?tol quant m (sat m f)

and sat m (f : Pctl.state_formula) : bool array =
  let n = Mdp.num_states m in
  match f with
  | True -> all_true n
  | False -> Array.make n false
  | Prop p ->
    let marked = Array.make n false in
    List.iter (fun s -> marked.(s) <- true) (Mdp.states_with_label m p);
    marked
  | Not g -> Array.map not (sat m g)
  | And (g1, g2) ->
    let a = sat m g1 and b = sat m g2 in
    Array.init n (fun s -> a.(s) && b.(s))
  | Or (g1, g2) ->
    let a = sat m g1 and b = sat m g2 in
    Array.init n (fun s -> a.(s) || b.(s))
  | Implies (g1, g2) ->
    let a = sat m g1 and b = sat m g2 in
    Array.init n (fun s -> (not a.(s)) || b.(s))
  | Prob (op, bound, psi) ->
    let quant = match op with Pctl.Ge | Pctl.Gt -> Min | Pctl.Le | Pctl.Lt -> Max in
    let probs = path_probabilities quant m psi in
    Array.map (fun p -> Pctl.compare_with op p bound) probs
  | Reward (op, bound, g) ->
    let quant = match op with Pctl.Ge | Pctl.Gt -> Min | Pctl.Le | Pctl.Lt -> Max in
    let rewards = reachability_reward quant m g in
    Array.map (fun r -> Pctl.compare_with op r bound) rewards

let path_probability ?max_iter ?tol quant m psi =
  (path_probabilities ?max_iter ?tol quant m psi).(Mdp.init_state m)

let reachability_reward_from_init ?max_iter ?tol quant m f =
  (reachability_reward ?max_iter ?tol quant m f).(Mdp.init_state m)

let optimal_reachability_policy ?max_iter ?tol quant m f =
  let target = sat m f in
  let x = reward_values ?max_iter ?tol quant m target in
  Array.init (Mdp.num_states m) (fun s ->
      let acts = Mdp.actions_of m s in
      match acts with
      | [] -> assert false (* Mdp.make guarantees at least one action *)
      | first :: _ ->
        if target.(s) then first.Mdp.name
        else begin
          let value a =
            Mdp.state_reward m s +. a.Mdp.reward
            +. List.fold_left
                 (fun acc (t, p) ->
                    acc
                    +. p *. (if Float.is_finite x.(t) then x.(t) else 1e18))
                 0.0 a.Mdp.dist
          in
          let better a b =
            match quant with Min -> value a < value b | Max -> value a > value b
          in
          let best =
            List.fold_left (fun acc a -> if better a acc then a else acc) first acts
          in
          best.Mdp.name
        end)

let check m f = (sat m f).(Mdp.init_state m)

type verdict = { holds : bool; value : float option }

let check_verbose m f =
  let holds = check m f in
  let value =
    match (f : Pctl.state_formula) with
    | Prob (op, _, psi) ->
      let quant = match op with Pctl.Ge | Pctl.Gt -> Min | Pctl.Le | Pctl.Lt -> Max in
      Some (path_probability quant m psi)
    | Reward (op, _, g) ->
      let quant = match op with Pctl.Ge | Pctl.Gt -> Min | Pctl.Le | Pctl.Lt -> Max in
      Some (reachability_reward_from_init quant m g)
    | _ -> None
  in
  { holds; value }
