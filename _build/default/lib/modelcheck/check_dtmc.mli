(** Explicit-state PCTL model checking for DTMCs.

    Implements the classic algorithms (Hansson–Jonsson / Baier–Katoen
    ch. 10): graph precomputation of the certainly-0 / certainly-1 sets,
    then a linear system for unbounded until and reachability rewards, and
    fixed-point iteration for step-bounded operators. This is the numeric
    engine the paper delegates to PRISM. *)

val path_probabilities : Dtmc.t -> Pctl.path_formula -> float array
(** [Pr(s ⊨ ψ)] for every state [s]. *)

val path_probability : Dtmc.t -> Pctl.path_formula -> float
(** Probability from the initial state. *)

val reachability_reward : Dtmc.t -> Pctl.state_formula -> float array
(** Expected state-reward accumulated until first reaching a [φ]-state
    (the reward of the [φ]-state itself is not counted, matching PRISM's
    [R \[F φ\]]). States that do not reach [φ] almost surely get
    [infinity]. *)

val reachability_reward_from_init : Dtmc.t -> Pctl.state_formula -> float

val reach_probabilities : Dtmc.t -> bool array -> float array
(** [Pr(s ⊨ F target)] for an explicit target mask — the raw reachability
    engine behind {!path_probabilities}, exposed for clients (steady-state
    analysis, custom target sets) that have a state set rather than a
    labelled formula. @raise Invalid_argument on a wrong-length mask. *)

val sat : Dtmc.t -> Pctl.state_formula -> bool array
(** The satisfaction set, one entry per state. *)

val check : Dtmc.t -> Pctl.state_formula -> bool
(** Satisfaction at the initial state. *)

type verdict = {
  holds : bool;
  value : float option;
      (** for a top-level [P]/[R] formula, the computed probability /
          expected reward at the initial state *)
}

val check_verbose : Dtmc.t -> Pctl.state_formula -> verdict
