(** Counterexample generation for violated reachability bounds.

    A violated [P <= b \[F φ\]] is witnessed by a finite set of paths into
    [φ] whose probabilities sum past [b] (Han–Katoen "smallest
    counterexamples"). Paths are enumerated most-probable-first by
    best-first search over path probability; this also gives useful
    "why did this happen" diagnostics for repair users. *)

val most_probable_paths :
  ?max_len:int -> Dtmc.t -> target:(int -> bool) -> k:int -> (int list * float) list
(** The [k] highest-probability paths from the initial state to a target
    state (loop-free prefixes are not required — cyclic paths are
    enumerated in probability order too, bounded by [max_len], default
    200). Each returned path ends at its first target visit. Fewer than
    [k] paths are returned when the search space is exhausted. *)

type witness = {
  paths : (int list * float) list;  (** most probable first *)
  total_mass : float;
  bound : float;
}

val smallest_counterexample :
  ?max_paths:int -> ?max_len:int -> Dtmc.t -> Pctl.state_formula -> witness option
(** For a formula [P <= b \[F φ\]] (or [P < b]) that the chain violates:
    the shortest most-probable-first list of paths whose mass exceeds [b].
    [None] when the property actually holds, cannot be witnessed within
    [max_paths] (default 10_000) / [max_len], or has a different shape.
    @raise Invalid_argument when the formula is not an upper-bounded
    reachability probability over a propositional target. *)
