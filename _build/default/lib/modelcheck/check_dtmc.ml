module G = Graph_analysis

(* Solve the until system on the "maybe" states (neither prob0 nor prob1)
   with LU: x_s = Σ_t P(s,t) x_t + Σ_{t ∈ prob1} P(s,t). *)
let until_probabilities dtmc phi1 phi2 =
  let n = Dtmc.num_states dtmc in
  let s0 = G.prob0 ~dtmc ~phi1 ~phi2 in
  let s1 = G.prob1 ~dtmc ~phi1 ~phi2 in
  let maybe = Array.init n (fun s -> (not s0.(s)) && not s1.(s)) in
  let index = Array.make n (-1) in
  let count = ref 0 in
  Array.iteri
    (fun s m ->
       if m then begin
         index.(s) <- !count;
         incr count
       end)
    maybe;
  let k = !count in
  let result = Array.init n (fun s -> if s1.(s) then 1.0 else 0.0) in
  if k > 0 then begin
    let a = Linalg.Mat.make k k 0.0 in
    let b = Array.make k 0.0 in
    Array.iteri
      (fun s m ->
         if m then begin
           let i = index.(s) in
           Linalg.Mat.set a i i 1.0;
           List.iter
             (fun (t, p) ->
                if maybe.(t) then
                  Linalg.Mat.set a i index.(t)
                    (Linalg.Mat.get a i index.(t) -. p)
                else if s1.(t) then b.(i) <- b.(i) +. p)
             (Dtmc.succ dtmc s)
         end)
      maybe;
    let x = Linalg.lu_solve a b in
    Array.iteri (fun s m -> if m then result.(s) <- x.(index.(s))) maybe
  end;
  result

let bounded_until_probabilities dtmc phi1 phi2 h =
  let n = Dtmc.num_states dtmc in
  let x = Array.init n (fun s -> if phi2.(s) then 1.0 else 0.0) in
  let step x =
    Array.init n (fun s ->
        if phi2.(s) then 1.0
        else if not phi1.(s) then 0.0
        else
          List.fold_left
            (fun acc (t, p) -> acc +. (p *. x.(t)))
            0.0 (Dtmc.succ dtmc s))
  in
  let rec go k x = if k = 0 then x else go (k - 1) (step x) in
  go h x

let next_probabilities dtmc phi =
  let n = Dtmc.num_states dtmc in
  Array.init n (fun s ->
      List.fold_left
        (fun acc (t, p) -> if phi.(t) then acc +. p else acc)
        0.0 (Dtmc.succ dtmc s))

let all_true n = Array.make n true

let rec path_probabilities_sat dtmc psi =
  let n = Dtmc.num_states dtmc in
  match (psi : Pctl.path_formula) with
  | Next f -> next_probabilities dtmc (sat dtmc f)
  | Until (f1, f2) -> until_probabilities dtmc (sat dtmc f1) (sat dtmc f2)
  | Bounded_until (f1, f2, h) ->
    bounded_until_probabilities dtmc (sat dtmc f1) (sat dtmc f2) h
  | Eventually f -> until_probabilities dtmc (all_true n) (sat dtmc f)
  | Bounded_eventually (f, h) ->
    bounded_until_probabilities dtmc (all_true n) (sat dtmc f) h
  | Globally f ->
    (* Pr(G φ) = 1 - Pr(F ¬φ) *)
    let notf = Array.map not (sat dtmc f) in
    Array.map (fun p -> 1.0 -. p) (until_probabilities dtmc (all_true n) notf)
  | Bounded_globally (f, h) ->
    let notf = Array.map not (sat dtmc f) in
    Array.map
      (fun p -> 1.0 -. p)
      (bounded_until_probabilities dtmc (all_true n) notf h)

and reachability_reward_sat dtmc target =
  let n = Dtmc.num_states dtmc in
  let phi1 = all_true n in
  (* States reaching the target with probability 1 get finite reward. *)
  let s1 = G.prob1 ~dtmc ~phi1 ~phi2:target in
  let solve_states = Array.init n (fun s -> s1.(s) && not target.(s)) in
  let index = Array.make n (-1) in
  let count = ref 0 in
  Array.iteri
    (fun s m ->
       if m then begin
         index.(s) <- !count;
         incr count
       end)
    solve_states;
  let k = !count in
  let result =
    Array.init n (fun s ->
        if target.(s) then 0.0
        else if s1.(s) then 0.0 (* filled below *)
        else Float.infinity)
  in
  if k > 0 then begin
    let a = Linalg.Mat.make k k 0.0 in
    let b = Array.make k 0.0 in
    Array.iteri
      (fun s m ->
         if m then begin
           let i = index.(s) in
           Linalg.Mat.set a i i 1.0;
           b.(i) <- Dtmc.reward dtmc s;
           List.iter
             (fun (t, p) ->
                if solve_states.(t) then
                  Linalg.Mat.set a i index.(t)
                    (Linalg.Mat.get a i index.(t) -. p))
             (Dtmc.succ dtmc s)
         end)
      solve_states;
    let x = Linalg.lu_solve a b in
    Array.iteri (fun s m -> if m then result.(s) <- x.(index.(s))) solve_states
  end;
  result

and sat dtmc (f : Pctl.state_formula) : bool array =
  let n = Dtmc.num_states dtmc in
  match f with
  | True -> all_true n
  | False -> Array.make n false
  | Prop p ->
    let marked = Array.make n false in
    List.iter (fun s -> marked.(s) <- true) (Dtmc.states_with_label dtmc p);
    marked
  | Not g -> Array.map not (sat dtmc g)
  | And (g1, g2) ->
    let a = sat dtmc g1 and b = sat dtmc g2 in
    Array.init n (fun s -> a.(s) && b.(s))
  | Or (g1, g2) ->
    let a = sat dtmc g1 and b = sat dtmc g2 in
    Array.init n (fun s -> a.(s) || b.(s))
  | Implies (g1, g2) ->
    let a = sat dtmc g1 and b = sat dtmc g2 in
    Array.init n (fun s -> (not a.(s)) || b.(s))
  | Prob (op, bound, psi) ->
    let probs = path_probabilities_sat dtmc psi in
    Array.map (fun p -> Pctl.compare_with op p bound) probs
  | Reward (op, bound, g) ->
    let rewards = reachability_reward_sat dtmc (sat dtmc g) in
    Array.map (fun r -> Pctl.compare_with op r bound) rewards

let path_probabilities dtmc psi = path_probabilities_sat dtmc psi

let reach_probabilities dtmc target =
  if Array.length target <> Dtmc.num_states dtmc then
    invalid_arg "Check_dtmc.reach_probabilities: wrong mask length";
  until_probabilities dtmc (all_true (Dtmc.num_states dtmc)) target

let path_probability dtmc psi =
  (path_probabilities dtmc psi).(Dtmc.init_state dtmc)

let reachability_reward dtmc f = reachability_reward_sat dtmc (sat dtmc f)

let reachability_reward_from_init dtmc f =
  (reachability_reward dtmc f).(Dtmc.init_state dtmc)

let check dtmc f = (sat dtmc f).(Dtmc.init_state dtmc)

type verdict = { holds : bool; value : float option }

let check_verbose dtmc f =
  let holds = check dtmc f in
  let value =
    match (f : Pctl.state_formula) with
    | Prob (_, _, psi) -> Some (path_probability dtmc psi)
    | Reward (_, _, g) -> Some (reachability_reward_from_init dtmc g)
    | _ -> None
  in
  { holds; value }
