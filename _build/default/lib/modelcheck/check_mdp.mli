(** PCTL model checking for MDPs.

    Path probabilities and expected rewards are optimised over all
    (deterministic memoryless) schedulers by value iteration. Following
    PRISM's semantics for universally-quantified properties:
    - [P >= b] / [P > b] holds when even the {e minimising} scheduler meets
      the bound;
    - [P <= b] / [P < b] holds when even the {e maximising} scheduler does;
    - [R <= r] bounds the maximal, [R >= r] the minimal expected reward. *)

type quant = Min | Max

val path_probabilities :
  ?max_iter:int -> ?tol:float -> quant -> Mdp.t -> Pctl.path_formula -> float array

val path_probability :
  ?max_iter:int -> ?tol:float -> quant -> Mdp.t -> Pctl.path_formula -> float
(** From the initial state. *)

val reachability_reward :
  ?max_iter:int -> ?tol:float -> quant -> Mdp.t -> Pctl.state_formula -> float array
(** Expected total reward (state reward + chosen action reward per step)
    accumulated until first reaching a [φ]-state. Divergent values (target
    not reached almost surely under the optimising scheduler) are reported
    as [infinity]. *)

val reachability_reward_from_init :
  ?max_iter:int -> ?tol:float -> quant -> Mdp.t -> Pctl.state_formula -> float

val optimal_reachability_policy :
  ?max_iter:int -> ?tol:float -> quant -> Mdp.t -> Pctl.state_formula -> Mdp.policy
(** The scheduler attaining the optimal reachability reward (greedy w.r.t.
    the converged value function; arbitrary-but-deterministic in states
    where the target is unreachable). *)

val sat : Mdp.t -> Pctl.state_formula -> bool array
val check : Mdp.t -> Pctl.state_formula -> bool

type verdict = { holds : bool; value : float option }

val check_verbose : Mdp.t -> Pctl.state_formula -> verdict
(** [value] is the optimised probability / expected reward at the initial
    state for a top-level [P]/[R] formula (using the quantifier implied by
    the comparison, per the module-level semantics). *)
