(* Best-first path enumeration: a priority queue of path prefixes ordered
   by probability; popping always yields the globally most probable
   unexplored prefix, so target hits come out in probability order. *)

module Pq = struct
  (* simple binary max-heap on (priority, value) *)
  type 'a t = { mutable data : (float * 'a) array; mutable size : int }

  let create () = { data = [||]; size = 0 }

  let swap h i j =
    let t = h.data.(i) in
    h.data.(i) <- h.data.(j);
    h.data.(j) <- t

  let push h p v =
    if Array.length h.data = 0 then h.data <- Array.make 64 (p, v)
    else if h.size = Array.length h.data then begin
      let bigger = Array.make (2 * h.size) h.data.(0) in
      Array.blit h.data 0 bigger 0 h.size;
      h.data <- bigger
    end;
    h.data.(h.size) <- (p, v);
    let i = ref h.size in
    h.size <- h.size + 1;
    while !i > 0 && fst h.data.((!i - 1) / 2) < fst h.data.(!i) do
      swap h !i ((!i - 1) / 2);
      i := (!i - 1) / 2
    done

  let pop h =
    if h.size = 0 then None
    else begin
      let top = h.data.(0) in
      h.size <- h.size - 1;
      h.data.(0) <- h.data.(h.size);
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let largest = ref !i in
        if l < h.size && fst h.data.(l) > fst h.data.(!largest) then largest := l;
        if r < h.size && fst h.data.(r) > fst h.data.(!largest) then largest := r;
        if !largest <> !i then begin
          swap h !i !largest;
          i := !largest
        end
        else continue := false
      done;
      Some top
    end
end

let most_probable_paths ?(max_len = 200) dtmc ~target ~k =
  if k <= 0 then []
  else begin
    let queue = Pq.create () in
    (* value: reversed path *)
    Pq.push queue 1.0 [ Dtmc.init_state dtmc ];
    let found = ref [] in
    let found_count = ref 0 in
    (* Cap explored prefixes so pathological chains terminate. *)
    let budget = ref (1_000_000 : int) in
    let rec loop () =
      if !found_count >= k || !budget <= 0 then ()
      else
        match Pq.pop queue with
        | None -> ()
        | Some (p, rev_path) ->
          decr budget;
          let s = List.hd rev_path in
          if target s then begin
            found := (List.rev rev_path, p) :: !found;
            incr found_count
          end
          else if List.length rev_path <= max_len then
            List.iter
              (fun (t, q) ->
                 if q > 0.0 then Pq.push queue (p *. q) (t :: rev_path))
              (Dtmc.succ dtmc s);
          loop ()
    in
    loop ();
    List.rev !found
  end

type witness = {
  paths : (int list * float) list;
  total_mass : float;
  bound : float;
}

let smallest_counterexample ?(max_paths = 10_000) ?(max_len = 200) dtmc phi =
  let bound, target_formula =
    match (phi : Pctl.state_formula) with
    | Prob (Pctl.Le, b, Eventually f) | Prob (Pctl.Lt, b, Eventually f) ->
      (b, f)
    | _ ->
      invalid_arg
        "Counterexample: need an upper-bounded reachability formula P<=b [F φ]"
  in
  let n = Dtmc.num_states dtmc in
  let rec sat s (f : Pctl.state_formula) =
    match f with
    | True -> true
    | False -> false
    | Prop p -> Dtmc.has_label dtmc s p
    | Not g -> not (sat s g)
    | And (a, b) -> sat s a && sat s b
    | Or (a, b) -> sat s a || sat s b
    | Implies (a, b) -> (not (sat s a)) || sat s b
    | Prob _ | Reward _ ->
      invalid_arg "Counterexample: nested P/R operators are not supported"
  in
  let target = Array.init n (fun s -> sat s target_formula) in
  if Check_dtmc.check dtmc phi then None
  else begin
    (* accumulate most-probable target paths until the mass passes the
       bound *)
    let queue = Pq.create () in
    Pq.push queue 1.0 [ Dtmc.init_state dtmc ];
    let acc = ref [] in
    let mass = ref 0.0 in
    let popped = ref 0 in
    let rec loop () =
      if !mass > bound || !popped >= max_paths then ()
      else
        match Pq.pop queue with
        | None -> ()
        | Some (p, rev_path) ->
          incr popped;
          let s = List.hd rev_path in
          if target.(s) then begin
            acc := (List.rev rev_path, p) :: !acc;
            mass := !mass +. p
          end
          else if List.length rev_path <= max_len then
            List.iter
              (fun (t, q) ->
                 if q > 0.0 then Pq.push queue (p *. q) (t :: rev_path))
              (Dtmc.succ dtmc s);
          loop ()
    in
    loop ();
    if !mass > bound then
      Some { paths = List.rev !acc; total_mass = !mass; bound }
    else None
  end
