lib/learn/irl.ml: Array Float List Mdp Stdlib Trace
