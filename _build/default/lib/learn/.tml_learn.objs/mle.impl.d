lib/learn/mle.ml: Array Dtmc Fun Hashtbl List Mdp Option Pdtmc Printf Ratfun Ratio String Trace
