lib/learn/mle.mli: Dtmc Mdp Pdtmc Ratio Trace
