lib/learn/irl.mli: Mdp Trace
