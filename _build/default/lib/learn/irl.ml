type options = {
  horizon : int;
  learning_rate : float;
  iterations : int;
  l2_projection : bool;
}

let default_options =
  { horizon = 0; learning_rate = 0.1; iterations = 400; l2_projection = true }

let feature_dim_exn m =
  let k = Mdp.feature_dim m in
  if k = 0 then invalid_arg "Irl: MDP has no state features";
  k

let empirical_feature_expectations m weighted =
  let k = feature_dim_exn m in
  let acc = Array.make k 0.0 in
  let total_w = ref 0.0 in
  List.iter
    (fun (tr, w) ->
       if w < 0.0 then invalid_arg "Irl: negative trajectory weight";
       if w > 0.0 then begin
         total_w := !total_w +. w;
         List.iter
           (fun s ->
              let f = Mdp.features_of m s in
              Array.iteri (fun i fi -> acc.(i) <- acc.(i) +. (w *. fi)) f)
           (Trace.states tr)
       end)
    weighted;
  if !total_w <= 0.0 then invalid_arg "Irl: zero total trajectory weight";
  Array.map (fun v -> v /. !total_w) acc

let logsumexp xs =
  let m = List.fold_left Float.max Float.neg_infinity xs in
  if m = Float.neg_infinity then Float.neg_infinity
  else m +. log (List.fold_left (fun acc x -> acc +. exp (x -. m)) 0.0 xs)

let reward_vector m theta =
  Array.init (Mdp.num_states m) (fun s ->
      let f = Mdp.features_of m s in
      let acc = ref 0.0 in
      Array.iteri (fun i fi -> acc := !acc +. (theta.(i) *. fi)) f;
      !acc)

let soft_policy m ~theta ~horizon =
  let n = Mdp.num_states m in
  let r = reward_vector m theta in
  (* soft backward recursion *)
  let v = Array.make n 0.0 in
  for _ = 1 to horizon do
    let v' =
      Array.init n (fun s ->
          let qs =
            List.map
              (fun (a : Mdp.action) ->
                 r.(s) +. a.Mdp.reward
                 +. List.fold_left (fun acc (t, p) -> acc +. (p *. v.(t))) 0.0 a.Mdp.dist)
              (Mdp.actions_of m s)
          in
          logsumexp qs)
    in
    Array.blit v' 0 v 0 n
  done;
  Array.init n (fun s ->
      let acts = Mdp.actions_of m s in
      let qs =
        List.map
          (fun (a : Mdp.action) ->
             ( a.Mdp.name,
               r.(s) +. a.Mdp.reward
               +. List.fold_left (fun acc (t, p) -> acc +. (p *. v.(t))) 0.0 a.Mdp.dist ))
          acts
      in
      let z = logsumexp (List.map snd qs) in
      List.map (fun (name, q) -> (name, exp (q -. z))) qs)

let expected_state_frequencies m ~policy ~horizon =
  let n = Mdp.num_states m in
  let d = Array.make n 0.0 in
  let cur = Array.make n 0.0 in
  cur.(Mdp.init_state m) <- 1.0;
  for _ = 0 to horizon - 1 do
    Array.iteri (fun s mass -> d.(s) <- d.(s) +. mass) cur;
    let next = Array.make n 0.0 in
    Array.iteri
      (fun s mass ->
         if mass > 0.0 then
           List.iter
             (fun (aname, pa) ->
                match Mdp.find_action m s aname with
                | None -> ()
                | Some a ->
                  List.iter
                    (fun (t, p) -> next.(t) <- next.(t) +. (mass *. pa *. p))
                    a.Mdp.dist)
             policy.(s))
      cur;
    Array.blit next 0 cur 0 n
  done;
  Array.iteri (fun s mass -> d.(s) <- d.(s) +. mass) cur;
  d

let project_l2 theta =
  let norm = sqrt (Array.fold_left (fun acc v -> acc +. (v *. v)) 0.0 theta) in
  if norm > 1.0 then Array.map (fun v -> v /. norm) theta else theta

let learn_weighted ?(options = default_options) ?theta0 m weighted =
  let k = feature_dim_exn m in
  let horizon =
    if options.horizon > 0 then options.horizon
    else
      List.fold_left (fun acc (tr, _) -> Stdlib.max acc (Trace.length tr)) 1 weighted
  in
  let emp = empirical_feature_expectations m weighted in
  let theta =
    match theta0 with
    | Some t ->
      if Array.length t <> k then invalid_arg "Irl: theta0 has wrong dimension";
      ref (Array.copy t)
    | None -> ref (Array.make k 0.0)
  in
  for it = 1 to options.iterations do
    let policy = soft_policy m ~theta:!theta ~horizon in
    let freq = expected_state_frequencies m ~policy ~horizon in
    (* Normalise model visitation mass to trajectory scale (horizon+1
       state visits per trajectory, matching the empirical sum). *)
    let expected = Array.make k 0.0 in
    Array.iteri
      (fun s mass ->
         let f = Mdp.features_of m s in
         Array.iteri (fun i fi -> expected.(i) <- expected.(i) +. (mass *. fi)) f)
      freq;
    let lr = options.learning_rate /. sqrt (float_of_int it) in
    let t' = Array.mapi (fun i v -> v +. (lr *. (emp.(i) -. expected.(i)))) !theta in
    theta := if options.l2_projection then project_l2 t' else t'
  done;
  !theta

let learn ?options ?theta0 m traces =
  learn_weighted ?options ?theta0 m (List.map (fun tr -> (tr, 1.0)) traces)

let apply_reward m theta = Mdp.with_state_rewards m (reward_vector m theta)
