(** Maximum-entropy inverse reinforcement learning (Ziebart et al. 2008) —
    the paper's learning procedure for reward functions (§IV-C, Eq. 16).

    The reward is linear in per-state features, [reward(s) = θᵀ f_s], and
    trajectory probability is proportional to
    [exp(Σ_i θᵀ f_{s_i}) · Π_i P(s_{i+1} | s_i, a_i)]. Learning maximises
    trace likelihood by matching expected feature counts: the gradient is
    (empirical feature expectations) − (feature expectations under the
    current soft policy). Supports weighted trajectories, which is how
    Reward Repair re-estimates θ from the projected distribution [Q]
    (Prop. 4). *)

type options = {
  horizon : int;  (** forward-pass length; default: longest trace *)
  learning_rate : float;
  iterations : int;
  l2_projection : bool;  (** project θ onto the unit L2 ball (‖θ‖₂ ≤ 1),
                             the paper's normalisation *)
}

val default_options : options

val empirical_feature_expectations : Mdp.t -> (Trace.t * float) list -> float array
(** Weighted mean over trajectories of summed state features (weights are
    normalised internally).
    @raise Invalid_argument when the MDP has no features or weights are all
    zero. *)

val soft_policy :
  Mdp.t -> theta:float array -> horizon:int -> (string * float) list array
(** The maximum-entropy stochastic policy [π(a|s) ∝ exp Q_soft(s,a)] under
    the reward [θᵀ f], computed by soft value iteration over the given
    horizon. *)

val expected_state_frequencies :
  Mdp.t -> policy:(string * float) list array -> horizon:int -> float array
(** Expected discounted-free visitation counts [D(s)] over the horizon,
    starting from the initial state. *)

val learn :
  ?options:options -> ?theta0:float array -> Mdp.t -> Trace.t list -> float array
(** Learned weight vector θ.
    @raise Invalid_argument when the MDP carries no features. *)

val learn_weighted :
  ?options:options -> ?theta0:float array -> Mdp.t -> (Trace.t * float) list -> float array
(** As {!learn}, but each trajectory carries a non-negative weight — used
    by Reward Repair to fit θ to the rule-projected distribution Q. *)

val reward_vector : Mdp.t -> float array -> float array
(** [reward_vector m θ] = per-state rewards [θᵀ f_s]. *)

val apply_reward : Mdp.t -> float array -> Mdp.t
(** Replace the MDP's state rewards by [θᵀ f_s]. *)
