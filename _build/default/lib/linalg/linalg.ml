module Vec = struct
  type t = float array

  let make n v : t = Array.make n v
  let init n f : t = Array.init n f
  let copy = Array.copy
  let dim (v : t) = Array.length v

  let check_dim a b =
    if Array.length a <> Array.length b then
      invalid_arg "Linalg.Vec: dimension mismatch"

  let map2 f a b =
    check_dim a b;
    Array.init (Array.length a) (fun i -> f a.(i) b.(i))

  let add a b = map2 ( +. ) a b
  let sub a b = map2 ( -. ) a b
  let scale k v = Array.map (fun x -> k *. x) v
  let axpy k x y = map2 (fun xi yi -> (k *. xi) +. yi) x y

  let dot a b =
    check_dim a b;
    let s = ref 0.0 in
    for i = 0 to Array.length a - 1 do
      s := !s +. (a.(i) *. b.(i))
    done;
    !s

  let norm2 v = sqrt (dot v v)

  let norm_inf v =
    Array.fold_left (fun acc x -> Float.max acc (Float.abs x)) 0.0 v

  let dist_inf a b = norm_inf (sub a b)

  let pp fmt v =
    Format.fprintf fmt "[@[%a@]]"
      (Format.pp_print_list
         ~pp_sep:(fun f () -> Format.fprintf f ";@ ")
         (fun f x -> Format.fprintf f "%g" x))
      (Array.to_list v)
end

module Mat = struct
  type t = { rows : int; cols : int; data : float array }

  let make rows cols v = { rows; cols; data = Array.make (rows * cols) v }

  let init rows cols f =
    { rows; cols; data = Array.init (rows * cols) (fun k -> f (k / cols) (k mod cols)) }

  let identity n = init n n (fun i j -> if i = j then 1.0 else 0.0)

  let of_rows rows_arr =
    let rows = Array.length rows_arr in
    if rows = 0 then make 0 0 0.0
    else begin
      let cols = Array.length rows_arr.(0) in
      Array.iter
        (fun r ->
           if Array.length r <> cols then
             invalid_arg "Linalg.Mat.of_rows: ragged rows")
        rows_arr;
      init rows cols (fun i j -> rows_arr.(i).(j))
    end

  let rows m = m.rows
  let cols m = m.cols
  let get m i j = m.data.((i * m.cols) + j)
  let set m i j v = m.data.((i * m.cols) + j) <- v
  let copy m = { m with data = Array.copy m.data }
  let transpose m = init m.cols m.rows (fun i j -> get m j i)

  let mul a b =
    if a.cols <> b.rows then invalid_arg "Linalg.Mat.mul: dimension mismatch";
    init a.rows b.cols (fun i j ->
        let s = ref 0.0 in
        for k = 0 to a.cols - 1 do
          s := !s +. (get a i k *. get b k j)
        done;
        !s)

  let mul_vec m v =
    if m.cols <> Array.length v then
      invalid_arg "Linalg.Mat.mul_vec: dimension mismatch";
    Array.init m.rows (fun i ->
        let s = ref 0.0 in
        for j = 0 to m.cols - 1 do
          s := !s +. (get m i j *. v.(j))
        done;
        !s)

  let add a b =
    if a.rows <> b.rows || a.cols <> b.cols then
      invalid_arg "Linalg.Mat.add: dimension mismatch";
    { a with data = Array.init (Array.length a.data) (fun k -> a.data.(k) +. b.data.(k)) }

  let scale k m = { m with data = Array.map (fun x -> k *. x) m.data }

  let row m i = Array.init m.cols (fun j -> get m i j)

  let pp fmt m =
    for i = 0 to m.rows - 1 do
      Format.fprintf fmt "|";
      for j = 0 to m.cols - 1 do
        Format.fprintf fmt " %8.4f" (get m i j)
      done;
      Format.fprintf fmt " |@\n"
    done
end

exception Singular

let pivot_eps = 1e-12

(* In-place LU with partial pivoting on a copy; returns (lu, perm). *)
let lu_factor a =
  let n = Mat.rows a in
  if Mat.cols a <> n then invalid_arg "Linalg.lu_solve: non-square matrix";
  let lu = Mat.copy a in
  let perm = Array.init n (fun i -> i) in
  for k = 0 to n - 1 do
    (* find pivot *)
    let best = ref k and best_v = ref (Float.abs (Mat.get lu k k)) in
    for i = k + 1 to n - 1 do
      let v = Float.abs (Mat.get lu i k) in
      if v > !best_v then begin
        best := i;
        best_v := v
      end
    done;
    if !best_v < pivot_eps then raise Singular;
    if !best <> k then begin
      (* swap rows k and best *)
      for j = 0 to n - 1 do
        let t = Mat.get lu k j in
        Mat.set lu k j (Mat.get lu !best j);
        Mat.set lu !best j t
      done;
      let t = perm.(k) in
      perm.(k) <- perm.(!best);
      perm.(!best) <- t
    end;
    let pivot = Mat.get lu k k in
    for i = k + 1 to n - 1 do
      let f = Mat.get lu i k /. pivot in
      Mat.set lu i k f;
      for j = k + 1 to n - 1 do
        Mat.set lu i j (Mat.get lu i j -. (f *. Mat.get lu k j))
      done
    done
  done;
  (lu, perm)

let lu_backsolve (lu, perm) b =
  let n = Mat.rows lu in
  if Array.length b <> n then invalid_arg "Linalg.lu_solve: rhs dimension";
  let y = Array.make n 0.0 in
  for i = 0 to n - 1 do
    let s = ref b.(perm.(i)) in
    for j = 0 to i - 1 do
      s := !s -. (Mat.get lu i j *. y.(j))
    done;
    y.(i) <- !s
  done;
  let x = Array.make n 0.0 in
  for i = n - 1 downto 0 do
    let s = ref y.(i) in
    for j = i + 1 to n - 1 do
      s := !s -. (Mat.get lu i j *. x.(j))
    done;
    x.(i) <- !s /. Mat.get lu i i
  done;
  x

let lu_solve a b = lu_backsolve (lu_factor a) b

let lu_solve_many a bs =
  let f = lu_factor a in
  List.map (lu_backsolve f) bs

let gauss_seidel ?(max_iter = 10_000) ?(tol = 1e-12) a b x0 =
  let n = Mat.rows a in
  if Mat.cols a <> n || Array.length b <> n || Array.length x0 <> n then
    invalid_arg "Linalg.gauss_seidel: dimension mismatch";
  let x = Array.copy x0 in
  let rec iterate k =
    if k >= max_iter then x
    else begin
      let delta = ref 0.0 in
      for i = 0 to n - 1 do
        let s = ref b.(i) in
        for j = 0 to n - 1 do
          if j <> i then s := !s -. (Mat.get a i j *. x.(j))
        done;
        let xi = !s /. Mat.get a i i in
        delta := Float.max !delta (Float.abs (xi -. x.(i)));
        x.(i) <- xi
      done;
      if !delta < tol then x else iterate (k + 1)
    end
  in
  iterate 0

let lstsq a b =
  let at = Mat.transpose a in
  let ata = Mat.mul at a in
  let atb = Mat.mul_vec at b in
  lu_solve ata atb

let inverse a =
  let n = Mat.rows a in
  let f = lu_factor a in
  let cols =
    List.init n (fun j ->
        lu_backsolve f (Array.init n (fun i -> if i = j then 1.0 else 0.0)))
  in
  Mat.init n n (fun i j -> (List.nth cols j).(i))
