(** Small dense linear-algebra toolkit over floats.

    Backs the numeric PCTL engine (reachability probabilities and expected
    rewards are solutions of linear systems) and the IRL / optimisation
    layers (least squares, norms). *)

module Vec : sig
  type t = float array

  val make : int -> float -> t
  val init : int -> (int -> float) -> t
  val copy : t -> t
  val dim : t -> int
  val add : t -> t -> t
  val sub : t -> t -> t
  val scale : float -> t -> t
  val dot : t -> t -> float
  val axpy : float -> t -> t -> t
  (** [axpy a x y] is [a*x + y]. *)

  val norm2 : t -> float
  val norm_inf : t -> float
  val dist_inf : t -> t -> float
  val map2 : (float -> float -> float) -> t -> t -> t
  val pp : Format.formatter -> t -> unit
end

module Mat : sig
  type t

  val make : int -> int -> float -> t
  val init : int -> int -> (int -> int -> float) -> t
  val identity : int -> t
  val of_rows : float array array -> t
  val rows : t -> int
  val cols : t -> int
  val get : t -> int -> int -> float
  val set : t -> int -> int -> float -> unit
  val copy : t -> t
  val transpose : t -> t
  val mul : t -> t -> t
  val mul_vec : t -> Vec.t -> Vec.t
  val add : t -> t -> t
  val scale : float -> t -> t
  val row : t -> int -> Vec.t
  val pp : Format.formatter -> t -> unit
end

exception Singular
(** Raised by direct solvers on (numerically) singular systems. *)

val lu_solve : Mat.t -> Vec.t -> Vec.t
(** Solve [A x = b] by LU decomposition with partial pivoting.
    @raise Singular if a pivot is smaller than 1e-12 in magnitude.
    @raise Invalid_argument on dimension mismatch. *)

val lu_solve_many : Mat.t -> Vec.t list -> Vec.t list
(** Factorise once, solve several right-hand sides. *)

val gauss_seidel :
  ?max_iter:int -> ?tol:float -> Mat.t -> Vec.t -> Vec.t -> Vec.t
(** [gauss_seidel a b x0] iterates to a fixed point of [A x = b]; suitable
    for the diagonally-dominant systems arising from Markov chains.
    Returns the final iterate (converged or at [max_iter]). *)

val lstsq : Mat.t -> Vec.t -> Vec.t
(** Least-squares solution of an overdetermined [A x ~ b] via the normal
    equations (fine at the small sizes used here).
    @raise Singular when [A^T A] is singular. *)

val inverse : Mat.t -> Mat.t
(** @raise Singular on singular input. *)
