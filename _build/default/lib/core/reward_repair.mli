(** Reward Repair (Definition 2, §IV-C and the §V-B case study).

    Two complementary mechanisms, both implemented:

    {b 1. Posterior-regularisation projection} (Prop. 4, Eqs. 17–18): the
    MaxEnt-IRL path distribution [P(U|θ)] is projected onto the subspace
    satisfying trajectory rules [φ_l] by the closed form
    [Q(U) ∝ P(U)·exp(−Σ_l λ_l (1 − φ_l(U)))]; the repaired reward is then
    re-estimated by weighted IRL against [Q]. As [λ → ∞], rule-violating
    trajectories get probability 0 while satisfying ones keep their
    relative mass — exactly the intuition the paper states after Prop. 4.

    {b 2. Direct Q-constraint repair} (§V-B): solve
    [min ‖Δθ‖ s.t. Q_{θ+Δθ}(s, a_good) > Q_{θ+Δθ}(s, a_bad)] so the
    repaired optimal policy avoids unsafe actions. *)

(** {1 Projection route (Prop. 4)} *)

val projection_weights :
  Mdp.t ->
  theta:float array ->
  rules:(Trace_logic.t * float) list ->
  Trace.t list ->
  (Trace.t * float) list
(** Normalised [Q(U)] over the given trajectory set: MaxEnt weight
    [exp(Σ θᵀf) · Π P(s'|s,a)] times the rule penalty
    [exp(−Σ λ_l (1−φ_l(U)))].
    @raise Invalid_argument on an empty trajectory set or negative λ. *)

val sample_trajectories :
  Prng.t -> Mdp.t -> theta:float array -> horizon:int -> count:int -> Trace.t list
(** Trajectories drawn from the soft (MaxEnt) policy under [θ] — the
    Gibbs-style sampling the paper suggests for grounding first-order
    rules. *)

val repair_by_projection :
  ?options:Irl.options ->
  Mdp.t ->
  theta:float array ->
  rules:(Trace_logic.t * float) list ->
  Trace.t list ->
  float array
(** The repaired weight vector θ′ = IRL fit to the projected
    distribution. *)

(** {1 Direct Q-constraint route (§V-B)} *)

type q_constraint = {
  state : int;
  better : string;  (** action whose Q-value must dominate *)
  worse : string;
  margin : float;  (** required gap, > 0 for a strict preference *)
}

type repaired = {
  theta : float array;
  delta : float array;  (** θ′ − θ *)
  cost : float;  (** ‖Δθ‖² *)
  policy : Mdp.policy;  (** optimal policy under θ′ *)
  q_gaps : (q_constraint * float) list;  (** achieved Q(better) − Q(worse) *)
  verified : bool;  (** every constraint satisfied by the final Q-table *)
}

type result =
  | Already_satisfied  (** the optimal policy under θ meets every constraint *)
  | Repaired of repaired
  | Infeasible of { min_violation : float }

val repair_q :
  ?gamma:float ->
  ?starts:int ->
  ?seed:int ->
  ?force:bool ->
  Mdp.t ->
  theta:float array ->
  constraints:q_constraint list ->
  result
(** @raise Invalid_argument on unknown states/actions or an MDP without
    features. *)

val policy_satisfies :
  Mdp.t -> Mdp.policy -> rules:Trace_logic.t list -> horizon:int -> bool
(** Rolls the (deterministic) policy out from the initial state, following
    every probabilistic branch (exhaustive tree walk up to [horizon]), and
    checks each complete trajectory against all rules. *)
