lib/core/mdp_repair.mli: Mdp Nlp Pctl Ratfun
