lib/core/local_repair.ml: Array Bisimulation Check_dtmc Float List Model_repair Pdtmc Pquery Printf Ratfun Ratio
