lib/core/reward_repair.ml: Array Float Irl List Mdp Nlp Printf Prng Trace Trace_logic Value
