lib/core/mdp_repair.ml: Array Check_mdp List Mdp Nlp Pdtmc Pquery Printf Ratfun Ratio String
