lib/core/reward_repair.mli: Irl Mdp Prng Trace Trace_logic
