lib/core/data_repair.ml: Array Check_dtmc Dtmc List Mle Nlp Option Pdtmc Pquery Printf Ratfun Ratio Trace
