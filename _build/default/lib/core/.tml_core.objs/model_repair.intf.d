lib/core/model_repair.mli: Dtmc Nlp Pctl Pdtmc Ratfun
