lib/core/model_repair.ml: Array Bisimulation Check_dtmc Dtmc List Nlp Option Pdtmc Pquery Printf Ratfun Ratio String
