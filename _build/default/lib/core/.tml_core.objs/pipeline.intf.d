lib/core/pipeline.mli: Data_repair Format Model_repair Pctl Ratio Trace
