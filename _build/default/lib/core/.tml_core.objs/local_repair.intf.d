lib/core/local_repair.mli: Dtmc Model_repair Pctl
