lib/core/pipeline.ml: Array Check_dtmc Data_repair Format List Mle Model_repair Option Pctl Ratio
