lib/core/data_repair.mli: Dtmc Nlp Pctl Ratfun Ratio Trace
