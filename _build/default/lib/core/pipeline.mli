(** The Trusted-Machine-Learning decision procedure of §II:

    learn [M = ML(D)] → verify [M ⊨ φ] → if violated, try Model Repair →
    if infeasible, try Data Repair → otherwise report that φ cannot be
    enforced by the available repair formulations. *)

type stage =
  | Original_ok of float option
  | Model_repaired of Model_repair.repaired
  | Data_repaired of Data_repair.repaired
  | Unrepairable of {
      model_repair_violation : float option;
      data_repair_violation : float option;
    }

type report = {
  property : Pctl.state_formula;
  original_value : float option;  (** checked value of the learned model *)
  outcome : stage;
}

val run :
  n:int ->
  init:int ->
  ?labels:(string * int list) list ->
  ?rewards:Ratio.t array ->
  ?model_spec:Model_repair.spec ->
  ?data_spec:Data_repair.spec ->
  groups:(string * Trace.t list) list ->
  Pctl.state_formula ->
  report
(** Learns the model from all traces (MLE), then walks the pipeline.
    [model_spec] / [data_spec] enable the corresponding repair stages
    (a stage without a spec is skipped). [data_spec] defaults to dropping
    from the given trace groups. *)

val pp_report : Format.formatter -> report -> unit
