(** Localised Model Repair — the paper's §VII "more scalable repair
    algorithms, e.g., using efficient localized changes".

    Instead of a full multistart NLP, this solver exploits the structure of
    probability-perturbation repairs: along any ray from the origin of the
    perturbation box toward its upper corner, the repair constraint
    typically improves monotonically (adding correction mass only moves the
    checked quantity toward the bound). The algorithm is:

    + bisect along the box diagonal for the smallest scale [t*] at which
      [f(t·hi) ~ b] holds (feasibility certificate / infeasibility when
      even [t = 1] fails);
    + coordinate descent: repeatedly shrink one variable at a time by
      bisection, keeping the constraint satisfied, until no variable can
      be reduced — a locally minimal (in each coordinate) repair.

    This needs only [O((vars + rounds·vars)·log(1/ε))] evaluations of the
    compiled constraint, versus thousands for the NLP, and never leaves the
    feasible region once entered. When the monotonicity assumption fails it
    degrades gracefully: the diagonal scan still finds a feasible point if
    one exists on the diagonal, else reports infeasibility (a sound
    "don't know"). The ablation bench compares it to the NLP on E2. *)

type result =
  | Already_satisfied of float option
  | Repaired of Model_repair.repaired
  | Infeasible of { residual_violation : float }
      (** constraint violation at the full-correction corner of the box —
          the repair target is out of this box's reach along its diagonal *)

val repair :
  ?tol:float ->
  ?rounds:int ->
  ?force:bool ->
  Dtmc.t ->
  Pctl.state_formula ->
  Model_repair.spec ->
  result
(** Same spec as {!Model_repair.repair}; variables must have non-negative
    lower bounds of 0 (the localisation is anchored at the unperturbed
    model). @raise Invalid_argument otherwise, or on malformed specs. *)
