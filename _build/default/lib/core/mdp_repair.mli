(** Model Repair for MDPs (Definition 1 in full generality).

    The paper's Definition 1 perturbs an {e MDP}'s transition function
    [P(s' | s, a)]. Under PRISM's universal semantics a property must hold
    for {e every} scheduler, so the single symbolic constraint of the DTMC
    case becomes one constraint per deterministic memoryless policy:
    for [P >= b] the perturbed chain induced by each policy π must satisfy
    [f_π(v) >= b]. Each [f_π] is produced by the same parametric
    state-elimination engine; the NLP then minimises [‖v‖²] subject to all
    of them plus the usual stochasticity bounds.

    Policy enumeration is exponential in principle; repairs are rejected
    beyond a configurable cap (the paper's case studies have one effective
    scheduler — the WSN — or eleven states with three actions where repair
    targets the reward instead). *)

type spec = {
  variables : (string * float * float) list;
  deltas : (int * string * int * Ratfun.t) list;
      (** [(state, action, target, Z-entry)]: added to
          [P(target | state, action)]. The edge must exist, and each
          (state, action) row's deltas must cancel. *)
}

type repaired = {
  mdp : Mdp.t;
  assignment : (string * float) list;
  cost : float;
  constraints_checked : int;  (** number of enumerated policies *)
  verified : bool;  (** numeric re-check with {!Check_mdp.check} *)
}

type result =
  | Already_satisfied
  | Repaired of repaired
  | Infeasible of { min_violation : float }

val enumerate_policies : ?cap:int -> Mdp.t -> Mdp.policy list
(** All deterministic memoryless policies, up to [cap] (default 512).
    @raise Invalid_argument when the policy space exceeds the cap. *)

val repair :
  ?solver:Nlp.method_ ->
  ?starts:int ->
  ?seed:int ->
  ?policy_cap:int ->
  ?force:bool ->
  Mdp.t ->
  Pctl.state_formula ->
  spec ->
  result
(** @raise Invalid_argument on malformed specs or a policy space larger
    than [policy_cap]. @raise Pquery.Unsupported on properties outside the
    parametric fragment. *)
