type atom =
  | State_is of int
  | Label of string
  | Action_is of string
  | Step of int * string

type t =
  | True
  | False
  | Atom of atom
  | Not of t
  | And of t * t
  | Or of t * t
  | Implies of t * t
  | Next of t
  | Always of t
  | Eventually of t
  | Until of t * t

let never f = Always (Not f)
let avoids_state s = never (Atom (State_is s))

let avoids_states = function
  | [] -> True
  | s :: rest ->
    never
      (List.fold_left (fun acc s -> Or (acc, Atom (State_is s)))
         (Atom (State_is s)) rest)

let takes_action_in s a =
  Always (Implies (Atom (State_is s), Atom (Action_is a)))

(* Positions: 0 .. len where len = Trace.length t. Position len is the
   final state (no action). *)

let state_at tr i =
  match Trace.nth_state tr i with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Trace_logic: position %d out of range" i)

let action_at tr i = Trace.nth_action tr i

let eval_atom ~labels tr i = function
  | State_is s -> state_at tr i = s
  | Label name -> labels (state_at tr i) name
  | Action_is a -> (match action_at tr i with Some a' -> a' = a | None -> false)
  | Step (s, a) ->
    state_at tr i = s
    && (match action_at tr i with Some a' -> a' = a | None -> false)

let rec eval_at ~labels tr i f =
  let len = Trace.length tr in
  if i < 0 || i > len then
    invalid_arg (Printf.sprintf "Trace_logic: position %d out of range" i);
  match f with
  | True -> true
  | False -> false
  | Atom a -> eval_atom ~labels tr i a
  | Not g -> not (eval_at ~labels tr i g)
  | And (a, b) -> eval_at ~labels tr i a && eval_at ~labels tr i b
  | Or (a, b) -> eval_at ~labels tr i a || eval_at ~labels tr i b
  | Implies (a, b) -> (not (eval_at ~labels tr i a)) || eval_at ~labels tr i b
  | Next g -> i < len && eval_at ~labels tr (i + 1) g
  | Always g ->
    let rec go j = j > len || (eval_at ~labels tr j g && go (j + 1)) in
    go i
  | Eventually g ->
    let rec go j = j <= len && (eval_at ~labels tr j g || go (j + 1)) in
    go i
  | Until (a, b) ->
    let rec go j =
      j <= len
      && (eval_at ~labels tr j b
          || (eval_at ~labels tr j a && go (j + 1)))
    in
    go i

let eval ~labels tr f = eval_at ~labels tr 0 f

let indicator ~labels tr f = if eval ~labels tr f then 1.0 else 0.0

let violation_count ~labels tr f =
  let len = Trace.length tr in
  let count = ref 0 in
  for i = 0 to len do
    if not (eval_at ~labels tr i f) then incr count
  done;
  !count

let atom_to_string = function
  | State_is s -> Printf.sprintf "state=%d" s
  | Label l -> l
  | Action_is a -> Printf.sprintf "action=%s" a
  | Step (s, a) -> Printf.sprintf "(state=%d,action=%s)" s a

let rec to_string_prec prec f =
  let wrap p s = if prec > p then "(" ^ s ^ ")" else s in
  match f with
  | True -> "true"
  | False -> "false"
  | Atom a -> atom_to_string a
  | Not g -> "!" ^ to_string_prec 4 g
  (* & and | parse left-associatively: print the right operand one level
     up so right-nested trees re-parenthesise *)
  | And (a, b) -> wrap 3 (to_string_prec 3 a ^ " & " ^ to_string_prec 4 b)
  | Or (a, b) -> wrap 2 (to_string_prec 2 a ^ " | " ^ to_string_prec 3 b)
  | Implies (a, b) -> wrap 1 (to_string_prec 2 a ^ " => " ^ to_string_prec 1 b)
  | Next g -> "X " ^ to_string_prec 4 g
  | Always g -> "G " ^ to_string_prec 4 g
  | Eventually g -> "F " ^ to_string_prec 4 g
  | Until (a, b) -> wrap 0 (to_string_prec 4 a ^ " U " ^ to_string_prec 4 b)

let to_string f = to_string_prec 0 f
let pp fmt f = Format.pp_print_string fmt (to_string f)
