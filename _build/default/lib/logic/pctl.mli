(** Probabilistic Computation Tree Logic (PCTL) with reachability rewards.

    The property language of the paper: state formulas
    [P ~ b \[ψ\]] bound the probability of path formulas, and
    [R ~ r \[F φ\]] bounds the expected accumulated reward until reaching
    [φ]-states (PRISM's [R{"..."} ~ r \[F φ\]] operator, which the WSN case
    study uses as "number of forwarding attempts"). *)

type cmp = Lt | Le | Gt | Ge

type state_formula =
  | True
  | False
  | Prop of string  (** atomic proposition = model label *)
  | Not of state_formula
  | And of state_formula * state_formula
  | Or of state_formula * state_formula
  | Implies of state_formula * state_formula
  | Prob of cmp * float * path_formula
      (** [P ~ b \[ψ\]] with [b] in [0, 1] *)
  | Reward of cmp * float * state_formula
      (** [R ~ r \[F φ\]]: expected cumulated state reward until first
          reaching a [φ]-state *)

and path_formula =
  | Next of state_formula
  | Until of state_formula * state_formula
  | Bounded_until of state_formula * state_formula * int
  | Eventually of state_formula  (** [F φ ≡ true U φ] *)
  | Bounded_eventually of state_formula * int
  | Globally of state_formula  (** [G φ ≡ ¬F¬φ] *)
  | Bounded_globally of state_formula * int

(** {1 Helpers} *)

val compare_with : cmp -> float -> float -> bool
(** [compare_with op value bound] — e.g. [compare_with Ge p b] is [p >= b]. *)

val negate_cmp : cmp -> cmp
(** [negate_cmp Ge = Lt] etc. — the comparison for the complement event. *)

val flip_cmp : cmp -> cmp
(** [flip_cmp Ge = Le] — mirrors the comparison across equality, used when
    rewriting [P~b\[G φ\]] to [1 - P~'\[F ¬φ\]]. *)

val cmp_to_string : cmp -> string

val atomic_props : state_formula -> string list
(** Sorted, without duplicates. *)

val is_probabilistic : state_formula -> bool
(** Whether the formula contains a [P] or [R] operator. *)

val to_string : state_formula -> string
val path_to_string : path_formula -> string
val pp : Format.formatter -> state_formula -> unit
