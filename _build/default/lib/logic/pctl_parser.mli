(** Concrete syntax for PCTL formulas.

    Grammar (PRISM-flavoured):
    {v
      phi  ::= true | false | ident | ! phi | phi & phi | phi "|" phi
             | phi => phi | ( phi )
             | P cmp num [ psi ]          probability operator
             | R cmp num [ F phi ]        reachability reward
      psi  ::= X phi | F phi | G phi | phi U phi
             | F<=k phi | G<=k phi | phi U<=k phi
      cmp  ::= < | <= | > | >=
    v}
    Operator precedence: [!] binds tightest, then [&], then [|], then [=>]
    (right-associative). Examples accepted:
    - ["P>=0.99 [ F changedLane | reducedSpeed ]"]
    - ["R<=40 [ F delivered ]"]
    - ["P<0.05 [ !safe U<=10 crash ]"] *)

exception Parse_error of string
(** Carries a human-readable message with the offending position. *)

val parse : string -> Pctl.state_formula
(** @raise Parse_error on malformed input. *)

val parse_opt : string -> Pctl.state_formula option
