lib/logic/pctl_parser.ml: List Pctl Printf String
