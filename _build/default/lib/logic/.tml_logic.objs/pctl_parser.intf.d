lib/logic/pctl_parser.mli: Pctl
