lib/logic/pctl.ml: Format List Printf String
