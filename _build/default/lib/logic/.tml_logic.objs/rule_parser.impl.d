lib/logic/rule_parser.ml: List Printf String Trace_logic
