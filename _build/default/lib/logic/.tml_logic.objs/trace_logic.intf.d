lib/logic/trace_logic.mli: Format Trace
