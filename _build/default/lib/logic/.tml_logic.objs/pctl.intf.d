lib/logic/pctl.mli: Format
