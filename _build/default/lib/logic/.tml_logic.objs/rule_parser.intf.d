lib/logic/rule_parser.mli: Trace_logic
