lib/logic/trace_logic.ml: Format List Printf Trace
