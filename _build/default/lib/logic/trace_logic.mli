(** Trajectory rules: linear-temporal formulas interpreted over finite
    state/action traces (LTL over finite traces, "LTLf").

    These are the rules [φ_l(U)] of the paper's Reward Repair formulation
    (§IV-C): they can be propositional ("never visit S2"), first-order-ish
    via label atoms, or temporal ("whenever in the left lane, eventually
    return right"). The paper notes rules may be "in any logic that can be
    interpreted over a trajectory" — this module is that interpreter, and
    also covers the LTL extension mentioned in §VII. *)

type atom =
  | State_is of int  (** current state equals the given id *)
  | Label of string  (** current state carries the given model label *)
  | Action_is of string
      (** the action taken at the current step; always false at the final
          position, where no action is taken *)
  | Step of int * string  (** state [s] together with action [a] *)

type t =
  | True
  | False
  | Atom of atom
  | Not of t
  | And of t * t
  | Or of t * t
  | Implies of t * t
  | Next of t  (** strong next: false at the final position *)
  | Always of t
  | Eventually of t
  | Until of t * t

(** {1 Convenience constructors} *)

val never : t -> t
(** [never f = Always (Not f)] — e.g. "never reach the collision state". *)

val avoids_state : int -> t
val avoids_states : int list -> t
val takes_action_in : int -> string -> t
(** [takes_action_in s a]: globally, being in state [s] implies taking
    action [a]. *)

(** {1 Evaluation} *)

val eval : labels:(int -> string -> bool) -> Trace.t -> t -> bool
(** Satisfaction at the first position. [labels s name] tells whether model
    state [s] carries [name] (use [Mdp.has_label] / [Dtmc.has_label]). *)

val eval_at : labels:(int -> string -> bool) -> Trace.t -> int -> t -> bool
(** Satisfaction at position [i] (0-based; position [length t] is the final
    state). @raise Invalid_argument when [i] is outside the trace. *)

val indicator : labels:(int -> string -> bool) -> Trace.t -> t -> float
(** 1.0 when satisfied, else 0.0 — the [φ_l,g_l(U)] of Eq. 18. *)

val violation_count : labels:(int -> string -> bool) -> Trace.t -> t -> int
(** Number of positions at which the formula fails — a finer-grained
    violation degree used to shape the posterior-regularisation penalty. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
