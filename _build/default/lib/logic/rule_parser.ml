exception Parse_error of string

type token =
  | TRUE
  | FALSE
  | LABEL of string
  | STATE_IS of int
  | ACTION_IS of string
  | STEP of int * string
  | NOT
  | AND
  | OR
  | IMPLIES
  | NEXT
  | ALWAYS
  | EVENTUALLY
  | UNTIL
  | LPAREN
  | RPAREN
  | EOF

let token_to_string = function
  | TRUE -> "true"
  | FALSE -> "false"
  | LABEL l -> Printf.sprintf "label %S" l
  | STATE_IS s -> Printf.sprintf "state=%d" s
  | ACTION_IS a -> Printf.sprintf "action=%s" a
  | STEP (s, a) -> Printf.sprintf "(state=%d,action=%s)" s a
  | NOT -> "!"
  | AND -> "&"
  | OR -> "|"
  | IMPLIES -> "=>"
  | NEXT -> "X"
  | ALWAYS -> "G"
  | EVENTUALLY -> "F"
  | UNTIL -> "U"
  | LPAREN -> "("
  | RPAREN -> ")"
  | EOF -> "end of input"

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize s =
  let n = String.length s in
  let fail i msg = raise (Parse_error (Printf.sprintf "at offset %d: %s" i msg)) in
  let read_ident i =
    let j = ref i in
    while !j < n && is_ident_char s.[!j] do incr j done;
    (String.sub s i (!j - i), !j)
  in
  let read_int i =
    let j = ref i in
    while !j < n && is_digit s.[!j] do incr j done;
    if !j = i then fail i "expected a number";
    (int_of_string (String.sub s i (!j - i)), !j)
  in
  (* "state=N" / "action=NAME" possibly inside "(state=N, action=NAME)" *)
  let read_keyed i word =
    match word with
    | "state" ->
      if i < n && s.[i] = '=' then begin
        let v, j = read_int (i + 1) in
        (`State v, j)
      end
      else fail i "expected = after state"
    | "action" ->
      if i < n && s.[i] = '=' then begin
        let name, j = read_ident (i + 1) in
        if name = "" then fail i "expected an action name";
        (`Action name, j)
      end
      else fail i "expected = after action"
    | _ -> (`Label word, i)
  in
  let tokens = ref [] in
  let rec go i =
    if i >= n then List.rev (EOF :: !tokens)
    else
      match s.[i] with
      | ' ' | '\t' | '\n' -> go (i + 1)
      | '!' -> tokens := NOT :: !tokens; go (i + 1)
      | '&' -> tokens := AND :: !tokens; go (i + 1)
      | '|' -> tokens := OR :: !tokens; go (i + 1)
      | ')' -> tokens := RPAREN :: !tokens; go (i + 1)
      | '=' ->
        if i + 1 < n && s.[i + 1] = '>' then begin
          tokens := IMPLIES :: !tokens;
          go (i + 2)
        end
        else fail i "expected =>"
      | '(' ->
        (* Either a grouping paren or a "(state=N, action=NAME)" step atom.
           Try the step pattern with full lookahead; fall back to a plain
           LPAREN if it doesn't match completely. *)
        let try_step () =
          let j = ref (i + 1) in
          while !j < n && s.[!j] = ' ' do incr j done;
          if !j < n && is_ident_start s.[!j] then begin
            let word, k = read_ident !j in
            if word <> "state" then None
            else
              match read_keyed k word with
              | `State v, k ->
                let k = ref k in
                let skipped_sep = ref false in
                while !k < n && (s.[!k] = ' ' || s.[!k] = ',') do
                  if s.[!k] = ',' then skipped_sep := true;
                  incr k
                done;
                if (not !skipped_sep) || !k >= n || not (is_ident_start s.[!k])
                then None
                else begin
                  let word2, k2 = read_ident !k in
                  if word2 <> "action" then None
                  else
                    match read_keyed k2 word2 with
                    | `Action a, k3 ->
                      let k3 = ref k3 in
                      while !k3 < n && s.[!k3] = ' ' do incr k3 done;
                      if !k3 < n && s.[!k3] = ')' then Some (v, a, !k3 + 1)
                      else None
                    | _ -> None
                end
              | _ -> None
          end
          else None
        in
        (match try_step () with
         | exception Parse_error _ ->
           tokens := LPAREN :: !tokens;
           go (i + 1)
         | Some (v, a, next) ->
           tokens := STEP (v, a) :: !tokens;
           go next
         | None ->
           tokens := LPAREN :: !tokens;
           go (i + 1))
      | c when is_ident_start c ->
        let word, j = read_ident i in
        (match word with
         | "true" -> tokens := TRUE :: !tokens; go j
         | "false" -> tokens := FALSE :: !tokens; go j
         | "X" -> tokens := NEXT :: !tokens; go j
         | "G" -> tokens := ALWAYS :: !tokens; go j
         | "F" -> tokens := EVENTUALLY :: !tokens; go j
         | "U" -> tokens := UNTIL :: !tokens; go j
         | _ ->
           (match read_keyed j word with
            | `State v, j -> tokens := STATE_IS v :: !tokens; go j
            | `Action a, j -> tokens := ACTION_IS a :: !tokens; go j
            | `Label l, j -> tokens := LABEL l :: !tokens; go j))
      | c -> fail i (Printf.sprintf "unexpected character %C" c)
  in
  go 0

type stream = { mutable toks : token list }

let peek st = match st.toks with [] -> EOF | t :: _ -> t
let advance st = match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let expect st tok =
  let got = peek st in
  if got = tok then advance st
  else
    raise
      (Parse_error
         (Printf.sprintf "expected %s but found %s" (token_to_string tok)
            (token_to_string got)))

(* precedence: unary (!, X, G, F) > & > | > => > U *)
let rec parse_until st =
  let lhs = parse_implies st in
  match peek st with
  | UNTIL ->
    advance st;
    let rhs = parse_until st in
    Trace_logic.Until (lhs, rhs)
  | _ -> lhs

and parse_implies st =
  let lhs = parse_or st in
  match peek st with
  | IMPLIES ->
    advance st;
    Trace_logic.Implies (lhs, parse_implies st)
  | _ -> lhs

and parse_or st =
  let lhs = parse_and st in
  let rec go acc =
    match peek st with
    | OR ->
      advance st;
      go (Trace_logic.Or (acc, parse_and st))
    | _ -> acc
  in
  go lhs

and parse_and st =
  let lhs = parse_unary st in
  let rec go acc =
    match peek st with
    | AND ->
      advance st;
      go (Trace_logic.And (acc, parse_unary st))
    | _ -> acc
  in
  go lhs

and parse_unary st =
  match peek st with
  | NOT -> advance st; Trace_logic.Not (parse_unary st)
  | NEXT -> advance st; Trace_logic.Next (parse_unary st)
  | ALWAYS -> advance st; Trace_logic.Always (parse_unary st)
  | EVENTUALLY -> advance st; Trace_logic.Eventually (parse_unary st)
  | _ -> parse_atom st

and parse_atom st =
  match peek st with
  | TRUE -> advance st; Trace_logic.True
  | FALSE -> advance st; Trace_logic.False
  | LABEL l -> advance st; Trace_logic.Atom (Trace_logic.Label l)
  | STATE_IS v -> advance st; Trace_logic.Atom (Trace_logic.State_is v)
  | ACTION_IS a -> advance st; Trace_logic.Atom (Trace_logic.Action_is a)
  | STEP (v, a) -> advance st; Trace_logic.Atom (Trace_logic.Step (v, a))
  | LPAREN ->
    advance st;
    let f = parse_until st in
    expect st RPAREN;
    f
  | t ->
    raise
      (Parse_error
         (Printf.sprintf "expected a rule but found %s" (token_to_string t)))

let parse s =
  let st = { toks = tokenize s } in
  let f = parse_until st in
  (match peek st with
   | EOF -> ()
   | t ->
     raise
       (Parse_error
          (Printf.sprintf "trailing input starting with %s" (token_to_string t))));
  f

let parse_opt s = match parse s with f -> Some f | exception Parse_error _ -> None
