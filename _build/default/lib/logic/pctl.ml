type cmp = Lt | Le | Gt | Ge

type state_formula =
  | True
  | False
  | Prop of string
  | Not of state_formula
  | And of state_formula * state_formula
  | Or of state_formula * state_formula
  | Implies of state_formula * state_formula
  | Prob of cmp * float * path_formula
  | Reward of cmp * float * state_formula

and path_formula =
  | Next of state_formula
  | Until of state_formula * state_formula
  | Bounded_until of state_formula * state_formula * int
  | Eventually of state_formula
  | Bounded_eventually of state_formula * int
  | Globally of state_formula
  | Bounded_globally of state_formula * int

let compare_with op value bound =
  match op with
  | Lt -> value < bound
  | Le -> value <= bound
  | Gt -> value > bound
  | Ge -> value >= bound

let negate_cmp = function Lt -> Ge | Le -> Gt | Gt -> Le | Ge -> Lt
let flip_cmp = function Lt -> Gt | Le -> Ge | Gt -> Lt | Ge -> Le

let cmp_to_string = function Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="

let rec collect_props acc = function
  | True | False -> acc
  | Prop p -> p :: acc
  | Not f -> collect_props acc f
  | And (a, b) | Or (a, b) | Implies (a, b) ->
    collect_props (collect_props acc a) b
  | Prob (_, _, psi) -> collect_path acc psi
  | Reward (_, _, f) -> collect_props acc f

and collect_path acc = function
  | Next f | Eventually f | Bounded_eventually (f, _)
  | Globally f | Bounded_globally (f, _) ->
    collect_props acc f
  | Until (a, b) | Bounded_until (a, b, _) ->
    collect_props (collect_props acc a) b

let atomic_props f = List.sort_uniq String.compare (collect_props [] f)

let rec is_probabilistic = function
  | True | False | Prop _ -> false
  | Not f -> is_probabilistic f
  | And (a, b) | Or (a, b) | Implies (a, b) ->
    is_probabilistic a || is_probabilistic b
  | Prob _ | Reward _ -> true

(* Shortest decimal form that parses back to the same float. *)
let float_to_string f =
  let s = Printf.sprintf "%.12g" f in
  if float_of_string s = f then s else Printf.sprintf "%.17g" f

(* Printing with minimal parentheses: ! binds tightest, then &, |, =>. *)
let rec to_string_prec prec f =
  let wrap p s = if prec > p then "(" ^ s ^ ")" else s in
  match f with
  | True -> "true"
  | False -> "false"
  | Prop p -> p
  | Not g -> "!" ^ to_string_prec 3 g
  (* & and | parse left-associatively, so the right operand is printed one
     precedence level up to re-parenthesise right-nested trees. *)
  | And (a, b) -> wrap 2 (to_string_prec 2 a ^ " & " ^ to_string_prec 3 b)
  | Or (a, b) -> wrap 1 (to_string_prec 1 a ^ " | " ^ to_string_prec 2 b)
  | Implies (a, b) -> wrap 0 (to_string_prec 1 a ^ " => " ^ to_string_prec 0 b)
  | Prob (op, b, psi) ->
    Printf.sprintf "P%s%s [ %s ]" (cmp_to_string op) (float_to_string b)
      (path_to_string psi)
  | Reward (op, r, f) ->
    Printf.sprintf "R%s%s [ F %s ]" (cmp_to_string op) (float_to_string r)
      (to_string_prec 3 f)

and path_to_string = function
  | Next f -> "X " ^ to_string_prec 3 f
  | Until (a, b) -> to_string_prec 3 a ^ " U " ^ to_string_prec 3 b
  | Bounded_until (a, b, h) ->
    Printf.sprintf "%s U<=%d %s" (to_string_prec 3 a) h (to_string_prec 3 b)
  | Eventually f -> "F " ^ to_string_prec 3 f
  | Bounded_eventually (f, h) -> Printf.sprintf "F<=%d %s" h (to_string_prec 3 f)
  | Globally f -> "G " ^ to_string_prec 3 f
  | Bounded_globally (f, h) -> Printf.sprintf "G<=%d %s" h (to_string_prec 3 f)

let to_string f = to_string_prec 0 f
let pp fmt f = Format.pp_print_string fmt (to_string f)
