(** Concrete syntax for trajectory rules ({!Trace_logic}).

    {v
      rule ::= true | false | atom | ! rule | rule & rule | rule "|" rule
             | rule => rule | X rule | G rule | F rule | rule U rule
             | ( rule )
      atom ::= state=N | action=NAME | (state=N, action=NAME) | NAME
    v}
    A bare identifier is a model-label atom. Precedence: [!]/[X]/[G]/[F]
    bind tightest, then [&], [|], [=>], and [U] loosest. [parse] is a left
    inverse of {!Trace_logic.to_string} (property-tested). *)

exception Parse_error of string

val parse : string -> Trace_logic.t
(** @raise Parse_error on malformed input. *)

val parse_opt : string -> Trace_logic.t option
