exception Parse_error of string

type token =
  | TRUE
  | FALSE
  | IDENT of string
  | NUM of float
  | P_OP
  | R_OP
  | X_OP
  | U_OP
  | F_OP
  | G_OP
  | LT
  | LE
  | GT
  | GE
  | LBRACKET
  | RBRACKET
  | LPAREN
  | RPAREN
  | AND
  | OR
  | NOT
  | IMPLIES
  | EOF

let token_to_string = function
  | TRUE -> "true"
  | FALSE -> "false"
  | IDENT s -> Printf.sprintf "identifier %S" s
  | NUM f -> Printf.sprintf "number %g" f
  | P_OP -> "P"
  | R_OP -> "R"
  | X_OP -> "X"
  | U_OP -> "U"
  | F_OP -> "F"
  | G_OP -> "G"
  | LT -> "<"
  | LE -> "<="
  | GT -> ">"
  | GE -> ">="
  | LBRACKET -> "["
  | RBRACKET -> "]"
  | LPAREN -> "("
  | RPAREN -> ")"
  | AND -> "&"
  | OR -> "|"
  | NOT -> "!"
  | IMPLIES -> "=>"
  | EOF -> "end of input"

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize s =
  let n = String.length s in
  let tokens = ref [] in
  let fail i msg =
    raise (Parse_error (Printf.sprintf "at offset %d: %s" i msg))
  in
  let rec go i =
    if i >= n then List.rev (EOF :: !tokens)
    else
      match s.[i] with
      | ' ' | '\t' | '\n' | '\r' -> go (i + 1)
      | '[' -> tokens := LBRACKET :: !tokens; go (i + 1)
      | ']' -> tokens := RBRACKET :: !tokens; go (i + 1)
      | '(' -> tokens := LPAREN :: !tokens; go (i + 1)
      | ')' -> tokens := RPAREN :: !tokens; go (i + 1)
      | '&' -> tokens := AND :: !tokens; go (i + 1)
      | '|' -> tokens := OR :: !tokens; go (i + 1)
      | '!' -> tokens := NOT :: !tokens; go (i + 1)
      | '=' ->
        if i + 1 < n && s.[i + 1] = '>' then begin
          tokens := IMPLIES :: !tokens;
          go (i + 2)
        end
        else fail i "expected => after ="
      | '<' ->
        if i + 1 < n && s.[i + 1] = '=' then begin
          tokens := LE :: !tokens;
          go (i + 2)
        end
        else begin tokens := LT :: !tokens; go (i + 1) end
      | '>' ->
        if i + 1 < n && s.[i + 1] = '=' then begin
          tokens := GE :: !tokens;
          go (i + 2)
        end
        else begin tokens := GT :: !tokens; go (i + 1) end
      | c when is_digit c ->
        let j = ref i in
        while !j < n && (is_digit s.[!j] || s.[!j] = '.') do incr j done;
        (* optional exponent, e.g. 1e-05 as printed by %g *)
        if
          !j < n
          && (s.[!j] = 'e' || s.[!j] = 'E')
          && !j + 1 < n
          && (is_digit s.[!j + 1]
              || ((s.[!j + 1] = '+' || s.[!j + 1] = '-')
                  && !j + 2 < n
                  && is_digit s.[!j + 2]))
        then begin
          incr j;
          if s.[!j] = '+' || s.[!j] = '-' then incr j;
          while !j < n && is_digit s.[!j] do incr j done
        end;
        let lit = String.sub s i (!j - i) in
        (match float_of_string_opt lit with
         | Some f -> tokens := NUM f :: !tokens; go !j
         | None -> fail i (Printf.sprintf "bad number %S" lit))
      | c when is_ident_start c ->
        let j = ref i in
        while !j < n && is_ident_char s.[!j] do incr j done;
        let word = String.sub s i (!j - i) in
        let tok =
          match word with
          | "true" -> TRUE
          | "false" -> FALSE
          | "P" -> P_OP
          | "R" -> R_OP
          | "X" -> X_OP
          | "U" -> U_OP
          | "F" -> F_OP
          | "G" -> G_OP
          | _ -> IDENT word
        in
        tokens := tok :: !tokens;
        go !j
      | c -> fail i (Printf.sprintf "unexpected character %C" c)
  in
  go 0

(* Recursive-descent parser over the token list. *)
type stream = { mutable toks : token list }

let peek st = match st.toks with [] -> EOF | t :: _ -> t

let advance st =
  match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let expect st tok =
  let got = peek st in
  if got = tok then advance st
  else
    raise
      (Parse_error
         (Printf.sprintf "expected %s but found %s" (token_to_string tok)
            (token_to_string got)))

let parse_cmp st =
  match peek st with
  | LT -> advance st; Pctl.Lt
  | LE -> advance st; Pctl.Le
  | GT -> advance st; Pctl.Gt
  | GE -> advance st; Pctl.Ge
  | t ->
    raise
      (Parse_error
         (Printf.sprintf "expected a comparison (<, <=, >, >=) but found %s"
            (token_to_string t)))

let parse_num st =
  match peek st with
  | NUM f -> advance st; f
  | t ->
    raise
      (Parse_error
         (Printf.sprintf "expected a number but found %s" (token_to_string t)))

let parse_int st =
  let f = parse_num st in
  let i = int_of_float f in
  if float_of_int i <> f || i < 0 then
    raise (Parse_error (Printf.sprintf "expected a non-negative integer, got %g" f));
  i

(* optional step bound "<= k" after F/G/U *)
let parse_bound_opt st =
  match peek st with
  | LE ->
    advance st;
    Some (parse_int st)
  | _ -> None

let rec parse_formula st = parse_implies st

and parse_implies st =
  let lhs = parse_or st in
  match peek st with
  | IMPLIES ->
    advance st;
    let rhs = parse_implies st in
    Pctl.Implies (lhs, rhs)
  | _ -> lhs

and parse_or st =
  let lhs = parse_and st in
  let rec go acc =
    match peek st with
    | OR ->
      advance st;
      go (Pctl.Or (acc, parse_and st))
    | _ -> acc
  in
  go lhs

and parse_and st =
  let lhs = parse_unary st in
  let rec go acc =
    match peek st with
    | AND ->
      advance st;
      go (Pctl.And (acc, parse_unary st))
    | _ -> acc
  in
  go lhs

and parse_unary st =
  match peek st with
  | NOT ->
    advance st;
    Pctl.Not (parse_unary st)
  | _ -> parse_atom st

and parse_atom st =
  match peek st with
  | TRUE -> advance st; Pctl.True
  | FALSE -> advance st; Pctl.False
  | IDENT name -> advance st; Pctl.Prop name
  | LPAREN ->
    advance st;
    let f = parse_formula st in
    expect st RPAREN;
    f
  | P_OP ->
    advance st;
    let op = parse_cmp st in
    let b = parse_num st in
    if b < 0.0 || b > 1.0 then
      raise (Parse_error (Printf.sprintf "probability bound %g outside [0,1]" b));
    expect st LBRACKET;
    let psi = parse_path st in
    expect st RBRACKET;
    Pctl.Prob (op, b, psi)
  | R_OP ->
    advance st;
    let op = parse_cmp st in
    let r = parse_num st in
    expect st LBRACKET;
    expect st F_OP;
    let f = parse_unary st in
    expect st RBRACKET;
    Pctl.Reward (op, r, f)
  | t ->
    raise
      (Parse_error
         (Printf.sprintf "expected a formula but found %s" (token_to_string t)))

and parse_path st =
  match peek st with
  | X_OP ->
    advance st;
    Pctl.Next (parse_unary_full st)
  | F_OP ->
    advance st;
    (match parse_bound_opt st with
     | Some h -> Pctl.Bounded_eventually (parse_unary_full st, h)
     | None -> Pctl.Eventually (parse_unary_full st))
  | G_OP ->
    advance st;
    (match parse_bound_opt st with
     | Some h -> Pctl.Bounded_globally (parse_unary_full st, h)
     | None -> Pctl.Globally (parse_unary_full st))
  | _ ->
    let lhs = parse_unary_full st in
    expect st U_OP;
    (match parse_bound_opt st with
     | Some h -> Pctl.Bounded_until (lhs, parse_unary_full st, h)
     | None -> Pctl.Until (lhs, parse_unary_full st))

(* Inside a path operator the operand may be a full boolean combination,
   e.g. [F changedLane | reducedSpeed]. We parse up to (but excluding) U so
   that "a | b U c" groups as "(a|b) U c" is *not* silently produced —
   instead the left operand of U stops at the first U. To keep the grammar
   predictable we allow or/and/implies combinations here. *)
and parse_unary_full st =
  let lhs = parse_or st in
  match peek st with
  | IMPLIES ->
    advance st;
    Pctl.Implies (lhs, parse_unary_full st)
  | _ -> lhs

let parse s =
  let st = { toks = tokenize s } in
  let f = parse_formula st in
  (match peek st with
   | EOF -> ()
   | t ->
     raise
       (Parse_error
          (Printf.sprintf "trailing input starting with %s" (token_to_string t))));
  f

let parse_opt s = match parse s with f -> Some f | exception Parse_error _ -> None
