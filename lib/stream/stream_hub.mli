(** The watch hub: subscription state and push notifications for the
    streaming subsystem ([tml watch]).

    A hub wraps any {!Server.handler} — a single-node router's or a
    fleet coordinator's — and intercepts the three watch ops
    ([Watch_op], [Append_chunk], [Unwatch]); every other request is
    delegated unchanged.  Each watch owns an {!Inc_learn} learner and an
    {!Inc_check} checker: an appended chunk folds into the counts, the
    property is re-checked (µs cached path while the support is
    unchanged), and a violation submits a Data Repair job {e through the
    wrapped handler} — on a coordinator the repair fans out to backends
    while all watch state stays local, which is what lets a backend die
    mid-stream without losing a single subscription.

    {b Notifications.}  Violations, completed repairs and repair errors
    are broadcast to every subscriber as server-push frames (rendered on
    each connection's event loop via the function given to {!set_push}).
    Every notification is also appended to a bounded per-watch replay
    log; a subscriber that reconnects with [from_seq] (the last seq it
    saw) is replayed everything it missed, so a killed-and-restarted
    follower observes every violation exactly once.

    {b Observability.}  [watch:register] / [watch:append] /
    [watch:notify] trace spans; [tml_watch_subscriptions],
    [tml_watch_watches], [tml_watch_appends_total],
    [tml_watch_violations_total], [tml_watch_notifications_total],
    [tml_watch_replayed_total] and the latency-to-detection histogram
    [tml_watch_detect_seconds]. *)

type t

val create : ?replay_cap:int -> ?repair_wait_s:float -> Server.handler -> t
(** Wrap [handler].  [replay_cap] (default 256) bounds each watch's
    replay log (oldest entries are dropped past it — a subscriber away
    longer than the cap re-syncs by re-reading state, which the
    operations runbook covers).  [repair_wait_s] (default 120) bounds
    the notifier's wait on each repair job before broadcasting a
    transient timeout error instead.  Spawns the notifier thread. *)

val handler : t -> Server.handler
(** The wrapped handler to serve: watch ops intercepted ([Watch_op] and
    [Unwatch] are [`Fast]; [Append_chunk] is [`Slow] — it parses,
    re-checks and may re-run elimination), the rest delegated.  Its
    [on_drain] first lets queued repair notifications broadcast, then
    joins the notifier thread, then drains the wrapped handler. *)

val set_push : t -> (client:int -> Wire.json -> bool) -> unit
(** Install the push delivery function — normally
    [fun ~client j -> Server.push srv ~client j], once the server is
    started.  Until installed, every push is refused and subscribers
    are dropped on first notification (they can re-attach). *)

val subscriptions : t -> int
(** Active (client, watch) subscription pairs. *)

val watch_count : t -> int

val notification_queue_bytes : t -> int
(** Total rendered bytes held in the per-watch replay logs. *)

val stats_fields : t -> unit -> (string * Wire.json) list
(** Extra ["server"]-section stats fields — pass as [?stats_extra] to
    {!Server.start} so [tml client stats] can render subscription count
    and notification-queue bytes. *)
