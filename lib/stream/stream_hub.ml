(* The watch hub: subscription state for the streaming subsystem.  It
   wraps any {!Server.handler} (a router's or a coordinator's) and
   intercepts the three watch ops; everything else — including the
   repair jobs that violations kick off — goes to the wrapped handler,
   so a hub on a fleet coordinator fans repairs out to backends while
   the watch state stays on the coordinator. *)

(* ----------------------------- metrics ----------------------------- *)

let subs_gauge =
  Metrics.gauge "tml_watch_subscriptions"
    ~help:"Active watch subscriptions (client, watch) pairs"

let watches_gauge =
  Metrics.gauge "tml_watch_watches" ~help:"Registered watches"

let appends_counter =
  Metrics.counter "tml_watch_appends_total"
    ~help:"Trace chunks folded into incremental learners"

let violations_counter =
  Metrics.counter "tml_watch_violations_total"
    ~help:"Appends whose re-check found the property violated"

let notif_counter =
  Metrics.counter "tml_watch_notifications_total"
    ~help:"Notifications broadcast (violation, repair and error events)"

let replayed_counter =
  Metrics.counter "tml_watch_replayed_total"
    ~help:"Logged notifications replayed to reconnecting subscribers"

let detect_hist =
  Metrics.histogram "tml_watch_detect_seconds"
    ~buckets:Metrics.default_time_buckets
    ~help:
      "Latency from chunk arrival to violation detection (the \
       incremental re-check, cached or eliminated)"

(* ------------------------------ types ------------------------------ *)

type watch = {
  id : string;
  spec : Wire.watch_spec;
  learner : Inc_learn.t;
  checker : Inc_check.t;
  wm : Mutex.t;  (* serialises appends (and their checks) per watch *)
  mutable seq : int;  (* last broadcast notification seq, from 0 *)
  mutable subscribers : int list;  (* client ids, newest first *)
  mutable replay : (Wire.notification * int) list;
      (* newest first, bounded by [replay_cap]; the int is the rendered
         frame-body size, for the notification-queue-bytes stat *)
  mutable replay_bytes : int;
}

type task = { tw : watch; digest : string }
(* a violation's repair job to await and broadcast *)

type t = {
  wrapped : Server.handler;
  replay_cap : int;
  repair_wait_s : float;
  m : Mutex.t;  (* registry, subscribers, seq and replay logs *)
  watches : (string, watch) Hashtbl.t;
  mutable push_fn : client:int -> Wire.json -> bool;
  nm : Mutex.t;  (* notifier queue *)
  ncv : Condition.t;
  nq : task Queue.t;
  mutable nbusy : int;  (* tasks taken but not yet broadcast *)
  mutable nquit : bool;
  mutable nthreads : Thread.t list;
}

let locked m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let bad message =
  Wire.Error_reply { Wire.kind = "bad-request"; message; transient = false }

(* Coordinators annotate responses with their serving node — unwrap
   before matching. *)
let rec base_response = function
  | Wire.Annotated (_, r) -> base_response r
  | r -> r

(* --------------------------- notifications -------------------------- *)

let update_sub_gauge t =
  let n =
    Hashtbl.fold
      (fun _ w acc -> acc + List.length w.subscribers)
      t.watches 0
  in
  Metrics.set_gauge subs_gauge (float_of_int n)

(* Broadcast one event on [w]: assign the next seq, log it for replay,
   and push it to every live subscriber (a dead one — push refused — is
   dropped).  Called with [t.m] held. *)
let broadcast_locked t w ~event ?value ?job ?report ?error () =
  w.seq <- w.seq + 1;
  let n =
    {
      Wire.watch = w.id;
      seq = w.seq;
      event;
      value;
      job;
      report;
      error;
    }
  in
  let j = Wire.notification_to_json n in
  let size = String.length (Wire.render j) in
  w.replay <- (n, size) :: w.replay;
  w.replay_bytes <- w.replay_bytes + size;
  let rec cap k = function
    | [] -> []
    | [ (_, s) ] when k >= t.replay_cap ->
      w.replay_bytes <- w.replay_bytes - s;
      []
    | e :: rest -> e :: cap (k + 1) rest
  in
  if List.length w.replay > t.replay_cap then begin
    (* drop the oldest entries past the cap (rare: one append, one entry) *)
    let keep = cap 1 w.replay in
    w.replay <- keep
  end;
  Metrics.incr notif_counter;
  ignore
    (Trace_span.event "watch:notify"
       ~attrs:
         [ ("watch", w.id); ("event", event); ("seq", string_of_int w.seq) ]
      : int option);
  let live =
    List.filter (fun client -> t.push_fn ~client j) w.subscribers
  in
  if List.length live <> List.length w.subscribers then begin
    w.subscribers <- live;
    update_sub_gauge t
  end

let broadcast t w ~event ?value ?job ?report ?error () =
  locked t.m (fun () ->
      broadcast_locked t w ~event ?value ?job ?report ?error ())

(* ----------------------------- notifier ----------------------------- *)

(* Await the repair job a violation submitted, then broadcast its
   outcome.  Runs on the hub's own thread so an elimination-heavy
   repair never blocks an event loop or an append. *)
let notifier t () =
  let take () =
    locked t.nm (fun () ->
        let rec go () =
          if t.nquit then None
          else if not (Queue.is_empty t.nq) then begin
            t.nbusy <- t.nbusy + 1;
            Some (Queue.pop t.nq)
          end
          else begin
            Condition.wait t.ncv t.nm;
            go ()
          end
        in
        go ())
  in
  let done_one () =
    locked t.nm (fun () ->
        t.nbusy <- t.nbusy - 1;
        Condition.broadcast t.ncv)
  in
  let rec go () =
    match take () with
    | None -> ()
    | Some { tw; digest } ->
      (let resp =
         try
           base_response
             (t.wrapped.Server.on_request ~client:0
                (Wire.Wait (digest, Some t.repair_wait_s)))
         with e -> Wire.Error_reply (Wire.err_of_exn e)
       in
       match resp with
       | Wire.Status { state = Wire.Job_done report; _ } ->
         broadcast t tw ~event:"repair" ~job:digest ~report ()
       | Wire.Status { state = Wire.Job_failed e; _ } ->
         broadcast t tw ~event:"error" ~job:digest ~error:e ()
       | Wire.Status { state = Wire.Job_cancelled; _ } ->
         broadcast t tw ~event:"error" ~job:digest
           ~error:
             {
               Wire.kind = "cancelled";
               message = "repair job cancelled";
               transient = false;
             }
           ()
       | Wire.Status { state = Wire.Job_timed_out | Wire.Job_pending; _ } ->
         broadcast t tw ~event:"error" ~job:digest
           ~error:
             {
               Wire.kind = "timeout";
               message = "repair job still running past the wait deadline";
               transient = true;
             }
           ()
       | Wire.Error_reply e ->
         broadcast t tw ~event:"error" ~job:digest ~error:e ()
       | _ -> ());
      done_one ();
      go ()
  in
  go ()

let enqueue_repair_wait t w digest =
  locked t.nm (fun () ->
      Queue.push { tw = w; digest } t.nq;
      Condition.broadcast t.ncv)

(* ------------------------------ watch ops --------------------------- *)

let checker_of_spec (s : Wire.watch_spec) =
  let phi = Pctl_parser.parse s.phi in
  let rewards =
    Option.map
      (fun rs -> Array.of_list (List.map Ratio.of_float rs))
      s.rewards
  in
  Inc_check.create ~n:s.states ~init:s.init ~labels:s.labels ?rewards phi

let validate_spec (s : Wire.watch_spec) =
  if s.states < 1 then Some "watch spec: states must be >= 1"
  else if s.init < 0 || s.init >= s.states then
    Some "watch spec: init out of range"
  else None

let subscribe_locked t w client =
  if not (List.mem client w.subscribers) then begin
    w.subscribers <- client :: w.subscribers;
    update_sub_gauge t
  end

let handle_watch_op t ~client ~watch ~spec ~from_seq =
  if watch = "" then bad "watch id must be non-empty"
  else
    match
      match spec with
      | Some s -> (
          match validate_spec s with
          | Some msg -> `Err msg
          | None -> (
              (* parse outside the registry lock; creation below re-checks
                 existence, so a lost race just attaches *)
              match checker_of_spec s with
              | checker -> `Spec (s, checker)
              | exception e ->
                `Err
                  (Printf.sprintf "watch spec: %s"
                     (Wire.err_of_exn e).Wire.message)))
      | None -> `Attach
    with
    | `Err msg -> bad msg
    | (`Spec _ | `Attach) as reg -> (
        let outcome =
          locked t.m (fun () ->
              match (Hashtbl.find_opt t.watches watch, reg) with
              | Some w, `Spec (s, _) when s <> w.spec ->
                `Mismatch
              | Some w, _ ->
                subscribe_locked t w client;
                `Sub (w, false)
              | None, `Attach -> `Unknown
              | None, `Spec (s, checker) ->
                let w =
                  {
                    id = watch;
                    spec = s;
                    learner = Inc_learn.create ~n:s.states;
                    checker;
                    wm = Mutex.create ();
                    seq = 0;
                    subscribers = [];
                    replay = [];
                    replay_bytes = 0;
                  }
                in
                Hashtbl.replace t.watches watch w;
                Metrics.set_gauge watches_gauge
                  (float_of_int (Hashtbl.length t.watches));
                subscribe_locked t w client;
                `Sub (w, true))
        in
        match outcome with
        | `Mismatch ->
          bad
            (Printf.sprintf "watch %S exists with a different spec" watch)
        | `Unknown ->
          bad
            (Printf.sprintf
               "no such watch %S (registration needs a spec)" watch)
        | `Sub (w, created) ->
          ignore
            (Trace_span.event "watch:register"
               ~attrs:
                 [
                   ("watch", watch);
                   ("client", string_of_int client);
                   ("created", string_of_bool created);
                 ]
              : int option);
          (* reconnect catch-up: replay logged notifications the
             subscriber missed.  The pushes are posted to the client's
             event loop, which renders them after the [Watched] reply. *)
          (match from_seq with
           | None -> ()
           | Some from_seq ->
             let missed =
               locked t.m (fun () ->
                   List.filter
                     (fun ((n : Wire.notification), _) -> n.seq > from_seq)
                     (List.rev w.replay))
             in
             List.iter
               (fun ((n : Wire.notification), _) ->
                 if t.push_fn ~client (Wire.notification_to_json n) then
                   Metrics.incr replayed_counter)
               missed);
          Wire.Watched { watch; seq = w.seq; created })

let handle_append t ~client:_ ~watch ~chunk =
  match locked t.m (fun () -> Hashtbl.find_opt t.watches watch) with
  | None -> bad (Printf.sprintf "no such watch %S" watch)
  | Some w ->
    locked w.wm (fun () ->
        let t0 = Unix.gettimeofday () in
        Metrics.incr appends_counter;
        Trace_span.with_span "watch:append"
          ~attrs:
            [ ("watch", watch); ("bytes", string_of_int (String.length chunk)) ]
          (fun () ->
            let r = Inc_learn.append w.learner chunk in
            let verdict =
              (* a reward target the current support cannot reach yet is
                 not an error — the check just has no value *)
              match
                Inc_check.check w.checker
                  ~support_changed:r.Inc_learn.support_changed
                  (Inc_learn.counts w.learner)
              with
              | v -> Some v
              | exception _ -> None
            in
            let value = Option.map (fun v -> v.Inc_check.value) verdict in
            let violated =
              match verdict with Some v -> v.Inc_check.violated | None -> false
            in
            let recheck =
              match verdict with
              | Some { Inc_check.path = `Cached; _ } -> "cached"
              | Some { Inc_check.path = `Eliminated; _ } -> "eliminated"
              | None -> "unavailable"
            in
            let job =
              if not violated then None
              else begin
                Metrics.observe detect_hist (Unix.gettimeofday () -. t0);
                Metrics.incr violations_counter;
                let traces = Trace_io.to_string (Inc_learn.groups w.learner) in
                let submit =
                  try
                    base_response
                      (t.wrapped.Server.on_request ~client:0
                         (Wire.Submit
                            (Wire.job_request_of_watch w.spec ~traces)))
                  with e -> Wire.Error_reply (Wire.err_of_exn e)
                in
                match submit with
                | Wire.Accepted { job = digest; _ } ->
                  broadcast t w ~event:"violation" ?value ~job:digest ();
                  enqueue_repair_wait t w digest;
                  Some digest
                | Wire.Error_reply e ->
                  broadcast t w ~event:"error" ?value ~error:e ();
                  None
                | _ -> None
              end
            in
            Wire.Appended
              {
                watch;
                lines = r.Inc_learn.lines;
                support_changed = r.Inc_learn.support_changed;
                value;
                violated;
                job;
                recheck;
              }))

let handle_unwatch t ~client ~watch =
  locked t.m (fun () ->
      match Hashtbl.find_opt t.watches watch with
      | None -> Wire.Unwatched { watch; existed = false }
      | Some w ->
        let existed = List.mem client w.subscribers in
        if existed then begin
          w.subscribers <- List.filter (fun c -> c <> client) w.subscribers;
          update_sub_gauge t
        end;
        Wire.Unwatched { watch; existed })

let on_disconnect t ~client =
  locked t.m (fun () ->
      let changed = ref false in
      Hashtbl.iter
        (fun _ w ->
          if List.mem client w.subscribers then begin
            w.subscribers <- List.filter (fun c -> c <> client) w.subscribers;
            changed := true
          end)
        t.watches;
      if !changed then update_sub_gauge t);
  t.wrapped.Server.on_disconnect ~client

(* ------------------------------ handler ----------------------------- *)

let drain t ~timeout_s =
  (* let queued repair notifications go out before the wrapped drain *)
  let deadline = Unix.gettimeofday () +. timeout_s in
  let idle () =
    locked t.nm (fun () -> Queue.is_empty t.nq && t.nbusy = 0)
  in
  while (not (idle ())) && Unix.gettimeofday () < deadline do
    Thread.delay 0.02
  done;
  locked t.nm (fun () ->
      t.nquit <- true;
      Condition.broadcast t.ncv);
  List.iter Thread.join t.nthreads;
  t.nthreads <- [];
  t.wrapped.Server.on_drain ~timeout_s

let handle t ~client req =
  match req with
  | Wire.Watch_op { watch; spec; from_seq } ->
    handle_watch_op t ~client ~watch ~spec ~from_seq
  | Wire.Append_chunk { watch; chunk } -> handle_append t ~client ~watch ~chunk
  | Wire.Unwatch watch -> handle_unwatch t ~client ~watch
  | req -> t.wrapped.Server.on_request ~client req

let handler t =
  {
    Server.on_request =
      (fun ~client req ->
        try handle t ~client req
        with e -> Wire.Error_reply (Wire.err_of_exn e));
    classify =
      (function
        | Wire.Append_chunk _ -> `Slow  (* parses, checks, may eliminate *)
        | Wire.Watch_op _ | Wire.Unwatch _ -> `Fast
        | req -> t.wrapped.Server.classify req);
    on_stop = (fun () -> t.wrapped.Server.on_stop ());
    on_drain = (fun ~timeout_s -> drain t ~timeout_s);
    pending =
      (fun () ->
        t.wrapped.Server.pending ()
        + locked t.nm (fun () -> Queue.length t.nq + t.nbusy));
    on_disconnect = (fun ~client -> on_disconnect t ~client);
  }

(* ----------------------------- lifecycle ---------------------------- *)

let create ?(replay_cap = 256) ?(repair_wait_s = 120.0) wrapped =
  if replay_cap < 1 then invalid_arg "Stream_hub.create: replay_cap >= 1";
  let t =
    {
      wrapped;
      replay_cap;
      repair_wait_s;
      m = Mutex.create ();
      watches = Hashtbl.create 16;
      push_fn = (fun ~client:_ _ -> false);
      nm = Mutex.create ();
      ncv = Condition.create ();
      nq = Queue.create ();
      nbusy = 0;
      nquit = false;
      nthreads = [];
    }
  in
  t.nthreads <- [ Thread.create (notifier t) () ];
  t

let set_push t push_fn = t.push_fn <- push_fn

let subscriptions t =
  locked t.m (fun () ->
      Hashtbl.fold
        (fun _ w acc -> acc + List.length w.subscribers)
        t.watches 0)

let watch_count t = locked t.m (fun () -> Hashtbl.length t.watches)

let notification_queue_bytes t =
  locked t.m (fun () ->
      Hashtbl.fold (fun _ w acc -> acc + w.replay_bytes) t.watches 0)

let stats_fields t () =
  [
    ("subscriptions", Wire.Num (float_of_int (subscriptions t)));
    ("watches", Wire.Num (float_of_int (watch_count t)));
    ( "notification_queue_bytes",
      Wire.Num (float_of_int (notification_queue_bytes t)) );
  ]
