(** The incremental MLE learner: folds appended trace chunks into
    transition counts without re-reading history.

    A learner owns the running count matrix, the cross-chunk parser state
    (the current [group] and a buffered partial trailing line), and the
    absolute line counter, so chunk boundaries are invisible: feeding a
    trace file in any number of pieces — even split mid-line — produces
    counts, groups and line numbers byte-identical to
    {!Trace_io.parse} + {!Mle.transition_counts} on the concatenation.

    Appends are atomic: every complete line of a chunk is parsed and
    range-validated (with {e absolute} stream line numbers, satisfying
    the chunk-validation contract) before any count is touched, so a
    malformed chunk raises {!Trace_io.Parse_error} and leaves the
    learner exactly as it was. *)

type t

type append_result = {
  lines : int;  (** complete lines consumed from this append *)
  new_traces : int;
  support_changed : bool;
      (** did any count go 0 → positive? (support only grows, so
          [false] means the cached rational function is still valid and
          the checker can take the µs re-evaluation path) *)
}

val create : n:int -> t
(** A fresh learner over state space [0..n-1] with all-zero counts. *)

val append : t -> string -> append_result
(** Fold one appended chunk.  Only complete lines are consumed; a
    trailing partial line is buffered and completed by the next append.
    @raise Trace_io.Parse_error (with the true stream line number) on a
    malformed or out-of-range line — the learner is left unchanged. *)

val flush : t -> append_result
(** Consume the buffered partial line, if any, as a final line (what a
    batch parse of text without a trailing newline would do). *)

val num_states : t -> int

val counts : t -> float array array
(** The live count matrix — do not mutate. *)

val support : t -> (int * int) list
(** Observed edges [(src, dst)] with positive count, in row-major
    order — equal to [Mle.observed_support] on {!counts}. *)

val support_size : t -> int

val groups : t -> (string * Trace.t list) list
(** Accumulated traces in {!Trace_io.parse} form (groups in order of
    first appearance, traces in arrival order, unused default group
    dropped) — the input a batch {!Data_repair.spec} would be built
    from. *)

val lines_consumed : t -> int
(** Complete lines consumed so far (= the absolute line number of the
    last consumed line). *)

val pending_bytes : t -> int
(** Bytes of buffered partial line awaiting the next append. *)

val trace_count : t -> int
