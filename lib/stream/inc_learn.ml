type t = {
  n : int;
  counts : float array array;
  mutable support_size : int;
  mutable lines : int;
  mutable pending : string;
  mutable groups : (string * Trace.t list ref) list;
  mutable current : Trace.t list ref;
  mutable trace_count : int;
}

type append_result = {
  lines : int;
  new_traces : int;
  support_changed : bool;
}

let create ~n =
  if n <= 0 then invalid_arg "Inc_learn.create: need at least one state";
  let default = ref [] in
  {
    n;
    counts = Array.make_matrix n n 0.0;
    support_size = 0;
    lines = 0;
    pending = "";
    groups = [ ("", default) ];
    current = default;
    trace_count = 0;
  }

type event = Blank | Group of string | Trace_line of Trace.t

let validate_states t lineno tr =
  List.iter
    (fun s ->
       if s < 0 || s >= t.n then
         raise
           (Trace_io.Parse_error
              (Printf.sprintf "line %d: state %d out of range [0,%d)" lineno s
                 t.n)))
    (Trace.states tr)

(* Parse (and fully validate) every complete line before mutating any
   state, so a malformed chunk leaves the learner untouched and the
   client can fix and resend it. *)
let parse_events (t : t) lines =
  List.mapi
    (fun i line ->
       let lineno = t.lines + i + 1 in
       match Trace_io.parse_line ~lineno line with
       | Trace_io.Blank -> Blank
       | Trace_io.Group name -> Group name
       | Trace_io.Trace_line tr ->
         validate_states t lineno tr;
         Trace_line tr)
    lines

(* Walk a trace's steps against the current counts: does folding it turn
   any zero count positive?  (Support only ever grows.) *)
let grows_support t tr =
  let rec go = function
    | a :: (b :: _ as rest) ->
      if t.counts.(a).(b) = 0.0 then true else go rest
    | _ -> false
  in
  go (Trace.states tr)

let apply_events t events =
  let new_traces = ref 0 in
  let changed = ref false in
  List.iter
    (fun ev ->
       match ev with
       | Blank -> ()
       | Group name ->
         (match List.assoc_opt name t.groups with
          | Some r -> t.current <- r
          | None ->
            let r = ref [] in
            t.groups <- t.groups @ [ (name, r) ];
            t.current <- r)
       | Trace_line tr ->
         if grows_support t tr then changed := true;
         Mle.count_trace ~n:t.n t.counts tr;
         t.current := tr :: !(t.current);
         incr new_traces;
         t.trace_count <- t.trace_count + 1)
    events;
  if !changed then begin
    let size = ref 0 in
    Array.iter
      (Array.iter (fun c -> if c > 0.0 then incr size))
      t.counts;
    t.support_size <- !size
  end;
  (!new_traces, !changed)

let append t chunk =
  let text = t.pending ^ chunk in
  match String.rindex_opt text '\n' with
  | None ->
    t.pending <- text;
    { lines = 0; new_traces = 0; support_changed = false }
  | Some j ->
    let complete = String.sub text 0 j in
    let rest = String.sub text (j + 1) (String.length text - j - 1) in
    let lines = String.split_on_char '\n' complete in
    let events = parse_events t lines in
    let new_traces, support_changed = apply_events t events in
    t.lines <- t.lines + List.length lines;
    t.pending <- rest;
    { lines = List.length lines; new_traces; support_changed }

let flush t =
  if t.pending = "" then { lines = 0; new_traces = 0; support_changed = false }
  else begin
    let line = t.pending in
    let events = parse_events t [ line ] in
    let new_traces, support_changed = apply_events t events in
    t.lines <- t.lines + 1;
    t.pending <- "";
    { lines = 1; new_traces; support_changed }
  end

let num_states t = t.n
let counts (t : t) = t.counts
let lines_consumed (t : t) = t.lines
let pending_bytes t = String.length t.pending
let trace_count t = t.trace_count
let support_size t = t.support_size

let support t =
  let edges = ref [] in
  for s = t.n - 1 downto 0 do
    for d = t.n - 1 downto 0 do
      if t.counts.(s).(d) > 0.0 then edges := (s, d) :: !edges
    done
  done;
  !edges

let groups t =
  t.groups
  |> List.filter_map (fun (name, r) ->
      match List.rev !r with
      | [] when name = "" -> None
      | traces -> Some (name, traces))
