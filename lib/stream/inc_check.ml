type verdict = {
  value : float;
  violated : bool;
  path : [ `Cached | `Eliminated ];
}

type row = {
  src : int;
  dests : int array;  (** ascending; length >= 2 *)
  names : string array;  (** parameter names for dests.(0 .. k-2) *)
}

type compiled = {
  query : Pquery.query;
  rows : row list;  (** only sources with >= 2 observed edges carry params *)
}

type t = {
  n : int;
  init : int;
  labels : (string * int list) list;
  rewards : Ratio.t array option;
  phi : Pctl.state_formula;
  mutable compiled : compiled option;
  mutable eliminations : int;
  mutable cached_rechecks : int;
}

let create ~n ~init ?(labels = []) ?rewards phi =
  { n; init; labels; rewards; phi; compiled = None; eliminations = 0;
    cached_rechecks = 0 }

let var s d = Printf.sprintf "p%d_%d" s d

(* Build the per-support parametric chain: each source with k >= 2
   observed edges gets k-1 free parameters and a closing
   [1 - sum] edge (rows must sum to 1 symbolically); single-edge
   sources are deterministic and unobserved sources absorb, exactly
   mirroring [Mle.learn_dtmc]'s shape at any parameter point. *)
let build t counts =
  let dests_of = Array.make t.n [] in
  for s = t.n - 1 downto 0 do
    for d = t.n - 1 downto 0 do
      if counts.(s).(d) > 0.0 then dests_of.(s) <- d :: dests_of.(s)
    done
  done;
  let transitions = ref [] in
  let rows = ref [] in
  for s = 0 to t.n - 1 do
    match dests_of.(s) with
    | [] -> transitions := (s, s, Ratfun.one) :: !transitions
    | [ d ] -> transitions := (s, d, Ratfun.one) :: !transitions
    | dests ->
      let dests = Array.of_list dests in
      let k = Array.length dests in
      let names = Array.init (k - 1) (fun i -> var s dests.(i)) in
      let sum = ref Ratfun.zero in
      Array.iteri
        (fun i name ->
           let f = Ratfun.var name in
           sum := Ratfun.add !sum f;
           transitions := (s, dests.(i), f) :: !transitions)
        names;
      transitions :=
        (s, dests.(k - 1), Ratfun.sub Ratfun.one !sum) :: !transitions;
      rows := { src = s; dests; names } :: !rows
  done;
  let rewards = Option.map (Array.map Ratfun.const) t.rewards in
  let pdtmc =
    Pdtmc.make ~n:t.n ~init:t.init ~transitions:!transitions ~labels:t.labels
      ?rewards ()
  in
  { query = Pquery.of_formula pdtmc t.phi; rows = List.rev !rows }

(* The parameter point: normalised counts for every free edge. *)
let env_of rows counts =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun { src; dests; names } ->
       let total = Array.fold_left (fun acc d -> acc +. counts.(src).(d)) 0.0 dests in
       Array.iteri
         (fun i name -> Hashtbl.replace tbl name (counts.(src).(dests.(i)) /. total))
         names)
    rows;
  fun name ->
    match Hashtbl.find_opt tbl name with
    | Some v -> v
    | None -> invalid_arg ("Inc_check: unbound parameter " ^ name)

let satisfied cmp bound v =
  match (cmp : Pctl.cmp) with
  | Le -> v <= bound
  | Lt -> v < bound
  | Ge -> v >= bound
  | Gt -> v > bound

let check t ?(support_changed = false) counts =
  let compiled, path =
    match t.compiled with
    | Some c when not support_changed ->
      t.cached_rechecks <- t.cached_rechecks + 1;
      (c, `Cached)
    | _ ->
      let c = build t counts in
      t.compiled <- Some c;
      t.eliminations <- t.eliminations + 1;
      (c, `Eliminated)
  in
  let q = compiled.query in
  let value = q.Pquery.eval (env_of compiled.rows counts) in
  { value; violated = not (satisfied q.Pquery.cmp q.Pquery.bound value); path }

let param_point t counts =
  match t.compiled with
  | None -> []
  | Some c ->
    List.concat_map
      (fun { src; dests; names } ->
         let total =
           Array.fold_left (fun acc d -> acc +. counts.(src).(d)) 0.0 dests
         in
         Array.to_list
           (Array.mapi (fun i name -> (name, counts.(src).(dests.(i)) /. total)) names))
      c.rows

let eliminations t = t.eliminations
let cached_rechecks t = t.cached_rechecks
let invalidate t = t.compiled <- None
