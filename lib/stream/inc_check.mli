(** The incremental checker: µs-scale φ re-checks on a cached rational
    function, re-running state elimination only when the count support
    changes.

    The checker compiles the watched property once per {e support}: it
    builds a parametric chain whose free parameters are the normalised
    transition counts (each source with [k >= 2] observed edges gets
    [k-1] parameters and a closing [1 - Σ] edge), runs parametric model
    checking ({!Pquery.of_formula} — state elimination, cached in the
    runtime's elimination LRU by structural digest), and keeps the
    compiled arena.  While the support is unchanged, a re-check is just
    an arena evaluation at the new parameter point — microseconds —
    which is what makes per-chunk latency-to-detection viable. *)

type verdict = {
  value : float;  (** the checked probability / expected reward *)
  violated : bool;
  path : [ `Cached | `Eliminated ];
      (** [`Cached]: arena re-evaluation only; [`Eliminated]: the
          support changed (or first check) and elimination re-ran *)
}

type t

val create :
  n:int ->
  init:int ->
  ?labels:(string * int list) list ->
  ?rewards:Ratio.t array ->
  Pctl.state_formula ->
  t
(** A checker for one watched property over state space [0..n-1].  The
    formula must be a single top-level [P ~ b] / [R ~ r] operator
    ({!Pquery.of_formula}'s fragment). *)

val check : t -> ?support_changed:bool -> float array array -> verdict
(** Re-check against the given count matrix.  [support_changed]
    (default [false]) forces recompilation; the first check always
    compiles.  @raise Pquery.Unsupported on out-of-fragment formulas
    and {!Elimination.Not_almost_sure} on reward queries whose target
    the current support cannot reach (e.g. too few traces yet). *)

val param_point : t -> float array array -> (string * float) list
(** The current parameter valuation [(name, normalised count)] under
    the compiled support — the deterministic witness the differential
    tests compare across chunkings.  Empty before the first check. *)

val eliminations : t -> int
(** Times elimination ran (first check + support changes). *)

val cached_rechecks : t -> int
(** Times the µs cached path served a re-check. *)

val invalidate : t -> unit
(** Drop the compiled support (the next check re-eliminates). *)
