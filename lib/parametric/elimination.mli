(** Exact parametric model checking by state elimination
    (Daws 2004; Hahn, Hermanns, Zhang 2010 — the algorithm behind
    PRISM/PARAM's parametric engines).

    Both queries return a closed-form {!Ratfun} over the chain's parameters:
    - the probability of eventually reaching a target set, and
    - the expected state-reward accumulated until first reaching it.

    These are exactly the [f(v)] of Proposition 2 (Eq. 5) and the
    reward-counterpart used in the WSN case study: the repair NLP then
    constrains [f(v) ~ b] numerically. *)

type order =
  | Min_degree  (** eliminate the state with fewest in×out edges first *)
  | Ascending  (** by state index *)
  | Descending

exception Not_almost_sure of int
(** Raised by {!expected_reward} when the given state (reachable from the
    initial state) does not reach the target with probability 1 for generic
    parameter values — the expected reward is infinite there. *)

type memo = key:string -> compute:(unit -> Ratfun.t) -> Ratfun.t
(** An installable whole-query cache.  [key] is a structural digest of
    (query kind, elimination order, target set, chain); [compute] performs
    the elimination.  The hook decides whether to serve a cached value or
    run (and record) the computation — the runtime layer installs an LRU
    cache with request coalescing here. *)

val set_memo : memo option -> unit
(** Install (or, with [None], remove) the process-wide elimination memo.
    The hook may be called concurrently from several domains; installers
    must provide their own synchronisation.  With no hook installed both
    queries always run the elimination directly. *)

val reachability_probability :
  ?order:order -> Pdtmc.t -> target:int list -> Ratfun.t
(** [Pr(init ⊨ F target)] as a rational function of the parameters.
    Exact for every parameter valuation that keeps all structurally-present
    edges strictly positive (the interior of the feasible region, which is
    where Model/Data Repair searches). *)

val expected_reward : ?order:order -> Pdtmc.t -> target:int list -> Ratfun.t
(** Expected accumulated state reward until first reaching the target
    (PRISM's [R \[F target\]]); target-state rewards are not counted.
    @raise Not_almost_sure when the target is not reached almost surely. *)

val eliminated_states : Pdtmc.t -> target:int list -> int
(** Number of states the probability query actually eliminates — exposed
    for the elimination-order ablation benchmark. *)
