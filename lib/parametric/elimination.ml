module Imap = Map.Make (Int)
module Iset = Set.Make (Int)

type order = Min_degree | Ascending | Descending

exception Not_almost_sure of int

(* ------------------------------------------------------------------ *)
(* Memo hook: an installable cache for whole-query elimination results.  *)
(* The runtime layer installs a bounded, thread-safe cache here so that   *)
(* repeated queries on structurally identical chains skip elimination     *)
(* entirely.  The hook receives a structural key and a thunk computing    *)
(* the result; with no hook installed the thunk runs directly.            *)
(* ------------------------------------------------------------------ *)

type memo = key:string -> compute:(unit -> Ratfun.t) -> Ratfun.t

let memo_hook : memo option Atomic.t = Atomic.make None
let set_memo m = Atomic.set memo_hook m

let order_tag = function
  | Min_degree -> "m"
  | Ascending -> "a"
  | Descending -> "d"

let memoized ~kind ~order pdtmc ~target compute =
  match Atomic.get memo_hook with
  | None -> compute ()
  | Some memo ->
    let key =
      Printf.sprintf "%s:%s:%s:%s" kind (order_tag order)
        (String.concat "," (List.map string_of_int (List.sort compare target)))
        (Pdtmc.digest pdtmc)
    in
    memo ~key ~compute

(* ------------------------------------------------------------------ *)
(* Structural graph analyses (an edge exists iff its ratfun is not the  *)
(* zero function)                                                       *)
(* ------------------------------------------------------------------ *)

let forward_reachable rows init =
  let n = Array.length rows in
  let mark = Array.make n false in
  let queue = Queue.create () in
  mark.(init) <- true;
  Queue.add init queue;
  while not (Queue.is_empty queue) do
    let s = Queue.pop queue in
    Imap.iter
      (fun d _ ->
         if not mark.(d) then begin
           mark.(d) <- true;
           Queue.add d queue
         end)
      rows.(s)
  done;
  mark

let backward_reachable rows from =
  let n = Array.length rows in
  let preds = Array.make n [] in
  Array.iteri
    (fun s row -> Imap.iter (fun d _ -> preds.(d) <- s :: preds.(d)) row)
    rows;
  let mark = Array.make n false in
  let queue = Queue.create () in
  Iset.iter
    (fun s ->
       mark.(s) <- true;
       Queue.add s queue)
    from;
  while not (Queue.is_empty queue) do
    let s = Queue.pop queue in
    List.iter
      (fun p ->
         if not mark.(p) then begin
           mark.(p) <- true;
           Queue.add p queue
         end)
      preds.(s)
  done;
  mark

(* ------------------------------------------------------------------ *)
(* Core elimination: solve E(s) = r(s) + Σ_v p(s,v) E(v) on the states  *)
(* in [active], all other E-values being 0.  Returns E(init).           *)
(* ------------------------------------------------------------------ *)

let solve ~order ~rows ~rew ~active ~init =
  let n = Array.length rows in
  (* Local mutable copies restricted to active states. *)
  let p = Array.make n Imap.empty in
  Array.iteri
    (fun s row ->
       if active.(s) then
         p.(s) <- Imap.filter (fun d _ -> active.(d)) row)
    rows;
  let r = Array.copy rew in
  let preds = Array.make n Iset.empty in
  Array.iteri
    (fun s row -> Imap.iter (fun d _ -> preds.(d) <- Iset.add s preds.(d)) row)
    p;
  let alive = Array.copy active in
  let to_eliminate =
    List.filter (fun s -> alive.(s) && s <> init) (List.init n Fun.id)
  in
  let degree s = Iset.cardinal preds.(s) * Imap.cardinal p.(s) in
  let pick remaining =
    match order with
    | Ascending -> List.hd remaining
    | Descending -> List.hd (List.rev remaining)
    | Min_degree ->
      List.fold_left
        (fun best s -> if degree s < degree best then s else best)
        (List.hd remaining) remaining
  in
  let eliminate s =
    let self = Option.value ~default:Ratfun.zero (Imap.find_opt s p.(s)) in
    let one_minus = Ratfun.sub Ratfun.one self in
    if Ratfun.is_zero one_minus then begin
      (* p(s,s) ≡ 1: a trap; passing through contributes nothing finite.
         Structural pre-analysis removes such states from reward queries, so
         here simply cut s out (its E-value is 0 in probability queries). *)
      Iset.iter
        (fun u -> if u <> s then p.(u) <- Imap.remove s p.(u))
        preds.(s);
      Imap.iter (fun d _ -> preds.(d) <- Iset.remove s preds.(d)) p.(s);
      p.(s) <- Imap.empty;
      alive.(s) <- false
    end
    else begin
      let factor = Ratfun.inv one_minus in
      let out = Imap.remove s p.(s) in
      let r_s = Ratfun.mul factor r.(s) in
      let scaled_out = Imap.map (fun f -> Ratfun.mul factor f) out in
      Iset.iter
        (fun u ->
           if u <> s then begin
             match Imap.find_opt s p.(u) with
             | None -> ()
             | Some p_us ->
               r.(u) <- Ratfun.add r.(u) (Ratfun.mul p_us r_s);
               Imap.iter
                 (fun v f ->
                    let contrib = Ratfun.mul p_us f in
                    p.(u) <-
                      Imap.update v
                        (function
                          | None -> Some contrib
                          | Some g ->
                            let sum = Ratfun.add g contrib in
                            if Ratfun.is_zero sum then None else Some sum)
                        p.(u);
                    preds.(v) <- Iset.add u preds.(v))
                 scaled_out;
               p.(u) <- Imap.remove s p.(u)
           end)
        preds.(s);
      Imap.iter (fun d _ -> preds.(d) <- Iset.remove s preds.(d)) p.(s);
      preds.(s) <- Iset.empty;
      p.(s) <- Imap.empty;
      alive.(s) <- false
    end
  in
  let rec loop remaining =
    match remaining with
    | [] -> ()
    | _ ->
      let s = pick remaining in
      eliminate s;
      loop (List.filter (fun x -> x <> s) remaining)
  in
  loop to_eliminate;
  (* E(init) = r(init) / (1 - p(init,init)) *)
  let self = Option.value ~default:Ratfun.zero (Imap.find_opt init p.(init)) in
  let one_minus = Ratfun.sub Ratfun.one self in
  if Ratfun.is_zero one_minus then Ratfun.zero
  else Ratfun.mul (Ratfun.inv one_minus) r.(init)

(* ------------------------------------------------------------------ *)

let rows_of pdtmc =
  Array.init (Pdtmc.num_states pdtmc) (fun s ->
      List.fold_left
        (fun acc (d, f) -> Imap.add d f acc)
        Imap.empty (Pdtmc.succ pdtmc s))

let check_target n target =
  List.iter
    (fun s ->
       if s < 0 || s >= n then
         invalid_arg (Printf.sprintf "Elimination: target state %d out of range" s))
    target;
  if target = [] then invalid_arg "Elimination: empty target set"

let reachability_probability ?(order = Min_degree) pdtmc ~target =
  let n = Pdtmc.num_states pdtmc in
  check_target n target;
  memoized ~kind:"prob" ~order pdtmc ~target @@ fun () ->
  let init = Pdtmc.init_state pdtmc in
  let tset = Iset.of_list target in
  if Iset.mem init tset then Ratfun.one
  else begin
    let rows = rows_of pdtmc in
    let reach = forward_reachable rows init in
    let can_reach_target = backward_reachable rows tset in
    if not can_reach_target.(init) then Ratfun.zero
    else begin
      (* maybe-states: reachable, can reach target, not target *)
      let active =
        Array.init n (fun s ->
            reach.(s) && can_reach_target.(s) && not (Iset.mem s tset))
      in
      (* r(s) = direct mass into the target set *)
      let rew =
        Array.init n (fun s ->
            if not active.(s) then Ratfun.zero
            else
              Imap.fold
                (fun d f acc ->
                   if Iset.mem d tset then Ratfun.add acc f else acc)
                rows.(s) Ratfun.zero)
      in
      solve ~order ~rows ~rew ~active ~init
    end
  end

let expected_reward ?(order = Min_degree) pdtmc ~target =
  let n = Pdtmc.num_states pdtmc in
  check_target n target;
  memoized ~kind:"rew" ~order pdtmc ~target @@ fun () ->
  let init = Pdtmc.init_state pdtmc in
  let tset = Iset.of_list target in
  if Iset.mem init tset then Ratfun.zero
  else begin
    let rows = rows_of pdtmc in
    let reach = forward_reachable rows init in
    let can_reach_target = backward_reachable rows tset in
    (* Structural almost-sure check: from every reachable state the target
       must remain reachable (for generic parameter values this implies
       probability-1 reachability on finite chains iff no reachable trap
       avoids the target). *)
    Array.iteri
      (fun s r -> if r && not can_reach_target.(s) then raise (Not_almost_sure s))
      reach;
    let active = Array.init n (fun s -> reach.(s) && not (Iset.mem s tset)) in
    let rew =
      Array.init n (fun s ->
          if active.(s) then Pdtmc.reward pdtmc s else Ratfun.zero)
    in
    solve ~order ~rows ~rew ~active ~init
  end

let eliminated_states pdtmc ~target =
  let n = Pdtmc.num_states pdtmc in
  check_target n target;
  let init = Pdtmc.init_state pdtmc in
  let tset = Iset.of_list target in
  let rows = rows_of pdtmc in
  let reach = forward_reachable rows init in
  let can = backward_reachable rows tset in
  let count = ref 0 in
  for s = 0 to n - 1 do
    if reach.(s) && can.(s) && (not (Iset.mem s tset)) && s <> init then incr count
  done;
  !count
