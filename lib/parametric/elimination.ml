module Imap = Map.Make (Int)
module Iset = Set.Make (Int)
module P = Poly
module Q = Ratio

type order = Min_degree | Ascending | Descending

let normalize_saved =
  Metrics.counter "tml_elim_normalize_saved_total"
    ~help:
      "Ratfun normalizations avoided by carrying factored rational \
       functions through elimination instead of normalizing per edge update"

(* ------------------------------------------------------------------ *)
(* Factored rational functions (the PARAM/Storm trick).                 *)
(*                                                                      *)
(* During elimination every value is  c * Π nf_i^ei / Π df_j^ej  with   *)
(* [c] an expanded polynomial and the factor multisets kept symbolic.   *)
(* Additions then build the true LCM of the two denominators from the   *)
(* factor multisets instead of blindly multiplying them — which is      *)
(* where the naive pairing blows up: without multivariate gcd, a        *)
(* redundant common factor introduced by one add can never be cancelled *)
(* again and gets squared by every subsequent one.  Multiplications     *)
(* cancel matching num/den factors by multiset subtraction, i.e. the    *)
(* frequent  p(s,s)-denominator vs row-denominator  cancellations cost  *)
(* a map lookup instead of a polynomial gcd.  Nothing is normalized     *)
(* until the single Ratfun.make per query at the very end.              *)
(* ------------------------------------------------------------------ *)

(* Read per solve, not at module init, so differential tests can flip the
   switch with [Unix.putenv] mid-process. *)
let use_factored () =
  match Sys.getenv_opt "TML_ELIM_FACTORED" with Some "0" -> false | _ -> true

module Pmap = Map.Make (Poly)

type fr = { c : P.t; nf : int Pmap.t; df : int Pmap.t }

let fr_zero = { c = P.zero; nf = Pmap.empty; df = Pmap.empty }
let fr_one = { c = P.one; nf = Pmap.empty; df = Pmap.empty }
let fr_is_zero t = P.is_zero t.c
let fr_neg t = { t with c = P.neg t.c }

(* Scale a factor so its canonical coefficient is 1 (matching Ratfun's
   scaling rule closely enough that equal factors arising on different
   paths unify); returns the extracted scalar. *)
let canon_factor p =
  let k = P.coeff_of_const p in
  if Q.is_zero k || Q.equal k Q.one then (Q.one, p)
  else (k, P.scale (Q.inv k) p)

let mset_add f e m =
  Pmap.update f (function None -> Some e | Some e0 -> Some (e0 + e)) m

let mset_union = Pmap.union (fun _ a b -> Some (a + b))

(* Remove the common part of two factor multisets. *)
let mset_cancel a b =
  if Pmap.is_empty a || Pmap.is_empty b then (a, b)
  else
    Pmap.fold
      (fun f ea (a, b) ->
         match Pmap.find_opt f b with
         | None -> (a, b)
         | Some eb ->
           let k = Stdlib.min ea eb in
           let drop e m = if e = k then Pmap.remove f m else Pmap.add f (e - k) m in
           (drop ea a, drop eb b))
      a (a, b)

let expand m = Pmap.fold (fun f e acc -> P.mul acc (P.pow f e)) m P.one

let fr_of_ratfun f =
  if Ratfun.is_zero f then fr_zero
  else begin
    let den = Ratfun.den f in
    match P.to_const_opt den with
    | Some k -> { fr_zero with c = P.scale (Q.inv k) (Ratfun.num f) }
    | None ->
      let k, den = canon_factor den in
      { c = P.scale (Q.inv k) (Ratfun.num f);
        nf = Pmap.empty;
        df = Pmap.singleton den 1 }
  end

let fr_to_ratfun t =
  if fr_is_zero t then Ratfun.zero
  else Ratfun.make (P.mul t.c (expand t.nf)) (expand t.df)

let fr_mul a b =
  if fr_is_zero a || fr_is_zero b then fr_zero
  else begin
    let nf, df = mset_cancel (mset_union a.nf b.nf) (mset_union a.df b.df) in
    { c = P.mul a.c b.c; nf; df }
  end

let fr_inv t =
  if fr_is_zero t then raise Division_by_zero;
  match P.to_const_opt t.c with
  | Some k -> { c = P.const (Q.inv k); nf = t.df; df = t.nf }
  | None ->
    let k, f = canon_factor t.c in
    let nf, df = mset_cancel t.df (mset_add f 1 t.nf) in
    { c = P.const (Q.inv k); nf; df }

let fr_add a b =
  if fr_is_zero a then b
  else if fr_is_zero b then a
  else begin
    (* true common denominator: factor-wise max *)
    let lcm = Pmap.union (fun _ ea eb -> Some (Stdlib.max ea eb)) a.df b.df in
    let cofactor d =
      Pmap.fold
        (fun f e acc ->
           let have = Option.value ~default:0 (Pmap.find_opt f d) in
           if e > have then P.mul acc (P.pow f (e - have)) else acc)
        lcm P.one
    in
    (* hoist shared numerator factors out of the sum *)
    let common =
      Pmap.merge
        (fun _ ea eb ->
           match (ea, eb) with
           | Some ea, Some eb -> Some (Stdlib.min ea eb)
           | _ -> None)
        a.nf b.nf
    in
    let rest t = Pmap.fold (fun f e m ->
        let e = e - Option.value ~default:0 (Pmap.find_opt f common) in
        if e > 0 then Pmap.add f e m else m) t.nf Pmap.empty
    in
    let side t =
      P.mul t.c (P.mul (expand (rest t)) (cofactor t.df))
    in
    let c = P.add (side a) (side b) in
    if P.is_zero c then fr_zero
    else begin
      let nf, df = mset_cancel common lcm in
      { c; nf; df }
    end
  end

exception Not_almost_sure of int

(* ------------------------------------------------------------------ *)
(* Memo hook: an installable cache for whole-query elimination results.  *)
(* The runtime layer installs a bounded, thread-safe cache here so that   *)
(* repeated queries on structurally identical chains skip elimination     *)
(* entirely.  The hook receives a structural key and a thunk computing    *)
(* the result; with no hook installed the thunk runs directly.            *)
(* ------------------------------------------------------------------ *)

type memo = key:string -> compute:(unit -> Ratfun.t) -> Ratfun.t

let memo_hook : memo option Atomic.t = Atomic.make None
let set_memo m = Atomic.set memo_hook m

let order_tag = function
  | Min_degree -> "m"
  | Ascending -> "a"
  | Descending -> "d"

let memoized ~kind ~order pdtmc ~target compute =
  match Atomic.get memo_hook with
  | None -> compute ()
  | Some memo ->
    let key =
      Printf.sprintf "%s:%s:%s:%s" kind (order_tag order)
        (String.concat "," (List.map string_of_int (List.sort compare target)))
        (Pdtmc.digest pdtmc)
    in
    memo ~key ~compute

(* ------------------------------------------------------------------ *)
(* Structural graph analyses (an edge exists iff its ratfun is not the  *)
(* zero function)                                                       *)
(* ------------------------------------------------------------------ *)

let forward_reachable rows init =
  let n = Array.length rows in
  let mark = Array.make n false in
  let queue = Queue.create () in
  mark.(init) <- true;
  Queue.add init queue;
  while not (Queue.is_empty queue) do
    let s = Queue.pop queue in
    Imap.iter
      (fun d _ ->
         if not mark.(d) then begin
           mark.(d) <- true;
           Queue.add d queue
         end)
      rows.(s)
  done;
  mark

let backward_reachable rows from =
  let n = Array.length rows in
  let preds = Array.make n [] in
  Array.iteri
    (fun s row -> Imap.iter (fun d _ -> preds.(d) <- s :: preds.(d)) row)
    rows;
  let mark = Array.make n false in
  let queue = Queue.create () in
  Iset.iter
    (fun s ->
       mark.(s) <- true;
       Queue.add s queue)
    from;
  while not (Queue.is_empty queue) do
    let s = Queue.pop queue in
    List.iter
      (fun p ->
         if not mark.(p) then begin
           mark.(p) <- true;
           Queue.add p queue
         end)
      preds.(s)
  done;
  mark

(* ------------------------------------------------------------------ *)
(* Core elimination: solve E(s) = r(s) + Σ_v p(s,v) E(v) on the states  *)
(* in [active], all other E-values being 0.  Returns E(init).           *)
(* ------------------------------------------------------------------ *)

(* Per-edge normalized arithmetic — the reference implementation kept as an
   ablation/debugging path (TML_ELIM_FACTORED=0). *)
let solve_ratfun ~order ~rows ~rew ~active ~init =
  let n = Array.length rows in
  (* Local mutable copies restricted to active states. *)
  let p = Array.make n Imap.empty in
  Array.iteri
    (fun s row ->
       if active.(s) then
         p.(s) <- Imap.filter (fun d _ -> active.(d)) row)
    rows;
  let r = Array.copy rew in
  let preds = Array.make n Iset.empty in
  Array.iteri
    (fun s row -> Imap.iter (fun d _ -> preds.(d) <- Iset.add s preds.(d)) row)
    p;
  let alive = Array.copy active in
  let to_eliminate =
    List.filter (fun s -> alive.(s) && s <> init) (List.init n Fun.id)
  in
  let degree s = Iset.cardinal preds.(s) * Imap.cardinal p.(s) in
  let pick remaining =
    match order with
    | Ascending -> List.hd remaining
    | Descending -> List.hd (List.rev remaining)
    | Min_degree ->
      List.fold_left
        (fun best s -> if degree s < degree best then s else best)
        (List.hd remaining) remaining
  in
  let eliminate s =
    let self = Option.value ~default:Ratfun.zero (Imap.find_opt s p.(s)) in
    let one_minus = Ratfun.sub Ratfun.one self in
    if Ratfun.is_zero one_minus then begin
      (* p(s,s) ≡ 1: a trap; passing through contributes nothing finite.
         Structural pre-analysis removes such states from reward queries, so
         here simply cut s out (its E-value is 0 in probability queries). *)
      Iset.iter
        (fun u -> if u <> s then p.(u) <- Imap.remove s p.(u))
        preds.(s);
      Imap.iter (fun d _ -> preds.(d) <- Iset.remove s preds.(d)) p.(s);
      p.(s) <- Imap.empty;
      alive.(s) <- false
    end
    else begin
      let factor = Ratfun.inv one_minus in
      let out = Imap.remove s p.(s) in
      let r_s = Ratfun.mul factor r.(s) in
      let scaled_out = Imap.map (fun f -> Ratfun.mul factor f) out in
      Iset.iter
        (fun u ->
           if u <> s then begin
             match Imap.find_opt s p.(u) with
             | None -> ()
             | Some p_us ->
               r.(u) <- Ratfun.add r.(u) (Ratfun.mul p_us r_s);
               Imap.iter
                 (fun v f ->
                    let contrib = Ratfun.mul p_us f in
                    p.(u) <-
                      Imap.update v
                        (function
                          | None -> Some contrib
                          | Some g ->
                            let sum = Ratfun.add g contrib in
                            if Ratfun.is_zero sum then None else Some sum)
                        p.(u);
                    preds.(v) <- Iset.add u preds.(v))
                 scaled_out;
               p.(u) <- Imap.remove s p.(u)
           end)
        preds.(s);
      Imap.iter (fun d _ -> preds.(d) <- Iset.remove s preds.(d)) p.(s);
      preds.(s) <- Iset.empty;
      p.(s) <- Imap.empty;
      alive.(s) <- false
    end
  in
  let rec loop remaining =
    match remaining with
    | [] -> ()
    | _ ->
      let s = pick remaining in
      eliminate s;
      loop (List.filter (fun x -> x <> s) remaining)
  in
  loop to_eliminate;
  (* E(init) = r(init) / (1 - p(init,init)) *)
  let self = Option.value ~default:Ratfun.zero (Imap.find_opt init p.(init)) in
  let one_minus = Ratfun.sub Ratfun.one self in
  if Ratfun.is_zero one_minus then Ratfun.zero
  else Ratfun.mul (Ratfun.inv one_minus) r.(init)

(* Factored-form elimination: identical control flow, but every stored
   value is an [fr] and nothing is normalized until the single
   [fr_to_ratfun] at the end of the query. *)
let solve_factored ~order ~rows ~rew ~active ~init =
  let n = Array.length rows in
  let p = Array.make n Imap.empty in
  Array.iteri
    (fun s row ->
       if active.(s) then
         p.(s) <-
           Imap.filter_map
             (fun d f -> if active.(d) then Some (fr_of_ratfun f) else None)
             row)
    rows;
  let r = Array.map fr_of_ratfun rew in
  let preds = Array.make n Iset.empty in
  Array.iteri
    (fun s row -> Imap.iter (fun d _ -> preds.(d) <- Iset.add s preds.(d)) row)
    p;
  let alive = Array.copy active in
  let to_eliminate =
    List.filter (fun s -> alive.(s) && s <> init) (List.init n Fun.id)
  in
  let degree s = Iset.cardinal preds.(s) * Imap.cardinal p.(s) in
  (* Symbolic size of a state's outgoing row — the Min_degree tie-break.
     Among states with equally many fill-in edges, eliminating the one whose
     rational functions are smallest keeps intermediate quotients from
     blowing up.  Computed lazily, only on actual degree ties. *)
  let fr_size t =
    Pmap.fold
      (fun f e acc -> acc + (e * P.num_terms f))
      t.df (P.num_terms t.c)
  in
  let sym_size s = Imap.fold (fun _ f acc -> acc + fr_size f) p.(s) 0 in
  let pick remaining =
    match order with
    | Ascending -> List.hd remaining
    | Descending -> List.hd (List.rev remaining)
    | Min_degree ->
      let best = ref (List.hd remaining) in
      let best_deg = ref (degree !best) in
      let best_size = ref (-1) in
      List.iter
        (fun s ->
           let d = degree s in
           if d < !best_deg then begin
             best := s;
             best_deg := d;
             best_size := -1
           end
           else if d = !best_deg && s <> !best then begin
             if !best_size < 0 then best_size := sym_size !best;
             let sz = sym_size s in
             if sz < !best_size then begin
               best := s;
               best_size := sz
             end
           end)
        (List.tl remaining);
      !best
  in
  let saved = ref 0 in
  let eliminate s =
    let self = Option.value ~default:fr_zero (Imap.find_opt s p.(s)) in
    let one_minus = fr_add fr_one (fr_neg self) in
    if fr_is_zero one_minus then begin
      (* p(s,s) ≡ 1: a trap; cut s out (see solve_ratfun) *)
      Iset.iter
        (fun u -> if u <> s then p.(u) <- Imap.remove s p.(u))
        preds.(s);
      Imap.iter (fun d _ -> preds.(d) <- Iset.remove s preds.(d)) p.(s);
      p.(s) <- Imap.empty;
      alive.(s) <- false
    end
    else begin
      let factor = fr_inv one_minus in
      let out = Imap.remove s p.(s) in
      let r_s = fr_mul factor r.(s) in
      let r_s_zero = fr_is_zero r_s in
      let scaled_out = Imap.map (fun f -> fr_mul factor f) out in
      (* vs the per-edge path: one normalize per scaled out-edge, plus the
         explicit inverse and the r_s product *)
      saved := !saved + Imap.cardinal out + 2;
      Iset.iter
        (fun u ->
           if u <> s then begin
             match Imap.find_opt s p.(u) with
             | None -> ()
             | Some p_us ->
               if not r_s_zero then begin
                 r.(u) <- fr_add r.(u) (fr_mul p_us r_s);
                 saved := !saved + 2
               end;
               Imap.iter
                 (fun v sf ->
                    let contrib = fr_mul p_us sf in
                    p.(u) <-
                      Imap.update v
                        (function
                          | None ->
                            saved := !saved + 1;
                            if fr_is_zero contrib then None else Some contrib
                          | Some g ->
                            saved := !saved + 2;
                            let sum = fr_add g contrib in
                            if fr_is_zero sum then None else Some sum)
                        p.(u);
                    preds.(v) <- Iset.add u preds.(v))
                 scaled_out;
               p.(u) <- Imap.remove s p.(u)
           end)
        preds.(s);
      Imap.iter (fun d _ -> preds.(d) <- Iset.remove s preds.(d)) p.(s);
      preds.(s) <- Iset.empty;
      p.(s) <- Imap.empty;
      alive.(s) <- false
    end
  in
  let rec loop remaining =
    match remaining with
    | [] -> ()
    | _ ->
      let s = pick remaining in
      eliminate s;
      loop (List.filter (fun x -> x <> s) remaining)
  in
  loop to_eliminate;
  if !saved > 0 then Metrics.incr ~by:!saved normalize_saved;
  (* E(init) = r(init) / (1 - p(init,init)) *)
  let self = Option.value ~default:fr_zero (Imap.find_opt init p.(init)) in
  let one_minus = fr_add fr_one (fr_neg self) in
  if fr_is_zero one_minus then Ratfun.zero
  else fr_to_ratfun (fr_mul (fr_inv one_minus) r.(init))

(* ------------------------------------------------------------------ *)
(* Batched parallel elimination.                                        *)
(*                                                                      *)
(* The sequential schedule is a sequence of dynamic picks; the final    *)
(* rational function's REPRESENTATION depends on that exact sequence    *)
(* (without multivariate gcd, different orders leave different common   *)
(* factors unreduced).  So the parallel path does not invent a new      *)
(* schedule: it proves, batch by batch, that a prefix of the sequential *)
(* schedule consists of states whose neighborhoods                      *)
(*   N(s) = {s} ∪ preds(s) ∪ succs(s)                                   *)
(* are pairwise disjoint.  Disjoint-N eliminations read and write       *)
(* disjoint array cells (rows of preds(s), pred-sets of succs(s), s's   *)
(* own row), so running them concurrently is cell-for-cell identical to *)
(* running them in sequence — byte-identical output, any interleaving.  *)
(*                                                                      *)
(* Replicating the DYNAMIC Min_degree pick without executing anything   *)
(* needs one more argument.  States outside the batch's touched region  *)
(* ⋃N(b) keep their exact degree (no cell of theirs is written), so     *)
(* their post-batch pick keys are the frozen ones.  States inside it    *)
(* have uncertain degrees — but elimination only REMOVES an edge u→v    *)
(* when v is a batch member or a fill-in target (succs(b)), and only    *)
(* removes w→u when w is a batch member or fill-in source (preds(b)):   *)
(* everything else can at most gain edges.  Counting only the edges     *)
(* that provably survive gives a degree lower bound; if every touched   *)
(* survivor's bound exceeds the best frozen degree, the frozen argmin   *)
(* IS the next sequential pick.  Any doubt — a touched state whose      *)
(* bound could win or tie (ties would invoke the sym_size tie-break on  *)
(* a row we cannot know) — closes the batch instead of guessing.        *)
(* ------------------------------------------------------------------ *)

(* Read per solve, like TML_ELIM_FACTORED, so differential tests can
   flip the escape hatch with [Unix.putenv] mid-process. *)
let use_parallel () =
  match Sys.getenv_opt "TML_ELIM_PARALLEL" with Some "0" -> false | _ -> true

let solve_factored_parallel ~order ~rows ~rew ~active ~init =
  let n = Array.length rows in
  let p = Array.make n Imap.empty in
  Array.iteri
    (fun s row ->
       if active.(s) then
         p.(s) <-
           Imap.filter_map
             (fun d f -> if active.(d) then Some (fr_of_ratfun f) else None)
             row)
    rows;
  let r = Array.map fr_of_ratfun rew in
  let preds = Array.make n Iset.empty in
  Array.iteri
    (fun s row -> Imap.iter (fun d _ -> preds.(d) <- Iset.add s preds.(d)) row)
    p;
  let alive = Array.copy active in
  let to_eliminate =
    List.filter (fun s -> alive.(s) && s <> init) (List.init n Fun.id)
  in
  let degree s = Iset.cardinal preds.(s) * Imap.cardinal p.(s) in
  let fr_size t =
    Pmap.fold
      (fun f e acc -> acc + (e * P.num_terms f))
      t.df (P.num_terms t.c)
  in
  let sym_size s = Imap.fold (fun _ f acc -> acc + fr_size f) p.(s) 0 in
  (* identical to [solve_factored]'s pick — the first member of every
     batch is the true dynamic pick *)
  let pick remaining =
    match order with
    | Ascending -> List.hd remaining
    | Descending -> List.hd (List.rev remaining)
    | Min_degree ->
      let best = ref (List.hd remaining) in
      let best_deg = ref (degree !best) in
      let best_size = ref (-1) in
      List.iter
        (fun s ->
           let d = degree s in
           if d < !best_deg then begin
             best := s;
             best_deg := d;
             best_size := -1
           end
           else if d = !best_deg && s <> !best then begin
             if !best_size < 0 then best_size := sym_size !best;
             let sz = sym_size s in
             if sz < !best_size then begin
               best := s;
               best_size := sz
             end
           end)
        (List.tl remaining);
      !best
  in
  let saved_total = Atomic.make 0 in
  (* [solve_factored]'s eliminate with the normalize-saved tally as a
     parameter: each parallel task owns a private counter (summed into
     [saved_total] at task end), so concurrent eliminations never share
     a mutable cell *)
  let eliminate ~saved s =
    let self = Option.value ~default:fr_zero (Imap.find_opt s p.(s)) in
    let one_minus = fr_add fr_one (fr_neg self) in
    if fr_is_zero one_minus then begin
      (* p(s,s) ≡ 1: a trap; cut s out (see solve_ratfun) *)
      Iset.iter
        (fun u -> if u <> s then p.(u) <- Imap.remove s p.(u))
        preds.(s);
      Imap.iter (fun d _ -> preds.(d) <- Iset.remove s preds.(d)) p.(s);
      p.(s) <- Imap.empty;
      alive.(s) <- false
    end
    else begin
      let factor = fr_inv one_minus in
      let out = Imap.remove s p.(s) in
      let r_s = fr_mul factor r.(s) in
      let r_s_zero = fr_is_zero r_s in
      let scaled_out = Imap.map (fun f -> fr_mul factor f) out in
      saved := !saved + Imap.cardinal out + 2;
      Iset.iter
        (fun u ->
           if u <> s then begin
             match Imap.find_opt s p.(u) with
             | None -> ()
             | Some p_us ->
               if not r_s_zero then begin
                 r.(u) <- fr_add r.(u) (fr_mul p_us r_s);
                 saved := !saved + 2
               end;
               Imap.iter
                 (fun v sf ->
                    let contrib = fr_mul p_us sf in
                    p.(u) <-
                      Imap.update v
                        (function
                          | None ->
                            saved := !saved + 1;
                            if fr_is_zero contrib then None else Some contrib
                          | Some g ->
                            saved := !saved + 2;
                            let sum = fr_add g contrib in
                            if fr_is_zero sum then None else Some sum)
                        p.(u);
                    preds.(v) <- Iset.add u preds.(v))
                 scaled_out;
               p.(u) <- Imap.remove s p.(u)
           end)
        preds.(s);
      Imap.iter (fun d _ -> preds.(d) <- Iset.remove s preds.(d)) p.(s);
      preds.(s) <- Iset.empty;
      p.(s) <- Imap.empty;
      alive.(s) <- false
    end
  in
  let succs s = Imap.fold (fun d _ acc -> Iset.add d acc) p.(s) Iset.empty in
  let nbhd s = Iset.add s (Iset.union preds.(s) (succs s)) in
  (* A maximal provably-safe prefix of the sequential schedule, built
     against the CURRENT (pre-batch) arrays.  [touched] = ⋃N(b) over the
     batch; [kill_src]/[kill_dst] collect the only edge endpoints batch
     eliminations can delete (batch members, fill-in sources, fill-in
     targets), for the degree lower bounds. *)
  let build_batch remaining =
    let b1 = pick remaining in
    let batch = ref [ b1 ] in
    let bset = ref (Iset.singleton b1) in
    let touched = ref (nbhd b1) in
    let kill_src = ref (Iset.add b1 preds.(b1)) in
    let kill_dst = ref (Iset.add b1 (succs b1)) in
    let min_deg s =
      let pl =
        Iset.fold
          (fun w acc -> if Iset.mem w !kill_src then acc else acc + 1)
          preds.(s) 0
      in
      let ol =
        Imap.fold
          (fun v _ acc -> if Iset.mem v !kill_dst then acc else acc + 1)
          p.(s) 0
      in
      pl * ol
    in
    let add c =
      batch := c :: !batch;
      bset := Iset.add c !bset;
      touched := Iset.union !touched (nbhd c);
      kill_src := Iset.add c (Iset.union !kill_src preds.(c));
      kill_dst := Iset.add c (Iset.union !kill_dst (succs c))
    in
    let stop = ref false in
    while not !stop do
      let rest = List.filter (fun s -> not (Iset.mem s !bset)) remaining in
      let candidate =
        match order with
        (* fixed-order schedules: the next pick is positional; only the
           disjointness of its neighborhood needs proving *)
        | Ascending -> (match rest with [] -> None | c :: _ -> Some c)
        | Descending -> (
            match rest with [] -> None | _ -> Some (List.hd (List.rev rest)))
        | Min_degree -> (
            match List.filter (fun s -> not (Iset.mem s !touched)) rest with
            | [] -> None  (* no state with a provably exact degree left *)
            | u0 :: us ->
              (* frozen argmin over untouched survivors — their rows and
                 pred-sets are exactly the post-batch ones *)
              let best = ref u0 in
              let best_deg = ref (degree u0) in
              let best_size = ref (-1) in
              List.iter
                (fun s ->
                   let d = degree s in
                   if d < !best_deg then begin
                     best := s;
                     best_deg := d;
                     best_size := -1
                   end
                   else if d = !best_deg then begin
                     if !best_size < 0 then best_size := sym_size !best;
                     let sz = sym_size s in
                     if sz < !best_size then begin
                       best := s;
                       best_size := sz
                     end
                   end)
                us;
              (* sound only if no touched survivor could beat OR tie it *)
              let doubtful =
                List.exists
                  (fun s -> Iset.mem s !touched && min_deg s <= !best_deg)
                  rest
              in
              if doubtful then None else Some !best)
      in
      match candidate with
      | Some c when Iset.disjoint (nbhd c) !touched -> add c
      | _ -> stop := true
    done;
    List.rev !batch
  in
  let run_batch = function
    | [ s ] ->
      let saved = ref 0 in
      eliminate ~saved s;
      if !saved > 0 then ignore (Atomic.fetch_and_add saved_total !saved : int)
    | batch ->
      Parallel.run
        (Array.of_list
           (List.map
              (fun s () ->
                 let saved = ref 0 in
                 eliminate ~saved s;
                 if !saved > 0 then
                   ignore (Atomic.fetch_and_add saved_total !saved : int))
              batch))
  in
  let rec loop remaining =
    match remaining with
    | [] -> ()
    | _ ->
      let batch = build_batch remaining in
      run_batch batch;
      let bs = Iset.of_list batch in
      loop (List.filter (fun x -> not (Iset.mem x bs)) remaining)
  in
  loop to_eliminate;
  if Atomic.get saved_total > 0 then
    Metrics.incr ~by:(Atomic.get saved_total) normalize_saved;
  (* E(init) = r(init) / (1 - p(init,init)) *)
  let self = Option.value ~default:fr_zero (Imap.find_opt init p.(init)) in
  let one_minus = fr_add fr_one (fr_neg self) in
  if fr_is_zero one_minus then Ratfun.zero
  else fr_to_ratfun (fr_mul (fr_inv one_minus) r.(init))

let solve ~order ~rows ~rew ~active ~init =
  if not (use_factored ()) then solve_ratfun ~order ~rows ~rew ~active ~init
  else if use_parallel () then solve_factored_parallel ~order ~rows ~rew ~active ~init
  else solve_factored ~order ~rows ~rew ~active ~init

(* ------------------------------------------------------------------ *)

let rows_of pdtmc =
  Array.init (Pdtmc.num_states pdtmc) (fun s ->
      List.fold_left
        (fun acc (d, f) -> Imap.add d f acc)
        Imap.empty (Pdtmc.succ pdtmc s))

let check_target n target =
  List.iter
    (fun s ->
       if s < 0 || s >= n then
         invalid_arg (Printf.sprintf "Elimination: target state %d out of range" s))
    target;
  if target = [] then invalid_arg "Elimination: empty target set"

let reachability_probability ?(order = Min_degree) pdtmc ~target =
  let n = Pdtmc.num_states pdtmc in
  check_target n target;
  memoized ~kind:"prob" ~order pdtmc ~target @@ fun () ->
  let init = Pdtmc.init_state pdtmc in
  let tset = Iset.of_list target in
  if Iset.mem init tset then Ratfun.one
  else begin
    let rows = rows_of pdtmc in
    let reach = forward_reachable rows init in
    let can_reach_target = backward_reachable rows tset in
    if not can_reach_target.(init) then Ratfun.zero
    else begin
      (* maybe-states: reachable, can reach target, not target *)
      let active =
        Array.init n (fun s ->
            reach.(s) && can_reach_target.(s) && not (Iset.mem s tset))
      in
      (* r(s) = direct mass into the target set *)
      let rew =
        Array.init n (fun s ->
            if not active.(s) then Ratfun.zero
            else
              Imap.fold
                (fun d f acc ->
                   if Iset.mem d tset then Ratfun.add acc f else acc)
                rows.(s) Ratfun.zero)
      in
      solve ~order ~rows ~rew ~active ~init
    end
  end

let expected_reward ?(order = Min_degree) pdtmc ~target =
  let n = Pdtmc.num_states pdtmc in
  check_target n target;
  memoized ~kind:"rew" ~order pdtmc ~target @@ fun () ->
  let init = Pdtmc.init_state pdtmc in
  let tset = Iset.of_list target in
  if Iset.mem init tset then Ratfun.zero
  else begin
    let rows = rows_of pdtmc in
    let reach = forward_reachable rows init in
    let can_reach_target = backward_reachable rows tset in
    (* Structural almost-sure check: from every reachable state the target
       must remain reachable (for generic parameter values this implies
       probability-1 reachability on finite chains iff no reachable trap
       avoids the target). *)
    Array.iteri
      (fun s r -> if r && not can_reach_target.(s) then raise (Not_almost_sure s))
      reach;
    let active = Array.init n (fun s -> reach.(s) && not (Iset.mem s tset)) in
    let rew =
      Array.init n (fun s ->
          if active.(s) then Pdtmc.reward pdtmc s else Ratfun.zero)
    in
    solve ~order ~rows ~rew ~active ~init
  end

let eliminated_states pdtmc ~target =
  let n = Pdtmc.num_states pdtmc in
  check_target n target;
  let init = Pdtmc.init_state pdtmc in
  let tset = Iset.of_list target in
  let rows = rows_of pdtmc in
  let reach = forward_reachable rows init in
  let can = backward_reachable rows tset in
  let count = ref 0 in
  for s = 0 to n - 1 do
    if reach.(s) && can.(s) && (not (Iset.mem s tset)) && s <> init then incr count
  done;
  !count
