(** Parametric discrete-time Markov chains: transition probabilities (and
    state rewards) are {!Ratfun} rational functions over named parameters.

    This is the model class of Propositions 2 and 3 in the paper: a Model
    Repair problem turns a concrete DTMC into a parametric one by adding
    perturbation variables [Z(i,j)] to controllable entries; a Data Repair
    problem makes maximum-likelihood transition estimates parametric in the
    data-perturbation vector [p]. State elimination (see {!Elimination})
    then produces the closed-form rational function the non-linear program
    constrains. *)

type t

val make :
  n:int ->
  init:int ->
  transitions:(int * int * Ratfun.t) list ->
  ?labels:(string * int list) list ->
  ?rewards:Ratfun.t array ->
  unit ->
  t
(** Rows must sum to 1 {e exactly as rational functions} — this is checked
    symbolically, which catches most malformed parametrisations at
    construction time. Identically-zero entries are dropped.
    @raise Invalid_argument on bad indices, duplicate edges or rows not
    summing to the constant 1. *)

val of_dtmc : ?rewards_exact:Ratio.t array -> Dtmc.t -> t
(** Exact lift of a concrete chain (floats become exact dyadic rationals). *)

val num_states : t -> int
val init_state : t -> int
val succ : t -> int -> (int * Ratfun.t) list
val pred : t -> int -> int list
val reward : t -> int -> Ratfun.t
val params : t -> string list
(** All parameter names appearing in the chain, sorted. *)

val digest : t -> string
(** Hex MD5 of a canonical structural serialisation (states, edges with
    their exact rational functions, labels, rewards).  Chains with equal
    digests are structurally identical, so cached elimination results can
    be shared between them — this is the cache key used by the runtime's
    memoizing result cache. *)

val states_with_label : t -> string -> int list

val map_transitions : t -> (int -> int -> Ratfun.t -> Ratfun.t) -> t
(** Rewrite every edge (the result is re-validated). *)

val instantiate : t -> (string -> Ratio.t) -> Dtmc.t
(** Substitute concrete parameter values and drop to a float DTMC.
    @raise Invalid_argument when an instantiated probability falls outside
    [0, 1] or a row stops summing to 1 (cannot happen if the valuation is
    inside the feasible region). *)

val instantiate_exact : t -> (string -> Ratio.t) -> (int * int * Ratio.t) list
(** The instantiated edge list, exact. *)

val pp : Format.formatter -> t -> unit
