type query = {
  value : Ratfun.t;
  cmp : Pctl.cmp;
  bound : float;
  eval : (string -> float) -> float;
  arena : Arena.t;
}

exception Unsupported of string

let rec propositional_sat pdtmc (f : Pctl.state_formula) =
  let n = Pdtmc.num_states pdtmc in
  match f with
  | True -> Array.make n true
  | False -> Array.make n false
  | Prop p ->
    let marked = Array.make n false in
    List.iter (fun s -> marked.(s) <- true) (Pdtmc.states_with_label pdtmc p);
    marked
  | Not g -> Array.map not (propositional_sat pdtmc g)
  | And (a, b) ->
    let sa = propositional_sat pdtmc a and sb = propositional_sat pdtmc b in
    Array.init n (fun s -> sa.(s) && sb.(s))
  | Or (a, b) ->
    let sa = propositional_sat pdtmc a and sb = propositional_sat pdtmc b in
    Array.init n (fun s -> sa.(s) || sb.(s))
  | Implies (a, b) ->
    let sa = propositional_sat pdtmc a and sb = propositional_sat pdtmc b in
    Array.init n (fun s -> (not sa.(s)) || sb.(s))
  | Prob _ | Reward _ ->
    raise
      (Unsupported
         "nested P/R operators cannot appear inside a parametric query")

let states_of mask =
  let acc = ref [] in
  Array.iteri (fun s b -> if b then acc := s :: !acc) mask;
  List.rev !acc

(* Rebuild the chain with the given states turned into absorbing
   self-loops (used to encode Until as reachability). *)
let make_absorbing pdtmc mask =
  let n = Pdtmc.num_states pdtmc in
  let transitions =
    List.concat
      (List.init n (fun s ->
           if mask.(s) then [ (s, s, Ratfun.one) ]
           else List.map (fun (d, f) -> (s, d, f)) (Pdtmc.succ pdtmc s)))
  in
  Pdtmc.make ~n ~init:(Pdtmc.init_state pdtmc) ~transitions ()

(* Symbolic h-step iteration for bounded operators. *)
let bounded_iteration pdtmc ~allowed ~target h =
  let n = Pdtmc.num_states pdtmc in
  let x =
    ref (Array.init n (fun s -> if target.(s) then Ratfun.one else Ratfun.zero))
  in
  for _ = 1 to h do
    x :=
      Array.init n (fun s ->
          if target.(s) then Ratfun.one
          else if not allowed.(s) then Ratfun.zero
          else
            List.fold_left
              (fun acc (d, p) -> Ratfun.add acc (Ratfun.mul p !x.(d)))
              Ratfun.zero (Pdtmc.succ pdtmc s))
  done;
  !x.(Pdtmc.init_state pdtmc)

let rec path_probability pdtmc (psi : Pctl.path_formula) =
  let n = Pdtmc.num_states pdtmc in
  let all = Array.make n true in
  match psi with
  | Next f ->
    let target = propositional_sat pdtmc f in
    List.fold_left
      (fun acc (d, p) -> if target.(d) then Ratfun.add acc p else acc)
      Ratfun.zero
      (Pdtmc.succ pdtmc (Pdtmc.init_state pdtmc))
  | Eventually f ->
    let target = states_of (propositional_sat pdtmc f) in
    if target = [] then Ratfun.zero
    else Elimination.reachability_probability pdtmc ~target
  | Until (f1, f2) ->
    let s1 = propositional_sat pdtmc f1 and s2 = propositional_sat pdtmc f2 in
    let dead = Array.init n (fun s -> (not s1.(s)) && not s2.(s)) in
    let chain = make_absorbing pdtmc dead in
    let target = states_of s2 in
    if target = [] then Ratfun.zero
    else Elimination.reachability_probability chain ~target
  | Bounded_eventually (f, h) ->
    bounded_iteration pdtmc ~allowed:all ~target:(propositional_sat pdtmc f) h
  | Bounded_until (f1, f2, h) ->
    bounded_iteration pdtmc
      ~allowed:(propositional_sat pdtmc f1)
      ~target:(propositional_sat pdtmc f2)
      h
  | Globally f ->
    Ratfun.sub Ratfun.one (path_probability pdtmc (Eventually (Pctl.Not f)))
  | Bounded_globally (f, h) ->
    Ratfun.sub Ratfun.one
      (path_probability pdtmc (Bounded_eventually (Pctl.Not f, h)))

let reachability_reward pdtmc f =
  let target = states_of (propositional_sat pdtmc f) in
  if target = [] then
    raise (Unsupported "reward query with empty target set is infinite")
  else Elimination.expected_reward pdtmc ~target

let make_query value cmp bound =
  let arena = Arena.compile ~vars:(Ratfun.vars value) value in
  { value; cmp; bound; eval = Arena.eval_env arena; arena }

let of_formula pdtmc (f : Pctl.state_formula) =
  match f with
  | Prob (cmp, bound, psi) -> make_query (path_probability pdtmc psi) cmp bound
  | Reward (cmp, bound, g) -> make_query (reachability_reward pdtmc g) cmp bound
  | _ ->
    raise
      (Unsupported
         "repairable properties must be a single top-level P[...] or R[...] \
          operator")

let strict_margin = 1e-9

let violation_of cmp bound margin v =
  match cmp with
  | Pctl.Le -> v -. bound +. margin
  | Pctl.Lt -> v -. bound +. margin +. strict_margin
  | Pctl.Ge -> bound -. v +. margin
  | Pctl.Gt -> bound -. v +. margin +. strict_margin

let constraint_violation ?(margin = 0.0) q env =
  violation_of q.cmp q.bound margin (q.eval env)

let compile_value q ~vars =
  let a = Arena.compile ~vars q.value in
  fun x -> Arena.eval a x

let compile_violation ?(margin = 0.0) q ~vars =
  let a = Arena.compile ~vars q.value in
  let cmp = q.cmp and bound = q.bound in
  fun x -> violation_of cmp bound margin (Arena.eval a x)
