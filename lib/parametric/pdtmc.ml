module Imap = Map.Make (Int)
module Smap = Map.Make (String)

type t = {
  n : int;
  init : int;
  rows : Ratfun.t Imap.t array;
  preds : int list array;
  label_map : int list Smap.t;
  rewards : Ratfun.t array;
}

let check_state n what s =
  if s < 0 || s >= n then
    invalid_arg (Printf.sprintf "Pdtmc: %s state %d out of range [0,%d)" what s n)

let compute_preds n rows =
  let preds = Array.make n [] in
  Array.iteri
    (fun s row -> Imap.iter (fun d _ -> preds.(d) <- s :: preds.(d)) row)
    rows;
  Array.map (List.sort_uniq Int.compare) preds

let validate_rows rows =
  Array.iteri
    (fun s row ->
       let total =
         Imap.fold (fun _ f acc -> Ratfun.add acc f) row Ratfun.zero
       in
       if not (Ratfun.equal total Ratfun.one) then
         invalid_arg
           (Printf.sprintf "Pdtmc: row %d sums to %s, expected 1" s
              (Ratfun.to_string total)))
    rows

let make ~n ~init ~transitions ?(labels = []) ?rewards () =
  if n <= 0 then invalid_arg "Pdtmc: need at least one state";
  check_state n "initial" init;
  let rows = Array.make n Imap.empty in
  List.iter
    (fun (src, dst, f) ->
       check_state n "source" src;
       check_state n "target" dst;
       if not (Ratfun.is_zero f) then begin
         if Imap.mem dst rows.(src) then
           invalid_arg (Printf.sprintf "Pdtmc: duplicate edge %d->%d" src dst);
         rows.(src) <- Imap.add dst f rows.(src)
       end)
    transitions;
  validate_rows rows;
  let label_map =
    List.fold_left
      (fun acc (name, states) ->
         List.iter (check_state n ("label " ^ name)) states;
         let prev = Option.value ~default:[] (Smap.find_opt name acc) in
         Smap.add name (List.sort_uniq Int.compare (states @ prev)) acc)
      Smap.empty labels
  in
  let rewards =
    match rewards with
    | None -> Array.make n Ratfun.zero
    | Some r ->
      if Array.length r <> n then invalid_arg "Pdtmc: reward array wrong length";
      Array.copy r
  in
  { n; init; rows; preds = compute_preds n rows; label_map; rewards }

let of_dtmc ?rewards_exact dtmc =
  let n = Dtmc.num_states dtmc in
  let transitions =
    List.concat
      (List.init n (fun s ->
           (* Lift to exact rationals, then renormalise the row exactly —
              floats like 0.3 + 0.7 are not exactly 1 as dyadics. *)
           let row = Dtmc.succ dtmc s in
           let exact = List.map (fun (d, p) -> (d, Ratio.of_float p)) row in
           let total =
             List.fold_left (fun acc (_, q) -> Ratio.add acc q) Ratio.zero exact
           in
           List.map
             (fun (d, q) -> (s, d, Ratfun.const (Ratio.div q total)))
             exact))
  in
  let labels =
    List.map (fun l -> (l, Dtmc.states_with_label dtmc l)) (Dtmc.labels dtmc)
  in
  let rewards =
    match rewards_exact with
    | Some r ->
      if Array.length r <> n then
        invalid_arg "Pdtmc.of_dtmc: reward array wrong length";
      Array.map (fun q -> Ratfun.const q) r
    | None ->
      Array.init n (fun s -> Ratfun.const (Ratio.of_float (Dtmc.reward dtmc s)))
  in
  make ~n ~init:(Dtmc.init_state dtmc) ~transitions ~labels ~rewards ()

let num_states t = t.n
let init_state t = t.init

let succ t s =
  check_state t.n "query" s;
  Imap.bindings t.rows.(s)

let pred t s = check_state t.n "query" s; t.preds.(s)
let reward t s = check_state t.n "query" s; t.rewards.(s)

let params t =
  let module Sset = Set.Make (String) in
  let acc = ref Sset.empty in
  Array.iter
    (fun row ->
       Imap.iter
         (fun _ f -> List.iter (fun v -> acc := Sset.add v !acc) (Ratfun.vars f))
         row)
    t.rows;
  Array.iter
    (fun f -> List.iter (fun v -> acc := Sset.add v !acc) (Ratfun.vars f))
    t.rewards;
  Sset.elements !acc

let states_with_label t name =
  Option.value ~default:[] (Smap.find_opt name t.label_map)

let map_transitions t f =
  let transitions =
    List.concat
      (List.init t.n (fun s ->
           List.map (fun (d, g) -> (s, d, f s d g)) (Imap.bindings t.rows.(s))))
  in
  let labels = Smap.bindings t.label_map in
  make ~n:t.n ~init:t.init ~transitions ~labels ~rewards:t.rewards ()

let instantiate_exact t env =
  List.concat
    (List.init t.n (fun s ->
         List.map
           (fun (d, f) -> (s, d, Ratfun.eval env f))
           (Imap.bindings t.rows.(s))))

let instantiate t env =
  let edges = instantiate_exact t env in
  List.iter
    (fun (s, d, q) ->
       if Ratio.(q < zero) || Ratio.(q > one) then
         invalid_arg
           (Printf.sprintf "Pdtmc.instantiate: edge %d->%d has probability %s"
              s d (Ratio.to_string q)))
    edges;
  let transitions =
    List.filter_map
      (fun (s, d, q) ->
         if Ratio.is_zero q then None else Some (s, d, Ratio.to_float q))
      edges
  in
  let labels = Smap.bindings t.label_map in
  let rewards =
    Array.map (fun f -> Ratio.to_float (Ratfun.eval env f)) t.rewards
  in
  Dtmc.make ~n:t.n ~init:t.init ~transitions ~labels ~rewards ()

let pp fmt t =
  Format.fprintf fmt "PDTMC(%d states, init %d, params %s)@\n" t.n t.init
    (String.concat "," (params t));
  Array.iteri
    (fun s row ->
       Format.fprintf fmt "  %d:" s;
       Imap.iter (fun d f -> Format.fprintf fmt " ->%d:[%s]" d (Ratfun.to_string f)) row;
       Format.fprintf fmt "@\n")
    t.rows

let digest t =
  (* Structural MD5 over a canonical textual serialisation: state count,
     initial state, every edge's exact rational function, labels and
     rewards.  Two chains with the same digest are structurally identical,
     so any elimination result computed for one is valid for the other. *)
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "pdtmc:%d:%d;" t.n t.init);
  Array.iteri
    (fun s row ->
       Buffer.add_string buf (Printf.sprintf "s%d{" s);
       Imap.iter
         (fun d f ->
            Buffer.add_string buf (Printf.sprintf "%d=%s," d (Ratfun.to_string f)))
         row;
       Buffer.add_char buf '}')
    t.rows;
  Buffer.add_string buf "labels{";
  Smap.iter
    (fun name states ->
       Buffer.add_string buf name;
       Buffer.add_char buf ':';
       List.iter (fun s -> Buffer.add_string buf (string_of_int s ^ ",")) states;
       Buffer.add_char buf ';')
    t.label_map;
  Buffer.add_string buf "}rewards{";
  Array.iter
    (fun f ->
       Buffer.add_string buf (Ratfun.to_string f);
       Buffer.add_char buf ';')
    t.rewards;
  Buffer.add_char buf '}';
  Digest.to_hex (Digest.string (Buffer.contents buf))
