(** Symbolic PCTL queries over parametric chains.

    Turns a top-level [P ~ b \[ψ\]] or [R ~ r \[F φ\]] formula into the
    closed-form rational function [f(v)] of Proposition 2 / 3 — the thing
    the repair NLP constrains against the bound. Inner state formulas must
    be propositional (boolean combinations of labels); nested probabilistic
    operators cannot be made parametric and are rejected. *)

type query = {
  value : Ratfun.t;  (** the symbolic probability / expected reward *)
  cmp : Pctl.cmp;
  bound : float;
  eval : (string -> float) -> float;
      (** compiled fast evaluation of [value] (arena-backed, see {!Arena}) *)
  arena : Arena.t;
      (** the flat compiled form of [value]; prefer {!compile_value} /
          {!compile_violation} for index-based inner loops *)
}

exception Unsupported of string

val propositional_sat : Pdtmc.t -> Pctl.state_formula -> bool array
(** Satisfaction of a propositional formula per state.
    @raise Unsupported on [P]/[R] operators. *)

val path_probability : Pdtmc.t -> Pctl.path_formula -> Ratfun.t
(** Symbolic [Pr(init ⊨ ψ)]. Supports X, U, F, G and their step-bounded
    forms (bounded operators by symbolic vector iteration — keep the bound
    modest). @raise Unsupported on nested probabilistic operators. *)

val reachability_reward : Pdtmc.t -> Pctl.state_formula -> Ratfun.t
(** Symbolic [E\[reward until F φ\]].
    @raise Elimination.Not_almost_sure when the target is not almost-surely
    reached. @raise Unsupported on non-propositional [φ]. *)

val of_formula : Pdtmc.t -> Pctl.state_formula -> query
(** Decomposes a top-level [Prob]/[Reward] formula.
    @raise Unsupported for formulas whose top level is not a single [P]/[R]
    operator. *)

val constraint_violation : ?margin:float -> query -> (string -> float) -> float
(** [<= 0] iff the (strict or non-strict) comparison holds at the given
    parameter valuation with slack [margin] (default 0) — the inequality
    handed to the NLP solver. A small positive [margin] keeps solutions in
    the strict interior so that the repaired model still verifies after
    float round-off. Strict comparisons get an additional tiny margin. *)

val compile_value : query -> vars:string list -> float array -> float
(** Arena-compiled evaluation of the query value with the parameter vector
    indexed by position in [vars] — the form the NLP inner loop wants
    (no per-call name resolution).
    @raise Invalid_argument if the query mentions a variable not in [vars]. *)

val compile_violation :
  ?margin:float -> query -> vars:string list -> float array -> float
(** Arena-compiled {!constraint_violation} over a positional parameter
    vector; same comparison/margin semantics. *)
