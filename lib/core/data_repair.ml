type spec = {
  groups : (string * Trace.t list) list;
  max_drop : float;
  pinned : string list;
}

let spec ?(max_drop = 0.999) ?(pinned = []) groups =
  if max_drop <= 0.0 || max_drop >= 1.0 then
    invalid_arg "Data_repair.spec: max_drop must lie in (0, 1)";
  List.iter
    (fun p ->
       if not (List.mem_assoc p groups) then
         invalid_arg (Printf.sprintf "Data_repair.spec: unknown pinned group %s" p))
    pinned;
  { groups; max_drop; pinned }

type repaired = {
  dtmc : Dtmc.t;
  drop_fractions : (string * float) list;
  cost : float;
  achieved_value : float;
  dropped_traces : float;
  symbolic_constraint : Ratfun.t;
  verified : bool;
}

type result =
  | Already_satisfied of float option
  | Repaired of repaired
  | Infeasible of { min_violation : float }

let default_cost x = Array.fold_left (fun acc v -> acc +. (v *. v)) 0.0 x

let repair ~n ~init ?(labels = []) ?rewards ?(solver = Nlp.Penalty)
    ?(starts = 12) ?(seed = 0) ?cost ?(force = false) phi sp =
  if sp.groups = [] then invalid_arg "Data_repair: no trace groups";
  (* Parametric re-learning: model as rational functions of drop vector. *)
  let pmodel =
    Instr.time Instr.Learn (fun () ->
        Mle.parametric_mle ~n ~init ~labels ?rewards ~groups:sp.groups ())
  in
  (* Step 1: the model learned from the unrepaired data (all x_g = 0). *)
  let original_model = Pdtmc.instantiate pmodel (fun _ -> Ratio.zero) in
  let original =
    Instr.time Instr.Check (fun () ->
        Check_dtmc.check_verbose original_model phi)
  in
  if original.Check_dtmc.holds && not force then
    Already_satisfied original.Check_dtmc.value
  else begin
    let query =
      Instr.time Instr.Eliminate (fun () -> Pquery.of_formula pmodel phi)
    in
    (* Only groups whose variable actually appears in f(x) need solving;
       pinned groups are fixed at 0 via their bounds. *)
    let var_names = List.map fst sp.groups in
    let dim = List.length var_names in
    let lower = Array.make dim 0.0 in
    let upper =
      Array.of_list
        (List.map
           (fun name -> if List.mem name sp.pinned then 0.0 else sp.max_drop)
           var_names)
    in
    (* interior margin: see Model_repair *)
    let property_constraint =
      ("property", Pquery.compile_violation ~margin:1e-6 query ~vars:var_names)
    in
    let problem =
      Nlp.problem ~dim
        ~objective:(Option.value ~default:default_cost cost)
        ~inequalities:[ property_constraint ]
        ~lower ~upper ()
    in
    match
      Instr.time Instr.Solve (fun () ->
          Nlp.solve ~method_:solver ~starts ~seed problem)
    with
    | Nlp.Infeasible s -> Infeasible { min_violation = s.Nlp.max_violation }
    | Nlp.Feasible s ->
      let drop_fractions = List.mapi (fun i g -> (g, s.Nlp.x.(i))) var_names in
      let env v = Ratio.of_float (List.assoc v drop_fractions) in
      let repaired_dtmc = Pdtmc.instantiate pmodel env in
      let verdict =
        Instr.time Instr.Check (fun () ->
            Check_dtmc.check_verbose repaired_dtmc phi)
      in
      let dropped_traces =
        List.fold_left
          (fun acc (g, frac) ->
             acc
             +. (frac *. float_of_int (List.length (List.assoc g sp.groups))))
          0.0 drop_fractions
      in
      Repaired
        {
          dtmc = repaired_dtmc;
          drop_fractions;
          cost = s.Nlp.objective_value;
          achieved_value = Pquery.compile_value query ~vars:var_names s.Nlp.x;
          dropped_traces;
          symbolic_constraint = query.Pquery.value;
          verified = verdict.Check_dtmc.holds;
        }
  end
