type spec = {
  groups : (string * Trace.t list) list;
  max_drop : float;
  pinned : string list;
}

let spec ?(max_drop = 0.999) ?(pinned = []) groups =
  if max_drop <= 0.0 || max_drop >= 1.0 then
    invalid_arg "Data_repair.spec: max_drop must lie in (0, 1)";
  List.iter
    (fun p ->
       if not (List.mem_assoc p groups) then
         invalid_arg (Printf.sprintf "Data_repair.spec: unknown pinned group %s" p))
    pinned;
  { groups; max_drop; pinned }

type repaired = {
  dtmc : Dtmc.t;
  drop_fractions : (string * float) list;
  cost : float;
  achieved_value : float;
  dropped_traces : float;
  symbolic_constraint : Ratfun.t;
  verified : bool;
  certificate : Region_repair.certificate option;
}

type result =
  | Already_satisfied of float option
  | Repaired of repaired
  | Infeasible of { min_violation : float }

let default_cost x = Array.fold_left (fun acc v -> acc +. (v *. v)) 0.0 x

let repair ~n ~init ?(labels = []) ?rewards
    ?(backend = Repair_backend.Nlp_solver) ?(solver = Nlp.Penalty)
    ?(starts = 12) ?(seed = 0) ?cost ?(force = false) ?(gap = 0.05) phi sp =
  if sp.groups = [] then invalid_arg "Data_repair: no trace groups";
  (* Parametric re-learning: model as rational functions of drop vector. *)
  let pmodel =
    Instr.time Instr.Learn (fun () ->
        Mle.parametric_mle ~n ~init ~labels ?rewards ~groups:sp.groups ())
  in
  (* Step 1: the model learned from the unrepaired data (all x_g = 0),
     with the same SMC pre-filter semantics as Model_repair. *)
  let original_model = Pdtmc.instantiate pmodel (fun _ -> Ratio.zero) in
  let exact_check () =
    Instr.time Instr.Check (fun () ->
        Check_dtmc.check_verbose original_model phi)
  in
  let original =
    if force then None
    else
      match backend with
      | Repair_backend.Smc_prefilter -> (
        match Repair_backend.smc_precheck ~seed original_model phi with
        | Repair_backend.Sprt_reject _ -> None
        | Repair_backend.Sprt_accept _ | Repair_backend.Fallthrough _ ->
          Some (exact_check ()))
      | Repair_backend.Nlp_solver | Repair_backend.Region ->
        Some (exact_check ())
  in
  match original with
  | Some v when v.Check_dtmc.holds && not force ->
    Already_satisfied v.Check_dtmc.value
  | _ -> begin
    let query =
      Instr.time Instr.Eliminate (fun () -> Pquery.of_formula pmodel phi)
    in
    (* Only groups whose variable actually appears in f(x) need solving;
       pinned groups are fixed at 0 via their bounds. *)
    let var_names = List.map fst sp.groups in
    let dim = List.length var_names in
    let lower = Array.make dim 0.0 in
    let upper =
      Array.of_list
        (List.map
           (fun name -> if List.mem name sp.pinned then 0.0 else sp.max_drop)
           var_names)
    in
    let finish ~x ~solution_cost ~certificate =
      let drop_fractions = List.mapi (fun i g -> (g, x.(i))) var_names in
      let env v = Ratio.of_float (List.assoc v drop_fractions) in
      let repaired_dtmc = Pdtmc.instantiate pmodel env in
      let verdict =
        Instr.time Instr.Check (fun () ->
            Check_dtmc.check_verbose repaired_dtmc phi)
      in
      let dropped_traces =
        List.fold_left
          (fun acc (g, frac) ->
             acc
             +. (frac *. float_of_int (List.length (List.assoc g sp.groups))))
          0.0 drop_fractions
      in
      Repaired
        {
          dtmc = repaired_dtmc;
          drop_fractions;
          cost = solution_cost;
          achieved_value = Pquery.compile_value query ~vars:var_names x;
          dropped_traces;
          symbolic_constraint = query.Pquery.value;
          verified = verdict.Check_dtmc.holds;
          certificate;
        }
    in
    match backend with
    | Repair_backend.Region -> (
      (* learned transition probabilities are ratios of non-negative trace
         counts, so they stay in [0,1] pointwise — only the property needs
         a region constraint; pinned groups become zero-width box dims *)
      let box =
        Box.make
          (List.map
             (fun name ->
                (name, 0.0, if List.mem name sp.pinned then 0.0 else sp.max_drop))
             var_names)
      in
      let property_c =
        Region_verify.of_query ~margin:1e-6 ~vars:var_names query
      in
      let settings = { Region_repair.default_settings with gap } in
      let region_cost =
        Option.map
          (fun c ->
             { Region_repair.point = c;
               box_lower = (fun _ -> 0.0);
               box_argmin = Box.center;
             })
          cost
      in
      match
        Instr.time Instr.Solve (fun () ->
            Region_repair.minimize ~settings ?cost:region_cost
              ~constraints:[ property_c ] box)
      with
      | r ->
        finish ~x:r.Region_repair.point ~solution_cost:r.Region_repair.cost
          ~certificate:(Some r.Region_repair.certificate)
      | exception Tml_error.Error (Tml_error.Empty_feasible_box _) ->
        let iv = Bounder.bounds property_c.Region_verify.bounder box in
        let min_violation =
          match query.Pquery.cmp with
          | Pctl.Le | Pctl.Lt ->
            Float.max 0.0 (iv.Interval.lo -. query.Pquery.bound)
          | Pctl.Ge | Pctl.Gt ->
            Float.max 0.0 (query.Pquery.bound -. iv.Interval.hi)
        in
        Infeasible { min_violation })
    | Repair_backend.Nlp_solver | Repair_backend.Smc_prefilter -> (
      (* interior margin: see Model_repair *)
      let property_constraint =
        ("property", Pquery.compile_violation ~margin:1e-6 query ~vars:var_names)
      in
      let problem =
        Nlp.problem ~dim
          ~objective:(Option.value ~default:default_cost cost)
          ~inequalities:[ property_constraint ]
          ~lower ~upper ()
      in
      match
        Instr.time Instr.Solve (fun () ->
            Nlp.solve ~method_:solver ~starts ~seed problem)
      with
      | Nlp.Infeasible s -> Infeasible { min_violation = s.Nlp.max_violation }
      | Nlp.Feasible s ->
        finish ~x:s.Nlp.x ~solution_cost:s.Nlp.objective_value
          ~certificate:None)
  end
