(** Model Repair (Definition 1, §IV-A).

    Given a DTMC [M] that violates a PCTL property [φ], find the smallest
    perturbation [Z] of the controllable transition probabilities such that
    [M_Z ⊨ φ]:
    {v
      min  g(Z) = Σ v_k²           (Eq. 1/4)
      s.t. M_Z ⊨ φ                 (Eq. 2 — discharged symbolically: the
                                     parametric model checker turns it into
                                     f(v) ~ b, Eq. 5)
           0 < P(i,j) + Z(i,j) < 1  on perturbed edges (Eq. 3/6)
    v}
    Perturbations may not create or delete edges (the paper's structure
    preservation); rows must stay stochastic, which is enforced
    symbolically at specification time. *)

type spec = {
  variables : (string * float * float) list;
      (** perturbation variables with box bounds [(name, lo, hi)] *)
  deltas : (int * int * Ratfun.t) list;
      (** [Z(i,j)]: the rational function added to edge [(i,j)]; typically
          [±v] or [c·v]. Every edge must already exist in the chain, and
          each row's deltas must sum to the zero function. *)
}

type repaired = {
  dtmc : Dtmc.t;  (** the repaired model [M'] *)
  assignment : (string * float) list;  (** the optimal perturbation vector *)
  cost : float;  (** cost of the optimal perturbation *)
  achieved_value : float;  (** the repaired probability/reward at the optimum *)
  symbolic_constraint : Ratfun.t;  (** [f(v)] itself, for inspection *)
  verified : bool;  (** numeric re-check of [M' ⊨ φ] *)
  epsilon_bisimilarity : float;
      (** Proposition 1: [M] and [M'] are ε-bisimilar with this ε — the
          largest entry of the realised perturbation matrix [Z]
          (computed as {!Bisimulation.epsilon_bound} between the original
          and repaired chains). *)
  solver_rung : string;
      (** which solver rung produced the solution: the method name for a
          plain [repair], the {!Nlp.solve_with_fallback} rung label
          ("augmented-lagrangian", "penalty", "penalty-wide") under
          [~fallback:true], or ["region-bnb"] under the region backend. *)
  certificate : Region_repair.certificate option;
      (** the global-optimality certificate, present exactly when the
          region backend produced the repair ([None] for NLP solutions,
          which certify nothing beyond local feasibility). *)
}

type result =
  | Already_satisfied of float option
      (** the original model satisfies [φ]; payload = its value *)
  | Repaired of repaired
  | Infeasible of { min_violation : float }
      (** no feasible perturbation found; payload = smallest constraint
          violation seen (the paper's "Model Repair gives infeasible
          solution" case) *)

val repair :
  ?backend:Repair_backend.t ->
  ?solver:Nlp.method_ ->
  ?starts:int ->
  ?seed:int ->
  ?cost:(float array -> float) ->
  ?force:bool ->
  ?fallback:bool ->
  ?gap:float ->
  Dtmc.t ->
  Pctl.state_formula ->
  spec ->
  result
(** [repair m φ spec]. With [force] the repair runs even when [m ⊨ φ]
    already. The default [cost] is the squared L2 norm of the perturbation
    vector (the Frobenius-norm cost of Eq. 1).  With [fallback] the NLP is
    solved by {!Nlp.solve_with_fallback} — escalating augmented Lagrangian
    → penalty → a wider multistart before conceding infeasibility; the
    successful rung is recorded in [solver_rung].

    [backend] selects the solving substrate (default {!Repair_backend.t}
    [Nlp_solver]).  Under [Region] the same constraint system is solved by
    {!Region_repair.minimize} to the relative optimality [gap] (default
    0.05) and the result carries a certificate; a custom [cost] degrades
    the certificate to a trivial lower bound (only the default quadratic
    cost has a sound box bound).  Under [Smc_prefilter] a seeded
    {!Smc.sprt} pre-check runs before the exact initial verification —
    see {!Repair_backend.smc_precheck} — and solving proceeds on the NLP
    path.  [solver]/[starts]/[fallback] are NLP-path knobs; [gap] is a
    region-path knob; both paths honour [seed], [cost] and [force].
    @raise Invalid_argument on malformed specs (unknown edges, unbalanced
    rows, duplicate variables).
    @raise Pquery.Unsupported on properties outside the parametric
    fragment. *)

val parametric_model : Dtmc.t -> spec -> Pdtmc.t
(** The parametric chain [M_Z] — exposed for inspection and benches. *)
