(** Model Repair (Definition 1, §IV-A).

    Given a DTMC [M] that violates a PCTL property [φ], find the smallest
    perturbation [Z] of the controllable transition probabilities such that
    [M_Z ⊨ φ]:
    {v
      min  g(Z) = Σ v_k²           (Eq. 1/4)
      s.t. M_Z ⊨ φ                 (Eq. 2 — discharged symbolically: the
                                     parametric model checker turns it into
                                     f(v) ~ b, Eq. 5)
           0 < P(i,j) + Z(i,j) < 1  on perturbed edges (Eq. 3/6)
    v}
    Perturbations may not create or delete edges (the paper's structure
    preservation); rows must stay stochastic, which is enforced
    symbolically at specification time. *)

type spec = {
  variables : (string * float * float) list;
      (** perturbation variables with box bounds [(name, lo, hi)] *)
  deltas : (int * int * Ratfun.t) list;
      (** [Z(i,j)]: the rational function added to edge [(i,j)]; typically
          [±v] or [c·v]. Every edge must already exist in the chain, and
          each row's deltas must sum to the zero function. *)
}

type repaired = {
  dtmc : Dtmc.t;  (** the repaired model [M'] *)
  assignment : (string * float) list;  (** the optimal perturbation vector *)
  cost : float;  (** cost of the optimal perturbation *)
  achieved_value : float;  (** the repaired probability/reward at the optimum *)
  symbolic_constraint : Ratfun.t;  (** [f(v)] itself, for inspection *)
  verified : bool;  (** numeric re-check of [M' ⊨ φ] *)
  epsilon_bisimilarity : float;
      (** Proposition 1: [M] and [M'] are ε-bisimilar with this ε — the
          largest entry of the realised perturbation matrix [Z]
          (computed as {!Bisimulation.epsilon_bound} between the original
          and repaired chains). *)
  solver_rung : string;
      (** which solver rung produced the solution: the method name for a
          plain [repair], or the {!Nlp.solve_with_fallback} rung label
          ("augmented-lagrangian", "penalty", "penalty-wide") under
          [~fallback:true]. *)
}

type result =
  | Already_satisfied of float option
      (** the original model satisfies [φ]; payload = its value *)
  | Repaired of repaired
  | Infeasible of { min_violation : float }
      (** no feasible perturbation found; payload = smallest constraint
          violation seen (the paper's "Model Repair gives infeasible
          solution" case) *)

val repair :
  ?solver:Nlp.method_ ->
  ?starts:int ->
  ?seed:int ->
  ?cost:(float array -> float) ->
  ?force:bool ->
  ?fallback:bool ->
  Dtmc.t ->
  Pctl.state_formula ->
  spec ->
  result
(** [repair m φ spec]. With [force] the repair runs even when [m ⊨ φ]
    already. The default [cost] is the squared L2 norm of the perturbation
    vector (the Frobenius-norm cost of Eq. 1).  With [fallback] the NLP is
    solved by {!Nlp.solve_with_fallback} — escalating augmented Lagrangian
    → penalty → a wider multistart before conceding infeasibility; the
    successful rung is recorded in [solver_rung].
    @raise Invalid_argument on malformed specs (unknown edges, unbalanced
    rows, duplicate variables).
    @raise Pquery.Unsupported on properties outside the parametric
    fragment. *)

val parametric_model : Dtmc.t -> spec -> Pdtmc.t
(** The parametric chain [M_Z] — exposed for inspection and benches. *)
