type stage =
  | Original_ok of float option
  | Model_repaired of Model_repair.repaired
  | Data_repaired of Data_repair.repaired
  | Unrepairable of {
      model_repair_violation : float option;
      data_repair_violation : float option;
    }

type report = {
  property : Pctl.state_formula;
  original_value : float option;
  outcome : stage;
}

let run ~n ~init ?(labels = []) ?rewards ?model_spec ?data_spec ~groups phi =
  let all_traces = List.concat_map snd groups in
  let rewards_float = Option.map (Array.map Ratio.to_float) rewards in
  let model =
    Instr.time Instr.Learn (fun () ->
        Mle.learn_dtmc ~n ~init ~labels ?rewards:rewards_float all_traces)
  in
  let original =
    Instr.time Instr.Check (fun () -> Check_dtmc.check_verbose model phi)
  in
  if original.Check_dtmc.holds then
    {
      property = phi;
      original_value = original.Check_dtmc.value;
      outcome = Original_ok original.Check_dtmc.value;
    }
  else begin
    (* Stage 2: Model Repair. *)
    let model_result =
      Option.map (fun spec -> Model_repair.repair model phi spec) model_spec
    in
    match model_result with
    | Some (Model_repair.Repaired r) ->
      {
        property = phi;
        original_value = original.Check_dtmc.value;
        outcome = Model_repaired r;
      }
    | Some (Model_repair.Already_satisfied v) ->
      (* can only happen under a force/consistency mismatch; treat as ok *)
      { property = phi; original_value = v; outcome = Original_ok v }
    | Some (Model_repair.Infeasible _) | None -> (
        let model_violation =
          match model_result with
          | Some (Model_repair.Infeasible { min_violation }) ->
            Some min_violation
          | _ -> None
        in
        (* Stage 3: Data Repair. *)
        let data_spec =
          match data_spec with
          | Some s -> Some s
          | None -> if groups = [] then None else Some (Data_repair.spec groups)
        in
        let data_result =
          Option.map
            (fun spec ->
               Data_repair.repair ~n ~init ~labels ?rewards phi spec)
            data_spec
        in
        match data_result with
        | Some (Data_repair.Repaired r) ->
          {
            property = phi;
            original_value = original.Check_dtmc.value;
            outcome = Data_repaired r;
          }
        | Some (Data_repair.Already_satisfied v) ->
          { property = phi; original_value = v; outcome = Original_ok v }
        | Some (Data_repair.Infeasible { min_violation }) ->
          {
            property = phi;
            original_value = original.Check_dtmc.value;
            outcome =
              Unrepairable
                {
                  model_repair_violation = model_violation;
                  data_repair_violation = Some min_violation;
                };
          }
        | None ->
          {
            property = phi;
            original_value = original.Check_dtmc.value;
            outcome =
              Unrepairable
                {
                  model_repair_violation = model_violation;
                  data_repair_violation = None;
                };
          })
  end

let pp_value fmt = function
  | Some v -> Format.fprintf fmt "%g" v
  | None -> Format.fprintf fmt "-"

let pp_report fmt r =
  Format.fprintf fmt "property: %s@\n" (Pctl.to_string r.property);
  Format.fprintf fmt "learned-model value: %a@\n" pp_value r.original_value;
  match r.outcome with
  | Original_ok v ->
    Format.fprintf fmt "outcome: SATISFIED without repair (value %a)@\n"
      pp_value v
  | Model_repaired m ->
    Format.fprintf fmt "outcome: MODEL REPAIR (cost %.6g, value %.6g, %s)@\n"
      m.Model_repair.cost m.Model_repair.achieved_value
      (if m.Model_repair.verified then "verified" else "NOT verified");
    List.iter
      (fun (name, v) -> Format.fprintf fmt "  %s = %.6g@\n" name v)
      m.Model_repair.assignment
  | Data_repaired d ->
    Format.fprintf fmt
      "outcome: DATA REPAIR (cost %.6g, value %.6g, ~%.1f traces dropped, %s)@\n"
      d.Data_repair.cost d.Data_repair.achieved_value
      d.Data_repair.dropped_traces
      (if d.Data_repair.verified then "verified" else "NOT verified");
    List.iter
      (fun (name, v) -> Format.fprintf fmt "  drop(%s) = %.6g@\n" name v)
      d.Data_repair.drop_fractions
  | Unrepairable { model_repair_violation; data_repair_violation } ->
    Format.fprintf fmt "outcome: UNREPAIRABLE (model-repair violation %a, \
                        data-repair violation %a)@\n"
      pp_value model_repair_violation pp_value data_repair_violation
