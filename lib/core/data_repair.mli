(** Data Repair (Definition 3, §IV-B) — the machine-teaching formulation.

    When Model Repair is infeasible (or undesired), repair the {e data}: find
    the smallest set of training traces to drop so that the model re-learned
    from the remaining data satisfies the property (Eqs. 11–15).

    Traces are partitioned into named groups (the paper's "trace types" —
    e.g. successful-forward vs failed-forward traces); each group [g] gets a
    continuous drop-fraction variable [x_g ∈ \[0, max_drop\]]. The inner
    ML step (maximum likelihood) has a closed form, so the re-learned
    transition probabilities are rational functions of [x] (built by
    {!Mle.parametric_mle}); parametric model checking then gives the outer
    NLP's constraint [f(x) ~ b]. *)

type spec = {
  groups : (string * Trace.t list) list;
  max_drop : float;  (** upper bound per drop fraction, default-style 0.999 *)
  pinned : string list;
      (** groups that must be kept intact ([x_g = 0]) — the paper's "keep
          data points we know are reliable" refinement *)
}

val spec :
  ?max_drop:float -> ?pinned:string list -> (string * Trace.t list) list -> spec

type repaired = {
  dtmc : Dtmc.t;  (** model re-learned from the repaired data *)
  drop_fractions : (string * float) list;
  cost : float;
  achieved_value : float;
  dropped_traces : float;  (** expected number of dropped traces *)
  symbolic_constraint : Ratfun.t;
  verified : bool;
  certificate : Region_repair.certificate option;
      (** present exactly when the region backend produced the repair *)
}

type result =
  | Already_satisfied of float option
  | Repaired of repaired
  | Infeasible of { min_violation : float }

val repair :
  n:int ->
  init:int ->
  ?labels:(string * int list) list ->
  ?rewards:Ratio.t array ->
  ?backend:Repair_backend.t ->
  ?solver:Nlp.method_ ->
  ?starts:int ->
  ?seed:int ->
  ?cost:(float array -> float) ->
  ?force:bool ->
  ?gap:float ->
  Pctl.state_formula ->
  spec ->
  result
(** The default cost is [Σ x_g²] (the squared perturbation magnitude of
    Eq. 11).  [backend] has the same semantics as in {!Model_repair.repair}:
    [Region] solves by certified branch-and-bound over the drop-fraction
    box (pinned groups become zero-width dimensions) to the relative
    optimality [gap] (default 0.05); [Smc_prefilter] runs a seeded SPRT on
    the model learned from the unrepaired data before the exact initial
    check, then solves on the NLP path.
    @raise Invalid_argument on malformed specs.
    @raise Pquery.Unsupported on properties outside the parametric
    fragment. *)
