(** Per-stage instrumentation probes for the repair pipeline.

    The repair stack reports wall-clock timings of its expensive stages —
    [learn] (MLE / parametric MLE), [eliminate] (parametric model checking),
    [solve] (the repair NLP) and [check] (numeric PCTL verification) — to an
    installable recorder.  With no recorder installed the probes are free
    (a single atomic load per stage).

    The probes also serve two fault-tolerance duties:

    - {b fault injection}: every stage entry is a {!Fault} site, so an
      installed chaos plan can raise, delay or NaN-corrupt a stage;
    - {b in-flight cancellation}: a worker installs a {!token} around each
      job, and {!time} polls it at every stage boundary — a job whose
      deadline expired (or whose future was cancelled) mid-run raises
      {!Deadline_exceeded} / {!Cancelled_in_flight} at the next stage
      instead of running to completion.

    The runtime layer ([Runtime.Stats]) installs a thread-safe recorder
    here; recorders may be called concurrently from several domains, and
    the recorder slot itself is an [Atomic.t] so concurrent installs and
    probes never tear.

    Since the observability layer landed, every timed stage additionally
    emits a {!Trace_span} named [stage:<name>] (free when tracing is
    disabled) and an observation into the [tml_stage_seconds] {!Metrics}
    histogram.  The plain-recorder interface below is kept as a shim for
    existing callers ([Runtime_stats]); new code should read stage
    timings from the metrics registry or a span dump instead. *)

type stage = Learn | Eliminate | Solve | Check

val stage_name : stage -> string
(** ["learn"], ["eliminate"], ["solve"], ["check"]. *)

val set_recorder : (stage -> float -> unit) option -> unit
(** Install (or remove) the process-wide recorder.  The recorder receives
    the stage and its elapsed wall-clock seconds, once per timed section. *)

exception Deadline_exceeded
(** Raised by a stage-boundary checkpoint when the current token's
    deadline has passed. *)

exception Cancelled_in_flight
(** Raised by a stage-boundary checkpoint when the current token reports
    cancellation. *)

type token = { deadline : float option; cancelled : unit -> bool }
(** A cooperative cancellation token: an absolute wall-clock deadline and
    a cancellation probe, both polled between stages. *)

val with_token : token option -> (unit -> 'a) -> 'a
(** Install [tok] for the current domain for the duration of [f] (tokens
    nest; the previous token is restored on exit). *)

val checkpoint : unit -> unit
(** Poll the current token, raising {!Cancelled_in_flight} or
    {!Deadline_exceeded}.  No-op without a token.  Called automatically
    at every {!time} entry; long custom stages may poll it directly. *)

val time : stage -> (unit -> 'a) -> 'a
(** [time stage f] probes the stage's {!Fault} site, polls {!checkpoint},
    then runs [f ()] inside a [stage:<name>] trace span, reporting its
    duration to the [tml_stage_seconds] histogram and to the recorder (if
    any).  Exceptions propagate; the duration is still reported and the
    span is marked errored. *)
