(** Per-stage instrumentation probes for the repair pipeline.

    The repair stack reports wall-clock timings of its expensive stages —
    [learn] (MLE / parametric MLE), [eliminate] (parametric model checking),
    [solve] (the repair NLP) and [check] (numeric PCTL verification) — to an
    installable recorder.  With no recorder installed the probes are free
    (a single atomic load per stage).

    The runtime layer ([Runtime.Stats]) installs a thread-safe recorder
    here; recorders may be called concurrently from several domains. *)

type stage = Learn | Eliminate | Solve | Check

val stage_name : stage -> string
(** ["learn"], ["eliminate"], ["solve"], ["check"]. *)

val set_recorder : (stage -> float -> unit) option -> unit
(** Install (or remove) the process-wide recorder.  The recorder receives
    the stage and its elapsed wall-clock seconds, once per timed section. *)

val time : stage -> (unit -> 'a) -> 'a
(** [time stage f] runs [f ()], reporting its duration to the recorder (if
    any).  Exceptions propagate; the duration is still reported. *)
