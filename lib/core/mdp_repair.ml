type spec = {
  variables : (string * float * float) list;
  deltas : (int * string * int * Ratfun.t) list;
}

type repaired = {
  mdp : Mdp.t;
  assignment : (string * float) list;
  cost : float;
  constraints_checked : int;
  verified : bool;
}

type result =
  | Already_satisfied
  | Repaired of repaired
  | Infeasible of { min_violation : float }

let enumerate_policies ?(cap = 512) m =
  let n = Mdp.num_states m in
  let choices = Array.init n (fun s -> Mdp.action_names m s) in
  let total =
    Array.fold_left (fun acc l -> acc * List.length l) 1 choices
  in
  if total > cap then
    invalid_arg
      (Printf.sprintf
         "Mdp_repair: %d deterministic policies exceed the cap of %d" total cap);
  let rec go s acc =
    if s = n then [ Array.of_list (List.rev acc) ]
    else
      List.concat_map (fun a -> go (s + 1) (a :: acc)) choices.(s)
  in
  go 0 []

let validate_spec m spec =
  let names = List.map (fun (n, _, _) -> n) spec.variables in
  if List.length (List.sort_uniq String.compare names) <> List.length names then
    invalid_arg "Mdp_repair: duplicate variable names";
  List.iter
    (fun (s, a, d, f) ->
       (match Mdp.find_action m s a with
        | None ->
          invalid_arg (Printf.sprintf "Mdp_repair: no action %s in state %d" a s)
        | Some act ->
          if not (List.mem_assoc d act.Mdp.dist) then
            invalid_arg
              (Printf.sprintf
                 "Mdp_repair: delta on non-existent edge %d/%s -> %d (Eq. 3)" s a d));
       List.iter
         (fun v ->
            if not (List.mem v names) then
              invalid_arg
                (Printf.sprintf "Mdp_repair: undeclared variable %s" v))
         (Ratfun.vars f))
    spec.deltas

(* The parametric chain induced by a fixed policy, with action-level
   perturbations applied to the chosen actions. *)
let induced_parametric m spec pi =
  let n = Mdp.num_states m in
  let delta s a d =
    List.fold_left
      (fun acc (s', a', d', f) ->
         if s = s' && a = a' && d = d' then Ratfun.add acc f else acc)
      Ratfun.zero spec.deltas
  in
  let transitions =
    List.concat
      (List.init n (fun s ->
           let aname = pi.(s) in
           match Mdp.find_action m s aname with
           | None -> assert false (* policies come from enumerate_policies *)
           | Some act ->
             (* exact lift + exact row renormalisation: floats like
                0.3 + 0.7 are not exactly 1 as dyadic rationals *)
             let exact =
               List.map (fun (d, p) -> (d, Ratio.of_float p)) act.Mdp.dist
             in
             let total =
               List.fold_left (fun acc (_, q) -> Ratio.add acc q) Ratio.zero exact
             in
             List.map
               (fun (d, q) ->
                  ( s,
                    d,
                    Ratfun.add
                      (Ratfun.const (Ratio.div q total))
                      (delta s aname d) ))
               exact))
  in
  let labels = List.map (fun l -> (l, Mdp.states_with_label m l)) (Mdp.labels m) in
  let rewards =
    Array.init n (fun s ->
        let aname = pi.(s) in
        let ar =
          match Mdp.find_action m s aname with
          | Some a -> a.Mdp.reward
          | None -> 0.0
        in
        Ratfun.const (Ratio.of_float (Mdp.state_reward m s +. ar)))
  in
  Pdtmc.make ~n ~init:(Mdp.init_state m) ~transitions ~labels ~rewards ()

let apply_solution m spec assignment =
  let n = Mdp.num_states m in
  let env v = List.assoc v assignment in
  let delta s a d =
    List.fold_left
      (fun acc (s', a', d', f) ->
         if s = s' && a = a' && d = d' then acc +. Ratfun.eval_float env f
         else acc)
      0.0 spec.deltas
  in
  let actions =
    List.concat
      (List.init n (fun s ->
           List.map
             (fun (a : Mdp.action) ->
                ( s,
                  a.Mdp.name,
                  List.map (fun (d, p) -> (d, p +. delta s a.Mdp.name d)) a.Mdp.dist ))
             (Mdp.actions_of m s)))
  in
  let labels = List.map (fun l -> (l, Mdp.states_with_label m l)) (Mdp.labels m) in
  let action_rewards =
    List.concat
      (List.init n (fun s ->
           List.map
             (fun (a : Mdp.action) -> ((s, a.Mdp.name), a.Mdp.reward))
             (Mdp.actions_of m s)))
  in
  let state_rewards = Array.init n (Mdp.state_reward m) in
  let features =
    if Mdp.feature_dim m = 0 then None
    else Some (Array.init n (Mdp.features_of m))
  in
  Mdp.make ~n ~init:(Mdp.init_state m) ~actions ~action_rewards ~labels
    ~state_rewards ?features ()

let edge_margin = 1e-9
let default_cost x = Array.fold_left (fun acc v -> acc +. (v *. v)) 0.0 x

let repair ?(solver = Nlp.Penalty) ?(starts = 8) ?(seed = 0) ?policy_cap
    ?(force = false) m phi spec =
  validate_spec m spec;
  if Check_mdp.check m phi && not force then Already_satisfied
  else begin
    let policies = enumerate_policies ?cap:policy_cap m in
    let var_names = List.map (fun (n, _, _) -> n) spec.variables in
    let dim = List.length var_names in
    if dim = 0 then invalid_arg "Mdp_repair: no perturbation variables";
    (* one symbolic constraint per policy, arena-compiled against the
       spec's variable order *)
    let policy_constraints =
      List.mapi
        (fun i pi ->
           let pd = induced_parametric m spec pi in
           let q = Pquery.of_formula pd phi in
           ( Printf.sprintf "policy_%d" i,
             Pquery.compile_violation ~margin:1e-6 q ~vars:var_names ))
        policies
    in
    (* action-level edge bounds, policy independent *)
    let perturbed =
      List.sort_uniq compare
        (List.map (fun (s, a, d, _) -> (s, a, d)) spec.deltas)
    in
    let edge_constraints =
      List.concat_map
        (fun (s, a, d) ->
           let base =
             match Mdp.find_action m s a with
             | Some act -> List.assoc d act.Mdp.dist
             | None -> assert false (* checked by validate_spec *)
           in
           let dsum =
             List.fold_left
               (fun acc (s', a', d', f) ->
                  if s = s' && a = a' && d = d' then Ratfun.add acc f else acc)
               Ratfun.zero spec.deltas
           in
           let a' = Arena.compile ~vars:var_names dsum in
           [ ( Printf.sprintf "edge_%d_%s_%d_pos" s a d,
               fun x -> edge_margin -. (base +. Arena.eval a' x) );
             ( Printf.sprintf "edge_%d_%s_%d_lt1" s a d,
               fun x -> base +. Arena.eval a' x -. 1.0 +. edge_margin );
           ])
        perturbed
    in
    let lower = Array.of_list (List.map (fun (_, lo, _) -> lo) spec.variables) in
    let upper = Array.of_list (List.map (fun (_, _, hi) -> hi) spec.variables) in
    let problem =
      Nlp.problem ~dim ~objective:default_cost
        ~inequalities:(policy_constraints @ edge_constraints)
        ~lower ~upper ()
    in
    match Nlp.solve ~method_:solver ~starts ~seed problem with
    | Nlp.Infeasible s -> Infeasible { min_violation = s.Nlp.max_violation }
    | Nlp.Feasible s ->
      let assignment = List.mapi (fun i n -> (n, s.Nlp.x.(i))) var_names in
      let repaired_mdp = apply_solution m spec assignment in
      Repaired
        {
          mdp = repaired_mdp;
          assignment;
          cost = s.Nlp.objective_value;
          constraints_checked = List.length policies;
          verified = Check_mdp.check repaired_mdp phi;
        }
  end
