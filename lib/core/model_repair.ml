type spec = {
  variables : (string * float * float) list;
  deltas : (int * int * Ratfun.t) list;
}

type repaired = {
  dtmc : Dtmc.t;
  assignment : (string * float) list;
  cost : float;
  achieved_value : float;
  symbolic_constraint : Ratfun.t;
  verified : bool;
  epsilon_bisimilarity : float;
  solver_rung : string;
  certificate : Region_repair.certificate option;
}

type result =
  | Already_satisfied of float option
  | Repaired of repaired
  | Infeasible of { min_violation : float }

let validate_spec dtmc spec =
  let names = List.map (fun (n, _, _) -> n) spec.variables in
  if List.length (List.sort_uniq String.compare names) <> List.length names then
    invalid_arg "Model_repair: duplicate variable names";
  List.iter
    (fun (n, lo, hi) ->
       if lo > hi then
         invalid_arg (Printf.sprintf "Model_repair: empty bounds for %s" n))
    spec.variables;
  List.iter
    (fun (s, d, _) ->
       if Dtmc.prob dtmc s d <= 0.0 then
         invalid_arg
           (Printf.sprintf
              "Model_repair: delta on non-existent edge %d->%d (structure \
               must be preserved, Eq. 3)"
              s d))
    spec.deltas;
  (* all delta variables must be declared *)
  List.iter
    (fun (s, d, f) ->
       List.iter
         (fun v ->
            if not (List.mem v names) then
              invalid_arg
                (Printf.sprintf
                   "Model_repair: edge %d->%d uses undeclared variable %s" s d v))
         (Ratfun.vars f))
    spec.deltas

let parametric_model dtmc spec =
  validate_spec dtmc spec;
  let delta s d =
    List.fold_left
      (fun acc (s', d', f) -> if s = s' && d = d' then Ratfun.add acc f else acc)
      Ratfun.zero spec.deltas
  in
  let base = Pdtmc.of_dtmc dtmc in
  (* Pdtmc.make re-validates symbolic row sums, enforcing that each row's
     deltas cancel. *)
  Pdtmc.map_transitions base (fun s d p -> Ratfun.add p (delta s d))

let default_cost x = Array.fold_left (fun acc v -> acc +. (v *. v)) 0.0 x

let edge_margin = 1e-9

let method_name = function
  | Nlp.Penalty -> "penalty"
  | Nlp.Augmented_lagrangian -> "augmented-lagrangian"

let repair ?(backend = Repair_backend.Nlp_solver) ?(solver = Nlp.Penalty)
    ?(starts = 12) ?(seed = 0) ?cost ?(force = false) ?(fallback = false)
    ?(gap = 0.05) dtmc phi spec =
  (* Step 1: verify the original model (§II pipeline).  Under the
     smc-prefilter backend a seeded SPRT runs first: a statistical reject
     skips the exact check entirely (the repair would find cost 0 if the
     SPRT erred), a statistical accept still demands exact confirmation,
     and an undecided/unsupported pre-check falls through to the exact
     path with its reason traced. *)
  let exact_check () =
    Instr.time Instr.Check (fun () -> Check_dtmc.check_verbose dtmc phi)
  in
  let original =
    if force then None
    else
      match backend with
      | Repair_backend.Smc_prefilter -> (
        match Repair_backend.smc_precheck ~seed dtmc phi with
        | Repair_backend.Sprt_reject _ -> None
        | Repair_backend.Sprt_accept _ | Repair_backend.Fallthrough _ ->
          Some (exact_check ()))
      | Repair_backend.Nlp_solver | Repair_backend.Region ->
        Some (exact_check ())
  in
  match original with
  | Some v when v.Check_dtmc.holds && not force ->
    Already_satisfied v.Check_dtmc.value
  | _ -> begin
    (* Step 2: parametric model + symbolic constraint f(v) ~ b. *)
    let pmodel = parametric_model dtmc spec in
    let query =
      Instr.time Instr.Eliminate (fun () -> Pquery.of_formula pmodel phi)
    in
    let var_names = List.map (fun (n, _, _) -> n) spec.variables in
    let dim = List.length var_names in
    if dim = 0 then invalid_arg "Model_repair: no perturbation variables";
    let perturbed_edges =
      List.sort_uniq compare (List.map (fun (s, d, _) -> (s, d)) spec.deltas)
    in
    let pmodel_edge s d =
      List.assoc d (Pdtmc.succ pmodel s)
    in
    (* Step 4 (shared): instantiate the optimum and re-verify numerically. *)
    let finish ~x ~solution_cost ~rung ~certificate =
      let assignment = List.mapi (fun i n -> (n, x.(i))) var_names in
      let env v = Ratio.of_float (List.assoc v assignment) in
      let repaired_dtmc = Pdtmc.instantiate pmodel env in
      let verdict =
        Instr.time Instr.Check (fun () ->
            Check_dtmc.check_verbose repaired_dtmc phi)
      in
      Repaired
        {
          dtmc = repaired_dtmc;
          assignment;
          cost = solution_cost;
          achieved_value = Pquery.compile_value query ~vars:var_names x;
          symbolic_constraint = query.Pquery.value;
          verified = verdict.Check_dtmc.holds;
          epsilon_bisimilarity = Bisimulation.epsilon_bound dtmc repaired_dtmc;
          solver_rung = rung;
          certificate;
        }
    in
    match backend with
    | Repair_backend.Region ->
      (* Step 3 (region): the same constraint system, bounded over boxes
         instead of point-evaluated — property and edge feasibility become
         region constraints, and branch-and-bound minimises the cost over
         the accept set with a global-optimality certificate. *)
      let box = Box.make spec.variables in
      let property_c =
        Region_verify.of_query ~margin:1e-6 ~vars:var_names query
      in
      let edge_cs =
        List.concat_map
          (fun (s, d) ->
             let f = pmodel_edge s d in
             [ Region_verify.constr ~margin:edge_margin
                 ~name:(Printf.sprintf "edge_%d_%d_pos" s d)
                 ~vars:var_names Pctl.Gt 0.0 f;
               Region_verify.constr ~margin:edge_margin
                 ~name:(Printf.sprintf "edge_%d_%d_lt1" s d)
                 ~vars:var_names Pctl.Lt 1.0 f;
             ])
          perturbed_edges
      in
      let constraints = property_c :: edge_cs in
      let settings = { Region_repair.default_settings with gap } in
      (* a custom point cost has no sound box lower bound; fall back to 0,
         which keeps the search sound but the certificate gap trivial *)
      let region_cost =
        Option.map
          (fun c ->
             { Region_repair.point = c;
               box_lower = (fun _ -> 0.0);
               box_argmin = Box.center;
             })
          cost
      in
      (match
         Instr.time Instr.Solve (fun () ->
             Region_repair.minimize ~settings ?cost:region_cost ~constraints
               box)
       with
       | r ->
         finish ~x:r.Region_repair.point ~solution_cost:r.Region_repair.cost
           ~rung:"region-bnb" ~certificate:(Some r.Region_repair.certificate)
       | exception Tml_error.Error (Tml_error.Empty_feasible_box _) ->
         (* bound-derived violation estimate: how far the property bound
            sits outside anything achievable on the box *)
         let iv = Bounder.bounds property_c.Region_verify.bounder box in
         let min_violation =
           match query.Pquery.cmp with
           | Pctl.Le | Pctl.Lt ->
             Float.max 0.0 (iv.Interval.lo -. query.Pquery.bound)
           | Pctl.Ge | Pctl.Gt ->
             Float.max 0.0 (query.Pquery.bound -. iv.Interval.hi)
         in
         Infeasible { min_violation })
    | Repair_backend.Nlp_solver | Repair_backend.Smc_prefilter -> begin
      (* Step 3: the NLP (Eqs. 4–6).  All constraints are arena-compiled
         against the spec's variable order, so the optimizer's inner loop
         evaluates flat float programs indexed by position. *)
      let lower =
        Array.of_list (List.map (fun (_, lo, _) -> lo) spec.variables)
      in
      let upper =
        Array.of_list (List.map (fun (_, _, hi) -> hi) spec.variables)
      in
      let edge_constraints =
        List.concat_map
          (fun (s, d) ->
             let a = Arena.compile ~vars:var_names (pmodel_edge s d) in
             [ ( Printf.sprintf "edge_%d_%d_pos" s d,
                 fun x -> edge_margin -. Arena.eval a x );
               ( Printf.sprintf "edge_%d_%d_lt1" s d,
                 fun x -> Arena.eval a x -. 1.0 +. edge_margin );
             ])
          perturbed_edges
      in
      (* a small interior margin keeps the optimum strictly inside the
         feasible region so the repaired model re-verifies after float
         round-off *)
      let property_constraint =
        ("property", Pquery.compile_violation ~margin:1e-6 query ~vars:var_names)
      in
      let problem =
        Nlp.problem ~dim
          ~objective:(Option.value ~default:default_cost cost)
          ~inequalities:(property_constraint :: edge_constraints)
          ~lower ~upper ()
      in
      match
        Instr.time Instr.Solve (fun () ->
            if fallback then Nlp.solve_with_fallback ~starts ~seed problem
            else (Nlp.solve ~method_:solver ~starts ~seed problem,
                  method_name solver))
      with
      | Nlp.Infeasible s, _ -> Infeasible { min_violation = s.Nlp.max_violation }
      | Nlp.Feasible s, rung ->
        finish ~x:s.Nlp.x ~solution_cost:s.Nlp.objective_value ~rung
          ~certificate:None
    end
  end
