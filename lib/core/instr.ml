type stage = Learn | Eliminate | Solve | Check

let stage_name = function
  | Learn -> "learn"
  | Eliminate -> "eliminate"
  | Solve -> "solve"
  | Check -> "check"

let fault_site = function
  | Learn -> Fault.Learn
  | Eliminate -> Fault.Eliminate
  | Solve -> Fault.Solve
  | Check -> Fault.Check

let recorder : (stage -> float -> unit) option Atomic.t = Atomic.make None
let set_recorder r = Atomic.set recorder r

(* ------------------------ cancellation tokens ------------------------ *)

exception Deadline_exceeded
exception Cancelled_in_flight

type token = { deadline : float option; cancelled : unit -> bool }

let token_key : token option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let with_token tok f =
  let slot = Domain.DLS.get token_key in
  let saved = !slot in
  slot := tok;
  Fun.protect ~finally:(fun () -> slot := saved) f

let checkpoint () =
  match !(Domain.DLS.get token_key) with
  | None -> ()
  | Some tok ->
    if tok.cancelled () then raise Cancelled_in_flight;
    (match tok.deadline with
     | Some d when Unix.gettimeofday () > d -> raise Deadline_exceeded
     | _ -> ())

(* ------------------------------ timing ------------------------------ *)

let time stage f =
  Fault.with_site (fault_site stage) @@ fun () ->
  checkpoint ();
  match Atomic.get recorder with
  | None -> f ()
  | Some record ->
    let t0 = Unix.gettimeofday () in
    let finish () = record stage (Unix.gettimeofday () -. t0) in
    (match f () with
     | v ->
       finish ();
       v
     | exception e ->
       finish ();
       raise e)
