type stage = Learn | Eliminate | Solve | Check

let stage_name = function
  | Learn -> "learn"
  | Eliminate -> "eliminate"
  | Solve -> "solve"
  | Check -> "check"

let recorder : (stage -> float -> unit) option Atomic.t = Atomic.make None
let set_recorder r = Atomic.set recorder r

let time stage f =
  match Atomic.get recorder with
  | None -> f ()
  | Some record ->
    let t0 = Unix.gettimeofday () in
    let finish () = record stage (Unix.gettimeofday () -. t0) in
    (match f () with
     | v ->
       finish ();
       v
     | exception e ->
       finish ();
       raise e)
