type stage = Learn | Eliminate | Solve | Check

let stage_name = function
  | Learn -> "learn"
  | Eliminate -> "eliminate"
  | Solve -> "solve"
  | Check -> "check"

let fault_site = function
  | Learn -> Fault.Learn
  | Eliminate -> Fault.Eliminate
  | Solve -> Fault.Solve
  | Check -> Fault.Check

let recorder : (stage -> float -> unit) option Atomic.t = Atomic.make None
let set_recorder r = Atomic.set recorder r

(* ------------------------ cancellation tokens ------------------------ *)

exception Deadline_exceeded
exception Cancelled_in_flight

type token = { deadline : float option; cancelled : unit -> bool }

let token_key : token option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let with_token tok f =
  let slot = Domain.DLS.get token_key in
  let saved = !slot in
  slot := tok;
  Fun.protect ~finally:(fun () -> slot := saved) f

let checkpoint () =
  match !(Domain.DLS.get token_key) with
  | None -> ()
  | Some tok ->
    if tok.cancelled () then raise Cancelled_in_flight;
    (match tok.deadline with
     | Some d when Unix.gettimeofday () > d -> raise Deadline_exceeded
     | _ -> ())

(* ------------------------------ timing ------------------------------ *)

(* One histogram per stage, registered eagerly at module init — on the
   main domain, before any worker can exist — so the probe itself never
   touches the registry mutex. *)
let stage_histogram =
  let mk stage =
    Metrics.histogram "tml_stage_seconds"
      ~help:"Wall-clock seconds spent per pipeline stage"
      ~label:("stage", stage_name stage)
      ~buckets:Metrics.default_time_buckets
  in
  let learn = mk Learn
  and eliminate = mk Eliminate
  and solve = mk Solve
  and check = mk Check in
  function
  | Learn -> learn
  | Eliminate -> eliminate
  | Solve -> solve
  | Check -> check

let time stage f =
  Fault.with_site (fault_site stage) @@ fun () ->
  checkpoint ();
  Trace_span.with_span ("stage:" ^ stage_name stage) @@ fun () ->
  let t0 = Unix.gettimeofday () in
  let finish () =
    let dt = Unix.gettimeofday () -. t0 in
    Metrics.observe (stage_histogram stage) dt;
    match Atomic.get recorder with None -> () | Some record -> record stage dt
  in
  match f () with
  | v ->
    finish ();
    v
  | exception e ->
    finish ();
    raise e
