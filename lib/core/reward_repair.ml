(* ------------------------------------------------------------------ *)
(* Projection route (Prop. 4)                                          *)
(* ------------------------------------------------------------------ *)

let maxent_log_weight m ~theta tr =
  let r = Irl.reward_vector m theta in
  let reward_sum =
    List.fold_left (fun acc s -> acc +. r.(s)) 0.0 (Trace.states tr)
  in
  reward_sum +. Trace.log_probability m tr

let projection_weights m ~theta ~rules trajectories =
  if trajectories = [] then
    invalid_arg "Reward_repair.projection_weights: no trajectories";
  List.iter
    (fun (_, lambda) ->
       if lambda < 0.0 then
         invalid_arg "Reward_repair.projection_weights: negative lambda")
    rules;
  let labels = Mdp.has_label m in
  let log_weights =
    List.map
      (fun tr ->
         let base = maxent_log_weight m ~theta tr in
         let penalty =
           List.fold_left
             (fun acc (rule, lambda) ->
                acc +. (lambda *. (1.0 -. Trace_logic.indicator ~labels tr rule)))
             0.0 rules
         in
         (tr, base -. penalty))
      trajectories
  in
  (* normalise via log-sum-exp *)
  let maxw =
    List.fold_left (fun acc (_, w) -> Float.max acc w) Float.neg_infinity
      log_weights
  in
  let exps = List.map (fun (tr, w) -> (tr, exp (w -. maxw))) log_weights in
  let z = List.fold_left (fun acc (_, w) -> acc +. w) 0.0 exps in
  List.map (fun (tr, w) -> (tr, w /. z)) exps

let sample_trajectories rng m ~theta ~horizon ~count =
  let policy = Irl.soft_policy m ~theta ~horizon in
  List.init count (fun _ ->
      let rec go s steps acc =
        if steps >= horizon then (List.rev acc, s)
        else begin
          let choices = Array.of_list policy.(s) in
          let i = Prng.categorical rng (Array.map snd choices) in
          let aname = fst choices.(i) in
          match Mdp.find_action m s aname with
          | None -> (List.rev acc, s)
          | Some a ->
            let dist = Array.of_list a.Mdp.dist in
            let j = Prng.categorical rng (Array.map snd dist) in
            go (fst dist.(j)) (steps + 1) ((s, aname) :: acc)
        end
      in
      let steps, final = go (Mdp.init_state m) 0 [] in
      Trace.make steps final)

let repair_by_projection ?options m ~theta ~rules trajectories =
  let weighted = projection_weights m ~theta ~rules trajectories in
  Irl.learn_weighted ?options ~theta0:theta m weighted

(* ------------------------------------------------------------------ *)
(* Direct Q-constraint route (§V-B)                                    *)
(* ------------------------------------------------------------------ *)

type q_constraint = {
  state : int;
  better : string;
  worse : string;
  margin : float;
}

type repaired = {
  theta : float array;
  delta : float array;
  cost : float;
  policy : Mdp.policy;
  q_gaps : (q_constraint * float) list;
  verified : bool;
}

type result =
  | Already_satisfied
  | Repaired of repaired
  | Infeasible of { min_violation : float }

let validate_constraints m constraints =
  List.iter
    (fun c ->
       if c.state < 0 || c.state >= Mdp.num_states m then
         invalid_arg (Printf.sprintf "Reward_repair: bad state %d" c.state);
       if Mdp.find_action m c.state c.better = None then
         invalid_arg
           (Printf.sprintf "Reward_repair: state %d has no action %S" c.state
              c.better);
       if Mdp.find_action m c.state c.worse = None then
         invalid_arg
           (Printf.sprintf "Reward_repair: state %d has no action %S" c.state
              c.worse))
    constraints

let q_gap ~gamma m theta c =
  let m' = Irl.apply_reward m theta in
  let q = Value.q_values ~gamma m' in
  List.assoc c.better q.(c.state) -. List.assoc c.worse q.(c.state)

let repair_q ?(gamma = 0.9) ?(starts = 8) ?(seed = 0) ?(force = false) m
    ~theta ~constraints =
  if Mdp.feature_dim m = 0 then
    invalid_arg "Reward_repair.repair_q: MDP has no features";
  if constraints = [] then invalid_arg "Reward_repair.repair_q: no constraints";
  validate_constraints m constraints;
  let k = Array.length theta in
  if k <> Mdp.feature_dim m then
    invalid_arg "Reward_repair.repair_q: theta dimension mismatch";
  let satisfied th =
    List.for_all (fun c -> q_gap ~gamma m th c >= c.margin) constraints
  in
  if satisfied theta && not force then Already_satisfied
  else begin
    (* variables = Δθ; constraint violation = margin − gap(θ+Δθ) *)
    let theta_plus dx = Array.mapi (fun i v -> v +. dx.(i)) theta in
    (* a small interior margin keeps the optimum strictly inside the
       feasible region so the final Q-table still verifies the raw margin *)
    let interior = 1e-6 in
    let inequalities =
      List.mapi
        (fun i c ->
           ( Printf.sprintf "q_constraint_%d" i,
             fun dx -> c.margin +. interior -. q_gap ~gamma m (theta_plus dx) c ))
        constraints
    in
    let problem =
      Nlp.problem ~dim:k
        ~objective:(fun dx -> Array.fold_left (fun acc v -> acc +. (v *. v)) 0.0 dx)
        ~inequalities
        ~lower:(Array.make k (-2.0))
        ~upper:(Array.make k 2.0)
        ()
    in
    match Instr.time Instr.Solve (fun () -> Nlp.solve ~starts ~seed problem) with
    | Nlp.Infeasible s -> Infeasible { min_violation = s.Nlp.max_violation }
    | Nlp.Feasible s ->
      let delta = s.Nlp.x in
      let theta' = theta_plus delta in
      let m' = Irl.apply_reward m theta' in
      let policy, _ = Value.optimal_policy ~gamma m' in
      let q_gaps = List.map (fun c -> (c, q_gap ~gamma m theta' c)) constraints in
      Repaired
        {
          theta = theta';
          delta;
          cost = s.Nlp.objective_value;
          policy;
          q_gaps;
          verified = List.for_all (fun (c, g) -> g >= c.margin -. 1e-9) q_gaps;
        }
  end

let policy_satisfies m policy ~rules ~horizon =
  let labels = Mdp.has_label m in
  (* exhaustive walk over all probabilistic branches up to the horizon *)
  let rec walk s steps acc_rev all_ok =
    if not all_ok then false
    else if steps >= horizon then
      let tr = Trace.make (List.rev acc_rev) s in
      List.for_all (fun rule -> Trace_logic.eval ~labels tr rule) rules
    else begin
      match Mdp.find_action m s policy.(s) with
      | None -> false
      | Some a ->
        (* a self-loop with probability 1 terminates the rollout *)
        (match a.Mdp.dist with
         | [ (d, p) ] when d = s && p > 1.0 -. 1e-12 ->
           let tr = Trace.make (List.rev acc_rev) s in
           List.for_all (fun rule -> Trace_logic.eval ~labels tr rule) rules
         | dist ->
           List.for_all
             (fun (d, p) ->
                p <= 0.0
                || walk d (steps + 1) ((s, a.Mdp.name) :: acc_rev) true)
             dist)
    end
  in
  walk (Mdp.init_state m) 0 [] true
