(** Which solving substrate a repair runs on.

    The paper's pipeline solves one NLP; this enum selects between that,
    the region-lifting backend ({!Region_repair} — globally certified,
    slower per query), and the NLP preceded by a cheap statistical
    pre-check ({!Smc} SPRT) that can dismiss the expensive exact
    verification step when the original model obviously satisfies or
    obviously violates the property.

    The slug strings are the wire/CLI vocabulary ([--backend nlp],
    [--backend region], [--backend smc-prefilter]) and must stay stable:
    they travel in [Wire] requests and are recorded in bench rows. *)

type t =
  | Nlp_solver  (** the paper's penalty/augmented-Lagrangian NLP *)
  | Region  (** certified branch-and-bound over accept-regions *)
  | Smc_prefilter
      (** SPRT pre-check on the original model, then the NLP path *)

val to_string : t -> string
(** ["nlp"], ["region"], ["smc-prefilter"]. *)

val of_string : string -> (t, string) result
(** Inverse of {!to_string}; [Error] names the unknown slug and the
    accepted values. *)

val all : (string * t) list
(** Slug/value pairs, for CLI enums. *)

(** {1 The SMC pre-check} *)

type precheck =
  | Sprt_accept of int  (** statistically satisfied, [n] samples *)
  | Sprt_reject of int  (** statistically violated, [n] samples *)
  | Fallthrough of string
      (** the fast path could not run or could not decide — the payload
          says why (non-[P] formula, bound too extreme, or
          ["undecided after N samples"]) *)

val smc_precheck : ?seed:int -> Dtmc.t -> Pctl.state_formula -> precheck
(** Wald's SPRT at its default error levels, as a pre-filter: a
    deterministic, seeded sampling pass that costs microseconds per
    sample and no elimination.  [Sprt_accept] still needs an exact
    confirmation before reporting "already satisfied" (the SPRT has
    nonzero error probability); [Sprt_reject] just skips the exact check
    and goes straight to repair, where an unnecessary repair would come
    back with cost 0 anyway.  Emits a [region:smc-prefilter] trace event
    with the outcome. *)
