type result =
  | Already_satisfied of float option
  | Repaired of Model_repair.repaired
  | Infeasible of { residual_violation : float }

let edge_margin = 1e-9

let repair ?(tol = 1e-9) ?(rounds = 4) ?(force = false) dtmc phi spec =
  List.iter
    (fun (name, lo, _) ->
       if lo <> 0.0 then
         invalid_arg
           (Printf.sprintf
              "Local_repair: variable %s must have lower bound 0 (got %g)" name lo))
    spec.Model_repair.variables;
  let original = Check_dtmc.check_verbose dtmc phi in
  if original.Check_dtmc.holds && not force then
    Already_satisfied original.Check_dtmc.value
  else begin
    let pmodel = Model_repair.parametric_model dtmc spec in
    let query = Pquery.of_formula pmodel phi in
    let var_names = List.map (fun (n, _, _) -> n) spec.Model_repair.variables in
    let upper =
      Array.of_list (List.map (fun (_, _, hi) -> hi) spec.Model_repair.variables)
    in
    let dim = Array.length upper in
    (* feasibility = property constraint + perturbed edges stay in (0,1);
       everything arena-compiled against the spec's variable order — the
       bisection loops below evaluate these thousands of times *)
    let violation = Pquery.compile_violation ~margin:1e-6 query ~vars:var_names in
    let raw_violation = Pquery.compile_violation ~margin:0.0 query ~vars:var_names in
    let perturbed_edges =
      List.sort_uniq compare
        (List.map (fun (s, d, _) -> (s, d)) spec.Model_repair.deltas)
    in
    let edge_fns =
      List.map
        (fun (s, d) ->
           Arena.compile ~vars:var_names (List.assoc d (Pdtmc.succ pmodel s)))
        perturbed_edges
    in
    let feasible x =
      violation x <= 0.0
      && List.for_all
           (fun a ->
              let v = Arena.eval a x in
              v > edge_margin && v < 1.0 -. edge_margin)
           edge_fns
    in
    let scale t = Array.map (fun hi -> t *. hi) upper in
    if not (feasible (scale 1.0)) then begin
      let violation = Float.max 0.0 (raw_violation (scale 1.0)) in
      Infeasible { residual_violation = violation }
    end
    else begin
      (* 1. smallest diagonal scale that is feasible *)
      let lo = ref 0.0 and hi = ref 1.0 in
      while !hi -. !lo > tol do
        let mid = (!lo +. !hi) /. 2.0 in
        if feasible (scale mid) then hi := mid else lo := mid
      done;
      let x = scale !hi in
      (* 2. coordinate descent: shrink one variable at a time *)
      for _ = 1 to rounds do
        for i = 0 to dim - 1 do
          let orig = x.(i) in
          let lo = ref 0.0 and hi = ref orig in
          while !hi -. !lo > tol do
            let mid = (!lo +. !hi) /. 2.0 in
            x.(i) <- mid;
            if feasible x then hi := mid else lo := mid
          done;
          x.(i) <- !hi;
          if not (feasible x) then x.(i) <- orig
        done
      done;
      let assignment = List.mapi (fun i n -> (n, x.(i))) var_names in
      let env v = Ratio.of_float (List.assoc v assignment) in
      let repaired_dtmc = Pdtmc.instantiate pmodel env in
      let verdict = Check_dtmc.check_verbose repaired_dtmc phi in
      Repaired
        {
          Model_repair.dtmc = repaired_dtmc;
          assignment;
          cost = Array.fold_left (fun acc v -> acc +. (v *. v)) 0.0 x;
          achieved_value = Pquery.compile_value query ~vars:var_names x;
          symbolic_constraint = query.Pquery.value;
          verified = verdict.Check_dtmc.holds;
          epsilon_bisimilarity = Bisimulation.epsilon_bound dtmc repaired_dtmc;
          solver_rung = "local-bisection";
          certificate = None;
        }
    end
  end
