type t = Nlp_solver | Region | Smc_prefilter

let to_string = function
  | Nlp_solver -> "nlp"
  | Region -> "region"
  | Smc_prefilter -> "smc-prefilter"

let all =
  [ ("nlp", Nlp_solver); ("region", Region); ("smc-prefilter", Smc_prefilter) ]

let of_string s =
  match List.assoc_opt s all with
  | Some b -> Ok b
  | None ->
    Error
      (Printf.sprintf "unknown backend %S (expected nlp, region or \
                       smc-prefilter)" s)

type precheck =
  | Sprt_accept of int
  | Sprt_reject of int
  | Fallthrough of string

let prefilter_counter outcome =
  Metrics.counter ~help:"SMC pre-filter outcomes" ~label:("outcome", outcome)
    "tml_smc_prefilter_total"

let smc_precheck ?(seed = 0) dtmc phi =
  let rng = Prng.create seed in
  let result =
    match Smc.sprt rng dtmc phi with
    | Smc.Accept, n -> Sprt_accept n
    | Smc.Reject, n -> Sprt_reject n
    | (Smc.Undecided _ as v), _ -> Fallthrough (Smc.verdict_to_string v)
    | exception Smc.Unsupported msg -> Fallthrough ("unsupported: " ^ msg)
  in
  let outcome =
    match result with
    | Sprt_accept _ -> "accept"
    | Sprt_reject _ -> "reject"
    | Fallthrough _ -> "fallthrough"
  in
  Metrics.incr (prefilter_counter outcome);
  ignore
    (Trace_span.event "region:smc-prefilter"
       ~attrs:
         [ ("outcome", outcome);
           (match result with
            | Sprt_accept n | Sprt_reject n -> ("samples", string_of_int n)
            | Fallthrough why -> ("why", why));
         ]);
  result
