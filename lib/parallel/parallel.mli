(** Intra-job parallelism hook.

    Kernel libraries (elimination, the NLP multistart) fan independent
    units of work out through {!run}; the runtime layer installs a runner
    backed by its domain pool (like {!Elimination.set_memo} and
    {!Fault.set_observer}), and with no runner installed every call
    degrades to running the tasks sequentially, in index order, on the
    calling domain.

    {b Determinism contract.}  A runner must execute {e every} task
    exactly once and return only after all of them have finished.  Tasks
    handed to {!run} are required by their callers to be pairwise
    independent (they touch disjoint state), so any execution order —
    including the sequential fallback — produces identical results.
    Exceptions are deterministic too: the exception raised by the {e
    lowest-indexed} failing task is re-raised after the whole batch has
    settled, regardless of the temporal order in which tasks failed. *)

type runner = (unit -> unit) array -> unit
(** Execute every task, return when all are done, re-raise the
    lowest-indexed task's exception if any failed. *)

val set_runner : runner option -> unit
(** Install (or with [None] remove) the process-wide runner.  Owned by
    the runtime: installed by [Runtime.create], cleared by
    [Runtime.shutdown]. *)

val enabled : unit -> bool
(** A runner is currently installed. *)

val run : (unit -> unit) array -> unit
(** Execute the batch through the installed runner, or sequentially in
    index order when none is installed.  Either way: all tasks run, and
    the lowest-indexed failure is re-raised once the batch has settled. *)

val map_array : ('a -> 'b) -> 'a array -> 'b array
(** Parallel [Array.map] over {!run}.  Results (and any re-raised
    exception) are byte-identical to the sequential map: element order is
    preserved and the lowest-indexed exception wins. *)

val map_list : ('a -> 'b) -> 'a list -> 'b list
(** {!map_array} over a list, preserving order. *)
