type runner = (unit -> unit) array -> unit

let hook : runner option Atomic.t = Atomic.make None
let set_runner r = Atomic.set hook r
let enabled () = Atomic.get hook <> None

(* Sequential fallback with the same contract as a pool runner: every
   task runs (a failure doesn't skip the rest — later tasks may be
   observed by the caller through shared state), and the lowest-indexed
   exception is re-raised after the batch settles. *)
let run_seq tasks =
  let first_err = ref None in
  Array.iteri
    (fun i task ->
       match task () with
       | () -> ()
       | exception e ->
         if !first_err = None then first_err := Some (i, e))
    tasks;
  match !first_err with None -> () | Some (_, e) -> raise e

let run tasks =
  if Array.length tasks = 0 then ()
  else if Array.length tasks = 1 then tasks.(0) ()
  else
    match Atomic.get hook with
    | None -> run_seq tasks
    | Some runner -> runner tasks

let map_array f xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else begin
    let out = Array.make n None in
    run (Array.init n (fun i -> fun () -> out.(i) <- Some (f xs.(i))));
    Array.map
      (function Some v -> v | None -> assert false (* runner ran every task *))
      out
  end

let map_list f xs = Array.to_list (map_array f (Array.of_list xs))
