exception Parse_error of string

let fail lineno msg =
  raise (Parse_error (Printf.sprintf "line %d: %s" lineno msg))

let parse_token lineno tok =
  match String.split_on_char ',' tok with
  | [ s ] -> (
      match int_of_string_opt s with
      | Some v -> (v, "")
      | None -> fail lineno (Printf.sprintf "expected a state, got %S" s))
  | [ s; a ] -> (
      match int_of_string_opt s with
      | Some v when a <> "" -> (v, a)
      | _ -> fail lineno (Printf.sprintf "bad state,action token %S" tok))
  | _ -> fail lineno (Printf.sprintf "bad token %S" tok)

let parse_trace lineno tokens =
  let pairs = List.map (parse_token lineno) tokens in
  match List.rev pairs with
  | [] -> fail lineno "empty trace"
  | (final, final_action) :: rev_steps ->
    if final_action <> "" then
      fail lineno "the final state must not carry an action";
    Trace.make (List.rev rev_steps) final

type line = Blank | Group of string | Trace_line of Trace.t

let parse_line ~lineno line =
  let line =
    match String.index_opt line '#' with
    | Some j -> String.sub line 0 j
    | None -> line
  in
  let tokens =
    String.split_on_char ' ' line
    |> List.concat_map (String.split_on_char '\t')
    |> List.filter (fun t -> t <> "")
  in
  match tokens with
  | [] -> Blank
  | [ "group"; name ] -> Group name
  | "group" :: _ -> fail lineno "group takes exactly one name"
  | tokens -> Trace_line (parse_trace lineno tokens)

let parse ?(first_line = 1) text =
  let groups : (string * Trace.t list ref) list ref = ref [ ("", ref []) ] in
  let current = ref (List.assoc "" !groups) in
  List.iteri
    (fun i line ->
       match parse_line ~lineno:(first_line + i) line with
       | Blank -> ()
       | Group name ->
         (match List.assoc_opt name !groups with
          | Some r -> current := r
          | None ->
            let r = ref [] in
            groups := !groups @ [ (name, r) ];
            current := r)
       | Trace_line tr -> !current := tr :: !(!current))
    (String.split_on_char '\n' text);
  !groups
  |> List.filter_map (fun (name, r) ->
      match List.rev !r with
      | [] when name = "" -> None (* drop an unused default group *)
      | traces -> Some (name, traces))

let of_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  parse text

let to_string groups =
  let buf = Buffer.create 512 in
  List.iter
    (fun (name, traces) ->
       if name <> "" then Buffer.add_string buf (Printf.sprintf "group %s\n" name);
       List.iter
         (fun tr ->
            let steps =
              List.map
                (fun (s, a) ->
                   if a = "" then string_of_int s else Printf.sprintf "%d,%s" s a)
                (Trace.state_actions tr)
            in
            let final =
              match List.rev (Trace.states tr) with
              | last :: _ -> string_of_int last
              | [] -> assert false
            in
            Buffer.add_string buf (String.concat " " (steps @ [ final ]));
            Buffer.add_char buf '\n')
         traces)
    groups;
  Buffer.contents buf
