exception Parse_error of string

let fail lineno msg =
  raise (Parse_error (Printf.sprintf "line %d: %s" lineno msg))

let split_ws s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\t')
  |> List.concat_map (String.split_on_char ',')
  |> List.filter (fun t -> t <> "")

type builder = {
  mutable n : int option;
  mutable init : (int * int) option;  (* lineno, state *)
  mutable transitions : (int * int * int * float) list;  (* lineno, src, dst, p *)
  mutable labels : (int * string * int list) list;
  mutable rewards : (int * int * float) list;
}

let parse_int lineno what s =
  match int_of_string_opt s with
  | Some i -> i
  | None -> fail lineno (Printf.sprintf "expected an integer %s, got %S" what s)

let parse_float lineno what s =
  match float_of_string_opt s with
  | Some f -> f
  | None -> fail lineno (Printf.sprintf "expected a number %s, got %S" what s)

(* A transition line looks like "0 -> 1 : 0.3". *)
let parse_transition b lineno tokens =
  match tokens with
  | [ src; "->"; dst; ":"; prob ] ->
    let p = parse_float lineno "probability" prob in
    if Float.is_nan p || p < 0.0 || p > 1.0 then
      fail lineno (Printf.sprintf "probability %s outside [0,1]" prob);
    b.transitions <-
      (lineno, parse_int lineno "source" src, parse_int lineno "target" dst, p)
      :: b.transitions
  | _ -> fail lineno "expected \"SRC -> DST : PROB\""

let parse_line b lineno line =
  let line =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  match split_ws line with
  | [] -> ()
  | [ "dtmc" ] -> ()
  | [ "states"; k ] -> b.n <- Some (parse_int lineno "state count" k)
  | [ "init"; s ] -> b.init <- Some (lineno, parse_int lineno "initial state" s)
  | "label" :: name :: "=" :: states when states <> [] ->
    b.labels <-
      (lineno, name, List.map (parse_int lineno "label state") states)
      :: b.labels
  | [ "reward"; s; "="; r ] ->
    b.rewards <-
      (lineno, parse_int lineno "reward state" s, parse_float lineno "reward" r)
      :: b.rewards
  | tokens when List.mem "->" tokens -> parse_transition b lineno tokens
  | tok :: _ -> fail lineno (Printf.sprintf "unrecognised directive %S" tok)

(* Whole-file validation once the state count is known: every state index
   in range, no duplicate transitions, every populated row stochastic.
   Errors carry the offending line number so a bad model never reaches
   [Dtmc.make]. *)
let validate b n init_line init =
  let check_state lineno what s =
    if s < 0 || s >= n then
      fail lineno (Printf.sprintf "%s state %d out of range [0,%d)" what s n)
  in
  check_state init_line "initial" init;
  let seen = Hashtbl.create 64 in
  let row_sum = Hashtbl.create 64 in
  List.iter
    (fun (lineno, src, dst, p) ->
       check_state lineno "source" src;
       check_state lineno "target" dst;
       (match Hashtbl.find_opt seen (src, dst) with
        | Some first ->
          fail lineno
            (Printf.sprintf "duplicate transition %d -> %d (first on line %d)"
               src dst first)
        | None -> Hashtbl.replace seen (src, dst) lineno);
       let total, first =
         Option.value ~default:(0.0, lineno) (Hashtbl.find_opt row_sum src)
       in
       Hashtbl.replace row_sum src (total +. p, first))
    (List.rev b.transitions);
  Hashtbl.iter
    (fun src (total, first) ->
       if Float.abs (total -. 1.0) > 1e-9 then
         fail first
           (Printf.sprintf
              "outgoing probabilities of state %d sum to %.12g, expected 1"
              src total))
    row_sum;
  List.iter
    (fun (lineno, name, states) ->
       List.iter (check_state lineno ("label " ^ name)) states)
    b.labels;
  List.iter (fun (lineno, s, _) -> check_state lineno "reward" s) b.rewards

let parse text =
  let b = { n = None; init = None; transitions = []; labels = []; rewards = [] } in
  List.iteri
    (fun i line -> parse_line b (i + 1) line)
    (String.split_on_char '\n' text);
  let n = match b.n with Some n -> n | None -> raise (Parse_error "missing \"states N\"") in
  let init_line, init =
    match b.init with Some i -> i | None -> raise (Parse_error "missing \"init S\"")
  in
  validate b n init_line init;
  let rewards = Array.make (max n 1) 0.0 in
  List.iter (fun (_, s, r) -> rewards.(s) <- r) b.rewards;
  match
    Dtmc.make ~n ~init
      ~transitions:(List.rev_map (fun (_, s, d, p) -> (s, d, p)) b.transitions)
      ~labels:(List.map (fun (_, name, states) -> (name, states)) b.labels)
      ~rewards ()
  with
  | d -> d
  | exception Invalid_argument msg -> raise (Parse_error msg)

let of_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  parse text

let to_string d =
  let buf = Buffer.create 256 in
  let n = Dtmc.num_states d in
  Buffer.add_string buf "dtmc\n";
  Buffer.add_string buf (Printf.sprintf "states %d\n" n);
  Buffer.add_string buf (Printf.sprintf "init %d\n" (Dtmc.init_state d));
  for s = 0 to n - 1 do
    List.iter
      (fun (t, p) -> Buffer.add_string buf (Printf.sprintf "%d -> %d : %.17g\n" s t p))
      (Dtmc.succ d s)
  done;
  List.iter
    (fun l ->
       Buffer.add_string buf
         (Printf.sprintf "label %s = %s\n" l
            (String.concat " "
               (List.map string_of_int (Dtmc.states_with_label d l)))))
    (Dtmc.labels d);
  for s = 0 to n - 1 do
    let r = Dtmc.reward d s in
    if r <> 0.0 then Buffer.add_string buf (Printf.sprintf "reward %d = %.17g\n" s r)
  done;
  Buffer.contents buf
