exception Parse_error of string

let fail lineno msg =
  raise (Parse_error (Printf.sprintf "line %d: %s" lineno msg))

let split_ws s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\t')
  |> List.concat_map (String.split_on_char ',')
  |> List.filter (fun t -> t <> "")

type builder = {
  mutable n : int option;
  mutable init : (int * int) option;  (* lineno, state *)
  mutable dists : ((int * string) * (int * (int * float * int) list)) list;
      (* (src, act) -> first lineno, [target, prob, lineno] *)
  mutable labels : (int * string * int list) list;
  mutable state_rewards : (int * int * float) list;
  mutable action_rewards : (int * (int * string) * float) list;
  mutable features : (int * int * float array) list;
}

let parse_int lineno what s =
  match int_of_string_opt s with
  | Some i -> i
  | None -> fail lineno (Printf.sprintf "expected an integer %s, got %S" what s)

let parse_float lineno what s =
  match float_of_string_opt s with
  | Some f -> f
  | None -> fail lineno (Printf.sprintf "expected a number %s, got %S" what s)

let add_dist b lineno src act dst prob =
  if Float.is_nan prob || prob < 0.0 || prob > 1.0 then
    fail lineno (Printf.sprintf "probability %g outside [0,1]" prob);
  let key = (src, act) in
  let first, cur =
    Option.value ~default:(lineno, []) (List.assoc_opt key b.dists)
  in
  if List.exists (fun (d, _, _) -> d = dst) cur then
    fail lineno (Printf.sprintf "duplicate target %d for %d/%s" dst src act);
  b.dists <-
    (key, (first, (dst, prob, lineno) :: cur)) :: List.remove_assoc key b.dists

let parse_line b lineno line =
  let line =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  match split_ws line with
  | [] -> ()
  | [ "mdp" ] -> ()
  | [ "states"; k ] -> b.n <- Some (parse_int lineno "state count" k)
  | [ "init"; s ] -> b.init <- Some (lineno, parse_int lineno "initial state" s)
  | "label" :: name :: "=" :: states when states <> [] ->
    b.labels <-
      (lineno, name, List.map (parse_int lineno "label state") states)
      :: b.labels
  | [ "reward"; s; "="; r ] ->
    b.state_rewards <-
      (lineno, parse_int lineno "reward state" s, parse_float lineno "reward" r)
      :: b.state_rewards
  | [ "action-reward"; s; a; "="; r ] ->
    b.action_rewards <-
      ( lineno,
        (parse_int lineno "reward state" s, a),
        parse_float lineno "action reward" r )
      :: b.action_rewards
  | "feature" :: s :: "=" :: values when values <> [] ->
    b.features <-
      ( lineno,
        parse_int lineno "feature state" s,
        Array.of_list (List.map (parse_float lineno "feature value") values) )
      :: b.features
  | [ src; act; "->"; dst; ":"; prob ] ->
    add_dist b lineno
      (parse_int lineno "source" src)
      act
      (parse_int lineno "target" dst)
      (parse_float lineno "probability" prob)
  | tok :: _ -> fail lineno (Printf.sprintf "unrecognised directive %S" tok)

let parse text =
  let b =
    {
      n = None;
      init = None;
      dists = [];
      labels = [];
      state_rewards = [];
      action_rewards = [];
      features = [];
    }
  in
  List.iteri (fun i line -> parse_line b (i + 1) line) (String.split_on_char '\n' text);
  let n =
    match b.n with Some n -> n | None -> raise (Parse_error "missing \"states N\"")
  in
  let init_line, init =
    match b.init with Some i -> i | None -> raise (Parse_error "missing \"init S\"")
  in
  let check_state lineno what s =
    if s < 0 || s >= n then
      fail lineno (Printf.sprintf "%s state %d out of range [0,%d)" what s n)
  in
  check_state init_line "initial" init;
  (* Every recorded distribution must target in-range states and sum to 1;
     errors point at the offending line (or the distribution's first line
     for row-sum violations). *)
  List.iter
    (fun ((src, act), (first, dist)) ->
       check_state first "source" src;
       List.iter (fun (dst, _, lineno) -> check_state lineno "target" dst) dist;
       let total = List.fold_left (fun acc (_, p, _) -> acc +. p) 0.0 dist in
       if Float.abs (total -. 1.0) > 1e-9 then
         fail first
           (Printf.sprintf
              "distribution %d/%s sums to %.12g, expected 1" src act total))
    b.dists;
  List.iter
    (fun (lineno, name, states) ->
       List.iter (check_state lineno ("label " ^ name)) states)
    b.labels;
  List.iter
    (fun (lineno, (s, _), _) -> check_state lineno "action-reward" s)
    b.action_rewards;
  let actions =
    List.map
      (fun ((s, a), (_, dist)) ->
         (s, a, List.rev_map (fun (d, p, _) -> (d, p)) dist))
      b.dists
  in
  let state_rewards = Array.make (max n 1) 0.0 in
  List.iter
    (fun (lineno, s, r) ->
       check_state lineno "reward" s;
       state_rewards.(s) <- r)
    b.state_rewards;
  let features =
    match b.features with
    | [] -> None
    | entries ->
      let arity =
        match List.hd entries with _, _, row -> Array.length row
      in
      let f = Array.make n [||] in
      List.iter
        (fun (lineno, s, row) ->
           check_state lineno "feature" s;
           if Array.length row <> arity then
             fail lineno "inconsistent feature arity";
           f.(s) <- row)
        entries;
      Array.iteri
        (fun s row ->
           if Array.length row = 0 then
             raise (Parse_error (Printf.sprintf "state %d is missing features" s)))
        f;
      Some f
  in
  match
    Mdp.make ~n ~init ~actions
      ~action_rewards:(List.map (fun (_, k, r) -> (k, r)) b.action_rewards)
      ~labels:(List.map (fun (_, name, states) -> (name, states)) b.labels)
      ~state_rewards ?features ()
  with
  | m -> m
  | exception Invalid_argument msg -> raise (Parse_error msg)

let of_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  parse text

let to_string m =
  let buf = Buffer.create 512 in
  let n = Mdp.num_states m in
  Buffer.add_string buf "mdp\n";
  Buffer.add_string buf (Printf.sprintf "states %d\n" n);
  Buffer.add_string buf (Printf.sprintf "init %d\n" (Mdp.init_state m));
  for s = 0 to n - 1 do
    List.iter
      (fun (a : Mdp.action) ->
         List.iter
           (fun (d, p) ->
              Buffer.add_string buf
                (Printf.sprintf "%d %s -> %d : %.17g\n" s a.Mdp.name d p))
           a.Mdp.dist)
      (Mdp.actions_of m s)
  done;
  List.iter
    (fun l ->
       Buffer.add_string buf
         (Printf.sprintf "label %s = %s\n" l
            (String.concat " "
               (List.map string_of_int (Mdp.states_with_label m l)))))
    (Mdp.labels m);
  for s = 0 to n - 1 do
    let r = Mdp.state_reward m s in
    if r <> 0.0 then
      Buffer.add_string buf (Printf.sprintf "reward %d = %.17g\n" s r)
  done;
  for s = 0 to n - 1 do
    List.iter
      (fun (a : Mdp.action) ->
         if a.Mdp.reward <> 0.0 then
           Buffer.add_string buf
             (Printf.sprintf "action-reward %d %s = %.17g\n" s a.Mdp.name
                a.Mdp.reward))
      (Mdp.actions_of m s)
  done;
  if Mdp.feature_dim m > 0 then
    for s = 0 to n - 1 do
      Buffer.add_string buf
        (Printf.sprintf "feature %d = %s\n" s
           (String.concat " "
              (Array.to_list
                 (Array.map (Printf.sprintf "%.17g") (Mdp.features_of m s)))))
    done;
  Buffer.contents buf
