(** Textual format for trace datasets, optionally partitioned into named
    groups (the unit Data Repair drops by).

    {v
    # a comment
    group clean
    0 1 2
    0,go 1,stop 2          # state,action pairs; the last token is the
                           # final state
    group field
    0 2
    v}

    Lines before any [group] directive land in the default group [""].
    A bare state sequence is an action-less path; mixing the two styles on
    one line is allowed (missing actions default to [""]). *)

exception Parse_error of string

(** {1 Line-level parsing}

    The streaming subsystem ({!Inc_learn}) folds appended chunks one
    complete line at a time, carrying its own cross-chunk group state and
    {e absolute} line numbers — so an error in chunk 3 reports the true
    line number of the stream.  {!parse} is a fold over {!parse_line},
    which keeps the two paths byte-identical by construction. *)

type line =
  | Blank  (** empty, or only whitespace/comment *)
  | Group of string  (** a [group NAME] directive *)
  | Trace_line of Trace.t

val parse_line : lineno:int -> string -> line
(** Classify one physical line (no trailing newline).
    @raise Parse_error labelled with [lineno] on malformed input. *)

(** {1 Whole-text parsing} *)

val parse : ?first_line:int -> string -> (string * Trace.t list) list
(** Groups in order of first appearance; each group's traces in file
    order.  [first_line] (default 1) offsets reported line numbers — the
    streaming path passes the absolute line number of the chunk's first
    line.  @raise Parse_error on malformed lines. *)

val of_file : string -> (string * Trace.t list) list

val to_string : (string * Trace.t list) list -> string
(** [parse (to_string groups)] reconstructs the groups. *)
