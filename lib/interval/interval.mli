(** Scalar interval arithmetic over floats.

    The numeric substrate of the region backend ({!Box}, {!Bounder}): every
    operation returns an interval that contains the exact real result for
    all points of its operands — outward-directed where float rounding
    matters, and widening to infinite endpoints instead of raising on
    division by an interval containing zero.  NaN never escapes: any
    operation whose float computation produces NaN yields the whole real
    line [(-inf, +inf)], which is sound (it contains everything) and keeps
    downstream verdicts conservative.

    Intervals are closed and non-empty; [make] normalises operand order, so
    the [lo <= hi] invariant always holds (with [lo = hi] for points). *)

type t = private { lo : float; hi : float }

val make : float -> float -> t
(** [make a b] is the closed interval from [min a b] to [max a b]; NaN
    endpoints widen to the whole line. *)

val point : float -> t
(** Degenerate interval [\[x, x\]]; NaN widens to the whole line. *)

val zero : t
val one : t

val whole : t
(** The whole real line [(-inf, +inf)]. *)

(** {1 Queries} *)

val width : t -> float
(** [hi -. lo]; [infinity] when either endpoint is infinite. *)

val midpoint : t -> float
(** A finite point inside the interval whenever one exists (infinite
    endpoints are clamped before averaging). *)

val contains : t -> float -> bool
val is_point : t -> bool
val is_finite : t -> bool

val hull : t -> t -> t
(** Smallest interval containing both. *)

val intersect : t -> t -> t
(** Intersection of two overlapping intervals — the sharpest sound
    combination of two enclosures of the same quantity.  Disjoint inputs
    (only possible when one enclosure is wrong) fall back to {!hull}
    rather than fabricating an empty interval. *)

(** {1 Arithmetic} *)

val neg : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

val div : t -> t -> t
(** Division; a denominator interval containing zero yields {!whole}
    (the quotient set is unbounded around the pole). *)

val pow_int : t -> int -> t
(** [pow_int v n] for [n >= 0]; even powers use the sharp form
    (min 0 when the base straddles zero). *)

val to_string : t -> string
