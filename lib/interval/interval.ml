type t = { lo : float; hi : float }

let whole = { lo = neg_infinity; hi = infinity }

(* NaN endpoints widen to the whole line: sound, and it means no interval
   ever carries NaN, so ordinary float comparisons downstream behave. *)
let norm lo hi =
  if Float.is_nan lo || Float.is_nan hi then whole
  else if lo <= hi then { lo; hi }
  else { lo = hi; hi = lo }

let make a b = norm a b
let point x = norm x x
let zero = { lo = 0.0; hi = 0.0 }
let one = { lo = 1.0; hi = 1.0 }

let width v = v.hi -. v.lo

let midpoint v =
  let clamp x = Float.max (-1e308) (Float.min 1e308 x) in
  let m = 0.5 *. (clamp v.lo +. clamp v.hi) in
  if m < v.lo then v.lo else if m > v.hi then v.hi else m

let contains v x = v.lo <= x && x <= v.hi
let is_point v = v.lo = v.hi
let is_finite v = Float.is_finite v.lo && Float.is_finite v.hi

let hull a b = { lo = Float.min a.lo b.lo; hi = Float.max a.hi b.hi }

let intersect a b =
  let lo = Float.max a.lo b.lo and hi = Float.min a.hi b.hi in
  if lo <= hi then { lo; hi } else hull a b

let neg v = { lo = -.v.hi; hi = -.v.lo }
let add a b = norm (a.lo +. b.lo) (a.hi +. b.hi)
let sub a b = norm (a.lo -. b.hi) (a.hi -. b.lo)

let mul a b =
  let p1 = a.lo *. b.lo and p2 = a.lo *. b.hi in
  let p3 = a.hi *. b.lo and p4 = a.hi *. b.hi in
  (* 0 * inf = NaN; [norm] widens that case to the whole line. *)
  norm
    (Float.min (Float.min p1 p2) (Float.min p3 p4))
    (Float.max (Float.max p1 p2) (Float.max p3 p4))

let div a b =
  if b.lo <= 0.0 && b.hi >= 0.0 then whole
  else mul a { lo = 1.0 /. b.hi; hi = 1.0 /. b.lo }

let rec pow_int v n =
  if n < 0 then invalid_arg "Interval.pow_int: negative exponent"
  else if n = 0 then one
  else if n = 1 then v
  else if n mod 2 = 0 then
    (* sharp even power: v^n = (|v|)^n with min 0 when v straddles 0 *)
    let m = Float.max (Float.abs v.lo) (Float.abs v.hi) in
    let lo =
      if v.lo <= 0.0 && v.hi >= 0.0 then 0.0
      else Float.min (Float.abs v.lo) (Float.abs v.hi)
    in
    norm (lo ** float_of_int n) (m ** float_of_int n)
  else mul v (pow_int v (n - 1))

let to_string v = Printf.sprintf "[%g, %g]" v.lo v.hi
