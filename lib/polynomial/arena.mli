(** Flat compiled evaluation of rational functions.

    {!compile} lowers a {!Ratfun.t} once into a postfix program of Horner
    steps over a float scratch stack — per evaluation there is no term-tree
    walk, no string lookup and no allocation.  This is the inner-loop
    evaluator behind repair NLP constraints: the optimizer calls the
    compiled form thousands of times with parameter vectors indexed by
    position, not by name.

    A compiled arena carries mutable scratch buffers, so a single [t] must
    not be evaluated concurrently from several domains — compile one per
    domain instead (same contract as {!Poly.compile}). *)

type t

val compile : vars:string list -> Ratfun.t -> t
(** [compile ~vars f] fixes the parameter order: position [i] of the float
    array passed to {!eval} holds the value of [List.nth vars i].
    @raise Invalid_argument if [f] mentions a variable not in [vars]. *)

val vars : t -> string array
(** The parameter order fixed at compile time. *)

val eval : t -> float array -> float
(** Evaluate at a parameter vector (in compile-time [vars] order). *)

val eval_env : t -> (string -> float) -> float
(** Name-based evaluation for callers that still hold an environment;
    resolves each variable once per call. *)

val eval_interval : t -> float array -> float array -> float * float
(** [eval_interval t lo hi] runs the compiled Horner program over closed
    float intervals: parameter [i] ranges over [\[lo.(i), hi.(i)\]] and the
    result [(l, u)] is a sound enclosure of the rational function over the
    whole box — every point value lies in [\[l, u\]].  Division by a
    denominator interval containing zero (a potential pole inside the box)
    widens to [(neg_infinity, infinity)] rather than raising; NaN inputs
    are treated as the whole real line.  Uses dedicated scratch stacks, so
    the same single-domain contract as {!eval} applies. *)

val eval_grad : ?h:float -> t -> float array -> float * float array
(** Value and central-difference gradient at a point, sharing the compiled
    program across all [2n+1] stencil evaluations.  [h] is the step
    (default [1e-6]); the input array is not modified. *)
