(* Process-wide variable interning.

   Polynomial variables are dense int ids; this table is the single
   authority mapping names to ids and back.  Ids are assigned in first-
   intern order and never recycled, so a monomial key built in one domain
   is meaningful in every other.  All access is under one mutex: interning
   happens a handful of times per model (parameter names), and id->name
   lookups only on the printing/eval paths, so the lock is never hot. *)

let mutex = Mutex.create ()
let ids : (string, int) Hashtbl.t = Hashtbl.create 64
let names : string array ref = ref (Array.make 16 "")
let next = ref 0

let locked f =
  Mutex.lock mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock mutex) f

let intern v =
  locked (fun () ->
      match Hashtbl.find_opt ids v with
      | Some id -> id
      | None ->
        let id = !next in
        incr next;
        if id >= Array.length !names then begin
          let grown = Array.make (2 * Array.length !names) "" in
          Array.blit !names 0 grown 0 (Array.length !names);
          names := grown
        end;
        !names.(id) <- v;
        Hashtbl.add ids v id;
        id)

let find_opt v = locked (fun () -> Hashtbl.find_opt ids v)

let name id =
  locked (fun () ->
      if id < 0 || id >= !next then
        invalid_arg (Printf.sprintf "Symtab.name: unknown id %d" id)
      else !names.(id))

let size () = locked (fun () -> !next)
