(* Process-wide variable interning.

   Polynomial variables are dense int ids; this table is the single
   authority mapping names to ids and back.  Ids are assigned in first-
   intern order and never recycled, so a monomial key built in one domain
   is meaningful in every other.

   Concurrency: id->name lookups sit on the printing/eval paths of every
   domain running a parallel elimination batch, so they are LOCK-FREE —
   [name] reads an immutable snapshot array published through an Atomic.
   Name->id lookups go through a table sharded on the string hash (one
   mutex per shard, single hashtable probe per critical section), and
   only the rare first-intern of a new name takes the global writer lock
   that assigns the next dense id and republishes the snapshot. *)

type shard = { lock : Mutex.t; tbl : (string, int) Hashtbl.t }

let shard_count = 16  (* power of two *)

let shards =
  Array.init shard_count (fun _ ->
      { lock = Mutex.create (); tbl = Hashtbl.create 16 })

let shard_of v = shards.(Hashtbl.hash v land (shard_count - 1))

(* Published id->name snapshot: grown by copy under [writer], installed
   with a single Atomic.set BEFORE the new id escapes, so any id a reader
   can legitimately hold is within the snapshot it loads. *)
let names : string array Atomic.t = Atomic.make [||]
let count : int Atomic.t = Atomic.make 0
let writer = Mutex.create ()

let intern v =
  let s = shard_of v in
  Mutex.lock s.lock;
  match Hashtbl.find_opt s.tbl v with
  | Some id ->
    Mutex.unlock s.lock;
    id
  | None ->
    (* Lock order is always shard -> writer (and [writer] never takes a
       shard lock), so the two-level locking cannot cycle; double-intern
       races are impossible because equal names map to the same shard,
       whose lock we still hold. *)
    Mutex.lock writer;
    let id = Atomic.get count in
    let old = Atomic.get names in
    let grown =
      if id < Array.length old then old
      else begin
        let cap = max 16 (2 * Array.length old) in
        let g = Array.make cap "" in
        Array.blit old 0 g 0 (Array.length old);
        g
      end
    in
    grown.(id) <- v;
    Atomic.set names grown;
    Atomic.set count (id + 1);
    Mutex.unlock writer;
    Hashtbl.add s.tbl v id;
    Mutex.unlock s.lock;
    id

let find_opt v =
  let s = shard_of v in
  Mutex.lock s.lock;
  let r = Hashtbl.find_opt s.tbl v in
  Mutex.unlock s.lock;
  r

let name id =
  if id < 0 || id >= Atomic.get count then
    invalid_arg (Printf.sprintf "Symtab.name: unknown id %d" id)
  else (Atomic.get names).(id)

let size () = Atomic.get count
