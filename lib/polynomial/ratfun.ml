module Q = Ratio
module P = Poly

type t = { num : P.t; den : P.t }

(* ------------------------------------------------------------------ *)
(* Univariate polynomial helpers (dense Q.t arrays, index = degree)    *)
(* ------------------------------------------------------------------ *)

let uni_trim a =
  let n = ref (Array.length a) in
  while !n > 0 && Q.is_zero a.(!n - 1) do decr n done;
  Array.sub a 0 !n

let uni_deg a = Array.length (uni_trim a) - 1

(* Division with remainder over the field Q; b must be non-zero. *)
let uni_divmod a b =
  let a = uni_trim a and b = uni_trim b in
  let db = Array.length b - 1 in
  assert (db >= 0);
  let r = Array.copy a in
  let da = Array.length a - 1 in
  if da < db then ([| |], r)
  else begin
    let q = Array.make (da - db + 1) Q.zero in
    let lead = b.(db) in
    for k = da - db downto 0 do
      let c = Q.div r.(k + db) lead in
      q.(k) <- c;
      if not (Q.is_zero c) then
        for i = 0 to db do
          r.(k + i) <- Q.sub r.(k + i) (Q.mul c b.(i))
        done
    done;
    (uni_trim q, uni_trim r)
  end

let rec uni_gcd a b =
  let b = uni_trim b in
  if Array.length b = 0 then uni_trim a
  else begin
    let _, r = uni_divmod a b in
    uni_gcd b r
  end

let uni_monic a =
  let a = uni_trim a in
  let n = Array.length a in
  if n = 0 then a
  else begin
    let lead = a.(n - 1) in
    if Q.equal lead Q.one then a else Array.map (fun c -> Q.div c lead) a
  end

(* ------------------------------------------------------------------ *)
(* Normal form                                                         *)
(* ------------------------------------------------------------------ *)

(* Leading coefficient of a polynomial w.r.t. the monomial order. *)
let leading_coeff p =
  match P.to_const_opt p with
  | Some c -> c
  | None ->
    (* max binding of the internal map; recover via to_string-free trick:
       evaluate is wrong — instead use the univariate view when possible,
       otherwise normalise by the coefficient of the largest monomial, which
       we obtain by folding. *)
    (match P.to_univariate_opt p with
     | Some (_, coeffs) ->
       let c = uni_trim coeffs in
       c.(Array.length c - 1)
     | None ->
       (* Multivariate: fall back to an arbitrary-but-deterministic choice,
          the coefficient of the constant term if present, else 1. We only
          need *some* canonical scaling; exactness is unaffected. *)
       let c = P.coeff_of_const p in
       if Q.is_zero c then Q.one else c)

let normalize num den =
  if P.is_zero den then raise Division_by_zero;
  if P.is_zero num then { num = P.zero; den = P.one }
  else begin
    (* Cancel common univariate factors when both sides live in the same
       single variable. *)
    let num, den =
      match (P.to_univariate_opt num, P.to_univariate_opt den) with
      | Some (x, ca), Some (y, cb)
        when (x = y || x = "" || y = "") && (x <> "" || y <> "") ->
        let g = uni_monic (uni_gcd ca cb) in
        if uni_deg g >= 1 then begin
          let qa, ra = uni_divmod ca g in
          let qb, rb = uni_divmod cb g in
          assert (Array.length ra = 0 && Array.length rb = 0);
          let v = if x <> "" then x else y in
          (P.of_univariate v qa, P.of_univariate v qb)
        end
        else (num, den)
      | _ -> (num, den)
    in
    (* Fold a constant denominator into the numerator; otherwise scale so
       the denominator's canonical coefficient is 1. *)
    match P.to_const_opt den with
    | Some c -> { num = P.scale (Q.inv c) num; den = P.one }
    | None ->
      let lc = leading_coeff den in
      if Q.equal lc Q.one then { num; den }
      else { num = P.scale (Q.inv lc) num; den = P.scale (Q.inv lc) den }
  end

let make num den = normalize num den

let of_poly p = { num = p; den = P.one }
let const c = of_poly (P.const c)
let of_int i = of_poly (P.of_int i)
let var x = of_poly (P.var x)
let zero = of_poly P.zero
let one = of_poly P.one

let num t = t.num
let den t = t.den
let is_zero t = P.is_zero t.num
let is_const t = P.is_const t.num && P.is_const t.den

let to_const_opt t =
  match (P.to_const_opt t.num, P.to_const_opt t.den) with
  | Some n, Some d -> Some (Q.div n d)
  | _ -> None

let vars t =
  let module S = Set.Make (String) in
  S.elements (S.union (S.of_list (P.vars t.num)) (S.of_list (P.vars t.den)))

let neg t = { t with num = P.neg t.num }

let inv t =
  if is_zero t then raise Division_by_zero
  else normalize t.den t.num

(* Inputs are already in normal form, so absorbing/identity elements can be
   returned as-is without re-running [normalize]. *)
let is_one t = P.equal t.num P.one && P.equal t.den P.one

let add a b =
  if is_zero a then b
  else if is_zero b then a
  else if P.equal a.den b.den then normalize (P.add a.num b.num) a.den
  else
    normalize
      (P.add (P.mul a.num b.den) (P.mul b.num a.den))
      (P.mul a.den b.den)

let sub a b = add a (neg b)

let mul a b =
  if is_zero a || is_zero b then zero
  else if is_one a then b
  else if is_one b then a
  else normalize (P.mul a.num b.num) (P.mul a.den b.den)
let div a b = mul a (inv b)

let pow t e =
  if e >= 0 then normalize (P.pow t.num e) (P.pow t.den e)
  else inv (normalize (P.pow t.num (-e)) (P.pow t.den (-e)))

let ( + ) = add
let ( - ) = sub
let ( * ) = mul
let ( / ) = div

let equal a b =
  P.equal (P.mul a.num b.den) (P.mul b.num a.den)

let eval env t =
  let d = P.eval env t.den in
  if Q.is_zero d then raise Division_by_zero;
  Q.div (P.eval env t.num) d

let eval_float env t = P.eval_float env t.num /. P.eval_float env t.den

let compile t =
  let num = P.compile t.num and den = P.compile t.den in
  fun env -> num env /. den env

let subst x r f =
  (* f = n(x,..)/d(x,..); substitute x := rn/rd.  Clearing denominators:
     n and d are sums of monomials c * x^e * rest; multiply through by
     rd^(max degree). *)
  let dn = Stdlib.max (P.degree_in x f.num) (P.degree_in x f.den) in
  if dn = 0 then f
  else begin
    (* Write p = Σ_e p_e x^e with p_e free of x; then p(x := rn/rd) · rd^dn
       = Σ_e p_e rn^e rd^(dn-e), a polynomial again.  The coefficient slice
       p_e is extracted as (d/dx)^e p |_{x=0} / e!. *)
    let expand (p : P.t) : P.t =
      let result = ref P.zero in
      let fact = ref Q.one in
      let deriv = ref p in
      for e = 0 to dn do
        if Stdlib.( >= ) e 2 then fact := Q.mul !fact (Q.of_int e);
        let slice = P.scale (Q.inv !fact) (P.subst x P.zero !deriv) in
        if not (P.is_zero slice) then
          result :=
            P.add !result
              (P.mul slice
                 (P.mul (P.pow r.num e) (P.pow r.den Stdlib.(dn - e))));
        deriv := P.derivative x !deriv
      done;
      !result
    in
    normalize (expand f.num) (expand f.den)
  end

let derivative x t =
  (* (n/d)' = (n' d - n d') / d^2 *)
  let n' = P.derivative x t.num and d' = P.derivative x t.den in
  normalize
    (P.sub (P.mul n' t.den) (P.mul t.num d'))
    (P.mul t.den t.den)

let to_string t =
  if P.is_zero t.num then "0"
  else
    match P.to_const_opt t.den with
    | Some c when Q.equal c Q.one -> P.to_string t.num
    | _ -> Printf.sprintf "(%s) / (%s)" (P.to_string t.num) (P.to_string t.den)

let pp fmt t = Format.pp_print_string fmt (to_string t)
