(* Sparse multivariate polynomials over Ratio.

   A monomial is a packed, hash-consed vector of (variable id, exponent)
   pairs — variable names are interned to dense ints by Symtab, and each
   distinct monomial is allocated once per domain with its hash and total
   degree precomputed.  A polynomial maps monomials to non-zero
   coefficients.  Both invariants (exponents strictly positive, no zero
   coefficients) are maintained by the smart constructors below.

   The packed representation is what makes Poly.add/mul cheap: map
   rebalancing compares int arrays (with a physical-equality fast path
   from hash-consing) instead of string-keyed maps, and monomial products
   are a single sorted merge. *)

module Q = Ratio

module Mono = struct
  (* key = [| id0; e0; id1; e1; ... |], ids strictly increasing, e > 0 *)
  type t = { key : int array; h : int; deg : int }

  let unit : t = { key = [||]; h = 0; deg = 0 }
  let is_unit (m : t) = Array.length m.key = 0

  let key_hash (key : int array) =
    Array.fold_left (fun h v -> (h * 131) + v) (Array.length key) key

  let key_equal (a : int array) (b : int array) =
    let la = Array.length a in
    la = Array.length b
    &&
    let rec go i = i >= la || (a.(i) = b.(i) && go (i + 1)) in
    go 0

  let key_degree (key : int array) =
    let d = ref 0 in
    let i = ref 1 in
    while !i < Array.length key do
      d := !d + key.(!i);
      i := !i + 2
    done;
    !d

  (* Hash-consing is two-level.  The authority is a GLOBAL table sharded
     on the monomial hash — not on the domain — so a structurally equal
     key interned from any domain resolves to the SAME physical monomial,
     keeping the [==] fast paths in [compare]/[Mtbl.equal] valid even
     when polynomials cross domains (which parallel elimination does on
     every batch).  Sharding the lock spreads concurrent interning from
     different domains over [shard_count] mutexes instead of serializing
     it on one intern table; each shard's critical section is a single
     hashtable probe.

     In front of the authority sits a per-domain, lock-free L1 memo of
     pointers INTO the global table: repeat lookups (the arithmetic hot
     path — products regenerate the same monomials constantly) cost a
     domain-local probe and no lock, exactly what the old per-domain
     cache cost, while first sights pay one shard lock. *)
  module H = Hashtbl.Make (struct
      type t = int array

      let equal = key_equal
      let hash = key_hash
    end)

  type shard = { lock : Mutex.t; stbl : t H.t }

  let shard_count = 64  (* power of two: shard = hash land (count - 1) *)

  let shards =
    Array.init shard_count (fun _ ->
        { lock = Mutex.create (); stbl = H.create 512 })

  type cache = { tbl : t H.t; mutable hits : int; mutable misses : int }

  let hits_total =
    Metrics.counter "tml_mono_cache_hits_total"
      ~help:"Monomial hash-cons lookups served from the per-domain L1 memo"

  let misses_total =
    Metrics.counter "tml_mono_cache_misses_total"
      ~help:
        "Monomial hash-cons lookups that went to the sharded global table \
         (interning the monomial on first sight process-wide)"

  let cache_key =
    Domain.DLS.new_key (fun () ->
        { tbl = H.create 512; hits = 0; misses = 0 })

  (* Flush domain-local tallies to the shared atomic counters only every
     [flush_mask + 1] events, keeping atomics off the per-product path. *)
  let flush_mask = 0xFFF

  (* Resolve [key] in the global sharded table.  The returned monomial is
     the unique physical representative for this key, process-wide. *)
  let intern_global (key : int array) (h : int) : t =
    let s = Array.unsafe_get shards (h land (shard_count - 1)) in
    Mutex.lock s.lock;
    let m =
      match H.find_opt s.stbl key with
      | Some m -> m
      | None ->
        let m = { key; h; deg = key_degree key } in
        H.add s.stbl key m;
        m
    in
    Mutex.unlock s.lock;
    m

  let cons (key : int array) : t =
    if Array.length key = 0 then unit
    else begin
      let c = Domain.DLS.get cache_key in
      match H.find_opt c.tbl key with
      | Some m ->
        c.hits <- c.hits + 1;
        if c.hits land flush_mask = 0 then
          Metrics.incr ~by:(flush_mask + 1) hits_total;
        m
      | None ->
        c.misses <- c.misses + 1;
        if c.misses land flush_mask = 0 then
          Metrics.incr ~by:(flush_mask + 1) misses_total;
        let m = intern_global key (key_hash key) in
        (* memoize the global representative (possibly allocated by
           another domain); the L1 never holds a private duplicate *)
        H.add c.tbl m.key m;
        m
    end

  let of_var id e =
    if e <= 0 then invalid_arg "Mono.of_var: exponent must be positive";
    cons [| id; e |]

  (* Total order mirroring the previous Map.Make(String) monomial order
     when ids are interned in name order: lexicographic over (id, exp)
     pairs, shorter prefix first. *)
  let compare (a : t) (b : t) =
    if a == b then 0
    else begin
      let ka = a.key and kb = b.key in
      let la = Array.length ka and lb = Array.length kb in
      let n = if la < lb then la else lb in
      let rec go i =
        if i >= n then Stdlib.compare la lb
        else begin
          let c = Stdlib.compare ka.(i) kb.(i) in
          if c <> 0 then c else go (i + 1)
        end
      in
      go 0
    end

  let mul (a : t) (b : t) : t =
    if is_unit a then b
    else if is_unit b then a
    else begin
      let ka = a.key and kb = b.key in
      let la = Array.length ka and lb = Array.length kb in
      let buf = Array.make (la + lb) 0 in
      let i = ref 0 and j = ref 0 and k = ref 0 in
      while !i < la && !j < lb do
        let ia = ka.(!i) and ib = kb.(!j) in
        if ia = ib then begin
          buf.(!k) <- ia;
          buf.(!k + 1) <- ka.(!i + 1) + kb.(!j + 1);
          i := !i + 2;
          j := !j + 2
        end
        else if ia < ib then begin
          buf.(!k) <- ia;
          buf.(!k + 1) <- ka.(!i + 1);
          i := !i + 2
        end
        else begin
          buf.(!k) <- ib;
          buf.(!k + 1) <- kb.(!j + 1);
          j := !j + 2
        end;
        k := !k + 2
      done;
      while !i < la do
        buf.(!k) <- ka.(!i);
        buf.(!k + 1) <- ka.(!i + 1);
        i := !i + 2;
        k := !k + 2
      done;
      while !j < lb do
        buf.(!k) <- kb.(!j);
        buf.(!k + 1) <- kb.(!j + 1);
        j := !j + 2;
        k := !k + 2
      done;
      cons (if !k = la + lb then buf else Array.sub buf 0 !k)
    end

  let degree m = m.deg

  let degree_in id (m : t) =
    let key = m.key in
    let rec go i =
      if i >= Array.length key then 0
      else if key.(i) = id then key.(i + 1)
      else if key.(i) > id then 0
      else go (i + 2)
    in
    go 0

  (* fold over (id, exp) pairs in increasing id order *)
  let fold f (m : t) init =
    let key = m.key in
    let acc = ref init in
    let i = ref 0 in
    while !i < Array.length key do
      acc := f key.(!i) key.(!i + 1) !acc;
      i := !i + 2
    done;
    !acc

  (* monomial with variable [id]'s exponent replaced by [e] (removed when
     [e = 0]); [id] must be present *)
  let with_exp id e (m : t) =
    let key = m.key in
    let n = Array.length key in
    if e = 0 then begin
      let buf = Array.make (n - 2) 0 in
      let k = ref 0 in
      let i = ref 0 in
      while !i < n do
        if key.(!i) <> id then begin
          buf.(!k) <- key.(!i);
          buf.(!k + 1) <- key.(!i + 1);
          k := !k + 2
        end;
        i := !i + 2
      done;
      cons buf
    end
    else begin
      let buf = Array.copy key in
      let rec go i = if buf.(i) = id then buf.(i + 1) <- e else go (i + 2) in
      go 0;
      cons buf
    end

  let to_string (m : t) =
    if is_unit m then "1"
    else
      fold
        (fun id e acc ->
           let v = Symtab.name id in
           (if e = 1 then v else Printf.sprintf "%s^%d" v e) :: acc)
        m []
      |> List.rev |> String.concat "*"
end

module Mmap = Map.Make (Mono)
module Iset = Set.Make (Int)

type t = Q.t Mmap.t

let zero : t = Mmap.empty

let const c : t = if Q.is_zero c then zero else Mmap.singleton Mono.unit c
let one = const Q.one
let of_int i = const (Q.of_int i)
let var x : t = Mmap.singleton (Mono.of_var (Symtab.intern x) 1) Q.one

let is_zero (p : t) = Mmap.is_empty p

let add_term (m : Mono.t) (c : Q.t) (p : t) : t =
  if Q.is_zero c then p
  else
    Mmap.update m
      (function
        | None -> Some c
        | Some c0 ->
          let s = Q.add c0 c in
          if Q.is_zero s then None else Some s)
      p

let add (a : t) (b : t) : t = Mmap.fold add_term b a

let neg (p : t) : t = Mmap.map Q.neg p

(* Fused negate-and-add: folds [b] into [a] negating each coefficient on
   the way, instead of materialising the intermediate [neg b] map. *)
let sub (a : t) (b : t) : t =
  Mmap.fold (fun m c acc -> add_term m (Q.neg c) acc) b a

let scale k (p : t) : t =
  if Q.is_zero k then zero else Mmap.map (Q.mul k) p

module Mtbl = Hashtbl.Make (struct
    type t = Mono.t

    let equal (a : Mono.t) (b : Mono.t) = a == b || Mono.key_equal a.key b.key
    let hash (m : Mono.t) = m.h
  end)

let mul (a : t) (b : t) : t =
  if Mmap.is_empty a || Mmap.is_empty b then zero
  else begin
    let ta = Mmap.cardinal a and tb = Mmap.cardinal b in
    if ta * tb <= 32 then
      (* small products: the map is cheaper than a hashtable round-trip *)
      Mmap.fold
        (fun ma ca acc ->
           Mmap.fold
             (fun mb cb acc -> add_term (Mono.mul ma mb) (Q.mul ca cb) acc)
             b acc)
        a zero
    else begin
      (* Large products collapse many colliding monomials; accumulating in
         a hashtable keyed by the hash-consed monomial makes each of the
         ta*tb partial products O(1) instead of an O(log n) map insert —
         only the surviving terms pay for the final map build. *)
      let tbl = Mtbl.create (Stdlib.( * ) 2 (Stdlib.max ta tb)) in
      Mmap.iter
        (fun ma ca ->
           Mmap.iter
             (fun mb cb ->
                let m = Mono.mul ma mb in
                let c = Q.mul ca cb in
                match Mtbl.find_opt tbl m with
                | None -> Mtbl.add tbl m c
                | Some c0 -> Mtbl.replace tbl m (Q.add c0 c))
             b)
        a;
      Mtbl.fold
        (fun m c acc -> if Q.is_zero c then acc else Mmap.add m c acc)
        tbl zero
    end
  end

let pow p e =
  if e < 0 then invalid_arg "Poly.pow: negative exponent";
  let rec go acc b e =
    if e = 0 then acc
    else go (if e land 1 = 1 then mul acc b else acc) (mul b b) (e lsr 1)
  in
  go one p e

let ( + ) = add
let ( - ) = sub
let ( * ) = mul

let is_const (p : t) =
  Mmap.for_all (fun m _ -> Mono.is_unit m) p

let to_const_opt (p : t) =
  if is_zero p then Some Q.zero
  else if Mmap.cardinal p = 1 then
    match Mmap.min_binding_opt p with
    | Some (m, c) when Mono.is_unit m -> Some c
    | _ -> None
  else None

let coeff_of_const (p : t) =
  match Mmap.find_opt Mono.unit p with Some c -> c | None -> Q.zero

let equal (a : t) (b : t) = Mmap.equal Q.equal a b
let compare (a : t) (b : t) = Mmap.compare Q.compare a b

let degree (p : t) =
  if is_zero p then -1
  else Mmap.fold (fun m _ acc -> Stdlib.max (Mono.degree m) acc) p 0

let degree_in x (p : t) =
  match Symtab.find_opt x with
  | None -> 0
  | Some id ->
    Mmap.fold (fun m _ acc -> Stdlib.max (Mono.degree_in id m) acc) p 0

let var_ids (p : t) =
  Mmap.fold
    (fun m _ acc -> Mono.fold (fun id _ acc -> Iset.add id acc) m acc)
    p Iset.empty

let vars (p : t) =
  var_ids p |> Iset.elements |> List.map Symtab.name
  |> List.sort String.compare

let num_terms = Mmap.cardinal

let eval env (p : t) =
  (* resolve each variable's value once, not once per occurrence *)
  let values = Hashtbl.create 8 in
  let value id =
    match Hashtbl.find_opt values id with
    | Some v -> v
    | None ->
      let v = env (Symtab.name id) in
      Hashtbl.add values id v;
      v
  in
  Mmap.fold
    (fun m c acc ->
       let term = Mono.fold (fun id e acc -> Q.mul acc (Q.pow (value id) e)) m c in
       Q.add acc term)
    p Q.zero

let eval_float env (p : t) =
  let values = Hashtbl.create 8 in
  let value id =
    match Hashtbl.find_opt values id with
    | Some v -> v
    | None ->
      let v = env (Symtab.name id) in
      Hashtbl.add values id v;
      v
  in
  Mmap.fold
    (fun m c acc ->
       let term =
         Mono.fold
           (fun id e acc -> acc *. Float.pow (value id) (float_of_int e))
           m (Q.to_float c)
       in
       acc +. term)
    p 0.0

(* Compilation strategy: resolve variables to indices once, record each
   term as (float coeff, packed var-index/exponent pairs), and at
   evaluation time precompute one power table per variable up to its
   maximal exponent — a term is then a few table lookups, independent of
   its degree. *)
let compile (p : t) =
  let var_names = Array.of_list (vars p) in
  let nvars = Array.length var_names in
  let index_of = Hashtbl.create (Stdlib.max 1 nvars) in
  Array.iteri (fun i v -> Hashtbl.add index_of (Symtab.intern v) i) var_names;
  let max_exp = Array.make nvars 0 in
  let terms =
    Mmap.bindings p
    |> List.map (fun (m, c) ->
        let packed =
          Mono.fold
            (fun id e acc ->
               let i = Hashtbl.find index_of id in
               max_exp.(i) <- Stdlib.max max_exp.(i) e;
               (i, e) :: acc)
            m []
          |> List.rev |> Array.of_list
        in
        (Q.to_float c, packed))
    |> Array.of_list
  in
  let tables = Array.init nvars (fun i -> Array.make (Stdlib.( + ) max_exp.(i) 1) 1.0) in
  (* Flatten into parallel arrays for a cache-friendly inner loop:
     coeffs.(t) and, per term, a [len; i1; e1; i2; e2; ...] slice of
     [layout]. *)
  let nterms = Array.length terms in
  let coeffs = Array.map fst terms in
  let layout =
    let open Stdlib in
    let buf = ref [] in
    Array.iter
      (fun (_, packed) ->
         buf := Array.length packed :: !buf;
         Array.iter (fun (i, e) -> buf := e :: i :: !buf) packed)
      terms;
    Array.of_list (List.rev !buf)
  in
  fun env ->
    let open Stdlib in
    for i = 0 to nvars - 1 do
      let x = env var_names.(i) in
      let tbl = tables.(i) in
      for e = 1 to Array.length tbl - 1 do
        tbl.(e) <- tbl.(e - 1) *. x
      done
    done;
    let acc = ref 0.0 in
    let pos = ref 0 in
    for t = 0 to nterms - 1 do
      let len = layout.(!pos) in
      incr pos;
      let term = ref (Array.unsafe_get coeffs t) in
      for _ = 1 to len do
        let i = layout.(!pos) and e = layout.(!pos + 1) in
        pos := !pos + 2;
        term := !term *. Array.unsafe_get (Array.unsafe_get tables i) e
      done;
      acc := !acc +. !term
    done;
    !acc

let subst x p (q : t) : t =
  match Symtab.find_opt x with
  | None -> q
  | Some id ->
    Mmap.fold
      (fun m c acc ->
         match Mono.degree_in id m with
         | 0 -> add_term m c acc
         | e ->
           let rest = Mono.with_exp id 0 m in
           let base : t = Mmap.singleton rest c in
           add acc (mul base (pow p e)))
      q zero

let derivative x (p : t) : t =
  match Symtab.find_opt x with
  | None -> zero
  | Some id ->
    Mmap.fold
      (fun m c acc ->
         match Mono.degree_in id m with
         | 0 -> acc
         | e ->
           let m' = Mono.with_exp id (Stdlib.( - ) e 1) m in
           add_term m' (Q.mul c (Q.of_int e)) acc)
      p zero

let to_univariate_opt (p : t) =
  match Iset.elements (var_ids p) with
  | [] -> Some ("", [| coeff_of_const p |])
  | [ id ] ->
    let x = Symtab.name id in
    let d =
      Mmap.fold (fun m _ acc -> Stdlib.max (Mono.degree_in id m) acc) p 0
    in
    let coeffs = Array.make (Stdlib.( + ) d 1) Q.zero in
    Mmap.iter (fun m c -> coeffs.(Mono.degree_in id m) <- c) p;
    Some (x, coeffs)
  | _ -> None

let of_univariate x coeffs =
  let id = lazy (Symtab.intern x) in
  let acc = ref zero in
  Array.iteri
    (fun e c ->
       if not (Q.is_zero c) then
         acc :=
           add_term
             (if e = 0 then Mono.unit else Mono.of_var (Lazy.force id) e)
             c !acc)
    coeffs;
  !acc

let to_string (p : t) =
  if is_zero p then "0"
  else begin
    let term_str first m c =
      let mono = Mono.to_string m in
      let coeff_part =
        if Mono.is_unit m then Q.to_string (Q.abs c)
        else if Q.equal (Q.abs c) Q.one then mono
        else Q.to_string (Q.abs c) ^ "*" ^ mono
      in
      if first then (if Stdlib.( < ) (Q.sign c) 0 then "-" ^ coeff_part else coeff_part)
      else if Stdlib.( < ) (Q.sign c) 0 then " - " ^ coeff_part
      else " + " ^ coeff_part
    in
    let buf = Buffer.create 64 in
    let first = ref true in
    (* Print higher-degree terms first for readability. *)
    let terms =
      Mmap.bindings p
      |> List.sort (fun (m1, _) (m2, _) ->
          match Stdlib.compare (Mono.degree m2) (Mono.degree m1) with
          | 0 -> Mono.compare m1 m2
          | c -> c)
    in
    List.iter
      (fun (m, c) ->
         Buffer.add_string buf (term_str !first m c);
         first := false)
      terms;
    Buffer.contents buf
  end

let pp fmt p = Format.pp_print_string fmt (to_string p)
