(** Process-wide interning of polynomial variable names.

    Maps variable names to dense int ids (assigned in first-intern order,
    never recycled) and back.  Thread-safe across domains; the underlying
    lock is only touched on intern and id->name lookups, both of which are
    off the polynomial arithmetic hot path. *)

val intern : string -> int
(** Id of [v], interning it on first sight. *)

val find_opt : string -> int option
(** Id of [v] if it has been interned, without interning it. *)

val name : int -> string
(** Inverse of {!intern}. @raise Invalid_argument on an unknown id. *)

val size : unit -> int
(** Number of interned names. *)
