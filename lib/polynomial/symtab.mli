(** Process-wide interning of polynomial variable names.

    Maps variable names to dense int ids (assigned in first-intern order,
    never recycled) and back.  Thread-safe across domains and built for
    concurrent kernels: id->name lookups are lock-free reads of an
    immutable published snapshot, name->id lookups go through a table
    sharded on the string hash, and only the first intern of a new name
    serializes on a writer lock. *)

val intern : string -> int
(** Id of [v], interning it on first sight. *)

val find_opt : string -> int option
(** Id of [v] if it has been interned, without interning it. *)

val name : int -> string
(** Inverse of {!intern}. @raise Invalid_argument on an unknown id. *)

val size : unit -> int
(** Number of interned names. *)
