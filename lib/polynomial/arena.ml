(* Flat arena evaluator for rational functions.

   A polynomial is lowered to a postfix program over a float stack with two
   instructions: push a constant, or combine the top n+1 values with one
   variable by Horner's rule.  The lowering is the derivative-slice
   decomposition  p = Σ_e slice_e(rest) · x^e  with
   slice_e = ((d/dx)^e p)|_{x=0} / e!, applied recursively over the
   variable list — a univariate polynomial compiles to one dense Horner
   chain, a multivariate one to nested chains.  Rational-function division
   happens once at the end of an evaluation. *)

module P = Poly
module Q = Ratio

type instr = Push of float | Horner of { vi : int; n : int }

type t = {
  vars : string array;
  num : instr array;
  den : instr array option; (* None: denominator is the constant 1 *)
  stack : float array; (* scratch, sized to max program depth *)
  values : float array; (* scratch for eval_env / eval_grad *)
  ilo : float array; (* scratch lower-bound stack for eval_interval *)
  ihi : float array; (* scratch upper-bound stack for eval_interval *)
}

let vars t = t.vars

(* Compile [p] over the ordered (index, name) variable list. *)
let compile_poly order p =
  let code = ref [] in
  let emit i = code := i :: !code in
  let rec go vars p =
    match P.to_const_opt p with
    | Some c -> emit (Push (Q.to_float c))
    | None -> (
      match vars with
      | [] ->
        (* every variable of p was in [order]; checked by [compile] *)
        assert false
      | (vi, v) :: rest ->
        let d = P.degree_in v p in
        if d = 0 then go rest p
        else begin
          let deriv = ref p in
          let fact = ref Q.one in
          for e = 0 to d do
            if e >= 2 then fact := Q.mul !fact (Q.of_int e);
            let slice = P.scale (Q.inv !fact) (P.subst v P.zero !deriv) in
            go rest slice;
            if e < d then deriv := P.derivative v !deriv
          done;
          emit (Horner { vi; n = d })
        end)
  in
  go order p;
  Array.of_list (List.rev !code)

let max_depth prog =
  let depth = ref 0 and max = ref 0 in
  Array.iter
    (fun i ->
       (match i with
        | Push _ -> incr depth
        | Horner { n; _ } -> depth := !depth - n);
       if !depth > !max then max := !depth)
    prog;
  !max

let compile ~vars f =
  let vars = Array.of_list vars in
  let known v = Array.exists (String.equal v) vars in
  List.iter
    (fun v ->
       if not (known v) then
         invalid_arg
           (Printf.sprintf "Arena.compile: variable %s not in vars" v))
    (Ratfun.vars f);
  let order =
    Array.to_list (Array.mapi (fun i v -> (i, v)) vars)
  in
  let num = compile_poly order (Ratfun.num f) in
  let den_poly = Ratfun.den f in
  let den =
    if P.equal den_poly P.one then None else Some (compile_poly order den_poly)
  in
  let depth =
    Stdlib.max (max_depth num)
      (match den with None -> 0 | Some d -> max_depth d)
  in
  {
    vars;
    num;
    den;
    stack = Array.make (Stdlib.max 1 depth) 0.0;
    values = Array.make (Array.length vars) 0.0;
    ilo = Array.make (Stdlib.max 1 depth) 0.0;
    ihi = Array.make (Stdlib.max 1 depth) 0.0;
  }

let run prog (x : float array) (stack : float array) =
  let sp = ref 0 in
  for i = 0 to Array.length prog - 1 do
    match Array.unsafe_get prog i with
    | Push c ->
      Array.unsafe_set stack !sp c;
      incr sp
    | Horner { vi; n } ->
      let v = Array.unsafe_get x vi in
      let base = !sp - n - 1 in
      let acc = ref (Array.unsafe_get stack (!sp - 1)) in
      for j = !sp - 2 downto base do
        acc := (!acc *. v) +. Array.unsafe_get stack j
      done;
      Array.unsafe_set stack base !acc;
      sp := base + 1
  done;
  Array.unsafe_get stack 0

let eval t x =
  let n = run t.num x t.stack in
  match t.den with None -> n | Some d -> n /. run d x t.stack

let eval_env t env =
  Array.iteri (fun i v -> t.values.(i) <- env v) t.vars;
  eval t t.values

(* ------------------------- interval semantics ------------------------- *)

(* The Horner program is run unchanged, but over closed float intervals:
   each stack slot holds a lower and an upper bound.  NaN (0 * inf in the
   interval product, or inf - inf in a sum) is widened to the whole real
   line, which is sound — the enclosure only ever gets larger. *)

let inorm lo hi =
  if Float.is_nan lo || Float.is_nan hi then (neg_infinity, infinity)
  else if lo <= hi then (lo, hi)
  else (hi, lo)

let imul al ah bl bh =
  let p1 = al *. bl and p2 = al *. bh and p3 = ah *. bl and p4 = ah *. bh in
  inorm
    (Float.min (Float.min p1 p2) (Float.min p3 p4))
    (Float.max (Float.max p1 p2) (Float.max p3 p4))

let run_interval prog (xl : float array) (xh : float array) (sl : float array)
    (sh : float array) =
  let sp = ref 0 in
  for i = 0 to Array.length prog - 1 do
    match Array.unsafe_get prog i with
    | Push c ->
      sl.(!sp) <- c;
      sh.(!sp) <- c;
      incr sp
    | Horner { vi; n } ->
      let vl, vh = inorm xl.(vi) xh.(vi) in
      let base = !sp - n - 1 in
      let al = ref sl.(!sp - 1) and ah = ref sh.(!sp - 1) in
      for j = !sp - 2 downto base do
        let ml, mh = imul !al !ah vl vh in
        let l, h = inorm (ml +. sl.(j)) (mh +. sh.(j)) in
        al := l;
        ah := h
      done;
      sl.(base) <- !al;
      sh.(base) <- !ah;
      sp := base + 1
  done;
  (sl.(0), sh.(0))

let eval_interval t lo hi =
  let nl, nh = run_interval t.num lo hi t.ilo t.ihi in
  match t.den with
  | None -> (nl, nh)
  | Some d ->
    let dl, dh = run_interval d lo hi t.ilo t.ihi in
    if dl <= 0.0 && dh >= 0.0 then (neg_infinity, infinity)
    else imul nl nh (1.0 /. dh) (1.0 /. dl)

let eval_grad ?(h = 1e-6) t x =
  let v = eval t x in
  let n = Array.length t.vars in
  let y = Array.sub x 0 (Array.length x) in
  let g =
    Array.init n (fun i ->
        let xi = y.(i) in
        y.(i) <- xi +. h;
        let hi = eval t y in
        y.(i) <- xi -. h;
        let lo = eval t y in
        y.(i) <- xi;
        (hi -. lo) /. (2.0 *. h))
  in
  (v, g)
