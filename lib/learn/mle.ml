let check_state n s =
  if s < 0 || s >= n then
    invalid_arg (Printf.sprintf "Mle: state %d out of range [0,%d)" s n)

let iter_steps n trace f =
  let states = Trace.states trace in
  let rec go = function
    | a :: (b :: _ as rest) ->
      check_state n a;
      check_state n b;
      f a b;
      go rest
    | [ last ] -> check_state n last
    | [] -> ()
  in
  go states

let count_trace ~n counts tr =
  iter_steps n tr (fun a b -> counts.(a).(b) <- counts.(a).(b) +. 1.0)

let transition_counts ~n traces =
  let counts = Array.make_matrix n n 0.0 in
  List.iter (count_trace ~n counts) traces;
  counts

let observed_support counts =
  let n = Array.length counts in
  let edges = ref [] in
  for s = 0 to n - 1 do
    for d = 0 to n - 1 do
      if counts.(s).(d) > 0.0 then edges := (s, d) :: !edges
    done
  done;
  !edges

let learn_dtmc ~n ~init ?(labels = []) ?rewards ?(smoothing = 0.0) ?support
    traces =
  let counts = transition_counts ~n traces in
  let support =
    match support with Some s -> s | None -> observed_support counts
  in
  if smoothing < 0.0 then invalid_arg "Mle.learn_dtmc: negative smoothing";
  List.iter
    (fun (s, d) ->
       check_state n s;
       check_state n d;
       counts.(s).(d) <- counts.(s).(d) +. smoothing)
    support;
  let transitions = ref [] in
  for s = 0 to n - 1 do
    let total = Array.fold_left ( +. ) 0.0 counts.(s) in
    if total > 0.0 then
      for d = 0 to n - 1 do
        if counts.(s).(d) > 0.0 then
          transitions := (s, d, counts.(s).(d) /. total) :: !transitions
      done
    else
      (* unobserved source: absorbing self-loop keeps the chain well formed *)
      transitions := (s, s, 1.0) :: !transitions
  done;
  Dtmc.make ~n ~init ~transitions:!transitions ~labels ?rewards ()

let learn_mdp_dists mdp ?(smoothing = 0.0) traces =
  let n = Mdp.num_states mdp in
  if smoothing < 0.0 then invalid_arg "Mle.learn_mdp_dists: negative smoothing";
  (* counts per (state, action, target) *)
  let tbl : (int * string * int, float) Hashtbl.t = Hashtbl.create 64 in
  let bump key =
    Hashtbl.replace tbl key (Option.value ~default:0.0 (Hashtbl.find_opt tbl key) +. 1.0)
  in
  List.iter
    (fun tr ->
       let pairs = Trace.state_actions tr in
       let states = Trace.states tr in
       let rec go pairs states =
         match (pairs, states) with
         | (s, a) :: prest, _ :: (next :: _ as srest) ->
           check_state n s;
           check_state n next;
           bump (s, a, next);
           go prest srest
         | [], _ | _, [] | _, [ _ ] -> ()
       in
       go pairs states)
    traces;
  let actions =
    List.concat
      (List.init n (fun s ->
           List.map
             (fun (a : Mdp.action) ->
                let support = List.map fst a.Mdp.dist in
                let counts =
                  List.map
                    (fun d ->
                       ( d,
                         Option.value ~default:0.0
                           (Hashtbl.find_opt tbl (s, a.Mdp.name, d))
                         +. smoothing ))
                    support
                in
                let total = List.fold_left (fun acc (_, c) -> acc +. c) 0.0 counts in
                let dist =
                  if total > 0.0 then
                    List.filter_map
                      (fun (d, c) -> if c > 0.0 then Some (d, c /. total) else None)
                      counts
                  else a.Mdp.dist
                in
                (s, a.Mdp.name, dist))
             (Mdp.actions_of mdp s)))
  in
  let labels = List.map (fun l -> (l, Mdp.states_with_label mdp l)) (Mdp.labels mdp) in
  let action_rewards =
    List.concat
      (List.init n (fun s ->
           List.map
             (fun (a : Mdp.action) -> ((s, a.Mdp.name), a.Mdp.reward))
             (Mdp.actions_of mdp s)))
  in
  let state_rewards = Array.init n (Mdp.state_reward mdp) in
  let features =
    if Mdp.feature_dim mdp = 0 then None
    else Some (Array.init n (Mdp.features_of mdp))
  in
  Mdp.make ~n ~init:(Mdp.init_state mdp) ~actions ~action_rewards ~labels
    ~state_rewards ?features ()

let parametric_mle ~n ~init ?(labels = []) ?rewards ~groups () =
  let names = List.map fst groups in
  if List.length (List.sort_uniq String.compare names) <> List.length names then
    invalid_arg "Mle.parametric_mle: duplicate group names";
  (* per-group counts *)
  let group_counts =
    List.map (fun (g, traces) -> (g, transition_counts ~n traces)) groups
  in
  let keep g = Ratfun.sub Ratfun.one (Ratfun.var g) in
  let entry s d =
    List.fold_left
      (fun acc (g, counts) ->
         let c = counts.(s).(d) in
         if c = 0.0 then acc
         else
           Ratfun.add acc
             (Ratfun.mul (Ratfun.const (Ratio.of_float c)) (keep g)))
      Ratfun.zero group_counts
  in
  let transitions = ref [] in
  for s = 0 to n - 1 do
    let row_entries =
      List.filter_map
        (fun d ->
           let e = entry s d in
           if Ratfun.is_zero e then None else Some (d, e))
        (List.init n Fun.id)
    in
    match row_entries with
    | [] -> transitions := (s, s, Ratfun.one) :: !transitions
    | _ ->
      let total =
        List.fold_left (fun acc (_, e) -> Ratfun.add acc e) Ratfun.zero row_entries
      in
      List.iter
        (fun (d, e) ->
           transitions := (s, d, Ratfun.div e total) :: !transitions)
        row_entries
  done;
  let rewards = Option.map (Array.map Ratfun.const) rewards in
  Pdtmc.make ~n ~init ~transitions:!transitions ~labels ?rewards ()
