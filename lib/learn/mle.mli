(** Maximum-likelihood estimation of Markov-chain / MDP transition
    probabilities from traces — the paper's learning procedure [ML(D)] for
    the transition function [P] (§II).

    The parametric variant is the machinery behind Data Repair
    (Prop. 3): traces are partitioned into groups, each group [g] gets a
    drop-fraction parameter [x_g ∈ \[0,1)], and the ML estimates become
    rational functions of those parameters — keeping a group's weight at
    [1 - x_g]. Parametric model checking of the resulting {!Pdtmc} then
    yields the closed-form constraint of Eq. 15. *)

(** {1 Concrete estimation} *)

val transition_counts : n:int -> Trace.t list -> float array array
(** [counts.(s).(d)] = number of observed [s -> d] steps (actions ignored).
    @raise Invalid_argument when a trace mentions a state outside
    [0 .. n-1]. *)

val count_trace : n:int -> float array array -> Trace.t -> unit
(** Fold one trace's steps into an existing count matrix ([+1.0] per
    observed step, actions ignored) — the incremental form
    {!transition_counts} is built on, used by the streaming learner to
    absorb appended chunks without re-reading history.
    @raise Invalid_argument on out-of-range states (the matrix is then
    partially updated; streaming callers fold into a scratch copy
    first). *)

val learn_dtmc :
  n:int ->
  init:int ->
  ?labels:(string * int list) list ->
  ?rewards:float array ->
  ?smoothing:float ->
  ?support:(int * int) list ->
  Trace.t list ->
  Dtmc.t
(** Row-normalised counts. [smoothing] adds Laplace mass α to every edge of
    the [support] (default: the edges observed anywhere in the data).
    States never visited as sources become absorbing self-loops.
    @raise Invalid_argument on empty data with no support, or bad states. *)

val learn_mdp_dists :
  Mdp.t -> ?smoothing:float -> Trace.t list -> Mdp.t
(** Re-estimates every action distribution of the given MDP from
    state/action traces, keeping its structure (support = the existing
    edges); (s, a) pairs never observed keep their current distribution. *)

(** {1 Parametric estimation (Data Repair substrate)} *)

val parametric_mle :
  n:int ->
  init:int ->
  ?labels:(string * int list) list ->
  ?rewards:Ratio.t array ->
  groups:(string * Trace.t list) list ->
  unit ->
  Pdtmc.t
(** Group [g]'s traces are kept with symbolic weight [1 - g]; transition
    probabilities become
    [P(s,d) = Σ_g (1-g)·c_g(s,d) / Σ_g (1-g)·c_g(s,·)] — rational functions
    of the drop fractions. A group name appearing as a variable must
    therefore be a valid identifier. States never observed as sources
    become absorbing.
    @raise Invalid_argument on duplicate group names or bad states. *)
