type status = Ok | Error of string

type t = {
  id : int;
  parent : int option;
  name : string;
  job : string option;
  domain : int;
  wall_s : float;
  rel_s : float;
  dur_s : float;
  attrs : (string * string) list;
  status : status;
}

(* All process-global slots are atomics: probes run on every domain, and
   enable/disable/drain may race a worker mid-span. *)
let enabled_flag = Atomic.make false
let epoch = Atomic.make 0.0
let next_id = Atomic.make 1

(* One buffer per domain, but owned by the process-wide registry so spans
   survive the death of the domain that wrote them (pool respawns).  The
   hot path is an atomic cons onto [spans]; only registration of a brand
   new buffer touches the registry, also lock-free. *)
type buffer = { dom : int; spans : t list Atomic.t }

let registry : buffer list Atomic.t = Atomic.make []

let rec atomic_update a f =
  let v = Atomic.get a in
  if not (Atomic.compare_and_set a v (f v)) then atomic_update a f

let buffer_key : buffer Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let b =
        { dom = (Domain.self () :> int); spans = Atomic.make [] }
      in
      atomic_update registry (fun bs -> b :: bs);
      b)

(* An open (in-progress) span; attrs are mutable until it finishes. *)
type pending = {
  pid : int;
  pparent : int option;
  pname : string;
  pjob : string option;
  pwall : float;
  prel : float;
  mutable pattrs : (string * string) list;
}

let stack_key : pending list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let enabled () = Atomic.get enabled_flag

let enable () =
  List.iter (fun b -> Atomic.set b.spans []) (Atomic.get registry);
  Atomic.set next_id 1;
  Atomic.set epoch (Unix.gettimeofday ());
  Atomic.set enabled_flag true

let disable () = Atomic.set enabled_flag false

let current () =
  match !(Domain.DLS.get stack_key) with
  | [] -> None
  | p :: _ -> Some p.pid

let add_attr key value =
  if Atomic.get enabled_flag then
    match !(Domain.DLS.get stack_key) with
    | [] -> ()
    | p :: _ -> p.pattrs <- (key, value) :: p.pattrs

let open_span ?parent ?job ?(attrs = []) name =
  let stack = Domain.DLS.get stack_key in
  let parent =
    match parent with
    | Some _ as p -> p
    | None -> ( match !stack with [] -> None | p :: _ -> Some p.pid)
  in
  let now = Unix.gettimeofday () in
  let p =
    {
      pid = Atomic.fetch_and_add next_id 1;
      pparent = parent;
      pname = name;
      pjob = job;
      pwall = now;
      prel = now -. Atomic.get epoch;
      pattrs = List.rev attrs;
    }
  in
  stack := p :: !stack;
  p

let close_span ?(instant = false) p status =
  let stack = Domain.DLS.get stack_key in
  (match !stack with q :: rest when q == p -> stack := rest | _ -> ());
  let buf = Domain.DLS.get buffer_key in
  let span =
    {
      id = p.pid;
      parent = p.pparent;
      name = p.pname;
      job = p.pjob;
      domain = buf.dom;
      wall_s = p.pwall;
      rel_s = p.prel;
      dur_s = (if instant then 0.0 else Unix.gettimeofday () -. p.pwall);
      attrs = List.rev p.pattrs;
      status;
    }
  in
  atomic_update buf.spans (fun ss -> span :: ss)

let with_span ?parent ?job ?attrs name f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let p = open_span ?parent ?job ?attrs name in
    match f () with
    | v ->
      close_span p Ok;
      v
    | exception e ->
      close_span p (Error (Printexc.to_string e));
      raise e
  end

let event ?parent ?job ?attrs name =
  if not (Atomic.get enabled_flag) then None
  else begin
    let p = open_span ?parent ?job ?attrs name in
    close_span ~instant:true p Ok;
    Some p.pid
  end

let drain () =
  let spans =
    List.concat_map
      (fun b -> Atomic.exchange b.spans [])
      (Atomic.get registry)
  in
  List.sort
    (fun a b ->
       match compare a.rel_s b.rel_s with 0 -> compare a.id b.id | c -> c)
    spans
