(** Process-wide metrics registry: named counters, gauges and fixed-bucket
    histograms, safe across domains via atomics.

    Metrics are registered once by name and live for the whole process —
    unlike [Runtime_stats], whose counters die with their runtime, the
    registry accumulates across runtime creations, worker respawns and
    repeated batches.  Registration takes a mutex (it happens a handful
    of times); every update is purely atomic, so workers never serialise
    on the hot path.

    Metric names follow Prometheus conventions ([tml_jobs_submitted_total],
    [tml_stage_seconds]); an optional label pair distinguishes instances
    of one logical metric (e.g. [("stage", "eliminate")]), and
    {!to_prometheus} renders the whole registry in the Prometheus text
    exposition format. *)

type counter
(** A monotonically increasing integer. *)

type gauge
(** A float that can move both ways (queue depth, cache size). *)

type histogram
(** Observations bucketed into fixed upper bounds, plus a running sum and
    count — enough for rate/mean/percentile-band queries. *)

val counter : ?help:string -> ?label:string * string -> string -> counter
(** Register (or look up) the counter [name].  Re-registering the same
    name with the same label returns the existing counter.
    @raise Invalid_argument if [name] is already a gauge or histogram. *)

val incr : ?by:int -> counter -> unit
(** Add [by] (default 1) atomically. *)

val counter_value : counter -> int

val gauge : ?help:string -> ?label:string * string -> string -> gauge

val set_gauge : gauge -> float -> unit

val max_gauge : gauge -> float -> unit
(** Raise the gauge to [v] if [v] is larger — a high-water mark. *)

val gauge_value : gauge -> float

val histogram :
  ?help:string ->
  ?label:string * string ->
  buckets:float array ->
  string ->
  histogram
(** Register a histogram with the given strictly increasing upper bucket
    bounds (an implicit [+inf] bucket is added).  Re-registering the same
    name/label must supply the same bounds.
    @raise Invalid_argument on empty, unsorted or mismatched bounds. *)

val observe : histogram -> float -> unit
(** Record one observation: bumps the first bucket whose bound is
    [>= v], the count and the sum, all atomically. *)

val histogram_buckets : histogram -> (float * int) list
(** Cumulative per-bucket counts in bound order, ending with
    [(infinity, total)] — the Prometheus [le] convention. *)

val histogram_sum : histogram -> float

val histogram_count : histogram -> int

val default_time_buckets : float array
(** Upper bounds (seconds) suited to repair-stage latencies:
    [1ms … 100s] in roughly 1-3-10 steps. *)

val to_prometheus : unit -> string
(** The whole registry in the Prometheus text exposition format
    ([# HELP] / [# TYPE] headers, [_bucket]/[_sum]/[_count] series for
    histograms), metrics sorted by name for deterministic output. *)

val reset : unit -> unit
(** Zero every registered metric's value (registrations are kept, so
    handles held by callers stay valid).  Meant for tests and for the
    start of a [--metrics-out] capture. *)
