type counter = int Atomic.t
type gauge = float Atomic.t

type histogram = {
  bounds : float array;
  buckets : int Atomic.t array;  (* one per bound, plus the +inf bucket *)
  sum : float Atomic.t;
  count : int Atomic.t;
}

type metric = Counter of counter | Gauge of gauge | Histogram of histogram

type entry = {
  name : string;
  label : (string * string) option;
  help : string;
  metric : metric;
}

(* Registration is rare and mutex-guarded; updates never touch the
   registry, only the atomics inside a handle. *)
let mutex = Mutex.create ()
let registry : (string, entry) Hashtbl.t = Hashtbl.create 32

let locked f =
  Mutex.lock mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock mutex) f

let key name label =
  match label with
  | None -> name
  | Some (k, v) -> Printf.sprintf "%s{%s=%S}" name k v

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"

let register name label help mk check =
  locked (fun () ->
      let k = key name label in
      match Hashtbl.find_opt registry k with
      | Some e -> check e
      | None ->
        let e = { name; label; help; metric = mk () } in
        Hashtbl.replace registry k e;
        e.metric)

let wrong_kind name m =
  invalid_arg
    (Printf.sprintf "Metrics: %s is already registered as a %s" name
       (kind_name m))

let counter ?(help = "") ?label name =
  match
    register name label help
      (fun () -> Counter (Atomic.make 0))
      (fun e -> e.metric)
  with
  | Counter c -> c
  | m -> wrong_kind name m

let incr ?(by = 1) c = ignore (Atomic.fetch_and_add c by)
let counter_value c = Atomic.get c

(* Atomic float update: CAS on the boxed value; each candidate is a fresh
   box, so physical-equality CAS is exact. *)
let rec float_update a f =
  let v = Atomic.get a in
  if not (Atomic.compare_and_set a v (f v)) then float_update a f

let gauge ?(help = "") ?label name =
  match
    register name label help
      (fun () -> Gauge (Atomic.make 0.0))
      (fun e -> e.metric)
  with
  | Gauge g -> g
  | m -> wrong_kind name m

let set_gauge g v = Atomic.set g v
let max_gauge g v = float_update g (fun cur -> Float.max cur v)
let gauge_value g = Atomic.get g

let histogram ?(help = "") ?label ~buckets name =
  let n = Array.length buckets in
  if n = 0 then invalid_arg "Metrics.histogram: need at least one bucket";
  Array.iteri
    (fun i b ->
       if i > 0 && buckets.(i - 1) >= b then
         invalid_arg "Metrics.histogram: bounds must be strictly increasing")
    buckets;
  match
    register name label help
      (fun () ->
         Histogram
           {
             bounds = Array.copy buckets;
             buckets = Array.init (n + 1) (fun _ -> Atomic.make 0);
             sum = Atomic.make 0.0;
             count = Atomic.make 0;
           })
      (fun e ->
         (match e.metric with
          | Histogram h when h.bounds <> buckets ->
            invalid_arg
              (Printf.sprintf
                 "Metrics.histogram: %s re-registered with different bounds"
                 name)
          | _ -> ());
         e.metric)
  with
  | Histogram h -> h
  | m -> wrong_kind name m

let observe h v =
  let n = Array.length h.bounds in
  let rec idx i = if i >= n || v <= h.bounds.(i) then i else idx (i + 1) in
  ignore (Atomic.fetch_and_add h.buckets.(idx 0) 1);
  ignore (Atomic.fetch_and_add h.count 1);
  float_update h.sum (fun s -> s +. v)

let histogram_buckets h =
  (* cumulative counts, Prometheus [le] convention *)
  let acc = ref 0 in
  let per_bound =
    Array.to_list
      (Array.mapi
         (fun i b ->
            acc := !acc + Atomic.get h.buckets.(i);
            (b, !acc))
         h.bounds)
  in
  per_bound @ [ (infinity, !acc + Atomic.get h.buckets.(Array.length h.bounds)) ]

let histogram_sum h = Atomic.get h.sum
let histogram_count h = Atomic.get h.count

let default_time_buckets =
  [| 0.001; 0.003; 0.01; 0.03; 0.1; 0.3; 1.0; 3.0; 10.0; 30.0; 100.0 |]

(* ----------------------------- rendering ----------------------------- *)

let label_str = function
  | None -> ""
  | Some (k, v) -> Printf.sprintf "{%s=%S}" k v

let label_with extra = function
  | None -> Printf.sprintf "{%s}" extra
  | Some (k, v) -> Printf.sprintf "{%s=%S,%s}" k v extra

let le_str b = if b = infinity then "+Inf" else Printf.sprintf "%g" b

let to_prometheus () =
  let entries =
    locked (fun () -> Hashtbl.fold (fun _ e acc -> e :: acc) registry [])
  in
  let entries =
    List.sort
      (fun a b ->
         match compare a.name b.name with
         | 0 -> compare a.label b.label
         | c -> c)
      entries
  in
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let last_header = ref "" in
  List.iter
    (fun e ->
       if e.name <> !last_header then begin
         last_header := e.name;
         if e.help <> "" then add "# HELP %s %s\n" e.name e.help;
         add "# TYPE %s %s\n" e.name (kind_name e.metric)
       end;
       match e.metric with
       | Counter c -> add "%s%s %d\n" e.name (label_str e.label) (Atomic.get c)
       | Gauge g -> add "%s%s %g\n" e.name (label_str e.label) (Atomic.get g)
       | Histogram h ->
         List.iter
           (fun (b, n) ->
              add "%s_bucket%s %d\n" e.name
                (label_with (Printf.sprintf "le=%S" (le_str b)) e.label)
                n)
           (histogram_buckets h);
         add "%s_sum%s %g\n" e.name (label_str e.label) (histogram_sum h);
         add "%s_count%s %d\n" e.name (label_str e.label) (histogram_count h))
    entries;
  Buffer.contents buf

let reset () =
  let entries =
    locked (fun () -> Hashtbl.fold (fun _ e acc -> e :: acc) registry [])
  in
  List.iter
    (fun e ->
       match e.metric with
       | Counter c -> Atomic.set c 0
       | Gauge g -> Atomic.set g 0.0
       | Histogram h ->
         Array.iter (fun b -> Atomic.set b 0) h.buckets;
         Atomic.set h.sum 0.0;
         Atomic.set h.count 0)
    entries
