(** Hierarchical trace spans for the repair runtime.

    A {e span} is one timed region of work — a pipeline stage, a job's run
    on a worker, a cache fill, an NLP fallback rung — with a unique id, an
    optional parent span, a job correlation id, wall-clock and
    trace-relative timestamps, free-form key/value attributes and an
    ok/error status.  Spans from every domain are merged into one
    deterministic record stream at {!drain} time, so a batch traced on 4
    workers reads the same as on 1.

    {b Cost model.}  Tracing is off by default; every probe
    ({!with_span}, {!event}, {!add_attr}) is then a single atomic load.
    When enabled, finished spans are pushed onto a {e lock-free}
    per-domain buffer (an atomic cons — no mutex on the hot path) and the
    parent context is tracked in domain-local storage, so tracing never
    serialises concurrent workers.

    {b Cross-domain parenting.}  The current span is domain-local: a span
    opened on the submitting domain is not automatically the parent of
    work a worker domain performs later.  Capture {!current} (or the
    result of {!event}) at submission time and pass it as [?parent] on
    the worker side — this is exactly what [Runtime.submit] does to hang
    each [job.run] span under its [job.submit] event.

    All state is process-global and domain-safe: the enabled flag, the
    span-id allocator and the buffer registry are atomics, never plain
    globals (see the [Instr.set_recorder] hardening this layer rode in
    with). *)

type status =
  | Ok  (** the span's body returned normally *)
  | Error of string
      (** the span's body raised; the payload is the printed exception *)

type t = {
  id : int;  (** unique within the process, allocated from an atomic *)
  parent : int option;  (** enclosing span, if any *)
  name : string;  (** span name, e.g. ["stage:eliminate"] *)
  job : string option;  (** job correlation id (report-cache digest prefix) *)
  domain : int;  (** id of the domain the span ran on *)
  wall_s : float;  (** absolute start time, [Unix.gettimeofday] *)
  rel_s : float;  (** start time relative to {!enable} (merge/sort key) *)
  dur_s : float;  (** elapsed wall-clock seconds; [0.] for {!event}s *)
  attrs : (string * string) list;  (** key/value annotations, in add order *)
  status : status;
}
(** One finished span.  Records are immutable once drained. *)

val enable : unit -> unit
(** Turn tracing on, clear any previously buffered spans and reset the
    relative-time origin.  Idempotent. *)

val disable : unit -> unit
(** Turn tracing off.  Buffered spans are kept until the next {!enable}
    or {!drain}, so a caller may disable first and dump afterwards. *)

val enabled : unit -> bool
(** Whether spans are currently being recorded. *)

val with_span :
  ?parent:int ->
  ?job:string ->
  ?attrs:(string * string) list ->
  string ->
  (unit -> 'a) ->
  'a
(** [with_span name f] runs [f] inside a new span.  The span's parent is
    [?parent] when given, otherwise the innermost span open on this
    domain.  If [f] raises, the span is recorded with [Error] status and
    the exception is re-raised.  When tracing is disabled this is [f ()]
    after one atomic load. *)

val event :
  ?parent:int ->
  ?job:string ->
  ?attrs:(string * string) list ->
  string ->
  int option
(** A zero-duration span marking a point in time — a fault firing, a
    worker respawn, a queue dequeue.  Returns the new span's id (for use
    as a [?parent] on another domain), or [None] when tracing is
    disabled. *)

val current : unit -> int option
(** Id of the innermost span open on the calling domain, if any. *)

val add_attr : string -> string -> unit
(** Attach [key = value] to the innermost open span on this domain.
    No-op when tracing is disabled or no span is open. *)

val drain : unit -> t list
(** Remove and return every finished span, merged across all domains and
    sorted by [(rel_s, id)] — a deterministic order for a given set of
    spans.  Spans recorded by worker domains that have since died (e.g.
    respawned by the pool supervisor) are included: buffers are owned by
    the process-wide registry, not by the domain. *)
