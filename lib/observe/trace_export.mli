(** Exporters for {!Trace_span} streams.

    Three formats:

    - {b JSON lines} ({!to_jsonl} / {!of_jsonl}): one span per line, the
      on-disk format of [tml batch --trace-out] — machine-readable, easy
      to grep/stream, and parsed back losslessly by this module (the
      [tml trace] subcommand round-trips through it);
    - {b summary tree} ({!tree} / {!summary}): the human view — spans
      nested under their parents with durations, plus an aggregate
      per-span-name table;
    - Prometheus text lives in {!Metrics.to_prometheus}, not here: spans
      and metrics export independently. *)

exception Parse_error of string
(** Raised by {!of_jsonl} on malformed input, with a line number. *)

val span_to_json : Trace_span.t -> string
(** One span as a single-line JSON object (no trailing newline).  Fields:
    [id], [parent] (null at root), [name], [job] (null if unset),
    [domain], [wall_s], [rel_s], [dur_s], [status] ("ok"/"error"),
    [error] (only when status is "error") and [attrs] (string map). *)

val to_jsonl : Trace_span.t list -> string
(** All spans, one JSON object per line, in the given order. *)

val of_jsonl : string -> Trace_span.t list
(** Parse a JSON-lines dump (blank lines ignored).  Inverse of
    {!to_jsonl}.  @raise Parse_error on malformed lines — {e every}
    failure mode (truncated JSON, wrong field types, garbage bytes) is
    wrapped with the 1-based offending line number; no other exception
    escapes. *)

val tree : Trace_span.t list -> string
(** Render the span forest: every span nested under its parent (spans
    whose parent is absent from the list are roots), children in
    timestamp order, one line per span with job id, duration, attributes
    and an [ERROR] marker on failed spans. *)

val summary : Trace_span.t list -> string
(** {!tree} followed by an aggregate table — per span name: count, total
    and mean duration, slowest instance, error count — sorted by total
    time descending.  This is what [tml trace --summary] prints. *)
