exception Parse_error of string

(* ------------------------------ emit ------------------------------ *)

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let span_to_json (s : Trace_span.t) =
  let b = Buffer.create 192 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "{\"id\":%d,\"parent\":%s,\"name\":\"%s\",\"job\":%s,\"domain\":%d"
    s.Trace_span.id
    (match s.Trace_span.parent with
     | None -> "null"
     | Some p -> string_of_int p)
    (escape s.Trace_span.name)
    (match s.Trace_span.job with
     | None -> "null"
     | Some j -> Printf.sprintf "\"%s\"" (escape j))
    s.Trace_span.domain;
  add ",\"wall_s\":%.6f,\"rel_s\":%.6f,\"dur_s\":%.6f" s.Trace_span.wall_s
    s.Trace_span.rel_s s.Trace_span.dur_s;
  (match s.Trace_span.status with
   | Trace_span.Ok -> add ",\"status\":\"ok\""
   | Trace_span.Error msg ->
     add ",\"status\":\"error\",\"error\":\"%s\"" (escape msg));
  add ",\"attrs\":{";
  List.iteri
    (fun i (k, v) ->
       add "%s\"%s\":\"%s\"" (if i = 0 then "" else ",") (escape k) (escape v))
    s.Trace_span.attrs;
  add "}}";
  Buffer.contents b

let to_jsonl spans =
  String.concat "" (List.map (fun s -> span_to_json s ^ "\n") spans)

(* ------------------------------ parse ------------------------------ *)

(* A minimal JSON reader — only what the emitter above produces (flat
   objects of strings / numbers / null, one nested string map), but
   tolerant of whitespace and field order. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Obj of (string * json) list
  | Arr of json list

let parse_json line =
  let n = String.length line in
  let pos = ref 0 in
  let fail msg = raise (Parse_error msg) in
  let peek () = if !pos < n then Some line.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\r' | '\n') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C at offset %d" c !pos)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub line !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "bad literal at offset %d" !pos)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
         | Some '"' -> Buffer.add_char b '"'; advance ()
         | Some '\\' -> Buffer.add_char b '\\'; advance ()
         | Some '/' -> Buffer.add_char b '/'; advance ()
         | Some 'n' -> Buffer.add_char b '\n'; advance ()
         | Some 't' -> Buffer.add_char b '\t'; advance ()
         | Some 'r' -> Buffer.add_char b '\r'; advance ()
         | Some 'b' -> Buffer.add_char b '\b'; advance ()
         | Some 'f' -> Buffer.add_char b '\012'; advance ()
         | Some 'u' ->
           advance ();
           if !pos + 4 > n then fail "bad \\u escape";
           let hex = String.sub line !pos 4 in
           pos := !pos + 4;
           (match int_of_string_opt ("0x" ^ hex) with
            | Some code when code < 0x80 -> Buffer.add_char b (Char.chr code)
            | Some _ -> Buffer.add_char b '?'  (* non-ASCII: lossy is fine *)
            | None -> fail "bad \\u escape")
         | _ -> fail "bad escape");
        go ()
      | Some c ->
        Buffer.add_char b c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let number_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> number_char c | None -> false) do
      advance ()
    done;
    match float_of_string_opt (String.sub line start (!pos - start)) with
    | Some f -> f
    | None -> fail (Printf.sprintf "bad number at offset %d" start)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields ((k, v) :: acc)
          | Some '}' ->
            advance ();
            Obj (List.rev ((k, v) :: acc))
          | _ -> fail "expected ',' or '}'"
        in
        fields []
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Arr []
      end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (v :: acc)
          | Some ']' ->
            advance ();
            Arr (List.rev (v :: acc))
          | _ -> fail "expected ',' or ']'"
        in
        items []
      end
    | Some '"' -> Str (parse_string ())
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some _ -> Num (parse_number ())
    | None -> fail "empty value"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail (Printf.sprintf "trailing junk at offset %d" !pos);
  v

let span_of_json = function
  | Obj fields ->
    let get name = List.assoc_opt name fields in
    let num name =
      match get name with
      | Some (Num f) -> f
      | _ -> raise (Parse_error (Printf.sprintf "missing number %S" name))
    in
    let str name =
      match get name with
      | Some (Str s) -> s
      | _ -> raise (Parse_error (Printf.sprintf "missing string %S" name))
    in
    let opt_str name =
      match get name with Some (Str s) -> Some s | _ -> None
    in
    let status =
      match str "status" with
      | "ok" -> Trace_span.Ok
      | "error" ->
        Trace_span.Error (Option.value ~default:"" (opt_str "error"))
      | s -> raise (Parse_error (Printf.sprintf "bad status %S" s))
    in
    let attrs =
      match get "attrs" with
      | Some (Obj kvs) ->
        List.map
          (fun (k, v) ->
             match v with
             | Str s -> (k, s)
             | _ -> raise (Parse_error "non-string attr"))
          kvs
      | None -> []
      | Some _ -> raise (Parse_error "bad attrs")
    in
    {
      Trace_span.id = int_of_float (num "id");
      parent =
        (match get "parent" with
         | Some (Num f) -> Some (int_of_float f)
         | _ -> None);
      name = str "name";
      job = opt_str "job";
      domain = int_of_float (num "domain");
      wall_s = num "wall_s";
      rel_s = num "rel_s";
      dur_s = num "dur_s";
      attrs;
      status;
    }
  | _ -> raise (Parse_error "span line is not an object")

let of_jsonl text =
  let lines = String.split_on_char '\n' text in
  List.concat
    (List.mapi
       (fun i line ->
          if String.trim line = "" then []
          else
            try [ span_of_json (parse_json line) ] with
            | Parse_error msg ->
              raise (Parse_error (Printf.sprintf "line %d: %s" (i + 1) msg))
            | e ->
              (* a corrupt line must never escape as an uncaught exception:
                 whatever the parser tripped on becomes a positioned
                 Parse_error the CLI can report and exit non-zero on *)
              raise
                (Parse_error
                   (Printf.sprintf "line %d: corrupt span line (%s)" (i + 1)
                      (Printexc.to_string e))))
       lines)

(* ------------------------------ render ------------------------------ *)

let pretty_dur d =
  if d <= 0.0 then "·"
  else if d >= 1.0 then Printf.sprintf "%.3f s" d
  else if d >= 1e-3 then Printf.sprintf "%.3f ms" (d *. 1e3)
  else Printf.sprintf "%.1f us" (d *. 1e6)

let span_line (s : Trace_span.t) =
  let job =
    match s.Trace_span.job with
    | Some j -> Printf.sprintf " [job %s]" j
    | None -> ""
  in
  let attrs =
    match s.Trace_span.attrs with
    | [] -> ""
    | kvs ->
      Printf.sprintf " (%s)"
        (String.concat ", " (List.map (fun (k, v) -> k ^ "=" ^ v) kvs))
  in
  let err =
    match s.Trace_span.status with
    | Trace_span.Ok -> ""
    | Trace_span.Error msg -> Printf.sprintf "  ERROR: %s" msg
  in
  Printf.sprintf "%s%s%s  %s%s" s.Trace_span.name job attrs
    (pretty_dur s.Trace_span.dur_s)
    err

let tree spans =
  let order (a : Trace_span.t) (b : Trace_span.t) =
    match compare a.Trace_span.rel_s b.Trace_span.rel_s with
    | 0 -> compare a.Trace_span.id b.Trace_span.id
    | c -> c
  in
  let spans = List.sort order spans in
  let present = Hashtbl.create 64 in
  List.iter (fun s -> Hashtbl.replace present s.Trace_span.id ()) spans;
  let children = Hashtbl.create 64 in
  let roots =
    List.filter
      (fun (s : Trace_span.t) ->
         match s.Trace_span.parent with
         | Some p when Hashtbl.mem present p ->
           Hashtbl.replace children p
             (s
              :: (Option.value ~default:[] (Hashtbl.find_opt children p)));
           false
         | _ -> true)
      spans
  in
  let buf = Buffer.create 1024 in
  let rec render prefix is_last (s : Trace_span.t) =
    Buffer.add_string buf prefix;
    Buffer.add_string buf (if is_last then "`- " else "|- ");
    Buffer.add_string buf (span_line s);
    Buffer.add_char buf '\n';
    let kids =
      List.sort order
        (Option.value ~default:[] (Hashtbl.find_opt children s.Trace_span.id))
    in
    let child_prefix = prefix ^ (if is_last then "   " else "|  ") in
    List.iteri
      (fun i k -> render child_prefix (i = List.length kids - 1) k)
      kids
  in
  List.iteri
    (fun i r ->
       (* roots are rendered flush-left, each its own tree *)
       Buffer.add_string buf (span_line r);
       Buffer.add_char buf '\n';
       let kids =
         List.sort order
           (Option.value ~default:[]
              (Hashtbl.find_opt children r.Trace_span.id))
       in
       List.iteri
         (fun j k -> render "" (j = List.length kids - 1) k)
         kids;
       if i < List.length roots - 1 then Buffer.add_char buf '\n')
    roots;
  Buffer.contents buf

let summary spans =
  let buf = Buffer.create 2048 in
  let domains =
    List.sort_uniq compare
      (List.map (fun (s : Trace_span.t) -> s.Trace_span.domain) spans)
  in
  let span_of_max =
    List.fold_left
      (fun acc (s : Trace_span.t) ->
         Float.max acc (s.Trace_span.rel_s +. s.Trace_span.dur_s))
      0.0 spans
  in
  Buffer.add_string buf
    (Printf.sprintf "trace: %d span(s), %d domain(s), %s wall\n\n"
       (List.length spans) (List.length domains)
       (pretty_dur span_of_max));
  Buffer.add_string buf (tree spans);
  (* aggregate per span name *)
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (s : Trace_span.t) ->
       let count, total, mx, errs =
         Option.value ~default:(0, 0.0, 0.0, 0)
           (Hashtbl.find_opt tbl s.Trace_span.name)
       in
       Hashtbl.replace tbl s.Trace_span.name
         ( count + 1,
           total +. s.Trace_span.dur_s,
           Float.max mx s.Trace_span.dur_s,
           errs
           + (match s.Trace_span.status with
              | Trace_span.Ok -> 0
              | Trace_span.Error _ -> 1) ))
    spans;
  let rows = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] in
  let rows =
    List.sort
      (fun (_, (_, ta, _, _)) (_, (_, tb, _, _)) -> compare tb ta)
      rows
  in
  Buffer.add_string buf
    (Printf.sprintf "\n%-28s %6s %12s %12s %12s %7s\n" "span" "count" "total"
       "mean" "max" "errors");
  List.iter
    (fun (name, (count, total, mx, errs)) ->
       Buffer.add_string buf
         (Printf.sprintf "%-28s %6d %12s %12s %12s %7d\n" name count
            (pretty_dur total)
            (pretty_dur (total /. float_of_int count))
            (pretty_dur mx) errs))
    rows;
  Buffer.contents buf
