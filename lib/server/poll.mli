(** Readiness polling for the event-driven server: a thin, allocation-light
    abstraction over [epoll] (Linux) with a portable {!Unix.select}
    fallback, feature-detected at first use.

    One {!t} belongs to one event loop (one thread/domain): registration
    and {!wait} are {e not} synchronised — cross-loop communication goes
    through the loop's mailbox and wake pipe, never through a shared
    poller.  Interest is level-triggered on both backends: a readable fd
    keeps reporting readable until drained, a writable one until the
    write buffer fills.

    The select fallback caps out at [FD_SETSIZE] (typically 1024)
    descriptors per poller — one reason the 10k-connection benchmark
    reports which {!backend} it ran on. *)

type t

type event = {
  fd : Unix.file_descr;
  readable : bool;  (** includes peer hang-up and socket errors *)
  writable : bool;
}

val create : unit -> t
(** A fresh poller: epoll-backed when the kernel supports it, otherwise
    select-backed. *)

val backend : t -> string
(** ["epoll"] or ["select"]. *)

val add : t -> Unix.file_descr -> read:bool -> write:bool -> unit
(** Register [fd] with the given interest.  Re-adding a registered fd is
    treated as {!modify}. *)

val modify : t -> Unix.file_descr -> read:bool -> write:bool -> unit
(** Change a registered fd's interest.  Modifying an unknown fd adds it. *)

val remove : t -> Unix.file_descr -> unit
(** Deregister [fd]; unknown fds are ignored.  Must be called {e before}
    the fd is closed. *)

val wait : t -> timeout_ms:int -> event list
(** Block until at least one registered fd is ready or [timeout_ms]
    elapses (0 polls, negative blocks indefinitely); returns ready fds,
    [[]] on timeout or interruption ([EINTR]). *)

val close : t -> unit
(** Release the poller's kernel resources.  Idempotent. *)

val raise_nofile : int -> int
(** [raise_nofile n] best-effort raises [RLIMIT_NOFILE] to at least [n]
    (benchmarks holding tens of thousands of sockets need this) and
    returns the soft limit now in effect, or [-1] when the limit could
    not be read. *)
