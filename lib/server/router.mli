(** The request router: decoded {!Wire.request}s onto {!Runtime.submit}.

    A submit is admitted ({!Admission}), decoded with the lib/io parsers,
    and enqueued; the response is the job's digest, returned immediately
    — clients poll, wait on, or cancel the digest afterwards.  Identical
    jobs coalesce: a second submit of the same digest joins the first
    job's future (and, like any re-submit, is served straight from the
    runtime's report cache once settled).

    Shedding is typed end to end: admission limits and the runtime's own
    bounded queue both surface as an ["overloaded"] {e transient} wire
    error, so a client can back off and resubmit.  Admission tickets are
    released when the underlying future settles (swept on every
    {!handle}).

    Per-op and per-kind request counters and response-outcome counters
    are registered in the process-wide {!Metrics} registry
    ([tml_server_requests_total], [tml_server_jobs_total],
    [tml_server_responses_total]). *)

type t

val create :
  ?admission:Admission.t ->
  ?job_timeout_s:float ->
  ?retry:Retry.t ->
  ?replica_cap:int ->
  Runtime.t ->
  t
(** Route onto [runtime].  [job_timeout_s] and [retry] are passed to
    every {!Runtime.submit}.  [admission] defaults to
    [Admission.create ()].  [replica_cap] (default 256) bounds the store
    of reports replicated to this node by a fleet coordinator
    ({!Wire.Put_report}); the oldest entries are evicted FIFO. *)

val admission : t -> Admission.t

val replica_count : t -> int
(** Reports currently held in the replica store. *)

val handle : t -> client:int -> Wire.request -> Wire.response
(** Handle one request on behalf of connection [client].  Never raises:
    every failure becomes an [Error_reply].  [Wait] blocks the calling
    (connection) thread until the job settles or its timeout expires —
    a wait-timeout on a still-running job reports [Job_pending].
    [Put_report] stores a replicated report (servable by poll/wait/submit
    on its digest); [Fleet_status] and [Drain_node] are coordinator ops
    and answer a ["bad-request"] error here. *)

val classify : t -> Wire.request -> [ `Fast | `Slow ]
(** Whether {!handle} may block the calling thread for this request.
    Everything is [`Fast] (answered from memory or by a non-blocking
    enqueue) except a [Wait] on a job that is still running, which parks
    the caller in [Future.await] — the event-driven server routes
    [`Slow] requests to its executor pool instead of its loops.
    Advisory: a job may settle (never un-settle) between [classify] and
    [handle], which only makes a [`Slow] call return immediately. *)

val pending_jobs : t -> int
(** Registered jobs whose future is still pending. *)

val set_draining : t -> unit
(** Reject new submits with a transient ["unavailable"] error; polls,
    waits and cancels still work. *)

val draining : t -> bool

val drain : ?timeout_s:float -> t -> unit
(** {!set_draining}, then await every registered future (each at most
    [timeout_s]) and release their admission tickets. *)
