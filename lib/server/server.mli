(** The repair service: an event-driven serving core.  Readiness loops
    ({!Poll}: epoll on Linux, [select] elsewhere) own non-blocking
    sockets, decode the {!Wire} protocol incrementally
    ({!Wire.Decoder}: partial frames resume across reads, oversized
    frames are rejected without buffering their bodies), and buffer
    writes with backpressure; the few request kinds that genuinely block
    (see {!handler.classify}) run on a fixed executor pool instead of
    the loops.  The wire contract is byte-compatible with the
    thread-per-connection server this replaced — see
    [docs/ARCHITECTURE.md] for both request lifecycles and
    [docs/WIRE_PROTOCOL.md] for the framing grammar.

    {b Sharding.}  [loops] event loops each run in their own domain.
    TCP accepts shard in the kernel ([SO_REUSEPORT], one listener per
    loop); Unix-domain sockets have a single listener on loop 0, which
    adopts or hands accepted sockets round-robin to the other loops over
    their wake pipes.

    {b Observability.}  Every connection records a [server:accept] trace
    event; every request a [server:decode] span beneath it (fast
    requests run their handler inside it, so the runtime's [job:submit]
    span nests there; slow requests get a [server:handle] span on the
    executor).  Metrics: [tml_server_request_seconds],
    [tml_server_connections], [tml_server_loop_iterations_total],
    [tml_server_write_queue_bytes], and write-queue sheds folded into
    [tml_server_shed_total].

    {b Chaos.}  The four connection-handling sites probe {!Fault}:
    [Accept] (a faulted accept drops that connection and keeps serving),
    [Read] and [Decode] (answered with an error frame; a read fault
    closes the stream), and [Write] (one error frame is attempted, then
    the connection closes).  The server survives all of them.

    {b Drain.}  {!request_stop} (also installed as the SIGTERM/SIGINT
    handler) only flips an atomic flag — the loops notice within one
    poll tick (at most 200ms), close their listeners, let every
    connection finish its in-flight request and flush its write queue,
    and {!stop} then awaits every admitted job before returning.  No
    accepted request is ever dropped by a drain. *)

type addr = [ `Unix of string | `Tcp of string * int ]
(** A filesystem socket path, or a (numeric) host and port — port [0]
    binds an ephemeral port, reported by {!port}. *)

type handler = {
  on_request : client:int -> Wire.request -> Wire.response;
      (** serve one request (must never raise) *)
  classify : Wire.request -> [ `Fast | `Slow ];
      (** [`Fast] requests run inline on the event loop and must never
          block; [`Slow] ones (waits on running jobs, coordinator fan-out
          RPCs) run on the executor pool.  At most one request per
          connection is in flight at a time, so pipelined responses stay
          in request order. *)
  on_stop : unit -> unit;
      (** begin refusing new work; non-blocking, called from
          {!request_stop} (and so from signal context) *)
  on_drain : timeout_s:float -> unit;
      (** await in-flight work, bounding each wait by [timeout_s] *)
  pending : unit -> int;  (** in-flight work items *)
  on_disconnect : client:int -> unit;
      (** a connection closed, for any reason (clean close, error,
          deadline, drain).  Called on the owning event loop — must not
          block.  Watch hubs use it to drop the client's
          subscriptions. *)
}
(** What the loops serve — the server itself only moves frames. *)

val handler_of_router : Router.t -> handler
(** The classic single-node server: {!Router.handle} /
    {!Router.classify} / {!Router.set_draining} / {!Router.drain} /
    {!Router.pending_jobs}. *)

type t

val start :
  ?backlog:int ->
  ?read_timeout_s:float ->
  ?write_timeout_s:float ->
  ?max_frame:int ->
  ?drain_timeout_s:float ->
  ?loops:int ->
  ?handler_threads:int ->
  ?max_write_buffer:int ->
  ?stats_extra:(unit -> (string * Wire.json) list) ->
  handler:handler ->
  addr ->
  t
(** Bind, listen and spawn the event loops and executor pool.

    [read_timeout_s] (default 5) bounds a peer's silence {e mid}-frame
    (an idle connection between frames lives forever); it also scales
    the loops' poll tick, which bounds stop-flag latency.
    [write_timeout_s] (default 5) bounds how long a peer may refuse to
    drain buffered responses.  [drain_timeout_s] (default 30) bounds the
    per-job wait during {!stop}.  [loops] (default: half the recommended
    domain count, clamped to 1..4) is the number of event loops;
    [handler_threads] (default 16) sizes the executor pool for [`Slow]
    requests.  [max_write_buffer] (default 1 MiB) is the per-connection
    write-queue cap: past it the connection stops being read
    (backpressure), and responses that would still land on it are shed
    with an ["overloaded"] error counted in [tml_server_shed_total].
    An existing Unix socket path is replaced.  [SIGPIPE] is set to
    ignore (socket writes need [EPIPE], not a fatal signal).
    [stats_extra] (default: none) supplies extra fields appended to the
    ["server"] section of every [Stats_reply] — watch hubs report
    subscription counts there; must not block or raise.
    @raise Unix.Unix_error when binding fails. *)

val port : t -> int option
(** The bound TCP port ([None] for Unix sockets) — useful with port 0. *)

val connections : t -> int
(** Currently open client connections, across all loops. *)

val push : t -> client:int -> Wire.json -> bool
(** Queue a server-push frame (see {!Wire.notification_to_json}) for
    [client]'s connection.  Thread-safe: the frame is rendered on the
    connection's owning event loop, so it interleaves with pipelined
    replies only at frame boundaries — never inside one.  A subscriber
    whose write queue is at [max_write_buffer] has the push shed
    (counted in [tml_server_push_shed_total]); the watch replay log
    covers the gap.  Returns [false] when the client is unknown or its
    connection already closed. *)

val backend : t -> string
(** The readiness backend the loops run on: ["epoll"] or ["select"]. *)

val loop_count : t -> int
(** Number of event loops actually running. *)

val request_stop : t -> unit
(** Begin draining: stop accepting and reject new submits.  Async-signal
    safe in the OCaml sense (flag flips only); returns immediately. *)

val stop : t -> unit
(** {!request_stop}, then join every event loop (each closes its
    listener, finishes in-flight requests, flushes and closes its
    connections) and the executor pool, await all admitted jobs
    ({!Router.drain}) and remove the Unix socket file.  Blocks until the
    drain completes.  Idempotent. *)

val wait : t -> unit
(** Block until {!request_stop} (e.g. a signal) and then run {!stop} —
    the serve-forever main loop. *)

val install_signal_handlers : ?signals:int list -> t -> unit
(** Route [signals] (default SIGTERM and SIGINT) to {!request_stop}. *)
