(** The repair service: an accept loop over a Unix-domain or TCP socket,
    one handler thread per connection, graceful drain on demand.

    Each connection speaks the {!Wire} protocol with per-socket read and
    write deadlines ([SO_RCVTIMEO]/[SO_SNDTIMEO]); requests are routed
    through a {!handler} — a {!Router} over a local {!Runtime}
    ({!handler_of_router}), or a fleet {!Coordinator}.  Every
    connection records a [server:accept] trace event and every request a
    [server:decode] span beneath it, under which the runtime's own
    [job:submit] spans nest; request latency feeds the
    [tml_server_request_seconds] histogram and open connections the
    [tml_server_connections] gauge.

    {b Chaos.}  The four connection-handling sites probe {!Fault}:
    [Accept] (a faulted accept drops that connection and keeps serving),
    [Read] and [Decode] (answered with an error frame; a read fault
    closes the stream), and [Write] (one error frame is attempted, then
    the connection closes).  The server survives all of them.

    {b Drain.}  {!request_stop} (also installed as the SIGTERM/SIGINT
    handler) only flips an atomic flag — the accept loop notices within
    its 200ms poll, stops accepting, connection threads finish their
    in-flight request, and {!stop} then awaits every admitted job before
    returning.  No accepted request is ever dropped by a drain. *)

type addr = [ `Unix of string | `Tcp of string * int ]
(** A filesystem socket path, or a (numeric) host and port — port [0]
    binds an ephemeral port, reported by {!port}. *)

type handler = {
  on_request : client:int -> Wire.request -> Wire.response;
      (** serve one request (must never raise) *)
  on_stop : unit -> unit;
      (** begin refusing new work; non-blocking, called from
          {!request_stop} (and so from signal context) *)
  on_drain : timeout_s:float -> unit;
      (** await in-flight work, bounding each wait by [timeout_s] *)
  pending : unit -> int;  (** in-flight work items *)
}
(** What the accept loop serves — the server itself only moves frames. *)

val handler_of_router : Router.t -> handler
(** The classic single-node server: {!Router.handle} /
    {!Router.set_draining} / {!Router.drain} / {!Router.pending_jobs}. *)

type t

val start :
  ?backlog:int ->
  ?read_timeout_s:float ->
  ?write_timeout_s:float ->
  ?max_frame:int ->
  ?drain_timeout_s:float ->
  handler:handler ->
  addr ->
  t
(** Bind, listen and spawn the accept loop.  [read_timeout_s] (default 5)
    bounds each blocking read — it is also the stop-flag poll interval of
    an idle connection; [write_timeout_s] (default 5) bounds each
    response write; [drain_timeout_s] (default 30) bounds the per-job
    wait during {!stop}.  An existing Unix socket path is replaced.
    @raise Unix.Unix_error when binding fails. *)

val port : t -> int option
(** The bound TCP port ([None] for Unix sockets) — useful with port 0. *)

val connections : t -> int
(** Currently open client connections. *)

val request_stop : t -> unit
(** Begin draining: stop accepting and reject new submits.  Async-signal
    safe in the OCaml sense (flag flips only); returns immediately. *)

val stop : t -> unit
(** {!request_stop}, then join the accept loop and every connection
    thread, await all admitted jobs ({!Router.drain}) and remove the
    Unix socket file.  Blocks until the drain completes.  Idempotent. *)

val wait : t -> unit
(** Block until {!request_stop} (e.g. a signal) and then run {!stop} —
    the serve-forever main loop. *)

val install_signal_handlers : ?signals:int list -> t -> unit
(** Route [signals] (default SIGTERM and SIGINT) to {!request_stop}. *)
