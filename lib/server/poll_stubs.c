/* epoll bindings for the event-driven server, plus an RLIMIT_NOFILE
   helper for the high-connection-count benchmarks.

   On non-Linux platforms every epoll stub returns -1, which Poll takes
   as "backend unavailable" and falls back to Unix.select.  File
   descriptors cross the boundary as plain ints (true on every Unix
   OCaml port). */

#include <caml/mlvalues.h>
#include <caml/memory.h>
#include <caml/threads.h>

#include <errno.h>
#include <string.h>

#ifdef __linux__

#include <sys/epoll.h>
#include <unistd.h>

CAMLprim value tml_epoll_create(value vunit)
{
  (void)vunit;
  return Val_int(epoll_create1(EPOLL_CLOEXEC));
}

/* op: 0 = add, 1 = modify, 2 = delete */
CAMLprim value tml_epoll_ctl(value vep, value vop, value vfd, value vread,
                             value vwrite)
{
  struct epoll_event ev;
  int op;
  memset(&ev, 0, sizeof ev);
  ev.events = (Bool_val(vread) ? EPOLLIN : 0) |
              (Bool_val(vwrite) ? EPOLLOUT : 0) | EPOLLRDHUP;
  ev.data.fd = Int_val(vfd);
  op = Int_val(vop) == 0   ? EPOLL_CTL_ADD
       : Int_val(vop) == 1 ? EPOLL_CTL_MOD
                           : EPOLL_CTL_DEL;
  return Val_int(epoll_ctl(Int_val(vep), op, Int_val(vfd), &ev));
}

#define TML_EPOLL_MAXEVENTS 1024

/* Fills varr (an int array laid out as fd,flags pairs) and returns the
   number of ready descriptors; flags bit 0 = readable, bit 1 =
   writable.  HUP/ERR are reported as readable (and writable) so the
   caller's read path observes the close/error.  The OCaml runtime lock
   is released for the duration of the wait. */
CAMLprim value tml_epoll_wait(value vep, value vtimeout_ms, value varr)
{
  struct epoll_event evs[TML_EPOLL_MAXEVENTS];
  int ep = Int_val(vep);
  int timeout = Int_val(vtimeout_ms);
  int max = Wosize_val(varr) / 2;
  int n, i;
  if (max > TML_EPOLL_MAXEVENTS) max = TML_EPOLL_MAXEVENTS;
  caml_release_runtime_system();
  n = epoll_wait(ep, evs, max, timeout);
  caml_acquire_runtime_system();
  if (n < 0) return Val_int(errno == EINTR ? 0 : -1);
  for (i = 0; i < n; i++) {
    int fl = 0;
    if (evs[i].events & (EPOLLIN | EPOLLHUP | EPOLLERR | EPOLLRDHUP)) fl |= 1;
    if (evs[i].events & (EPOLLOUT | EPOLLHUP | EPOLLERR)) fl |= 2;
    Field(varr, 2 * i) = Val_int(evs[i].data.fd);
    Field(varr, 2 * i + 1) = Val_int(fl);
  }
  return Val_int(n);
}

CAMLprim value tml_epoll_close(value vep)
{
  close(Int_val(vep));
  return Val_unit;
}

#else /* !__linux__ */

CAMLprim value tml_epoll_create(value vunit)
{
  (void)vunit;
  return Val_int(-1);
}

CAMLprim value tml_epoll_ctl(value vep, value vop, value vfd, value vread,
                             value vwrite)
{
  (void)vep; (void)vop; (void)vfd; (void)vread; (void)vwrite;
  return Val_int(-1);
}

CAMLprim value tml_epoll_wait(value vep, value vtimeout_ms, value varr)
{
  (void)vep; (void)vtimeout_ms; (void)varr;
  return Val_int(-1);
}

CAMLprim value tml_epoll_close(value vep)
{
  (void)vep;
  return Val_unit;
}

#endif /* __linux__ */

#include <sys/resource.h>

/* Best-effort: raise RLIMIT_NOFILE to at least [want] (trying the hard
   limit too, which succeeds when running as root), returning the soft
   limit actually in effect. */
CAMLprim value tml_raise_nofile(value vwant)
{
  struct rlimit rl;
  rlim_t want = (rlim_t)Long_val(vwant);
  if (getrlimit(RLIMIT_NOFILE, &rl) != 0) return Val_long(-1);
  if (rl.rlim_cur < want) {
    struct rlimit try_rl = rl;
    try_rl.rlim_cur = want;
    if (try_rl.rlim_max != RLIM_INFINITY && try_rl.rlim_max < want)
      try_rl.rlim_max = want;
    if (setrlimit(RLIMIT_NOFILE, &try_rl) != 0) {
      /* could not touch the hard limit: settle for soft = hard */
      try_rl = rl;
      try_rl.rlim_cur = rl.rlim_max;
      setrlimit(RLIMIT_NOFILE, &try_rl);
    }
    if (getrlimit(RLIMIT_NOFILE, &rl) != 0) return Val_long(-1);
  }
  if (rl.rlim_cur == RLIM_INFINITY) return Val_long(1 << 24);
  return Val_long((long)rl.rlim_cur);
}
