let version = 1
let default_max_frame = 16 * 1024 * 1024

exception Protocol_error of string
exception Peer_closed of string

let proto fmt = Printf.ksprintf (fun m -> raise (Protocol_error m)) fmt
let peer fmt = Printf.ksprintf (fun m -> raise (Peer_closed m)) fmt

(* ------------------------------ JSON ------------------------------ *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

(* ---------------------------- output buffer ------------------------ *)

(* A growable byte window with a consumable front — the server's
   per-connection write queue.  Frames are rendered straight into it
   ([frame_into] below) and [Unix.write] reads straight out of it via
   [peek]/[consume], so a reply body is never materialised as an
   intermediate frame string.  The live window is buf.[head..head+len);
   appends go through [ensure], which compacts (slides the window to the
   front) before growing, same as {!Decoder.ensure_space}. *)
module Obuf = struct
  type t = { mutable buf : Bytes.t; mutable head : int; mutable len : int }

  let create ?(initial = 4096) () =
    { buf = Bytes.create (max 16 initial); head = 0; len = 0 }

  let length t = t.len

  let clear t =
    t.head <- 0;
    t.len <- 0

  let ensure t n =
    if t.head > 0 && t.head + t.len + n > Bytes.length t.buf then begin
      Bytes.blit t.buf t.head t.buf 0 t.len;
      t.head <- 0
    end;
    if t.len + n > Bytes.length t.buf then begin
      let cap = ref (Bytes.length t.buf) in
      while t.len + n > !cap do
        cap := !cap * 2
      done;
      let nb = Bytes.create !cap in
      Bytes.blit t.buf t.head nb 0 t.len;
      t.buf <- nb;
      t.head <- 0
    end

  let add_char t c =
    ensure t 1;
    Bytes.unsafe_set t.buf (t.head + t.len) c;
    t.len <- t.len + 1

  let add_string t s =
    let n = String.length s in
    ensure t n;
    Bytes.blit_string s 0 t.buf (t.head + t.len) n;
    t.len <- t.len + n

  let add_substring t s off n =
    ensure t n;
    Bytes.blit_string s off t.buf (t.head + t.len) n;
    t.len <- t.len + n

  (* Marks are window-relative offsets, not raw positions: [ensure] may
     compact or regrow (moving [head]) between reserve and patch.  A mark
     is only valid until the next [consume]/[clear]. *)
  let reserve_u32 t =
    let mark = t.len in
    ensure t 4;
    Bytes.set_int32_be t.buf (t.head + t.len) 0l;
    t.len <- t.len + 4;
    mark

  let patch_u32 t mark v =
    if mark < 0 || mark + 4 > t.len then invalid_arg "Wire.Obuf.patch_u32";
    Bytes.set_int32_be t.buf (t.head + mark) (Int32.of_int v)

  let contents t = Bytes.sub_string t.buf t.head t.len

  let peek t = (t.buf, t.head, t.len)

  let consume t n =
    if n < 0 || n > t.len then invalid_arg "Wire.Obuf.consume";
    t.head <- t.head + n;
    t.len <- t.len - n;
    if t.len = 0 then t.head <- 0
end

(* Escape by blitting runs of clean characters rather than appending one
   char at a time — frames carry multi-KB model texts, and the serving
   core renders one on every submit round-trip. *)
let escape_into ob s =
  let n = String.length s in
  (* unsafe_get: [i] is always < [n] here, and this loop visits every
     byte of every model text on the wire *)
  let needs_escape c = c = '"' || c = '\\' || Char.code c < 0x20 in
  let rec go start i =
    if i >= n then (if i > start then Obuf.add_substring ob s start (i - start))
    else if not (needs_escape (String.unsafe_get s i)) then go start (i + 1)
    else begin
      if i > start then Obuf.add_substring ob s start (i - start);
      (match s.[i] with
       | '"' -> Obuf.add_string ob "\\\""
       | '\\' -> Obuf.add_string ob "\\\\"
       | '\n' -> Obuf.add_string ob "\\n"
       | '\r' -> Obuf.add_string ob "\\r"
       | '\t' -> Obuf.add_string ob "\\t"
       | c -> Obuf.add_string ob (Printf.sprintf "\\u%04x" (Char.code c)));
      go (i + 1) (i + 1)
    end
  in
  go 0 0

let rec render_into ob = function
  | Null -> Obuf.add_string ob "null"
  | Bool b -> Obuf.add_string ob (if b then "true" else "false")
  | Num f ->
    if Float.is_integer f && Float.abs f < 1e15 then
      (* string_of_int, not sprintf "%.0f": ids and sizes render on every
         frame, and format-string interpretation costs ~1us a call *)
      Obuf.add_string ob (string_of_int (int_of_float f))
    else if Float.is_finite f then
      Obuf.add_string ob (Printf.sprintf "%.17g" f)
    else Obuf.add_string ob "null"
  | Str s ->
    Obuf.add_char ob '"';
    escape_into ob s;
    Obuf.add_char ob '"'
  | Arr xs ->
    Obuf.add_char ob '[';
    List.iteri
      (fun i x ->
         if i > 0 then Obuf.add_char ob ',';
         render_into ob x)
      xs;
    Obuf.add_char ob ']'
  | Obj fields ->
    Obuf.add_char ob '{';
    List.iteri
      (fun i (k, v) ->
         if i > 0 then Obuf.add_char ob ',';
         Obuf.add_char ob '"';
         escape_into ob k;
         Obuf.add_string ob "\":";
         render_into ob v)
      fields;
    Obuf.add_char ob '}'

let render j =
  let ob = Obuf.create ~initial:256 () in
  render_into ob j;
  Obuf.contents ob

(* Render one length-prefixed frame directly into [ob]: reserve the
   4-byte header, render the body behind it, patch the length in.
   Returns the whole frame's size (header included). *)
let frame_into ob j =
  let mark = Obuf.reserve_u32 ob in
  let before = Obuf.length ob in
  render_into ob j;
  let body_len = Obuf.length ob - before in
  Obuf.patch_u32 ob mark body_len;
  4 + body_len

(* A single-pass recursive-descent parser.  Errors carry the byte offset
   so a corrupt frame is diagnosable from the error message alone. *)
let parse (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = proto "JSON: %s at byte %d" msg !pos in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let utf8_encode buf code =
    if code < 0x80 then Buffer.add_char buf (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
  in
  (* Runs of plain characters are scanned and blitted in one go; a
     string with no escapes at all is a single [String.sub].  Model
     texts arrive as one multi-KB string per submit, so this is the
     decoder's hottest path. *)
  let scan_plain () =
    (* unsafe_get under the [i < n] guard; a local recursion on an
       unboxed int, not a ref, so the scan is a few instructions per
       byte of model text *)
    let rec scan i =
      if i >= n then i
      else
        let c = String.unsafe_get s i in
        if c <> '"' && c <> '\\' && Char.code c >= 0x20 then scan (i + 1)
        else i
    in
    scan !pos
  in
  let parse_string () =
    expect '"';
    let start = !pos in
    let stop = scan_plain () in
    if stop < n && s.[stop] = '"' then begin
      pos := stop + 1;
      String.sub s start (stop - start)
    end
    else begin
      (* sized to the rest of the input, not the first clean run: an
         escaped model text fills it in one pass with no regrows *)
      let buf = Buffer.create (n - start + 16) in
      Buffer.add_substring buf s start (stop - start);
      pos := stop;
      let rec loop () =
        match peek () with
        | None -> fail "unterminated string"
        | Some '"' ->
          advance ();
          Buffer.contents buf
        | Some '\\' ->
          advance ();
          (match peek () with
           | Some '"' -> Buffer.add_char buf '"'; advance ()
           | Some '\\' -> Buffer.add_char buf '\\'; advance ()
           | Some '/' -> Buffer.add_char buf '/'; advance ()
           | Some 'b' -> Buffer.add_char buf '\b'; advance ()
           | Some 'f' -> Buffer.add_char buf '\012'; advance ()
           | Some 'n' -> Buffer.add_char buf '\n'; advance ()
           | Some 'r' -> Buffer.add_char buf '\r'; advance ()
           | Some 't' -> Buffer.add_char buf '\t'; advance ()
           | Some 'u' ->
             advance ();
             if !pos + 4 > n then fail "truncated \\u escape";
             let hex = String.sub s !pos 4 in
             (match int_of_string_opt ("0x" ^ hex) with
              | Some code ->
                pos := !pos + 4;
                utf8_encode buf code
              | None -> fail "bad \\u escape")
           | _ -> fail "bad escape");
          loop ()
        | Some c when Char.code c < 0x20 -> fail "raw control char in string"
        | Some _ ->
          let st = !pos in
          let stop = scan_plain () in
          Buffer.add_substring buf s st (stop - st);
          pos := stop;
          loop ()
      in
      loop ()
    end
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    let slice = String.sub s start (!pos - start) in
    match float_of_string_opt slice with
    | Some f -> Num f
    | None -> fail (Printf.sprintf "bad number %S" slice)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> Str (parse_string ())
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Arr []
      end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        Arr (items [])
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields ((k, v) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((k, v) :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        Obj (fields [])
      end
    | Some c -> fail (Printf.sprintf "unexpected '%c'" c)
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

(* ---------------------------- accessors --------------------------- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let get key j =
  match member key j with
  | Some v -> v
  | None -> proto "missing field %S" key

let opt key j =
  match member key j with Some Null | None -> None | some -> some

let to_str field = function
  | Str s -> s
  | _ -> proto "field %S: expected a string" field

let to_num field = function
  | Num f -> f
  | _ -> proto "field %S: expected a number" field

let to_int field j =
  let f = to_num field j in
  if Float.is_integer f then int_of_float f
  else proto "field %S: expected an integer" field

let to_bool field = function
  | Bool b -> b
  | _ -> proto "field %S: expected a bool" field

let to_arr field = function
  | Arr xs -> xs
  | _ -> proto "field %S: expected an array" field

let str_list field j = List.map (to_str field) (to_arr field j)
let num_list field j = List.map (to_num field) (to_arr field j)

(* ----------------------------- framing ---------------------------- *)

(* Frames are a 4-byte big-endian payload length followed by that many
   bytes of JSON.  Reads distinguish a quiet socket (`Idle]: the read
   deadline expired with no bytes of the next frame yet — the caller can
   poll a stop flag and retry) from a mid-frame stall (a peer that went
   silent halfway through a frame is a protocol error). *)

let rec read_part fd buf off len =
  if len = 0 then `Done
  else
    match Unix.read fd buf off len with
    | 0 -> `Closed (off > 0)
    | n -> read_part fd buf (off + n) (len - n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_part fd buf off len
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      `Stalled (off > 0)
    | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> `Closed (off > 0)

let read_frame ?(max_frame = default_max_frame) fd =
  let hdr = Bytes.create 4 in
  match read_part fd hdr 0 4 with
  | `Closed false -> `Eof
  | `Closed true -> peer "connection closed mid-frame"
  | `Stalled false -> `Idle
  | `Stalled true -> proto "read deadline exceeded mid-frame"
  | `Done ->
    let len = Int32.to_int (Bytes.get_int32_be hdr 0) in
    if len < 0 || len > max_frame then
      proto "frame of %d bytes exceeds limit %d" len max_frame;
    let payload = Bytes.create len in
    (match read_part fd payload 0 len with
     | `Done -> `Frame (parse (Bytes.unsafe_to_string payload))
     | `Closed _ -> peer "connection closed mid-frame"
     | `Stalled _ -> proto "read deadline exceeded mid-frame")

(* ----------------------- incremental decoding ---------------------- *)

module Decoder = struct
  type state =
    | Header  (* accumulating the 4-byte length prefix *)
    | Body of int  (* expecting this many payload bytes *)
    | Skip of int  (* discarding the body of an oversized frame *)

  type t = {
    max_frame : int;
    mutable buf : Bytes.t;  (* live window is buf.[head .. head+len) *)
    mutable head : int;
    mutable len : int;
    mutable state : state;
  }

  let create ?(max_frame = default_max_frame) () =
    { max_frame; buf = Bytes.create 4096; head = 0; len = 0; state = Header }

  let buffered t = t.len

  let mid_frame t = t.len > 0 || t.state <> Header

  let ensure_space t n =
    if t.head > 0 && t.head + t.len + n > Bytes.length t.buf then begin
      (* compact: slide the window to the front before considering growth *)
      Bytes.blit t.buf t.head t.buf 0 t.len;
      t.head <- 0
    end;
    if t.len + n > Bytes.length t.buf then begin
      let cap = ref (Bytes.length t.buf) in
      while t.len + n > !cap do
        cap := !cap * 2
      done;
      let nb = Bytes.create !cap in
      Bytes.blit t.buf t.head nb 0 t.len;
      t.buf <- nb;
      t.head <- 0
    end

  let feed t src off n =
    if off < 0 || n < 0 || off + n > Bytes.length src then
      invalid_arg "Wire.Decoder.feed";
    (* an oversized body is discarded as it arrives, never buffered; the
       skip counter is consumed here when the buffer is already drained
       (the common case) and in [next] otherwise *)
    let off, n =
      match t.state with
      | Skip k when t.len = 0 ->
        let eat = min k n in
        t.state <- (if eat = k then Header else Skip (k - eat));
        (off + eat, n - eat)
      | _ -> (off, n)
    in
    if n > 0 then begin
      ensure_space t n;
      Bytes.blit src off t.buf (t.head + t.len) n;
      t.len <- t.len + n
    end

  (* One step of the frame state machine.  [`Oversized] is returned once
     per oversized frame, when its header is decoded; the connection can
     keep going — the body is skipped without being buffered and the
     stream resumes at the next frame boundary.  Malformed JSON inside a
     well-delimited frame raises {!Protocol_error} with the decoder
     already advanced past the frame, so the caller may likewise answer
     an error and continue.  A negative length prefix also raises, but
     leaves the stream position meaningless — the caller must close. *)
  let rec next t =
    match t.state with
    | Skip k ->
      let eat = min k t.len in
      t.head <- t.head + eat;
      t.len <- t.len - eat;
      if eat = k then begin
        t.state <- Header;
        next t
      end
      else begin
        t.state <- Skip (k - eat);
        `Await
      end
    | Header ->
      if t.len < 4 then `Await
      else begin
        let flen = Int32.to_int (Bytes.get_int32_be t.buf t.head) in
        t.head <- t.head + 4;
        t.len <- t.len - 4;
        if flen < 0 then proto "negative frame length %d" flen
        else if flen > t.max_frame then begin
          t.state <- Skip flen;
          `Oversized flen
        end
        else begin
          t.state <- Body flen;
          next t
        end
      end
    | Body flen ->
      if t.len < flen then `Await
      else begin
        let payload = Bytes.sub_string t.buf t.head flen in
        t.head <- t.head + flen;
        t.len <- t.len - flen;
        t.state <- Header;
        `Frame (parse payload)
      end

  (* Peer closed the stream: truncation at {e any} offset — inside the
     length prefix, mid-body, or mid-skip — is uniformly {!Peer_closed}.
     Only a close exactly on a frame boundary is clean. *)
  let finish t =
    if mid_frame t then peer "connection closed mid-frame"
end

let rec write_part fd buf off len =
  if len > 0 then
    match Unix.write fd buf off len with
    | n -> write_part fd buf (off + n) (len - n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_part fd buf off len
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      proto "write deadline exceeded"
    | exception Unix.Unix_error (Unix.EPIPE, _, _) ->
      peer "peer closed connection"
    | exception Unix.Unix_error (Unix.ECONNRESET, _, _) ->
      peer "connection reset by peer"

let write_frame fd j =
  let body = render j in
  let len = String.length body in
  let frame = Bytes.create (4 + len) in
  Bytes.set_int32_be frame 0 (Int32.of_int len);
  Bytes.blit_string body 0 frame 4 len;
  write_part fd frame 0 (4 + len)

let write_frames fd js =
  let buf = Buffer.create 4096 in
  let hdr = Bytes.create 4 in
  List.iter
    (fun j ->
       let body = render j in
       Bytes.set_int32_be hdr 0 (Int32.of_int (String.length body));
       Buffer.add_bytes buf hdr;
       Buffer.add_string buf body)
    js;
  let b = Buffer.to_bytes buf in
  write_part fd b 0 (Bytes.length b)

(* ----------------------------- errors ----------------------------- *)

type err = { kind : string; message : string; transient : bool }

let err_kind_name = function
  | Tml_error.Solver_nonconvergence _ -> "solver-nonconvergence"
  | Tml_error.Timeout _ -> "timeout"
  | Tml_error.Cache_race _ -> "cache-race"
  | Tml_error.Injected_fault _ -> "injected-fault"
  | Tml_error.Overloaded _ -> "overloaded"
  | Tml_error.Unreachable _ -> "unreachable"
  | Tml_error.Malformed_model _ -> "malformed-model"
  | Tml_error.Empty_feasible_box _ -> "empty-feasible-box"
  | Tml_error.Internal _ -> "internal"

let err_of_exn = function
  | Tml_error.Error k ->
    {
      kind = err_kind_name k;
      message = Tml_error.to_string k;
      transient = Tml_error.severity k = Tml_error.Transient;
    }
  | Protocol_error m -> { kind = "protocol"; message = m; transient = false }
  | Peer_closed m -> { kind = "unreachable"; message = m; transient = true }
  | Dtmc_io.Parse_error m | Mdp_io.Parse_error m | Trace_io.Parse_error m
  | Spec_io.Parse_error m ->
    { kind = "bad-request"; message = m; transient = false }
  | e ->
    { kind = "internal"; message = Printexc.to_string e; transient = false }

let err_to_json e =
  Obj
    [
      ("kind", Str e.kind);
      ("message", Str e.message);
      ("transient", Bool e.transient);
    ]

let err_of_json j =
  {
    kind = to_str "kind" (get "kind" j);
    message = to_str "message" (get "message" j);
    transient = to_bool "transient" (get "transient" j);
  }

(* ---------------------------- job codecs --------------------------- *)

type job_request =
  | Check_req of { model : string; phi : string }
  | Model_repair_req of {
      model : string;
      phi : string;
      variables : string list;
      deltas : string list;
      starts : int;
      backend : string;
    }
  | Data_repair_req of {
      states : int;
      init : int;
      labels : (string * int list) list;
      rewards : float list option;
      phi : string;
      traces : string;
      max_drop : float;
      pinned : string list;
      starts : int;
      backend : string;
    }
  | Reward_repair_req of {
      mdp : string;
      theta : float list;
      constraints : (int * string * string * float) list;
      gamma : float;
      starts : int;
    }
  | Pipeline_req of {
      states : int;
      init : int;
      labels : (string * int list) list;
      rewards : float list option;
      model_spec : (string list * string list) option;
      data_spec : (float * string list) option;
      traces : string;
      phi : string;
    }

let kind_of_job_request = function
  | Check_req _ -> "check"
  | Model_repair_req _ -> "model-repair"
  | Data_repair_req _ -> "data-repair"
  | Reward_repair_req _ -> "reward-repair"
  | Pipeline_req _ -> "pipeline"

let labels_to_json labels =
  Arr
    (List.map
       (fun (name, states) ->
          Arr [ Str name; Arr (List.map (fun s -> Num (float_of_int s)) states) ])
       labels)

let labels_of_json j =
  List.map
    (function
      | Arr [ Str name; states ] ->
        (name, List.map (to_int "labels") (to_arr "labels" states))
      | _ -> proto "field \"labels\": expected [name, [states...]] pairs")
    (to_arr "labels" j)

let rewards_to_json = function
  | None -> Null
  | Some rs -> Arr (List.map (fun r -> Num r) rs)

let rewards_of_json j =
  Option.map (num_list "rewards") (opt "rewards" j)

let job_request_to_json = function
  | Check_req { model; phi } ->
    Obj [ ("kind", Str "check"); ("model", Str model); ("phi", Str phi) ]
  | Model_repair_req { model; phi; variables; deltas; starts; backend } ->
    Obj
      [
        ("kind", Str "model-repair");
        ("model", Str model);
        ("phi", Str phi);
        ("variables", Arr (List.map (fun v -> Str v) variables));
        ("deltas", Arr (List.map (fun d -> Str d) deltas));
        ("starts", Num (float_of_int starts));
        ("backend", Str backend);
      ]
  | Data_repair_req
      {
        states;
        init;
        labels;
        rewards;
        phi;
        traces;
        max_drop;
        pinned;
        starts;
        backend;
      } ->
    Obj
      [
        ("kind", Str "data-repair");
        ("states", Num (float_of_int states));
        ("init", Num (float_of_int init));
        ("labels", labels_to_json labels);
        ("rewards", rewards_to_json rewards);
        ("phi", Str phi);
        ("traces", Str traces);
        ("max_drop", Num max_drop);
        ("pinned", Arr (List.map (fun p -> Str p) pinned));
        ("starts", Num (float_of_int starts));
        ("backend", Str backend);
      ]
  | Reward_repair_req { mdp; theta; constraints; gamma; starts } ->
    Obj
      [
        ("kind", Str "reward-repair");
        ("mdp", Str mdp);
        ("theta", Arr (List.map (fun t -> Num t) theta));
        ( "constraints",
          Arr
            (List.map
               (fun (state, better, worse, margin) ->
                  Obj
                    [
                      ("state", Num (float_of_int state));
                      ("better", Str better);
                      ("worse", Str worse);
                      ("margin", Num margin);
                    ])
               constraints) );
        ("gamma", Num gamma);
        ("starts", Num (float_of_int starts));
      ]
  | Pipeline_req
      { states; init; labels; rewards; model_spec; data_spec; traces; phi } ->
    Obj
      [
        ("kind", Str "pipeline");
        ("states", Num (float_of_int states));
        ("init", Num (float_of_int init));
        ("labels", labels_to_json labels);
        ("rewards", rewards_to_json rewards);
        ( "model",
          match model_spec with
          | None -> Null
          | Some (variables, deltas) ->
            Obj
              [
                ("variables", Arr (List.map (fun v -> Str v) variables));
                ("deltas", Arr (List.map (fun d -> Str d) deltas));
              ] );
        ( "data",
          match data_spec with
          | None -> Null
          | Some (max_drop, pinned) ->
            Obj
              [
                ("max_drop", Num max_drop);
                ("pinned", Arr (List.map (fun p -> Str p) pinned));
              ] );
        ("traces", Str traces);
        ("phi", Str phi);
      ]

let job_request_of_json j =
  let str key = to_str key (get key j) in
  let int key = to_int key (get key j) in
  let num key = to_num key (get key j) in
  (* optional on the wire so protocol-1 clients that predate the region
     backend keep working; absent means the NLP path *)
  let backend () =
    match opt "backend" j with Some b -> to_str "backend" b | None -> "nlp"
  in
  match str "kind" with
  | "check" -> Check_req { model = str "model"; phi = str "phi" }
  | "model-repair" ->
    Model_repair_req
      {
        model = str "model";
        phi = str "phi";
        variables = str_list "variables" (get "variables" j);
        deltas = str_list "deltas" (get "deltas" j);
        starts = int "starts";
        backend = backend ();
      }
  | "data-repair" ->
    Data_repair_req
      {
        states = int "states";
        init = int "init";
        labels = labels_of_json (get "labels" j);
        rewards = rewards_of_json j;
        phi = str "phi";
        traces = str "traces";
        max_drop = num "max_drop";
        pinned = str_list "pinned" (get "pinned" j);
        starts = int "starts";
        backend = backend ();
      }
  | "reward-repair" ->
    Reward_repair_req
      {
        mdp = str "mdp";
        theta = num_list "theta" (get "theta" j);
        constraints =
          List.map
            (fun c ->
               ( to_int "state" (get "state" c),
                 to_str "better" (get "better" c),
                 to_str "worse" (get "worse" c),
                 to_num "margin" (get "margin" c) ))
            (to_arr "constraints" (get "constraints" j));
        gamma = num "gamma";
        starts = int "starts";
      }
  | "pipeline" ->
    Pipeline_req
      {
        states = int "states";
        init = int "init";
        labels = labels_of_json (get "labels" j);
        rewards = rewards_of_json j;
        model_spec =
          Option.map
            (fun m ->
               ( str_list "variables" (get "variables" m),
                 str_list "deltas" (get "deltas" m) ))
            (opt "model" j);
        data_spec =
          Option.map
            (fun d ->
               ( to_num "max_drop" (get "max_drop" d),
                 str_list "pinned" (get "pinned" d) ))
            (opt "data" j);
        traces = str "traces";
        phi = str "phi";
      }
  | k -> proto "unknown job kind %S" k

(* Decode the textual payload into a real [Job.t] with the lib/io parsers.
   Any parse failure escapes as that parser's own exception; the router
   maps it to a non-transient [bad-request] wire error. *)
let parse_backend b =
  match Repair_backend.of_string b with
  | Ok backend -> backend
  | Error msg -> proto "field \"backend\": %s" msg

let job_of_request = function
  | Check_req { model; phi } ->
    Job.Check { model = Dtmc_io.parse model; phi = Pctl_parser.parse phi }
  | Model_repair_req { model; phi; variables; deltas; starts; backend } ->
    Job.Model_repair
      {
        model = Dtmc_io.parse model;
        phi = Pctl_parser.parse phi;
        spec =
          {
            Model_repair.variables = List.map Spec_io.parse_variable variables;
            deltas = List.map Spec_io.parse_delta deltas;
          };
        starts;
        backend = parse_backend backend;
      }
  | Data_repair_req
      {
        states;
        init;
        labels;
        rewards;
        phi;
        traces;
        max_drop;
        pinned;
        starts;
        backend;
      } ->
    Job.Data_repair
      {
        n = states;
        init;
        labels;
        rewards =
          Option.map
            (fun rs -> Array.of_list (List.map Ratio.of_float rs))
            rewards;
        phi = Pctl_parser.parse phi;
        spec = Data_repair.spec ~max_drop ~pinned (Trace_io.parse traces);
        starts;
        backend = parse_backend backend;
      }
  | Reward_repair_req { mdp; theta; constraints; gamma; starts } ->
    Job.Reward_repair
      {
        mdp = Mdp_io.parse mdp;
        theta = Array.of_list theta;
        constraints =
          List.map
            (fun (state, better, worse, margin) ->
               { Reward_repair.state; better; worse; margin })
            constraints;
        gamma;
        starts;
      }
  | Pipeline_req
      { states; init; labels; rewards; model_spec; data_spec; traces; phi } ->
    Job.Pipeline
      {
        n = states;
        init;
        labels;
        rewards =
          Option.map
            (fun rs -> Array.of_list (List.map Ratio.of_float rs))
            rewards;
        model_spec =
          Option.map
            (fun (variables, deltas) ->
               {
                 Model_repair.variables =
                   List.map Spec_io.parse_variable variables;
                 deltas = List.map Spec_io.parse_delta deltas;
               })
            model_spec;
        data_spec =
          Option.map
            (fun (max_drop, pinned) ->
               Data_repair.spec ~max_drop ~pinned (Trace_io.parse traces))
            data_spec;
        groups = Trace_io.parse traces;
        phi = Pctl_parser.parse phi;
      }

(* ---------------------------- watch codecs ------------------------- *)

type watch_spec = {
  states : int;
  init : int;
  labels : (string * int list) list;
  rewards : float list option;
  phi : string;
  max_drop : float;
  pinned : string list;
  starts : int;
  backend : string;
}

let watch_spec_to_json (s : watch_spec) =
  Obj
    [
      ("states", Num (float_of_int s.states));
      ("init", Num (float_of_int s.init));
      ("labels", labels_to_json s.labels);
      ("rewards", rewards_to_json s.rewards);
      ("phi", Str s.phi);
      ("max_drop", Num s.max_drop);
      ("pinned", Arr (List.map (fun p -> Str p) s.pinned));
      ("starts", Num (float_of_int s.starts));
      ("backend", Str s.backend);
    ]

let watch_spec_of_json j =
  {
    states = to_int "states" (get "states" j);
    init = to_int "init" (get "init" j);
    labels = labels_of_json (get "labels" j);
    rewards = rewards_of_json j;
    phi = to_str "phi" (get "phi" j);
    max_drop = to_num "max_drop" (get "max_drop" j);
    pinned = str_list "pinned" (get "pinned" j);
    starts = to_int "starts" (get "starts" j);
    backend =
      (match opt "backend" j with
       | Some b -> to_str "backend" b
       | None -> "nlp");
  }

(* The Data Repair job a violated watch submits: the accumulated traces
   in canonical textual form, under the watch's registered spec.  A
   batch submit of the concatenated trace text under the same spec
   decodes to the same [Job.t] — equal digests, byte-identical report. *)
let job_request_of_watch (s : watch_spec) ~traces =
  Data_repair_req
    {
      states = s.states;
      init = s.init;
      labels = s.labels;
      rewards = s.rewards;
      phi = s.phi;
      traces;
      max_drop = s.max_drop;
      pinned = s.pinned;
      starts = s.starts;
      backend = s.backend;
    }

(* ---------------------------- envelopes ---------------------------- *)

type request =
  | Submit of job_request
  | Poll of string
  | Wait of string * float option
  | Cancel of string
  | Stats
  | Ping
  | Put_report of { job : string; report : string }
  | Fleet_status
  | Drain_node of string
  | Watch_op of { watch : string; spec : watch_spec option; from_seq : int option }
  | Append_chunk of { watch : string; chunk : string }
  | Unwatch of string

type job_state =
  | Job_pending
  | Job_done of string
  | Job_failed of err
  | Job_cancelled
  | Job_timed_out

type response =
  | Accepted of { job : string; cached : bool }
  | Status of { job : string; state : job_state }
  | Cancelled of { job : string; cancelled : bool }
  | Stats_reply of json
  | Pong
  | Error_reply of err
  | Stored of { job : string }
  | Fleet_reply of json
  | Drained of { node : string; pending : int }
  | Watched of { watch : string; seq : int; created : bool }
  | Appended of {
      watch : string;
      lines : int;
      support_changed : bool;
      value : float option;
      violated : bool;
      job : string option;
      recheck : string;
    }
  | Unwatched of { watch : string; existed : bool }
  | Annotated of (string * json) list * response

let envelope id fields = Obj (("v", Num (float_of_int version)) :: ("id", Num (float_of_int id)) :: fields)

let request_to_json ~id = function
  | Submit jr ->
    envelope id [ ("op", Str "submit"); ("job", job_request_to_json jr) ]
  | Poll job -> envelope id [ ("op", Str "poll"); ("job", Str job) ]
  | Wait (job, timeout_s) ->
    envelope id
      (("op", Str "wait") :: ("job", Str job)
       ::
       (match timeout_s with
        | None -> []
        | Some t -> [ ("timeout_s", Num t) ]))
  | Cancel job -> envelope id [ ("op", Str "cancel"); ("job", Str job) ]
  | Stats -> envelope id [ ("op", Str "stats") ]
  | Ping -> envelope id [ ("op", Str "ping") ]
  | Put_report { job; report } ->
    envelope id
      [ ("op", Str "put-report"); ("job", Str job); ("report", Str report) ]
  | Fleet_status -> envelope id [ ("op", Str "fleet") ]
  | Drain_node node ->
    envelope id [ ("op", Str "drain"); ("node", Str node) ]
  | Watch_op { watch; spec; from_seq } ->
    envelope id
      (("op", Str "watch") :: ("watch", Str watch)
       :: ((match spec with
            | None -> []
            | Some s -> [ ("spec", watch_spec_to_json s) ])
           @ (match from_seq with
              | None -> []
              | Some s -> [ ("from_seq", Num (float_of_int s)) ])))
  | Append_chunk { watch; chunk } ->
    envelope id
      [ ("op", Str "append-chunk"); ("watch", Str watch); ("chunk", Str chunk) ]
  | Unwatch watch ->
    envelope id [ ("op", Str "unwatch"); ("watch", Str watch) ]

let check_version j =
  match opt "v" j with
  | Some v ->
    let v = to_int "v" v in
    if v <> version then proto "unsupported protocol version %d (want %d)" v version
  | None -> proto "missing field \"v\""

let request_of_json j =
  check_version j;
  let id = to_int "id" (get "id" j) in
  let req =
    match to_str "op" (get "op" j) with
    | "submit" -> Submit (job_request_of_json (get "job" j))
    | "poll" -> Poll (to_str "job" (get "job" j))
    | "wait" ->
      Wait
        ( to_str "job" (get "job" j),
          Option.map (to_num "timeout_s") (opt "timeout_s" j) )
    | "cancel" -> Cancel (to_str "job" (get "job" j))
    | "stats" -> Stats
    | "ping" -> Ping
    | "put-report" ->
      Put_report
        { job = to_str "job" (get "job" j);
          report = to_str "report" (get "report" j) }
    | "fleet" -> Fleet_status
    | "drain" -> Drain_node (to_str "node" (get "node" j))
    | "watch" ->
      Watch_op
        {
          watch = to_str "watch" (get "watch" j);
          spec = Option.map watch_spec_of_json (opt "spec" j);
          from_seq = Option.map (to_int "from_seq") (opt "from_seq" j);
        }
    | "append-chunk" ->
      Append_chunk
        {
          watch = to_str "watch" (get "watch" j);
          chunk = to_str "chunk" (get "chunk" j);
        }
    | "unwatch" -> Unwatch (to_str "watch" (get "watch" j))
    | op -> proto "unknown op %S" op
  in
  (id, req)

let state_fields = function
  | Job_pending -> [ ("status", Str "pending") ]
  | Job_done report -> [ ("status", Str "done"); ("report", Str report) ]
  | Job_failed e -> [ ("status", Str "failed"); ("error", err_to_json e) ]
  | Job_cancelled -> [ ("status", Str "cancelled") ]
  | Job_timed_out -> [ ("status", Str "timed-out") ]

let rec response_to_json ~id = function
  | Annotated (extra, resp) ->
    (* extra fields are purely informational (e.g. the coordinator's
       serving-node annotation): appended after the base envelope so
       protocol-1 decoders, which ignore unknown fields, are unaffected *)
    (match response_to_json ~id resp with
     | Obj fields ->
       let keys = List.map fst fields in
       Obj (fields @ List.filter (fun (k, _) -> not (List.mem k keys)) extra)
     | j -> j)
  | Stored { job } ->
    envelope id [ ("ok", Bool true); ("job", Str job); ("stored", Bool true) ]
  | Fleet_reply fleet -> envelope id [ ("ok", Bool true); ("fleet", fleet) ]
  | Drained { node; pending } ->
    envelope id
      [
        ("ok", Bool true);
        ("node", Str node);
        ("drained", Bool true);
        ("pending", Num (float_of_int pending));
      ]
  | Accepted { job; cached } ->
    envelope id
      [
        ("ok", Bool true);
        ("job", Str job);
        ("status", Str (if cached then "cached" else "queued"));
      ]
  | Status { job; state } ->
    envelope id (("ok", Bool true) :: ("job", Str job) :: state_fields state)
  | Cancelled { job; cancelled } ->
    envelope id
      [ ("ok", Bool true); ("job", Str job); ("cancelled", Bool cancelled) ]
  | Stats_reply stats -> envelope id [ ("ok", Bool true); ("stats", stats) ]
  | Pong -> envelope id [ ("ok", Bool true); ("pong", Bool true) ]
  | Error_reply e -> envelope id [ ("ok", Bool false); ("error", err_to_json e) ]
  | Watched { watch; seq; created } ->
    envelope id
      [
        ("ok", Bool true);
        ("watch", Str watch);
        ("seq", Num (float_of_int seq));
        ("created", Bool created);
      ]
  | Appended { watch; lines; support_changed; value; violated; job; recheck } ->
    envelope id
      ([
        ("ok", Bool true);
        ("watch", Str watch);
        ("lines", Num (float_of_int lines));
        ("support_changed", Bool support_changed);
        ("violated", Bool violated);
        ("recheck", Str recheck);
      ]
        @ (match value with None -> [] | Some v -> [ ("value", Num v) ])
        @ (match job with None -> [] | Some d -> [ ("job", Str d) ]))
  | Unwatched { watch; existed } ->
    envelope id
      [ ("ok", Bool true); ("watch", Str watch); ("existed", Bool existed) ]

let response_of_json j =
  check_version j;
  let id = to_int "id" (get "id" j) in
  let resp =
    if not (to_bool "ok" (get "ok" j)) then
      Error_reply (err_of_json (get "error" j))
    else if member "pong" j <> None then Pong
    else if member "stats" j <> None then Stats_reply (get "stats" j)
    else if member "fleet" j <> None then Fleet_reply (get "fleet" j)
    else if member "stored" j <> None then
      Stored { job = to_str "job" (get "job" j) }
    else if member "drained" j <> None then
      Drained
        {
          node = to_str "node" (get "node" j);
          pending = to_int "pending" (get "pending" j);
        }
    else if member "created" j <> None then
      Watched
        {
          watch = to_str "watch" (get "watch" j);
          seq = to_int "seq" (get "seq" j);
          created = to_bool "created" (get "created" j);
        }
    else if member "lines" j <> None then
      Appended
        {
          watch = to_str "watch" (get "watch" j);
          lines = to_int "lines" (get "lines" j);
          support_changed = to_bool "support_changed" (get "support_changed" j);
          value = Option.map (to_num "value") (opt "value" j);
          violated = to_bool "violated" (get "violated" j);
          job = Option.map (to_str "job") (opt "job" j);
          recheck = to_str "recheck" (get "recheck" j);
        }
    else if member "existed" j <> None then
      Unwatched
        {
          watch = to_str "watch" (get "watch" j);
          existed = to_bool "existed" (get "existed" j);
        }
    else if member "cancelled" j <> None then
      Cancelled
        {
          job = to_str "job" (get "job" j);
          cancelled = to_bool "cancelled" (get "cancelled" j);
        }
    else
      let job = to_str "job" (get "job" j) in
      match to_str "status" (get "status" j) with
      | "queued" -> Accepted { job; cached = false }
      | "cached" -> Accepted { job; cached = true }
      | "pending" -> Status { job; state = Job_pending }
      | "done" ->
        Status { job; state = Job_done (to_str "report" (get "report" j)) }
      | "failed" ->
        Status { job; state = Job_failed (err_of_json (get "error" j)) }
      | "cancelled" -> Status { job; state = Job_cancelled }
      | "timed-out" -> Status { job; state = Job_timed_out }
      | s -> proto "unknown status %S" s
  in
  (id, resp)

(* --------------------------- server push --------------------------- *)

(* Push frames are server-initiated: they carry correlation id 0 (which
   request ids never use — clients start at 1) and a ["push"] marker
   member, so a pre-watch protocol-1 client that checks ids before
   anything else can also detect and skip them via [is_push].  New push
   kinds extend the ["push"] member's value; unknown kinds must be
   skipped, same contract as unknown fields. *)

type notification = {
  watch : string;
  seq : int;
  event : string;
  value : float option;
  job : string option;
  report : string option;
  error : err option;
}

let push_id = 0

let is_push j =
  match member "push" j with Some (Str _) -> true | _ -> false

let notification_to_json (n : notification) =
  envelope push_id
    ([
      ("push", Str "notification");
      ("watch", Str n.watch);
      ("seq", Num (float_of_int n.seq));
      ("event", Str n.event);
    ]
      @ (match n.value with None -> [] | Some v -> [ ("value", Num v) ])
      @ (match n.job with None -> [] | Some d -> [ ("job", Str d) ])
      @ (match n.report with None -> [] | Some r -> [ ("report", Str r) ])
      @ (match n.error with None -> [] | Some e -> [ ("error", err_to_json e) ]))

let notification_of_json j =
  check_version j;
  (match member "push" j with
   | Some (Str "notification") -> ()
   | _ -> proto "not a notification push frame");
  {
    watch = to_str "watch" (get "watch" j);
    seq = to_int "seq" (get "seq" j);
    event = to_str "event" (get "event" j);
    value = Option.map (to_num "value") (opt "value" j);
    job = Option.map (to_str "job") (opt "job" j);
    report = Option.map (to_str "report") (opt "report" j);
    error = Option.map err_of_json (opt "error" j);
  }
