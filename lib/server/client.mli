(** A synchronous client for the repair service.

    One connection, one request in flight at a time: every call is a
    blocking round-trip that checks the response's correlation id.
    Server-reported failures raise {!Remote_error} carrying the typed
    wire error — match on [err.transient] (e.g. the ["overloaded"] shed
    signal) to decide whether to back off and resubmit. *)

type addr = [ `Unix of string | `Tcp of string * int ]

exception Remote_error of Wire.err
(** The server answered with an [Error_reply]. *)

type t

val connect : ?max_frame:int -> addr -> t
(** @raise Unix.Unix_error when the connection is refused. *)

val close : t -> unit
(** Idempotent. *)

val with_client : ?max_frame:int -> addr -> (t -> 'a) -> 'a
(** [connect], run, always [close]. *)

val rpc : t -> Wire.request -> Wire.response
(** Raw round-trip; [Error_reply] is returned, not raised.
    @raise Wire.Protocol_error on framing/id-correlation failures. *)

val ping : t -> unit

val submit : t -> Wire.job_request -> string * bool
(** [(digest, cached)] — the job id to poll/wait on, and whether the
    result was already served from the report cache. *)

val poll : t -> string -> Wire.job_state
(** Non-blocking status of a submitted job. *)

val wait : t -> ?timeout_s:float -> string -> Wire.job_state
(** Block (server-side) until the job settles or [timeout_s] expires —
    a timeout on a still-running job returns [Job_pending]. *)

val cancel : t -> string -> bool
(** [true] when the job was still pending and is now cancelled. *)

val stats : t -> Wire.json
(** The server runtime's instrumentation dump. *)

val run : t -> ?timeout_s:float -> Wire.job_request -> string * Wire.job_state
(** [submit] then [wait] — the one-shot convenience. *)
