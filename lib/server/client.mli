(** A synchronous client for the repair service.

    One connection, one request in flight at a time: every call is a
    blocking round-trip that checks the response's correlation id.
    Server-reported failures raise {!Remote_error} carrying the typed
    wire error — match on [err.transient] (e.g. the ["overloaded"] shed
    signal) to decide whether to back off and resubmit.

    Peer death — connection refused, reset, broken pipe, a close
    mid-frame or before the reply — raises a typed {e transient}
    [Tml_error.Error (Unreachable _)] rather than a raw [Unix_error] or
    [Protocol_error], so fleet callers can re-route without string
    matching. *)

type addr = [ `Unix of string | `Tcp of string * int ]

val addr_of_string : string -> addr
(** Parse ["unix:PATH"], ["HOST:PORT"] or ["[HOST]:PORT"].  [HOST:PORT]
    splits on the {e last} colon, so bare IPv6 literals (["::1:7000"])
    work; the bracketed form disambiguates any host containing [':'] —
    or a TCP host literally named ["unix"].
    @raise Wire.Protocol_error on anything else. *)

val addr_to_string : addr -> string
(** Inverse of {!addr_of_string}; hosts containing [':'] render
    bracketed. *)

exception Remote_error of Wire.err
(** The server answered with an [Error_reply]. *)

type t

val connect : ?max_frame:int -> ?timeout_s:float -> addr -> t
(** [timeout_s] arms [SO_RCVTIMEO]/[SO_SNDTIMEO] on the socket — with it
    set, a stalled peer surfaces as a transient [Unreachable] instead of
    blocking forever (the coordinator's probe/RPC deadline).
    @raise Tml_error.Error
      ([Unreachable]) when the peer cannot be reached. *)

val close : t -> unit
(** Idempotent. *)

val with_client : ?max_frame:int -> ?timeout_s:float -> addr -> (t -> 'a) -> 'a
(** [connect], run, always [close]. *)

val connect_any : ?max_frame:int -> ?timeout_s:float -> addr list -> addr * t
(** First address that accepts a connection, tried in order.
    @raise Tml_error.Error when every address is unreachable (the last
    failure). *)

val with_any :
  ?max_frame:int -> ?timeout_s:float -> addr list -> (addr -> t -> 'a) -> 'a

val rpc : t -> Wire.request -> Wire.response
(** Raw round-trip; [Error_reply] is returned, not raised.
    @raise Tml_error.Error
      ([Unreachable], transient) when the peer dies mid-RPC.
    @raise Wire.Protocol_error on framing/id-correlation failures. *)

val pipeline :
  t ->
  ?on_reply:(int -> Wire.response -> unit) ->
  Wire.request list ->
  Wire.response list
(** Fire the whole request window in one write burst, then collect the
    replies, which the server sends back {e in request order} (it serves
    one request per connection at a time; pipelined frames queue in its
    decoder).  Returns responses in request order; [Error_reply]s are
    returned in place, not raised.  [on_reply i resp] fires as reply [i]
    is decoded — e.g. to timestamp completions.  Trades per-request
    latency for throughput: syscalls amortise across the window, so
    prefer this for bulk submit/wait traffic and {!rpc} for interactive
    calls.  Failure contract is {!rpc}'s. *)

val ping : t -> unit

val submit : t -> Wire.job_request -> string * bool
(** [(digest, cached)] — the job id to poll/wait on, and whether the
    result was already served from the report cache. *)

val poll : t -> string -> Wire.job_state
(** Non-blocking status of a submitted job. *)

val wait : t -> ?timeout_s:float -> string -> Wire.job_state
(** Block (server-side) until the job settles or [timeout_s] expires —
    a timeout on a still-running job returns [Job_pending]. *)

val cancel : t -> string -> bool
(** [true] when the job was still pending and is now cancelled. *)

val stats : t -> Wire.json
(** The server runtime's instrumentation dump. *)

val put_report : t -> digest:string -> report:string -> unit
(** Fleet replication: store a finished job's rendered report on the
    peer (servable there by poll/wait/submit on [digest]). *)

val fleet_status : t -> Wire.json
(** Coordinator-only: the per-node fleet snapshot. *)

val drain_node : t -> string -> int
(** Coordinator-only: drain the named node out of the ring; returns the
    number of its jobs still unfinished at the drain deadline (0 on a
    clean drain). *)

val run : t -> ?timeout_s:float -> Wire.job_request -> string * Wire.job_state
(** [submit] then [wait] — the one-shot convenience. *)

(** {1 Watches}

    Streaming subscriptions ([tml watch]).  A subscribed connection
    receives unsolicited server-push frames; {!rpc} and {!pipeline}
    skip them transparently before id correlation (routing them to the
    {!set_push_handler} callback when one is installed), so a plain
    protocol-1 client on a subscribed connection keeps working — the
    ignore-what-you-don't-understand contract. *)

type appended = {
  lines : int;  (** complete lines consumed from the chunk *)
  support_changed : bool;
  value : float option;
      (** the re-checked value; [None] when not yet checkable *)
  violated : bool;
  job : string option;  (** repair job digest, when a violation fired *)
  recheck : string;  (** ["cached"], ["eliminated"] or ["unavailable"] *)
}
(** The [Appended] reply payload. *)

val set_push_handler : t -> (Wire.json -> unit) -> unit
(** Observe server-push frames skipped by {!rpc}/{!pipeline} (decode
    with {!Wire.notification_of_json}).  Exceptions it raises are
    swallowed. *)

val watch : t -> ?spec:Wire.watch_spec -> ?from_seq:int -> string -> int * bool
(** Subscribe this connection to the named watch: [(seq, created)].
    [spec] creates the watch (or must match the existing one);
    [from_seq] replays the logged notifications with a larger seq —
    reconnect catch-up. *)

val append_chunk : t -> watch:string -> string -> appended
(** Fold one trace chunk into the watch and re-check the property. *)

val unwatch : t -> string -> bool
(** Unsubscribe; [true] when this connection was subscribed. *)

val follow :
  t ->
  ?on_idle:(unit -> [ `Continue | `Stop ]) ->
  (Wire.notification -> [ `Continue | `Stop ]) ->
  unit
(** Block reading notifications until the callback says [`Stop], the
    server closes, or [on_idle] (fired on the [connect ~timeout_s] read
    deadline) says stop.  Unknown push kinds are skipped. *)
