type t = {
  mutex : Mutex.t;
  max_pending : int;
  max_per_client : int;
  per_client : (int, int) Hashtbl.t;
  mutable pending : int;
  mutable shed : int;
}

type verdict = Admitted | Shed_queue_full | Shed_client_limit

let create ?(max_pending = 64) ?(max_per_client = 16) () =
  if max_pending < 1 then invalid_arg "Admission.create: max_pending >= 1";
  if max_per_client < 1 then invalid_arg "Admission.create: max_per_client >= 1";
  {
    mutex = Mutex.create ();
    max_pending;
    max_per_client;
    per_client = Hashtbl.create 16;
    pending = 0;
    shed = 0;
  }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let depth_gauge =
  Metrics.gauge "tml_server_admission_pending"
    ~help:"Admitted requests not yet settled"

let shed_counter =
  Metrics.counter "tml_server_shed_total"
    ~help:"Requests shed by admission control"

let pending t = locked t (fun () -> t.pending)

let admit t ~client =
  let v =
    locked t (fun () ->
        let mine = Option.value ~default:0 (Hashtbl.find_opt t.per_client client) in
        if t.pending >= t.max_pending then begin
          t.shed <- t.shed + 1;
          Shed_queue_full
        end
        else if mine >= t.max_per_client then begin
          t.shed <- t.shed + 1;
          Shed_client_limit
        end
        else begin
          t.pending <- t.pending + 1;
          Hashtbl.replace t.per_client client (mine + 1);
          Admitted
        end)
  in
  (match v with
   | Admitted -> Metrics.set_gauge depth_gauge (float_of_int (pending t))
   | Shed_queue_full | Shed_client_limit -> Metrics.incr shed_counter);
  v

let release t ~client =
  locked t (fun () ->
      t.pending <- max 0 (t.pending - 1);
      match Hashtbl.find_opt t.per_client client with
      | Some n when n > 1 -> Hashtbl.replace t.per_client client (n - 1)
      | Some _ -> Hashtbl.remove t.per_client client
      | None -> ());
  Metrics.set_gauge depth_gauge (float_of_int (pending t))

let shed_count t = locked t (fun () -> t.shed)

(* A shed decided outside the admission gate (the server's write-queue
   backpressure) still lands in the same tml_server_shed_total series, so
   operators watch one counter for "requests refused under load". *)
let note_shed () = Metrics.incr shed_counter
let in_flight t ~client =
  locked t (fun () ->
      Option.value ~default:0 (Hashtbl.find_opt t.per_client client))

let overloaded_error = function
  | Admitted -> invalid_arg "Admission.overloaded_error: request was admitted"
  | Shed_queue_full ->
    Tml_error.Error (Tml_error.Overloaded "admission queue full")
  | Shed_client_limit ->
    Tml_error.Error (Tml_error.Overloaded "per-client in-flight limit reached")
