(* The event-driven serving core: readiness loops over {!Poll} (epoll
   with a select fallback), accept sharded across loops, incremental
   {!Wire.Decoder} framing, buffered writes with admission-tied
   backpressure, and a fixed executor pool for the few request kinds
   that genuinely block. *)

type addr = [ `Unix of string | `Tcp of string * int ]

(* What the loops serve: a router over a local runtime, or a fleet
   coordinator fanning out to backends — the server itself only moves
   frames.  [classify] decides where a request runs: [`Fast] inline on
   the event loop, [`Slow] on the executor pool. *)
type handler = {
  on_request : client:int -> Wire.request -> Wire.response;
  classify : Wire.request -> [ `Fast | `Slow ];
  on_stop : unit -> unit;  (* begin refusing new work (non-blocking) *)
  on_drain : timeout_s:float -> unit;  (* await in-flight work *)
  pending : unit -> int;
  on_disconnect : client:int -> unit;
      (* connection closed (any reason); watch hubs drop subscriptions *)
}

let handler_of_router router =
  {
    on_request = (fun ~client req -> Router.handle router ~client req);
    classify = (fun req -> Router.classify router req);
    on_stop = (fun () -> Router.set_draining router);
    on_drain = (fun ~timeout_s -> Router.drain ~timeout_s router);
    pending = (fun () -> Router.pending_jobs router);
    on_disconnect = (fun ~client:_ -> ());
  }

(* On every Unix OCaml port a file_descr is the int it wraps. *)
external fd_int : Unix.file_descr -> int = "%identity"

(* ----------------------------- metrics ----------------------------- *)

let latency_hist =
  Metrics.histogram "tml_server_request_seconds"
    ~buckets:Metrics.default_time_buckets
    ~help:"End-to-end request latency (frame read to response written)"

let conn_gauge =
  Metrics.gauge "tml_server_connections" ~help:"Open client connections"

let iter_counter =
  Metrics.counter "tml_server_loop_iterations_total"
    ~help:"Event-loop wakeups (poll returns), summed over all loops"

let wq_gauge =
  Metrics.gauge "tml_server_write_queue_bytes"
    ~help:"Response bytes buffered for write, summed over all connections"

let zero_copy_saved =
  Metrics.counter "tml_server_zero_copy_bytes_saved_total"
    ~help:
      "Reply bytes rendered directly into connection write buffers \
       (bytes that previously took an intermediate frame-string copy)"

let push_counter =
  Metrics.counter "tml_server_push_frames_total"
    ~help:"Server-push notification frames rendered to subscribers"

let push_shed_counter =
  Metrics.counter "tml_server_push_shed_total"
    ~help:
      "Push frames dropped because the subscriber's write queue was at \
       its cap (the watch replay log covers the gap)"

(* ------------------------------ types ------------------------------ *)

type conn = {
  client : int;
  fd : Unix.file_descr;
  dec : Wire.Decoder.t;
  out : Wire.Obuf.t;  (* frames render straight in, writes drain the front *)
  mutable reading : bool;  (* current poller interest *)
  mutable writing : bool;
  mutable busy : bool;  (* a [`Slow] request is on the executor *)
  mutable closing : bool;  (* flush the write queue, then close *)
  mutable closed : bool;
  mutable last_rx : float;  (* last byte read (mid-frame stall deadline) *)
  mutable last_tx : float;  (* last write progress (write deadline) *)
  accept_span : int option;
}

type msg =
  | Add_conn of Unix.file_descr  (* dispatcher -> loop: adopt this socket *)
  | Reply of conn * int * Wire.response * float  (* executor -> loop *)
  | Push of conn * Wire.json
      (* hub -> loop: render a server-push frame into this connection's
         write buffer.  Always applied on the owning loop, so push
         frames interleave with pipelined replies only at frame
         boundaries — never inside one. *)

type loop = {
  idx : int;
  poll : Poll.t;
  mutable listen : Unix.file_descr option;
  wake_r : Unix.file_descr;  (* cross-thread wakeup pipe *)
  wake_w : Unix.file_descr;
  mb_mutex : Mutex.t;
  mutable mailbox : msg list;  (* newest first; drained each iteration *)
  inflight : int Atomic.t;  (* executor tasks that will post back here *)
  conns : (int, conn) Hashtbl.t;  (* fd -> conn; loop-private *)
  rbuf : Bytes.t;  (* read scratch, shared by this loop's connections *)
  mutable last_sweep : float;
  mutable stopping : bool;
}

type task = {
  t_loop : loop;
  t_conn : conn;
  t_id : int;
  t_req : Wire.request;
  t_t0 : float;
}

type exec = {
  em : Mutex.t;
  ecv : Condition.t;
  eq : task Queue.t;
  mutable quit : bool;
  mutable threads : Thread.t list;
}

type t = {
  handler : handler;
  addr : addr;
  bound_port : int option;
  read_timeout_s : float;
  write_timeout_s : float;
  max_frame : int;
  drain_timeout_s : float;
  max_write_buffer : int;
  tick_ms : int;  (* poll timeout: bounds stop-flag and deadline latency *)
  dispatch : bool;  (* accepts are re-routed round-robin across loops *)
  stop : bool Atomic.t;
  stop_mutex : Mutex.t;
  mutable stopped : bool;
  loops : loop array;
  mutable domains : unit Domain.t list;
  exec : exec;
  next_client : int Atomic.t;
  conn_count : int Atomic.t;
  wq_bytes : int Atomic.t;
  rr : int Atomic.t;  (* round-robin cursor for dispatched accepts *)
  clients_mutex : Mutex.t;
  clients : (int, loop * conn) Hashtbl.t;  (* client id -> owning loop *)
  stats_extra : unit -> (string * Wire.json) list;
}

let locked m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let now () = Unix.gettimeofday ()

(* --------------------------- small helpers -------------------------- *)

(* Best-effort correlation id for responses to frames that failed to
   decode: echo the envelope id if it at least parsed as a number. *)
let salvage_id j =
  match Wire.member "id" j with
  | Some (Wire.Num f) when Float.is_integer f -> int_of_float f
  | _ -> 0

let wake loop =
  match Unix.write_substring loop.wake_w "!" 0 1 with
  | _ -> ()
  | exception Unix.Unix_error _ -> ()  (* full pipe still wakes the loop *)

let post loop msg =
  locked loop.mb_mutex (fun () -> loop.mailbox <- msg :: loop.mailbox);
  wake loop

let wq_add t n =
  let v = Atomic.fetch_and_add t.wq_bytes n + n in
  Metrics.set_gauge wq_gauge (float_of_int v)

(* --------------------------- connection IO -------------------------- *)

let update_interest t loop conn =
  if not conn.closed then begin
    let read =
      (not conn.busy) && (not conn.closing)
      && Wire.Obuf.length conn.out < t.max_write_buffer
    in
    let write = Wire.Obuf.length conn.out > 0 in
    if read <> conn.reading || write <> conn.writing then begin
      conn.reading <- read;
      conn.writing <- write;
      try Poll.modify loop.poll conn.fd ~read ~write
      with Unix.Unix_error _ -> ()
    end
  end

let close_conn t loop conn =
  if not conn.closed then begin
    conn.closed <- true;
    Poll.remove loop.poll conn.fd;
    (try Unix.close conn.fd with Unix.Unix_error _ -> ());
    Hashtbl.remove loop.conns (fd_int conn.fd);
    locked t.clients_mutex (fun () -> Hashtbl.remove t.clients conn.client);
    let buffered = Wire.Obuf.length conn.out in
    if buffered > 0 then wq_add t (-buffered);
    Wire.Obuf.clear conn.out;
    let n = Atomic.fetch_and_add t.conn_count (-1) - 1 in
    Metrics.set_gauge conn_gauge (float_of_int n);
    try t.handler.on_disconnect ~client:conn.client with _ -> ()
  end

(* Drain the write buffer as far as the socket accepts; a closing
   connection whose buffer empties is closed here.  A burst of pipelined
   replies is already contiguous in the [Obuf] — one write syscall (and
   one client wakeup) per batch, with no coalescing copy. *)
let flush t loop conn =
  if not conn.closed then begin
    let err = ref false and blocked = ref false and progressed = ref false in
    while (not (!err || !blocked)) && Wire.Obuf.length conn.out > 0 do
      let buf, off, len = Wire.Obuf.peek conn.out in
      match Unix.write conn.fd buf off len with
      | n ->
        progressed := true;
        Wire.Obuf.consume conn.out n;
        wq_add t (-n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        blocked := true
      | exception Unix.Unix_error (_, _, _) -> err := true
    done;
    if !progressed then conn.last_tx <- now ();
    if !err then close_conn t loop conn
    else if Wire.Obuf.length conn.out = 0 && conn.closing then
      close_conn t loop conn
    else update_interest t loop conn
  end

(* Queue one response frame.  The [Write] fault site fires here (an
   injected fault answers a typed error instead and then hangs up, the
   old one-error-frame-then-close contract); a write queue past its cap
   sheds the response body for a small ["overloaded"] error, counted
   with the admission sheds.  [~immediate:false] skips the flush so a
   burst of pipelined replies leaves in one write (and wakes the client
   once, not per frame) — the caller owes a [flush] when its batch is
   done. *)
let enqueue_reply ?(immediate = true) t loop conn ~id ~t0 resp =
  if not conn.closed then begin
    let resp =
      match Fault.at Fault.Write with
      | () ->
        if Wire.Obuf.length conn.out > t.max_write_buffer then begin
          Admission.note_shed ();
          Wire.Error_reply
            (Wire.err_of_exn
               (Tml_error.Error (Tml_error.Overloaded "write queue full")))
        end
        else resp
      | exception e ->
        conn.closing <- true;
        Wire.Error_reply (Wire.err_of_exn e)
    in
    (* zero-copy: the frame is rendered straight into the connection's
       write buffer — no intermediate frame string *)
    let frame_len = Wire.frame_into conn.out (Wire.response_to_json ~id resp) in
    wq_add t frame_len;
    Metrics.incr ~by:frame_len zero_copy_saved;
    Metrics.observe latency_hist (now () -. t0);
    if immediate then flush t loop conn
  end

(* Fold the serving layer's own vitals into a [Stats_reply], so remote
   operators (and the bench harness, which runs the server out of
   process) can observe connection counts and write-queue depth without a
   side channel.  Extra fields are ignored by protocol-1 clients — the
   standard forward-compatibility contract. *)
let augment_stats t resp =
  match resp with
  | Wire.Stats_reply (Wire.Obj fields) ->
    Wire.Stats_reply
      (Wire.Obj
         (fields
         @ [
             ( "server",
               Wire.Obj
                 ([
                    ("backend", Wire.Str (Poll.backend t.loops.(0).poll));
                    ("loops", Wire.Num (float_of_int (Array.length t.loops)));
                    ( "connections",
                      Wire.Num (float_of_int (Atomic.get t.conn_count)) );
                    ( "write_queue_bytes",
                      Wire.Num (float_of_int (Atomic.get t.wq_bytes)) );
                  ]
                 @ (try t.stats_extra () with _ -> [])) );
           ]))
  | resp -> resp

let exec_submit t task =
  Atomic.incr task.t_loop.inflight;
  locked t.exec.em (fun () ->
      Queue.push task t.exec.eq;
      Condition.signal t.exec.ecv)

(* Decode and dispatch the frames buffered in [conn.dec].  Stops at a
   slow dispatch (ordering: one in-flight request per connection), at
   write backpressure, and during a drain. *)
let rec drain_frames t loop conn =
  if
    conn.closed || conn.closing || conn.busy
    || Wire.Obuf.length conn.out >= t.max_write_buffer
    || Atomic.get t.stop
  then flush t loop conn  (* batch boundary: push buffered replies out *)
  else
    match Wire.Decoder.next conn.dec with
    | `Await -> flush t loop conn
    | `Oversized n ->
      (* body is discarded as it streams in; the connection survives *)
      enqueue_reply t loop conn ~id:0 ~t0:(now ())
        (Wire.Error_reply
           (Wire.err_of_exn
              (Wire.Protocol_error
                 (Printf.sprintf "frame of %d bytes exceeds limit %d" n
                    t.max_frame))));
      drain_frames t loop conn
    | `Frame j ->
      handle_frame t loop conn j;
      drain_frames t loop conn
    | exception e ->
      (* framing poison (bad JSON, negative length): answer once — the
         peer may still be listening — and hang up *)
      conn.closing <- true;
      enqueue_reply t loop conn ~id:0 ~t0:(now ())
        (Wire.Error_reply (Wire.err_of_exn e))

(* One request: decode under a [server:decode] span (so the runtime's
   [job:submit] event nests beneath it for fast requests), then either
   answer inline or hand off to the executor. *)
and handle_frame t loop conn j =
  let t0 = now () in
  let outcome =
    Trace_span.with_span "server:decode" ?parent:conn.accept_span
      ~attrs:[ ("client", string_of_int conn.client) ]
      (fun () ->
        match
          Fault.with_site Fault.Decode (fun () -> Wire.request_of_json j)
        with
        | exception e ->
          `Reply (salvage_id j, Wire.Error_reply (Wire.err_of_exn e))
        | id, req -> (
            match t.handler.classify req with
            | `Slow -> `Dispatch (id, req)
            | `Fast ->
              let resp =
                try augment_stats t (t.handler.on_request ~client:conn.client req)
                with e -> Wire.Error_reply (Wire.err_of_exn e)
              in
              `Reply (id, resp)))
  in
  match outcome with
  | `Reply (id, resp) ->
    (* flushed at the drain_frames batch boundary, not per reply *)
    enqueue_reply ~immediate:false t loop conn ~id ~t0 resp
  | `Dispatch (id, req) ->
    conn.busy <- true;
    update_interest t loop conn;
    exec_submit t
      { t_loop = loop; t_conn = conn; t_id = id; t_req = req; t_t0 = t0 }

let on_readable t loop conn =
  if not (conn.closed || conn.closing || conn.busy) then begin
    let continue = ref true in
    while !continue && not conn.closed do
      match
        Fault.with_site Fault.Read (fun () ->
            Unix.read conn.fd loop.rbuf 0 (Bytes.length loop.rbuf))
      with
      | 0 ->
        continue := false;
        (match Wire.Decoder.finish conn.dec with
         | () -> close_conn t loop conn  (* clean close between frames *)
         | exception e ->
           (* truncated mid-frame at any offset: answer once (the peer
              may have only shut down its write side) and hang up *)
           conn.closing <- true;
           enqueue_reply t loop conn ~id:0 ~t0:(now ())
             (Wire.Error_reply (Wire.err_of_exn e)))
      | n ->
        conn.last_rx <- now ();
        Wire.Decoder.feed conn.dec loop.rbuf 0 n;
        drain_frames t loop conn;
        if
          n < Bytes.length loop.rbuf
          || conn.busy || conn.closing
          || Wire.Obuf.length conn.out >= t.max_write_buffer
        then continue := false
      | exception
          Unix.Unix_error
            ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
        continue := false
      | exception Unix.Unix_error (_, _, _) ->
        continue := false;
        close_conn t loop conn
      | exception e ->
        (* injected read fault: one error frame, then hang up *)
        continue := false;
        conn.closing <- true;
        enqueue_reply t loop conn ~id:0 ~t0:(now ())
          (Wire.Error_reply (Wire.err_of_exn e))
    done
  end

(* ------------------------------ accept ------------------------------ *)

let register_conn t loop fd =
  match
    Unix.set_nonblock fd;
    (match t.addr with
     | `Tcp _ -> Unix.setsockopt fd Unix.TCP_NODELAY true
     | `Unix _ -> ())
  with
  | exception _ -> ( try Unix.close fd with Unix.Unix_error _ -> ())
  | () ->
    let client = Atomic.fetch_and_add t.next_client 1 in
    let accept_span =
      Trace_span.event "server:accept"
        ~attrs:[ ("client", string_of_int client) ]
    in
    let conn =
      {
        client;
        fd;
        dec = Wire.Decoder.create ~max_frame:t.max_frame ();
        out = Wire.Obuf.create ();
        reading = true;
        writing = false;
        busy = false;
        closing = false;
        closed = false;
        last_rx = now ();
        last_tx = now ();
        accept_span;
      }
    in
    Hashtbl.replace loop.conns (fd_int fd) conn;
    (match Poll.add loop.poll fd ~read:true ~write:false with
     | () ->
       locked t.clients_mutex (fun () ->
           Hashtbl.replace t.clients client (loop, conn));
       let n = Atomic.fetch_and_add t.conn_count 1 + 1 in
       Metrics.set_gauge conn_gauge (float_of_int n)
     | exception Unix.Unix_error _ ->
       Hashtbl.remove loop.conns (fd_int fd);
       (try Unix.close fd with Unix.Unix_error _ -> ()))

let on_accept t loop lfd =
  let continue = ref true and budget = ref 64 in
  while !continue && !budget > 0 do
    decr budget;
    if Atomic.get t.stop then continue := false
    else
      match Unix.accept ~cloexec:true lfd with
      | exception
          Unix.Unix_error
            ( ( Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR
              | Unix.ECONNABORTED ),
              _,
              _ ) ->
        continue := false
      | exception Unix.Unix_error _ -> continue := false
      | fd, _peer -> (
          match Fault.at Fault.Accept with
          | exception _ ->
            (* injected accept fault: drop the connection, keep serving *)
            (try Unix.close fd with Unix.Unix_error _ -> ())
          | () ->
            let target =
              if t.dispatch then
                let n = Array.length t.loops in
                t.loops.(Atomic.fetch_and_add t.rr 1 mod n)
              else loop
            in
            if target == loop then register_conn t loop fd
            else post target (Add_conn fd))
  done

(* ---------------------------- event loops --------------------------- *)

let drain_wake loop =
  let rec go () =
    match Unix.read loop.wake_r loop.rbuf 0 256 with
    | 0 -> ()
    | n -> if n = 256 then go ()
    | exception
        Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
      ()
  in
  go ()

let process_msg t loop = function
  | Add_conn fd ->
    if loop.stopping then (try Unix.close fd with Unix.Unix_error _ -> ())
    else register_conn t loop fd
  | Reply (conn, id, resp, t0) ->
    if not conn.closed then begin
      conn.busy <- false;
      enqueue_reply t loop conn ~id ~t0 resp;
      if not conn.closed then
        if Atomic.get t.stop then begin
          conn.closing <- true;
          if Wire.Obuf.length conn.out = 0 then close_conn t loop conn
          else update_interest t loop conn
        end
        else drain_frames t loop conn
    end
  | Push (conn, j) ->
    if not (conn.closed || conn.closing) then
      if Wire.Obuf.length conn.out > t.max_write_buffer then
        (* slow subscriber at the cap: shed the push rather than grow the
           queue without bound — the watch replay log covers the gap *)
        Metrics.incr push_shed_counter
      else begin
        let frame_len = Wire.frame_into conn.out j in
        wq_add t frame_len;
        Metrics.incr ~by:frame_len zero_copy_saved;
        Metrics.incr push_counter;
        flush t loop conn
      end

let process_mailbox t loop =
  match
    locked loop.mb_mutex (fun () ->
        let m = loop.mailbox in
        loop.mailbox <- [];
        m)
  with
  | [] -> ()
  | msgs -> List.iter (process_msg t loop) (List.rev msgs)

(* Deadline sweep, at most once per tick: a peer silent mid-frame past
   the read deadline is answered with a protocol error and closed; a
   peer not draining its responses past the write deadline is dropped. *)
let sweep_deadlines t loop tnow =
  if tnow -. loop.last_sweep >= float_of_int t.tick_ms /. 1000.0 then begin
    loop.last_sweep <- tnow;
    let stalled = ref [] and dead = ref [] in
    Hashtbl.iter
      (fun _ c ->
        if not c.closed then
          if
            c.reading
            && Wire.Decoder.mid_frame c.dec
            && tnow -. c.last_rx > t.read_timeout_s
          then stalled := c :: !stalled
          else if Wire.Obuf.length c.out > 0 && tnow -. c.last_tx > t.write_timeout_s
          then dead := c :: !dead)
      loop.conns;
    List.iter
      (fun c ->
        c.closing <- true;
        enqueue_reply t loop c ~id:0 ~t0:tnow
          (Wire.Error_reply
             (Wire.err_of_exn
                (Wire.Protocol_error "read deadline exceeded mid-frame"))))
      !stalled;
    List.iter (fun c -> close_conn t loop c) !dead
  end

(* Entering drain: close the listener, close idle connections, let busy
   ones finish their in-flight request and flush. *)
let begin_stop t loop =
  loop.stopping <- true;
  (match loop.listen with
   | Some lfd ->
     Poll.remove loop.poll lfd;
     (try Unix.close lfd with Unix.Unix_error _ -> ());
     loop.listen <- None
   | None -> ());
  let all = Hashtbl.fold (fun _ c acc -> c :: acc) loop.conns [] in
  List.iter
    (fun c ->
      if not (c.closed || c.busy) then begin
        c.closing <- true;
        if Wire.Obuf.length c.out = 0 then close_conn t loop c else flush t loop c
      end)
    all

let run_loop t loop () =
  let rec go () =
    Metrics.incr iter_counter;
    if Atomic.get t.stop && not loop.stopping then begin_stop t loop;
    if loop.stopping then begin
      (* close anything that drained; busy conns finish via Reply *)
      let idle =
        Hashtbl.fold
          (fun _ c acc ->
            if (not c.busy) && Wire.Obuf.length c.out = 0 then c :: acc else acc)
          loop.conns []
      in
      List.iter (fun c -> close_conn t loop c) idle
    end;
    if
      loop.stopping
      && Hashtbl.length loop.conns = 0
      && Atomic.get loop.inflight = 0
      && locked loop.mb_mutex (fun () -> loop.mailbox = [])
    then begin
      (* no connection, no in-flight executor task, nothing queued:
         nobody can post here any more, so the wake pipe can go *)
      Poll.close loop.poll;
      (try Unix.close loop.wake_r with Unix.Unix_error _ -> ());
      try Unix.close loop.wake_w with Unix.Unix_error _ -> ()
    end
    else begin
      let timeout_ms = if loop.stopping then min 20 t.tick_ms else t.tick_ms in
      let events = Poll.wait loop.poll ~timeout_ms in
      process_mailbox t loop;
      List.iter
        (fun (ev : Poll.event) ->
          if ev.fd = loop.wake_r then drain_wake loop
          else
            match loop.listen with
            | Some lfd when ev.fd = lfd ->
              if ev.readable then on_accept t loop lfd
            | _ -> (
                match Hashtbl.find_opt loop.conns (fd_int ev.fd) with
                | None -> ()
                | Some conn ->
                  if ev.writable then flush t loop conn;
                  if ev.readable && not conn.closed then
                    on_readable t loop conn))
        events;
      sweep_deadlines t loop (now ());
      go ()
    end
  in
  go ()

(* ----------------------------- executor ----------------------------- *)

let exec_worker t () =
  let rec go () =
    Mutex.lock t.exec.em;
    let rec take () =
      if not (Queue.is_empty t.exec.eq) then Some (Queue.pop t.exec.eq)
      else if t.exec.quit then None
      else begin
        Condition.wait t.exec.ecv t.exec.em;
        take ()
      end
    in
    let task = take () in
    Mutex.unlock t.exec.em;
    match task with
    | None -> ()
    | Some { t_loop; t_conn; t_id; t_req; t_t0 } ->
      let resp =
        Trace_span.with_span "server:handle" ?parent:t_conn.accept_span
          ~attrs:[ ("client", string_of_int t_conn.client) ]
          (fun () ->
            try t.handler.on_request ~client:t_conn.client t_req
            with e -> Wire.Error_reply (Wire.err_of_exn e))
      in
      post t_loop (Reply (t_conn, t_id, resp, t_t0));
      (* decrement only after the reply is visible in the mailbox, so a
         draining loop never exits between the two *)
      Atomic.decr t_loop.inflight;
      go ()
  in
  go ()

(* ------------------------------ lifecycle --------------------------- *)

let default_loops () =
  max 1 (min 4 (Domain.recommended_domain_count () / 2))

let sockaddr_of = function
  | `Unix path -> Unix.ADDR_UNIX path
  | `Tcp (host, port) -> Unix.ADDR_INET (Unix.inet_addr_of_string host, port)

let listen_socket ~reuseport addr backlog =
  let sockaddr = sockaddr_of addr in
  let fd =
    Unix.socket ~cloexec:true
      (Unix.domain_of_sockaddr sockaddr)
      Unix.SOCK_STREAM 0
  in
  match
    (match addr with
     | `Tcp _ ->
       Unix.setsockopt fd Unix.SO_REUSEADDR true;
       if reuseport then Unix.setsockopt fd Unix.SO_REUSEPORT true
     | `Unix _ -> ());
    Unix.bind fd sockaddr;
    Unix.listen fd backlog;
    Unix.set_nonblock fd
  with
  | () -> fd
  | exception e ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    raise e

let make_loop idx listen =
  let wake_r, wake_w = Unix.pipe ~cloexec:true () in
  Unix.set_nonblock wake_r;
  Unix.set_nonblock wake_w;
  let poll = Poll.create () in
  Poll.add poll wake_r ~read:true ~write:false;
  (match listen with
   | Some lfd -> Poll.add poll lfd ~read:true ~write:false
   | None -> ());
  {
    idx;
    poll;
    listen;
    wake_r;
    wake_w;
    mb_mutex = Mutex.create ();
    mailbox = [];
    inflight = Atomic.make 0;
    conns = Hashtbl.create 64;
    rbuf = Bytes.create 65536;
    last_sweep = 0.0;
    stopping = false;
  }

let start ?(backlog = 128) ?(read_timeout_s = 5.0) ?(write_timeout_s = 5.0)
    ?(max_frame = Wire.default_max_frame) ?(drain_timeout_s = 30.0) ?loops
    ?(handler_threads = 16) ?(max_write_buffer = 1 lsl 20)
    ?(stats_extra = fun () -> []) ~handler addr =
  let nloops =
    match loops with
    | None -> default_loops ()
    | Some n ->
      if n < 1 || n > 64 then invalid_arg "Server.start: loops in 1..64";
      n
  in
  if handler_threads < 1 then
    invalid_arg "Server.start: handler_threads >= 1";
  (* buffered socket writes need EPIPE, not a fatal signal *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with _ -> ());
  (match addr with
   | `Unix path -> if Sys.file_exists path then Unix.unlink path
   | `Tcp _ -> ());
  let is_tcp = match addr with `Tcp _ -> true | `Unix _ -> false in
  let first =
    listen_socket ~reuseport:(is_tcp && nloops > 1) addr backlog
  in
  let bound_port =
    match Unix.getsockname first with
    | Unix.ADDR_INET (_, p) -> Some p
    | Unix.ADDR_UNIX _ -> None
  in
  (* TCP shards accepts in-kernel: one SO_REUSEPORT listener per loop.
     Unix sockets (no REUSEPORT balancing) — and any loop whose extra
     listener could not be created — fall back to loop-0 dispatching
     accepted fds round-robin. *)
  let extra_listeners =
    if is_tcp && nloops > 1 then
      let host = match addr with `Tcp (h, _) -> h | _ -> assert false in
      let port = Option.get bound_port in
      List.init (nloops - 1) (fun _ ->
          try Some (listen_socket ~reuseport:true (`Tcp (host, port)) backlog)
          with Unix.Unix_error _ -> None)
    else List.init (nloops - 1) (fun _ -> None)
  in
  let dispatch = (not is_tcp) || List.exists Option.is_none extra_listeners in
  let loops =
    Array.of_list
      (List.mapi
         (fun i l -> make_loop i l)
         (Some first :: extra_listeners))
  in
  let t =
    {
      handler;
      addr;
      bound_port;
      read_timeout_s;
      write_timeout_s;
      max_frame;
      drain_timeout_s;
      max_write_buffer;
      tick_ms = min 200 (max 5 (int_of_float (read_timeout_s *. 250.0)));
      dispatch;
      stop = Atomic.make false;
      stop_mutex = Mutex.create ();
      stopped = false;
      loops;
      domains = [];
      exec =
        {
          em = Mutex.create ();
          ecv = Condition.create ();
          eq = Queue.create ();
          quit = false;
          threads = [];
        };
      next_client = Atomic.make 1;
      conn_count = Atomic.make 0;
      wq_bytes = Atomic.make 0;
      rr = Atomic.make 0;
      clients_mutex = Mutex.create ();
      clients = Hashtbl.create 64;
      stats_extra;
    }
  in
  t.exec.threads <-
    List.init handler_threads (fun _ -> Thread.create (exec_worker t) ());
  t.domains <-
    Array.to_list (Array.map (fun l -> Domain.spawn (run_loop t l)) t.loops);
  t

let port t = t.bound_port

let connections t = Atomic.get t.conn_count

(* Deliver a server-push frame to a client's connection.  The JSON is
   posted to the owning loop and rendered there, so a push never lands
   inside a half-written reply.  [false] means the client is unknown or
   already gone — subscription bookkeeping should drop it. *)
let push t ~client j =
  match
    locked t.clients_mutex (fun () -> Hashtbl.find_opt t.clients client)
  with
  | None -> false
  | Some (loop, conn) ->
    if conn.closed then false
    else begin
      post loop (Push (conn, j));
      true
    end

let backend t = Poll.backend t.loops.(0).poll

let loop_count t = Array.length t.loops

let request_stop t =
  Atomic.set t.stop true;
  t.handler.on_stop ()

(* Drain order: stop accepting, let every connection finish its in-flight
   request and flush its write queue (the loops notice the flag within
   one tick), then await every registered job so no admitted work is
   abandoned.  Trace/metric flushing belongs to whoever enabled them —
   by the time [stop] returns, all server spans have been recorded. *)
let stop t =
  request_stop t;
  locked t.stop_mutex (fun () ->
      if not t.stopped then begin
        t.stopped <- true;
        List.iter Domain.join t.domains;
        t.domains <- [];
        (* executor after the loops: a draining loop waits on its slow
           replies, so workers must stay up until every loop is done *)
        locked t.exec.em (fun () ->
            t.exec.quit <- true;
            Condition.broadcast t.exec.ecv);
        List.iter Thread.join t.exec.threads;
        t.exec.threads <- [];
        t.handler.on_drain ~timeout_s:t.drain_timeout_s;
        match t.addr with
        | `Unix path -> (
            try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ())
        | `Tcp _ -> ()
      end)

let wait t =
  while not (Atomic.get t.stop) do
    Thread.delay 0.05
  done;
  stop t

let install_signal_handlers ?(signals = [ Sys.sigterm; Sys.sigint ]) t =
  List.iter
    (fun s -> Sys.set_signal s (Sys.Signal_handle (fun _ -> request_stop t)))
    signals
