type addr = [ `Unix of string | `Tcp of string * int ]

(* What the accept loop serves: a router over a local runtime, or a
   fleet coordinator fanning out to backends — the server itself only
   moves frames. *)
type handler = {
  on_request : client:int -> Wire.request -> Wire.response;
  on_stop : unit -> unit;  (* begin refusing new work (non-blocking) *)
  on_drain : timeout_s:float -> unit;  (* await in-flight work *)
  pending : unit -> int;
}

let handler_of_router router =
  {
    on_request = (fun ~client req -> Router.handle router ~client req);
    on_stop = (fun () -> Router.set_draining router);
    on_drain = (fun ~timeout_s -> Router.drain ~timeout_s router);
    pending = (fun () -> Router.pending_jobs router);
  }

type t = {
  handler : handler;
  listen_fd : Unix.file_descr;
  addr : addr;
  read_timeout_s : float;
  write_timeout_s : float;
  max_frame : int;
  drain_timeout_s : float;
  stop : bool Atomic.t;
  stop_mutex : Mutex.t;
  mutable stopped : bool;
  mutable accept_thread : Thread.t option;
  conn_mutex : Mutex.t;
  mutable conns : (int * Thread.t) list;
  mutable next_client : int;
}

let latency_hist =
  Metrics.histogram "tml_server_request_seconds"
    ~buckets:Metrics.default_time_buckets
    ~help:"End-to-end request latency (frame read to response written)"

let conn_gauge =
  Metrics.gauge "tml_server_connections" ~help:"Open client connections"

let locked m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

(* Best-effort correlation id for responses to frames that failed to
   decode: echo the envelope id if it at least parsed as a number. *)
let salvage_id j =
  match Wire.member "id" j with
  | Some (Wire.Num f) when Float.is_integer f -> int_of_float f
  | _ -> 0

let send_error fd ~id e =
  try Wire.write_frame fd (Wire.response_to_json ~id (Wire.Error_reply (Wire.err_of_exn e)))
  with _ -> ()

(* One request: decode under a [server:decode] span (so the runtime's
   [job:submit] event nests beneath it), route, respond.  Returns [false]
   when the connection must close (a write failure). *)
let serve_frame t ~client ~accept_span fd j =
  let t0 = Unix.gettimeofday () in
  let id, resp =
    Trace_span.with_span "server:decode" ?parent:accept_span
      ~attrs:[ ("client", string_of_int client) ]
      (fun () ->
         match Fault.with_site Fault.Decode (fun () -> Wire.request_of_json j) with
         | exception e -> (salvage_id j, Wire.Error_reply (Wire.err_of_exn e))
         | id, req -> (id, t.handler.on_request ~client req))
  in
  match
    Fault.with_site Fault.Write (fun () ->
        Wire.write_frame fd (Wire.response_to_json ~id resp))
  with
  | () ->
    Metrics.observe latency_hist (Unix.gettimeofday () -. t0);
    true
  | exception e ->
    send_error fd ~id e;
    false

let handle_conn t client fd =
  let accept_span =
    Trace_span.event "server:accept"
      ~attrs:[ ("client", string_of_int client) ]
  in
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO t.read_timeout_s;
  Unix.setsockopt_float fd Unix.SO_SNDTIMEO t.write_timeout_s;
  let rec loop () =
    if Atomic.get t.stop then ()
    else
      match
        Fault.with_site Fault.Read (fun () ->
            Wire.read_frame ~max_frame:t.max_frame fd)
      with
      | `Eof -> ()
      | `Idle -> loop ()
      | `Frame j -> if serve_frame t ~client ~accept_span fd j then loop ()
      | exception e ->
        (* framing errors and injected read faults poison the stream:
           answer once (the peer may still be listening) and hang up *)
        send_error fd ~id:0 e
  in
  loop ()

let forget_conn t client =
  locked t.conn_mutex (fun () ->
      t.conns <- List.filter (fun (c, _) -> c <> client) t.conns;
      Metrics.set_gauge conn_gauge (float_of_int (List.length t.conns)))

let spawn_conn t fd =
  let client =
    locked t.conn_mutex (fun () ->
        let c = t.next_client in
        t.next_client <- c + 1;
        c)
  in
  let th =
    Thread.create
      (fun () ->
         Fun.protect
           ~finally:(fun () ->
             (try Unix.close fd with Unix.Unix_error _ -> ());
             forget_conn t client)
           (fun () -> handle_conn t client fd))
      ()
  in
  locked t.conn_mutex (fun () ->
      t.conns <- (client, th) :: t.conns;
      Metrics.set_gauge conn_gauge (float_of_int (List.length t.conns)))

(* The accept loop polls the stop flag every 200ms via select, so a
   SIGTERM (whose handler only flips the flag) is noticed promptly
   without any signal-unsafe work in the handler itself. *)
let accept_loop t () =
  let rec loop () =
    if Atomic.get t.stop then ()
    else
      match Unix.select [ t.listen_fd ] [] [] 0.2 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | [], _, _ -> loop ()
      | _ -> (
          match Unix.accept ~cloexec:true t.listen_fd with
          | exception
              Unix.Unix_error
                ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR | Unix.ECONNABORTED), _, _)
            ->
            loop ()
          | exception Unix.Unix_error (Unix.EBADF, _, _) -> ()
          | fd, _peer ->
            (match Fault.at Fault.Accept with
             | () -> spawn_conn t fd
             | exception _ ->
               (* injected accept fault: drop the connection, keep serving *)
               (try Unix.close fd with Unix.Unix_error _ -> ()));
            loop ())
  in
  loop ()

let start ?(backlog = 16) ?(read_timeout_s = 5.0) ?(write_timeout_s = 5.0)
    ?(max_frame = Wire.default_max_frame) ?(drain_timeout_s = 30.0) ~handler
    addr =
  let sockaddr =
    match addr with
    | `Unix path ->
      if Sys.file_exists path then Unix.unlink path;
      Unix.ADDR_UNIX path
    | `Tcp (host, port) ->
      Unix.ADDR_INET (Unix.inet_addr_of_string host, port)
  in
  let listen_fd =
    Unix.socket ~cloexec:true
      (Unix.domain_of_sockaddr sockaddr)
      Unix.SOCK_STREAM 0
  in
  (match addr with
   | `Tcp _ -> Unix.setsockopt listen_fd Unix.SO_REUSEADDR true
   | `Unix _ -> ());
  Unix.bind listen_fd sockaddr;
  Unix.listen listen_fd backlog;
  let t =
    {
      handler;
      listen_fd;
      addr;
      read_timeout_s;
      write_timeout_s;
      max_frame;
      drain_timeout_s;
      stop = Atomic.make false;
      stop_mutex = Mutex.create ();
      stopped = false;
      accept_thread = None;
      conn_mutex = Mutex.create ();
      conns = [];
      next_client = 1;
    }
  in
  t.accept_thread <- Some (Thread.create (accept_loop t) ());
  t

let port t =
  match Unix.getsockname t.listen_fd with
  | Unix.ADDR_INET (_, p) -> Some p
  | Unix.ADDR_UNIX _ -> None

let connections t = locked t.conn_mutex (fun () -> List.length t.conns)

let request_stop t =
  Atomic.set t.stop true;
  t.handler.on_stop ()

(* Drain order: stop accepting, let every connection thread finish its
   in-flight request (they poll the stop flag at the next read-idle
   tick), then await every registered job so no admitted work is
   abandoned.  Trace/metric flushing belongs to whoever enabled them
   (the CLI's observability wrapper) — by the time [stop] returns, all
   server spans have been recorded. *)
let stop t =
  request_stop t;
  locked t.stop_mutex (fun () ->
      if not t.stopped then begin
        t.stopped <- true;
        Option.iter Thread.join t.accept_thread;
        t.accept_thread <- None;
        (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
        let rec join_conns () =
          match locked t.conn_mutex (fun () -> t.conns) with
          | [] -> ()
          | conns ->
            List.iter (fun (_, th) -> Thread.join th) conns;
            join_conns ()
        in
        join_conns ();
        t.handler.on_drain ~timeout_s:t.drain_timeout_s;
        match t.addr with
        | `Unix path -> (try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ())
        | `Tcp _ -> ()
      end)

let wait t =
  while not (Atomic.get t.stop) do
    Thread.delay 0.05
  done;
  stop t

let install_signal_handlers ?(signals = [ Sys.sigterm; Sys.sigint ]) t =
  List.iter
    (fun s -> Sys.set_signal s (Sys.Signal_handle (fun _ -> request_stop t)))
    signals
