(** Admission control for the repair server: a bounded pool of pending
    requests plus a per-client in-flight cap.

    The server admits a submit {e before} touching the runtime; a full
    pool or a client at its limit is shed immediately with a typed
    {!Tml_error.Overloaded} (transient — clients back off and resubmit)
    instead of queueing unboundedly or blocking the connection thread.
    Tickets are released when the underlying job settles (the router
    sweeps settled futures), not when the response is written — a slow
    job holds its admission slot for its whole lifetime.

    The current depth and total sheds are mirrored into the process-wide
    {!Metrics} registry ([tml_server_admission_pending],
    [tml_server_shed_total]). *)

type t

type verdict = Admitted | Shed_queue_full | Shed_client_limit

val create : ?max_pending:int -> ?max_per_client:int -> unit -> t
(** [max_pending] (default 64) bounds admitted-but-unsettled requests
    across all clients; [max_per_client] (default 16) bounds one client's
    share.  @raise Invalid_argument when either is [< 1]. *)

val admit : t -> client:int -> verdict
(** Try to take a ticket for [client].  [Admitted] must eventually be
    paired with exactly one {!release}. *)

val release : t -> client:int -> unit
(** Return [client]'s oldest ticket. *)

val overloaded_error : verdict -> exn
(** The {!Tml_error.Overloaded} for a shed verdict.
    @raise Invalid_argument on [Admitted]. *)

val pending : t -> int
(** Tickets currently held. *)

val in_flight : t -> client:int -> int
(** Tickets currently held by [client]. *)

val shed_count : t -> int
(** Requests shed since [create]. *)

val note_shed : unit -> unit
(** Count a shed decided outside the admission gate — the event loop
    sheds a response when a connection's write queue is over its cap —
    into the shared [tml_server_shed_total] counter, so every
    refused-under-load request lands in one metric series. *)
