(** The repair service's wire protocol: length-prefixed JSON frames.

    A frame is a 4-byte big-endian payload length followed by that many
    bytes of UTF-8 JSON.  Requests and responses are enveloped with the
    protocol {!version} and a client-chosen correlation [id]; the server
    echoes the id so a client can pipeline requests on one connection.

    Job payloads travel in {e textual} form — the same model, property,
    trace and spec syntaxes the CLI accepts ({!Dtmc_io}, {!Mdp_io},
    {!Trace_io}, {!Spec_io}, {!Pctl_parser}) — and are decoded into a
    {!Job.t} on the server by {!job_of_request}, so the wire format never
    duplicates the in-memory model representations.

    Everything malformed — bad framing, oversized frames, invalid JSON,
    missing fields, unknown ops — raises {!Protocol_error} with a
    self-diagnosing message. *)

val version : int
(** Protocol version spoken by this build (currently 1).  Envelopes carry
    it as ["v"]; a mismatch is a {!Protocol_error}. *)

val default_max_frame : int
(** Default frame-size cap (16 MiB). *)

exception Protocol_error of string

exception Peer_closed of string
(** The peer vanished mid-exchange: a connection closed {e mid}-frame on
    read, or a broken pipe / reset on write.  Distinct from
    {!Protocol_error} so callers (the {!Client}, the coordinator's
    re-route logic) can classify peer death as transient without string
    matching; {!err_of_exn} maps it to a transient ["unreachable"]. *)

(** {1 JSON} *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

val render : json -> string
(** Compact single-line rendering. *)

val parse : string -> json
(** @raise Protocol_error with a byte offset on malformed input. *)

(** {1 Output buffering}

    A growable byte window with a consumable front: the server renders
    reply frames straight into a connection's [Obuf] and writes straight
    out of it, so a reply body never exists as an intermediate frame
    string (the zero-copy reply path). *)

module Obuf : sig
  type t

  val create : ?initial:int -> unit -> t
  (** An empty buffer; [initial] (default 4096) is the starting
      capacity. *)

  val length : t -> int
  (** Bytes currently buffered (appended and not yet consumed). *)

  val add_char : t -> char -> unit
  val add_string : t -> string -> unit

  val add_substring : t -> string -> int -> int -> unit
  (** [add_substring t s off n] appends [s.[off..off+n)]. *)

  val reserve_u32 : t -> int
  (** Append a 4-byte placeholder and return a mark for {!patch_u32}.
      The mark is a window-relative offset: it stays valid across
      further appends (which may move the underlying storage), but only
      until the next {!consume} or {!clear}. *)

  val patch_u32 : t -> int -> int -> unit
  (** [patch_u32 t mark v] overwrites the placeholder at [mark] with [v]
      as big-endian.  @raise Invalid_argument on an out-of-window mark. *)

  val contents : t -> string
  (** Copy of the buffered window (does not consume). *)

  val peek : t -> Bytes.t * int * int
  (** [(buf, off, len)]: the live window, for handing directly to
      [Unix.write].  Invalidated by any append. *)

  val consume : t -> int -> unit
  (** Discard [n] bytes from the front (they were written out). *)

  val clear : t -> unit
  (** Drop everything buffered. *)
end

val render_into : Obuf.t -> json -> unit
(** {!render}, appending to an [Obuf] instead of allocating a string. *)

val frame_into : Obuf.t -> json -> int
(** Append one length-prefixed frame (4-byte big-endian header plus
    rendered body) and return its total size in bytes. *)

val member : string -> json -> json option
(** Field lookup on an [Obj]; [None] on missing fields or non-objects. *)

(** {1 Framing} *)

val write_frame : Unix.file_descr -> json -> unit
(** Render and send one frame.
    @raise Protocol_error when a write deadline ([SO_SNDTIMEO]) expires.
    @raise Peer_closed when the peer has closed or reset the
    connection. *)

val write_frames : Unix.file_descr -> json list -> unit
(** Render and send a batch of frames in a single write burst — the
    pipelining fast path: one syscall for the whole window instead of
    one per frame.  Same failure contract as {!write_frame}. *)

val read_frame :
  ?max_frame:int ->
  Unix.file_descr ->
  [ `Frame of json | `Eof | `Idle ]
(** Read one frame.  [`Eof] is a clean close {e between} frames; [`Idle]
    is a read deadline ([SO_RCVTIMEO]) expiring with no bytes of the next
    frame read yet — the caller polls its stop flag and retries.  A stall
    {e mid}-frame, an oversized frame and malformed JSON raise
    {!Protocol_error}; a close {e mid}-frame raises {!Peer_closed}. *)

(** {1 Incremental decoding}

    The event-driven server never blocks on a partial frame: whatever
    bytes a readiness notification delivers are {!Decoder.feed}ed into a
    per-connection decoder, and {!Decoder.next} yields zero or more
    complete frames.  Partial frames resume on the next feed; oversized
    frames are rejected up front and their bodies discarded {e without
    ever being buffered}. *)

module Decoder : sig
  type t

  val create : ?max_frame:int -> unit -> t
  (** A fresh decoder positioned at a frame boundary.  [max_frame]
      defaults to {!default_max_frame}. *)

  val feed : t -> Bytes.t -> int -> int -> unit
  (** [feed t buf off n] appends [n] bytes read from the socket.  The
      bytes are copied (or, inside an oversized frame, discarded), so the
      caller may reuse [buf] immediately. *)

  val next : t -> [ `Frame of json | `Await | `Oversized of int ]
  (** Advance the frame state machine: [`Frame] is one complete decoded
      payload (call again — a single read may carry several pipelined
      frames); [`Await] means more bytes are needed; [`Oversized n] is
      reported once per frame whose declared length [n] exceeds
      [max_frame] — the decoder then skips the body as it streams in and
      resumes cleanly at the next frame boundary, so the caller can
      answer an error and keep the connection.

      @raise Protocol_error on malformed JSON inside a well-delimited
      frame ({e recoverable}: the decoder has already advanced past the
      frame) and on a negative length prefix ({e unrecoverable}: framing
      is lost, close the connection). *)

  val finish : t -> unit
  (** The peer closed its write side.  Returns normally only when the
      stream ended exactly on a frame boundary.
      @raise Peer_closed on truncation at {e any} offset — inside the
      4-byte length prefix, mid-body, or mid-skip of an oversized
      frame. *)

  val buffered : t -> int
  (** Bytes currently buffered (diagnostics; oversized bodies never
      count, they are discarded on arrival). *)

  val mid_frame : t -> bool
  (** [true] when the stream position is inside a frame — i.e. when
      {!finish} would raise. *)
end

(** {1 Errors} *)

type err = { kind : string; message : string; transient : bool }
(** A wire-level error: a stable kind slug (["overloaded"],
    ["bad-request"], ["protocol"], ["internal"], or a {!Tml_error.kind}
    slug), a human message, and whether retrying may succeed. *)

val err_of_exn : exn -> err
(** Classify: {!Tml_error.Error} keeps its kind and severity; lib/io
    parse errors become non-transient ["bad-request"]; everything else is
    ["internal"]. *)

(** {1 Job payloads} *)

type job_request =
  | Check_req of { model : string; phi : string }
  | Model_repair_req of {
      model : string;
      phi : string;
      variables : string list;  (** {!Spec_io.parse_variable} syntax *)
      deltas : string list;  (** {!Spec_io.parse_delta} syntax *)
      starts : int;
      backend : string;
          (** {!Repair_backend} slug; optional on the wire (absent means
              ["nlp"], keeping protocol-1 clients valid) *)
    }
  | Data_repair_req of {
      states : int;
      init : int;
      labels : (string * int list) list;
      rewards : float list option;
      phi : string;
      traces : string;  (** {!Trace_io} text *)
      max_drop : float;
      pinned : string list;
      starts : int;
      backend : string;  (** same contract as in [Model_repair_req] *)
    }
  | Reward_repair_req of {
      mdp : string;  (** {!Mdp_io} text *)
      theta : float list;
      constraints : (int * string * string * float) list;
          (** (state, better, worse, margin) *)
      gamma : float;
      starts : int;
    }
  | Pipeline_req of {
      states : int;
      init : int;
      labels : (string * int list) list;
      rewards : float list option;
      model_spec : (string list * string list) option;
          (** (variables, deltas) *)
      data_spec : (float * string list) option;  (** (max_drop, pinned) *)
      traces : string;
      phi : string;
    }  (** One repair job in wire (textual) form. *)

val kind_of_job_request : job_request -> string
(** The {!Job.kind} string of the decoded job, without decoding. *)

val job_of_request : job_request -> Job.t
(** Decode with the lib/io parsers.  Raises the underlying parser's
    exception on malformed payloads (the router maps it to a
    ["bad-request"] wire error); an unknown [backend] slug is a
    {!Protocol_error}. *)

(** {1 Watch specs}

    The registration payload of a streaming watch: the model skeleton,
    property and repair configuration a [watch] op carries — everything
    a {!Data_repair_req} needs except the traces, which arrive
    incrementally as appended chunks. *)

type watch_spec = {
  states : int;
  init : int;
  labels : (string * int list) list;
  rewards : float list option;
  phi : string;
  max_drop : float;
  pinned : string list;
  starts : int;
  backend : string;  (** {!Repair_backend} slug; ["nlp"] when absent *)
}

val watch_spec_to_json : watch_spec -> json
val watch_spec_of_json : json -> watch_spec

val job_request_of_watch : watch_spec -> traces:string -> job_request
(** The Data Repair job a violated watch submits: the accumulated
    traces in canonical textual form under the watch's spec.  A batch
    submit of the concatenated trace text with the same spec decodes to
    the same {!Job.t} — equal digests, byte-identical report (the
    differential-correctness contract of the streaming subsystem). *)

(** {1 Envelopes} *)

type request =
  | Submit of job_request
  | Poll of string  (** job digest *)
  | Wait of string * float option  (** digest, optional timeout *)
  | Cancel of string
  | Stats
  | Ping
  | Put_report of { job : string; report : string }
      (** fleet replication: store a completed job's rendered report under
          [job]'s digest so polls/waits on this node can serve it (sent by
          the coordinator to the digest's ring successor) *)
  | Fleet_status
      (** coordinator only: per-node health/in-flight snapshot (a plain
          backend answers a ["bad-request"] error) *)
  | Drain_node of string
      (** coordinator only: drain the named node out of the ring — stop
          routing new digests to it, await its in-flight jobs, remove *)
  | Watch_op of {
      watch : string;
      spec : watch_spec option;
          (** present: create the watch (or verify it matches an
              existing one); absent: attach to an existing watch *)
      from_seq : int option;
          (** replay logged notifications with [seq > from_seq] to this
              connection (reconnect catch-up); [None] = only new ones *)
    }  (** subscribe this connection to the named watch *)
  | Append_chunk of { watch : string; chunk : string }
      (** fold a trace chunk into the watch's incremental learner and
          re-check φ *)
  | Unwatch of string  (** unsubscribe this connection from the watch *)

type job_state =
  | Job_pending
  | Job_done of string  (** the {!Job.pp_outcome} report text *)
  | Job_failed of err
  | Job_cancelled
  | Job_timed_out

type response =
  | Accepted of { job : string; cached : bool }
      (** submit acknowledged; [cached] when served straight from the
          report cache *)
  | Status of { job : string; state : job_state }
  | Cancelled of { job : string; cancelled : bool }
  | Stats_reply of json
  | Pong
  | Error_reply of err
  | Stored of { job : string }  (** {!Put_report} acknowledged *)
  | Fleet_reply of json  (** {!Fleet_status} snapshot *)
  | Drained of { node : string; pending : int }
      (** {!Drain_node} finished; [pending] jobs were still unfinished
          when the drain deadline expired (0 on a clean drain) *)
  | Watched of { watch : string; seq : int; created : bool }
      (** subscribed; [seq] is the watch's latest notification sequence
          number (pass it back as [from_seq] after a reconnect) *)
  | Appended of {
      watch : string;
      lines : int;  (** complete lines consumed from this chunk *)
      support_changed : bool;
      value : float option;
          (** the re-checked value; [None] when the check is not yet
              possible (e.g. a reward target still unreachable) *)
      violated : bool;
      job : string option;
          (** digest of the repair job a violation kicked off *)
      recheck : string;  (** ["cached"] (µs path) or ["eliminated"] *)
    }
  | Unwatched of { watch : string; existed : bool }
  | Annotated of (string * json) list * response
      (** [response] plus extra informational envelope fields (e.g. the
          coordinator's [("node", Str name)] serving-node annotation).
          Encode-only: decoding returns the base response and drops the
          extras, which is exactly the protocol-1 forward-compatibility
          contract — unknown fields are ignored. *)

val request_to_json : id:int -> request -> json
val request_of_json : json -> int * request
(** @raise Protocol_error on bad envelopes (wrong version, unknown op,
    missing fields). *)

val response_to_json : id:int -> response -> json
val response_of_json : json -> int * response
(** @raise Protocol_error on bad envelopes. *)

(** {1 Server push}

    Push frames are server-initiated notifications: same length-prefixed
    framing, correlation id 0 (request ids start at 1) and a ["push"]
    marker member.  A client that does not understand a push frame must
    skip it — the same forward-compatibility contract as unknown fields
    — which {!is_push} makes checkable before id correlation. *)

type notification = {
  watch : string;
  seq : int;  (** per-watch, monotonically increasing from 1 *)
  event : string;  (** ["violation"], ["repair"] or ["error"] *)
  value : float option;  (** checked value at detection *)
  job : string option;  (** repair job digest *)
  report : string option;  (** the {!Job.pp_outcome} report (["repair"]) *)
  error : err option;  (** why the repair failed (["error"]) *)
}

val push_id : int
(** The correlation id every push frame carries (0). *)

val is_push : json -> bool
(** Whether a decoded frame is a server push (carries a ["push"]
    marker) — check before id correlation and skip if unhandled. *)

val notification_to_json : notification -> json

val notification_of_json : json -> notification
(** @raise Protocol_error when the frame is not a notification push. *)
