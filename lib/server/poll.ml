external epoll_create : unit -> int = "tml_epoll_create"

external epoll_ctl : int -> int -> int -> bool -> bool -> int
  = "tml_epoll_ctl"

external epoll_wait_stub : int -> int -> int array -> int = "tml_epoll_wait"
external epoll_close : int -> unit = "tml_epoll_close"
external raise_nofile : int -> int = "tml_raise_nofile"

(* On every Unix OCaml port a file_descr is the int it wraps. *)
external fd_int : Unix.file_descr -> int = "%identity"
external int_fd : int -> Unix.file_descr = "%identity"

type event = {
  fd : Unix.file_descr;
  readable : bool;
  writable : bool;
}

type backend =
  | Epoll of { ep : int; buf : int array }
  | Select of { interest : (Unix.file_descr, bool * bool) Hashtbl.t }

type t = { mutable be : backend; mutable closed : bool }

let max_events = 1024

let create () =
  match epoll_create () with
  | ep when ep >= 0 ->
    { be = Epoll { ep; buf = Array.make (2 * max_events) 0 }; closed = false }
  | _ -> { be = Select { interest = Hashtbl.create 64 }; closed = false }

let backend t = match t.be with Epoll _ -> "epoll" | Select _ -> "select"

let ctl_fail op fd rc =
  if rc < 0 then
    raise
      (Unix.Unix_error
         (Unix.EINVAL, "Poll." ^ op, Printf.sprintf "fd %d" (fd_int fd)))

let add t fd ~read ~write =
  match t.be with
  | Epoll { ep; _ } ->
    let rc = epoll_ctl ep 0 (fd_int fd) read write in
    (* an fd that is somehow still registered: fall back to modify *)
    let rc = if rc < 0 then epoll_ctl ep 1 (fd_int fd) read write else rc in
    ctl_fail "add" fd rc
  | Select { interest } -> Hashtbl.replace interest fd (read, write)

let modify t fd ~read ~write =
  match t.be with
  | Epoll { ep; _ } ->
    let rc = epoll_ctl ep 1 (fd_int fd) read write in
    let rc = if rc < 0 then epoll_ctl ep 0 (fd_int fd) read write else rc in
    ctl_fail "modify" fd rc
  | Select { interest } -> Hashtbl.replace interest fd (read, write)

let remove t fd =
  match t.be with
  | Epoll { ep; _ } -> ignore (epoll_ctl ep 2 (fd_int fd) false false : int)
  | Select { interest } -> Hashtbl.remove interest fd

let wait t ~timeout_ms =
  match t.be with
  | Epoll { ep; buf } -> (
      match epoll_wait_stub ep timeout_ms buf with
      | n when n <= 0 -> []
      | n ->
        let rec build i acc =
          if i < 0 then acc
          else
            let flags = buf.((2 * i) + 1) in
            build (i - 1)
              ({
                 fd = int_fd buf.(2 * i);
                 readable = flags land 1 <> 0;
                 writable = flags land 2 <> 0;
               }
               :: acc)
        in
        build (n - 1) [])
  | Select { interest } ->
    let rd, wr =
      Hashtbl.fold
        (fun fd (r, w) (rd, wr) ->
           ((if r then fd :: rd else rd), if w then fd :: wr else wr))
        interest ([], [])
    in
    let timeout =
      if timeout_ms < 0 then -1.0 else float_of_int timeout_ms /. 1000.0
    in
    (match Unix.select rd wr [] timeout with
     | exception Unix.Unix_error (Unix.EINTR, _, _) -> []
     | rready, wready, _ ->
       let tbl = Hashtbl.create 16 in
       List.iter
         (fun fd -> Hashtbl.replace tbl fd (true, false))
         rready;
       List.iter
         (fun fd ->
            match Hashtbl.find_opt tbl fd with
            | Some (r, _) -> Hashtbl.replace tbl fd (r, true)
            | None -> Hashtbl.replace tbl fd (false, true))
         wready;
       Hashtbl.fold
         (fun fd (readable, writable) acc -> { fd; readable; writable } :: acc)
         tbl [])

let close t =
  if not t.closed then begin
    t.closed <- true;
    match t.be with
    | Epoll { ep; _ } -> epoll_close ep
    | Select { interest } -> Hashtbl.reset interest
  end
