(* The fleet coordinator: a Server.handler that owns no Runtime at all.
   It decodes submits just far enough to compute the job digest, picks
   the digest's owner on a consistent-hash Ring over the backend
   addresses, and proxies the RPC through Client — re-routing to the
   next ring successor on transient failure, replicating finished
   reports to the successor, and resubmitting from its own job-request
   registry when a failover node has never heard of a digest.  That
   last step is the zero-job-loss invariant: any job the coordinator
   accepted can be recomputed anywhere, and jobs are deterministic, so
   the re-run report is byte-identical. *)

type node_state = Healthy | Probation | Ejected | Draining | Drained

let state_name = function
  | Healthy -> "healthy"
  | Probation -> "probation"
  | Ejected -> "ejected"
  | Draining -> "draining"
  | Drained -> "drained"

type node = {
  name : string;  (* Client.addr_to_string of [addr]; the ring key *)
  addr : Client.addr;
  mutable state : node_state;
  mutable fails : int;  (* consecutive probe/RPC failures *)
  mutable in_flight : int;
  gauge : Metrics.gauge;
}

(* Every digest the coordinator currently tracks.  [req] is the wire
   payload kept for resubmission after a node death, dropped once the
   job is observed complete (it can never need re-running again);
   poll/wait/cancel on digests submitted elsewhere still route, they
   just cannot be recovered if the owner dies before completing.
   Completed entries are evicted FIFO past [max_completed], so the
   registry stays bounded on a long-lived coordinator. *)
type entry = {
  mutable req : Wire.job_request option;
  mutable owner : string option;  (* node last known to hold the job *)
  mutable completed : bool;
  mutable replicated : bool;
}

type t = {
  mutex : Mutex.t;
  mutable ring : Ring.t;  (* Healthy + Draining members *)
  nodes : (string, node) Hashtbl.t;
  jobs : (string, entry) Hashtbl.t;
  completed_q : string Queue.t;  (* completion order, for FIFO eviction *)
  max_completed : int;
  rpc_timeout_s : float;
  probe_interval_s : float;
  eject_threshold : int;
  drain_timeout_s : float;
  retry : Retry.t;  (* backoff schedule between failover attempts *)
  stop : bool Atomic.t;
  mutable prober : Thread.t option;
  mutable draining : bool;
}

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(* ----------------------------- metrics ----------------------------- *)

let reroutes_c =
  Metrics.counter "tml_fleet_reroutes_total"
    ~help:"Requests moved to the next ring owner after a node failure"

let ejections_c =
  Metrics.counter "tml_fleet_ejections_total"
    ~help:"Nodes ejected from the ring after consecutive failures"

let readmissions_c =
  Metrics.counter "tml_fleet_readmissions_total"
    ~help:"Ejected nodes re-admitted to the ring after probation"

let replications_c =
  Metrics.counter "tml_fleet_replications_total"
    ~help:"Finished reports replicated to the digest's ring successor"

let resubmits_c =
  Metrics.counter "tml_fleet_resubmits_total"
    ~help:"Jobs resubmitted from the coordinator registry after a node death"

let fanout_hist =
  Metrics.histogram "tml_fleet_fanout_seconds"
    ~buckets:Metrics.default_time_buckets
    ~help:"Coordinator fan-out latency, including failover attempts"

let node_gauge name =
  Metrics.gauge "tml_fleet_in_flight" ~label:("node", name)
    ~help:"Backend RPCs in flight, by node"

(* -------------------------- health machine ------------------------- *)

(* Healthy --N consecutive failures--> Ejected (out of the ring)
   Ejected --probe success--> Probation (still out of the ring)
   Probation --success--> Healthy (re-added) | --failure--> Ejected
   Draining/Drained are administrative and never transition on health. *)

let eject_locked t n =
  n.state <- Ejected;
  n.fails <- 0;
  t.ring <- Ring.without t.ring n.name;
  Metrics.incr ejections_c;
  ignore
    (Trace_span.event "fleet:eject" ~attrs:[ ("node", n.name) ] : int option)

let note_failure t name =
  locked t (fun () ->
      match Hashtbl.find_opt t.nodes name with
      | None -> ()
      | Some n -> (
          match n.state with
          | Draining | Drained | Ejected -> ()
          | Probation -> n.state <- Ejected
          | Healthy ->
            n.fails <- n.fails + 1;
            if n.fails >= t.eject_threshold then eject_locked t n))

let note_success t name =
  locked t (fun () ->
      match Hashtbl.find_opt t.nodes name with
      | None -> ()
      | Some n -> (
          n.fails <- 0;
          match n.state with
          | Ejected -> n.state <- Probation
          | Probation ->
            n.state <- Healthy;
            t.ring <- Ring.with_node t.ring n.name;
            Metrics.incr readmissions_c;
            ignore
              (Trace_span.event "fleet:readmit" ~attrs:[ ("node", n.name) ]
               : int option)
          | Healthy | Draining | Drained -> ()))

(* ------------------------------ routing ---------------------------- *)

(* Candidate nodes for a digest, in ring order.  New submits skip
   Draining members (they are leaving); fetches may still read from
   them.  The optional [first] node (a job's last known owner) is moved
   to the front when still routable. *)
let candidates t ?first ~for_submit digest =
  locked t (fun () ->
      let routable name =
        match Hashtbl.find_opt t.nodes name with
        | None -> None
        | Some n -> (
            match n.state with
            | Healthy -> Some n
            | Draining when not for_submit -> Some n
            | _ -> None)
      in
      let ring_order = List.filter_map routable (Ring.successors t.ring digest) in
      match Option.bind first routable with
      | None -> ring_order
      | Some n -> n :: List.filter (fun m -> m.name <> n.name) ring_order)

let track t n delta =
  locked t (fun () ->
      n.in_flight <- n.in_flight + delta;
      Metrics.set_gauge n.gauge (float_of_int n.in_flight))

let transient_exn = function
  | Tml_error.Error k -> Tml_error.severity k = Tml_error.Transient
  | _ -> false

(* One RPC against one node, under a [fleet:rpc] span; a fresh
   connection per call keeps failure isolation trivial (a dead backend
   poisons nothing). *)
let rpc_once t node f =
  track t node 1;
  Fun.protect
    ~finally:(fun () -> track t node (-1))
    (fun () ->
       Trace_span.with_span "fleet:rpc" ~attrs:[ ("node", node.name) ]
         (fun () ->
            Client.with_client ~timeout_s:t.rpc_timeout_s node.addr f))

let no_node_error =
  Tml_error.Error (Tml_error.Unreachable "no fleet node available")

(* Proxy a [Wait] as a loop of short waits on the same connection, each
   kept well inside the [rpc_timeout_s] socket deadline.  A single
   proxied wait bounded only by the socket deadline would turn any job
   running longer than [rpc_timeout_s] into a spurious `Idle` →
   [Unreachable]: a health strike against a perfectly alive node plus a
   re-route that duplicates the job elsewhere.  Chunking means the
   socket deadline only fires when the backend truly stops answering —
   a genuine failure — while the wait's own deadline is enforced here,
   returning the backend's [Job_pending] exactly as a single node
   would. *)
let chunked_wait t ~digest timeout_s c =
  let chunk = Float.max 0.05 (t.rpc_timeout_s /. 2.) in
  let deadline =
    Option.map (fun s -> Unix.gettimeofday () +. Float.max 0. s) timeout_s
  in
  let rec go () =
    let step =
      match deadline with
      | None -> chunk
      | Some d -> Float.min chunk (d -. Unix.gettimeofday ())
    in
    if step <= 0. then Client.rpc c (Wire.Poll digest)
    else
      match Client.rpc c (Wire.Wait (digest, Some step)) with
      | Wire.Status { state = Wire.Job_pending; _ } as resp ->
        (match deadline with
         | Some d when Unix.gettimeofday () >= d -> resp
         | _ -> go ())
      | resp -> resp
  in
  go ()

(* Walk the candidate list until one node answers.  Transient failures
   (peer death, timeouts, [Overloaded]/[Unavailable] error replies)
   re-route to the next candidate after a capped jittered backoff;
   anything else is the answer.  Returns the serving node's name with
   the response. *)
let route t ~digest ~nodes f =
  let t0 = Unix.gettimeofday () in
  Fun.protect
    ~finally:(fun () ->
      Metrics.observe fanout_hist (Unix.gettimeofday () -. t0))
    (fun () ->
       Trace_span.with_span "fleet:route" ~attrs:[ ("job", digest) ]
         (fun () ->
            let rec go attempt last = function
              | [] -> Error (Option.value last ~default:no_node_error)
              | node :: rest ->
                if attempt > 0 then
                  Thread.delay
                    (Retry.backoff_s t.retry ~key:digest ~attempt:(attempt - 1));
                let reroute e =
                  Metrics.incr reroutes_c;
                  go (attempt + 1) (Some e) rest
                in
                (match rpc_once t node f with
                 | Wire.Error_reply err when err.Wire.transient && rest <> [] ->
                   (* shed (overloaded/unavailable) — alive, so no health
                      strike, but the next owner may have capacity *)
                   reroute (Client.Remote_error err)
                 | resp ->
                   note_success t node.name;
                   Ok (node.name, resp)
                 | exception e when transient_exn e ->
                   note_failure t node.name;
                   reroute e)
            in
            go 0 None nodes))

let annotate name resp = Wire.Annotated ([ ("node", Wire.Str name) ], resp)

(* --------------------------- job registry -------------------------- *)

let find_entry t digest = locked t (fun () -> Hashtbl.find_opt t.jobs digest)

let register t digest jr =
  locked t (fun () ->
      match Hashtbl.find_opt t.jobs digest with
      | Some e ->
        (* the digest may have been seen first via poll/wait/cancel
           ([req = None]): attach the payload so this submit gets the
           resubmission guarantee too *)
        if e.req = None && not e.completed then e.req <- Some jr;
        e
      | None ->
        let e =
          { req = Some jr; owner = None; completed = false; replicated = false }
        in
        Hashtbl.replace t.jobs digest e;
        e)

let register_foreign t digest =
  locked t (fun () ->
      match Hashtbl.find_opt t.jobs digest with
      | Some e -> e
      | None ->
        let e =
          { req = None; owner = None; completed = false; replicated = false }
        in
        Hashtbl.replace t.jobs digest e;
        e)

(* First completed observation of a digest: the payload kept for
   resubmission can never be needed again, so drop it, and enqueue the
   digest for FIFO eviction past [max_completed] — the registry stays
   bounded instead of growing with every job the coordinator has ever
   accepted.  Evicted digests that come back (a late poll) just take the
   [register_foreign] path and route by ring order. *)
let mark_completed t ~digest entry =
  locked t (fun () ->
      if not entry.completed then begin
        entry.completed <- true;
        entry.req <- None;
        Queue.push digest t.completed_q;
        while Queue.length t.completed_q > t.max_completed do
          let evicted = Queue.pop t.completed_q in
          match Hashtbl.find_opt t.jobs evicted with
          | Some e when e.completed -> Hashtbl.remove t.jobs evicted
          | _ -> ()
        done
      end)

(* Replicate a finished report to the digest's ring successor (the node
   that would inherit the digest if its owner vanished), best-effort:
   replication is an availability optimisation layered on top of the
   resubmission guarantee, so its failures are swallowed. *)
let replicate t entry ~digest ~served_by report =
  let target =
    locked t (fun () ->
        if entry.replicated then None
        else
          Ring.successors t.ring digest
          |> List.filter_map (fun name ->
              match Hashtbl.find_opt t.nodes name with
              | Some n when n.name <> served_by && n.state = Healthy -> Some n
              | _ -> None)
          |> function
          | [] -> None
          | n :: _ -> Some n)
  in
  match target with
  | None -> ()
  | Some n -> (
      match
        rpc_once t n (fun c -> Client.put_report c ~digest ~report; Wire.Pong)
      with
      | Wire.Pong ->
        entry.replicated <- true;
        Metrics.incr replications_c
      | _ | (exception _) -> ())

let note_state t entry ~digest ~served_by = function
  | Wire.Job_done report ->
    mark_completed t ~digest entry;
    replicate t entry ~digest ~served_by report
  | Wire.Job_failed _ | Wire.Job_cancelled | Wire.Job_timed_out ->
    mark_completed t ~digest entry
  | Wire.Job_pending -> ()

(* ------------------------------- ops ------------------------------- *)

let do_submit t jr =
  match Wire.job_of_request jr with
  | exception e -> Wire.Error_reply (Wire.err_of_exn e)
  | job -> (
      let digest = Job.digest job in
      let entry = register t digest jr in
      let nodes = candidates t ?first:entry.owner ~for_submit:true digest in
      match route t ~digest ~nodes (fun c -> Client.rpc c (Wire.Submit jr)) with
      | Error e -> Wire.Error_reply (Wire.err_of_exn e)
      | Ok (name, resp) ->
        (match resp with
         | Wire.Accepted _ -> entry.owner <- Some name
         | _ -> ());
        annotate name resp)

(* Poll/wait/cancel route to the job's last known owner first, then ring
   order.  A ["not-found"] from a failover node means the owner died
   with the job: resubmit from the registry on the same connection and
   re-ask — the job re-runs there and, being deterministic, yields the
   same report. *)
let with_resubmit entry ~digest op c =
  match op c with
  | Wire.Error_reply err when err.Wire.kind = "not-found" -> (
      match entry.req with
      | Some jr ->
        (match Client.rpc c (Wire.Submit jr) with
         | Wire.Accepted _ ->
           Metrics.incr resubmits_c;
           ignore
             (Trace_span.event "fleet:resubmit" ~attrs:[ ("job", digest) ]
              : int option);
           op c
         | other -> other)
      | None -> Wire.Error_reply err)
  | resp -> resp

let do_fetch t digest op =
  let entry =
    match find_entry t digest with
    | Some e -> e
    | None -> register_foreign t digest
  in
  let nodes = candidates t ?first:entry.owner ~for_submit:false digest in
  match route t ~digest ~nodes (with_resubmit entry ~digest op) with
  | Error e -> Wire.Error_reply (Wire.err_of_exn e)
  | Ok (name, resp) ->
    (match resp with
     | Wire.Status { state; _ } ->
       entry.owner <- Some name;
       note_state t entry ~digest ~served_by:name state
     | Wire.Cancelled { cancelled = true; _ } -> mark_completed t ~digest entry
     | _ -> ());
    annotate name resp

(* Stats fans out to every routable node and nests each backend's dump
   under its name — a protocol-1 [stats] client pointed at a coordinator
   still gets a JSON object back. *)
let do_stats t =
  let nodes =
    locked t (fun () ->
        Hashtbl.fold
          (fun _ n acc ->
             match n.state with Healthy | Draining -> n :: acc | _ -> acc)
          t.nodes [])
    |> List.sort (fun a b -> compare a.name b.name)
  in
  let per_node =
    List.map
      (fun n ->
         match rpc_once t n (fun c -> Wire.Stats_reply (Client.stats c)) with
         | Wire.Stats_reply j -> (n.name, j)
         | _ -> (n.name, Wire.Null)
         | exception e when transient_exn e ->
           note_failure t n.name;
           (n.name, Wire.Null))
      nodes
  in
  Wire.Stats_reply (Wire.Obj [ ("fleet", Wire.Obj per_node) ])

let status_json t =
  locked t (fun () ->
      let num i = Wire.Num (float_of_int i) in
      let nodes =
        Hashtbl.fold (fun _ n acc -> n :: acc) t.nodes []
        |> List.sort (fun a b -> compare a.name b.name)
        |> List.map (fun n ->
            Wire.Obj
              [
                ("name", Wire.Str n.name);
                ("state", Wire.Str (state_name n.state));
                ("fails", num n.fails);
                ("in_flight", num n.in_flight);
              ])
      in
      let tracked = Hashtbl.length t.jobs in
      let completed =
        Hashtbl.fold
          (fun _ e acc -> if e.completed then acc + 1 else acc)
          t.jobs 0
      in
      Wire.Obj
        [
          ("ring", Wire.Arr (List.map (fun n -> Wire.Str n) (Ring.nodes t.ring)));
          ("nodes", Wire.Arr nodes);
          ( "jobs",
            Wire.Obj
              [
                ("tracked", num tracked);
                ("completed", num completed);
                ("in_flight", num (tracked - completed));
              ] );
          ( "counters",
            Wire.Obj
              [
                ("reroutes", num (Metrics.counter_value reroutes_c));
                ("ejections", num (Metrics.counter_value ejections_c));
                ("readmissions", num (Metrics.counter_value readmissions_c));
                ("replications", num (Metrics.counter_value replications_c));
                ("resubmits", num (Metrics.counter_value resubmits_c));
              ] );
          ("draining", Wire.Bool t.draining);
        ])

(* Ring-aware drain: stop routing new digests to the node, await its
   in-flight jobs (completing them replicates their reports), then drop
   it from the ring.  Ordering mirrors the single-node graceful drain:
   refuse-new, await, remove. *)
let do_drain_node t name =
  match locked t (fun () -> Hashtbl.find_opt t.nodes name) with
  | None ->
    Wire.Error_reply
      {
        Wire.kind = "not-found";
        message = Printf.sprintf "unknown fleet node %s" name;
        transient = false;
      }
  | Some node ->
    locked t (fun () ->
        match node.state with
        | Healthy | Probation | Ejected -> node.state <- Draining
        | Draining | Drained -> ());
    let owned =
      locked t (fun () ->
          Hashtbl.fold
            (fun digest e acc ->
               if e.owner = Some name && not e.completed then (digest, e) :: acc
               else acc)
            t.jobs [])
    in
    let pending = ref 0 in
    List.iter
      (fun (digest, entry) ->
         (* chunked, so the configured drain bound is actually reachable
            even when it exceeds the per-RPC socket deadline *)
         match
           rpc_once t node (chunked_wait t ~digest (Some t.drain_timeout_s))
         with
         | Wire.Status { state; _ } ->
           note_state t entry ~digest ~served_by:name state;
           if not entry.completed then incr pending
         | _ -> incr pending
         | exception _ -> incr pending)
      owned;
    locked t (fun () ->
        node.state <- Drained;
        t.ring <- Ring.without t.ring name);
    ignore
      (Trace_span.event "fleet:drain" ~attrs:[ ("node", name) ] : int option);
    Wire.Drained { node = name; pending = !pending }

(* ------------------------------ prober ----------------------------- *)

let probe t node =
  match
    Client.with_client ~timeout_s:t.rpc_timeout_s node.addr Client.ping
  with
  | () -> note_success t node.name
  | exception _ -> note_failure t node.name

let probe_loop t () =
  let rec sleep s =
    if s > 0. && not (Atomic.get t.stop) then begin
      Thread.delay (Float.min 0.1 s);
      sleep (s -. 0.1)
    end
  in
  while not (Atomic.get t.stop) do
    let targets =
      locked t (fun () ->
          Hashtbl.fold
            (fun _ n acc -> if n.state = Drained then acc else n :: acc)
            t.nodes [])
    in
    List.iter (fun n -> if not (Atomic.get t.stop) then probe t n) targets;
    sleep t.probe_interval_s
  done

(* ------------------------------ public ----------------------------- *)

let create ?(vnodes = 64) ?(rpc_timeout_s = 10.0) ?(probe_interval_s = 2.0)
    ?(eject_threshold = 3) ?(drain_timeout_s = 30.0) ?(max_completed = 1024)
    ?retry addrs =
  if addrs = [] then invalid_arg "Coordinator.create: no backend nodes";
  let nodes = Hashtbl.create 8 in
  List.iter
    (fun addr ->
       let name = Client.addr_to_string addr in
       if not (Hashtbl.mem nodes name) then
         Hashtbl.replace nodes name
           {
             name;
             addr;
             state = Healthy;
             fails = 0;
             in_flight = 0;
             gauge = node_gauge name;
           })
    addrs;
  let names = Hashtbl.fold (fun name _ acc -> name :: acc) nodes [] in
  let t =
    {
      mutex = Mutex.create ();
      ring = Ring.make ~vnodes names;
      nodes;
      jobs = Hashtbl.create 64;
      completed_q = Queue.create ();
      max_completed = max 0 max_completed;
      rpc_timeout_s;
      probe_interval_s;
      eject_threshold;
      drain_timeout_s;
      retry =
        (match retry with
         | Some r -> r
         | None -> Retry.make ~base_backoff_ms:25. ~cap_backoff_ms:500. ());
      stop = Atomic.make false;
      prober = None;
      draining = false;
    }
  in
  t.prober <- Some (Thread.create (probe_loop t) ());
  t

let ring t = locked t (fun () -> t.ring)

let pending t =
  locked t (fun () ->
      Hashtbl.fold
        (fun _ e acc -> if e.completed then acc else acc + 1)
        t.jobs 0)

let handle t ~client:_ req =
  try
    match req with
    | Wire.Ping -> Wire.Pong
    | Wire.Fleet_status -> Wire.Fleet_reply (status_json t)
    | Wire.Drain_node name -> do_drain_node t name
    | Wire.Stats -> do_stats t
    | Wire.Submit jr ->
      if t.draining then
        Wire.Error_reply
          {
            Wire.kind = "unavailable";
            message = "coordinator is draining";
            transient = true;
          }
      else do_submit t jr
    | Wire.Poll digest ->
      do_fetch t digest (fun c -> Client.rpc c (Wire.Poll digest))
    | Wire.Wait (digest, timeout_s) ->
      do_fetch t digest (chunked_wait t ~digest timeout_s)
    | Wire.Cancel digest ->
      do_fetch t digest (fun c -> Client.rpc c (Wire.Cancel digest))
    | Wire.Put_report _ ->
      Wire.Error_reply
        {
          Wire.kind = "bad-request";
          message = "put-report targets a backend node, not the coordinator";
          transient = false;
        }
    | Wire.Watch_op _ | Wire.Append_chunk _ | Wire.Unwatch _ ->
      (* the Stream_hub handler wrapper intercepts watch ops before
         they reach the coordinator (`tml serve --coordinator` wraps
         this handler); seeing one here means no hub was installed *)
      Wire.Error_reply
        {
          Wire.kind = "bad-request";
          message = "this coordinator has no watch hub";
          transient = false;
        }
  with e -> Wire.Error_reply (Wire.err_of_exn e)

let set_draining t = t.draining <- true

(* Coordinator drain: await every tracked in-flight digest through the
   normal fetch path (which re-routes and resubmits as needed), so
   accepted jobs finish somewhere before the coordinator exits. *)
let drain ?timeout_s t =
  set_draining t;
  let timeout_s = Option.value timeout_s ~default:t.drain_timeout_s in
  let incomplete =
    locked t (fun () ->
        Hashtbl.fold
          (fun digest e acc -> if e.completed then acc else digest :: acc)
          t.jobs [])
  in
  List.iter
    (fun digest ->
       ignore
         (do_fetch t digest (chunked_wait t ~digest (Some timeout_s))
          : Wire.response))
    incomplete

let shutdown t =
  Atomic.set t.stop true;
  Option.iter Thread.join t.prober;
  t.prober <- None

let handler t =
  {
    Server.on_request = (fun ~client req -> handle t ~client req);
    (* every coordinator op except ping fans out RPCs to backends, so
       none of them may run on an event loop *)
    classify = (function Wire.Ping -> `Fast | _ -> `Slow);
    on_stop = (fun () -> set_draining t);
    on_drain = (fun ~timeout_s -> drain ~timeout_s t);
    pending = (fun () -> pending t);
    on_disconnect = (fun ~client:_ -> ());
  }
