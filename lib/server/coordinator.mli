(** The fleet coordinator: routes the wire protocol over a sharded pool
    of backend repair servers.

    A coordinator owns no {!Runtime}.  It decodes each submit just far
    enough to compute its {!Job.digest}, places the digest on a
    consistent-hash {!Ring} over the backend addresses, and proxies the
    RPC through {!Client} — so a protocol-1 client cannot tell a
    coordinator from a single node (responses gain only an extra
    ["node"] envelope field, which v1 decoders ignore).

    {b Failover.}  Transient failures — connection refused, peer death
    mid-RPC, deadlines, ["overloaded"]/["unavailable"] replies — re-route
    to the next ring successor after a capped jittered backoff
    ({!Retry.backoff_s}), bumping [tml_fleet_reroutes_total].  Finished
    reports are replicated ({!Wire.Put_report}) to the digest's
    successor, and every accepted submit's wire payload is kept in a
    registry until the job is observed complete: when a failover node
    answers ["not-found"], the job is resubmitted there and re-asked.
    Jobs are deterministic, so the recovered report is byte-identical —
    an accepted job is never lost to a node death.  Completed registry
    entries are evicted FIFO past [max_completed], so coordinator memory
    does not grow with lifetime job count.

    {b Waits.}  Proxied [Wait]s are re-issued to the backend in chunks
    shorter than [rpc_timeout_s], with the wait's own deadline enforced
    at the coordinator — a job running longer than the per-RPC socket
    deadline is {e not} a node failure, and never triggers a health
    strike, a re-route, or duplicated work.

    {b Health.}  A prober thread pings every node each
    [probe_interval_s]; [eject_threshold] consecutive failures eject a
    node from the ring ([tml_fleet_ejections_total]), a successful probe
    moves it to probation, and a second success re-admits it
    ([tml_fleet_readmissions_total]).  {!Wire.Drain_node} drains a node
    administratively: stop routing new digests to it, await its
    in-flight jobs, then remove it — zero job loss, same refuse-await-
    remove ordering as the single-node graceful drain.

    {b Observability.}  Per-node [tml_fleet_in_flight] gauges, the
    re-route/ejection/readmission/replication/resubmit counters, a
    [tml_fleet_fanout_seconds] latency histogram, and [fleet:route]
    spans parenting each backend [fleet:rpc]. *)

type t

val create :
  ?vnodes:int ->
  ?rpc_timeout_s:float ->
  ?probe_interval_s:float ->
  ?eject_threshold:int ->
  ?drain_timeout_s:float ->
  ?max_completed:int ->
  ?retry:Retry.t ->
  Client.addr list ->
  t
(** Build the ring over the given backends (all initially healthy) and
    start the prober thread.  [vnodes] (default 64) is the ring's
    virtual-node count; [rpc_timeout_s] (default 10) arms each backend
    socket's deadlines (waits are chunked below it, so it bounds
    node-silence detection, not job runtime); [probe_interval_s]
    (default 2) paces the health prober; [eject_threshold] (default 3)
    is the consecutive-failure ejection bar; [drain_timeout_s]
    (default 30) bounds per-job waits during drains; [max_completed]
    (default 1024) caps retained completed registry entries;
    [retry] shapes the failover backoff schedule (default: 25 ms base,
    500 ms cap).
    @raise Invalid_argument on an empty node list. *)

val handle : t -> client:int -> Wire.request -> Wire.response
(** Serve one request (never raises).  [Fleet_status] and [Drain_node]
    are answered locally; everything else routes to the ring. *)

val handler : t -> Server.handler
(** Plug the coordinator into {!Server.start}. *)

val ring : t -> Ring.t
(** The current ring (healthy + draining members). *)

val pending : t -> int
(** Tracked digests not yet observed complete. *)

val set_draining : t -> unit
(** Refuse new submits with a transient ["unavailable"] error. *)

val drain : ?timeout_s:float -> t -> unit
(** {!set_draining}, then await every tracked in-flight digest through
    the normal re-routing fetch path. *)

val shutdown : t -> unit
(** Stop and join the prober thread.  Does not drain. *)
