type entry = {
  fut : Job.outcome Future.t;
  client : int;
  mutable released : bool;
  (* the [Job_done] report text, rendered once on first read — settled
     jobs are polled/waited repeatedly (fan-in clients, fleet probes) and
     re-rendering through [Format] on every read dominates the settled
     fast path *)
  mutable report : string option;
}

type t = {
  mutex : Mutex.t;
  runtime : Runtime.t;
  admission : Admission.t;
  jobs : (string, entry) Hashtbl.t;
  (* entries still holding an admission ticket ([released = false]) — the
     only ones [sweep] must look at, so a sweep per request costs a nil
     check rather than a walk of the whole settled history *)
  mutable live : entry list;
  (* memo of wire payload -> decoded job: resubmits of an identical
     request (retries, fan-in clients) skip the textual model parse and
     the digest hash — the dominant per-request cost once the job itself
     is deduplicated *)
  decode_memo : (Wire.job_request, Job.t * string) Hashtbl.t;
  (* replicated reports pushed by a fleet coordinator (Put_report): a
     bounded FIFO of digest -> rendered report, servable by poll/wait
     even though this node never ran the job *)
  replicas : (string, string) Hashtbl.t;
  replica_fifo : string Queue.t;
  replica_cap : int;
  job_timeout_s : float option;
  retry : Retry.t option;
  mutable draining : bool;
}

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let create ?admission ?job_timeout_s ?retry ?(replica_cap = 256) runtime =
  {
    mutex = Mutex.create ();
    runtime;
    admission =
      (match admission with Some a -> a | None -> Admission.create ());
    jobs = Hashtbl.create 64;
    live = [];
    decode_memo = Hashtbl.create 64;
    replicas = Hashtbl.create 64;
    replica_fifo = Queue.create ();
    replica_cap;
    job_timeout_s;
    retry;
    draining = false;
  }

let admission t = t.admission

(* ----------------------------- metrics ----------------------------- *)

let op_counter =
  let mk op =
    Metrics.counter "tml_server_requests_total" ~label:("op", op)
      ~help:"Requests handled, by op"
  in
  let submit = mk "submit"
  and poll = mk "poll"
  and wait = mk "wait"
  and cancel = mk "cancel"
  and stats = mk "stats"
  and ping = mk "ping"
  and put_report = mk "put-report"
  and fleet = mk "fleet"
  and drain = mk "drain"
  and watch = mk "watch"
  and append_chunk = mk "append-chunk"
  and unwatch = mk "unwatch" in
  function
  | Wire.Submit _ -> submit
  | Wire.Poll _ -> poll
  | Wire.Wait _ -> wait
  | Wire.Cancel _ -> cancel
  | Wire.Stats -> stats
  | Wire.Ping -> ping
  | Wire.Put_report _ -> put_report
  | Wire.Fleet_status -> fleet
  | Wire.Drain_node _ -> drain
  | Wire.Watch_op _ -> watch
  | Wire.Append_chunk _ -> append_chunk
  | Wire.Unwatch _ -> unwatch

let kind_counter =
  let mk kind =
    Metrics.counter "tml_server_jobs_total" ~label:("kind", kind)
      ~help:"Jobs submitted over the wire, by kind"
  in
  let check = mk "check"
  and model = mk "model-repair"
  and data = mk "data-repair"
  and reward = mk "reward-repair"
  and pipeline = mk "pipeline" in
  function
  | "check" -> check
  | "model-repair" -> model
  | "data-repair" -> data
  | "reward-repair" -> reward
  | _ -> pipeline

let outcome_counter =
  let mk o =
    Metrics.counter "tml_server_responses_total" ~label:("outcome", o)
      ~help:"Responses sent, by outcome"
  in
  let ok = mk "ok" and error = mk "error" and overloaded = mk "overloaded" in
  function
  | Wire.Error_reply e when e.Wire.kind = "overloaded" -> overloaded
  | Wire.Error_reply _ -> error
  | _ -> ok

(* ------------------------------ sweep ------------------------------ *)

(* Admission tickets are released when the job settles.  Futures have no
   completion callback, so every [handle] call sweeps the registry —
   cheap (the table holds at most max_pending unreleased entries plus
   settled history) and prompt enough, since a busy server is exactly a
   server that calls [handle] often. *)
let sweep t =
  let to_release =
    locked t (fun () ->
        match t.live with
        | [] -> []
        | live ->
          let pending, settled =
            List.partition (fun e -> Future.is_pending e.fut) live
          in
          List.iter (fun e -> e.released <- true) settled;
          t.live <- pending;
          List.map (fun e -> e.client) settled)
  in
  List.iter (fun client -> Admission.release t.admission ~client) to_release

(* ---------------------------- responses ---------------------------- *)

let render_outcome outcome = Format.asprintf "%a" Job.pp_outcome outcome

let state_of = function
  | Future.Value outcome -> Wire.Job_done (render_outcome outcome)
  | Future.Failed e -> Wire.Job_failed (Wire.err_of_exn e)
  | Future.Cancelled -> Wire.Job_cancelled
  | Future.Timed_out -> Wire.Job_timed_out

(* [state_of] via the entry's report cache. *)
let state_of_entry e outcome =
  match outcome with
  | Future.Value o -> (
      match e.report with
      | Some r -> Wire.Job_done r
      | None ->
        let r = render_outcome o in
        e.report <- Some r;
        Wire.Job_done r)
  | o -> state_of o

let not_found digest =
  Wire.Error_reply
    {
      Wire.kind = "not-found";
      message = Printf.sprintf "unknown job %s" digest;
      transient = false;
    }

let find t digest = locked t (fun () -> Hashtbl.find_opt t.jobs digest)

let find_replica t digest =
  locked t (fun () -> Hashtbl.find_opt t.replicas digest)

let put_report t ~digest ~report =
  locked t (fun () ->
      if not (Hashtbl.mem t.replicas digest) then begin
        Hashtbl.replace t.replicas digest report;
        Queue.push digest t.replica_fifo;
        while Queue.length t.replica_fifo > t.replica_cap do
          Hashtbl.remove t.replicas (Queue.pop t.replica_fifo)
        done
      end);
  Wire.Stored { job = digest }

let replica_count t = locked t (fun () -> Hashtbl.length t.replicas)

let not_a_coordinator () =
  Wire.Error_reply
    {
      Wire.kind = "bad-request";
      message = "fleet ops require a coordinator (`tml serve --coordinator`)";
      transient = false;
    }

let decode_memo_cap = 512

let decode_job t jr =
  match locked t (fun () -> Hashtbl.find_opt t.decode_memo jr) with
  | Some (job, digest) -> Ok (job, digest)
  | None -> (
      match Wire.job_of_request jr with
      | exception e -> Error e
      | job ->
        let digest = Job.digest job in
        locked t (fun () ->
            if Hashtbl.length t.decode_memo >= decode_memo_cap then
              Hashtbl.reset t.decode_memo;
            Hashtbl.replace t.decode_memo jr (job, digest));
        Ok (job, digest))

let do_submit t ~client jr =
  if t.draining then
    Wire.Error_reply
      {
        Wire.kind = "unavailable";
        message = "server is draining";
        transient = true;
      }
  else
    match Admission.admit t.admission ~client with
    | (Admission.Shed_queue_full | Admission.Shed_client_limit) as v ->
      Wire.Error_reply (Wire.err_of_exn (Admission.overloaded_error v))
    | Admission.Admitted -> (
        let release () = Admission.release t.admission ~client in
        match decode_job t jr with
        | Error e ->
          release ();
          Wire.Error_reply (Wire.err_of_exn e)
        | Ok (job, digest) -> (
            Metrics.incr (kind_counter (Job.kind job));
            match find_replica t digest with
            | Some _ ->
              (* a coordinator replicated this digest's finished report to
                 us — no need to recompute *)
              release ();
              Wire.Accepted { job = digest; cached = true }
            | None ->
            match find t digest with
            | Some e ->
              (* duplicate submit: the first ticket is still tracking this
                 job, so the new one is returned immediately *)
              release ();
              Wire.Accepted { job = digest; cached = not (Future.is_pending e.fut) }
            | None -> (
                let fut =
                  Runtime.submit t.runtime ?timeout_s:t.job_timeout_s
                    ?retry:t.retry job
                in
                match Future.peek fut with
                | Some (Future.Failed (Tml_error.Error (Tml_error.Overloaded _) as e)) ->
                  (* the runtime's own bounded queue shed it *)
                  release ();
                  Wire.Error_reply (Wire.err_of_exn e)
                | peeked ->
                  locked t (fun () ->
                      let e = { fut; client; released = false; report = None } in
                      Hashtbl.replace t.jobs digest e;
                      t.live <- e :: t.live);
                  Wire.Accepted
                    { job = digest; cached = peeked <> None })))

let do_status t digest =
  match find t digest with
  | None ->
    (match find_replica t digest with
     | Some report -> Wire.Status { job = digest; state = Wire.Job_done report }
     | None -> not_found digest)
  | Some e ->
    (match Future.peek e.fut with
     | None -> Wire.Status { job = digest; state = Wire.Job_pending }
     | Some outcome ->
       Wire.Status { job = digest; state = state_of_entry e outcome })

let do_wait t digest timeout_s =
  match find t digest with
  | None ->
    (match find_replica t digest with
     | Some report -> Wire.Status { job = digest; state = Wire.Job_done report }
     | None -> not_found digest)
  | Some e ->
    (match Future.await ?timeout_s e.fut with
     | Future.Timed_out when Future.is_pending e.fut ->
       (* the wait's own deadline expired; the job is still running *)
       Wire.Status { job = digest; state = Wire.Job_pending }
     | outcome -> Wire.Status { job = digest; state = state_of_entry e outcome })

let do_cancel t digest =
  match find t digest with
  | None ->
    (match find_replica t digest with
     | Some _ ->
       (* a replicated report is already final — nothing to cancel *)
       Wire.Cancelled { job = digest; cancelled = false }
     | None -> not_found digest)
  | Some e ->
    let cancelled = Future.cancel e.fut in
    Wire.Cancelled { job = digest; cancelled }

(* Which requests may block the caller.  Only a wait on a job that is
   still running parks a thread (in [Future.await]); everything else —
   including a wait whose future has already settled, the common case for
   poll-after-completion clients — answers from memory and can run inline
   on an event loop. *)
let classify t = function
  | Wire.Wait (digest, _) -> (
      match find t digest with
      | Some e -> if Future.is_pending e.fut then `Slow else `Fast
      | None -> `Fast (* not-found or replica: answered immediately *))
  | _ -> `Fast

let handle t ~client req =
  Metrics.incr (op_counter req);
  sweep t;
  let resp =
    try
      match req with
      | Wire.Ping -> Wire.Pong
      | Wire.Stats -> Wire.Stats_reply (Wire.parse (Runtime.stats_json t.runtime))
      | Wire.Submit jr -> do_submit t ~client jr
      | Wire.Poll digest -> do_status t digest
      | Wire.Wait (digest, timeout_s) -> do_wait t digest timeout_s
      | Wire.Cancel digest -> do_cancel t digest
      | Wire.Put_report { job; report } -> put_report t ~digest:job ~report
      | Wire.Fleet_status | Wire.Drain_node _ -> not_a_coordinator ()
      | Wire.Watch_op _ | Wire.Append_chunk _ | Wire.Unwatch _ ->
        (* watch ops are served by the Stream_hub handler wrapper; a
           bare router means this node was started without one *)
        Wire.Error_reply
          {
            kind = "bad-request";
            message = "this server has no watch hub";
            transient = false;
          }
    with e -> Wire.Error_reply (Wire.err_of_exn e)
  in
  sweep t;
  Metrics.incr (outcome_counter resp);
  resp

(* ------------------------------ drain ------------------------------ *)

let pending_jobs t =
  locked t (fun () ->
      Hashtbl.fold
        (fun _ e n -> if Future.is_pending e.fut then n + 1 else n)
        t.jobs 0)

let set_draining t = t.draining <- true
let draining t = t.draining

let drain ?timeout_s t =
  set_draining t;
  let futures = locked t (fun () -> Hashtbl.fold (fun _ e acc -> e.fut :: acc) t.jobs []) in
  List.iter (fun fut -> ignore (Future.await ?timeout_s fut : Job.outcome Future.outcome)) futures;
  sweep t
