(** Consistent hashing of job digests over named fleet nodes.

    Each member node contributes [vnodes] virtual points on a 64-bit
    circle (FNV-1a of ["name#i"]); a key is owned by the first point
    clockwise from its own hash.  Because point positions depend only on
    the owning node's name, membership changes have {e deterministic
    rendezvous}: removing a node moves exactly the keys it owned (each to
    its ring successor) and no others, and re-adding the same name
    restores exactly the original ownership.  The coordinator leans on
    this to re-route around dead nodes without a reshuffle, and to know
    ahead of time where a digest's replica lives (its successor). *)

type t

val make : ?vnodes:int -> string list -> t
(** Build a ring over the given node names (deduplicated; order
    irrelevant).  [vnodes] (default 64) trades lookup-table size for
    ownership smoothness.
    @raise Invalid_argument when [vnodes < 1]. *)

val nodes : t -> string list
(** Member names, sorted. *)

val is_empty : t -> bool
val mem : t -> string -> bool

val without : t -> string -> t
(** The ring minus one node.  All other nodes' points are unchanged. *)

val with_node : t -> string -> t
(** The ring plus one node (idempotent). *)

val owner : t -> string -> string option
(** The node owning [key] ([None] on an empty ring). *)

val successors : t -> ?n:int -> string -> string list
(** The first [n] (default: all) {e distinct} nodes clockwise from
    [key]'s point — element 0 is the owner, element 1 the replica
    holder / failover target, and so on.  This is the coordinator's
    re-route candidate order. *)
