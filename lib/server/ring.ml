(* Consistent hashing of job digests over a set of named nodes.

   Every node contributes [vnodes] points on a 64-bit circle, placed by
   hashing "name#i" — point positions depend only on the node's own name,
   so adding or removing a node never moves any other node's points.
   That is the deterministic-rendezvous property the coordinator relies
   on: when a node dies, exactly the keys it owned slide to their ring
   successors, and every other key keeps its owner. *)

type t = {
  vnodes : int;
  names : string list;  (* member nodes, in insertion order *)
  points : (int64 * string) array;  (* sorted by (hash, name) *)
}

(* FNV-1a, 64-bit, finished with the splitmix64 avalanche.  Raw FNV of
   near-identical strings ("n2#17" vs "n3#17") differs by a constant
   offset, which correlates the nodes' point positions and can starve a
   node of arc length entirely; the finalizer decorrelates them. *)
let fnv1a64 s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
       h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001b3L)
    s;
  let mix shift prime z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z shift)) prime in
  let z = !h |> mix 30 0xbf58476d1ce4e5b9L |> mix 27 0x94d049bb133111ebL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let make ?(vnodes = 64) names =
  if vnodes < 1 then invalid_arg "Ring.make: vnodes >= 1";
  let names = List.sort_uniq compare names in
  let points =
    List.concat_map
      (fun name ->
         List.init vnodes (fun i ->
             (fnv1a64 (Printf.sprintf "%s#%d" name i), name)))
      names
    |> Array.of_list
  in
  Array.sort
    (fun (h1, n1) (h2, n2) ->
       match Int64.unsigned_compare h1 h2 with
       | 0 -> compare n1 n2
       | c -> c)
    points;
  { vnodes; names; points }

let nodes t = t.names
let is_empty t = t.names = []
let mem t name = List.mem name t.names

let without t name = make ~vnodes:t.vnodes (List.filter (( <> ) name) t.names)
let with_node t name = make ~vnodes:t.vnodes (name :: t.names)

(* Index of the first point whose hash is >= [h] (clockwise owner),
   wrapping to 0 past the last point. *)
let point_index t h =
  let n = Array.length t.points in
  let rec search lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if Int64.unsigned_compare (fst t.points.(mid)) h < 0 then
        search (mid + 1) hi
      else search lo mid
  in
  let i = search 0 n in
  if i = n then 0 else i

let successors t ?n key =
  let want = match n with Some n -> n | None -> List.length t.names in
  if t.names = [] || want <= 0 then []
  else begin
    let len = Array.length t.points in
    let start = point_index t (fnv1a64 key) in
    let acc = ref [] and count = ref 0 and i = ref 0 in
    while !count < want && !i < len do
      let _, name = t.points.((start + !i) mod len) in
      if not (List.mem name !acc) then begin
        acc := name :: !acc;
        incr count
      end;
      incr i
    done;
    List.rev !acc
  end

let owner t key =
  match successors t ~n:1 key with [ n ] -> Some n | _ -> None
