type addr = [ `Unix of string | `Tcp of string * int ]

exception Remote_error of Wire.err

type t = {
  fd : Unix.file_descr;
  max_frame : int;
  mutable next_id : int;
  mutable closed : bool;
}

let connect ?(max_frame = Wire.default_max_frame) (addr : addr) =
  let domain, sockaddr =
    match addr with
    | `Unix path -> (Unix.PF_UNIX, Unix.ADDR_UNIX path)
    | `Tcp (host, port) ->
      (Unix.PF_INET, Unix.ADDR_INET (Unix.inet_addr_of_string host, port))
  in
  let fd = Unix.socket ~cloexec:true domain Unix.SOCK_STREAM 0 in
  (try Unix.connect fd sockaddr
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  { fd; max_frame; next_id = 0; closed = false }

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let with_client ?max_frame addr f =
  let t = connect ?max_frame addr in
  Fun.protect ~finally:(fun () -> close t) (fun () -> f t)

(* One synchronous round-trip.  The client never arms a socket read
   deadline — a [wait] may legitimately block for the job's whole
   runtime; bound it with the request's own [timeout_s] instead. *)
let rpc t req =
  if t.closed then raise (Wire.Protocol_error "client is closed");
  t.next_id <- t.next_id + 1;
  let id = t.next_id in
  Wire.write_frame t.fd (Wire.request_to_json ~id req);
  match Wire.read_frame ~max_frame:t.max_frame t.fd with
  | `Eof -> raise (Wire.Protocol_error "server closed the connection")
  | `Idle -> raise (Wire.Protocol_error "spurious idle read")
  | `Frame j ->
    let rid, resp = Wire.response_of_json j in
    if rid <> id then
      raise
        (Wire.Protocol_error
           (Printf.sprintf "response id %d does not match request id %d" rid id));
    resp

let checked t req =
  match rpc t req with
  | Wire.Error_reply e -> raise (Remote_error e)
  | resp -> resp

let unexpected what =
  raise (Wire.Protocol_error ("unexpected response to " ^ what))

let ping t =
  match checked t Wire.Ping with Wire.Pong -> () | _ -> unexpected "ping"

let submit t jr =
  match checked t (Wire.Submit jr) with
  | Wire.Accepted { job; cached } -> (job, cached)
  | _ -> unexpected "submit"

let poll t digest =
  match checked t (Wire.Poll digest) with
  | Wire.Status { state; _ } -> state
  | _ -> unexpected "poll"

let wait t ?timeout_s digest =
  match checked t (Wire.Wait (digest, timeout_s)) with
  | Wire.Status { state; _ } -> state
  | _ -> unexpected "wait"

let cancel t digest =
  match checked t (Wire.Cancel digest) with
  | Wire.Cancelled { cancelled; _ } -> cancelled
  | _ -> unexpected "cancel"

let stats t =
  match checked t Wire.Stats with
  | Wire.Stats_reply j -> j
  | _ -> unexpected "stats"

let run t ?timeout_s jr =
  let digest, _cached = submit t jr in
  (digest, wait t ?timeout_s digest)
