type addr = [ `Unix of string | `Tcp of string * int ]

exception Remote_error of Wire.err

type t = {
  fd : Unix.file_descr;
  max_frame : int;
  mutable next_id : int;
  mutable closed : bool;
  mutable on_push : (Wire.json -> unit) option;
      (* server-push frames observed between replies; [None] drops them
         (the protocol-1 ignore-unknown contract) *)
}

let addr_to_string : addr -> string = function
  | `Unix path -> "unix:" ^ path
  | `Tcp (host, port) when String.contains host ':' ->
    Printf.sprintf "[%s]:%d" host port  (* IPv6 literal: round-trippable *)
  | `Tcp (host, port) -> Printf.sprintf "%s:%d" host port

(* "unix:PATH", "HOST:PORT" or "[HOST]:PORT".  HOST:PORT splits on the
   {e last} colon so bare IPv6 literals ("::1:7000") parse; the
   bracketed form disambiguates any host containing ':' — including a
   host literally named "unix", which the unix: prefix would otherwise
   shadow. *)
let addr_of_string s : addr =
  let bad fmt = Printf.ksprintf (fun m -> raise (Wire.Protocol_error m)) fmt in
  let tcp host port_s =
    match int_of_string_opt port_s with
    | Some port when port > 0 && port < 65536 -> `Tcp (host, port)
    | _ -> bad "bad port in address %S" s
  in
  let len = String.length s in
  if len >= 5 && String.sub s 0 5 = "unix:" then `Unix (String.sub s 5 (len - 5))
  else if len > 0 && s.[0] = '[' then (
    match String.index_opt s ']' with
    | Some i when i + 1 < len && s.[i + 1] = ':' ->
      tcp (String.sub s 1 (i - 1)) (String.sub s (i + 2) (len - i - 2))
    | _ -> bad "bad address %S (want [HOST]:PORT)" s)
  else (
    match String.rindex_opt s ':' with
    | None -> bad "bad address %S (want unix:PATH or HOST:PORT)" s
    | Some i -> tcp (String.sub s 0 i) (String.sub s (i + 1) (len - i - 1)))

let unreachable fmt =
  Printf.ksprintf
    (fun m -> raise (Tml_error.Error (Tml_error.Unreachable m)))
    fmt

let connect ?(max_frame = Wire.default_max_frame) ?timeout_s (addr : addr) =
  let sockaddr =
    match addr with
    | `Unix path -> Unix.ADDR_UNIX path
    | `Tcp (host, port) ->
      Unix.ADDR_INET (Unix.inet_addr_of_string host, port)
  in
  (* derive the protocol family from the parsed address, so IPv6
     literals get a PF_INET6 socket *)
  let domain = Unix.domain_of_sockaddr sockaddr in
  let fd = Unix.socket ~cloexec:true domain Unix.SOCK_STREAM 0 in
  (try
     (match timeout_s with
      | Some s ->
        Unix.setsockopt_float fd Unix.SO_RCVTIMEO s;
        Unix.setsockopt_float fd Unix.SO_SNDTIMEO s
      | None -> ());
     Unix.connect fd sockaddr
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     (match e with
      | Unix.Unix_error
          ( ( ECONNREFUSED | ECONNRESET | ENOENT | ENETUNREACH | EHOSTUNREACH
            | ETIMEDOUT | EAGAIN | EWOULDBLOCK | EINPROGRESS ),
            _,
            _ ) ->
        unreachable "cannot connect to %s: %s" (addr_to_string addr)
          (match e with
           | Unix.Unix_error (err, _, _) -> Unix.error_message err
           | _ -> Printexc.to_string e)
      | e -> raise e));
  { fd; max_frame; next_id = 0; closed = false; on_push = None }

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let with_client ?max_frame ?timeout_s addr f =
  let t = connect ?max_frame ?timeout_s addr in
  Fun.protect ~finally:(fun () -> close t) (fun () -> f t)

let connect_any ?max_frame ?timeout_s addrs =
  let rec go last = function
    | [] ->
      (match last with
       | Some e -> raise e
       | None -> invalid_arg "Client.connect_any: empty address list")
    | addr :: rest -> (
        match connect ?max_frame ?timeout_s addr with
        | t -> (addr, t)
        | exception (Tml_error.Error _ as e) -> go (Some e) rest)
  in
  go None addrs

let with_any ?max_frame ?timeout_s addrs f =
  let addr, t = connect_any ?max_frame ?timeout_s addrs in
  Fun.protect ~finally:(fun () -> close t) (fun () -> f addr t)

(* One synchronous round-trip.  Without a [connect ~timeout_s] deadline
   the client never arms a socket read timeout — a [wait] may
   legitimately block for the job's whole runtime; bound it with the
   request's own [timeout_s] instead.  Peer death mid-RPC (broken pipe,
   reset, close mid-frame, clean close instead of a reply) surfaces as a
   typed {e transient} [Tml_error.Unreachable], so callers can retry —
   against the same node or, in a fleet, the next ring owner. *)
let set_push_handler t f = t.on_push <- Some f

let dispatch_push t j =
  match t.on_push with
  | Some f -> ( try f j with _ -> ())
  | None -> ()

(* Read the next non-push frame: unsolicited server pushes (subscription
   notifications) may arrive interleaved with replies at any frame
   boundary and must be skipped before id correlation — the same
   ignore-what-you-don't-understand contract as unknown fields. *)
let rec read_reply t =
  match Wire.read_frame ~max_frame:t.max_frame t.fd with
  | `Frame j when Wire.is_push j ->
    dispatch_push t j;
    read_reply t
  | r -> r

let rpc t req =
  if t.closed then raise (Wire.Protocol_error "client is closed");
  t.next_id <- t.next_id + 1;
  let id = t.next_id in
  match
    Wire.write_frame t.fd (Wire.request_to_json ~id req);
    read_reply t
  with
  | exception Wire.Peer_closed m -> unreachable "%s" m
  | `Eof -> unreachable "server closed the connection before replying"
  | `Idle -> unreachable "rpc deadline expired with no reply"
  | `Frame j ->
    let rid, resp = Wire.response_of_json j in
    if rid <> id then
      raise
        (Wire.Protocol_error
           (Printf.sprintf "response id %d does not match request id %d" rid id));
    resp

(* Pipelined round-trips.  The server handles one request per connection
   at a time and queues pipelined frames in its decoder, so replies come
   back in request order — which is what lets us fire the whole window in
   one write burst and then just read replies in sequence.  Throughput
   over latency: syscalls and context switches amortise across the
   window instead of costing a round-trip per request. *)
let pipeline t ?on_reply reqs =
  if t.closed then raise (Wire.Protocol_error "client is closed");
  match reqs with
  | [] -> []
  | reqs ->
    let first_id = t.next_id + 1 in
    let frames =
      List.mapi (fun i req -> Wire.request_to_json ~id:(first_id + i) req) reqs
    in
    let n = List.length reqs in
    t.next_id <- t.next_id + n;
    let dec = Wire.Decoder.create ~max_frame:t.max_frame () in
    let rbuf = Bytes.create 65536 in
    let replies = ref [] in
    let got = ref 0 in
    (try
       Wire.write_frames t.fd frames;
       while !got < n do
         (match Unix.read t.fd rbuf 0 (Bytes.length rbuf) with
          | 0 ->
            Wire.Decoder.finish dec;
            unreachable "server closed the connection before replying"
          | k -> Wire.Decoder.feed dec rbuf 0 k
          | exception Unix.Unix_error (EINTR, _, _) -> ()
          | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) ->
            unreachable "rpc deadline expired with no reply"
          | exception Unix.Unix_error (ECONNRESET, _, _) ->
            unreachable "connection reset by peer");
         let rec drain () =
           if !got < n then
             match Wire.Decoder.next dec with
             | `Await -> ()
             | `Oversized len ->
               raise
                 (Wire.Protocol_error
                    (Printf.sprintf "frame of %d bytes exceeds limit %d" len
                       t.max_frame))
             | `Frame j when Wire.is_push j ->
               dispatch_push t j;
               drain ()
             | `Frame j ->
               let rid, resp = Wire.response_of_json j in
               let expect = first_id + !got in
               if rid <> expect then
                 raise
                   (Wire.Protocol_error
                      (Printf.sprintf
                         "response id %d does not match request id %d" rid
                         expect));
               (match on_reply with Some f -> f !got resp | None -> ());
               replies := resp :: !replies;
               incr got;
               drain ()
         in
         drain ()
       done
     with Wire.Peer_closed m -> unreachable "%s" m);
    List.rev !replies

let checked t req =
  match rpc t req with
  | Wire.Error_reply e -> raise (Remote_error e)
  | resp -> resp

let unexpected what =
  raise (Wire.Protocol_error ("unexpected response to " ^ what))

let ping t =
  match checked t Wire.Ping with Wire.Pong -> () | _ -> unexpected "ping"

let submit t jr =
  match checked t (Wire.Submit jr) with
  | Wire.Accepted { job; cached } -> (job, cached)
  | _ -> unexpected "submit"

let poll t digest =
  match checked t (Wire.Poll digest) with
  | Wire.Status { state; _ } -> state
  | _ -> unexpected "poll"

let wait t ?timeout_s digest =
  match checked t (Wire.Wait (digest, timeout_s)) with
  | Wire.Status { state; _ } -> state
  | _ -> unexpected "wait"

let cancel t digest =
  match checked t (Wire.Cancel digest) with
  | Wire.Cancelled { cancelled; _ } -> cancelled
  | _ -> unexpected "cancel"

let stats t =
  match checked t Wire.Stats with
  | Wire.Stats_reply j -> j
  | _ -> unexpected "stats"

let put_report t ~digest ~report =
  match checked t (Wire.Put_report { job = digest; report }) with
  | Wire.Stored _ -> ()
  | _ -> unexpected "put-report"

let fleet_status t =
  match checked t Wire.Fleet_status with
  | Wire.Fleet_reply j -> j
  | _ -> unexpected "fleet"

let drain_node t name =
  match checked t (Wire.Drain_node name) with
  | Wire.Drained { pending; _ } -> pending
  | _ -> unexpected "drain"

let run t ?timeout_s jr =
  let digest, _cached = submit t jr in
  (digest, wait t ?timeout_s digest)

(* ------------------------------ watches ----------------------------- *)

type appended = {
  lines : int;
  support_changed : bool;
  value : float option;
  violated : bool;
  job : string option;
  recheck : string;
}

let watch t ?spec ?from_seq id =
  match checked t (Wire.Watch_op { watch = id; spec; from_seq }) with
  | Wire.Watched { seq; created; _ } -> (seq, created)
  | _ -> unexpected "watch"

let append_chunk t ~watch chunk =
  match checked t (Wire.Append_chunk { watch; chunk }) with
  | Wire.Appended { lines; support_changed; value; violated; job; recheck; _ }
    ->
    { lines; support_changed; value; violated; job; recheck }
  | _ -> unexpected "append-chunk"

let unwatch t id =
  match checked t (Wire.Unwatch id) with
  | Wire.Unwatched { existed; _ } -> existed
  | _ -> unexpected "unwatch"

(* Follow mode: block reading server pushes.  [`Idle] fires on the
   socket's [SO_RCVTIMEO] deadline (set via [connect ~timeout_s]) so the
   caller can poll a stop condition; push frames that are not
   notifications — some future push kind — are skipped, per the
   forward-compatibility contract. *)
let follow t ?(on_idle = fun () -> `Continue) on_notification =
  if t.closed then raise (Wire.Protocol_error "client is closed");
  let rec go () =
    match Wire.read_frame ~max_frame:t.max_frame t.fd with
    | `Eof -> ()
    | `Idle -> ( match on_idle () with `Continue -> go () | `Stop -> ())
    | `Frame j when Wire.is_push j -> (
        match Wire.notification_of_json j with
        | n -> ( match on_notification n with `Continue -> go () | `Stop -> ())
        | exception _ -> go ())
    | `Frame _ -> go ()  (* stray non-push frame: not ours, skip *)
    | exception Wire.Peer_closed _ -> ()
  in
  go ()
