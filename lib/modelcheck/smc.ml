exception Unsupported of string

let rec sat_prop d s (f : Pctl.state_formula) =
  match f with
  | True -> true
  | False -> false
  | Prop p -> Dtmc.has_label d s p
  | Not g -> not (sat_prop d s g)
  | And (a, b) -> sat_prop d s a && sat_prop d s b
  | Or (a, b) -> sat_prop d s a || sat_prop d s b
  | Implies (a, b) -> (not (sat_prop d s a)) || sat_prop d s b
  | Prob _ | Reward _ ->
    raise (Unsupported "statistical checking of nested P/R operators")

(* The final path state repeats forever (sampled paths stop in absorbing
   states); [at i] therefore clamps. *)
let holds_on_path d path psi =
  let arr = Array.of_list path in
  let n = Array.length arr in
  if n = 0 then invalid_arg "Smc.holds_on_path: empty path";
  let at i = arr.(if i >= n then n - 1 else i) in
  let rec eventually_from i limit f =
    match limit with
    | Some k when i > k -> false
    | _ ->
      if i >= n then sat_prop d (at i) f
      else sat_prop d (at i) f || eventually_from (i + 1) limit f
  in
  let rec until_from i limit f1 f2 =
    match limit with
    | Some k when i > k -> false
    | _ ->
      if sat_prop d (at i) f2 then true
      else if not (sat_prop d (at i) f1) then false
      else if i >= n then false (* f1 forever without f2 in the loop state *)
      else until_from (i + 1) limit f1 f2
  in
  let globally_within limit f =
    let rec go i =
      match limit with
      | Some k when i > k -> true
      | _ ->
        if i >= n then sat_prop d (at i) f
        else sat_prop d (at i) f && go (i + 1)
    in
    go 0
  in
  match (psi : Pctl.path_formula) with
  | Next f -> sat_prop d (at 1) f
  | Eventually f -> eventually_from 0 None f
  | Bounded_eventually (f, k) -> eventually_from 0 (Some k) f
  | Until (f1, f2) -> until_from 0 None f1 f2
  | Bounded_until (f1, f2, k) -> until_from 0 (Some k) f1 f2
  | Globally f -> globally_within None f
  | Bounded_globally (f, k) -> globally_within (Some k) f

type estimate = {
  probability : float;
  samples : int;
  ci_low : float;
  ci_high : float;
}

let wilson ~successes ~samples =
  let n = float_of_int samples and k = float_of_int successes in
  if samples = 0 then (0.0, 1.0)
  else begin
    let z = 1.959963984540054 (* 95% *) in
    let p = k /. n in
    let z2 = z *. z in
    let denom = 1.0 +. (z2 /. n) in
    let centre = p +. (z2 /. (2.0 *. n)) in
    let spread = z *. sqrt ((p *. (1.0 -. p) /. n) +. (z2 /. (4.0 *. n *. n))) in
    ((centre -. spread) /. denom, (centre +. spread) /. denom)
  end

let estimate ?(samples = 10_000) ?(max_steps = 10_000) rng d psi =
  let successes = ref 0 in
  for _ = 1 to samples do
    let path = Dtmc.simulate rng d ~max_steps () in
    if holds_on_path d path psi then incr successes
  done;
  let p = float_of_int !successes /. float_of_int samples in
  let lo, hi = wilson ~successes:!successes ~samples in
  { probability = p; samples; ci_low = lo; ci_high = hi }

type sprt_verdict = Accept | Reject | Undecided of int

let verdict_to_string = function
  | Accept -> "accept"
  | Reject -> "reject"
  | Undecided n -> Printf.sprintf "undecided after %d samples" n

let sprt ?(alpha = 0.01) ?(beta = 0.01) ?(delta = 0.01) ?(max_samples = 1_000_000)
    ?(max_steps = 10_000) rng d phi =
  let cmp, bound, psi =
    match (phi : Pctl.state_formula) with
    | Prob (cmp, bound, psi) -> (cmp, bound, psi)
    | _ -> raise (Unsupported "SPRT needs a top-level P operator")
  in
  (* Test H0: p >= p1 = b + delta against H1: p <= p0 = b - delta, then
     translate back through the comparison direction. *)
  let p0 = bound -. delta and p1 = bound +. delta in
  if p0 <= 0.0 || p1 >= 1.0 then
    raise (Unsupported "SPRT bound too close to 0 or 1 for the given delta");
  let log_a = log ((1.0 -. beta) /. alpha) in
  let log_b = log (beta /. (1.0 -. alpha)) in
  let llr = ref 0.0 in
  let samples = ref 0 in
  let decided = ref None in
  while Option.is_none !decided && !samples < max_samples do
    incr samples;
    let path = Dtmc.simulate rng d ~max_steps () in
    let x = holds_on_path d path psi in
    (* log-likelihood ratio of H1 (p = p1) vs H0 (p = p0) *)
    llr :=
      !llr +. (if x then log (p1 /. p0) else log ((1.0 -. p1) /. (1.0 -. p0)));
    if !llr >= log_a then decided := Some Accept (* evidence for p >= p1 *)
    else if !llr <= log_b then decided := Some Reject (* evidence for p <= p0 *)
  done;
  (* [Accept] above means "the path probability is high"; align with the
     comparison direction of the formula. *)
  let raw =
    match !decided with Some v -> v | None -> Undecided !samples
  in
  let aligned =
    match (cmp, raw) with
    | (Pctl.Ge | Pctl.Gt), v -> v
    | (Pctl.Le | Pctl.Lt), Accept -> Reject
    | (Pctl.Le | Pctl.Lt), Reject -> Accept
    | (Pctl.Le | Pctl.Lt), (Undecided _ as u) -> u
  in
  (aligned, !samples)
