(** Statistical model checking for DTMCs: Monte-Carlo estimation of path
    probabilities with confidence intervals, and Wald's sequential
    probability ratio test (SPRT) for [P ~ b \[ψ\]] hypotheses.

    Complements the exact engine in {!Check_dtmc}: useful as an independent
    cross-check (several tests in this repository validate the numeric
    engine against it) and on models too large for the linear-system
    route. Path formulas are evaluated on sampled finite paths; unbounded
    operators are truncated at [max_steps], which is sound whenever
    sampled paths reach absorbing states first (as in all the paper's
    models). Nested probabilistic operators are not supported. *)

exception Unsupported of string

type estimate = {
  probability : float;
  samples : int;
  ci_low : float;  (** Wilson 95% confidence interval *)
  ci_high : float;
}

val holds_on_path : Dtmc.t -> int list -> Pctl.path_formula -> bool
(** Evaluate the path formula on one concrete path (labels taken from the
    chain). The final path state is treated as repeating forever.
    @raise Unsupported on nested [P]/[R]; @raise Invalid_argument on an
    empty path. *)

val estimate :
  ?samples:int ->
  ?max_steps:int ->
  Prng.t ->
  Dtmc.t ->
  Pctl.path_formula ->
  estimate
(** Monte-Carlo estimation (default 10_000 samples, 10_000 step cap). *)

type sprt_verdict =
  | Accept  (** the bound holds at the requested error levels *)
  | Reject
  | Undecided of int
      (** sample budget exhausted inside the indifference region; the
          payload is the samples consumed, so callers can log why the
          fast path fell through *)

val verdict_to_string : sprt_verdict -> string
(** ["accept"], ["reject"], ["undecided after N samples"]. *)

val sprt :
  ?alpha:float ->
  ?beta:float ->
  ?delta:float ->
  ?max_samples:int ->
  ?max_steps:int ->
  Prng.t ->
  Dtmc.t ->
  Pctl.state_formula ->
  sprt_verdict * int
(** [sprt rng chain (P ~ b \[ψ\])] — Wald's SPRT with type-I/II error
    bounds [alpha]/[beta] (default 0.01) and indifference half-width
    [delta] (default 0.01); also returns the number of samples drawn.
    @raise Unsupported when the formula is not a top-level [P] operator or
    the bound ± delta leaves (0, 1). *)
