(* Sign-magnitude bignums, little-endian limbs in base 2^31.

   Invariants: [mag] has no trailing (most-significant) zero limb; the value
   zero is uniquely { sign = 0; mag = [||] }; sign is -1, 0 or 1.

   Base 2^31 is the largest base for which Knuth's Algorithm D stays within
   63-bit native ints: the worst intermediate, (B-1)*B + (B-1) = B^2 - 1
   = 2^62 - 1, is exactly [max_int]. *)

let base_bits = 31
let base = 1 lsl base_bits
let mask = base - 1

type t = { sign : int; mag : int array }

let zero = { sign = 0; mag = [||] }

(* ------------------------------------------------------------------ *)
(* Magnitude helpers (arrays of limbs, unsigned)                       *)
(* ------------------------------------------------------------------ *)

let mag_normalize a =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do decr n done;
  if !n = Array.length a then a else Array.sub a 0 !n

let mag_compare a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else begin
    let rec go i = if i < 0 then 0
      else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)
  end

let mag_add a b =
  let la = Array.length a and lb = Array.length b in
  let l = Stdlib.max la lb in
  let r = Array.make (l + 1) 0 in
  let carry = ref 0 in
  for i = 0 to l - 1 do
    let s = (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry in
    r.(i) <- s land mask;
    carry := s lsr base_bits
  done;
  r.(l) <- !carry;
  mag_normalize r

(* Requires a >= b. *)
let mag_sub a b =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let s = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if s < 0 then begin r.(i) <- s + base; borrow := 1 end
    else begin r.(i) <- s; borrow := 0 end
  done;
  assert (!borrow = 0);
  mag_normalize r

let mag_mul_school a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then [||]
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let ai = a.(i) in
      if ai <> 0 then begin
        let carry = ref 0 in
        for j = 0 to lb - 1 do
          let s = r.(i + j) + (ai * b.(j)) + !carry in
          r.(i + j) <- s land mask;
          carry := s lsr base_bits
        done;
        (* Propagate the final carry; it fits in one limb here but a
           subsequent row may push it further. *)
        let k = ref (i + lb) in
        while !carry <> 0 do
          let s = r.(!k) + !carry in
          r.(!k) <- s land mask;
          carry := s lsr base_bits;
          incr k
        done
      end
    done;
    mag_normalize r
  end

(* Above this many limbs per operand, Karatsuba's three half-size products
   beat the schoolbook O(n^2) row loop.  The threshold is deliberately
   conservative: below ~24 limbs (~744 bits) the splitting overhead
   (copies, adds, normalization) dominates. *)
let karatsuba_threshold = 24

let rec mag_mul a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then [||]
  else if la < karatsuba_threshold || lb < karatsuba_threshold then
    mag_mul_school a b
  else begin
    (* Split both operands at m limbs: x = x1*B^m + x0.  Then
       x*y = z2*B^2m + z1*B^m + z0 with z1 = (x0+x1)(y0+y1) - z0 - z2. *)
    let m = Stdlib.max la lb / 2 in
    let lo x =
      let l = Array.length x in
      if l <= m then x else mag_normalize (Array.sub x 0 m)
    and hi x =
      let l = Array.length x in
      if l <= m then [||] else Array.sub x m (l - m)
    in
    let a0 = lo a and a1 = hi a and b0 = lo b and b1 = hi b in
    let z0 = mag_mul a0 b0 in
    let z2 = mag_mul a1 b1 in
    let z1 = mag_sub (mag_sub (mag_mul (mag_add a0 a1) (mag_add b0 b1)) z0) z2 in
    let shifted x k =
      if Array.length x = 0 then [||] else Array.append (Array.make k 0) x
    in
    mag_add (mag_add z0 (shifted z1 m)) (shifted z2 (2 * m))
  end

let mag_mul_small a m =
  (* 0 <= m < base *)
  if m = 0 || Array.length a = 0 then [||]
  else begin
    let la = Array.length a in
    let r = Array.make (la + 1) 0 in
    let carry = ref 0 in
    for i = 0 to la - 1 do
      let s = (a.(i) * m) + !carry in
      r.(i) <- s land mask;
      carry := s lsr base_bits
    done;
    r.(la) <- !carry;
    mag_normalize r
  end

let mag_add_small a m =
  (* 0 <= m < base *)
  let la = Array.length a in
  let r = Array.make (la + 1) 0 in
  Array.blit a 0 r 0 la;
  let carry = ref m in
  let i = ref 0 in
  while !carry <> 0 && !i <= la do
    let s = r.(!i) + !carry in
    r.(!i) <- s land mask;
    carry := s lsr base_bits;
    incr i
  done;
  mag_normalize r

(* Divide by a single limb 0 < d < base; returns (quotient, remainder). *)
let mag_divmod_small a d =
  let la = Array.length a in
  let q = Array.make la 0 in
  let r = ref 0 in
  for i = la - 1 downto 0 do
    let cur = (!r lsl base_bits) lor a.(i) in
    q.(i) <- cur / d;
    r := cur mod d
  done;
  (mag_normalize q, !r)

(* Shift magnitude left by s bits, 0 <= s < base_bits. Always returns
   la + 1 limbs (top limb possibly 0): Algorithm D relies on the extra
   high limb being present even when s = 0. *)
let mag_shift_left_bits a s =
  let la = Array.length a in
  let r = Array.make (la + 1) 0 in
  let carry = ref 0 in
  for i = 0 to la - 1 do
    let v = (a.(i) lsl s) lor !carry in
    r.(i) <- v land mask;
    carry := v lsr base_bits
  done;
  r.(la) <- !carry;
  r

let mag_shift_right_bits a s =
  if s = 0 then Array.copy a
  else begin
    let la = Array.length a in
    let r = Array.make la 0 in
    for i = 0 to la - 1 do
      let lo = a.(i) lsr s in
      let hi = if i + 1 < la then (a.(i + 1) lsl (base_bits - s)) land mask else 0 in
      r.(i) <- lo lor hi
    done;
    mag_normalize r
  end

(* Knuth Algorithm D (TAOCP vol.2, 4.3.1).  Requires |b| >= 2 limbs and
   |a| >= |b|; returns (quotient, remainder) of magnitudes. *)
let mag_divmod_knuth a b =
  let n = Array.length b in
  (* D1: normalize so that the top limb of v is >= base/2. *)
  let s =
    let top = b.(n - 1) in
    let rec go s = if (top lsl s) land mask >= base / 2 then s else go Stdlib.(s + 1) in
    go 0
  in
  let v = mag_shift_left_bits b s in
  let v = Array.sub v 0 n in  (* top carry is zero since shift keeps width *)
  let u = mag_shift_left_bits a s in
  let m = Array.length u - n in (* u has length la+1 >= n+1 *)
  let u = if m < 1 then Array.append u (Array.make (1 - m) 0) else u in
  let m = Array.length u - n in
  let q = Array.make m 0 in
  let vtop = v.(n - 1) and vsec = if n >= 2 then v.(n - 2) else 0 in
  for j = m - 1 downto 0 do
    (* D3: estimate qhat. *)
    let hi = u.(j + n) and lo = u.(j + n - 1) in
    let num = (hi lsl base_bits) lor lo in
    let qhat = ref (num / vtop) and rhat = ref (num mod vtop) in
    if !qhat >= base then begin
      rhat := !rhat + ((!qhat - (base - 1)) * vtop);
      qhat := base - 1
    end;
    let continue = ref true in
    while !continue && !rhat < base do
      let u2 = if j + n - 2 >= 0 then u.(j + n - 2) else 0 in
      if !qhat * vsec > (!rhat lsl base_bits) lor u2 then begin
        decr qhat;
        rhat := !rhat + vtop
      end else continue := false
    done;
    (* D4: u[j .. j+n] -= qhat * v. *)
    let borrow = ref 0 in
    for i = 0 to n - 1 do
      let p = (!qhat * v.(i)) + !borrow in
      let t = u.(j + i) - (p land mask) in
      if t < 0 then begin u.(j + i) <- t + base; borrow := (p lsr base_bits) + 1 end
      else begin u.(j + i) <- t; borrow := p lsr base_bits end
    done;
    let t = u.(j + n) - !borrow in
    if t < 0 then begin
      (* D6: qhat was one too large; add v back. *)
      u.(j + n) <- t + base;
      decr qhat;
      let carry = ref 0 in
      for i = 0 to n - 1 do
        let s2 = u.(j + i) + v.(i) + !carry in
        u.(j + i) <- s2 land mask;
        carry := s2 lsr base_bits
      done;
      u.(j + n) <- (u.(j + n) + !carry) land mask
    end else u.(j + n) <- t;
    q.(j) <- !qhat
  done;
  let r = mag_shift_right_bits (mag_normalize (Array.sub u 0 n)) s in
  (mag_normalize q, r)

let mag_divmod a b =
  match Array.length b with
  | 0 -> raise Division_by_zero
  | _ when mag_compare a b < 0 -> ([||], Array.copy a)
  | 1 ->
    let q, r = mag_divmod_small a b.(0) in
    (q, if r = 0 then [||] else [| r |])
  | _ -> mag_divmod_knuth a b

(* ------------------------------------------------------------------ *)
(* Signed layer                                                        *)
(* ------------------------------------------------------------------ *)

let make sign mag =
  let mag = mag_normalize mag in
  if Array.length mag = 0 then zero else { sign; mag }

let of_int i =
  if i = 0 then zero
  else begin
    let sign = if i > 0 then 1 else -1 in
    (* Avoid overflow on min_int by working with a non-negative value in
       pieces: min_int magnitude still fits since we split into limbs. *)
    let rec limbs acc v =
      if v = 0 then List.rev acc
      else limbs ((v land mask) :: acc) (v lsr base_bits)
    in
    let v = if i > 0 then i else begin
        (* -min_int overflows; handle via lnot + 1 on the limb list *)
        if i = min_int then min_int else -i
      end
    in
    if i = min_int then
      (* min_int = -(2^62); magnitude is 2^62 = limb pattern [0;0;1 lsl 0] in
         base 2^31: 2^62 = (2^31)^2. *)
      { sign = -1; mag = [| 0; 0; 1 |] }
    else { sign; mag = Array.of_list (limbs [] v) }
  end

let one = of_int 1
let two = of_int 2
let minus_one = of_int (-1)

let sign t = t.sign
let is_zero t = t.sign = 0
let is_one t = t.sign = 1 && Array.length t.mag = 1 && t.mag.(0) = 1

let equal a b = a.sign = b.sign && mag_compare a.mag b.mag = 0

let compare a b =
  if a.sign <> b.sign then Stdlib.compare a.sign b.sign
  else if a.sign >= 0 then mag_compare a.mag b.mag
  else mag_compare b.mag a.mag

let hash t =
  Array.fold_left (fun h l -> (h * 65599) + l) t.sign t.mag

let num_bits t =
  let n = Array.length t.mag in
  if n = 0 then 0
  else begin
    let top = t.mag.(n - 1) in
    let rec bits b v = if v = 0 then b else bits Stdlib.(b + 1) (v lsr 1) in
    ((n - 1) * base_bits) + bits 0 top
  end

let neg t = if t.sign = 0 then zero else { t with sign = -t.sign }
let abs t = if t.sign < 0 then neg t else t

let add a b =
  if a.sign = 0 then b
  else if b.sign = 0 then a
  else if a.sign = b.sign then make a.sign (mag_add a.mag b.mag)
  else begin
    let c = mag_compare a.mag b.mag in
    if c = 0 then zero
    else if c > 0 then make a.sign (mag_sub a.mag b.mag)
    else make b.sign (mag_sub b.mag a.mag)
  end

let sub a b = add a (neg b)

let mul a b =
  if a.sign = 0 || b.sign = 0 then zero
  else make (a.sign * b.sign) (mag_mul a.mag b.mag)

let succ t = add t one
let pred t = sub t one

let divmod a b =
  if b.sign = 0 then raise Division_by_zero
  else if a.sign = 0 then (zero, zero)
  else begin
    let qm, rm = mag_divmod a.mag b.mag in
    let q = make (a.sign * b.sign) qm in
    let r = make a.sign rm in
    (q, r)
  end

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let ediv_rem a b =
  let q, r = divmod a b in
  if r.sign >= 0 then (q, r)
  else if b.sign > 0 then (pred q, add r b)
  else (succ q, sub r b)

let rec gcd_mag a b = if b.sign = 0 then a else gcd_mag b (rem a b)

let gcd a b = gcd_mag (abs a) (abs b)

let lcm a b =
  if a.sign = 0 || b.sign = 0 then zero
  else abs (div (mul a b) (gcd a b))

let pow b e =
  if e < 0 then invalid_arg "Bigint.pow: negative exponent";
  let rec go acc b e =
    if e = 0 then acc
    else begin
      let acc = if e land 1 = 1 then mul acc b else acc in
      go acc (mul b b) (e lsr 1)
    end
  in
  go one b e

let shift_left t k =
  if k < 0 then invalid_arg "Bigint.shift_left";
  if t.sign = 0 || k = 0 then t
  else begin
    let limbs = k / base_bits and bits = k mod base_bits in
    let shifted = mag_shift_left_bits t.mag bits in
    let mag = Array.append (Array.make limbs 0) shifted in
    make t.sign mag
  end

let shift_right t k =
  if k < 0 then invalid_arg "Bigint.shift_right";
  if t.sign = 0 || k = 0 then t
  else begin
    let limbs = k / base_bits and bits = k mod base_bits in
    let n = Array.length t.mag in
    if limbs >= n then zero
    else begin
      let dropped = Array.sub t.mag limbs (n - limbs) in
      make t.sign (mag_shift_right_bits dropped bits)
    end
  end

let mul_int t m =
  if m = 0 || t.sign = 0 then zero
  else begin
    let am = Stdlib.abs m in
    let s = if m > 0 then t.sign else -t.sign in
    if am < base then make s (mag_mul_small t.mag am)
    else mul t (of_int m)
  end

let add_int t m = add t (of_int m)

let to_int_opt t =
  if num_bits t <= 62 then begin
    let v = Array.fold_right (fun l acc -> (acc lsl base_bits) lor l) t.mag 0 in
    Some (if t.sign < 0 then -v else v)
  end
  else if t.sign < 0 && num_bits t = 63 && equal t (of_int min_int) then Some min_int
  else None

let to_int_exn t =
  match to_int_opt t with
  | Some i -> i
  | None -> failwith "Bigint.to_int_exn: does not fit in int"

let to_float t =
  let f = Array.fold_right (fun l acc -> (acc *. 2147483648.0) +. float_of_int l) t.mag 0.0 in
  if t.sign < 0 then -.f else f

(* Decimal I/O via 10^9 chunks (10^9 < base). *)
let chunk = 1_000_000_000

let to_string t =
  if t.sign = 0 then "0"
  else begin
    let buf = Buffer.create 32 in
    let rec go mag acc =
      if Array.length mag = 0 then acc
      else begin
        let q, r = mag_divmod_small mag chunk in
        go q (r :: acc)
      end
    in
    let chunks = go t.mag [] in
    if t.sign < 0 then Buffer.add_char buf '-';
    (match chunks with
     | [] -> assert false
     | first :: rest ->
       Buffer.add_string buf (string_of_int first);
       List.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%09d" c)) rest);
    Buffer.contents buf
  end

let of_string_opt s =
  let len = String.length s in
  if len = 0 then None
  else begin
    let neg, start =
      match s.[0] with
      | '-' -> (true, 1)
      | '+' -> (false, 1)
      | _ -> (false, 0)
    in
    if start >= len then None
    else begin
      let mag = ref [||] in
      let acc = ref 0 and acc_digits = ref 0 in
      let ok = ref true in
      String.iteri
        (fun i c ->
           if i >= start && !ok then begin
             match c with
             | '0' .. '9' ->
               acc := (!acc * 10) + (Char.code c - Char.code '0');
               incr acc_digits;
               if !acc_digits = 9 then begin
                 mag := mag_add_small (mag_mul_small !mag chunk) !acc;
                 acc := 0;
                 acc_digits := 0
               end
             | '_' -> ()
             | _ -> ok := false
           end)
        s;
      if not !ok then None
      else begin
        if !acc_digits > 0 then begin
          let p = int_of_float (10.0 ** float_of_int !acc_digits) in
          mag := mag_add_small (mag_mul_small !mag p) !acc
        end;
        let m = mag_normalize !mag in
        if Array.length m = 0 then Some zero
        else Some { sign = (if neg then -1 else 1); mag = m }
      end
    end
  end

let of_string s =
  match of_string_opt s with
  | Some t -> t
  | None -> invalid_arg (Printf.sprintf "Bigint.of_string: %S" s)

let ( + ) = add
let ( - ) = sub
let ( * ) = mul
let ( / ) = div
let ( ~- ) = neg

let pp fmt t = Format.pp_print_string fmt (to_string t)
