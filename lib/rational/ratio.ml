(* Normalised rationals: den > 0, gcd(num, den) = 1, zero is 0/1.

   Hybrid representation: values whose numerator and denominator both fit
   in 30 bits live in the [S] constructor and are manipulated entirely in
   native-int arithmetic (a single division-free gcd per op); everything
   else lives in [N] over Bigint.  The 30-bit bound makes overflow
   impossible by construction on 63-bit ints: cross products are at most
   2^60 in magnitude and their sums at most 2^61 < max_int.

   Canonical-form invariant: a value is represented as [S] IFF both its
   normalised numerator magnitude and denominator fit within [small_max].
   Every constructor re-establishes this (big results are demoted when
   they shrink back under the bound), so structural equality of the
   representation coincides with semantic equality and [equal]/[hash]
   never need cross-representation comparisons. *)

module B = Bigint

let small_max = (1 lsl 30) - 1

type t =
  | S of int * int  (* num, den: den > 0, coprime, both within small_max *)
  | N of { num : B.t; den : B.t }  (* den > 0, coprime, exceeds small_max *)

let promotions =
  Metrics.counter "tml_ratio_promotions_total"
    ~help:"Rational operations whose result left the native small-int fast path"

let fits v = v >= -small_max && v <= small_max

let zero = S (0, 1)
let one = S (1, 1)
let minus_one = S (-1, 1)
let half = S (1, 2)

(* gcd of non-negative native ints *)
let rec igcd a b = if b = 0 then a else igcd b (a mod b)

(* Build from native parts with |n|, |d| < 2^62 (no intermediate can
   overflow); normalises sign and gcd, demotes/promotes as needed. *)
let of_small_parts n d =
  if d = 0 then raise Division_by_zero;
  if n = 0 then zero
  else begin
    let n, d = if d < 0 then (-n, -d) else (n, d) in
    let g = igcd (abs n) d in
    let n = n / g and d = d / g in
    if fits n && d <= small_max then S (n, d)
    else begin
      Metrics.incr promotions;
      N { num = B.of_int n; den = B.of_int d }
    end
  end

(* Already coprime native parts with d > 0 (e.g. after cross-reduction). *)
let of_coprime_parts n d =
  if n = 0 then zero
  else if fits n && d <= small_max then S (n, d)
  else begin
    Metrics.incr promotions;
    N { num = B.of_int n; den = B.of_int d }
  end

(* Demote an already-normalised bignum pair when it fits. *)
let of_reduced_big num den =
  if B.is_zero num then zero
  else
    match (B.to_int_opt num, B.to_int_opt den) with
    | Some n, Some d when fits n && d <= small_max -> S (n, d)
    | _ -> N { num; den }

let normalize num den =
  if B.is_zero den then raise Division_by_zero;
  if B.is_zero num then zero
  else begin
    let num, den = if B.sign den < 0 then (B.neg num, B.neg den) else (num, den) in
    let g = B.gcd num den in
    let num, den =
      if B.is_one g then (num, den) else (B.div num g, B.div den g)
    in
    of_reduced_big num den
  end

let make num den = normalize num den

let of_bigint n =
  match B.to_int_opt n with
  | Some i when fits i -> S (i, 1)
  | _ -> N { num = n; den = B.one }

let of_int i = if fits i then S (i, 1) else N { num = B.of_int i; den = B.one }

let of_ints n d =
  (* min_int has no native negation/abs; push it through the bignum path *)
  if n = min_int || d = min_int then normalize (B.of_int n) (B.of_int d)
  else of_small_parts n d

let num = function S (n, _) -> B.of_int n | N r -> r.num
let den = function S (_, d) -> B.of_int d | N r -> r.den
let sign = function S (n, _) -> Stdlib.compare n 0 | N r -> B.sign r.num
let is_zero = function S (n, _) -> n = 0 | N _ -> false
let is_integer = function S (_, d) -> d = 1 | N r -> B.is_one r.den

let neg = function
  | S (n, d) -> S (-n, d)
  | N r -> N { r with num = B.neg r.num }

let abs = function
  | S (n, d) -> S (Stdlib.abs n, d)
  | N r -> N { r with num = B.abs r.num }

let inv = function
  | S (0, _) -> raise Division_by_zero
  | S (n, d) -> if n > 0 then S (d, n) else S (-d, -n)
  | N r ->
    if B.sign r.num > 0 then N { num = r.den; den = r.num }
    else N { num = B.neg r.den; den = B.neg r.num }

let big_add a b =
  normalize
    (B.add (B.mul (num a) (den b)) (B.mul (num b) (den a)))
    (B.mul (den a) (den b))

let add a b =
  match (a, b) with
  | S (0, _), x | x, S (0, _) -> x
  | S (an, ad), S (bn, bd) ->
    if ad = bd then of_small_parts (an + bn) ad
    else of_small_parts ((an * bd) + (bn * ad)) (ad * bd)
  | _ -> big_add a b

let sub a b = add a (neg b)

let mul a b =
  match (a, b) with
  | S (0, _), _ | _, S (0, _) -> zero
  | S (1, 1), x | x, S (1, 1) -> x
  | S (an, ad), S (bn, bd) ->
    (* Cross-reduce before multiplying: gcd(an,bd) and gcd(bn,ad) carry all
       common factors (each operand is internally coprime), so the products
       below are already in lowest terms — no trailing gcd needed. *)
    let g1 = igcd (Stdlib.abs an) bd and g2 = igcd (Stdlib.abs bn) ad in
    of_coprime_parts (an / g1 * (bn / g2)) (ad / g2 * (bd / g1))
  | _ -> normalize (B.mul (num a) (num b)) (B.mul (den a) (den b))

let div a b = mul a (inv b)

(* Powers of a normalised value are normalised (coprimality is preserved
   by exponentiation), so [pow] never re-runs the gcd. *)
let rec pow t e =
  if e = 0 then one
  else if e < 0 then inv (pow t (-e))
  else
    match t with
    | S (n, d) ->
    (* stay native when the result provably fits: bits(x^e) <= bits(x)*e *)
    let bits v =
      let rec go b v = if v = 0 then b else go (b + 1) (v lsr 1) in
      go 0 (Stdlib.abs v)
    in
    if Stdlib.max (bits n) (bits d) * e <= 30 then begin
      let rec ipow acc b e =
        if e = 0 then acc
        else ipow (if e land 1 = 1 then acc * b else acc) (b * b) (e lsr 1)
      in
      S (ipow 1 n e, ipow 1 d e)
    end
    else of_reduced_big (B.pow (B.of_int n) e) (B.pow (B.of_int d) e)
  | N r -> of_reduced_big (B.pow r.num e) (B.pow r.den e)

let equal a b =
  match (a, b) with
  | S (an, ad), S (bn, bd) -> an = bn && ad = bd
  | N x, N y -> B.equal x.num y.num && B.equal x.den y.den
  | _ -> false (* canonical form: small values are never represented big *)

let compare a b =
  let sa = sign a and sb = sign b in
  if sa <> sb then Stdlib.compare sa sb
  else
    match (a, b) with
    | S (an, ad), S (bn, bd) -> Stdlib.compare (an * bd) (bn * ad)
    | _ -> B.compare (B.mul (num a) (den b)) (B.mul (num b) (den a))

let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let ( < ) a b = compare a b < 0
let ( <= ) a b = compare a b <= 0
let ( > ) a b = compare a b > 0
let ( >= ) a b = compare a b >= 0

let ( + ) = add
let ( - ) = sub
let ( * ) = mul
let ( / ) = div
let ( ~- ) = neg

let to_float = function
  | S (n, d) -> float_of_int n /. float_of_int d
  | N r -> B.to_float r.num /. B.to_float r.den

let to_string = function
  | S (n, 1) -> string_of_int n
  | S (n, d) -> Printf.sprintf "%d/%d" n d
  | N r ->
    if B.is_one r.den then B.to_string r.num
    else B.to_string r.num ^ "/" ^ B.to_string r.den

let pp fmt t = Format.pp_print_string fmt (to_string t)

let hash = function
  | S (n, d) -> Stdlib.( + ) n (Stdlib.( * ) 31 d)
  | N r -> Stdlib.( + ) (B.hash r.num) (Stdlib.( * ) 31 (B.hash r.den))

let floor = function
  | S (n, d) ->
    let q = Stdlib.( / ) n d in
    B.of_int (if Stdlib.( < ) n 0 && Stdlib.( <> ) (Stdlib.( * ) q d) n then Stdlib.( - ) q 1 else q)
  | N r ->
    let q, rm = B.divmod r.num r.den in
    if Stdlib.( < ) (B.sign rm) 0 then B.pred q else q

let ceil = function
  | S (n, d) ->
    let q = Stdlib.( / ) n d in
    B.of_int (if Stdlib.( > ) n 0 && Stdlib.( <> ) (Stdlib.( * ) q d) n then Stdlib.( + ) q 1 else q)
  | N r ->
    let q, rm = B.divmod r.num r.den in
    if Stdlib.( > ) (B.sign rm) 0 then B.succ q else q

let of_float f =
  if Float.is_nan f || Float.is_integer f && Float.abs f = Float.infinity then
    invalid_arg "Ratio.of_float: not finite";
  if not (Float.is_finite f) then invalid_arg "Ratio.of_float: not finite";
  if f = 0.0 then zero
  else begin
    let m, e = Float.frexp f in
    (* f = m * 2^e with 0.5 <= |m| < 1; m * 2^53 is an exact integer. *)
    let mant = Int64.to_int (Int64.of_float (Float.ldexp m 53)) in
    let e = Stdlib.( - ) e 53 in
    let n = B.of_int mant in
    if Stdlib.( >= ) e 0 then of_bigint (B.shift_left n e)
    else make n (B.shift_left B.one (Stdlib.( ~- ) e))
  end

let of_decimal_string s =
  let fail () = invalid_arg (Printf.sprintf "Ratio.of_decimal_string: %S" s) in
  match String.index_opt s '/' with
  | Some i ->
    let n = String.sub s 0 i
    and d = String.sub s Stdlib.(i + 1) Stdlib.(String.length s - i - 1) in
    (match (B.of_string_opt n, B.of_string_opt d) with
     | Some n, Some d when not (B.is_zero d) -> make n d
     | _ -> fail ())
  | None ->
    (match String.index_opt s '.' with
     | None -> (match B.of_string_opt s with Some n -> of_bigint n | None -> fail ())
     | Some i ->
       let int_part = String.sub s 0 i
       and frac = String.sub s Stdlib.(i + 1) Stdlib.(String.length s - i - 1) in
       if String.length frac = 0 then fail ();
       let sign_neg = Stdlib.( > ) (String.length int_part) 0 && int_part.[0] = '-' in
       let int_part = if int_part = "" || int_part = "-" || int_part = "+" then "0" else int_part in
       (match (B.of_string_opt int_part, B.of_string_opt frac) with
        | Some ip, Some fp when Stdlib.( >= ) (B.sign fp) 0 ->
          let scale = B.pow (B.of_int 10) (String.length frac) in
          let mag = B.add (B.mul (B.abs ip) scale) fp in
          let mag = if sign_neg || Stdlib.( < ) (B.sign ip) 0 then B.neg mag else mag in
          make mag scale
        | _ -> fail ()))
