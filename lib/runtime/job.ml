type t =
  | Check of { model : Dtmc.t; phi : Pctl.state_formula }
  | Model_repair of {
      model : Dtmc.t;
      phi : Pctl.state_formula;
      spec : Model_repair.spec;
      starts : int;
      backend : Repair_backend.t;
    }
  | Data_repair of {
      n : int;
      init : int;
      labels : (string * int list) list;
      rewards : Ratio.t array option;
      phi : Pctl.state_formula;
      spec : Data_repair.spec;
      starts : int;
      backend : Repair_backend.t;
    }
  | Reward_repair of {
      mdp : Mdp.t;
      theta : float array;
      constraints : Reward_repair.q_constraint list;
      gamma : float;
      starts : int;
    }
  | Pipeline of {
      n : int;
      init : int;
      labels : (string * int list) list;
      rewards : Ratio.t array option;
      model_spec : Model_repair.spec option;
      data_spec : Data_repair.spec option;
      groups : (string * Trace.t list) list;
      phi : Pctl.state_formula;
    }

type outcome =
  | Checked of Check_dtmc.verdict
  | Model_repair_result of Model_repair.result
  | Data_repair_result of Data_repair.result
  | Reward_repair_result of Reward_repair.result
  | Pipeline_report of Pipeline.report

let kind = function
  | Check _ -> "check"
  | Model_repair _ -> "model-repair"
  | Data_repair _ -> "data-repair"
  | Reward_repair _ -> "reward-repair"
  | Pipeline _ -> "pipeline"

let run = function
  | Check { model; phi } ->
    Checked (Instr.time Instr.Check (fun () -> Check_dtmc.check_verbose model phi))
  | Model_repair { model; phi; spec; starts; backend } ->
    (* batch jobs get the graceful-degradation ladder: augmented
       Lagrangian → penalty → wider multistart before Infeasible *)
    Model_repair_result
      (Model_repair.repair ~backend ~starts ~fallback:true model phi spec)
  | Data_repair { n; init; labels; rewards; phi; spec; starts; backend } ->
    Data_repair_result
      (Data_repair.repair ~n ~init ~labels ?rewards ~backend ~starts phi spec)
  | Reward_repair { mdp; theta; constraints; gamma; starts } ->
    Reward_repair_result
      (Reward_repair.repair_q ~gamma ~starts mdp ~theta ~constraints)
  | Pipeline { n; init; labels; rewards; model_spec; data_spec; groups; phi } ->
    Pipeline_report
      (Pipeline.run ~n ~init ~labels ?rewards ?model_spec ?data_spec ~groups phi)

(* ------------------------------ digest ------------------------------ *)

(* Canonical serialisation of every job input.  Floats are rendered with
   %h (hex) so the key is exact; traces, labels and specs are written in
   their given order — job identity is intentionally sensitive to input
   order, which is cheap and conservative (false misses only). *)

let add_float buf x = Buffer.add_string buf (Printf.sprintf "%h," x)

let add_labels buf labels =
  List.iter
    (fun (name, states) ->
       Buffer.add_string buf name;
       Buffer.add_char buf ':';
       List.iter (fun s -> Buffer.add_string buf (string_of_int s ^ ",")) states;
       Buffer.add_char buf ';')
    labels

let add_dtmc buf d =
  Buffer.add_string buf
    (Printf.sprintf "dtmc:%d:%d;" (Dtmc.num_states d) (Dtmc.init_state d));
  List.iter
    (fun (s, t, p) -> Buffer.add_string buf (Printf.sprintf "%d>%d=%h;" s t p))
    (List.sort compare (Dtmc.raw_transitions d));
  List.iter
    (fun l ->
       Buffer.add_string buf l;
       Buffer.add_char buf ':';
       List.iter
         (fun s -> Buffer.add_string buf (string_of_int s ^ ","))
         (Dtmc.states_with_label d l);
       Buffer.add_char buf ';')
    (Dtmc.labels d);
  Array.iter (add_float buf) (Dtmc.rewards d)

let add_mdp buf m =
  Buffer.add_string buf
    (Printf.sprintf "mdp:%d:%d;" (Mdp.num_states m) (Mdp.init_state m));
  for s = 0 to Mdp.num_states m - 1 do
    List.iter
      (fun a ->
         Buffer.add_string buf (Printf.sprintf "%d/%s[%h]:" s a.Mdp.name a.Mdp.reward);
         List.iter
           (fun (t, p) -> Buffer.add_string buf (Printf.sprintf "%d=%h," t p))
           (List.sort compare a.Mdp.dist);
         Buffer.add_char buf ';')
      (Mdp.actions_of m s);
    add_float buf (Mdp.state_reward m s);
    Array.iter (add_float buf) (Mdp.features_of m s)
  done;
  List.iter
    (fun l ->
       Buffer.add_string buf l;
       Buffer.add_char buf ':';
       List.iter
         (fun s -> Buffer.add_string buf (string_of_int s ^ ","))
         (Mdp.states_with_label m l);
       Buffer.add_char buf ';')
    (Mdp.labels m)

let add_model_spec buf (spec : Model_repair.spec) =
  Buffer.add_string buf "mspec{";
  List.iter
    (fun (name, lo, hi) ->
       Buffer.add_string buf (Printf.sprintf "%s:%h:%h;" name lo hi))
    spec.Model_repair.variables;
  List.iter
    (fun (s, d, f) ->
       Buffer.add_string buf
         (Printf.sprintf "%d>%d=%s;" s d (Ratfun.to_string f)))
    spec.Model_repair.deltas;
  Buffer.add_char buf '}'

let add_trace buf tr =
  List.iter
    (fun (s, a) -> Buffer.add_string buf (Printf.sprintf "%d/%s," s a))
    (Trace.state_actions tr);
  Buffer.add_string buf (Printf.sprintf "|%d;" tr.Trace.final)

let add_groups buf groups =
  List.iter
    (fun (name, traces) ->
       Buffer.add_string buf name;
       Buffer.add_char buf '{';
       List.iter (add_trace buf) traces;
       Buffer.add_char buf '}')
    groups

let add_data_spec buf (spec : Data_repair.spec) =
  Buffer.add_string buf (Printf.sprintf "dspec{%h;" spec.Data_repair.max_drop);
  List.iter
    (fun p -> Buffer.add_string buf (p ^ ","))
    spec.Data_repair.pinned;
  add_groups buf spec.Data_repair.groups;
  Buffer.add_char buf '}'

let add_rewards_opt buf = function
  | None -> Buffer.add_string buf "norew;"
  | Some rs ->
    Array.iter (fun r -> Buffer.add_string buf (Ratio.to_string r ^ ",")) rs;
    Buffer.add_char buf ';'

let digest job =
  let buf = Buffer.create 1024 in
  (match job with
   | Check { model; phi } ->
     Buffer.add_string buf "check|";
     add_dtmc buf model;
     Buffer.add_string buf (Pctl.to_string phi)
   | Model_repair { model; phi; spec; starts; backend } ->
     Buffer.add_string buf
       (Printf.sprintf "mrepair:%d:%s|" starts (Repair_backend.to_string backend));
     add_dtmc buf model;
     add_model_spec buf spec;
     Buffer.add_string buf (Pctl.to_string phi)
   | Data_repair { n; init; labels; rewards; phi; spec; starts; backend } ->
     Buffer.add_string buf
       (Printf.sprintf "drepair:%d:%d:%d:%s|" starts n init
          (Repair_backend.to_string backend));
     add_labels buf labels;
     add_rewards_opt buf rewards;
     add_data_spec buf spec;
     Buffer.add_string buf (Pctl.to_string phi)
   | Reward_repair { mdp; theta; constraints; gamma; starts } ->
     Buffer.add_string buf (Printf.sprintf "rrepair:%h:%d|" gamma starts);
     add_mdp buf mdp;
     Array.iter (add_float buf) theta;
     List.iter
       (fun c ->
          Buffer.add_string buf
            (Printf.sprintf "%d:%s>%s:%h;" c.Reward_repair.state
               c.Reward_repair.better c.Reward_repair.worse
               c.Reward_repair.margin))
       constraints
   | Pipeline { n; init; labels; rewards; model_spec; data_spec; groups; phi }
     ->
     Buffer.add_string buf (Printf.sprintf "pipeline:%d:%d|" n init);
     add_labels buf labels;
     add_rewards_opt buf rewards;
     (match model_spec with
      | None -> Buffer.add_string buf "nomspec;"
      | Some s -> add_model_spec buf s);
     (match data_spec with
      | None -> Buffer.add_string buf "nodspec;"
      | Some s -> add_data_spec buf s);
     add_groups buf groups;
     Buffer.add_string buf (Pctl.to_string phi));
  Digest.to_hex (Digest.string (Buffer.contents buf))

(* ---------------------------- printing ---------------------------- *)

let pp_value fmt = function
  | Some v -> Format.fprintf fmt "%g" v
  | None -> Format.fprintf fmt "-"

let pp_outcome fmt = function
  | Checked v ->
    Format.fprintf fmt "%s (value %a)@\n"
      (if v.Check_dtmc.holds then "HOLDS" else "VIOLATED")
      pp_value v.Check_dtmc.value
  | Model_repair_result (Model_repair.Already_satisfied v) ->
    Format.fprintf fmt "already satisfied (value %a)@\n" pp_value v
  | Model_repair_result (Model_repair.Infeasible { min_violation }) ->
    Format.fprintf fmt "INFEASIBLE (best constraint violation %.6g)@\n"
      min_violation
  | Model_repair_result (Model_repair.Repaired r) ->
    Format.fprintf fmt "REPAIRED (cost %.6g, value %.6g, %s, via %s)@\n"
      r.Model_repair.cost r.Model_repair.achieved_value
      (if r.Model_repair.verified then "verified" else "NOT verified")
      r.Model_repair.solver_rung;
    (match r.Model_repair.certificate with
     | Some c -> Format.fprintf fmt "  certificate: %a@\n" Region_repair.pp_certificate c
     | None -> ());
    List.iter
      (fun (name, v) -> Format.fprintf fmt "  %s = %.6g@\n" name v)
      r.Model_repair.assignment
  | Data_repair_result (Data_repair.Already_satisfied v) ->
    Format.fprintf fmt "already satisfied (value %a)@\n" pp_value v
  | Data_repair_result (Data_repair.Infeasible { min_violation }) ->
    Format.fprintf fmt "INFEASIBLE (best constraint violation %.6g)@\n"
      min_violation
  | Data_repair_result (Data_repair.Repaired r) ->
    Format.fprintf fmt
      "REPAIRED (cost %.6g, value %.6g, ~%.1f traces dropped, %s)@\n"
      r.Data_repair.cost r.Data_repair.achieved_value r.Data_repair.dropped_traces
      (if r.Data_repair.verified then "verified" else "NOT verified");
    (match r.Data_repair.certificate with
     | Some c -> Format.fprintf fmt "  certificate: %a@\n" Region_repair.pp_certificate c
     | None -> ());
    List.iter
      (fun (name, v) -> Format.fprintf fmt "  drop(%s) = %.6g@\n" name v)
      r.Data_repair.drop_fractions
  | Reward_repair_result Reward_repair.Already_satisfied ->
    Format.fprintf fmt "already satisfied@\n"
  | Reward_repair_result (Reward_repair.Infeasible { min_violation }) ->
    Format.fprintf fmt "INFEASIBLE (best violation %.6g)@\n" min_violation
  | Reward_repair_result (Reward_repair.Repaired r) ->
    Format.fprintf fmt "REPAIRED (||dtheta||^2 = %.6g, %s)@\n"
      r.Reward_repair.cost
      (if r.Reward_repair.verified then "verified" else "NOT verified");
    Format.fprintf fmt "  theta' =";
    Array.iter (fun v -> Format.fprintf fmt " %.6g" v) r.Reward_repair.theta;
    Format.fprintf fmt "@\n  policy:";
    Array.iteri
      (fun s a -> Format.fprintf fmt " (S%d,%s)" s a)
      r.Reward_repair.policy;
    Format.fprintf fmt "@\n"
  | Pipeline_report report -> Pipeline.pp_report fmt report
