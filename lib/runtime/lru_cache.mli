(** A bounded, thread-safe, memoizing LRU cache with request coalescing.

    [find_or_compute] returns the cached value for a key, or runs the
    supplied thunk and records its result.  Concurrent requests for the
    same missing key are {e coalesced}: one caller computes, the others
    block until the value lands (and count as hits) — so a burst of
    identical expensive queries (e.g. the same state elimination from
    several worker domains) costs one computation, not N.

    Eviction is least-recently-used with an O(size) scan — capacities here
    are small (hundreds of entries) and evictions rare, so constant-factor
    simplicity wins over a linked-list LRU. *)

type 'a t

type counters = {
  hits : int;  (** served from cache, including coalesced waiters *)
  misses : int;  (** entries actually computed *)
  evictions : int;
  size : int;
  capacity : int;
}

val create : ?name:string -> capacity:int -> unit -> 'a t
(** [name], when given, makes the cache observable: hits and misses are
    mirrored into the [tml_cache_hits_total] / [tml_cache_misses_total]
    {!Metrics} counters under a [cache=<name>] label, and every fill runs
    inside a [cache:fill] trace span carrying the cache name and an
    8-hex-char key prefix.  Anonymous caches keep only their local
    {!counters}.
    @raise Invalid_argument when [capacity < 1]. *)

val find_or_compute : 'a t -> key:string -> (unit -> 'a) -> 'a
(** If the thunk raises, the exception propagates to its caller; coalesced
    waiters retry (one of them becomes the new computer). *)

val find : 'a t -> string -> 'a option
(** Non-blocking probe of {e completed} entries: a present value counts as
    a hit; [None] (absent or still in flight) records nothing, so a probe
    followed by {!find_or_compute} counts the miss exactly once. *)

val counters : 'a t -> counters

val clear : 'a t -> unit
(** Drop all completed entries (counters are kept; in-flight computations
    are unaffected and will land in the emptied cache). *)
