type t = {
  max_retries : int;
  base_backoff_ms : float;
  cap_backoff_ms : float;
  seed : int;
}

let make ?(max_retries = 2) ?(base_backoff_ms = 50.0)
    ?(cap_backoff_ms = 2_000.0) ?(seed = 0) () =
  if max_retries < 0 then invalid_arg "Retry.make: max_retries >= 0";
  if base_backoff_ms < 0.0 then invalid_arg "Retry.make: base_backoff_ms >= 0";
  if cap_backoff_ms < base_backoff_ms then
    invalid_arg "Retry.make: cap_backoff_ms >= base_backoff_ms";
  { max_retries; base_backoff_ms; cap_backoff_ms; seed }

let default = make ()

(* Jitter comes from the policy seed, the job key and the attempt number —
   never from the wall clock — so a replayed batch backs off identically. *)
let backoff_s policy ~key ~attempt =
  let exp_ms = policy.base_backoff_ms *. (2.0 ** float_of_int attempt) in
  let capped = Float.min policy.cap_backoff_ms exp_ms in
  let rng =
    Prng.create
      (policy.seed
       + (31 * Hashtbl.hash key)
       + (1_000_003 * (attempt + 1)))
  in
  let jitter = Prng.uniform rng 0.5 1.5 in
  capped *. jitter /. 1_000.0

let retryable = function
  | Instr.Deadline_exceeded | Instr.Cancelled_in_flight ->
    (* the budget is absolute: re-running cannot beat an expired deadline *)
    false
  | e -> Tml_error.is_transient e

let key_attr key =
  if String.length key <= 8 then key else String.sub key 0 8

(* [run policy ~key ~on_retry f] — run [f], re-running transient failures
   with capped jittered exponential backoff.  Permanent failures and
   deadline/cancellation markers propagate immediately.  The first
   attempt runs bare; each re-run is wrapped in a [retry:attempt] span,
   preceded by a [retry:backoff] event naming the error that caused it,
   so a trace answers "where did this job's retries go". *)
let run policy ~key ~on_retry f =
  let rec go attempt =
    let attempt_f () =
      if attempt = 0 then f ()
      else
        Trace_span.with_span "retry:attempt"
          ~attrs:
            [ ("attempt", string_of_int attempt); ("key", key_attr key) ]
          f
    in
    match attempt_f () with
    | v -> v
    | exception e when attempt < policy.max_retries && retryable e ->
      on_retry e;
      let s = backoff_s policy ~key ~attempt in
      ignore
        (Trace_span.event "retry:backoff"
           ~attrs:
             [
               ("attempt", string_of_int attempt);
               ("key", key_attr key);
               ("backoff_ms", Printf.sprintf "%.1f" (s *. 1e3));
               ("error", Printexc.to_string e);
             ]
          : int option);
      if s > 0.0 then Unix.sleepf s;
      go (attempt + 1)
  in
  go 0
