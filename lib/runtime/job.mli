(** Repair jobs: the unit of work submitted to the {!Runtime}.

    A job wraps one of the repair stack's entry points — numeric checking,
    Model / Data / Reward Repair, or the full learn→verify→repair
    {!Pipeline} — together with all of its inputs, so it can be executed on
    any worker domain and its result cached.

    Jobs are pure: running the same job twice yields the same outcome
    (repair solvers are seeded and deterministic), which is what makes the
    report cache sound and parallel batches byte-identical to sequential
    execution. *)

type t =
  | Check of { model : Dtmc.t; phi : Pctl.state_formula }
  | Model_repair of {
      model : Dtmc.t;
      phi : Pctl.state_formula;
      spec : Model_repair.spec;
      starts : int;
      backend : Repair_backend.t;
    }
  | Data_repair of {
      n : int;
      init : int;
      labels : (string * int list) list;
      rewards : Ratio.t array option;
      phi : Pctl.state_formula;
      spec : Data_repair.spec;
      starts : int;
      backend : Repair_backend.t;
    }
  | Reward_repair of {
      mdp : Mdp.t;
      theta : float array;
      constraints : Reward_repair.q_constraint list;
      gamma : float;
      starts : int;
    }
  | Pipeline of {
      n : int;
      init : int;
      labels : (string * int list) list;
      rewards : Ratio.t array option;
      model_spec : Model_repair.spec option;
      data_spec : Data_repair.spec option;
      groups : (string * Trace.t list) list;
      phi : Pctl.state_formula;
    }

type outcome =
  | Checked of Check_dtmc.verdict
  | Model_repair_result of Model_repair.result
  | Data_repair_result of Data_repair.result
  | Reward_repair_result of Reward_repair.result
  | Pipeline_report of Pipeline.report
      (** One constructor per job kind, wrapping that entry point's own
          result type. *)

val run : t -> outcome
(** Execute the job on the calling domain. *)

val kind : t -> string
(** ["check"], ["model-repair"], ["data-repair"], ["reward-repair"],
    ["pipeline"] — for labelling and stats. *)

val digest : t -> string
(** Hex MD5 of a canonical serialisation of the job's inputs (models,
    property, spec, traces, solver arity, repair backend).  Equal digests
    mean equal inputs, so a cached outcome can be replayed — two runs of
    the same repair on different backends are distinct jobs. *)

val pp_outcome : Format.formatter -> outcome -> unit
(** Deterministic, human-readable report — the batch CLI prints exactly
    this, so parallel and sequential runs can be diffed byte-for-byte. *)
