(** Write-once futures — the result handles of jobs submitted to the
    worker {!Pool}.

    A future starts [Pending] and is resolved exactly once, to a value, a
    raised exception, [Cancelled] (the job was cancelled before a worker
    started it) or [Timed_out] (its queue deadline expired before a worker
    picked it up).  All operations are thread-safe across domains. *)

type 'a outcome =
  | Value of 'a  (** the job returned normally *)
  | Failed of exn  (** the job raised; the exception is preserved *)
  | Cancelled  (** cancelled before a worker started it *)
  | Timed_out  (** its queue deadline expired before completion *)

type 'a t
(** A write-once result cell, safe to resolve and await from any domain. *)

val create : unit -> 'a t
(** A fresh pending future. *)

val resolve : 'a t -> 'a -> unit
(** First resolution wins; later resolutions of any kind are ignored. *)

val fail : 'a t -> exn -> unit
(** Resolve as [Failed] (first resolution wins, as with {!resolve}). *)

val cancel : 'a t -> bool
(** Request cancellation.  Returns [true] when the future was still
    pending (the job will be skipped when dequeued); [false] when it had
    already been resolved — a running job is not preempted. *)

val time_out : 'a t -> unit
(** Resolve as [Timed_out] (used by the pool when a queue deadline
    expires). *)

val peek : 'a t -> 'a outcome option
(** [None] while pending. *)

val is_pending : 'a t -> bool
(** [peek fut = None], without the allocation. *)

val await : ?timeout_s:float -> 'a t -> 'a outcome
(** Block until resolved.  With [timeout_s], give up after that many
    seconds and return [Timed_out] {e without} resolving the future — the
    job may still complete later; combine with {!cancel} to abandon it. *)
