type stage_totals = { count : int; total_s : float }

type snapshot = {
  submitted : int;
  completed : int;
  failed : int;
  cancelled : int;
  timed_out : int;
  retried : int;
  respawned : int;
  faults_injected : int;
  report_cache_hits : int;
  max_queue_depth : int;
  stages : (string * stage_totals) list;
}

type counter =
  [ `Submitted
  | `Completed
  | `Failed
  | `Cancelled
  | `Timed_out
  | `Retried
  | `Respawned
  | `Fault_injected
  | `Report_hit ]

type t = {
  mutex : Mutex.t;
  mutable submitted : int;
  mutable completed : int;
  mutable failed : int;
  mutable cancelled : int;
  mutable timed_out : int;
  mutable retried : int;
  mutable respawned : int;
  mutable faults_injected : int;
  mutable report_cache_hits : int;
  mutable max_queue_depth : int;
  stage_counts : int array;  (* indexed by stage *)
  stage_totals : float array;
}

(* Every per-runtime counter is mirrored into the process-wide {!Metrics}
   registry (which outlives the runtime), under stable Prometheus names.
   Stage histograms are NOT mirrored here — Instr.time feeds
   [tml_stage_seconds] directly, so they'd double-count. *)
let metric =
  let mk name help = Metrics.counter name ~help in
  let submitted = mk "tml_jobs_submitted_total" "Jobs submitted"
  and completed = mk "tml_jobs_completed_total" "Jobs completed"
  and failed = mk "tml_jobs_failed_total" "Jobs whose future failed"
  and cancelled = mk "tml_jobs_cancelled_total" "Jobs cancelled"
  and timed_out = mk "tml_jobs_timed_out_total" "Jobs timed out"
  and retried = mk "tml_retries_total" "Transient-failure re-runs"
  and respawned = mk "tml_worker_respawns_total" "Worker domains respawned"
  and faults = mk "tml_faults_injected_total" "Chaos faults fired"
  and report_hit =
    mk "tml_report_cache_short_circuits_total"
      "Jobs answered from the report cache at submit"
  in
  function
  | `Submitted -> submitted
  | `Completed -> completed
  | `Failed -> failed
  | `Cancelled -> cancelled
  | `Timed_out -> timed_out
  | `Retried -> retried
  | `Respawned -> respawned
  | `Fault_injected -> faults
  | `Report_hit -> report_hit

let queue_depth_gauge =
  Metrics.gauge "tml_queue_depth" ~help:"Pool queue depth at last enqueue"

let queue_depth_max_gauge =
  Metrics.gauge "tml_queue_depth_max"
    ~help:"Pool queue depth high-water mark"

let stage_index = function
  | Instr.Learn -> 0
  | Instr.Eliminate -> 1
  | Instr.Solve -> 2
  | Instr.Check -> 3

let all_stages = [ Instr.Learn; Instr.Eliminate; Instr.Solve; Instr.Check ]

let create () =
  {
    mutex = Mutex.create ();
    submitted = 0;
    completed = 0;
    failed = 0;
    cancelled = 0;
    timed_out = 0;
    retried = 0;
    respawned = 0;
    faults_injected = 0;
    report_cache_hits = 0;
    max_queue_depth = 0;
    stage_counts = Array.make 4 0;
    stage_totals = Array.make 4 0.0;
  }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let incr t which =
  Metrics.incr (metric which);
  locked t (fun () ->
      match which with
      | `Submitted -> t.submitted <- t.submitted + 1
      | `Completed -> t.completed <- t.completed + 1
      | `Failed -> t.failed <- t.failed + 1
      | `Cancelled -> t.cancelled <- t.cancelled + 1
      | `Timed_out -> t.timed_out <- t.timed_out + 1
      | `Retried -> t.retried <- t.retried + 1
      | `Respawned -> t.respawned <- t.respawned + 1
      | `Fault_injected -> t.faults_injected <- t.faults_injected + 1
      | `Report_hit -> t.report_cache_hits <- t.report_cache_hits + 1)

let record_stage t stage dt =
  locked t (fun () ->
      let i = stage_index stage in
      t.stage_counts.(i) <- t.stage_counts.(i) + 1;
      t.stage_totals.(i) <- t.stage_totals.(i) +. dt)

let observe_queue_depth t depth =
  let d = float_of_int depth in
  Metrics.set_gauge queue_depth_gauge d;
  Metrics.max_gauge queue_depth_max_gauge d;
  locked t (fun () ->
      if depth > t.max_queue_depth then t.max_queue_depth <- depth)

let snapshot t =
  locked t (fun () ->
      {
        submitted = t.submitted;
        completed = t.completed;
        failed = t.failed;
        cancelled = t.cancelled;
        timed_out = t.timed_out;
        retried = t.retried;
        respawned = t.respawned;
        faults_injected = t.faults_injected;
        report_cache_hits = t.report_cache_hits;
        max_queue_depth = t.max_queue_depth;
        stages =
          List.map
            (fun s ->
               let i = stage_index s in
               ( Instr.stage_name s,
                 { count = t.stage_counts.(i); total_s = t.stage_totals.(i) } ))
            all_stages;
      })

(* ------------------------------ JSON ------------------------------ *)

let json_cache name (c : Lru_cache.counters) =
  let total = c.Lru_cache.hits + c.Lru_cache.misses in
  let rate =
    if total = 0 then 0.0
    else float_of_int c.Lru_cache.hits /. float_of_int total
  in
  Printf.sprintf
    "\"%s\": {\"hits\": %d, \"misses\": %d, \"evictions\": %d, \"size\": %d, \
     \"capacity\": %d, \"hit_rate\": %.4f}"
    name c.Lru_cache.hits c.Lru_cache.misses c.Lru_cache.evictions
    c.Lru_cache.size c.Lru_cache.capacity rate

let to_json ~workers ?report_cache ?elim_cache t =
  let s = snapshot t in
  let buf = Buffer.create 512 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  \"jobs\": {\"submitted\": %d, \"completed\": %d, \"failed\": %d, \
        \"cancelled\": %d, \"timed_out\": %d, \"report_cache_hits\": %d},\n"
       s.submitted s.completed s.failed s.cancelled s.timed_out
       s.report_cache_hits);
  Buffer.add_string buf
    (Printf.sprintf
       "  \"resilience\": {\"retried\": %d, \"respawned\": %d, \
        \"faults_injected\": %d},\n"
       s.retried s.respawned s.faults_injected);
  Buffer.add_string buf
    (Printf.sprintf "  \"queue\": {\"max_depth\": %d},\n" s.max_queue_depth);
  Buffer.add_string buf (Printf.sprintf "  \"workers\": %d,\n" workers);
  let caches =
    List.filter_map
      (fun x -> x)
      [ Option.map (json_cache "report") report_cache;
        Option.map (json_cache "elimination") elim_cache;
      ]
  in
  Buffer.add_string buf
    (Printf.sprintf "  \"caches\": {%s},\n" (String.concat ", " caches));
  let stages =
    List.map
      (fun (name, st) ->
         Printf.sprintf "\"%s\": {\"count\": %d, \"total_s\": %.6f}" name
           st.count st.total_s)
      s.stages
  in
  Buffer.add_string buf
    (Printf.sprintf "  \"stages\": {%s}\n" (String.concat ", " stages));
  Buffer.add_string buf "}";
  Buffer.contents buf
