(** Retry policies for transient job failures.

    A policy re-runs a failed job body up to [max_retries] times, but only
    when the failure is {e transient} per {!Tml_error.classify} — solver
    non-convergence, cache races, injected chaos faults.  Permanent
    failures (malformed models, empty feasible boxes, arbitrary
    exceptions) and in-flight deadline/cancellation markers propagate
    immediately.

    Backoff between attempts is capped jittered exponential:
    [min cap (base · 2^attempt)] scaled by a factor in [\[0.5, 1.5)] drawn
    from a PRNG seeded by [(seed, key, attempt)] — deterministic replay,
    no wall-clock randomness in reports. *)

type t = {
  max_retries : int;  (** re-runs allowed after the first attempt *)
  base_backoff_ms : float;  (** backoff before the first re-run *)
  cap_backoff_ms : float;  (** upper bound on any single backoff *)
  seed : int;  (** jitter PRNG seed — same seed, same schedule *)
}

val make :
  ?max_retries:int ->
  ?base_backoff_ms:float ->
  ?cap_backoff_ms:float ->
  ?seed:int ->
  unit ->
  t
(** Defaults: 2 retries, 50 ms base, 2 s cap, seed 0. *)

val default : t
(** [make ()]. *)

val backoff_s : t -> key:string -> attempt:int -> float
(** Deterministic backoff (seconds) before re-running [attempt]
    (0-based). *)

val retryable : exn -> bool
(** Transient per {!Tml_error.classify}, and not a deadline/cancellation
    marker. *)

val run : t -> key:string -> on_retry:(exn -> unit) -> (unit -> 'a) -> 'a
(** [run policy ~key ~on_retry f]: run [f], re-running retryable failures
    within the budget, sleeping the backoff in between; [on_retry] is
    called once per re-run (for stats).  When tracing is enabled each
    backoff emits a [retry:backoff] {!Trace_span} event and each re-run
    executes inside a [retry:attempt] span, so retries are visible in
    trace dumps. *)
