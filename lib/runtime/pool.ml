type task = {
  deadline : float option;  (* absolute, from submit-time timeout *)
  skip : [ `Cancelled | `Timed_out ] -> unit;
  cancelled : unit -> bool;
  pending : unit -> bool;
  crashed : exn -> unit;
  run : unit -> unit;
}

(* A batch of intra-job subtasks ([run_subtasks]).  Workers and the
   submitting caller claim indices from [sb_next] (a lock-free ticket);
   the claimer that completes the last task broadcasts [sb_done].  The
   error slot keeps the LOWEST-indexed failure, so which exception
   surfaces does not depend on the temporal order tasks failed in —
   part of the parallel-kernel determinism contract. *)
type subbatch = {
  sb_tasks : (unit -> unit) array;
  sb_next : int Atomic.t;
  sb_mutex : Mutex.t;
  sb_done : Condition.t;
  mutable sb_completed : int;
  mutable sb_err : (int * exn) option;
}

type t = {
  mutex : Mutex.t;
  not_empty : Condition.t;
  not_full : Condition.t;
  queue : task Queue.t;
  capacity : int;
  on_queue_depth : int -> unit;
  on_respawn : exn -> unit;
  mutable stopping : bool;
  mutable respawn_count : int;
  mutable domains : unit Domain.t list;
  mutable subtasks : subbatch list;  (* live batches, FIFO *)
}

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(* Claim and run subtasks until the batch's ticket counter is exhausted.
   Runs on worker domains AND on the domain that submitted the batch
   (caller-drain): a batch therefore always makes progress even when
   every worker is busy or the submitter IS the only worker, which is
   what makes nested submits deadlock-free.  Each claimed task is run
   exactly once; its exception is recorded (lowest index wins) and never
   escapes, so a claimed subtask can never be lost to a domain crash. *)
let drain_subbatch b =
  let n = Array.length b.sb_tasks in
  let rec go () =
    let i = Atomic.fetch_and_add b.sb_next 1 in
    if i < n then begin
      let err = match b.sb_tasks.(i) () with () -> None | exception e -> Some e in
      Mutex.lock b.sb_mutex;
      (match err with
       | Some e when (match b.sb_err with Some (j, _) -> i < j | None -> true) ->
         b.sb_err <- Some (i, e)
       | _ -> ());
      b.sb_completed <- b.sb_completed + 1;
      if b.sb_completed = n then Condition.broadcast b.sb_done;
      Mutex.unlock b.sb_mutex;
      go ()
    end
  in
  go ()

let sb_live b = Atomic.get b.sb_next < Array.length b.sb_tasks

(* Under [t.mutex]: drop exhausted batches, return the first live one. *)
let live_subbatch t =
  (match t.subtasks with
   | [] -> ()
   | _ -> t.subtasks <- List.filter sb_live t.subtasks);
  match t.subtasks with [] -> None | b :: _ -> Some b

(* One worker domain.  [run_task] is supervised: [task.run] settles the
   future itself and swallows every exception of the job body, so an
   exception escaping here means the worker's own plumbing died (an
   injected [Fault.Worker] fault, or a genuine bug).  The crash handler
   gives the interrupted task back to the queue (its future is still
   pending, so it will be re-run and settle exactly once), spawns a
   replacement domain, and lets this one exit cleanly — domains are only
   ever joined after a normal return, so shutdown never re-raises. *)
let rec worker_loop t () =
  let job =
    locked t (fun () ->
        let rec wait () =
          (* intra-job subtasks run before queued jobs: they are pieces of
             jobs already running, so finishing them first is what frees
             workers fastest *)
          match live_subbatch t with
          | Some b -> Some (`Sub b)
          | None ->
            if not (Queue.is_empty t.queue) then begin
              let task = Queue.pop t.queue in
              Condition.signal t.not_full;
              Some (`Task task)
            end
            else if t.stopping then None
            else begin
              Condition.wait t.not_empty t.mutex;
              wait ()
            end
        in
        wait ())
  in
  match job with
  | None -> ()
  | Some (`Sub b) -> (
      (* Probe BEFORE claiming: an injected [Subtask] crash kills this
         worker domain without orphaning a claimed index, so the batch
         still completes through the caller-drain (and the other
         workers), while the pool respawns the domain as usual. *)
      match Fault.at Fault.Subtask with
      | () ->
        drain_subbatch b;
        worker_loop t ()
      | exception e -> worker_crashed t e)
  | Some (`Task task) -> (
      ignore (Trace_span.event "pool:dequeue" : int option);
      match
        Fault.at Fault.Worker;
        if task.cancelled () then task.skip `Cancelled
        else
          match task.deadline with
          | Some d when Unix.gettimeofday () > d -> task.skip `Timed_out
          | _ -> task.run ()
      with
      | () -> worker_loop t ()
      | exception e -> worker_crashed t ~task e)

and worker_crashed t ?task e =
  let respawned =
    locked t (fun () ->
        if t.stopping then false
        else begin
          t.respawn_count <- t.respawn_count + 1;
          (match task with
           | Some task when task.pending () ->
             (* requeue the interrupted job; capacity is deliberately
                ignored here — the slot it occupied was already accounted
                for by the original submit *)
             Queue.push task t.queue;
             Condition.signal t.not_empty
           | _ -> ());
          let d = Domain.spawn (worker_loop t) in
          t.domains <- d :: t.domains;
          true
        end)
  in
  ignore
    (Trace_span.event "pool:respawn"
       ~attrs:[ ("error", Printexc.to_string e) ]
      : int option);
  if not respawned then Option.iter (fun task -> task.crashed e) task;
  t.on_respawn e

let create ?(queue_capacity = 64) ?(on_queue_depth = ignore)
    ?(on_respawn = ignore) ~workers () =
  if workers < 1 then invalid_arg "Pool.create: need at least one worker";
  if queue_capacity < 1 then invalid_arg "Pool.create: queue capacity >= 1";
  let t =
    {
      mutex = Mutex.create ();
      not_empty = Condition.create ();
      not_full = Condition.create ();
      queue = Queue.create ();
      capacity = queue_capacity;
      on_queue_depth;
      on_respawn;
      stopping = false;
      respawn_count = 0;
      domains = [];
      subtasks = [];
    }
  in
  t.domains <- List.init workers (fun _ -> Domain.spawn (worker_loop t));
  t

let workers t = List.length t.domains
let respawns t = locked t (fun () -> t.respawn_count)

let make_task fut deadline f =
    {
      deadline;
      skip =
        (fun reason ->
           match reason with
           | `Cancelled -> ignore (Future.cancel fut)
           | `Timed_out -> Future.time_out fut);
      cancelled =
        (fun () ->
           match Future.peek fut with
           | Some Future.Cancelled -> true
           | _ -> false);
      pending = (fun () -> Future.is_pending fut);
      crashed = (fun e -> Future.fail fut e);
      run =
        (fun () ->
           (* the token makes the job's Instr stage boundaries poll the
              deadline and the future's cancellation state, so a timed-out
              or cancelled job stops mid-run instead of running to the end *)
           let token =
             { Instr.deadline;
               cancelled = (fun () -> not (Future.is_pending fut)) }
           in
           match Instr.with_token (Some token) f with
           | v -> Future.resolve fut v
           | exception Instr.Deadline_exceeded -> Future.time_out fut
           | exception Instr.Cancelled_in_flight ->
             (* the future was already settled (cancelled) by the caller;
                nothing left to do *)
             ignore (Future.cancel fut)
           | exception e -> Future.fail fut e);
    }

let submit t ?timeout_s f =
  let fut = Future.create () in
  let deadline = Option.map (fun s -> Unix.gettimeofday () +. s) timeout_s in
  let task = make_task fut deadline f in
  let depth =
    locked t (fun () ->
        let rec wait () =
          if t.stopping then None
          else if Queue.length t.queue >= t.capacity then begin
            Condition.wait t.not_full t.mutex;
            wait ()
          end
          else begin
            Queue.push task t.queue;
            Condition.signal t.not_empty;
            Some (Queue.length t.queue)
          end
        in
        wait ())
  in
  (match depth with
   | Some d -> t.on_queue_depth d
   | None ->
     (* submit-after-shutdown: settle rather than raise, so a batch racing
        a shutdown never leaks an unsettled future *)
     ignore (Future.cancel fut));
  fut

let run_subtasks t tasks =
  let n = Array.length tasks in
  if n = 0 then ()
  else if n = 1 then tasks.(0) ()
  else begin
    let b =
      {
        sb_tasks = tasks;
        sb_next = Atomic.make 0;
        sb_mutex = Mutex.create ();
        sb_done = Condition.create ();
        sb_completed = 0;
        sb_err = None;
      }
    in
    locked t (fun () ->
        t.subtasks <- t.subtasks @ [ b ];
        (* every idle worker may help, not just one *)
        Condition.broadcast t.not_empty);
    (* The submitting domain drains its own batch before waiting: progress
       never depends on a free worker existing, so a worker running a job
       that fans out subtasks (even nested ones) cannot deadlock the pool
       it occupies. *)
    drain_subbatch b;
    Mutex.lock b.sb_mutex;
    while b.sb_completed < n do
      Condition.wait b.sb_done b.sb_mutex
    done;
    let err = b.sb_err in
    Mutex.unlock b.sb_mutex;
    locked t (fun () -> t.subtasks <- List.filter (fun b' -> b' != b) t.subtasks);
    match err with None -> () | Some (_, e) -> raise e
  end

let try_submit t ?timeout_s f =
  let fut = Future.create () in
  let deadline = Option.map (fun s -> Unix.gettimeofday () +. s) timeout_s in
  let task = make_task fut deadline f in
  let verdict =
    locked t (fun () ->
        if t.stopping then `Stopping
        else if Queue.length t.queue >= t.capacity then `Full
        else begin
          Queue.push task t.queue;
          Condition.signal t.not_empty;
          `Queued (Queue.length t.queue)
        end)
  in
  match verdict with
  | `Queued d ->
    t.on_queue_depth d;
    Some fut
  | `Stopping ->
    ignore (Future.cancel fut);
    Some fut
  | `Full -> None

let shutdown ?(drain = true) t =
  let rec join_all () =
    (* a crashing worker may spawn a replacement concurrently with
       shutdown; loop until the domain list is stable and fully joined *)
    let to_join =
      locked t (fun () ->
          t.stopping <- true;
          if not drain then begin
            Queue.iter (fun task -> task.skip `Cancelled) t.queue;
            Queue.clear t.queue
          end;
          Condition.broadcast t.not_empty;
          Condition.broadcast t.not_full;
          let ds = t.domains in
          t.domains <- [];
          ds)
    in
    if to_join <> [] then begin
      List.iter Domain.join to_join;
      join_all ()
    end
  in
  join_all ()
