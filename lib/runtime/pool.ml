exception Shutting_down

type task = {
  deadline : float option;  (* absolute, from submit-time timeout *)
  skip : [ `Cancelled | `Timed_out ] -> unit;
  cancelled : unit -> bool;
  run : unit -> unit;
}

type t = {
  mutex : Mutex.t;
  not_empty : Condition.t;
  not_full : Condition.t;
  queue : task Queue.t;
  capacity : int;
  on_queue_depth : int -> unit;
  mutable stopping : bool;
  mutable domains : unit Domain.t list;
}

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let worker_loop t () =
  let rec next () =
    let job =
      locked t (fun () ->
          let rec wait () =
            if not (Queue.is_empty t.queue) then begin
              let task = Queue.pop t.queue in
              Condition.signal t.not_full;
              Some task
            end
            else if t.stopping then None
            else begin
              Condition.wait t.not_empty t.mutex;
              wait ()
            end
          in
          wait ())
    in
    match job with
    | None -> ()
    | Some task ->
      (if task.cancelled () then task.skip `Cancelled
       else
         match task.deadline with
         | Some d when Unix.gettimeofday () > d -> task.skip `Timed_out
         | _ -> task.run ());
      next ()
  in
  next ()

let create ?(queue_capacity = 64) ?(on_queue_depth = ignore) ~workers () =
  if workers < 1 then invalid_arg "Pool.create: need at least one worker";
  if queue_capacity < 1 then invalid_arg "Pool.create: queue capacity >= 1";
  let t =
    {
      mutex = Mutex.create ();
      not_empty = Condition.create ();
      not_full = Condition.create ();
      queue = Queue.create ();
      capacity = queue_capacity;
      on_queue_depth;
      stopping = false;
      domains = [];
    }
  in
  t.domains <- List.init workers (fun _ -> Domain.spawn (worker_loop t));
  t

let workers t = List.length t.domains

let submit t ?timeout_s f =
  let fut = Future.create () in
  let deadline = Option.map (fun s -> Unix.gettimeofday () +. s) timeout_s in
  let task =
    {
      deadline;
      skip =
        (fun reason ->
           match reason with
           | `Cancelled -> ignore (Future.cancel fut)
           | `Timed_out -> Future.time_out fut);
      cancelled =
        (fun () ->
           match Future.peek fut with
           | Some Future.Cancelled -> true
           | _ -> false);
      run =
        (fun () ->
           match f () with
           | v -> Future.resolve fut v
           | exception e -> Future.fail fut e);
    }
  in
  let depth =
    locked t (fun () ->
        let rec wait () =
          if t.stopping then raise Shutting_down
          else if Queue.length t.queue >= t.capacity then begin
            Condition.wait t.not_full t.mutex;
            wait ()
          end
          else begin
            Queue.push task t.queue;
            Condition.signal t.not_empty;
            Queue.length t.queue
          end
        in
        wait ())
  in
  t.on_queue_depth depth;
  fut

let shutdown ?(drain = true) t =
  let to_join =
    locked t (fun () ->
        t.stopping <- true;
        if not drain then begin
          Queue.iter (fun task -> task.skip `Cancelled) t.queue;
          Queue.clear t.queue
        end;
        Condition.broadcast t.not_empty;
        Condition.broadcast t.not_full;
        let ds = t.domains in
        t.domains <- [];
        ds)
  in
  List.iter Domain.join to_join
