type 'a outcome =
  | Value of 'a
  | Failed of exn
  | Cancelled
  | Timed_out

type 'a t = {
  mutex : Mutex.t;
  resolved : Condition.t;
  mutable state : 'a outcome option;
}

let create () =
  { mutex = Mutex.create (); resolved = Condition.create (); state = None }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let settle t outcome =
  locked t (fun () ->
      match t.state with
      | Some _ -> false
      | None ->
        t.state <- Some outcome;
        Condition.broadcast t.resolved;
        true)

let resolve t v = ignore (settle t (Value v))
let fail t e = ignore (settle t (Failed e))
let cancel t = settle t Cancelled
let time_out t = ignore (settle t Timed_out)
let peek t = locked t (fun () -> t.state)
let is_pending t = peek t = None

let await ?timeout_s t =
  match timeout_s with
  | None ->
    locked t (fun () ->
        while t.state = None do
          Condition.wait t.resolved t.mutex
        done;
        Option.get t.state)
  | Some limit ->
    (* The stdlib Condition has no timed wait; poll with a short sleep.
       This path is only taken by explicitly-timed awaits. *)
    let deadline = Unix.gettimeofday () +. limit in
    let rec poll () =
      match peek t with
      | Some o -> o
      | None ->
        if Unix.gettimeofday () >= deadline then Timed_out
        else begin
          Unix.sleepf 0.002;
          poll ()
        end
    in
    poll ()
