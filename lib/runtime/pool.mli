(** A supervised, fixed-size pool of OCaml 5 domains draining a bounded
    job queue.

    Submissions enqueue a thunk and return a {!Future}; worker domains
    dequeue and run thunks in FIFO order.  The queue is bounded: when it is
    full, {!submit} blocks until a worker makes room (back-pressure, not
    unbounded buffering).

    {b Supervision.}  A job's own exceptions are caught and settle its
    future as [Failed]; an exception escaping the worker's {e plumbing}
    (e.g. an injected [Fault.Worker] fault) kills that worker domain.  The
    pool detects the death, re-queues the interrupted task (its future is
    still pending, so it settles exactly once, later), spawns a
    replacement domain, and counts the event ([{!respawns}],
    [on_respawn]).  Worker capacity is therefore restored automatically
    and no submitted future is ever lost.

    Cancellation and timeouts are cooperative: a cancelled future's job is
    skipped when a worker reaches it, and a job whose queue deadline has
    passed resolves [Timed_out] instead of running.  A job that has
    already {e started} additionally polls its deadline and cancellation
    state at every {!Instr} stage boundary, so it stops mid-run at the
    next checkpoint rather than running to completion.

    {!shutdown} is graceful by default — queued jobs are drained before the
    workers exit — or immediate with [~drain:false], which cancels every
    queued job.  Either way all worker domains (including respawned ones)
    are joined before the call returns, so shutdown never leaks domains
    and never deadlocks.  A {!submit} racing a shutdown returns an
    already-[Cancelled] future instead of raising, so a batch in flight
    never leaks an unsettled future. *)

type t
(** A running pool.  Workers live until {!shutdown}. *)

val create :
  ?queue_capacity:int ->
  ?on_queue_depth:(int -> unit) ->
  ?on_respawn:(exn -> unit) ->
  workers:int ->
  unit ->
  t
(** Spawn [workers] domains ([>= 1]).  [queue_capacity] bounds the number
    of queued (not yet running) jobs, default 64.  [on_queue_depth] is
    called with the queue length after every enqueue (for stats);
    [on_respawn] with the escaping exception after every worker respawn.
    @raise Invalid_argument on [workers < 1] or [queue_capacity < 1]. *)

val workers : t -> int
(** The worker-domain count given to {!create}. *)

val respawns : t -> int
(** Worker domains respawned after a crash since [create]. *)

val submit : t -> ?timeout_s:float -> (unit -> 'a) -> 'a Future.t
(** Enqueue a job; blocks while the queue is full.  With [timeout_s], the
    job must {e finish} within that many seconds of submission: the
    deadline is checked at dequeue and again at every [Instr] stage
    boundary while running, resolving [Timed_out] either way.  After
    {!shutdown} has begun, returns an already-[Cancelled] future. *)

val run_subtasks : t -> (unit -> unit) array -> unit
(** Run a batch of intra-job subtasks across the pool and return when all
    of them have finished.  Unlike {!submit} this is a {e nested} submit,
    safe to call from inside a job running on a worker: the calling
    domain claims and runs subtasks itself (caller-drain) while idle
    workers help, so the batch completes even when no worker is free and
    nested calls can never deadlock the pool.  Tasks must be pairwise
    independent; every task runs exactly once, and the lowest-indexed
    task's exception (if any) is re-raised after the batch settles —
    matching {!Parallel.run}'s determinism contract.  Workers probe the
    [Fault.Subtask] site before claiming from a batch: an injected crash
    kills the helper domain (it is respawned as usual) without losing a
    claimed subtask. *)

val try_submit : t -> ?timeout_s:float -> (unit -> 'a) -> 'a Future.t option
(** Non-blocking {!submit}: [None] when the queue is full {e right now}
    (nothing is enqueued — the caller sheds or retries), otherwise exactly
    {!submit}, including the already-[Cancelled] future after
    {!shutdown}. *)

val shutdown : ?drain:bool -> t -> unit
(** Stop accepting work and join all workers.  [drain] (default [true])
    lets queued jobs finish first; with [~drain:false] queued jobs resolve
    [Cancelled].  Idempotent. *)
